// Run the covert channel in the four noise environments of Figure 8
// (quiet, memory/cache stress, and two MEE-thrashing neighbors) and show
// how only traffic that actually reaches the MEE cache disturbs the
// channel — the property that makes the attack stealthy against
// conventional cache-activity monitoring.
//
//	go run ./examples/noisy-channel
package main

import (
	"fmt"
	"log"

	"meecc"
)

func main() {
	runs := meecc.NoiseStudy(meecc.DefaultOptions(3), 15000, 128)
	fmt.Println("128-bit '100100...' transmission, 15000-cycle windows:")
	fmt.Println()
	for _, r := range runs {
		if r.Err != nil {
			log.Fatalf("%v: %v", r.Kind, r.Err)
		}
		fmt.Printf("  %-18s %2d error bits (%.1f%%)\n",
			r.Kind, r.Result.BitErrors, 100*r.Result.ErrorRate)
	}
	fmt.Println()
	fmt.Println("paper's Figure 8: 1 error quiet, ~unchanged under plain memory noise,")
	fmt.Println("4-5 errors when a neighbor loads fresh integrity-tree lines into the MEE cache")
}
