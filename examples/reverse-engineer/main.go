// Reverse-engineer the MEE cache from inside an enclave, exactly as
// Section 4 of the paper does on real hardware: measure the capacity via
// candidate-address-set eviction probability, then recover the
// associativity with Algorithm 1 — and cross-check the discovered
// organization against the simulator's ground truth.
//
//	go run ./examples/reverse-engineer
package main

import (
	"fmt"
	"log"

	"meecc"
)

func main() {
	opts := meecc.DefaultOptions(7)

	org, capRes, a1, err := meecc.ReverseEngineer(opts, 30)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("eviction probability vs candidate set size (Figure 4):")
	for _, p := range capRes.Points {
		bar := ""
		for i := 0; i < int(p.Probability*40); i++ {
			bar += "#"
		}
		fmt.Printf("  %2d candidates |%-40s| %.2f\n", p.Candidates, bar, p.Probability)
	}

	fmt.Printf("\nAlgorithm 1 discovered an eviction set of %d addresses:\n", len(a1.EvictionSet))
	for i, va := range a1.EvictionSet {
		fmt.Printf("  way %d: VA %#x\n", i, uint64(va))
	}

	fmt.Printf("\ndiscovered organization : %v\n", org)
	fmt.Println("ground truth (simulator): 64 KB, 8-way set-associative, 128 sets of 64 B lines")
}
