// Quickstart: send a text message from a trojan enclave to a spy enclave
// over the MEE cache covert channel on the default simulated machine
// (i7-6700K-like, 15000-cycle timing window — the paper's sweet spot).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"meecc"
)

func main() {
	cfg := meecc.DefaultChannelConfig(42)
	cfg.Bits = meecc.BitsFromString("exfiltrated key: 0xDEADBEEF")
	// The paper's channel is raw (1.7% error, no error handling); a 3x
	// repetition code makes the demo decode cleanly at a third of the rate.
	cfg.Repetition = 3

	res, err := meecc.RunChannel(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trojan sent     : %d bits\n", len(res.Sent))
	fmt.Printf("spy decoded     : %q\n", meecc.StringFromBits(res.Received))
	fmt.Printf("bit rate        : %.1f KBps (paper: ~35 KBps)\n", res.KBps)
	fmt.Printf("raw error rate  : %.2f%% (paper: 1.7%%)\n", 100*res.ErrorRate)
	fmt.Printf("eviction set    : %d ways (the MEE cache associativity)\n", res.EvictionSetSize)
	fmt.Printf("setup time      : %.1f ms of simulated machine time\n", float64(res.SetupCycles)/4e6)
}
