// Evaluate candidate MEE-cache hardening schemes against the covert
// channel — the quantitative extension of the paper's Section 5.5
// discussion. Way partitioning is deliberately absent: as the paper notes,
// the integrity tree is shared between all enclaves, so partitioning the
// cache by tenant cannot be applied directly.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"

	"meecc"
)

func main() {
	fmt.Println("channel vs hardened MEE-cache variants (128-bit payload, 15000-cycle windows):")
	fmt.Println()
	for _, m := range meecc.MitigationStudy(meecc.DefaultOptions(9), 15000, 128) {
		status := fmt.Sprintf("error rate %5.1f%%", 100*m.ErrorRate)
		if m.SetupFailed {
			status = "attack setup failed: " + m.Detail
		}
		verdict := "channel survives"
		if m.Defeated() {
			verdict = "channel defeated"
		}
		fmt.Printf("  %-20s %-60s %s\n", m.Name, status, verdict)
	}
	fmt.Println()
	fmt.Println("takeaway: randomizing replacement breaks Algorithm 1's eviction-set discovery;")
	fmt.Println("noise injection trades MEE hit rate for channel errors; halving the ways does not help")
}
