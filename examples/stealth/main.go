// Compare the MEE-cache covert channel with a classic LLC Prime+Probe
// covert channel, both in throughput and in what a hardware-performance-
// counter-based detector would see during transmission. This is the
// paper's stealth argument (Sections 1 and 5.5) made quantitative: the
// LLC channel hammers one LLC set, a signature detectors key on, while
// the MEE channel's conflicts live in the MEE cache, which no counter
// exposes.
//
//	go run ./examples/stealth
package main

import (
	"fmt"
	"log"

	"meecc"
)

func main() {
	rows, err := meecc.StealthStudy(meecc.DefaultOptions(83), 15000, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("128-bit transmission, detector-visible footprint:")
	fmt.Println()
	fmt.Printf("  %-20s %10s %18s %22s %15s\n",
		"attack", "error", "LLC evictions/bit", "hottest-LLC-set share", "MEE reads/bit")
	for _, r := range rows {
		fmt.Printf("  %-20s %9.1f%% %18.1f %22.3f %15.1f\n",
			r.Attack, 100*r.ErrorRate, r.LLCEvictionsPerBit, r.LLCHottestShare, r.MEEReadsPerBit)
	}
	fmt.Println()
	fmt.Println("the LLC channel is faster, but its conflict evictions concentrate on one")
	fmt.Println("cache set — exactly what CacheShield-style monitors alarm on; the MEE")
	fmt.Println("channel's eviction pattern is invisible to LLC instrumentation")
}
