// Package meecc is a full, simulator-backed reproduction of "A Novel Covert
// Channel Attack Using Memory Encryption Engine Cache" (Han & Kim, DAC
// 2019): the first covert channel over the MEE cache, the small shared
// cache inside Intel SGX's Memory Encryption Engine that holds recently
// verified integrity-tree lines.
//
// Because the attack needs SGX hardware with cycle-accurate timing, this
// library substitutes a deterministic discrete-event simulation of the
// whole memory subsystem — cores, L1/L2/LLC with clflush, DRAM, the MEE
// with a real (AES-based) encryption and counter-tree integrity pipeline,
// and the SGX runtime restrictions (no rdtsc or hugepages in enclaves,
// OCALL costs, the hyperthread timer). Timing is calibrated to the paper's
// published numbers; see DESIGN.md for the substitution argument.
//
// The facade re-exports the library surface:
//
//   - machine and experiment configuration: Options, DefaultOptions;
//   - the covert channel (Algorithm 2): ChannelConfig,
//     DefaultChannelConfig, RunChannel;
//   - reverse engineering (§4): MeasureCapacity, ReverseEngineer,
//     FindEvictionSet;
//   - characterization (§5.1): CharacterizeLatency;
//   - the Prime+Probe baseline (§5.2): RunPrimeProbe;
//   - evaluation sweeps (§5.4): WindowSweep, NoiseStudy;
//   - extensions: MitigationStudy, EvictionStudy;
//   - robustness: FaultConfig (deterministic fault injection) and
//     RunResilient (the adaptive session layer that survives it).
//
// Quickstart (see examples/quickstart):
//
//	cfg := meecc.DefaultChannelConfig(42)
//	cfg.Bits = meecc.BitsFromString("HELLO")
//	res, err := meecc.RunChannel(cfg)
//	// res.Received, res.ErrorRate, res.KBps ...
//
// Every run is reproducible bit-for-bit given its seed.
package meecc

import (
	"meecc/internal/core"
	"meecc/internal/enclave"
	"meecc/internal/fault"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// Cycles counts simulated CPU cycles (4 GHz by default, as on the paper's
// i7-6700K).
type Cycles = sim.Cycles

// Options selects the simulated machine an experiment runs on.
type Options = core.Options

// ChannelConfig parameterizes a covert-channel run.
type ChannelConfig = core.ChannelConfig

// ChannelResult reports a covert-channel run.
type ChannelResult = core.ChannelResult

// CapacityResult is the Figure 4 dataset.
type CapacityResult = core.CapacityResult

// CapacityPoint is one Figure 4 point.
type CapacityPoint = core.CapacityPoint

// Organization is the reverse-engineered MEE cache configuration.
type Organization = core.Organization

// Algorithm1Result is the output of eviction-address-set discovery.
type Algorithm1Result = core.Algorithm1Result

// LatencyResult is the Figure 5 dataset.
type LatencyResult = core.LatencyResult

// PrimeProbeResult is the Figure 6(a) dataset.
type PrimeProbeResult = core.PrimeProbeResult

// SweepPoint is one Figure 7 point.
type SweepPoint = core.SweepPoint

// NoiseKind selects a Figure 8 background environment.
type NoiseKind = core.NoiseKind

// NoiseRun is one Figure 8 panel.
type NoiseRun = core.NoiseRun

// MitigationResult is one row of the mitigation ablation.
type MitigationResult = core.MitigationResult

// EvictionStudyResult is one row of the eviction-phase ablation.
type EvictionStudyResult = core.EvictionStudyResult

// AllocMode controls EPC physical-frame contiguity.
type AllocMode = enclave.AllocMode

// Platform is the simulated machine (exposed for advanced use: writing
// custom actors against the Thread API).
type Platform = platform.Platform

// Thread is a simulated hardware thread (the attack-code "ISA").
type Thread = platform.Thread

// Noise environments (Figure 8).
const (
	NoiseNone   = core.NoiseNone
	NoiseMemory = core.NoiseMemory
	NoiseMEE512 = core.NoiseMEE512
	NoiseMEE4K  = core.NoiseMEE4K
)

// EPC allocation modes.
const (
	AllocSequential = enclave.AllocSequential
	AllocShuffled   = enclave.AllocShuffled
	AllocChunked    = enclave.AllocChunked
)

// DefaultOptions returns the paper-testbed machine options for a seed.
func DefaultOptions(seed uint64) Options { return core.DefaultOptions(seed) }

// DefaultChannelConfig returns the paper's operating point (15000-cycle
// window, two-phase eviction).
func DefaultChannelConfig(seed uint64) ChannelConfig {
	return core.DefaultChannelConfig(seed)
}

// RunChannel executes one covert-channel session end to end.
func RunChannel(cfg ChannelConfig) (*ChannelResult, error) { return core.RunChannel(cfg) }

// RunPrimeProbe executes the §5.2 Prime+Probe baseline.
func RunPrimeProbe(cfg ChannelConfig) (*PrimeProbeResult, error) { return core.RunPrimeProbe(cfg) }

// MeasureCapacity runs the §4.1 capacity experiment (Figure 4).
func MeasureCapacity(opts Options, sizes []int, trials int) (*CapacityResult, error) {
	return core.MeasureCapacity(opts, sizes, trials)
}

// ReverseEngineer recovers the MEE cache organization (§4).
func ReverseEngineer(opts Options, trials int) (*Organization, *CapacityResult, *Algorithm1Result, error) {
	return core.ReverseEngineer(opts, trials)
}

// CharacterizeLatency runs the §5.1 latency characterization (Figure 5).
func CharacterizeLatency(opts Options, samplesPerStride int) (*LatencyResult, error) {
	return core.CharacterizeLatency(opts, samplesPerStride)
}

// WindowSweep runs the §5.4 bit-rate/error-rate sweep (Figure 7).
func WindowSweep(opts Options, windows []Cycles, nbits int) []SweepPoint {
	return core.WindowSweep(opts, windows, nbits)
}

// PaperWindows returns Figure 7's window sizes.
func PaperWindows() []Cycles { return core.PaperWindows() }

// SweepStats aggregates one window size across seeds (Figure 7 error bars).
type SweepStats = core.SweepStats

// MultiSeedSweep runs the Figure 7 sweep across independent seeds and
// aggregates per-window error statistics.
func MultiSeedSweep(opts Options, windows []Cycles, nbits, seeds int) []SweepStats {
	return core.MultiSeedSweep(opts, windows, nbits, seeds)
}

// NoiseStudy runs the §5.4 robustness experiments (Figure 8).
func NoiseStudy(opts Options, window Cycles, nbits int) []NoiseRun {
	return core.NoiseStudy(opts, window, nbits)
}

// MitigationStudy runs the channel against hardened MEE-cache variants
// (extension of §5.5).
func MitigationStudy(opts Options, window Cycles, nbits int) []MitigationResult {
	return core.MitigationStudy(opts, window, nbits)
}

// EvictionStudy isolates Algorithm 2's eviction mechanism per replacement
// policy and phase count (§5.3 ablation).
func EvictionStudy(opts Options, policy string, twoPhase bool, windows int) (*EvictionStudyResult, error) {
	return core.EvictionStudy(opts, policy, twoPhase, windows)
}

// LLCChannelResult reports the classic LLC Prime+Probe covert channel —
// the baseline attack family the paper positions the MEE channel against.
type LLCChannelResult = core.LLCChannelResult

// AttackFootprint is the detector-visible statistics of a transmission.
type AttackFootprint = core.AttackFootprint

// StealthRow is one row of the stealth comparison.
type StealthRow = core.StealthRow

// RunLLCChannel executes a classic LLC Prime+Probe covert channel (outside
// enclaves, with hugepages and rdtsc — everything SGX takes away).
func RunLLCChannel(cfg ChannelConfig) (*LLCChannelResult, error) {
	return core.RunLLCChannel(cfg)
}

// StealthStudy contrasts the MEE channel's detector-visible footprint with
// an LLC Prime+Probe channel's (§1/§5.5 stealth argument, quantified).
func StealthStudy(opts Options, window Cycles, nbits int) ([]StealthRow, error) {
	return core.StealthStudy(opts, window, nbits)
}

// ParallelResult reports a multi-lane channel run.
type ParallelResult = core.ParallelResult

// RunParallelChannel drives the multi-lane extension: k trojan threads on
// distinct cores transmit k bits per window to one spy (future work beyond
// the paper; doubles the bit rate on the 4-core testbed).
func RunParallelChannel(cfg ChannelConfig, lanes int) (*ParallelResult, error) {
	return core.RunParallelChannel(cfg, lanes)
}

// InBandResult reports a transfer with in-band synchronization.
type InBandResult = core.InBandResult

// RunInBandChannel runs the channel without an agreed transmission start:
// the trojan repeats a framed transmission (preamble + sync word +
// payload) and the spy locks onto it by phase-sweeping its probe grid.
func RunInBandChannel(cfg ChannelConfig) (*InBandResult, error) {
	return core.RunInBandChannel(cfg)
}

// ReliableResult reports a framed, forward-error-corrected transfer.
type ReliableResult = core.ReliableResult

// RunReliable transmits payload over the channel with Hamming(7,4) FEC,
// interleaving, and CRC-16 framing — the error handling the paper defers
// to future work.
func RunReliable(cfg ChannelConfig, payload []byte) (*ReliableResult, error) {
	return core.RunReliable(cfg, payload)
}

// FaultKind enumerates the deterministic fault injectors (thread migration,
// timer jitter/drift, EPC paging, MEE-cache flushes, noise storms).
type FaultKind = fault.Kind

// FaultConfig selects which faults to inject into a run and how hard; the
// schedule is a pure function of its seed.
type FaultConfig = fault.Config

// FaultEvent is one scheduled fault occurrence, echoed back in results.
type FaultEvent = fault.Event

// Fault kinds.
const (
	FaultMigration = fault.Migration
	FaultTimer     = fault.Timer
	FaultPaging    = fault.Paging
	FaultMEEFlush  = fault.MEEFlush
	FaultStorm     = fault.Storm
)

// AllFaultKinds returns every fault kind.
func AllFaultKinds() []FaultKind { return fault.AllKinds() }

// ResilientConfig parameterizes the adaptive session layer.
type ResilientConfig = core.ResilientConfig

// ResilientResult reports an adaptive session: the payload (when delivered),
// goodput, and the degradation report of every control action taken.
type ResilientResult = core.ResilientResult

// DegradationReport is the ordered log of control actions a resilient
// session took (retransmissions, recalibrations, resyncs, window widening,
// repetition coding, aborts).
type DegradationReport = core.DegradationReport

// ActionKind labels one control action in a DegradationReport.
type ActionKind = core.ActionKind

// Control actions the adaptive session layer can take.
const (
	ActRetransmit  = core.ActRetransmit
	ActRecalibrate = core.ActRecalibrate
	ActResync      = core.ActResync
	ActWidenWindow = core.ActWidenWindow
	ActRepetition  = core.ActRepetition
	ActBackoff     = core.ActBackoff
	ActAbort       = core.ActAbort
)

// DefaultResilientConfig returns the adaptive session layer's defaults on
// the paper's operating point.
func DefaultResilientConfig(seed uint64) ResilientConfig {
	return core.DefaultResilientConfig(seed)
}

// RunResilient transmits payload through the adaptive session layer:
// chunked ARQ with per-chunk CRC, pilot-based link-health probing,
// threshold recalibration, eviction-set re-acquisition, and graceful
// degradation (window widening, then repetition coding). It either delivers
// a CRC-intact payload or returns an explicit degradation error — never a
// silently corrupted result.
func RunResilient(cfg ResilientConfig, payload []byte) (*ResilientResult, error) {
	return core.RunResilient(cfg, payload)
}

// DetectionRow reports one workload's visibility to the HPC attack monitor.
type DetectionRow = core.DetectionRow

// DetectionStudy runs a CacheShield-style per-set LLC eviction monitor
// against the MEE channel, the LLC Prime+Probe channel, and a benign
// control — the paper's stealth claim as an operational detector.
func DetectionStudy(opts Options, window Cycles, nbits int) ([]DetectionRow, error) {
	return core.DetectionStudy(opts, window, nbits)
}

// ActivityResult reports the victim-activity inference experiment.
type ActivityResult = core.ActivityResult

// InferActivity runs the side-channel-direction extension: a spy infers
// when a victim enclave is in a memory-intensive phase from the latency of
// the spy's own protected accesses (shared-MEE contention).
func InferActivity(opts Options, epochs int, epochLen Cycles) (*ActivityResult, error) {
	return core.InferActivity(opts, epochs, epochLen)
}

// OverheadRow characterizes SGX memory-protection cost per working set.
type OverheadRow = core.OverheadRow

// MeasureOverhead measures enclave-vs-plain uncached read latency across
// working-set sizes (substrate validation: the well-known SGX slowdown
// curve, growing once the MEE cache no longer covers the working set).
func MeasureOverhead(opts Options, workingSets []int, samples int) ([]OverheadRow, error) {
	return core.MeasureOverhead(opts, workingSets, samples)
}

// TimingMechanismResult is one row of the §3 time-source comparison.
type TimingMechanismResult = core.TimingMechanismResult

// TimingStudy compares the enclave time sources of Figure 2 (§3): rdtsc,
// OCALL-based rdtsc, and the hyperthread timer (analytic and actor-backed).
func TimingStudy(opts Options, samples int) ([]TimingMechanismResult, error) {
	return core.TimingStudy(opts, samples)
}

// AlternatingBits returns '0101...' of length n.
func AlternatingBits(n int) []byte { return core.AlternatingBits(n) }

// PatternBits repeats a '0'/'1' pattern string to n bits.
func PatternBits(pattern string, n int) []byte { return core.PatternBits(pattern, n) }

// RandomBits returns n seeded random bits.
func RandomBits(seed uint64, n int) []byte { return core.RandomBits(seed, n) }

// BitsFromString encodes a byte string as bits, LSB first per byte — a
// convenient payload format for the examples.
func BitsFromString(s string) []byte {
	out := make([]byte, 0, len(s)*8)
	for _, b := range []byte(s) {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// StringFromBits decodes BitsFromString's encoding; trailing partial bytes
// are dropped.
func StringFromBits(bits []byte) string {
	n := len(bits) / 8
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var b byte
		for j := 0; j < 8; j++ {
			b |= (bits[i*8+j] & 1) << j
		}
		out[i] = b
	}
	return string(out)
}
