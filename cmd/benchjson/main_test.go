package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: meecc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig6bCovertChannel 	       2	  97245250 ns/op	        33.33 KBps	         0.03333 err/bit	 5761944 B/op	   38909 allocs/op
BenchmarkFig8Noise          	       2	 547205127 ns/op	         6.000 errBitsMEE4K	         1.000 errBitsQuiet	31911632 B/op	  165397 allocs/op
PASS
ok  	meecc	1.969s
pkg: meecc/internal/sim
BenchmarkActorSwitch-8   	 5000000	       250.0 ns/op	       0 B/op	       0 allocs/op
PASS
pkg: meecc/internal/mee
BenchmarkReadObserved-8  	 1000000	      1020 ns/op	         1.003 meeHits/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" {
		t.Fatalf("context lines not captured: %+v", f)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkFig6bCovertChannel" || b.Pkg != "meecc" || b.N != 2 {
		t.Fatalf("bench header wrong: %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 97245250, "KBps": 33.33, "err/bit": 0.03333, "B/op": 5761944, "allocs/op": 38909,
	} {
		if got := b.Values[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if f.Benchmarks[2].Pkg != "meecc/internal/sim" {
		t.Errorf("pkg context did not advance: %q", f.Benchmarks[2].Pkg)
	}
	// Observability metrics emitted via b.ReportMetric parse like any other
	// "value unit" pair.
	mee := f.Benchmarks[3]
	if mee.Pkg != "meecc/internal/mee" || mee.Name != "BenchmarkReadObserved-8" {
		t.Fatalf("custom-metric benchmark identity wrong: %+v", mee)
	}
	if got := mee.Values["meeHits/op"]; got != 1.003 {
		t.Errorf("meeHits/op = %v, want 1.003", got)
	}
	// Raw must round-trip the input verbatim, line for line.
	if got := strings.Join(f.Raw, "\n") + "\n"; got != sample {
		t.Error("raw lines do not round-trip the input")
	}
}

// TestJSONRoundTripPreservesCustomMetrics is the storage contract: parse →
// JSON → replay raw → re-parse must reproduce every benchmark, custom units
// included. This is what lets a stored baseline feed benchstat later.
func TestJSONRoundTripPreservesCustomMetrics(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != f.SchemaVersion {
		t.Errorf("schema version %d, want %d", back.SchemaVersion, f.SchemaVersion)
	}
	if !reflect.DeepEqual(back.Benchmarks, f.Benchmarks) {
		t.Errorf("benchmarks changed across JSON round trip:\n%+v\n---\n%+v", back.Benchmarks, f.Benchmarks)
	}
	// Replaying the stored raw lines (what -print emits) re-parses to the
	// same benchmarks, meeHits/op and all.
	replayed, err := parse(strings.NewReader(strings.Join(back.Raw, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Benchmarks, f.Benchmarks) {
		t.Errorf("raw replay does not reproduce benchmarks:\n%+v\n---\n%+v", replayed.Benchmarks, f.Benchmarks)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",                     // no fields
		"BenchmarkBroken 12",                  // no measurements
		"BenchmarkBroken x 100 ns/op",         // bad iteration count
		"BenchmarkBroken 2 fast ns/op",        // bad value
		"BenchmarkBroken 2 100 ns/op dangler", // odd trailing field
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
