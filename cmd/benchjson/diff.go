package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"text/tabwriter"
)

// runDiff implements `benchjson diff [-threshold pct] [-metric unit] old new`:
// a benchstat-style comparison of two bench.json baselines, ending in the
// geomean delta over the benchmarks present in both. Repeated counts of one
// benchmark are averaged; the delta column is (new-old)/old. Regressions
// past the threshold are reported on stderr; by default that report is
// advisory (exit 0 — the soft gate for noisy smoke timings), while
// -fail-on-regress turns it into a hard gate (exit 1). Exit 2 means usage
// or file errors.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10,
		"maximum allowed regression on the gate metric, in percent (negative disables the gate)")
	metric := fs.String("metric", "ns/op", "unit the regression gate applies to")
	subset := fs.Bool("subset", false,
		"treat old as a superset baseline: only report benchmarks present in new")
	failOnRegress := fs.Bool("fail-on-regress", false,
		"exit nonzero when a benchmark regresses past the threshold (default: report only)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-threshold pct] [-metric unit] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldF, err := loadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newF, err := loadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	oldM, names := groupMeans(oldF, *metric)
	newM, newNames := groupMeans(newF, *metric)
	for _, n := range newNames {
		if _, ok := oldM[n]; !ok {
			names = append(names, n)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\told %s\tnew %s\tdelta\n", *metric, *metric)
	var regressions []string
	var ratios []float64
	for _, name := range names {
		o, haveOld := oldM[name]
		n, haveNew := newM[name]
		switch {
		case !haveNew:
			if *subset {
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t(gone)\t\n", name, formatValue(o, *metric))
		case !haveOld:
			fmt.Fprintf(w, "%s\t(new)\t%s\t\n", name, formatValue(n, *metric))
		default:
			delta := math.NaN()
			if o != 0 {
				delta = (n - o) / o * 100
				ratios = append(ratios, n/o)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%+.1f%%\n",
				name, formatValue(o, *metric), formatValue(n, *metric), delta)
			if *threshold >= 0 && o != 0 && delta > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %s -> %s (%+.1f%% > +%g%%)",
						name, *metric, formatValue(o, *metric), formatValue(n, *metric), delta, *threshold))
			}
		}
	}
	if len(ratios) > 0 {
		logSum := 0.0
		for _, r := range ratios {
			logSum += math.Log(r)
		}
		fmt.Fprintf(w, "geomean\t\t\t%+.1f%%\n", (math.Exp(logSum/float64(len(ratios)))-1)*100)
	}
	w.Flush()

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchjson: %d benchmark(s) regressed past the %g%% threshold:\n",
			len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		if *failOnRegress {
			return 1
		}
		fmt.Fprintln(os.Stderr, "benchjson: advisory only (pass -fail-on-regress to gate on this)")
	}
	return 0
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks (is this a benchjson artifact?)", path)
	}
	return &f, nil
}

// groupMeans averages the metric over repeated counts of each benchmark,
// keyed like benchstat: the Benchmark prefix and the -GOMAXPROCS suffix are
// stripped. The package always qualifies the name, so a single-package run
// (the bench-compare smoke) lines up against a whole-tree baseline.
func groupMeans(f *File, metric string) (map[string]float64, []string) {
	sums := map[string]float64{}
	counts := map[string]int{}
	var order []string
	for _, b := range f.Benchmarks {
		v, ok := b.Values[metric]
		if !ok {
			continue
		}
		name := displayName(b.Name)
		if b.Pkg != "" {
			name = b.Pkg + "." + name
		}
		if counts[name] == 0 {
			order = append(order, name)
		}
		sums[name] += v
		counts[name]++
	}
	means := make(map[string]float64, len(sums))
	for name, sum := range sums {
		means[name] = sum / float64(counts[name])
	}
	return means, order
}

func displayName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if suffix := name[i+1:]; suffix != "" && strings.Trim(suffix, "0123456789") == "" {
			name = name[:i]
		}
	}
	return name
}

// formatValue renders a metric value; ns/op gets human time units so the
// sweep benchmarks (seconds) and hot-path benchmarks (nanoseconds) both
// read naturally.
func formatValue(v float64, metric string) string {
	if metric != "ns/op" {
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			return fmt.Sprintf("%.0f", v)
		}
		return fmt.Sprintf("%.4g", v)
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	default:
		return fmt.Sprintf("%.1fns", v)
	}
}
