// Command benchjson converts `go test -bench` text output into a versioned
// JSON artifact, and back. It is the storage format behind `./ci.sh bench`:
// the JSON carries both parsed per-benchmark values (for dashboards and
// quick jq queries) and the raw benchmark lines verbatim, so a stored
// baseline can be replayed into benchstat at any time:
//
//	go test -run '^$' -bench . -benchmem -count 5 ./... | benchjson -o results/bench.json
//	benchjson -print results/bench.json > old.txt
//	go test -run '^$' -bench . -benchmem -count 5 ./... > new.txt
//	benchstat old.txt new.txt
//
// The `diff` subcommand compares two stored baselines directly and gates on
// regressions (see `./ci.sh bench-compare`):
//
//	benchjson diff -threshold 10 results/bench.json /tmp/new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Values holds every "value unit" pair
// after the iteration count, keyed by unit (ns/op, B/op, allocs/op, plus any
// custom b.ReportMetric units such as KBps or err/bit).
type Benchmark struct {
	Name   string             `json:"name"`
	Pkg    string             `json:"pkg,omitempty"`
	N      int64              `json:"n"`
	Values map[string]float64 `json:"values"`
	Raw    string             `json:"raw"`
}

// File is the bench.json schema. Raw preserves the complete go test output
// line for line; parsing it again must reproduce Benchmarks.
type File struct {
	SchemaVersion int         `json:"schema_version"`
	Goos          string      `json:"goos,omitempty"`
	Goarch        string      `json:"goarch,omitempty"`
	CPU           string      `json:"cpu,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
	Raw           []string    `json:"raw"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	print := flag.String("print", "", "re-emit the raw benchmark text stored in a bench.json")
	flag.Parse()

	if *print != "" {
		if err := emitRaw(*print); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	f, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func emitRaw(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	w := bufio.NewWriter(os.Stdout)
	for _, line := range f.Raw {
		fmt.Fprintln(w, line)
	}
	return w.Flush()
}

// parse consumes go test -bench output. Context lines (goos/goarch/cpu/pkg)
// apply to the benchmark lines that follow them, matching the format go test
// emits per tested package.
func parse(r io.Reader) (*File, error) {
	f := &File{SchemaVersion: 1}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		f.Raw = append(f.Raw, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				f.Benchmarks = append(f.Benchmarks, b)
			}
		}
	}
	return f, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   10   123456 ns/op   500 B/op   7 allocs/op   33.3 KBps
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Pkg: pkg, N: n, Values: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Values[fields[i+1]] = v
	}
	return b, true
}
