package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBenchFile(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(&File{SchemaVersion: 1, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Pkg: "meecc", N: 1, Values: map[string]float64{"ns/op": ns}}
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", []Benchmark{
		bench("BenchmarkStable", 100), bench("BenchmarkStable", 110),
		bench("BenchmarkHot", 1000),
	})
	improved := writeBenchFile(t, dir, "improved.json", []Benchmark{
		bench("BenchmarkStable", 104),
		bench("BenchmarkHot", 500),
	})
	regressed := writeBenchFile(t, dir, "regressed.json", []Benchmark{
		bench("BenchmarkStable", 105),
		bench("BenchmarkHot", 1500),
	})

	if code := runDiff([]string{"-threshold", "10", old, improved}); code != 0 {
		t.Errorf("improvement exited %d, want 0", code)
	}
	// Without -fail-on-regress the regression report is advisory.
	if code := runDiff([]string{"-threshold", "10", old, regressed}); code != 0 {
		t.Errorf("advisory regression exited %d, want 0", code)
	}
	if code := runDiff([]string{"-fail-on-regress", "-threshold", "10", old, regressed}); code != 1 {
		t.Errorf("hard-gated 50%% regression exited %d, want 1", code)
	}
	// A disabled gate never fails on timings.
	if code := runDiff([]string{"-fail-on-regress", "-threshold", "-1", old, regressed}); code != 0 {
		t.Errorf("disabled gate exited %d, want 0", code)
	}
	// Usage and unreadable files are reported distinctly from regressions.
	if code := runDiff([]string{old}); code != 2 {
		t.Errorf("missing operand exited %d, want 2", code)
	}
	if code := runDiff([]string{old, filepath.Join(dir, "absent.json")}); code != 2 {
		t.Errorf("missing file exited %d, want 2", code)
	}
}

func TestDiffToleratesAddedAndRemovedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", []Benchmark{bench("BenchmarkGone", 10)})
	new_ := writeBenchFile(t, dir, "new.json", []Benchmark{bench("BenchmarkAdded", 99)})
	if code := runDiff([]string{"-threshold", "0", old, new_}); code != 0 {
		t.Errorf("disjoint benchmark sets exited %d, want 0", code)
	}
}

func TestGroupMeansAveragesRepeatsAndStripsSuffix(t *testing.T) {
	f := &File{Benchmarks: []Benchmark{
		bench("BenchmarkX-8", 100),
		bench("BenchmarkX-8", 200),
	}}
	means, order := groupMeans(f, "ns/op")
	if len(order) != 1 || order[0] != "meecc.X" {
		t.Fatalf("order = %v, want [meecc.X]", order)
	}
	if means["meecc.X"] != 150 {
		t.Errorf("mean = %v, want 150", means["meecc.X"])
	}
}

// TestDiffSubsetMode pins the bench-compare contract: a smoke run covering
// two benchmarks diffs cleanly against a whole-tree baseline without
// flagging every uncovered benchmark as gone.
func TestDiffSubsetMode(t *testing.T) {
	dir := t.TempDir()
	old := writeBenchFile(t, dir, "old.json", []Benchmark{
		bench("BenchmarkA", 100), bench("BenchmarkB", 100), bench("BenchmarkC", 100),
	})
	new_ := writeBenchFile(t, dir, "new.json", []Benchmark{bench("BenchmarkA", 90)})
	if code := runDiff([]string{"-subset", "-threshold", "10", old, new_}); code != 0 {
		t.Errorf("subset diff exited %d, want 0", code)
	}
	regressed := writeBenchFile(t, dir, "reg.json", []Benchmark{bench("BenchmarkA", 200)})
	if code := runDiff([]string{"-subset", "-fail-on-regress", "-threshold", "10", old, regressed}); code != 1 {
		t.Errorf("subset regression exited %d, want 1", code)
	}
}

func TestFormatValueHumanizesTime(t *testing.T) {
	for v, want := range map[float64]string{
		1.355e9: "1.355s",
		2.5e6:   "2.50ms",
		1200:    "1.20µs",
		250:     "250.0ns",
	} {
		if got := formatValue(v, "ns/op"); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(40834, "allocs/op"); got != "40834" {
		t.Errorf("allocs formatting = %q", got)
	}
}
