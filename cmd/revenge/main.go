// Command revenge reverse-engineers the simulated MEE cache the way
// Section 4 of the paper does on real hardware: the capacity experiment
// (candidate-address-set eviction probability) followed by Algorithm 1
// (eviction-address-set discovery) to recover the associativity, deriving
// the full organization.
//
// Usage:
//
//	revenge [-seed N] [-trials N] [-epc sequential|chunked|shuffled]
package main

import (
	"flag"
	"fmt"
	"os"

	"meecc"
	"meecc/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed")
	trials := flag.Int("trials", 50, "trials per capacity point")
	epc := flag.String("epc", "sequential", "EPC allocation: sequential, chunked, shuffled")
	flag.Parse()

	opts := meecc.DefaultOptions(*seed)
	switch *epc {
	case "sequential":
		opts.EPCMode = meecc.AllocSequential
	case "chunked":
		opts.EPCMode = meecc.AllocChunked
	case "shuffled":
		opts.EPCMode = meecc.AllocShuffled
	default:
		fmt.Fprintf(os.Stderr, "revenge: unknown EPC mode %q\n", *epc)
		os.Exit(2)
	}

	fmt.Println("reverse engineering the MEE cache (Section 4)...")
	org, capRes, a1, err := meecc.ReverseEngineer(opts, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "revenge:", err)
		os.Exit(1)
	}

	fmt.Println("\ncapacity experiment (Figure 4):")
	tb := trace.NewTable("candidates", "eviction probability")
	for _, p := range capRes.Points {
		tb.Row(p.Candidates, p.Probability)
	}
	tb.Render(os.Stdout)

	fmt.Printf("\nAlgorithm 1: index set %d addresses, eviction set %d addresses\n",
		len(a1.IndexSet), len(a1.EvictionSet))
	fmt.Printf("\ndiscovered organization: %v\n", org)
	fmt.Println("paper's result:          64 KB, 8-way set-associative, 128 sets of 64 B lines")
}
