package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"meecc/internal/obs/ops"
	"meecc/internal/serve"
)

// runTop polls a running service's GET /metrics and GET /healthz and renders
// a live terminal dashboard: runs in flight, queue depth, trial throughput,
// memo hit rate, latency quantiles, journal and store sizes. It shares the
// exposition parser with the serve tests, so anything it renders is by
// construction parseable telemetry.
//
// With -once it prints a single snapshot and exits; add -require FAM1,FAM2
// to assert metric families are present (the CI smoke's scrape check).
func runTop() error {
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	var required []string
	if *topRequire != "" {
		for _, f := range strings.Split(*topRequire, ",") {
			if f = strings.TrimSpace(f); f != "" {
				required = append(required, f)
			}
		}
	}

	poll := func() (*ops.Scrape, *serve.Health, error) {
		sc, err := scrapeMetrics(client, base)
		if err != nil {
			return nil, nil, err
		}
		h, err := scrapeHealth(client, base)
		if err != nil {
			return nil, nil, err
		}
		return sc, h, nil
	}

	if *topOnce {
		sc, h, err := poll()
		if err != nil {
			return err
		}
		if err := requireFamilies(sc, required); err != nil {
			return err
		}
		renderDashboard(os.Stdout, base, sc, h, topDeltas{})
		if len(required) > 0 {
			fmt.Printf("require: all %d families present\n", len(required))
		}
		return nil
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	ticker := time.NewTicker(*topInterval)
	defer ticker.Stop()

	var prev topDeltas
	for {
		sc, h, err := poll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "meecc top: %v (retrying in %s)\n", err, *topInterval)
		} else {
			if err := requireFamilies(sc, required); err != nil {
				return err
			}
			fmt.Print("\x1b[H\x1b[2J") // home + clear: repaint in place
			prev = renderDashboard(os.Stdout, base, sc, h, prev)
		}
		select {
		case <-sigCh:
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// scrapeMetrics fetches and parses one exposition.
func scrapeMetrics(client *http.Client, base string) (*ops.Scrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return ops.ParseText(resp.Body)
}

// scrapeHealth fetches GET /healthz; a failure here is reported in-band (the
// dashboard shows the service as unreachable) rather than fatal.
func scrapeHealth(client *http.Client, base string) (*serve.Health, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("GET /healthz: %w", err)
	}
	return &h, nil
}

// requireFamilies asserts every named family appears in the scrape.
func requireFamilies(sc *ops.Scrape, required []string) error {
	var missing []string
	for _, f := range required {
		if !sc.Has(f) {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("metric families missing from /metrics: %s", strings.Join(missing, ", "))
	}
	return nil
}

// topDeltas carries the previous poll's cumulative counters so the next
// render can turn them into rates.
type topDeltas struct {
	at       time.Time
	executed float64
	memoized float64
	requests float64
}

// renderDashboard writes one dashboard frame and returns the counters the
// next frame needs for rate computation.
func renderDashboard(w io.Writer, base string, sc *ops.Scrape, h *serve.Health, prev topDeltas) topDeltas {
	now := time.Now()
	executed := sc.Value("meecc_serve_trials_executed_total")
	memoized := sc.Value("meecc_serve_trials_memoized_total")
	requests := sc.Value("meecc_http_requests_total")

	status := h.Status
	if len(h.Degraded) > 0 {
		status += " (" + strings.Join(h.Degraded, ", ") + ")"
	}
	fmt.Fprintf(w, "meecc top — %s — %s — uptime %s — %s\n",
		base, status, fmtSeconds(h.UptimeSeconds), now.Format("15:04:05"))

	fmt.Fprintf(w, "  runs     active %.0f   queued %.0f   submitted %.0f   done %.0f   failed %.0f   cancelled %.0f   interrupted %.0f   rejected %.0f\n",
		sc.Value("meecc_serve_runs_active"),
		sc.Value("meecc_serve_queue_depth"),
		sc.Value("meecc_serve_runs_submitted_total"),
		labeledValue(sc, "meecc_serve_runs_finished_total", "outcome", "done"),
		labeledValue(sc, "meecc_serve_runs_finished_total", "outcome", "failed"),
		labeledValue(sc, "meecc_serve_runs_finished_total", "outcome", "cancelled"),
		labeledValue(sc, "meecc_serve_runs_finished_total", "outcome", "interrupted"),
		sc.Value("meecc_serve_runs_rejected_total"))

	hit := 0.0
	if total := executed + memoized; total > 0 {
		hit = 100 * memoized / total
	}
	fmt.Fprintf(w, "  trials   executed %.0f (%s)   memoized %.0f   memo hit %.1f%%   memo entries %.0f   inflight %.0f\n",
		executed, fmtRate(executed-prev.executed, now.Sub(prev.at)),
		memoized, hit,
		sc.Value("meecc_serve_memo_entries"),
		sc.Value("meecc_exp_trials_inflight"))

	fmt.Fprintf(w, "  latency  trial p50 %s  p95 %s  p99 %s   queue wait p95 %s   run p95 %s\n",
		fmtSeconds(sc.Quantile("meecc_serve_trial_seconds", 0.50)),
		fmtSeconds(sc.Quantile("meecc_serve_trial_seconds", 0.95)),
		fmtSeconds(sc.Quantile("meecc_serve_trial_seconds", 0.99)),
		fmtSeconds(sc.Quantile("meecc_serve_queue_wait_seconds", 0.95)),
		fmtSeconds(sc.Quantile("meecc_serve_run_seconds", 0.95)))

	fmt.Fprintf(w, "  journal  size %s   appends %.0f   errors %.0f   replayed %.0f   torn-tail recoveries %.0f   fsync p95 %s\n",
		fmtBytes(sc.Value("meecc_journal_size_bytes")),
		sc.Value("meecc_journal_appends_total"),
		sc.Value("meecc_journal_append_errors_total"),
		sc.Value("meecc_journal_replayed_records_total"),
		sc.Value("meecc_journal_torn_tail_recoveries_total"),
		fmtSeconds(sc.Quantile("meecc_journal_fsync_seconds", 0.95)))

	fmt.Fprintf(w, "  store    %s in %.0f blobs   puts %.0f   gets %.0f (%.0f misses)   self-heals %.0f   evictions %.0f\n",
		fmtBytes(sc.Value("meecc_snapstore_bytes")),
		sc.Value("meecc_snapstore_blobs"),
		sc.Value("meecc_snapstore_puts_total"),
		sc.Value("meecc_snapstore_gets_total"),
		sc.Value("meecc_snapstore_get_misses_total"),
		sc.Value("meecc_snapstore_selfheal_deletions_total"),
		sc.Value("meecc_snapstore_evictions_total"))

	fmt.Fprintf(w, "  streams  active %.0f   total %.0f   resumes %.0f   http %.0f reqs (%s)   req p95 %s\n",
		sc.Value("meecc_serve_event_streams_active"),
		sc.Value("meecc_serve_event_streams_total"),
		sc.Value("meecc_serve_event_stream_resumes_total"),
		requests, fmtRate(requests-prev.requests, now.Sub(prev.at)),
		fmtSeconds(sc.Quantile("meecc_http_request_seconds", 0.95)))

	fmt.Fprintf(w, "  process  goroutines %.0f   heap %s   workers %.0f   worker busy %s\n",
		sc.Value("meecc_process_goroutines"),
		fmtBytes(sc.Value("meecc_process_heap_bytes")),
		sc.Value("meecc_exp_workers"),
		fmtSeconds(sc.Value("meecc_exp_worker_busy_seconds")))

	return topDeltas{at: now, executed: executed, memoized: memoized, requests: requests}
}

// labeledValue sums the series of name whose label key has the given value.
func labeledValue(sc *ops.Scrape, name, key, value string) float64 {
	var total float64
	for _, s := range sc.Samples[name] {
		if s.Labels[key] == value {
			total += s.Value
		}
	}
	return total
}

// fmtRate renders a counter delta as an events/second rate; the first frame
// has no baseline and renders as a dash.
func fmtRate(delta float64, elapsed time.Duration) string {
	if elapsed <= 0 || elapsed > time.Hour || delta < 0 {
		return "–/s"
	}
	return fmt.Sprintf("%.1f/s", delta/elapsed.Seconds())
}

// fmtSeconds renders a duration in seconds with a human unit.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.1fs", s)
	default:
		return time.Duration(s * float64(time.Second)).Round(time.Second).String()
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f B", b)
	}
	return fmt.Sprintf("%.1f %s", b, units[i])
}
