package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"meecc/internal/exp"
	"meecc/internal/serve"
)

// runServe starts the experiment service on -addr and blocks until SIGINT/
// SIGTERM, then drains connections and flushes -metrics/-metricsout output.
func runServe() error {
	o := observer()
	srv, err := serve.New(serve.Config{
		Workers:       *workers,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Obs:           o,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	idle := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		signal.Stop(sigCh)
		fmt.Fprintln(os.Stderr, "\nmeecc serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(idle)
	}()
	fmt.Printf("meecc serve: listening on http://%s (store: %s)\n", *addr, storeDesc())
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	<-idle
	return finishObs(o)
}

func storeDesc() string {
	if *storeDir == "" {
		return "in-memory only"
	}
	return *storeDir
}

// runSubmit posts -spec to a running service, follows the run's NDJSON
// event stream, and writes the artifact under -out — the remote counterpart
// of `meecc batch`, producing byte-identical artifact files.
func runSubmit() error {
	if *specPath == "" {
		return fmt.Errorf("submit requires -spec FILE (see examples/specs/)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	resp, err := postWithRetry(base+"/v1/runs", data)
	if err != nil {
		return err
	}
	info, err := decodeInfo(resp)
	if err != nil {
		return err
	}
	fmt.Printf("run %s (spec %s)\n", info.ID, info.SpecSHA256[:12])

	if err := followEvents(base+info.Events, spec.Name); err != nil {
		return err
	}

	art, err := http.Get(base + info.Artifact)
	if err != nil {
		return err
	}
	defer art.Body.Close()
	body, err := io.ReadAll(art.Body)
	if err != nil {
		return err
	}
	if art.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching artifact: %s: %s", art.Status, bytes.TrimSpace(body))
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*outDir, spec.Name+".json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("artifact: %s\n", path)
	return nil
}

// postWithRetry retries refused connections for a few seconds, so a submit
// raced against a just-started server (the CI smoke test) settles instead of
// failing. HTTP-level errors are not retried — the server answered.
func postWithRetry(url string, body []byte) (*http.Response, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			return resp, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("connecting to %s: %w", url, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func decodeInfo(resp *http.Response) (*runInfo, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submitting spec: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var info runInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return nil, fmt.Errorf("decoding submit response: %w", err)
	}
	return &info, nil
}

// runInfo mirrors the service's submit/status response.
type runInfo struct {
	ID         string `json:"id"`
	SpecSHA256 string `json:"spec_sha256"`
	Events     string `json:"events"`
	Artifact   string `json:"artifact"`
}

// followEvents renders the NDJSON stream as progress lines and returns an
// error if the run ends in an error event.
func followEvents(url, name string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type           string `json:"type"`
			Done, Total    int
			CellsDone      int `json:"cells_done"`
			Cells          int
			Failures       int
			TrialsExecuted int64  `json:"trials_executed"`
			TrialsMemoized int64  `json:"trials_memoized"`
			Error          string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("decoding event %q: %w", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials, %d/%d cells   ", name, ev.Done, ev.Total, ev.CellsDone, ev.Cells)
		case "done":
			fmt.Fprintf(os.Stderr, "\r%s: done (%d failures; service totals: %d executed, %d memoized)\n",
				name, ev.Failures, ev.TrialsExecuted, ev.TrialsMemoized)
			return nil
		case "error":
			fmt.Fprintln(os.Stderr)
			return fmt.Errorf("run failed: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	return fmt.Errorf("event stream ended without a terminal event")
}

// runHash prints the spec's content hash — the identity under which the
// serve service memoizes it and manifests record it.
func runHash() error {
	if *specPath == "" {
		return fmt.Errorf("hash requires -spec FILE")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	fmt.Println(spec.Hash())
	return nil
}
