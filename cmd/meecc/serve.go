package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"meecc/internal/exp"
	"meecc/internal/obs/ops"
	"meecc/internal/serve"
)

// runServe starts the experiment service on -addr and blocks until SIGINT/
// SIGTERM. Shutdown is graceful: admission stops, in-flight runs get -grace
// to finish, the journal checkpoints, and only then do the listeners close.
//
// Operational telemetry is always on: GET /metrics serves the Prometheus
// exposition, GET /healthz and /readyz report health, structured logs go to
// stderr (-loglevel, -logformat), and -debugaddr opens net/http/pprof on a
// separate listener so profiling never shares the service port.
func runServe() error {
	o := observer()
	level, err := ops.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	form, err := ops.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	log := ops.NewLogger(os.Stderr, level, form)
	srv, err := serve.New(serve.Config{
		Workers:       *workers,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		JournalPath:   *journalPath,
		MaxConcurrent: *maxRuns,
		MaxPending:    *maxPending,
		RunTimeout:    *runTimeout,
		Obs:           o,
		Log:           log,
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Warn("pprof listener failed", "addr", *debugAddr, "err", err.Error())
			}
		}()
		log.Info("pprof listening", "addr", *debugAddr)
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Bound every connection phase so one stuck peer can't pin the
		// listener: slow request reads, abandoned keep-alives. The write
		// timeout is generous because event streams legitimately stay open
		// for a whole run.
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	idle := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		signal.Stop(sigCh)
		fmt.Fprintf(os.Stderr, "\nmeecc serve: draining (grace %s)\n", *grace)
		// Drain the service first — it stops admission, waits out in-flight
		// runs, and checkpoints the journal; ending the run ends its event
		// streams, so the HTTP shutdown after it has little left to wait for.
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		srv.Shutdown(ctx)
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		close(idle)
	}()
	fmt.Printf("meecc serve: listening on http://%s (store: %s, journal: %s)\n",
		*addr, storeDesc(), journalDesc())
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		return err
	}
	<-idle
	return finishObs(o)
}

func storeDesc() string {
	if *storeDir == "" {
		return "in-memory only"
	}
	return *storeDir
}

func journalDesc() string {
	if *journalPath == "" {
		return "none — runs die with the process"
	}
	return *journalPath
}

// runSubmit posts -spec to a running service, follows the run's NDJSON
// event stream, and writes the artifact under -out — the remote counterpart
// of `meecc batch`, producing byte-identical artifact files. It rides the
// serve.Client retry machinery: connection refusal and 429/503 pushback
// back off exponentially, severed event streams reconnect at the last seen
// offset, and a run interrupted by a server restart is resubmitted — the
// journal's memo makes the resumption re-execute only uncommitted trials.
func runSubmit() error {
	if *specPath == "" {
		return fmt.Errorf("submit requires -spec FILE (see examples/specs/)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &serve.Client{
		BaseURL: base,
		Backoff: serve.DefaultBackoff,
		Rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "meecc submit: "+format+"\n", args...)
		},
	}

	const maxResumes = 5
	for attempt := 0; ; attempt++ {
		info, err := client.Submit(data)
		if err != nil {
			return err
		}
		fmt.Printf("run %s (spec %s)\n", info.ID, info.SpecSHA256[:12])

		var sum runSummary
		last, err := client.Follow(info, 0, renderEvent(spec.Name, &sum))
		if err != nil {
			return err
		}
		switch last.Type {
		case "done":
			sum.print(os.Stderr)
		case "interrupted":
			if attempt >= maxResumes {
				return fmt.Errorf("run interrupted %d times; giving up", attempt+1)
			}
			fmt.Fprintln(os.Stderr, "meecc submit: server went down mid-run; resubmitting to resume from the journal")
			continue
		case "cancelled":
			fmt.Fprintf(os.Stderr, "meecc submit: run was cancelled; writing the partial artifact\n")
		default:
			return fmt.Errorf("run failed: %s", last.Error)
		}

		body, err := client.Artifact(info)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, spec.Name+".json")
		if err := os.WriteFile(path, body, 0o644); err != nil {
			return err
		}
		fmt.Printf("artifact: %s\n", path)
		return nil
	}
}

// runSummary accumulates the wall-clock lifecycle marks the event stream
// carries (every event is stamped with a Unix-millisecond TS by the server)
// so submit can print queue wait and run duration without any client-side
// clock — the numbers are the server's own, robust to client reconnects.
type runSummary struct {
	queuedTS, startedTS, doneTS int64
	executed, memoized          int64
}

// print writes the final wall-clock summary line. Missing marks (a stream
// resumed past its queued event, a pre-telemetry server) degrade to "?".
func (s *runSummary) print(w *os.File) {
	wait, dur := "?", "?"
	if s.queuedTS > 0 && s.startedTS >= s.queuedTS {
		wait = (time.Duration(s.startedTS-s.queuedTS) * time.Millisecond).String()
	}
	if s.startedTS > 0 && s.doneTS >= s.startedTS {
		dur = (time.Duration(s.doneTS-s.startedTS) * time.Millisecond).String()
	}
	fmt.Fprintf(w, "summary: queue wait %s, run %s, trials: %d executed / %d memoized\n",
		wait, dur, s.executed, s.memoized)
}

// renderEvent turns the run's event stream into progress lines on stderr and
// captures the lifecycle timestamps for the final summary.
func renderEvent(name string, sum *runSummary) func(serve.Event) {
	return func(ev serve.Event) {
		switch ev.Type {
		case "queued":
			sum.queuedTS = ev.TS
		case "started":
			sum.startedTS = ev.TS
		case "progress":
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials, %d/%d cells   ",
				name, ev.Done, ev.Total, ev.CellsDone, ev.Cells)
		case "done":
			sum.doneTS = ev.TS
			sum.executed = ev.RunExecuted
			sum.memoized = ev.RunMemoized
			fmt.Fprintf(os.Stderr, "\r%s: done (%d failures; service totals: %d executed, %d memoized)\n",
				name, ev.Failures, ev.TrialsExecuted, ev.TrialsMemoized)
		case "error", "cancelled", "interrupted":
			fmt.Fprintln(os.Stderr)
		}
	}
}

// runHash prints the spec's content hash — the identity under which the
// serve service memoizes it and manifests record it.
func runHash() error {
	if *specPath == "" {
		return fmt.Errorf("hash requires -spec FILE")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	fmt.Println(spec.Hash())
	return nil
}
