// Command meecc drives the MEE-cache covert channel and the studies around
// it on the simulated SGX machine.
//
// Usage:
//
//	meecc [send] [-msg TEXT] [-window CYCLES] [-seed N] [-noise KIND]
//	      [-policy NAME] [-reliable] [-inband] [-lanes N] [-v]
//	meecc sweep    [-seed N] [-bits N] [-trials N] [-workers N]  # Figure 7
//	meecc noise    [-seed N] [-bits N] [-trials N] [-workers N]  # Figure 8
//	meecc batch    -spec FILE [-out DIR] [-workers N]            # declarative grid
//	meecc chaos    [-seed N] [-trials N] [-faults LIST] [-intensities LIST]
//	               [-payload N] [-out DIR] [-workers N]          # fault campaign
//	meecc latency  [-seed N]                   # Figure 5
//	meecc stealth  [-seed N]                   # MEE vs LLC P+P footprint
//	meecc overhead [-seed N]                   # SGX slowdown curve
//	meecc timing   [-seed N]                   # §3 time sources
//	meecc activity [-seed N]                   # victim-activity inference
//	meecc inspect  FILE                        # render a snapshot/trace/artifact
//	meecc serve    [-addr HOST:PORT] [-storedir DIR] [-storemax BYTES] [-workers N]
//	               [-journal FILE] [-maxruns N] [-maxpending N] [-runtimeout D]
//	               [-grace D] [-readtimeout D] [-writetimeout D] [-idletimeout D]
//	               [-loglevel L] [-logformat text|json] [-debugaddr HOST:PORT]
//	meecc submit   -spec FILE [-addr HOST:PORT] [-out DIR]
//	meecc top      [-addr HOST:PORT] [-interval D] [-once] [-require FAMILIES]
//	meecc hash     -spec FILE                  # print the spec's content hash
//
// serve runs the experiment service: POST /v1/runs accepts a spec, GET
// /v1/runs/{id}/events streams NDJSON progress (resumable with ?from=SEQ),
// DELETE /v1/runs/{id} cancels a run, GET /v1/runs/{id}/artifact returns the
// finished artifact (byte-identical to a local batch run of the same spec).
// Completed trials are memoized by content hash, and with -storedir warm
// channel state persists on disk across submissions and restarts.
//
// With -journal the service is crash-safe: admitted specs and every
// completed trial land in a write-ahead log before they are acknowledged,
// so a kill -9 mid-run loses nothing that committed — restart with the same
// -journal and resubmit the spec, and only the uncommitted trials
// re-execute, yielding a byte-identical artifact. Admission is bounded
// (-maxruns executing, -maxpending queued, then 429 + Retry-After), runs
// can carry a -runtimeout deadline, and SIGTERM/SIGINT drains in-flight
// runs for up to -grace before checkpointing the journal and exiting.
//
// submit is the matching client: it posts a spec, follows the event stream,
// and writes the artifact under -out. It retries refused connections and
// admission pushback with exponential backoff, reconnects severed event
// streams at the last seen offset, and resubmits runs a server restart
// interrupted. On success it prints a wall-clock summary (queue wait, run
// duration, trials executed vs memoized) computed from the server's own
// event timestamps.
//
// serve always exposes wall-clock operational telemetry, strictly separate
// from the sim-clock metrics that feed artifacts: GET /metrics serves a
// Prometheus text exposition, GET /healthz reports liveness (with a degraded
// flag after journal append failures or store self-heals), GET /readyz flips
// to 503 while draining, and GET /v1/runs/{id}/trace exports a run's
// wall-clock lifecycle as Chrome trace-event JSON. Structured logs go to
// stderr (-loglevel, -logformat), and -debugaddr opens net/http/pprof on a
// separate listener. top renders those metrics as a live terminal dashboard
// polling -addr every -interval; with -once it prints a single snapshot, and
// -require FAM1,FAM2 makes it exit nonzero when families are missing (the CI
// scrape check).
//
// Noise kinds: none, memory, mee512, mee4k. Policies: lru (default),
// tree-plru, bit-plru, fifo, random, nru, srrip.
//
// Every command additionally accepts -cpuprofile FILE and -memprofile FILE
// to capture pprof profiles of the run (inspect with `go tool pprof FILE`),
// plus the observability flags: -metrics prints a counter/histogram report
// after the run, -metricsout FILE writes the snapshot as JSON, and
// -trace FILE exports a sim-clock timeline (Chrome trace-event JSON for
// Perfetto, or CSV when FILE ends in .csv). Grid subcommands (sweep, noise,
// batch, chaos) embed per-trial metrics snapshots in the artifact instead
// of tracing.
//
// The sweep, noise, and batch subcommands run on the internal/exp
// experiment harness: every (cell, trial) pair fans out over a worker
// pool, per-trial seeds derive deterministically from the base seed, and
// results are byte-identical at any worker count. batch reads a JSON spec
// (see examples/specs/) and writes a versioned artifact plus a run
// manifest under -out.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"meecc"
	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/fault"
	"meecc/internal/mee"
	"meecc/internal/obs"
	"meecc/internal/trace"
)

var (
	msg      = flag.String("msg", "MEE CACHE COVERT CHANNEL", "message the trojan transmits")
	window   = flag.Int64("window", 15000, "timing window Tsync in cycles")
	seed     = flag.Uint64("seed", 42, "simulation seed")
	noise    = flag.String("noise", "none", "background noise: none, memory, mee512, mee4k")
	policy   = flag.String("policy", "", "MEE cache replacement policy override")
	reliable = flag.Bool("reliable", false, "use FEC framing (Hamming(7,4) + CRC-16 + ARQ)")
	inband   = flag.Bool("inband", false, "synchronize in-band (no agreed transmission start)")
	lanes    = flag.Int("lanes", 1, "parallel trojan lanes (1 or 2)")
	bits     = flag.Int("bits", 256, "payload bits for sweep/noise studies")
	trials   = flag.Int("trials", 1, "trials per grid cell for sweep/noise")
	workers  = flag.Int("workers", 0, "worker goroutines for sweep/noise/batch (0 = GOMAXPROCS)")
	specPath = flag.String("spec", "", "JSON experiment spec for batch")
	outDir   = flag.String("out", "results", "artifact directory for batch/chaos")
	verbose  = flag.Bool("v", false, "print the per-bit probe trace")

	faults      = flag.String("faults", "all", "chaos fault kinds: all, none, or a comma list (migration,timer,paging,meeflush,storm)")
	intensities = flag.String("intensities", "0,1,2,4,8", "chaos fault intensities (comma list)")
	payloadLen  = flag.Int("payload", 16, "chaos payload length in bytes")

	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")

	addr         = flag.String("addr", "127.0.0.1:8311", "listen/target address for serve/submit/top")
	storeDir     = flag.String("storedir", "", "snapstore directory for serve's warm-state disk tier (empty = in-memory only)")
	storeMax     = flag.Int64("storemax", 0, "snapstore size bound in bytes (0 = unbounded)")
	journalPath  = flag.String("journal", "", "serve's write-ahead log; makes runs and trials durable across kill -9 (empty = no durability)")
	maxRuns      = flag.Int("maxruns", 4, "serve: max concurrently executing runs")
	maxPending   = flag.Int("maxpending", 64, "serve: max queued runs before submissions get 429")
	runTimeout   = flag.Duration("runtimeout", 0, "serve: per-run wall-clock deadline (0 = none)")
	grace        = flag.Duration("grace", 10*time.Second, "serve: shutdown grace period for in-flight runs")
	readTimeout  = flag.Duration("readtimeout", 30*time.Second, "serve: HTTP read timeout per request")
	writeTimeout = flag.Duration("writetimeout", 10*time.Minute, "serve: HTTP write timeout (bounds event-stream lifetime)")
	idleTimeout  = flag.Duration("idletimeout", 2*time.Minute, "serve: HTTP keep-alive idle timeout")
	logLevel     = flag.String("loglevel", "info", "serve: structured-log threshold (debug, info, warn, error)")
	logFormat    = flag.String("logformat", "text", "serve: structured-log encoding (text = logfmt, json)")
	debugAddr    = flag.String("debugaddr", "", "serve: open net/http/pprof on this extra address (empty = off)")
	topInterval  = flag.Duration("interval", 2*time.Second, "top: poll interval")
	topOnce      = flag.Bool("once", false, "top: print one snapshot and exit")
	topRequire   = flag.String("require", "", "top: comma list of metric families that must be present (exit nonzero otherwise)")

	metricsOn  = flag.Bool("metrics", false, "collect metrics and print a report after the run")
	metricsOut = flag.String("metricsout", "", "write the metrics snapshot JSON to this file")
	tracePath  = flag.String("trace", "", "write a timeline trace to this file (.csv = compact CSV, anything else = Chrome trace-event JSON for Perfetto)")
)

func main() {
	cmd := "send"
	args := os.Args[1:]
	if len(args) > 0 && args[0][0] != '-' {
		cmd = args[0]
		args = args[1:]
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}
	cmds := map[string]func() error{
		"send":     runSend,
		"sweep":    runSweep,
		"noise":    runNoise,
		"batch":    runBatch,
		"chaos":    runChaos,
		"latency":  runLatency,
		"stealth":  runStealth,
		"overhead": runOverhead,
		"timing":   runTiming,
		"activity": runActivity,
		"inspect":  runInspect,
		"serve":    runServe,
		"submit":   runSubmit,
		"top":      runTop,
		"hash":     runHash,
	}
	run, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "meecc: unknown command %q (have: send, sweep, noise, batch, chaos, latency, stealth, overhead, timing, activity, inspect, serve, submit, top, hash)\n", cmd)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "meecc:", err)
		os.Exit(2)
	}
	err = run()
	stopProfiles() // before exit: os.Exit skips deferred writers
	if err != nil {
		fmt.Fprintln(os.Stderr, "meecc:", err)
		os.Exit(1)
	}
}

// startProfiles honors -cpuprofile/-memprofile. The returned stop function
// finishes the CPU profile and snapshots the heap; it must run before
// os.Exit.
func startProfiles() (stop func(), err error) {
	stop = func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memprofile == "" {
		return stop, nil
	}
	cpuStop := stop
	stop = func() {
		cpuStop()
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meecc: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize final live-set statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "meecc: memprofile:", err)
		}
	}
	return stop, nil
}

// observer builds the run's observer from -metrics/-metricsout/-trace, or
// returns nil when none are set (all instrumentation disabled). Single-run
// subcommands thread the result through their Options/ChannelConfig and
// call finishObs on the way out.
func observer() *obs.Observer {
	if !*metricsOn && *metricsOut == "" && *tracePath == "" {
		return nil
	}
	o := obs.NewObserver()
	if *tracePath != "" {
		o.WithTracer(0)
	}
	return o
}

// finishObs emits whatever the observability flags asked for: a full text
// report (including diagnostic scheduler counters) on stdout, a snapshot
// JSON file, and a trace export picked by file extension.
func finishObs(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	snap := o.SnapshotAll()
	if *metricsOn {
		fmt.Println()
		snap.Render(os.Stdout)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, snap.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(*tracePath, ".csv") {
			err = o.Tracer().WriteCSV(f)
		} else {
			err = o.Tracer().WriteChromeJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		tr := o.Tracer()
		fmt.Printf("trace: %s (%d events", *tracePath, tr.Len())
		if d := tr.Dropped(); d > 0 {
			fmt.Printf(", %d oldest overwritten", d)
		}
		fmt.Println(")")
	}
	return nil
}

func channelConfig() (meecc.ChannelConfig, error) {
	cfg := meecc.DefaultChannelConfig(*seed)
	cfg.Window = meecc.Cycles(*window)
	cfg.Bits = meecc.BitsFromString(*msg)
	cfg.Options.MEEPolicy = *policy
	kind, err := core.ParseNoiseKind(*noise)
	if err != nil {
		return cfg, err
	}
	cfg.Noise = kind
	return cfg, nil
}

func runSend() error {
	cfg, err := channelConfig()
	if err != nil {
		return err
	}
	o := observer()
	cfg.Obs = o
	switch {
	case *reliable:
		fmt.Printf("transmitting %d payload bytes with FEC framing...\n", len(*msg))
		res, err := meecc.RunReliable(cfg, []byte(*msg))
		if err != nil {
			return err
		}
		fmt.Printf("decoded : %q (CRC ok, %d corrections, %d attempt(s))\n",
			res.Payload, res.Stats.Corrections, res.Attempts)
		fmt.Printf("raw     : %.1f KBps, %d channel bit errors\n", res.Channel.KBps, res.Channel.BitErrors)
		fmt.Printf("goodput : %.1f KBps after coding overhead\n", res.GoodputKBps)
		return finishObs(o)

	case *inband:
		fmt.Printf("transmitting %d bits with in-band synchronization...\n", len(cfg.Bits))
		res, err := meecc.RunInBandChannel(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("locked on phase attempt %d; decoded %q\n", res.Attempt, meecc.StringFromBits(res.Received))
		fmt.Printf("%d/%d bit errors, %.1f KBps effective\n", res.BitErrors, len(res.Sent), res.KBps)
		return finishObs(o)

	case *lanes > 1:
		if pad := len(cfg.Bits) % *lanes; pad != 0 {
			cfg.Bits = append(cfg.Bits, make([]byte, *lanes-pad)...)
		}
		fmt.Printf("transmitting %d bits over %d lanes...\n", len(cfg.Bits), *lanes)
		res, err := meecc.RunParallelChannel(cfg, *lanes)
		if err != nil {
			return err
		}
		fmt.Printf("decoded %q\n", meecc.StringFromBits(res.Received))
		fmt.Printf("%.1f KBps aggregate, %d/%d bit errors (per lane: %v)\n",
			res.KBps, res.BitErrors, len(res.Sent), res.LaneErrors)
		return finishObs(o)
	}

	fmt.Printf("transmitting %d bits (%d bytes) over the MEE cache covert channel...\n",
		len(cfg.Bits), len(*msg))
	res, err := meecc.RunChannel(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("\nsetup: eviction set of %d ways found in %.2f ms of machine time; spy threshold %d cycles\n",
		res.EvictionSetSize, float64(res.SetupCycles)/4e6, res.SpyThreshold)
	fmt.Printf("channel: %.1f KBps, %d/%d bit errors (%.2f%%)\n",
		res.KBps, res.BitErrors, len(res.Sent), 100*res.ErrorRate)
	fmt.Printf("decoded: %q\n", meecc.StringFromBits(res.Received))
	if *verbose {
		probes := make([]float64, len(res.ProbeTimes))
		for i, p := range res.ProbeTimes {
			probes[i] = float64(p)
		}
		fmt.Printf("probe trace: %s\n", trace.Sparkline(probes))
		for i := range res.Sent {
			mark := ""
			if res.Received[i] != res.Sent[i] {
				mark = " <-- error"
			}
			fmt.Printf("  bit %3d sent %d recv %d probe %4d%s\n",
				i, res.Sent[i], res.Received[i], res.ProbeTimes[i], mark)
		}
	}
	return finishObs(o)
}

// progressLine prints live fan-out state (cells done / ETA) to stderr.
func progressLine(name string) func(exp.Progress) {
	return func(p exp.Progress) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials, %d/%d cells, eta %s   ",
			name, p.Done, p.Total, p.CellsDone, p.Cells, p.ETA().Round(1e9))
	}
}

// runGrid executes a spec on the harness with live progress. A first SIGINT
// stops dispatching and drains in-flight trials so a partial artifact can
// still be written; a second one kills the process the usual way.
func runGrid(spec *exp.Spec) (*exp.Report, error) {
	if *metricsOn {
		spec.Metrics = true
	}
	if *tracePath != "" {
		fmt.Fprintln(os.Stderr, "meecc: -trace records a single run; grid commands embed per-trial metrics snapshots in the artifact instead (use -metrics)")
	}
	cancel := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	defer signal.Stop(sigCh)
	go func() {
		if _, ok := <-sigCh; !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\ninterrupt: draining in-flight trials (interrupt again to kill)\n")
		close(cancel)
		signal.Stop(sigCh)
	}()
	rep, err := exp.RunSpec(spec, exp.Config{Workers: *workers, OnProgress: progressLine(spec.Name), Cancel: cancel})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr)
	return rep, nil
}

func runSweep() error {
	windows := make([]string, 0, len(meecc.PaperWindows()))
	for _, w := range meecc.PaperWindows() {
		windows = append(windows, strconv.FormatInt(int64(w), 10))
	}
	rep, err := runGrid(&exp.Spec{
		Name:     "sweep",
		Study:    "channel",
		BaseSeed: *seed,
		Trials:   *trials,
		Params:   map[string]string{"bits": strconv.Itoa(*bits), "pattern": "random"},
		Axes:     []exp.Axis{{Name: "window", Values: windows}},
	})
	if err != nil {
		return err
	}
	tb := trace.NewTable("window", "KBps", "error rate (mean ± 95% CI)", "trials")
	for _, c := range rep.Cells {
		w, _ := c.Cell.Get("window")
		e := c.Stat("error_rate")
		tb.Row(w, c.Stat("kbps").Mean,
			fmt.Sprintf("%.4f ± %.4f", e.Mean, e.CI95),
			fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures))
	}
	tb.Render(os.Stdout)
	return nil
}

func runNoise() error {
	rep, err := runGrid(&exp.Spec{
		Name:     "noise",
		Study:    "channel",
		BaseSeed: *seed,
		Trials:   *trials,
		Params: map[string]string{
			"bits":    strconv.Itoa(*bits),
			"pattern": "100",
			"window":  strconv.FormatInt(*window, 10),
		},
		Axes: []exp.Axis{{Name: "noise", Values: []string{"none", "memory", "mee512", "mee4k"}}},
	})
	if err != nil {
		return err
	}
	tb := trace.NewTable("environment", "error bits (mean ± 95% CI)", "error rate", "trials")
	for _, c := range rep.Cells {
		env, _ := c.Cell.Get("noise")
		eb := c.Stat("bit_errors")
		tb.Row(env,
			fmt.Sprintf("%.2f ± %.2f", eb.Mean, eb.CI95),
			c.Stat("error_rate").Mean,
			fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures))
	}
	tb.Render(os.Stdout)
	return nil
}

// runBatch runs a JSON-described grid end to end: spec → worker-pool
// fan-out → aggregated statistics → artifact + manifest under -out.
func runBatch() error {
	if *specPath == "" {
		return fmt.Errorf("batch requires -spec FILE (see examples/specs/)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := exp.ParseSpec(data)
	if err != nil {
		return err
	}
	rep, err := runGrid(spec)
	if err != nil {
		return err
	}
	artifact, manifest, err := exp.WriteArtifacts(*outDir, rep)
	if err != nil {
		return err
	}

	// Summary: one row per cell, every aggregated metric's mean ± CI.
	var metrics []string
	if len(rep.Cells) > 0 {
		for name := range rep.Cells[0].Stats {
			metrics = append(metrics, name)
		}
		sort.Strings(metrics)
	}
	header := []string{"cell", "trials"}
	for _, m := range metrics {
		header = append(header, m+" (mean ± 95% CI)")
	}
	tb := trace.NewTable(header...)
	for _, c := range rep.Cells {
		row := []any{c.Key, fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures)}
		for _, m := range metrics {
			s := c.Stat(m)
			row = append(row, fmt.Sprintf("%.4g ± %.4g", s.Mean, s.CI95))
		}
		tb.Row(row...)
	}
	tb.Render(os.Stdout)
	fmt.Printf("\n%d cells × %d trials on %d workers in %s (%d failures)\n",
		len(rep.Cells), spec.Trials, rep.Workers, rep.WallTime.Round(1e6), rep.Failures())
	if rep.Partial {
		skipped := 0
		for _, tr := range rep.Trials {
			if tr.Err == exp.SkippedErr {
				skipped++
			}
		}
		fmt.Printf("PARTIAL RUN: interrupted with %d trials never dispatched (artifact flagged partial)\n", skipped)
	}
	fmt.Printf("artifact: %s\nmanifest: %s\n", artifact, manifest)
	// Partial failures are data (recorded per trial in the artifact), but a
	// run where nothing succeeded should not look like success to scripts.
	if total := len(rep.Cells) * spec.Trials; rep.Failures() == total {
		return fmt.Errorf("all %d trials failed (first error recorded in %s)", total, artifact)
	}
	return nil
}

// runChaos sweeps the fault-injection campaign over (kind × intensity),
// comparing the static single-shot transfer against the adaptive resilient
// session in every cell, and writes artifact + manifest + CSV under -out.
func runChaos() error {
	kinds, err := fault.ParseKinds(*faults)
	if err != nil {
		return err
	}
	if len(kinds) == 0 {
		return fmt.Errorf("chaos requires at least one fault kind")
	}
	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = k.String()
	}
	var levels []string
	for _, v := range strings.Split(*intensities, ",") {
		v = strings.TrimSpace(v)
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return fmt.Errorf("chaos intensity %q: %v", v, err)
		}
		levels = append(levels, v)
	}
	spec := &exp.Spec{
		Name:     "chaos",
		Study:    "chaos",
		BaseSeed: *seed,
		Trials:   *trials,
		Params:   map[string]string{"payload": strconv.Itoa(*payloadLen)},
		Axes: []exp.Axis{
			{Name: "faults", Values: kindNames},
			{Name: "intensity", Values: levels},
		},
	}
	rep, err := runGrid(spec)
	if err != nil {
		return err
	}
	artifact, manifest, err := exp.WriteArtifacts(*outDir, rep)
	if err != nil {
		return err
	}
	csvPath, err := writeChaosCSV(*outDir, rep)
	if err != nil {
		return err
	}

	tb := trace.NewTable("faults", "intensity", "static BER", "static ok", "adaptive ok", "goodput KBps (static/adaptive)", "trials")
	for _, c := range rep.Cells {
		kind, _ := c.Cell.Get("faults")
		level, _ := c.Cell.Get("intensity")
		tb.Row(kind, level,
			fmt.Sprintf("%.3f", c.Stat("static_ber").Mean),
			fmt.Sprintf("%.0f%%", 100*c.Stat("static_delivered").Mean),
			fmt.Sprintf("%.0f%%", 100*c.Stat("adaptive_delivered").Mean),
			fmt.Sprintf("%.2f / %.2f", c.Stat("static_goodput_kbps").Mean, c.Stat("adaptive_goodput_kbps").Mean),
			fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures))
	}
	tb.Render(os.Stdout)
	if rep.Partial {
		fmt.Println("PARTIAL RUN: interrupted before every trial was dispatched (artifact flagged partial)")
	}
	fmt.Printf("artifact: %s\nmanifest: %s\ncsv: %s\n", artifact, manifest, csvPath)
	return nil
}

// writeChaosCSV renders the per-cell aggregates as one CSV row per cell
// (axis values, then every metric's mean and 95% CI in sorted order).
func writeChaosCSV(dir string, rep *exp.Report) (string, error) {
	var metrics []string
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		for name := range c.Stats {
			if !seen[name] {
				seen[name] = true
				metrics = append(metrics, name)
			}
		}
	}
	sort.Strings(metrics)

	path := filepath.Join(dir, rep.Spec.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := csv.NewWriter(f)
	header := []string{"faults", "intensity", "trials", "failures"}
	for _, m := range metrics {
		header = append(header, m+"_mean", m+"_ci95")
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return "", err
	}
	for _, c := range rep.Cells {
		kind, _ := c.Cell.Get("faults")
		level, _ := c.Cell.Get("intensity")
		row := []string{kind, level, strconv.Itoa(c.Trials), strconv.Itoa(c.Failures)}
		for _, m := range metrics {
			s := c.Stat(m)
			row = append(row,
				strconv.FormatFloat(s.Mean, 'g', -1, 64),
				strconv.FormatFloat(s.CI95, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

func runLatency() error {
	o := observer()
	opts := meecc.DefaultOptions(*seed)
	opts.Obs = o
	res, err := meecc.CharacterizeLatency(opts, 500)
	if err != nil {
		return err
	}
	tb := trace.NewTable("tree level", "samples", "mean latency (cyc)")
	for h := mee.HitVersions; h <= mee.HitRoot; h++ {
		hst := res.ByLevel[h]
		tb.Row(h.String(), hst.N(), hst.Mean())
	}
	tb.Render(os.Stdout)
	return finishObs(o)
}

func runStealth() error {
	o := observer()
	opts := meecc.DefaultOptions(*seed)
	opts.Obs = o
	rows, err := meecc.StealthStudy(opts, meecc.Cycles(*window), 128)
	if err != nil {
		return err
	}
	tb := trace.NewTable("attack", "error", "LLC evictions/bit", "hottest-set share", "MEE reads/bit")
	for _, r := range rows {
		tb.Row(r.Attack, r.ErrorRate, r.LLCEvictionsPerBit, r.LLCHottestShare, r.MEEReadsPerBit)
	}
	tb.Render(os.Stdout)
	return finishObs(o)
}

func runOverhead() error {
	o := observer()
	opts := meecc.DefaultOptions(*seed)
	opts.Obs = o
	rows, err := meecc.MeasureOverhead(opts, nil, 600)
	if err != nil {
		return err
	}
	tb := trace.NewTable("working set", "plain (cyc)", "enclave (cyc)", "slowdown")
	for _, r := range rows {
		tb.Row(fmt.Sprintf("%d KB", r.WorkingSetBytes/1024), r.PlainCycles, r.EnclaveCycles, r.Slowdown())
	}
	tb.Render(os.Stdout)
	return finishObs(o)
}

func runTiming() error {
	o := observer()
	opts := meecc.DefaultOptions(*seed)
	opts.Obs = o
	rows, err := meecc.TimingStudy(opts, 60)
	if err != nil {
		return err
	}
	tb := trace.NewTable("mechanism", "in-enclave", "overhead (cyc)", "jitter sd")
	for _, r := range rows {
		if !r.AvailableInEnclave {
			tb.Row(r.Mechanism, "no (#UD)", "-", "-")
			continue
		}
		tb.Row(r.Mechanism, "yes", r.MeanOverhead, r.StdDev)
	}
	tb.Render(os.Stdout)
	return finishObs(o)
}

func runActivity() error {
	o := observer()
	opts := meecc.DefaultOptions(*seed)
	opts.Obs = o
	res, err := meecc.InferActivity(opts, 32, 150_000)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy %.0f%% over 32 epochs (quiet %.0f cyc, active %.0f cyc)\n",
		100*res.Accuracy, res.QuietMean, res.ActiveMean)
	return finishObs(o)
}

// runInspect renders an observability file as a text report. It sniffs the
// payload: a metrics snapshot (from -metricsout or an artifact's obs block),
// a Chrome trace-event JSON (from -trace), or an experiment artifact (from
// batch/chaos), and exits non-zero on anything malformed.
func runInspect() error {
	args := flag.CommandLine.Args()
	if len(args) != 1 {
		return fmt.Errorf("usage: meecc inspect FILE (a -metricsout snapshot, a -trace JSON, or a batch artifact)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}

	// An experiment artifact has a "study" discriminator; a metrics snapshot
	// has counters/histograms; a trace has traceEvents. Try in that order so
	// schema-version errors surface from the matching decoder.
	var kind struct {
		Study         json.RawMessage `json:"study"`
		Cells         json.RawMessage `json:"cells"`
		TraceEvents   json.RawMessage `json:"traceEvents"`
		SchemaVersion json.RawMessage `json:"schema_version"`
		Counters      json.RawMessage `json:"counters"`
	}
	if err := json.Unmarshal(data, &kind); err != nil {
		if !json.Valid(data) {
			return fmt.Errorf("inspect: %s is not JSON: %v", args[0], err)
		}
		return inspectSchemaError(args[0], data)
	}
	switch {
	case kind.TraceEvents != nil:
		sum, err := obs.ValidateChromeTrace(data)
		if err != nil {
			return fmt.Errorf("inspect: %s: %v", args[0], err)
		}
		fmt.Printf("%s: Chrome trace-event JSON (load in https://ui.perfetto.dev)\n", args[0])
		sum.Render(os.Stdout)
		return nil

	case kind.Study != nil && kind.Cells != nil:
		art, err := exp.UnmarshalArtifact(data)
		if err != nil {
			return fmt.Errorf("inspect: %s: %v", args[0], err)
		}
		return inspectArtifact(args[0], art)

	case kind.SchemaVersion != nil || kind.Counters != nil:
		snap, err := obs.DecodeSnapshot(data)
		if err != nil {
			return fmt.Errorf("inspect: %s: %v", args[0], err)
		}
		fmt.Printf("%s: metrics snapshot (schema v%d)\n\n", args[0], snap.SchemaVersion)
		snap.Render(os.Stdout)
		return nil

	default:
		// Valid JSON, but none of the discriminating fields: say what this
		// command can render instead of surfacing a decoder's unmarshal
		// error about a schema the file never claimed to follow.
		return inspectSchemaError(args[0], data)
	}
}

// inspectSchemaError explains, with the offending path and the top-level
// keys actually found, which schemas `meecc inspect` accepts.
func inspectSchemaError(path string, data []byte) error {
	found := "not a JSON object"
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err == nil {
		if len(top) == 0 {
			found = "an empty JSON object"
		} else {
			keys := make([]string, 0, len(top))
			for k := range top {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			found = "top-level keys: " + strings.Join(keys, ", ")
		}
	}
	return fmt.Errorf(`inspect: %s does not match any schema this command renders (%s)
expected one of:
  experiment artifact    discriminators "study" + "cells"             (from meecc batch / chaos / sweep)
  metrics snapshot       discriminators "schema_version" + "counters" (from -metricsout or -metrics)
  Chrome trace-event     discriminator  "traceEvents"                 (from -trace)`, path, found)
}

// inspectArtifact summarizes a batch/chaos artifact: the grid shape, then —
// when trials carry metrics snapshots — the summed semantic counters across
// all trials.
func inspectArtifact(path string, art *exp.Artifact) error {
	fmt.Printf("%s: %s artifact %q (schema v%d)\n", path, art.Study, art.Name, art.SchemaVersion)
	fmt.Printf("grid:    %d cells x %d trials, base seed %d\n", len(art.Cells), art.TrialsPerCell, art.BaseSeed)
	failures := 0
	observed := 0
	total := obs.NewSnapshot()
	for i := range art.Trials {
		tr := &art.Trials[i]
		if tr.Err != "" {
			failures++
		}
		if tr.Obs == nil {
			continue
		}
		observed++
		for name, v := range tr.Obs.Counters {
			total.Counters[name] += v
		}
	}
	fmt.Printf("trials:  %d recorded, %d failed\n", len(art.Trials), failures)
	if art.Partial {
		fmt.Println("partial: run was interrupted before every trial dispatched")
	}
	if observed == 0 {
		fmt.Println("metrics: none embedded (run with -metrics or \"metrics\": true in the spec)")
		return nil
	}
	fmt.Printf("metrics: summed over %d trial snapshots\n\n", observed)
	total.Render(os.Stdout)
	return nil
}
