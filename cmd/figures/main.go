// Command figures regenerates every table and figure of the paper's
// evaluation from the simulator, printing terminal renditions and (with
// -out) writing CSV files suitable for replotting.
//
// Usage:
//
//	figures [-fig all|4|5|6a|6b|7|8|M|E] [-seed N] [-trials N] [-bits N] [-out DIR]
//	        [-metrics] [-trace FILE]
//
// -metrics prints a counter report after single-run figures and embeds
// per-trial metrics snapshots in grid-figure artifacts; -trace FILE exports
// a Perfetto-loadable timeline of a single-run figure (5, 6a, 6b).
//
// Figure map (see DESIGN.md for the experiment index):
//
//	4  — eviction probability vs candidate-set size (§4.1)
//	5  — protected-access latency histogram by tree level (§5.1)
//	6a — Prime+Probe baseline probe-time trace (§5.2)
//	6b — this work's probe-time trace (§5.3)
//	7  — bit rate / error rate vs timing window (§5.4)
//	8  — error bits under noise environments (§5.4)
//	M  — mitigation ablation (extension of §5.5)
//	E  — eviction-phase × replacement-policy ablation (§5.3)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"meecc"
	"meecc/internal/exp"
	"meecc/internal/mee"
	"meecc/internal/obs"
	"meecc/internal/trace"
)

var (
	figFlag    = flag.String("fig", "all", "figure to regenerate: 4,5,6a,6b,7,8,M,E or all")
	seedFlag   = flag.Uint64("seed", 42, "simulation seed")
	trialsFlag = flag.Int("trials", 100, "trials per grid cell for figures 4/7/8")
	bitsFlag   = flag.Int("bits", 256, "payload bits for figures 7/8/M")
	outFlag    = flag.String("out", "", "directory for CSV output (optional)")
	workers    = flag.Int("workers", 0, "worker goroutines for multi-trial figures (0 = GOMAXPROCS)")
	metricsOn  = flag.Bool("metrics", false, "print a metrics report after each single-run figure; embed snapshots in grid artifacts")
	traceFlag  = flag.String("trace", "", "write a timeline trace of single-run figures to this file (.csv = compact CSV, else Chrome trace-event JSON; when several figures are selected the last one wins)")
)

func main() {
	flag.Parse()
	runners := map[string]func() error{
		"2":  fig2,
		"4":  fig4,
		"5":  fig5,
		"6a": fig6a,
		"6b": fig6b,
		"7":  fig7,
		"8":  fig8,
		"M":  figM,
		"E":  figE,
		"P":  figP,
		"S":  figS,
		"O":  figO,
		"A":  figA,
		"D":  figD,
	}
	order := []string{"2", "4", "5", "6a", "6b", "7", "8", "M", "E", "P", "S", "O", "A", "D"}
	want := strings.Split(*figFlag, ",")
	for _, key := range order {
		selected := *figFlag == "all"
		for _, w := range want {
			if strings.EqualFold(w, key) {
				selected = true
			}
		}
		if !selected {
			continue
		}
		if err := runners[key](); err != nil {
			fatal(fmt.Errorf("figure %s: %w", key, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func writeCSV(name string, write func(*os.File) error) (err error) {
	if *outFlag == "" {
		return nil
	}
	if err := os.MkdirAll(*outFlag, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*outFlag, name))
	if err != nil {
		return err
	}
	defer func() {
		// A failed flush surfaces only at Close; don't mask it.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return write(f)
}

// figObserver returns a fresh observer when -metrics or -trace is set, so
// each single-run figure reports its own counters and timeline.
func figObserver() *obs.Observer {
	if !*metricsOn && *traceFlag == "" {
		return nil
	}
	o := obs.NewObserver()
	if *traceFlag != "" {
		o.WithTracer(0)
	}
	return o
}

// finishFigObs renders the metrics report and/or writes the trace export
// for one completed single-run figure.
func finishFigObs(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	if *metricsOn {
		fmt.Println()
		o.SnapshotAll().Render(os.Stdout)
	}
	if *traceFlag == "" {
		return nil
	}
	f, err := os.Create(*traceFlag)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*traceFlag, ".csv") {
		err = o.Tracer().WriteCSV(f)
	} else {
		err = o.Tracer().WriteChromeJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %s (%d events)\n", *traceFlag, o.Tracer().Len())
	return nil
}

// runGrid fans a figure's grid out over the worker pool with live
// progress on stderr and, with -out, persists the artifact + manifest.
func runGrid(spec *exp.Spec) (*exp.Report, error) {
	if *metricsOn {
		spec.Metrics = true
	}
	rep, err := exp.RunSpec(spec, exp.Config{Workers: *workers, OnProgress: progressLine(spec.Name)})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr)
	if *outFlag != "" {
		if _, _, err := exp.WriteArtifacts(*outFlag, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// progressLine returns an OnProgress callback printing "cells done / ETA"
// as a carriage-returned stderr status line.
func progressLine(name string) func(exp.Progress) {
	return func(p exp.Progress) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials, %d/%d cells, eta %s   ",
			name, p.Done, p.Total, p.CellsDone, p.Cells, p.ETA().Round(1e9))
	}
}

func fig2() error {
	header("Figure 2 / §3: measuring time inside an SGX1 enclave")
	results, err := meecc.TimingStudy(meecc.DefaultOptions(*seedFlag), 60)
	if err != nil {
		return err
	}
	tb := trace.NewTable("mechanism", "in-enclave", "overhead (cyc)", "jitter sd", "resolves 300-cyc signal")
	for _, r := range results {
		if !r.AvailableInEnclave {
			tb.Row(r.Mechanism, "no (#UD)", "-", "-", "no")
			continue
		}
		tb.Row(r.Mechanism, "yes", r.MeanOverhead, r.StdDev, r.Usable())
	}
	tb.Render(os.Stdout)
	fmt.Println("paper anchors: OCALL costs 8000-15000 cycles; hyperthread timer ~50")
	return nil
}

func fig4() error {
	header("Figure 4: eviction probability vs candidate address set size (§4.1)")
	// One harness cell per EPC layout; each trial is a full capacity
	// experiment with *trialsFlag eviction tests per candidate size.
	rep, err := runGrid(&exp.Spec{
		Name:     "fig4",
		Study:    "capacity",
		BaseSeed: *seedFlag,
		Trials:   1,
		Params:   map[string]string{"samples": strconv.Itoa(*trialsFlag)},
		Axes:     []exp.Axis{{Name: "epc", Values: []string{"contiguous", "fragmented"}}},
	})
	if err != nil {
		return err
	}
	contig, frag := rep.Cell("epc=contiguous"), rep.Cell("epc=fragmented")
	if fails := rep.Failures(); fails > 0 {
		return fmt.Errorf("%d capacity run(s) failed", fails)
	}
	tb := trace.NewTable("candidates", "P(evict) contiguous EPC", "P(evict) fragmented EPC")
	var rows [][]float64
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		metric := fmt.Sprintf("p_evict_%d", n)
		pc, pf := contig.Stat(metric).Mean, frag.Stat(metric).Mean
		tb.Row(n, pc, pf)
		rows = append(rows, []float64{float64(n), pc, pf})
	}
	tb.Render(os.Stdout)
	fmt.Printf("inferred MEE cache capacity: %.0f KB (paper: 64 KB)\n", contig.Stat("capacity_kb").Mean)
	return writeCSV("fig4.csv", func(f *os.File) error {
		return trace.WriteCSV(f, []string{"candidates", "p_evict_contiguous", "p_evict_fragmented"}, rows)
	})
}

func fig5() error {
	header("Figure 5: protected-region access latency by MEE-cache hit level (§5.1)")
	o := figObserver()
	opts := meecc.DefaultOptions(*seedFlag)
	opts.Obs = o
	res, err := meecc.CharacterizeLatency(opts, 800)
	if err != nil {
		return err
	}
	var rows [][]float64
	for h := mee.HitVersions; h <= mee.HitRoot; h++ {
		hst := res.ByLevel[h]
		fmt.Printf("\n%s  (n=%d, mean=%.0f cycles)\n", h, hst.N(), hst.Mean())
		hst.Render(os.Stdout, 50)
		for _, b := range hst.Buckets() {
			rows = append(rows, []float64{float64(h), b.Lo, b.Hi, float64(b.Count)})
		}
	}
	fmt.Println("\npaper anchors: versions hit ~480, versions miss (L0 hit) ~750, ~+270/level")
	if err := writeCSV("fig5.csv", func(f *os.File) error {
		return trace.WriteCSV(f, []string{"hit_level", "bucket_lo", "bucket_hi", "count"}, rows)
	}); err != nil {
		return err
	}
	return finishFigObs(o)
}

func fig6a() error {
	header("Figure 6(a): Prime+Probe baseline, trojan sending '0101...' (§5.2)")
	o := figObserver()
	cfg := meecc.DefaultChannelConfig(*seedFlag)
	cfg.Bits = meecc.AlternatingBits(16)
	cfg.Obs = o
	res, err := meecc.RunPrimeProbe(cfg)
	if err != nil {
		return err
	}
	if err := renderTrace("fig6a.csv", res.Sent, res.Received, toF(res.ProbeTimes),
		fmt.Sprintf("probe-all-8 threshold %d; errors %d/%d (%.1f%%) — paper: communication not established; every probe >3500 cycles",
			res.Threshold, res.BitErrors, len(res.Sent), 100*res.ErrorRate)); err != nil {
		return err
	}
	return finishFigObs(o)
}

func fig6b() error {
	header("Figure 6(b): this work's MEE-cache covert channel, '0101...' (§5.3)")
	o := figObserver()
	cfg := meecc.DefaultChannelConfig(*seedFlag)
	cfg.Bits = meecc.AlternatingBits(30)
	cfg.Obs = o
	res, err := meecc.RunChannel(cfg)
	if err != nil {
		return err
	}
	if err := renderTrace("fig6b.csv", res.Sent, res.Received, toF(res.ProbeTimes),
		fmt.Sprintf("spy threshold %d; errors %d/%d — paper anchors: '0'≈480, '1'≈750 cycles",
			res.SpyThreshold, res.BitErrors, len(res.Sent))); err != nil {
		return err
	}
	return finishFigObs(o)
}

func fig7() error {
	header("Figure 7: bit rate vs error rate across timing-window sizes (§5.4)")
	windows := make([]string, 0, len(meecc.PaperWindows()))
	for _, w := range meecc.PaperWindows() {
		windows = append(windows, strconv.FormatInt(int64(w), 10))
	}
	rep, err := runGrid(&exp.Spec{
		Name:     "fig7",
		Study:    "channel",
		BaseSeed: *seedFlag,
		Trials:   *trialsFlag,
		Params:   map[string]string{"bits": strconv.Itoa(*bitsFlag), "pattern": "random"},
		Axes:     []exp.Axis{{Name: "window", Values: windows}},
	})
	if err != nil {
		return err
	}
	tb := trace.NewTable("window (cyc)", "bit rate (KBps)", "error rate (mean ± 95% CI)", "err min..max", "trials")
	var rows [][]float64
	for _, c := range rep.Cells {
		w, _ := c.Cell.Get("window")
		kbps, errRate := c.Stat("kbps"), c.Stat("error_rate")
		tb.Row(w, kbps.Mean,
			fmt.Sprintf("%.4f ± %.4f", errRate.Mean, errRate.CI95),
			fmt.Sprintf("%.4f..%.4f", errRate.Min, errRate.Max),
			fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures))
		wf, _ := strconv.ParseFloat(w, 64)
		row := []float64{wf}
		row = append(row, kbps.Columns()...)
		row = append(row, errRate.Columns()...)
		row = append(row, float64(c.Trials), float64(c.Failures))
		rows = append(rows, row)
	}
	tb.Render(os.Stdout)
	fmt.Println("paper anchors: ~35 KBps / 1.7% at 15000; 34% at 7500; knee between 7500 and 10000")
	return writeCSV("fig7.csv", func(f *os.File) error {
		header := append([]string{"window_cycles"}, trace.StatHeader("kbps")...)
		header = append(header, trace.StatHeader("error_rate")...)
		header = append(header, "trials", "failures")
		return trace.WriteCSV(f, header, rows)
	})
}

func fig8() error {
	header("Figure 8: 128-bit '100100...' under noise environments (§5.4)")
	rep, err := runGrid(&exp.Spec{
		Name:     "fig8",
		Study:    "channel",
		BaseSeed: *seedFlag,
		Trials:   *trialsFlag,
		Params:   map[string]string{"bits": "128", "pattern": "100", "window": "15000"},
		Axes:     []exp.Axis{{Name: "noise", Values: []string{"none", "memory", "mee512", "mee4k"}}},
	})
	if err != nil {
		return err
	}
	tb := trace.NewTable("environment", "error bits (mean ± 95% CI)", "error rate", "min..max", "trials")
	var rows [][]string
	for _, c := range rep.Cells {
		env, _ := c.Cell.Get("noise")
		bits, errRate := c.Stat("bit_errors"), c.Stat("error_rate")
		tb.Row(env,
			fmt.Sprintf("%.2f ± %.2f", bits.Mean, bits.CI95),
			errRate.Mean,
			fmt.Sprintf("%.0f..%.0f", bits.Min, bits.Max),
			fmt.Sprintf("%d (%d failed)", c.Trials, c.Failures))
		row := []string{env}
		for _, v := range append(bits.Columns(), errRate.Columns()...) {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.Itoa(c.Trials), strconv.Itoa(c.Failures))
		rows = append(rows, row)
	}
	tb.Render(os.Stdout)
	fmt.Println("paper anchors: 1 error bit quiet, ~same under memory noise, 4–5 under MEE noise")
	return writeCSV("fig8.csv", func(f *os.File) error {
		header := append([]string{"environment"}, trace.StatHeader("bit_errors")...)
		header = append(header, trace.StatHeader("error_rate")...)
		header = append(header, "trials", "failures")
		return trace.WriteCSVRecords(f, header, rows)
	})
}

func figM() error {
	header("Mitigation ablation (extension of §5.5)")
	results := meecc.MitigationStudy(meecc.DefaultOptions(*seedFlag), 15000, *bitsFlag)
	tb := trace.NewTable("variant", "error rate", "setup", "defeated")
	for _, m := range results {
		setup := "ok"
		if m.SetupFailed {
			setup = "failed: " + m.Detail
		}
		tb.Row(m.Name, m.ErrorRate, setup, m.Defeated())
	}
	tb.Render(os.Stdout)
	return nil
}

func figE() error {
	header("Eviction-phase x replacement-policy ablation (§5.3)")
	tb := trace.NewTable("policy", "phases", "eviction success")
	for _, pol := range []string{"lru", "tree-plru", "bit-plru"} {
		for _, two := range []bool{false, true} {
			phases := "fwd"
			if two {
				phases = "fwd+bwd"
			}
			res, err := meecc.EvictionStudy(meecc.DefaultOptions(*seedFlag), pol, two, 60)
			if err != nil {
				tb.Row(pol, phases, "setup failed: "+err.Error())
				continue
			}
			tb.Row(pol, phases, res.SuccessRate())
		}
	}
	tb.Render(os.Stdout)
	return nil
}

func figP() error {
	header("Parallel-lane extension: aggregate rate vs lanes (beyond the paper)")
	tb := trace.NewTable("lanes", "aggregate KBps", "error rate")
	for lanes := 1; lanes <= 2; lanes++ {
		cfg := meecc.DefaultChannelConfig(*seedFlag + uint64(lanes))
		cfg.Bits = meecc.RandomBits(*seedFlag, 128)
		res, err := meecc.RunParallelChannel(cfg, lanes)
		if err != nil {
			tb.Row(lanes, "-", err.Error())
			continue
		}
		tb.Row(lanes, res.KBps, res.ErrorRate)
	}
	tb.Render(os.Stdout)
	return nil
}

func figS() error {
	header("Stealth study: detector-visible footprint, MEE channel vs LLC Prime+Probe")
	rows, err := meecc.StealthStudy(meecc.DefaultOptions(*seedFlag), 15000, 128)
	if err != nil {
		return err
	}
	tb := trace.NewTable("attack", "error rate", "LLC evictions/bit", "hottest-LLC-set share", "MEE reads/bit")
	for _, r := range rows {
		tb.Row(r.Attack, r.ErrorRate, r.LLCEvictionsPerBit, r.LLCHottestShare, r.MEEReadsPerBit)
	}
	tb.Render(os.Stdout)
	fmt.Println("an LLC-conflict detector sees the P+P channel hammer one set; the MEE channel's")
	fmt.Println("conflict pattern lives in the MEE cache, which no performance counter exposes")
	return nil
}

func figO() error {
	header("SGX memory overhead: enclave vs plain uncached reads (substrate validation)")
	rows, err := meecc.MeasureOverhead(meecc.DefaultOptions(*seedFlag), nil, 800)
	if err != nil {
		return err
	}
	tb := trace.NewTable("working set", "plain (cyc)", "enclave (cyc)", "slowdown")
	for _, r := range rows {
		tb.Row(fmt.Sprintf("%d KB", r.WorkingSetBytes/1024), r.PlainCycles, r.EnclaveCycles, r.Slowdown())
	}
	tb.Render(os.Stdout)
	fmt.Println("the slowdown grows once the working set's integrity metadata no longer fits the MEE cache")
	return nil
}

func figA() error {
	header("Victim-activity inference via shared-MEE contention (side-channel direction)")
	res, err := meecc.InferActivity(meecc.DefaultOptions(*seedFlag), 32, 150_000)
	if err != nil {
		return err
	}
	row := func(label string, vals []bool) {
		fmt.Printf("  %-8s ", label)
		for _, v := range vals {
			if v {
				fmt.Print("#")
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
	row("victim", res.Truth)
	row("spy", res.Inferred)
	fmt.Printf("accuracy %.0f%% (quiet %.0f cyc, active %.0f cyc per probe)\n",
		100*res.Accuracy, res.QuietMean, res.ActiveMean)
	return nil
}

func figD() error {
	header("HPC attack-monitor study: who gets caught (§5.5 defenses, operationalized)")
	rows, err := meecc.DetectionStudy(meecc.DefaultOptions(*seedFlag), 15000, 96)
	if err != nil {
		return err
	}
	tb := trace.NewTable("workload", "alarm rate", "peak hottest-set share", "channel error")
	for _, r := range rows {
		errStr := "-"
		if r.Workload != "benign-memory-stress" {
			errStr = fmt.Sprintf("%.3f", r.ChannelError)
		}
		tb.Row(r.Workload, r.AlarmRate, r.PeakShare, errStr)
	}
	tb.Render(os.Stdout)
	fmt.Println("the per-set LLC eviction monitor catches the P+P channel every window and")
	fmt.Println("never fires on the MEE channel — there is no counter to watch the MEE cache with")
	return nil
}

func renderTrace(csvName string, sent, recv []byte, probes []float64, note string) error {
	fmt.Printf("sent: %s\n", bitString(sent))
	fmt.Printf("recv: %s\n", bitString(recv))
	fmt.Printf("probe times: %s\n", trace.Sparkline(probes))
	for i, p := range probes {
		marker := ""
		if recv != nil && i < len(recv) && recv[i] != sent[i] {
			marker = "  <-- error"
		}
		fmt.Printf("  bit %2d sent %d probe %5.0f%s\n", i, sent[i], p, marker)
	}
	fmt.Println(note)
	var rows [][]float64
	for i, p := range probes {
		r := float64(0)
		if recv != nil && i < len(recv) {
			r = float64(recv[i])
		}
		rows = append(rows, []float64{float64(i), float64(sent[i]), r, p})
	}
	return writeCSV(csvName, func(f *os.File) error {
		return trace.WriteCSV(f, []string{"bit", "sent", "received", "probe_cycles"}, rows)
	})
}

func bitString(bits []byte) string {
	var b strings.Builder
	for _, x := range bits {
		b.WriteByte('0' + x)
	}
	return b.String()
}

func toF(xs []meecc.Cycles) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
