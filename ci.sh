#!/bin/sh
# CI gate: vet, build, full test suite, race detector over the packages with
# real cross-goroutine traffic, and a smoke batch run through the experiment
# harness. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (internal/exp, internal/sim) =="
go test -race ./internal/exp ./internal/sim

echo "== smoke: meecc batch =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/meecc batch -spec examples/specs/smoke.json -out "$tmp"
for f in smoke.json smoke.manifest.json; do
    test -s "$tmp/$f" || { echo "missing artifact $f" >&2; exit 1; }
done

echo "== ci passed =="
