#!/bin/sh
# CI gate: vet, build, full test suite, race detector over the packages with
# real cross-goroutine traffic, and a smoke batch run through the experiment
# harness. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (internal/exp, internal/fault, internal/sim) =="
go test -race ./internal/exp ./internal/fault ./internal/sim

echo "== fuzz smoke: internal/code =="
# A short randomized pass over the decoder-facing fuzz targets: the channel
# hands the decoder attacker-observed, noise-corrupted bits, so "never
# panics, never returns unverified payloads" must hold for arbitrary input.
for target in FuzzDecodeNeverPanics FuzzDecodeTruncatedStream; do
    go test ./internal/code -run '^$' -fuzz "$target" -fuzztime 5s
done

echo "== smoke: meecc batch =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/meecc batch -spec examples/specs/smoke.json -out "$tmp"
for f in smoke.json smoke.manifest.json; do
    test -s "$tmp/$f" || { echo "missing artifact $f" >&2; exit 1; }
done

echo "== ci passed =="
