#!/bin/sh
# CI gate: vet, build, full test suite, race detector over the packages with
# real cross-goroutine traffic, a benchmark smoke pass, and a smoke batch run
# through the experiment harness. Exits non-zero on the first failure.
#
# `./ci.sh bench` instead runs the full benchmark suites with -benchmem and
# writes a benchstat-comparable baseline to results/bench.json (tune with
# BENCH_COUNT / BENCH_TIME / BENCH_PATTERN). Compare a working tree against
# the committed baseline with:
#
#	go run ./cmd/benchjson -print results/bench.json > /tmp/old.txt
#	go test -run '^$' -bench . -benchmem -count 5 ./... > /tmp/new.txt
#	benchstat /tmp/old.txt /tmp/new.txt
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "obs" ]; then
    # Observability-focused slice of the gate: the determinism contract
    # (artifact snapshots byte-identical across worker counts and both
    # schedulers) and the golden trace/artifact schemas, all under -race.
    echo "== obs: determinism + golden schema (-race) =="
    go test -race -run 'Metrics|GoldenSchema|ChromeTrace|Observability' \
        ./internal/obs ./internal/exp ./internal/platform
    echo "== obs passed =="
    exit 0
fi

if [ "${1:-}" = "bench-compare" ]; then
    # Soft performance gate: re-run the headline channel benchmarks (fig6b
    # single transmission, fig7 window sweep) and diff them against the
    # committed baseline. Smoke timings are single-shot and noisy, so
    # benchjson's default advisory mode is used — a regression past the
    # threshold prints a loud warning instead of failing the build; run
    # `./ci.sh bench` for a statistically sound baseline before acting on
    # one, and `./ci.sh bench-gate` for the hard-gated epoch-kernel check.
    base="${BENCH_BASELINE:-results/bench.json}"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    echo "== bench-compare: fig6b/fig7 smoke vs $base (soft) =="
    go test -run '^$' -bench 'Fig6bCovertChannel|Fig7WindowSweep' -benchmem \
        -benchtime 1x -count "${BENCH_COUNT:-3}" . > "$tmp/new.txt"
    go run ./cmd/benchjson -o "$tmp/new.json" < "$tmp/new.txt"
    if go run ./cmd/benchjson diff -subset -threshold "${BENCH_THRESHOLD:-25}" "$base" "$tmp/new.json"; then
        echo "== bench-compare done (advisory) =="
    else
        echo "== bench-compare: WARNING: diff failed (see above) ==" >&2
    fi
    exit 0
fi

if [ "${1:-}" = "bench-gate" ]; then
    # Hard performance gate for the epoch-kernel transmission hot path: the
    # fig6b and fig7 benchmarks run through the compiled window kernel, and
    # losing that speedup (falling back to the general engine, or a kernel
    # slowdown) shows up as a multi-x regression that no noise excuse
    # covers. The generous threshold tolerates smoke-run noise while still
    # catching a lost 2x.
    base="${BENCH_BASELINE:-results/bench.json}"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    echo "== bench-gate: epoch-kernel fig6b/fig7 vs $base (hard) =="
    go test -run '^$' -bench 'Fig6bCovertChannel$|Fig7WindowSweep$' -benchmem \
        -benchtime 1x -count "${BENCH_COUNT:-3}" . > "$tmp/new.txt"
    go run ./cmd/benchjson -o "$tmp/new.json" < "$tmp/new.txt"
    go run ./cmd/benchjson diff -subset -fail-on-regress \
        -threshold "${BENCH_GATE_THRESHOLD:-60}" "$base" "$tmp/new.json"
    echo "== bench-gate passed =="
    exit 0
fi

if [ "${1:-}" = "bench" ]; then
    count="${BENCH_COUNT:-5}"
    time="${BENCH_TIME:-1s}"
    pattern="${BENCH_PATTERN:-.}"
    out="${BENCH_OUT:-results/bench.json}"
    txt="${out%.json}.txt"
    mkdir -p "$(dirname "$out")"
    echo "== bench: -bench $pattern -count $count -benchtime $time -> $out =="
    go test -run '^$' -bench "$pattern" -benchmem -count "$count" -benchtime "$time" ./... | tee "$txt"
    go run ./cmd/benchjson -o "$out" < "$txt"
    rm -f "$txt"
    echo "== bench baseline written: $out =="
    exit 0
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (internal/exp, internal/fault, internal/sim, internal/obs/ops) =="
# internal/obs/ops rides along for its scrape-while-updating test: lock-free
# instruments hammered by writers while /metrics renders concurrently.
go test -race ./internal/exp ./internal/fault ./internal/sim ./internal/obs/ops

echo "== go test -race: fig6b/fig7 on both engines (1 iteration) =="
# One race-instrumented pass over the transmission hot path per engine: the
# epoch kernel (default) and the general DES engine (forced via env), so a
# data race in either execution mode fails the build.
go test -race -run '^$' -bench 'Fig6bCovertChannel$|Fig7WindowSweep$' -benchtime 1x .
MEECC_FORCE_GENERAL_ENGINE=1 \
    go test -race -run '^$' -bench 'Fig6bCovertChannel$|Fig7WindowSweep$' -benchtime 1x .

echo "== bench smoke (1 iteration per benchmark) =="
# One iteration of every benchmark: catches benchmarks that panic or hang
# without paying for statistically meaningful timings (that's `ci.sh bench`).
go test -run '^$' -bench . -benchtime 1x ./...

echo "== fuzz smoke: internal/code =="
# A short randomized pass over the decoder-facing fuzz targets: the channel
# hands the decoder attacker-observed, noise-corrupted bits, so "never
# panics, never returns unverified payloads" must hold for arbitrary input.
for target in FuzzDecodeNeverPanics FuzzDecodeTruncatedStream; do
    go test ./internal/code -run '^$' -fuzz "$target" -fuzztime 5s
done

echo "== fuzz smoke: internal/snapstore =="
# Snapshot blobs come off disk, where truncation and bit rot are real:
# damaged bytes must come back as errors, never panics or silently wrong
# machines.
go test ./internal/snapstore -run '^$' -fuzz FuzzSnapshotCodec -fuzztime 5s

echo "== fuzz smoke: internal/serve/journal =="
# The write-ahead log replays whatever a crash left on disk: arbitrary bytes
# must never panic, and every record recovered must be a real record.
go test ./internal/serve/journal -run '^$' -fuzz FuzzJournalReplay -fuzztime 5s

echo "== smoke: meecc batch =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/meecc batch -spec examples/specs/smoke.json -out "$tmp"
for f in smoke.json smoke.manifest.json; do
    test -s "$tmp/$f" || { echo "missing artifact $f" >&2; exit 1; }
done

echo "== smoke: meecc serve/submit + telemetry scrape =="
# The experiment service's determinism contract, end to end over real HTTP:
# an artifact served by `meecc serve` is byte-identical to the one the local
# batch run above produced for the same spec — with operational telemetry on
# (it always is), proving wall-clock state never leaks into artifacts. While
# the run is in flight, `meecc top -once -require` scrapes /metrics and
# /healthz and fails the build if any contractual family is missing or the
# exposition doesn't parse.
go build -o "$tmp/meecc" ./cmd/meecc
"$tmp/meecc" serve -addr 127.0.0.1:8391 -storedir "$tmp/snapstore" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
"$tmp/meecc" submit -spec examples/specs/smoke.json -addr 127.0.0.1:8391 -out "$tmp/served" &
submit_pid=$!
sleep 0.3
"$tmp/meecc" top -addr 127.0.0.1:8391 -once -require \
    meecc_serve_runs_submitted_total,meecc_serve_queue_depth,meecc_serve_runs_active,meecc_serve_trials_executed_total,meecc_serve_trials_memoized_total,meecc_serve_trial_seconds,meecc_journal_appends_total,meecc_journal_append_errors_total,meecc_snapstore_bytes,meecc_snapstore_selfheal_deletions_total,meecc_http_requests_total,meecc_process_goroutines \
    > /dev/null
wait "$submit_pid" || { echo "submit failed" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT
cmp "$tmp/served/smoke.json" "$tmp/smoke.json" || {
    echo "served artifact differs from local batch artifact" >&2; exit 1; }

echo "== smoke: serve crash recovery (kill -9 / restart / resume) =="
# The durability contract, end to end over real processes: a server killed
# with SIGKILL mid-run loses nothing its journal committed. The resubmitted
# run resumes from the replayed memo and produces an artifact byte-identical
# to the local batch run. (If the first run finishes before the kill lands,
# the resubmission is simply fully memoized — the comparison still holds.)
"$tmp/meecc" serve -addr 127.0.0.1:8392 -journal "$tmp/serve.wal" &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
("$tmp/meecc" submit -spec examples/specs/smoke.json -addr 127.0.0.1:8392 \
    -out "$tmp/crashed" >/dev/null 2>&1 || true) &
submit_pid=$!
sleep 1
kill -9 "$serve_pid"
# The orphaned submit would retry-reconnect for a while; it has served its
# purpose (driving the run the kill interrupted), so take it down too.
kill "$submit_pid" 2>/dev/null || true
wait "$submit_pid" 2>/dev/null || true
test -s "$tmp/serve.wal" || { echo "journal was never written" >&2; exit 1; }
"$tmp/meecc" serve -addr 127.0.0.1:8392 -journal "$tmp/serve.wal" &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
"$tmp/meecc" submit -spec examples/specs/smoke.json -addr 127.0.0.1:8392 -out "$tmp/resumed"
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT
cmp "$tmp/resumed/smoke.json" "$tmp/smoke.json" || {
    echo "resumed artifact differs from local batch artifact" >&2; exit 1; }

echo "== smoke: traced fig6b =="
# One traced end-to-end transmission: the exported Chrome trace must pass
# the same structural validation Perfetto relies on (per-actor tracks, MEE
# hit-level counter track).
go run ./cmd/figures -fig 6b -trace "$tmp/fig6b.trace.json" > /dev/null
test -s "$tmp/fig6b.trace.json" || { echo "missing fig6b trace" >&2; exit 1; }
go run ./cmd/meecc inspect "$tmp/fig6b.trace.json"

echo "== bench-gate (hard gate, epoch kernel) =="
sh "$0" bench-gate

echo "== bench-compare (soft gate) =="
sh "$0" bench-compare

echo "== ci passed =="
