module meecc

go 1.22
