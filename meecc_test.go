package meecc

import "testing"

func TestBitsStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "A", "HELLO, MEE", "\x00\xff\x80"} {
		bits := BitsFromString(s)
		if len(bits) != len(s)*8 {
			t.Fatalf("%q: %d bits", s, len(bits))
		}
		if got := StringFromBits(bits); got != s {
			t.Fatalf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestStringFromBitsDropsPartialByte(t *testing.T) {
	bits := append(BitsFromString("X"), 1, 0, 1)
	if got := StringFromBits(bits); got != "X" {
		t.Fatalf("got %q", got)
	}
}

func TestFacadeChannelEndToEnd(t *testing.T) {
	cfg := DefaultChannelConfig(2024)
	cfg.Bits = BitsFromString("MEE")
	res, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.15 {
		t.Fatalf("error rate %.3f", res.ErrorRate)
	}
	// With a low error rate the decoded text is usually intact; don't
	// require it (the raw channel has no error correction), but report it.
	t.Logf("decoded %q with %d bit errors", StringFromBits(res.Received), res.BitErrors)
}

func TestPaperWindowsList(t *testing.T) {
	ws := PaperWindows()
	if len(ws) != 7 || ws[0] != 5000 || ws[len(ws)-1] != 30000 {
		t.Fatalf("windows %v", ws)
	}
}

func TestFacadeParallelChannel(t *testing.T) {
	cfg := DefaultChannelConfig(71)
	cfg.Bits = RandomBits(71, 32)
	res, err := RunParallelChannel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes != 2 || res.KBps < 60 {
		t.Fatalf("lanes=%d rate=%.1f", res.Lanes, res.KBps)
	}
}

func TestFacadeLLCChannelAndStealth(t *testing.T) {
	rows, err := StealthStudy(DefaultOptions(83), 15000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestFacadeDetectionStudy(t *testing.T) {
	rows, err := DetectionStudy(DefaultOptions(91), 15000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestFacadeInBand(t *testing.T) {
	cfg := DefaultChannelConfig(61)
	cfg.Bits = BitsFromString("IB")
	res, err := RunInBandChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if StringFromBits(res.Received) != "IB" {
		t.Fatalf("decoded %q", StringFromBits(res.Received))
	}
}

func TestFacadeActivityAndOverhead(t *testing.T) {
	act, err := InferActivity(DefaultOptions(37), 12, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if act.Accuracy < 0.7 {
		t.Fatalf("accuracy %.2f", act.Accuracy)
	}
	rows, err := MeasureOverhead(DefaultOptions(29), []int{32 << 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Slowdown() < 1.2 {
		t.Fatalf("slowdown %.2f", rows[0].Slowdown())
	}
}

func TestFacadeResilientUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("resilient session in -short mode")
	}
	cfg := DefaultResilientConfig(2025)
	cfg.Fault = &FaultConfig{Seed: 5, Kinds: []FaultKind{FaultMigration}, Intensity: 2}
	payload := []byte("key")
	res, err := RunResilient(cfg, payload)
	if err != nil {
		// Degradation must be explicit, never silent: an error comes with a
		// recorded abort.
		if res == nil || res.Report.Count(ActAbort) == 0 {
			t.Fatalf("error without recorded abort: %v", err)
		}
		t.Logf("explicit degradation: %v", err)
		return
	}
	if string(res.Payload) != string(payload) {
		t.Fatalf("payload corrupted: %q", res.Payload)
	}
	t.Logf("delivered %d/%d chunks, %d control actions, goodput %.2f KBps",
		res.ChunksDelivered, res.Chunks, len(res.Report.Actions), res.GoodputKBps)
}
