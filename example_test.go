package meecc_test

import (
	"fmt"

	"meecc"
)

// The quickest path: send a few bytes between two simulated enclaves at
// the paper's operating point.
func ExampleRunChannel() {
	cfg := meecc.DefaultChannelConfig(42)
	cfg.Bits = meecc.BitsFromString("HI")
	res, err := meecc.RunChannel(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(meecc.StringFromBits(res.Received))
	fmt.Printf("%.1f KBps\n", res.KBps)
	// Output:
	// HI
	// 33.3 KBps
}

// Reverse engineering recovers the paper's §4 result.
func ExampleReverseEngineer() {
	org, _, _, err := meecc.ReverseEngineer(meecc.DefaultOptions(13), 10)
	if err != nil {
		panic(err)
	}
	fmt.Println(org)
	// Output:
	// 64 KB, 8-way set-associative, 128 sets of 64 B lines
}

// The bit pattern helpers encode payloads for the raw channel.
func ExampleBitsFromString() {
	bits := meecc.BitsFromString("A") // 0x41, LSB first
	fmt.Println(bits)
	// Output:
	// [1 0 0 0 0 0 1 0]
}

// Reliable transfers wrap the raw channel in FEC framing.
func ExampleRunReliable() {
	cfg := meecc.DefaultChannelConfig(404)
	res, err := meecc.RunReliable(cfg, []byte("key"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (CRC ok: %v)\n", res.Payload, res.Stats.CRCOK)
	// Output:
	// key (CRC ok: true)
}
