package platform

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/mee"
	"meecc/internal/sim"
)

func bootDefault(t *testing.T, seed uint64) *Platform {
	t.Helper()
	return New(DefaultConfig(seed))
}

// runThread executes body on a fresh enclave-owning process and returns
// after the simulation drains.
func runEnclaveThread(t *testing.T, p *Platform, pages int, body func(*Thread)) {
	t.Helper()
	pr := p.NewProcess("t")
	if _, err := pr.CreateEnclave(pages); err != nil {
		t.Fatal(err)
	}
	p.SpawnThread("t", pr, 0, func(th *Thread) {
		th.EnterEnclave()
		body(th)
	})
	p.Run(-1)
}

func TestEnclaveReadWriteRoundTrip(t *testing.T) {
	p := bootDefault(t, 1)
	defer p.Close()
	runEnclaveThread(t, p, 4, func(th *Thread) {
		base := th.Process().Enclave().Base
		th.WriteU64(base+128, 0xfeedface)
		v, _ := th.ReadU64(base + 128)
		if v != 0xfeedface {
			t.Errorf("read %#x, want 0xfeedface", v)
		}
	})
}

func TestEnclaveDataIsCiphertextInDRAM(t *testing.T) {
	p := bootDefault(t, 2)
	defer p.Close()
	var pa dram.Addr
	runEnclaveThread(t, p, 1, func(th *Thread) {
		base := th.Process().Enclave().Base
		th.WriteU64(base, 0x1122334455667788)
		th.Flush(base) // force writeback through the MEE
		pa, _ = th.Process().Translate(base)
	})
	line := p.Mem().ReadLine(pa)
	if binary.LittleEndian.Uint64(line[:8]) == 0x1122334455667788 {
		t.Fatal("plaintext visible in DRAM: MEE did not encrypt the writeback")
	}
	// And reading it back through the MEE recovers the plaintext.
	runEnclaveThread(t, p, 1, func(th *Thread) {
		t.Log("second enclave created for symmetry") // separate enclave, own pages
	})
}

func TestGeneralMemoryRoundTrip(t *testing.T) {
	p := bootDefault(t, 3)
	defer p.Close()
	pr := p.NewProcess("n")
	p.SpawnThread("n", pr, 1, func(th *Thread) {
		va := pr.AllocGeneral(2)
		th.WriteU64(va+8, 42)
		v, _ := th.ReadU64(va + 8)
		if v != 42 {
			t.Errorf("general memory read %d, want 42", v)
		}
	})
	p.Run(-1)
}

func TestCachedAccessSkipsMEE(t *testing.T) {
	p := bootDefault(t, 4)
	defer p.Close()
	runEnclaveThread(t, p, 1, func(th *Thread) {
		base := th.Process().Enclave().Base
		first := th.Access(base)
		if !first.WentToMEE {
			t.Error("cold access bypassed the MEE")
		}
		second := th.Access(base)
		if second.WentToMEE {
			t.Error("cached access reached the MEE")
		}
		if second.CacheLevel != cpucache.HitL1 {
			t.Errorf("second access at %v, want L1", second.CacheLevel)
		}
	})
}

func TestFlushForcesMEEButPreservesMEECache(t *testing.T) {
	p := bootDefault(t, 5)
	defer p.Close()
	runEnclaveThread(t, p, 1, func(th *Thread) {
		base := th.Process().Enclave().Base
		th.Access(base)
		th.Flush(base)
		res := th.Access(base)
		if !res.WentToMEE {
			t.Error("flushed access did not reach the MEE")
		}
		// The versions line stayed in the MEE cache: fast path.
		if res.MEEHit != mee.HitVersions {
			t.Errorf("post-flush access hit %v, want versions (clflush must not flush MEE cache)", res.MEEHit)
		}
	})
}

func TestRdtscFaultsInEnclaveMode(t *testing.T) {
	p := bootDefault(t, 6)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "rdtsc") {
			t.Fatalf("expected rdtsc #UD panic, got %v", r)
		}
		p.Close()
	}()
	runEnclaveThread(t, p, 1, func(th *Thread) {
		th.Rdtsc()
	})
}

func TestRdtscWorksOutsideEnclave(t *testing.T) {
	p := bootDefault(t, 7)
	defer p.Close()
	pr := p.NewProcess("n")
	p.SpawnThread("n", pr, 0, func(th *Thread) {
		th.Spin(999)
		if got := th.Rdtsc(); got != 999 {
			t.Errorf("rdtsc %d, want 999", got)
		}
	})
	p.Run(-1)
}

func TestTimerNowQuantizedAndCheap(t *testing.T) {
	p := bootDefault(t, 8)
	defer p.Close()
	runEnclaveThread(t, p, 1, func(th *Thread) {
		th.Spin(1000)
		before := th.Now()
		v := th.TimerNow()
		cost := th.Now() - before
		if cost != sim.Cycles(p.Config().TimerReadCost) {
			t.Errorf("timer read cost %d", cost)
		}
		res := sim.Cycles(p.Config().TimerResolution)
		if v%res != 0 {
			t.Errorf("timer value %d not quantized to %d", v, res)
		}
		if before-v >= res {
			t.Errorf("timer value %d too stale (now %d)", v, before)
		}
	})
}

func TestOCallRdtscCostRange(t *testing.T) {
	p := bootDefault(t, 9)
	defer p.Close()
	runEnclaveThread(t, p, 1, func(th *Thread) {
		for i := 0; i < 20; i++ {
			before := th.Now()
			th.OCallRdtsc()
			cost := th.Now() - before
			if cost < enclave.OCallMinCycles || cost > enclave.OCallMaxCycles {
				t.Errorf("OCALL cost %d outside [%d,%d]", cost, enclave.OCallMinCycles, enclave.OCallMaxCycles)
			}
		}
	})
}

func TestNonEnclaveAccessToEPCFaults(t *testing.T) {
	p := bootDefault(t, 10)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "abort-page") {
			t.Fatalf("expected abort-page panic, got %v", r)
		}
		p.Close()
	}()
	pr := p.NewProcess("n")
	if _, err := pr.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	p.SpawnThread("n", pr, 0, func(th *Thread) {
		th.Access(pr.Enclave().Base) // not in enclave mode
	})
	p.Run(-1)
}

func TestCrossEnclaveAccessFaults(t *testing.T) {
	p := bootDefault(t, 11)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "EPCM") {
			t.Fatalf("expected EPCM violation, got %v", r)
		}
		p.Close()
	}()
	prA := p.NewProcess("a")
	prB := p.NewProcess("b")
	if _, err := prA.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	if _, err := prB.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	// Map B's physical enclave page into A's page table (malicious OS).
	paB, _ := prB.Translate(prB.Enclave().Base)
	evil := enclave.VAddr(0x4000_0000)
	prA.pt.Map(evil, paB)
	p.SpawnThread("a", prA, 0, func(th *Thread) {
		th.EnterEnclave()
		th.Access(evil) // A in enclave mode touching B's EPC page
	})
	p.Run(-1)
}

func TestSequentialEPCAllocationIsContiguous(t *testing.T) {
	p := bootDefault(t, 12)
	defer p.Close()
	pr := p.NewProcess("n")
	e, err := pr.CreateEnclave(16)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := pr.Translate(e.Base)
	for i := 0; i < 16; i++ {
		pa, ok := pr.Translate(e.Base + enclave.VAddr(i*enclave.PageBytes))
		if !ok || pa != first+dram.Addr(i*enclave.PageBytes) {
			t.Fatalf("page %d not contiguous", i)
		}
	}
}

func TestWindowKBpsMatchesPaperHeadline(t *testing.T) {
	p := bootDefault(t, 13)
	defer p.Close()
	// 15000-cycle window at 4 GHz -> ~33 KBps, the paper's ~35 KBps.
	got := p.WindowKBps(15000)
	if got < 30 || got > 37 {
		t.Fatalf("WindowKBps(15000) = %.1f, want ~33", got)
	}
}
