package platform

import (
	"encoding/binary"
	"fmt"

	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/mee"
	"meecc/internal/sim"
)

// Timeline is the clock a Thread executes against. Under the general DES
// engine it is the actor's *sim.Proc (Advance yields to the scheduler);
// under the epoch kernel it is a lane cursor that just moves a number. All
// Thread model code is written against this interface, so both engines run
// the exact same access/flush/timer code — same latencies, same rng draws —
// and differ only in who owns the clock.
type Timeline interface {
	Now() sim.Cycles
	Advance(n sim.Cycles)
	SleepUntil(t sim.Cycles)
}

// Thread is one hardware thread executing on a core on behalf of a process.
// Its methods are the simulated "ISA" that attack code is written against;
// every method advances simulated time by the operation's cost.
type Thread struct {
	proc        *Process
	core        int
	tl          Timeline
	enclaveMode bool

	// tlb is a host-side direct-mapped translation cache: pure memoization
	// of PageTable.Translate plus the (deterministic, latency-free) SGX
	// access checks. Entries validate against the page table's version
	// counter, so any Map — including Repage's remap — invalidates the
	// whole cache with no shootdown bookkeeping. ver==0 marks an empty
	// slot (page-table versions start at 1).
	tlb [tlbSlots]tlbEntry

	// Fault-injection state (see internal/fault). pendingStall is time the
	// thread has lost to an external event (preemption, page fault) that it
	// pays at its next instruction; timerDrift/timerJitter perturb this
	// thread's hyperthread-timer readings. All four fields are written by
	// injector actors and read by this thread — safe because the engine
	// serializes actors.
	pendingStall sim.Cycles
	timerDrift   sim.Cycles
	timerJitter  float64
}

const tlbSlots = 64

type tlbEntry struct {
	page      enclave.VAddr // virtual page base
	pa        dram.Addr     // physical page base
	protected bool
	ver       uint64 // page-table version the entry was filled under; 0 = empty
}

// AccessResult reports what one memory access did, for instrumentation.
// In-universe code may only use Lat (which it would observe via timers);
// CacheLevel/MEEHit are ground truth available to the experiment harness.
type AccessResult struct {
	Lat        sim.Cycles
	CacheLevel cpucache.Level
	WentToMEE  bool
	MEEHit     mee.HitLevel
}

// SpawnThread starts a thread of pr pinned to core, running body. The body
// executes under the simulation engine like any actor. The returned Thread
// is the same handle the body receives — callers keep it to target the
// thread with fault injection.
func (p *Platform) SpawnThread(name string, pr *Process, core int, body func(*Thread)) *Thread {
	return p.SpawnThreadAt(name, pr, core, 0, body)
}

// SpawnThreadAt is SpawnThread with a start cycle.
func (p *Platform) SpawnThreadAt(name string, pr *Process, core int, start sim.Cycles, body func(*Thread)) *Thread {
	if core < 0 || core >= p.cfg.Cores {
		panic(fmt.Sprintf("platform: core %d out of range", core))
	}
	th := &Thread{proc: pr, core: core}
	p.eng.SpawnAt(name, start, func(sp *sim.Proc) {
		th.tl = sp
		body(th)
	})
	return th
}

// DetachThread builds a Thread that is not backed by any engine actor: it
// carries saved thread state and executes against the caller-supplied
// Timeline. This is how the epoch kernel drives the exact Thread model code
// (access, Flush, TimerNow, ...) from a compiled lane — the lane's cursor
// is the timeline, and no goroutine exists. The caller owns scheduling; the
// platform only validates the core.
func (p *Platform) DetachThread(pr *Process, st ThreadState, tl Timeline) *Thread {
	if st.Core < 0 || st.Core >= p.cfg.Cores {
		panic(fmt.Sprintf("platform: core %d out of range", st.Core))
	}
	return &Thread{
		proc:         pr,
		core:         st.Core,
		tl:           tl,
		enclaveMode:  st.EnclaveMode,
		pendingStall: st.PendingStall,
		timerDrift:   st.TimerDrift,
		timerJitter:  st.TimerJitter,
	}
}

// ThreadState is the portable execution state of a thread at a quiescent
// point (its actor has finished and the next one will be spawned later,
// possibly on a forked platform). It deliberately excludes the simulated
// clock — the caller decides the resume cycle — and the owning process,
// which is re-bound by index on the target platform.
type ThreadState struct {
	Core         int
	EnclaveMode  bool
	PendingStall sim.Cycles
	TimerDrift   sim.Cycles
	TimerJitter  float64
}

// State captures the thread's portable execution state for ResumeThread.
func (t *Thread) State() ThreadState {
	return ThreadState{
		Core:         t.core,
		EnclaveMode:  t.enclaveMode,
		PendingStall: t.pendingStall,
		TimerDrift:   t.timerDrift,
		TimerJitter:  t.timerJitter,
	}
}

// ResumeThread spawns a thread of pr at cycle `start` carrying saved state:
// it begins already in enclave mode if the original was (no EnterExitCost
// is charged — the original paid it), with pending stalls and timer
// perturbations restored. This is how warm-state forks continue a thread on
// a forked platform: capture State() when the warm actor finishes, Fork the
// platform, then ResumeThread the continuation at the same cycle.
func (p *Platform) ResumeThread(name string, pr *Process, start sim.Cycles, st ThreadState, body func(*Thread)) *Thread {
	th := p.SpawnThreadAt(name, pr, st.Core, start, body)
	th.enclaveMode = st.EnclaveMode
	th.pendingStall = st.PendingStall
	th.timerDrift = st.TimerDrift
	th.timerJitter = st.TimerJitter
	return th
}

// Core returns the core this thread is currently scheduled on.
func (t *Thread) Core() int { return t.core }

// SetCore migrates the thread to another physical core (scheduler
// migration). The thread keeps running; its subsequent accesses see that
// core's private L1/L2, so previously warm lines miss. Callers model the
// scheduling cost separately via Preempt.
func (t *Thread) SetCore(core int) {
	if core < 0 || core >= t.proc.plat.cfg.Cores {
		panic(fmt.Sprintf("platform: SetCore %d out of range", core))
	}
	t.core = core
}

// Preempt charges the thread `stall` cycles of lost time (AEX, scheduler
// latency, page-fault handling) at its next instruction. Stalls from
// multiple events accumulate. Time spent parked in SpinUntil absorbs the
// stall for free, as on real hardware — preempting an idle-waiting thread
// costs it nothing observable.
func (t *Thread) Preempt(stall sim.Cycles) {
	if stall > 0 {
		t.pendingStall += stall
	}
}

// AddTimerDrift skews this thread's hyperthread-timer readings by d
// (cumulative): the helper thread publishing timestamps has fallen behind
// (d < 0) or the reader's view runs ahead (d > 0).
func (t *Thread) AddTimerDrift(d sim.Cycles) { t.timerDrift += d }

// SetTimerJitter sets the ± bound of uniform noise on every subsequent
// hyperthread-timer reading (0 disables).
func (t *Thread) SetTimerJitter(j float64) { t.timerJitter = j }

// payStall consumes any pending preemption stall before an instruction.
func (t *Thread) payStall() {
	if t.pendingStall > 0 {
		d := t.pendingStall
		t.pendingStall = 0
		t.tl.Advance(d)
	}
}

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Now returns simulator-internal time. In-universe code cannot read this
// (that is the whole point of challenge 4); it exists for harness
// instrumentation and tests.
func (t *Thread) Now() sim.Cycles { return t.tl.Now() }

// InEnclave reports whether the thread is in enclave mode.
func (t *Thread) InEnclave() bool { return t.enclaveMode }

// EnterEnclave switches to enclave mode (EENTER).
func (t *Thread) EnterEnclave() {
	if t.proc.encl == nil {
		panic(fmt.Sprintf("platform: process %s has no enclave", t.proc.name))
	}
	if t.enclaveMode {
		panic("platform: nested EnterEnclave")
	}
	t.enclaveMode = true
	t.tl.Advance(sim.Cycles(t.proc.plat.cfg.EnterExitCost))
}

// ExitEnclave leaves enclave mode (EEXIT).
func (t *Thread) ExitEnclave() {
	if !t.enclaveMode {
		panic("platform: ExitEnclave outside enclave")
	}
	t.enclaveMode = false
	t.tl.Advance(sim.Cycles(t.proc.plat.cfg.EnterExitCost))
}

// translate resolves va, enforcing SGX access control: EPC pages are only
// reachable from enclave mode by their owning enclave. The result is
// memoized in the thread's tlb: translation and EPCM ownership can only
// change through PageTable.Map (Repage remaps bump the version, spoiling
// every cached entry), so a version-valid hit may skip both lookups. The
// abort-page check is mode-dependent and re-applied on every hit.
func (t *Thread) translate(va enclave.VAddr) (dram.Addr, bool) {
	page := va &^ (enclave.PageBytes - 1)
	slot := &t.tlb[(page/enclave.PageBytes)%tlbSlots]
	if slot.ver == t.proc.pt.Version() && slot.page == page {
		if slot.protected && !t.enclaveMode {
			panic(fmt.Sprintf("platform: %s: abort-page access to EPC from non-enclave mode (VA %#x)", t.proc.name, va))
		}
		return slot.pa + dram.Addr(va-page), slot.protected
	}
	pa, ok := t.proc.pt.Translate(va)
	if !ok {
		panic(fmt.Sprintf("platform: %s: fault at unmapped VA %#x", t.proc.name, va))
	}
	p := t.proc.plat
	protected := p.mee.Geometry().ContainsData(pa)
	if protected {
		if !t.enclaveMode {
			panic(fmt.Sprintf("platform: %s: abort-page access to EPC from non-enclave mode (VA %#x)", t.proc.name, va))
		}
		if owner := p.epc.Owner(pa); t.proc.encl == nil || owner != t.proc.encl.ID {
			panic(fmt.Sprintf("platform: %s: EPCM violation at VA %#x (owner %d)", t.proc.name, va, owner))
		}
	}
	*slot = tlbEntry{page: page, pa: pa - dram.Addr(va-page), protected: protected, ver: t.proc.pt.Version()}
	return pa, protected
}

// access is the common read/write path: CPU caches first, then the memory
// system (MEE walk for protected lines, plain DRAM otherwise).
func (t *Thread) access(va enclave.VAddr, write bool) AccessResult {
	t.payStall()
	pa, protected := t.translate(va)
	p := t.proc.plat
	rng := p.rng
	now := t.tl.Now()

	lvl, lat := p.caches.Access(t.core, pa, write)
	res := AccessResult{CacheLevel: lvl}
	if lvl == cpucache.Miss {
		if protected {
			plain, mlat, hit, err := p.mee.ReadData(now+lat, rng, pa)
			if err != nil {
				panic(fmt.Sprintf("platform: %s: %v", t.proc.name, err))
			}
			lat += mlat
			res.WentToMEE, res.MEEHit = true, hit
			t.writebackVictim(now+lat, p.caches.Fill(t.core, pa, plain, write))
		} else {
			lat += p.mem.Access(now+lat, rng, pa, false)
			line := p.mem.ReadLine(pa)
			t.writebackVictim(now+lat, p.caches.Fill(t.core, pa, line, write))
		}
	}
	// Ambient system interference: occasional latency spikes. Exposure is
	// proportional to how long the operation is in flight (an SMI or
	// preemption is likelier to land in a 500-cycle DRAM access than in a
	// 4-cycle L1 hit); SpikeProb is calibrated at a 500-cycle op.
	if p.cfg.SpikeProb > 0 {
		exposure := p.cfg.SpikeProb * float64(lat) / 500
		if exposure > p.cfg.SpikeProb {
			exposure = p.cfg.SpikeProb
		}
		if rng.Float64() < exposure {
			lat += sim.Cycles(rng.Float64() * p.cfg.SpikeMax)
		}
	}
	res.Lat = lat
	t.tl.Advance(lat)
	return res
}

// writebackVictim pushes an evicted dirty line back to memory: protected
// lines re-encrypt through the MEE (version bump), general lines write to
// DRAM. The traffic is posted — it occupies the memory system but does not
// delay this thread.
func (t *Thread) writebackVictim(now sim.Cycles, v *cpucache.Victim) {
	if v == nil || !v.Dirty {
		return
	}
	p := t.proc.plat
	if p.mee.Geometry().ContainsData(v.Addr) {
		if _, _, err := p.mee.WriteData(now, p.rng, v.Addr, v.Data); err != nil {
			panic(fmt.Sprintf("platform: writeback: %v", err))
		}
		return
	}
	p.mem.WriteLine(v.Addr, v.Data)
	_ = p.mem.Access(now, p.rng, v.Addr, true)
}

// Access touches va (a load whose value is ignored) and returns timing and
// instrumentation. This is the probe primitive of all the attacks.
func (t *Thread) Access(va enclave.VAddr) AccessResult {
	return t.access(va, false)
}

// ReadU64 loads eight bytes at va (must not cross a cache line).
func (t *Thread) ReadU64(va enclave.VAddr) (uint64, AccessResult) {
	if va%64 > 56 {
		panic("platform: ReadU64 crosses a cache line")
	}
	res := t.access(va, false)
	pa, _ := t.proc.pt.Translate(va)
	buf := t.proc.plat.caches.Data(pa)
	return binary.LittleEndian.Uint64(buf[pa%64:]), res
}

// WriteU64 stores eight bytes at va (must not cross a cache line).
func (t *Thread) WriteU64(va enclave.VAddr, val uint64) AccessResult {
	if va%64 > 56 {
		panic("platform: WriteU64 crosses a cache line")
	}
	res := t.access(va, true)
	pa, _ := t.proc.pt.Translate(va)
	buf := t.proc.plat.caches.Data(pa)
	binary.LittleEndian.PutUint64(buf[pa%64:], val)
	return res
}

// Flush executes clflush on va's line: evicted from every CPU cache level
// (writing back if dirty) but — critically — not from the MEE cache.
func (t *Thread) Flush(va enclave.VAddr) {
	t.payStall()
	pa, _ := t.translate(va)
	p := t.proc.plat
	victim, lat := p.caches.Flush(pa)
	t.writebackVictim(t.tl.Now()+lat, victim)
	t.tl.Advance(lat)
}

// Mfence orders memory operations (small fixed cost; ordering is implicit
// in the serialized simulation).
func (t *Thread) Mfence() { t.tl.Advance(20) }

// Rdtsc returns the exact cycle counter — but faults in enclave mode, as on
// SGX1 hardware (challenge 4). Use TimerNow or OCallRdtsc inside enclaves.
func (t *Thread) Rdtsc() sim.Cycles {
	if t.enclaveMode {
		panic("platform: rdtsc #UD in enclave mode (SGX1)")
	}
	t.payStall()
	now := t.tl.Now()
	t.tl.Advance(sim.Cycles(t.proc.plat.cfg.RdtscCost))
	return now
}

// TimerNow reads the hyperthread timer (Figure 2(c)): a sibling thread
// outside the enclave continuously stores rdtsc values to shared
// non-enclave memory, which this thread loads directly. The reading is
// quantized to the timer thread's update period and costs ~50 cycles.
func (t *Thread) TimerNow() sim.Cycles {
	t.payStall()
	p := t.proc.plat
	res := sim.Cycles(p.cfg.TimerResolution)
	val := t.tl.Now()/res*res + t.timerDrift
	if t.timerJitter > 0 {
		val += sim.Cycles((p.rng.Float64()*2 - 1) * t.timerJitter)
	}
	t.tl.Advance(sim.Cycles(p.cfg.TimerReadCost))
	return val
}

// OCallRdtsc models executing rdtsc via an OCALL (Figure 2(b)): the enclave
// exits, reads the TSC, and re-enters, costing 8000–15000 cycles. The
// returned value is exact but stale by roughly half the call overhead.
func (t *Thread) OCallRdtsc() sim.Cycles {
	if !t.enclaveMode {
		panic("platform: OCallRdtsc outside enclave")
	}
	p := t.proc.plat
	span := enclave.OCallMaxCycles - enclave.OCallMinCycles
	dur := sim.Cycles(enclave.OCallMinCycles + p.rng.Float64()*float64(span))
	val := t.tl.Now() + dur/2
	t.tl.Advance(dur)
	return val
}

// Spin busy-loops for n cycles.
func (t *Thread) Spin(n sim.Cycles) { t.tl.Advance(n) }

// SpinUntil busy-loops until simulated cycle `deadline` (in-universe code
// implements this by polling TimerNow; the cost model is identical).
func (t *Thread) SpinUntil(deadline sim.Cycles) { t.tl.SleepUntil(deadline) }
