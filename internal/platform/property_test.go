package platform

import (
	"testing"
	"testing/quick"

	"meecc/internal/enclave"
)

// Property: translations are functions (same VA -> same PA), page-offset
// preserving, and distinct pages never alias.
func TestQuickTranslationConsistency(t *testing.T) {
	p := New(DefaultConfig(123))
	defer p.Close()
	pr := p.NewProcess("q")
	gen := pr.AllocGeneral(16)
	if _, err := pr.CreateEnclave(16); err != nil {
		t.Fatal(err)
	}
	encl := pr.Enclave().Base

	f := func(pageSel, off uint16, useEnclave bool) bool {
		base := gen
		if useEnclave {
			base = encl
		}
		va := base + enclave.VAddr(int(pageSel%16)*enclave.PageBytes+int(off)%enclave.PageBytes)
		pa1, ok1 := pr.Translate(va)
		pa2, ok2 := pr.Translate(va)
		if !ok1 || !ok2 || pa1 != pa2 {
			return false
		}
		return uint64(pa1)%enclave.PageBytes == uint64(va)%enclave.PageBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}

	// No aliasing between any two distinct pages of the process.
	seen := map[uint64]string{}
	check := func(label string, base enclave.VAddr) {
		for i := 0; i < 16; i++ {
			pa, ok := pr.Translate(base + enclave.VAddr(i*enclave.PageBytes))
			if !ok {
				t.Fatalf("%s page %d unmapped", label, i)
			}
			if prev, dup := seen[uint64(pa)]; dup {
				t.Fatalf("%s page %d aliases %s (PA %#x)", label, i, prev, pa)
			}
			seen[uint64(pa)] = label
		}
	}
	check("general", gen)
	check("enclave", encl)
}

// Property: enclave frames always fall inside the protected data region and
// general frames never do.
func TestQuickFrameRegionSeparation(t *testing.T) {
	p := New(DefaultConfig(124))
	defer p.Close()
	pr := p.NewProcess("q")
	gen := pr.AllocGeneral(64)
	if _, err := pr.CreateEnclave(64); err != nil {
		t.Fatal(err)
	}
	geom := p.MEE().Geometry()
	for i := 0; i < 64; i++ {
		pg, _ := pr.Translate(gen + enclave.VAddr(i*enclave.PageBytes))
		if geom.ContainsData(pg) {
			t.Fatalf("general page %d landed in the protected region", i)
		}
		pe, _ := pr.Translate(pr.Enclave().Base + enclave.VAddr(i*enclave.PageBytes))
		if !geom.ContainsData(pe) {
			t.Fatalf("enclave page %d outside the protected region", i)
		}
	}
}
