package platform

import (
	"reflect"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/sim"
)

// warmAndSnapshot boots a platform, runs a warm access phase inside an
// enclave thread to completion, and returns the snapshot plus the saved
// thread state and warm-end clock for resuming.
func warmAndSnapshot(t *testing.T, seed uint64) (*Snapshot, ThreadState, sim.Cycles) {
	t.Helper()
	p := New(DefaultConfig(seed))
	pr := p.NewProcess("victim")
	e, err := pr.CreateEnclave(64)
	if err != nil {
		t.Fatal(err)
	}
	var st ThreadState
	var end sim.Cycles
	th := p.SpawnThread("warm", pr, 0, func(th *Thread) {
		th.EnterEnclave()
		for i := 0; i < 512; i++ {
			va := e.Base + enclave.VAddr((i*64)%int(e.Size()))
			if i%3 == 0 {
				th.WriteU64(va, uint64(i))
			} else {
				th.Access(va)
			}
		}
		st = th.State()
		end = th.Now()
	})
	_ = th
	p.Run(-1)
	return p.Snapshot(), st, end
}

// trace resumes a thread on plat at the saved point and records the full
// latency/level/MEE-hit stream of a deterministic probe pattern.
func trace(t *testing.T, plat *Platform, st ThreadState, start sim.Cycles) []AccessResult {
	t.Helper()
	pr := plat.Procs()[0]
	e := pr.Enclave()
	var out []AccessResult
	plat.ResumeThread("probe", pr, start, st, func(th *Thread) {
		for i := 0; i < 768; i++ {
			va := e.Base + enclave.VAddr((i*64*7)%int(e.Size()))
			if i%5 == 0 {
				th.Flush(va)
			}
			res := th.Access(va)
			out = append(out, res)
		}
	})
	plat.Run(-1)
	return out
}

func TestForkReproducesParentStream(t *testing.T) {
	for _, seed := range []uint64{3, 17, 101} {
		snap, st, end := warmAndSnapshot(t, seed)

		// Two independent forks and a third fork all see identical streams.
		a := trace(t, snap.Fork(), st, end)
		b := trace(t, snap.Fork(), st, end)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two forks of one snapshot diverged", seed)
		}

		// A fresh platform warmed identically (same seed, same ops) and
		// resumed without forking must produce the same stream: the fork is
		// behaviorally invisible.
		p := New(DefaultConfig(seed))
		pr := p.NewProcess("victim")
		e, err := pr.CreateEnclave(64)
		if err != nil {
			t.Fatal(err)
		}
		var st2 ThreadState
		var end2 sim.Cycles
		p.SpawnThread("warm", pr, 0, func(th *Thread) {
			th.EnterEnclave()
			for i := 0; i < 512; i++ {
				va := e.Base + enclave.VAddr((i*64)%int(e.Size()))
				if i%3 == 0 {
					th.WriteU64(va, uint64(i))
				} else {
					th.Access(va)
				}
			}
			st2 = th.State()
			end2 = th.Now()
		})
		p.Run(-1)
		if st2 != st || end2 != end {
			t.Fatalf("seed %d: warm phase not reproducible", seed)
		}
		c := trace(t, p, st2, end2)
		if !reflect.DeepEqual(a, c) {
			t.Fatalf("seed %d: forked stream differs from fresh-platform stream", seed)
		}
	}
}

func TestForkIsolatesWrites(t *testing.T) {
	snap, st, end := warmAndSnapshot(t, 9)
	f1 := snap.Fork()
	f2 := snap.Fork()

	write := func(plat *Platform, val uint64) {
		pr := plat.Procs()[0]
		e := pr.Enclave()
		plat.ResumeThread("w", pr, end, st, func(th *Thread) {
			th.WriteU64(e.Base+8192, val)
		})
		plat.Run(-1)
	}
	read := func(plat *Platform) uint64 {
		pr := plat.Procs()[0]
		e := pr.Enclave()
		var got uint64
		plat.ResumeThread("r", pr, end+1_000_000, st, func(th *Thread) {
			got, _ = th.ReadU64(e.Base + 8192)
		})
		plat.Run(-1)
		return got
	}

	write(f1, 0xdead)
	write(f2, 0xbeef)
	if g := read(f1); g != 0xdead {
		t.Fatalf("fork1 read %#x, want 0xdead", g)
	}
	if g := read(f2); g != 0xbeef {
		t.Fatalf("fork2 read %#x, want 0xbeef", g)
	}
}

func TestSnapshotWithLiveActorsPanics(t *testing.T) {
	p := New(DefaultConfig(5))
	pr := p.NewProcess("bg")
	p.SpawnThread("spin", pr, 0, func(th *Thread) {
		for {
			th.Spin(1000)
		}
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot with a live actor did not panic")
		}
	}()
	p.Snapshot()
}
