package platform

import (
	"reflect"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/sim"
)

// fuzzOps decodes the fuzz payload into a bounded op script: each byte is
// one enclave memory operation (read, write, or flush+read) at a derived
// page/line offset. The same script always replays the same stream.
type fuzzOp struct {
	kind byte // 0 = read, 1 = write, 2 = flush then read
	off  enclave.VAddr
}

func decodeFuzzOps(data []byte, max int, size enclave.VAddr) []fuzzOp {
	if len(data) > max {
		data = data[:max]
	}
	ops := make([]fuzzOp, len(data))
	for i, b := range data {
		// Spread accesses line-granular across the enclave so scripts hit
		// page-table, MEE-tree, and cache-set variety.
		off := (enclave.VAddr(b) * 64 * 131) % size
		ops[i] = fuzzOp{kind: b % 3, off: off &^ 7}
	}
	return ops
}

func playFuzzOps(th *Thread, base enclave.VAddr, ops []fuzzOp) []AccessResult {
	out := make([]AccessResult, 0, len(ops))
	for i, op := range ops {
		va := base + op.off
		switch op.kind {
		case 1:
			th.WriteU64(va, uint64(i)*0x9e3779b97f4a7c15)
		case 2:
			th.Flush(va)
		}
		out = append(out, th.Access(va))
	}
	return out
}

// FuzzForkEquivalence drives random read/write/flush scripts across a
// Snapshot/Fork boundary and asserts the forked platform replays the exact
// HitLevel/latency/MEE stream of a fresh platform that never forked. This
// is the tentpole invariant — forking is behaviorally invisible — probed
// with adversarial access patterns instead of the fixed ones in fork_test.
func FuzzForkEquivalence(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint64(42), []byte{255, 128, 64, 32}, []byte{9, 9, 9, 9, 9, 9})
	f.Add(uint64(7), []byte{}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, seed uint64, warmBytes, probeBytes []byte) {
		seed %= 1 << 20 // keep configs in a sane, fast regime

		boot := func() (*Platform, *Process, *enclave.Enclave) {
			p := New(DefaultConfig(seed))
			pr := p.NewProcess("fuzz")
			e, err := pr.CreateEnclave(32)
			if err != nil {
				t.Fatal(err)
			}
			return p, pr, e
		}
		_, _, e0 := boot()
		size := enclave.VAddr(e0.Size())
		warmOps := decodeFuzzOps(warmBytes, 192, size)
		probeOps := decodeFuzzOps(probeBytes, 192, size)

		// warm runs the shared prefix on a platform and returns the saved
		// resume point.
		warm := func(p *Platform, pr *Process, e *enclave.Enclave) (ThreadState, sim.Cycles) {
			var st ThreadState
			var end sim.Cycles
			p.SpawnThread("warm", pr, 0, func(th *Thread) {
				th.EnterEnclave()
				playFuzzOps(th, e.Base, warmOps)
				st, end = th.State(), th.Now()
			})
			p.Run(-1)
			return st, end
		}
		probe := func(p *Platform, st ThreadState, start sim.Cycles) []AccessResult {
			pr := p.Procs()[0]
			e := pr.Enclave()
			var out []AccessResult
			p.ResumeThread("probe", pr, start, st, func(th *Thread) {
				out = playFuzzOps(th, e.Base, probeOps)
			})
			p.Run(-1)
			return out
		}

		// Fresh platform: warm then probe, no fork anywhere.
		pf, prf, ef := boot()
		stf, endf := warm(pf, prf, ef)
		want := probe(pf, stf, endf)

		// Forked platform: identical warm, snapshot, probe a fork.
		ps, prs, es := boot()
		sts, ends := warm(ps, prs, es)
		if sts != stf || ends != endf {
			t.Fatalf("warm phase not reproducible: %+v@%d vs %+v@%d", sts, ends, stf, endf)
		}
		snap := ps.Snapshot()
		got := probe(snap.Fork(), sts, ends)
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d diverged: fork %+v, fresh %+v", i, got[i], want[i])
				}
			}
			t.Fatalf("fork stream length %d, fresh %d", len(got), len(want))
		}

		// A second fork of the same snapshot replays the same stream.
		if again := probe(snap.Fork(), sts, ends); !reflect.DeepEqual(again, want) {
			t.Fatal("second fork of the same snapshot diverged")
		}
	})
}
