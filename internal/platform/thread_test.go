package platform

import (
	"fmt"
	"strings"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/sim"
)

func TestHugepagesAlignedAndContiguous(t *testing.T) {
	p := New(DefaultConfig(90))
	defer p.Close()
	pr := p.NewProcess("h")
	base := pr.AllocHugepages(2)
	if uint64(base)%HugepageBytes != 0 {
		t.Fatalf("hugepage VA %#x not 2MB aligned", base)
	}
	pa0, ok := pr.Translate(base)
	if !ok || uint64(pa0)%HugepageBytes != 0 {
		t.Fatalf("hugepage PA %#x not 2MB aligned", pa0)
	}
	// Physically contiguous within each hugepage.
	for off := 0; off < HugepageBytes; off += enclave.PageBytes {
		pa, ok := pr.Translate(base + enclave.VAddr(off))
		if !ok {
			t.Fatalf("hole at offset %#x", off)
		}
		if uint64(pa) != uint64(pa0)+uint64(off) {
			t.Fatalf("offset %#x not contiguous: %#x vs %#x", off, pa, uint64(pa0)+uint64(off))
		}
	}
	// Second hugepage need not be adjacent to the first but must itself be
	// aligned.
	pa1, _ := pr.Translate(base + HugepageBytes)
	if uint64(pa1)%HugepageBytes != 0 {
		t.Fatalf("second hugepage PA %#x unaligned", pa1)
	}
}

func TestWriteU64CrossLinePanics(t *testing.T) {
	p := New(DefaultConfig(91))
	defer p.Close()
	pr := p.NewProcess("x")
	va := pr.AllocGeneral(1)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "crosses") {
			t.Fatalf("expected cross-line panic, got %v", r)
		}
		p.Close()
	}()
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		th.WriteU64(va+60, 1) // straddles the 64-byte boundary
	})
	p.Run(-1)
}

func TestUnmappedAccessPanics(t *testing.T) {
	p := New(DefaultConfig(92))
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "unmapped") {
			t.Fatalf("expected unmapped fault, got %v", r)
		}
		p.Close()
	}()
	pr := p.NewProcess("x")
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		th.Access(0xdead0000)
	})
	p.Run(-1)
}

func TestSpawnThreadBadCorePanics(t *testing.T) {
	p := New(DefaultConfig(93))
	defer p.Close()
	pr := p.NewProcess("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range core")
		}
	}()
	p.SpawnThread("x", pr, 7, func(th *Thread) {})
}

func TestNestedEnterEnclavePanics(t *testing.T) {
	p := New(DefaultConfig(94))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected nested EENTER panic")
		}
		p.Close()
	}()
	pr := p.NewProcess("x")
	if _, err := pr.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		th.EnterEnclave()
		th.EnterEnclave()
	})
	p.Run(-1)
}

func TestExitEnclaveOutsidePanics(t *testing.T) {
	p := New(DefaultConfig(95))
	defer func() {
		if recover() == nil {
			t.Fatal("expected EEXIT panic")
		}
		p.Close()
	}()
	pr := p.NewProcess("x")
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		th.ExitEnclave()
	})
	p.Run(-1)
}

func TestEnterExitRoundTripCost(t *testing.T) {
	p := New(DefaultConfig(96))
	defer p.Close()
	pr := p.NewProcess("x")
	if _, err := pr.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	var cost sim.Cycles
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		before := th.Now()
		th.EnterEnclave()
		th.ExitEnclave()
		cost = th.Now() - before
	})
	p.Run(-1)
	want := 2 * sim.Cycles(p.Config().EnterExitCost)
	if cost != want {
		t.Fatalf("EENTER+EEXIT cost %d, want %d", cost, want)
	}
}

func TestSecondEnclavePerProcessRejected(t *testing.T) {
	p := New(DefaultConfig(97))
	defer p.Close()
	pr := p.NewProcess("x")
	if _, err := pr.CreateEnclave(1); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.CreateEnclave(1); err == nil {
		t.Fatal("second enclave accepted")
	}
}

func TestEPCExhaustion(t *testing.T) {
	cfg := DefaultConfig(98)
	p := New(cfg)
	defer p.Close()
	pr := p.NewProcess("big")
	total := int(cfg.EPCSize / enclave.PageBytes)
	if _, err := pr.CreateEnclave(total + 1); err == nil {
		t.Fatal("EPC over-allocation accepted")
	}
}

func TestSpikeExposureScalesWithLatency(t *testing.T) {
	cfg := DefaultConfig(99)
	cfg.SpikeProb = 1.0 // always spike at full exposure
	cfg.SpikeMax = 10000
	p := New(cfg)
	defer p.Close()
	pr := p.NewProcess("x")
	va := pr.AllocGeneral(1)
	spikes := 0
	const n = 400
	p.SpawnThread("x", pr, 0, func(th *Thread) {
		th.Access(va) // warm: L1 resident afterwards
		for i := 0; i < n; i++ {
			r := th.Access(va) // 4-cycle L1 hits: tiny exposure
			if r.Lat > 100 {
				spikes++
			}
		}
	})
	p.Run(-1)
	// Exposure for a 4-cycle op is 4/500 = 0.8%; with n=400 expect ~3,
	// certainly far below the 100% a naive per-op model would give.
	if spikes > n/10 {
		t.Fatalf("%d/%d L1 hits spiked; exposure not scaled by latency", spikes, n)
	}
}

func TestGeneralMemoryIsolationBetweenProcesses(t *testing.T) {
	p := New(DefaultConfig(100))
	defer p.Close()
	prA := p.NewProcess("a")
	prB := p.NewProcess("b")
	vaA := prA.AllocGeneral(1)
	vaB := prB.AllocGeneral(1)
	paA, _ := prA.Translate(vaA)
	paB, _ := prB.Translate(vaB)
	if paA == paB {
		t.Fatal("two processes share a physical frame")
	}
}
