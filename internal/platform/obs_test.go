package platform

import (
	"bytes"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/obs"
)

// TestPlatformObservabilityEndToEnd boots a platform with a full observer
// (registry + tracer), drives enclave traffic through two threads, and
// checks the whole observability surface at once: the semantic snapshot
// carries sim/mee/cache counters, the diagnostic snapshot adds scheduler
// internals, and the exported Chrome trace validates with one track per
// actor plus the MEE hit-level counter track.
func TestPlatformObservabilityEndToEnd(t *testing.T) {
	o := obs.NewObserver().WithTracer(1 << 12)
	cfg := DefaultConfig(7)
	cfg.Obs = o
	p := New(cfg)
	defer p.Close()

	if p.Obs() != o {
		t.Fatal("platform does not expose its observer")
	}

	spawn := func(name string, core int) {
		pr := p.NewProcess(name)
		if _, err := pr.CreateEnclave(4); err != nil {
			t.Fatal(err)
		}
		p.SpawnThread(name, pr, core, func(th *Thread) {
			th.EnterEnclave()
			base := th.Process().Enclave().Base
			for i := 0; i < 64; i++ {
				th.Access(base + enclave.VAddr(512*(i%8)))
				th.Flush(base + enclave.VAddr(512*(i%8)))
			}
		})
	}
	spawn("spy", 0)
	spawn("victim", 1)
	p.Run(-1)

	snap := o.Snapshot()
	for _, name := range []string{"sim.ops", "sim.busy_cycles", "sim.clock", "sim.spawns", "mee.reads", "cache.mee.fills"} {
		if snap.Counters[name] == 0 {
			t.Errorf("semantic counter %q missing: %v", name, snap.Counters)
		}
	}
	if _, ok := snap.Counters["sim.resumes"]; ok {
		t.Error("diagnostic sim.resumes leaked into the semantic snapshot")
	}
	all := o.SnapshotAll()
	if all.Counters["sim.resumes"] == 0 {
		t.Error("sim.resumes missing from the full snapshot")
	}

	var buf bytes.Buffer
	if err := o.Tracer().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	tracks := map[string]bool{}
	for _, tr := range sum.Tracks {
		tracks[tr] = true
	}
	for _, want := range []string{"spy", "victim"} {
		if !tracks[want] {
			t.Errorf("trace missing actor track %q (have %v)", want, sum.Tracks)
		}
	}
	foundHits := false
	for _, c := range sum.Counters {
		if c == "mee.hit_level" {
			foundHits = true
		}
	}
	if !foundHits {
		t.Errorf("trace missing mee.hit_level counter track (have %v)", sum.Counters)
	}
	if sum.Slices == 0 {
		t.Error("trace contains no scheduler batch slices")
	}
	if sum.LastUs <= 0 {
		t.Errorf("trace span %v us, want > 0", sum.LastUs)
	}

	// CSV export of the same ring is non-empty and line-per-event.
	var csv bytes.Buffer
	if err := o.Tracer().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(csv.Bytes(), []byte("\n")); lines != o.Tracer().Len()+1 {
		t.Errorf("CSV has %d lines for %d events", lines, o.Tracer().Len())
	}
}
