package platform

import (
	"testing"

	"meecc/internal/sim"
)

// TestTimerThreadMatchesAnalyticModel validates Thread.TimerNow (the
// analytic Figure 2(c) model) against the explicit timer-thread actor: both
// must deliver readings that are slightly stale, cheap to read, and
// monotone.
func TestTimerThreadMatchesAnalyticModel(t *testing.T) {
	cfg := DefaultConfig(77)
	cfg.SpikeProb = 0 // quiet machine: compare the mechanisms themselves
	p := New(cfg)
	defer p.Close()
	pr := p.NewProcess("proc")
	if _, err := pr.CreateEnclave(2); err != nil {
		t.Fatal(err)
	}
	tsVA := p.StartTimerThread(pr, 1)

	type sample struct {
		value     sim.Cycles // timer reading
		trueTime  sim.Cycles // clock at read completion
		readCost  sim.Cycles
		mechanism string
	}
	var samples []sample
	p.SpawnThread("reader", pr, 0, func(th *Thread) {
		th.EnterEnclave()
		th.Spin(5000) // let the timer thread warm up
		for i := 0; i < 50; i++ {
			before := th.Now()
			v := th.TimerNow()
			// A load's value is architecturally visible at completion, so
			// staleness is measured against the post-read clock.
			samples = append(samples, sample{v, th.Now(), th.Now() - before, "analytic"})
			th.Spin(777)
			before = th.Now()
			raw, _ := th.ReadU64(tsVA)
			samples = append(samples, sample{sim.Cycles(raw), th.Now(), th.Now() - before, "actor"})
			th.Spin(777)
		}
	})
	p.Run(2_000_000)

	if len(samples) != 100 {
		t.Fatalf("got %d samples", len(samples))
	}
	lastByMech := map[string]sim.Cycles{}
	for i, s := range samples {
		staleness := s.trueTime - s.value
		if staleness < 0 {
			t.Fatalf("sample %d (%s): timer value %d ahead of true time %d", i, s.mechanism, s.value, s.trueTime)
		}
		// Both mechanisms must be stale by at most ~2 update periods.
		if staleness > 120 {
			t.Errorf("sample %d (%s): staleness %d cycles", i, s.mechanism, staleness)
		}
		// Reading must cost tens of cycles, not an OCALL.
		if s.readCost < 1 || s.readCost > 150 {
			t.Errorf("sample %d (%s): read cost %d", i, s.mechanism, s.readCost)
		}
		if prev, ok := lastByMech[s.mechanism]; ok && s.value < prev {
			t.Errorf("sample %d (%s): timer went backwards (%d < %d)", i, s.mechanism, s.value, prev)
		}
		lastByMech[s.mechanism] = s.value
	}
}

// TestWriteInvalidatesOtherCores checks the MESI-style behaviour the timer
// thread depends on: after a write, another core's cached copy is gone and
// its next read pays the shared-cache path (and sees the new value).
func TestWriteInvalidatesOtherCores(t *testing.T) {
	p := New(DefaultConfig(78))
	defer p.Close()
	pr := p.NewProcess("proc")
	va := pr.AllocGeneral(1)

	// Reader on core 0 caches the line, then the writer on core 1 updates
	// it; the reader must observe the new value.
	var got uint64
	var secondReadCost sim.Cycles
	p.SpawnThread("reader", pr, 0, func(th *Thread) {
		th.ReadU64(va) // warm: now in core 0's L1
		th.SpinUntil(10_000)
		before := th.Now()
		got, _ = th.ReadU64(va)
		secondReadCost = th.Now() - before
	})
	p.SpawnThreadAt("writer", pr, 1, 5000, func(th *Thread) {
		th.WriteU64(va, 0xABCD)
	})
	p.Run(-1)
	if got != 0xABCD {
		t.Fatalf("reader saw %#x, want 0xABCD", got)
	}
	// The read after invalidation cannot be an L1 hit (4 cycles).
	if secondReadCost <= sim.Cycles(p.Config().CPU.L1Lat) {
		t.Fatalf("post-invalidation read cost %d looks like an L1 hit", secondReadCost)
	}
}
