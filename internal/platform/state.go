package platform

import (
	"fmt"

	"math/rand/v2"
	"meecc/internal/cache"
	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/itree"
	"meecc/internal/mee"
)

// ProcState is the serializable image of one frozen process.
type ProcState struct {
	Name     string
	PID      int
	PT       []enclave.PTE
	HeapNext enclave.VAddr
	EnclNext enclave.VAddr
	Encl     *enclave.Enclave // nil if none
}

// SnapshotState is the stable codec surface for platform snapshots: every
// field a serializer needs to rebuild a Snapshot, as plain data. The machine
// Config is carried with Obs and the MEE policy object stripped; MEEPolicy
// records the policy by name and Master carries the crypto master key, so
// decode re-derives working keys through the normal NewCrypto path.
type SnapshotState struct {
	Cfg       Config
	MEEPolicy string
	Master    [16]byte
	RNGState  []byte
	Mem       *dram.SnapshotState
	MEE       *mee.State
	Caches    *cpucache.State
	EPC       *enclave.EPCState
	GenUsed   []uint64
	PRMBase   dram.Addr
	Procs     []ProcState
	NextEID   int
	NextPID   int
}

// ExportState flattens the snapshot for serialization. The image deep-copies
// everything except DRAM page data, which aliases the snapshot's immutable
// copy-on-write pages.
func (s *Snapshot) ExportState() *SnapshotState {
	cfg := s.cfg
	cfg.Obs = nil
	cfg.MEE.Policy = nil
	meeSt := s.mee.ExportState()
	st := &SnapshotState{
		Cfg:       cfg,
		MEEPolicy: meeSt.Cache.PolicyName,
		Master:    s.mee.CryptoMaster(),
		RNGState:  append([]byte(nil), s.rngState...),
		Mem:       s.mem.ExportState(),
		MEE:       meeSt,
		Caches:    s.caches.ExportState(),
		EPC:       s.epc.ExportState(),
		GenUsed:   append([]uint64(nil), s.genUsed...),
		PRMBase:   s.prmBase,
		NextEID:   s.nextEID,
		NextPID:   s.nextPID,
	}
	for _, pr := range s.procs {
		ps := ProcState{
			Name:     pr.name,
			PID:      pr.pid,
			PT:       pr.pt.Entries(),
			HeapNext: pr.heapNext,
			EnclNext: pr.enclNext,
		}
		if pr.encl != nil {
			e := *pr.encl
			ps.Encl = &e
		}
		st.Procs = append(st.Procs, ps)
	}
	return st
}

// SnapshotFromState rebuilds a forkable Snapshot from a serialized image.
// Derived structures — the integrity-tree geometry and the working crypto
// keys — are recomputed from the config and master key rather than trusted
// from the image, and every cross-component invariant the codec cannot
// express (PRM placement, bitmap sizes, cache geometry) is revalidated, so
// a corrupted image yields an error, never a silently inconsistent machine.
func SnapshotFromState(st *SnapshotState) (*Snapshot, error) {
	cfg := st.Cfg
	cfg.Obs = nil
	if cfg.Cores <= 0 || cfg.CPU.Cores != cfg.Cores {
		return nil, fmt.Errorf("platform: config cores %d / cpu cores %d inconsistent", cfg.Cores, cfg.CPU.Cores)
	}
	if cfg.DRAM.Size < cfg.PRMSize || cfg.PRMSize < cfg.EPCSize {
		return nil, fmt.Errorf("platform: region sizes inconsistent (dram %d, prm %d, epc %d)",
			cfg.DRAM.Size, cfg.PRMSize, cfg.EPCSize)
	}
	prmBase := dram.Addr(cfg.DRAM.Size - cfg.PRMSize)
	if prmBase != st.PRMBase {
		return nil, fmt.Errorf("platform: PRM base %#x does not match config-derived %#x", st.PRMBase, prmBase)
	}
	geom, err := itree.NewGeometry(prmBase, cfg.PRMSize, cfg.EPCSize)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if st.MEE == nil || st.Mem == nil || st.Caches == nil || st.EPC == nil {
		return nil, fmt.Errorf("platform: snapshot image missing a component state")
	}
	if st.MEE.Cache == nil || st.MEE.Cache.PolicyName != st.MEEPolicy {
		return nil, fmt.Errorf("platform: MEE policy name mismatch")
	}
	pol, err := cache.PolicyByName(st.MEEPolicy, rand.New(rand.NewPCG(0, 0)))
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	cfg.MEE.Policy = pol
	if want := (uint64(prmBase)/enclave.PageBytes + 63) / 64; uint64(len(st.GenUsed)) != want {
		return nil, fmt.Errorf("platform: general-frame bitmap %d words, want %d", len(st.GenUsed), want)
	}
	mem, err := dram.SnapshotFromState(st.Mem)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	meeEng, err := mee.EngineFromState(cfg.MEE, geom, itree.NewCrypto(st.Master), st.MEE)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	caches, err := cpucache.HierarchyFromState(cfg.CPU, st.Caches)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	epc, err := enclave.EPCFromState(st.EPC)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	s := &Snapshot{
		cfg:      cfg,
		rngState: append([]byte(nil), st.RNGState...),
		mem:      mem,
		mee:      meeEng,
		caches:   caches,
		epc:      epc,
		genUsed:  append([]uint64(nil), st.GenUsed...),
		prmBase:  prmBase,
		nextEID:  st.NextEID,
		nextPID:  st.NextPID,
	}
	for i, ps := range st.Procs {
		pt, err := enclave.PageTableFromEntries(ps.PT)
		if err != nil {
			return nil, fmt.Errorf("platform: proc %d: %w", i, err)
		}
		snap := procSnap{
			name:     ps.Name,
			pid:      ps.PID,
			pt:       pt,
			heapNext: ps.HeapNext,
			enclNext: ps.EnclNext,
		}
		if ps.Encl != nil {
			e := *ps.Encl
			snap.encl = &e
		}
		s.procs = append(s.procs, snap)
	}
	return s, nil
}
