package platform

import (
	"fmt"

	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/mee"
	"meecc/internal/sim"
)

// Snapshot is a frozen deep copy of a platform's warm state, taken at a
// quiescent point: no actors pending in the engine and no thread mid-
// instruction. Fork stamps out independent platforms from it; each fork
// resumes the RNG stream exactly where the parent left it, so a fork
// behaves cycle-for-cycle like the parent would have. Snapshots may be
// forked any number of times, concurrently, and the parent platform may
// keep running after the snapshot (DRAM pages go copy-on-write on both
// sides; everything else is deep-copied at snapshot time).
//
// Observability does not carry across: forks boot with a nil Observer.
type Snapshot struct {
	cfg      Config
	rngState []byte
	mem      *dram.Snapshot
	mee      *mee.Engine         // frozen copy; never runs
	caches   *cpucache.Hierarchy // frozen copy; never runs
	epc      *enclave.EPCAllocator
	genUsed  []uint64
	prmBase  dram.Addr
	procs    []procSnap
	nextEID  int
	nextPID  int
}

// procSnap freezes one process (page table, address-space cursors, enclave
// metadata) without its platform backpointer.
type procSnap struct {
	name     string
	pid      int
	pt       *enclave.PageTable
	heapNext enclave.VAddr
	enclNext enclave.VAddr
	encl     *enclave.Enclave // copied value, nil if none
}

// Snapshot captures the platform's current state. The caller must ensure
// the engine is quiescent: every spawned actor has run to completion (or
// the engine was never run). Snapshotting with actors pending panics,
// because their closures capture the parent platform and cannot be carried
// into a fork.
func (p *Platform) Snapshot() *Snapshot {
	if n := p.eng.Live(); n != 0 {
		panic(fmt.Sprintf("platform: Snapshot with %d actors still live", n))
	}
	cfg := p.cfg
	cfg.Obs = nil
	s := &Snapshot{
		cfg:      cfg,
		rngState: p.eng.RNGSnapshot(),
		mem:      p.mem.Snapshot(),
		mee:      p.mee.Fork(nil, nil),
		caches:   p.caches.Fork(nil),
		epc:      p.epc.Clone(),
		genUsed:  make([]uint64, len(p.genUsed)),
		prmBase:  p.prmBase,
		procs:    make([]procSnap, len(p.procs)),
		nextEID:  p.nextEID,
		nextPID:  p.nextPID,
	}
	copy(s.genUsed, p.genUsed)
	for i, pr := range p.procs {
		s.procs[i] = procSnap{
			name:     pr.name,
			pid:      pr.pid,
			pt:       pr.pt.Clone(),
			heapNext: pr.heapNext,
			enclNext: pr.enclNext,
		}
		if pr.encl != nil {
			e := *pr.encl
			s.procs[i].encl = &e
		}
	}
	return s
}

// Fork builds an independent platform from the snapshot. The fork's engine
// starts at cycle zero with an empty actor table (spawn ids restart at 0)
// and the RNG stream resumed from the snapshot point; its memory system,
// caches, MEE, EPC allocator, and processes are deep copies. Threads are
// not carried over — respawn them with ResumeThread from saved ThreadState.
func (s *Snapshot) Fork() *Platform {
	eng, err := sim.NewEngineResumed(s.rngState)
	if err != nil {
		panic(fmt.Sprintf("platform: Fork: %v", err))
	}
	rng := eng.Rand()
	mem := s.mem.Fork()
	p := &Platform{
		cfg:     s.cfg,
		eng:     eng,
		mem:     mem,
		mee:     s.mee.Fork(mem, rng),
		caches:  s.caches.Fork(rng),
		epc:     s.epc.Clone(),
		genUsed: make([]uint64, len(s.genUsed)),
		prmBase: s.prmBase,
		procs:   make([]*Process, len(s.procs)),
		nextEID: s.nextEID,
		nextPID: s.nextPID,
		rng:     rng,
	}
	copy(p.genUsed, s.genUsed)
	for i, ps := range s.procs {
		pr := &Process{
			plat:     p,
			name:     ps.name,
			pid:      ps.pid,
			pt:       ps.pt.Clone(),
			heapNext: ps.heapNext,
			enclNext: ps.enclNext,
		}
		if ps.encl != nil {
			e := *ps.encl
			pr.encl = &e
		}
		p.procs[i] = pr
	}
	return p
}

// Procs returns the platform's processes in creation order. Forked
// platforms preserve indices, so callers resuming work after a Fork address
// the fork's copy of a process by the index it had on the parent.
func (p *Platform) Procs() []*Process { return p.procs }
