// Package platform assembles the simulated machine: cores, the CPU cache
// hierarchy, DRAM, the MEE with its integrity tree, the EPC allocator, and
// the process/thread abstractions that attack code is written against. The
// default configuration models the paper's testbed — an Intel i7-6700K
// (Skylake, 4 cores, SMT, 4 GHz) with 32 GB of DRAM and a 128 MB MEE region.
package platform

import (
	"fmt"
	"math/rand/v2"

	"meecc/internal/cache"
	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/itree"
	"meecc/internal/mee"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

// Config describes a whole simulated machine.
type Config struct {
	Seed    uint64
	Cores   int
	FreqGHz float64

	DRAM dram.Config
	CPU  cpucache.Config
	MEE  mee.Config
	// MEEPolicyName, when non-empty, overrides MEE.Policy by name (lru,
	// fifo, tree-plru, bit-plru, random) using the engine's seeded random
	// source — needed because the random policy must share the engine RNG.
	MEEPolicyName string

	// PRMSize is the processor-reserved (MEE) region, placed at top of
	// DRAM; EPCSize is the protected data portion inside it.
	PRMSize uint64
	EPCSize uint64
	EPCMode enclave.AllocMode

	// SpikeProb/SpikeMax inject occasional latency spikes on memory
	// operations, modeling the ambient system interference (SMIs, TLB
	// walks, prefetcher traffic) that gives the real channel its error
	// floor.
	SpikeProb float64
	SpikeMax  float64

	// Timing of the measurement mechanisms (Section 3, Figure 2).
	TimerResolution float64
	TimerReadCost   float64
	EnterExitCost   float64
	RdtscCost       float64

	// Obs, when non-nil, receives metrics and (optionally) timeline events
	// from every component of the booted machine. Nil — the default — keeps
	// all hot paths on their zero-instrumentation nil-check fast path.
	Obs *obs.Observer
}

// DefaultConfig returns the paper-testbed machine with the given seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Cores:           4,
		FreqGHz:         4.0,
		DRAM:            dram.DefaultConfig(),
		CPU:             cpucache.DefaultConfig(4),
		MEE:             mee.DefaultConfig(nil),
		PRMSize:         128 << 20,
		EPCSize:         96 << 20,
		EPCMode:         enclave.AllocSequential,
		SpikeProb:       0.05,
		SpikeMax:        500,
		TimerResolution: enclave.TimerResolutionCycles,
		TimerReadCost:   enclave.TimerReadCycles,
		EnterExitCost:   4000,
		RdtscCost:       25,
	}
}

// Platform is one booted machine.
type Platform struct {
	cfg    Config
	eng    *sim.Engine
	mem    *dram.DRAM
	mee    *mee.Engine
	caches *cpucache.Hierarchy
	epc    *enclave.EPCAllocator

	genUsed []uint64 // bitset over general-region 4 KB frames handed out
	prmBase dram.Addr
	procs   []*Process
	nextEID int
	nextPID int
	rng     *rand.Rand
}

// genFrameUsed reports whether the general-region frame at f was handed out.
func (p *Platform) genFrameUsed(f dram.Addr) bool {
	i := uint64(f) / enclave.PageBytes
	return p.genUsed[i/64]&(1<<(i%64)) != 0
}

// markGenFrame records the general-region frame at f as handed out.
func (p *Platform) markGenFrame(f dram.Addr) {
	i := uint64(f) / enclave.PageBytes
	p.genUsed[i/64] |= 1 << (i % 64)
}

// New boots a machine from cfg. It panics on inconsistent configuration —
// a booted platform is always internally consistent.
func New(cfg Config) *Platform {
	eng := sim.NewEngine(cfg.Seed)
	rng := eng.Rand()
	if cfg.MEEPolicyName != "" {
		pol, err := cache.PolicyByName(cfg.MEEPolicyName, rng)
		if err != nil {
			panic(fmt.Sprintf("platform: %v", err))
		}
		cfg.MEE.Policy = pol
	}
	if cfg.MEE.Policy == nil {
		cfg.MEE.Policy = cache.NewLRU()
	}
	if cfg.CPU.Cores != cfg.Cores {
		cfg.CPU.Cores = cfg.Cores
	}
	mem := dram.New(cfg.DRAM)
	prmBase := dram.Addr(cfg.DRAM.Size - cfg.PRMSize)
	geom, err := itree.NewGeometry(prmBase, cfg.PRMSize, cfg.EPCSize)
	if err != nil {
		panic(fmt.Sprintf("platform: %v", err))
	}
	var master [16]byte
	for i := range master {
		master[i] = byte(rng.Uint64())
	}
	p := &Platform{
		cfg:     cfg,
		eng:     eng,
		mem:     mem,
		mee:     mee.New(cfg.MEE, geom, itree.NewCrypto(master), mem),
		caches:  cpucache.New(cfg.CPU, cache.NewLRU()),
		epc:     enclave.NewEPCAllocator(prmBase, cfg.EPCSize, cfg.EPCMode, rng),
		genUsed: make([]uint64, (uint64(prmBase)/enclave.PageBytes+63)/64),
		prmBase: prmBase,
		rng:     rng,
	}
	if o := cfg.Obs; o != nil {
		o.Tracer().SetCyclesPerMicrosecond(cfg.FreqGHz * 1000)
		eng.Observe(o)
		p.mee.Observe(o)
		p.caches.Observe(o)
	}
	return p
}

// Obs returns the observer the platform was booted with (nil when
// observability is disabled).
func (p *Platform) Obs() *obs.Observer { return p.cfg.Obs }

// Engine exposes the simulation engine (Run/Close live there).
func (p *Platform) Engine() *sim.Engine { return p.eng }

// MEE exposes the memory encryption engine.
func (p *Platform) MEE() *mee.Engine { return p.mee }

// Mem exposes DRAM.
func (p *Platform) Mem() *dram.DRAM { return p.mem }

// Caches exposes the CPU cache hierarchy.
func (p *Platform) Caches() *cpucache.Hierarchy { return p.caches }

// EPC exposes the enclave page allocator.
func (p *Platform) EPC() *enclave.EPCAllocator { return p.epc }

// Config returns the boot configuration.
func (p *Platform) Config() Config { return p.cfg }

// Run advances simulation; see sim.Engine.Run.
func (p *Platform) Run(limit sim.Cycles) sim.Cycles { return p.eng.Run(limit) }

// Close tears down all actors.
func (p *Platform) Close() { p.eng.Close() }

// CyclesPerSecond converts the core frequency.
func (p *Platform) CyclesPerSecond() float64 { return p.cfg.FreqGHz * 1e9 }

// WindowKBps converts a per-bit timing window into a channel bit rate in
// kilobytes per second, the unit Figure 7 of the paper uses.
func (p *Platform) WindowKBps(window sim.Cycles) float64 {
	return p.CyclesPerSecond() / float64(window) / 8 / 1000
}

// allocGeneralFrame picks an unused random 4 KB frame outside the PRM,
// modeling an OS physical allocator on a long-running machine.
func (p *Platform) allocGeneralFrame() dram.Addr {
	nFrames := uint64(p.prmBase) / enclave.PageBytes
	for {
		f := dram.Addr(p.rng.Uint64N(nFrames) * enclave.PageBytes)
		if !p.genFrameUsed(f) {
			p.markGenFrame(f)
			return f
		}
	}
}

// allocHugeFrame picks an unused 2 MB-aligned physically contiguous region
// outside the PRM and marks all its 4 KB frames used.
func (p *Platform) allocHugeFrame() dram.Addr {
	nHuge := uint64(p.prmBase) / HugepageBytes
	for {
		base := dram.Addr(p.rng.Uint64N(nHuge) * HugepageBytes)
		free := true
		for off := 0; off < HugepageBytes; off += enclave.PageBytes {
			if p.genFrameUsed(base + dram.Addr(off)) {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for off := 0; off < HugepageBytes; off += enclave.PageBytes {
			p.markGenFrame(base + dram.Addr(off))
		}
		return base
	}
}

// NewProcess creates a process with an empty address space.
func (p *Platform) NewProcess(name string) *Process {
	pr := &Process{
		plat:     p,
		name:     name,
		pid:      p.nextPID,
		pt:       enclave.NewPageTable(),
		heapNext: 0x0000_1000_0000,
		enclNext: 0x0000_8000_0000,
	}
	p.nextPID++
	p.procs = append(p.procs, pr)
	return pr
}

// Process is one OS process, optionally hosting an enclave.
type Process struct {
	plat     *Platform
	name     string
	pid      int
	pt       *enclave.PageTable
	heapNext enclave.VAddr
	enclNext enclave.VAddr
	encl     *enclave.Enclave
}

// Name returns the process name.
func (pr *Process) Name() string { return pr.name }

// Enclave returns the process's enclave, or nil.
func (pr *Process) Enclave() *enclave.Enclave { return pr.encl }

// AllocGeneral maps n fresh 4 KB pages of ordinary memory and returns the
// base virtual address. Physical frames are randomly scattered, as on a
// real long-running system.
func (pr *Process) AllocGeneral(n int) enclave.VAddr {
	base := pr.heapNext
	for i := 0; i < n; i++ {
		pr.pt.Map(pr.heapNext, pr.plat.allocGeneralFrame())
		pr.heapNext += enclave.PageBytes
	}
	return base
}

// HugepageBytes is the size of a transparent hugepage (2 MB). Hugepages
// are available only to ordinary memory — SGX1 enclaves cannot use them
// (challenge 3, §3), which is why LLC-style attacks lose their main tool
// inside enclaves.
const HugepageBytes = 2 << 20

// AllocHugepages maps n 2 MB hugepages (physically contiguous and 2 MB
// aligned) of ordinary memory and returns the base virtual address.
// Virtual-to-physical contiguity within each hugepage is what classic LLC
// Prime+Probe attacks use to construct eviction sets.
func (pr *Process) AllocHugepages(n int) enclave.VAddr {
	// Align the heap cursor so VA mod 2 MB == PA mod 2 MB == 0.
	if rem := uint64(pr.heapNext) % HugepageBytes; rem != 0 {
		pr.heapNext += enclave.VAddr(HugepageBytes - rem)
	}
	base := pr.heapNext
	for i := 0; i < n; i++ {
		pa := pr.plat.allocHugeFrame()
		for off := 0; off < HugepageBytes; off += enclave.PageBytes {
			pr.pt.Map(pr.heapNext+enclave.VAddr(off), pa+dram.Addr(off))
		}
		pr.heapNext += HugepageBytes
	}
	return base
}

// CreateEnclave builds an enclave of n EPC pages mapped contiguously in the
// process's ELRANGE and returns it. EPC frames come from the platform
// allocator (sequential by default — see enclave.AllocMode).
func (pr *Process) CreateEnclave(n int) (*enclave.Enclave, error) {
	if pr.encl != nil {
		return nil, fmt.Errorf("platform: process %s already has an enclave", pr.name)
	}
	e := &enclave.Enclave{ID: pr.plat.nextEID, Base: pr.enclNext, Pages: n}
	pr.plat.nextEID++
	for i := 0; i < n; i++ {
		f, err := pr.plat.epc.Alloc(e.ID)
		if err != nil {
			return nil, err
		}
		pr.pt.Map(pr.enclNext+enclave.VAddr(i*enclave.PageBytes), f)
	}
	pr.encl = e
	return e, nil
}

// Translate resolves a virtual address (tests and tools).
func (pr *Process) Translate(va enclave.VAddr) (dram.Addr, bool) {
	return pr.pt.Translate(va)
}

// Repage models an EPC paging round trip (EWB + ELDU) on the enclave page
// backing va: the page is evicted to unprotected backing store and reloaded
// into a different physical EPC frame, so its versions line now maps to a
// different MEE cache set — exactly the event that silently invalidates a
// previously discovered eviction set. CPU-cache lines of the old frame are
// invalidated (dirty ones written back through the MEE first), the page
// table is remapped, and the old frame is returned to the allocator.
//
// Page contents are not copied: attack code only ever measures access
// timing on EPC pages, never data values, and a freshly mapped frame reads
// as an initialized (zero, MAC-valid) page.
//
// The fault is applied at simulated time `now`; the cost to the faulting
// thread is modeled separately via Thread.Preempt.
func (p *Platform) Repage(pr *Process, va enclave.VAddr, now sim.Cycles) error {
	base := va &^ (enclave.PageBytes - 1)
	old, ok := pr.pt.Translate(base)
	if !ok {
		return fmt.Errorf("platform: Repage at unmapped VA %#x", va)
	}
	if pr.encl == nil || p.epc.Owner(old) != pr.encl.ID {
		return fmt.Errorf("platform: Repage at %#x: not an EPC page of %s", va, pr.name)
	}
	fresh, err := p.epc.Realloc(old)
	if err != nil {
		return err
	}
	// EWB invalidates every cached line of the evicted frame.
	for off := 0; off < enclave.PageBytes; off += 64 {
		victim, _ := p.caches.Flush(old + dram.Addr(off))
		if victim != nil && victim.Dirty {
			if _, _, err := p.mee.WriteData(now, p.rng, victim.Addr, victim.Data); err != nil {
				return fmt.Errorf("platform: Repage writeback: %w", err)
			}
		}
	}
	pr.pt.Map(base, fresh)
	return nil
}

// StartTimerThread spawns the Figure 2(c) helper: a thread of pr outside
// enclave mode (on the sibling hyperthread in the paper's setup) that
// continuously stores the time-stamp counter into ordinary shared memory.
// It returns the virtual address an enclave-mode thread of the same
// process reads timestamps from. The thread runs until the engine closes.
//
// Thread.TimerNow models the same mechanism analytically (quantized clock,
// fixed read cost) and is what the attack code uses; the explicit actor
// exists to validate that model — see TestTimerThreadMatchesAnalyticModel.
func (p *Platform) StartTimerThread(pr *Process, core int) enclave.VAddr {
	va := pr.AllocGeneral(1)
	p.SpawnThread("timer-thread", pr, core, func(th *Thread) {
		for {
			v := th.Rdtsc()
			th.WriteU64(va, uint64(v))
		}
	})
	return va
}
