package cache

import (
	"testing"

	"meecc/internal/obs"
)

// TestLookupAllocFree pins Lookup's zero-allocation property — it runs on
// every simulated memory access across L1/L2/LLC and the MEE cache.
func TestLookupAllocFree(t *testing.T) {
	c := New("alloc", 16, 4, NewLRU())
	c.Insert(3, 100, false)
	allocs := testing.AllocsPerRun(200, func() {
		c.Lookup(3, 100) // hit
		c.Lookup(3, 101) // miss
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocated %.1f times per run, want 0", allocs)
	}
}

// TestInsertInvalidateAllocFree covers the churn path: evicting inserts and
// invalidations must not allocate either.
func TestInsertInvalidateAllocFree(t *testing.T) {
	c := New("alloc", 16, 4, NewLRU())
	var tag Tag
	allocs := testing.AllocsPerRun(200, func() {
		c.Insert(5, tag, tag%2 == 0)
		c.Invalidate(5, tag-3)
		tag++
	})
	if allocs != 0 {
		t.Fatalf("Insert/Invalidate allocated %.1f times per run, want 0", allocs)
	}
}

// TestLookupInsertAllocFreeWithMetrics re-pins both hot paths with an
// observer attached. Cache metrics are all deferred samples over the
// existing Stats struct, so the hot path is unchanged by design — this test
// keeps that true as the instrumentation evolves.
func TestLookupInsertAllocFreeWithMetrics(t *testing.T) {
	c := New("alloc", 16, 4, NewLRU())
	o := obs.NewObserver()
	c.Observe(o, "llc")
	c.Insert(3, 100, false)
	var tag Tag
	allocs := testing.AllocsPerRun(200, func() {
		c.Lookup(3, 100)
		c.Lookup(3, 101)
		c.Insert(5, tag, tag%2 == 0)
		c.Invalidate(5, tag-3)
		tag++
	})
	if allocs != 0 {
		t.Fatalf("instrumented Lookup/Insert allocated %.1f times per run, want 0", allocs)
	}
	snap := o.Snapshot()
	if snap.Counters["cache.llc.hits"] == 0 || snap.Counters["cache.llc.misses"] == 0 {
		t.Errorf("cache samples missing from snapshot: %v", snap.Counters)
	}
}

// TestEvictionsBySetIntoReusesBuffer verifies the allocation-free counter
// snapshot: a caller-provided buffer of sufficient capacity is reused.
func TestEvictionsBySetIntoReusesBuffer(t *testing.T) {
	c := New("alloc", 8, 2, NewLRU())
	for i := 0; i < 32; i++ {
		c.Insert(i%8, Tag(i), false)
	}
	buf := make([]uint64, 8)
	got := c.EvictionsBySetInto(buf)
	if &got[0] != &buf[0] {
		t.Fatal("sufficient buffer was not reused")
	}
	want := c.EvictionsBySet()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("set %d: %d != %d", i, got[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { c.EvictionsBySetInto(buf) }); allocs != 0 {
		t.Fatalf("EvictionsBySetInto allocated %.1f times, want 0", allocs)
	}
	// Undersized or nil buffers grow.
	if short := c.EvictionsBySetInto(make([]uint64, 2)); len(short) != 8 {
		t.Fatalf("short buffer result length %d, want 8", len(short))
	}
}
