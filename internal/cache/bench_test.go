package cache

import (
	"math/rand/v2"
	"testing"
)

func benchCache(b *testing.B, p Policy) {
	c := New("bench", 128, 8, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := i & 127
		tag := Tag(i % 4096)
		if !c.Lookup(set, tag) {
			c.Insert(set, tag, false)
		}
	}
}

func BenchmarkLookupInsertLRU(b *testing.B)      { benchCache(b, NewLRU()) }
func BenchmarkLookupInsertTreePLRU(b *testing.B) { benchCache(b, NewTreePLRU()) }
func BenchmarkLookupInsertBitPLRU(b *testing.B)  { benchCache(b, NewBitPLRU()) }
func BenchmarkLookupInsertRandom(b *testing.B) {
	benchCache(b, NewRandom(rand.New(rand.NewPCG(1, 2))))
}

func BenchmarkInvalidate(b *testing.B) {
	c := New("bench", 128, 8, NewLRU())
	for s := 0; s < 128; s++ {
		for w := 0; w < 8; w++ {
			c.Insert(s, Tag(s*8+w), false)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := i & 127
		tag := Tag(set*8 + (i>>7)&7)
		c.Invalidate(set, tag)
		c.Insert(set, tag, false)
	}
}
