package cache

import (
	"fmt"
	"math/rand/v2"
)

// ---------------------------------------------------------------------------
// NRU (not-recently-used): one reference bit per way; victim is chosen among
// clear-bit ways (pseudo-randomly to avoid positional bias); when every bit
// is set, all others are cleared. Many embedded and GPU caches use NRU.

type nruPolicy struct{ rng *rand.Rand }

// NewNRU returns a not-recently-used policy with pseudo-random victim
// selection among the non-referenced ways, drawing from rng.
func NewNRU(rng *rand.Rand) Policy { return &nruPolicy{rng: rng} }

func (*nruPolicy) Name() string { return "nru" }
func (p *nruPolicy) NewSetState(ways int) SetState {
	return &nruState{ref: make([]bool, ways), rng: p.rng}
}

type nruState struct {
	ref []bool
	rng *rand.Rand
}

func (s *nruState) Touch(way int) {
	s.ref[way] = true
	for _, b := range s.ref {
		if !b {
			return
		}
	}
	for w := range s.ref {
		s.ref[w] = false
	}
	s.ref[way] = true
}
func (s *nruState) Fill(way int) { s.Touch(way) }
func (s *nruState) Victim() int {
	candidates := make([]int, 0, len(s.ref))
	for w, b := range s.ref {
		if !b {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return s.rng.IntN(len(s.ref))
	}
	return candidates[s.rng.IntN(len(candidates))]
}
func (s *nruState) Invalidate(way int) { s.ref[way] = false }
func (s *nruState) Clone(rng *rand.Rand) SetState {
	if rng == nil {
		rng = s.rng
	}
	c := &nruState{ref: make([]bool, len(s.ref)), rng: rng}
	copy(c.ref, s.ref)
	return c
}
func (s *nruState) SaveWords() []uint64 { return boolsToWords(s.ref) }
func (s *nruState) LoadWords(ws []uint64) error {
	if len(ws) != len(s.ref) {
		return wordLenError("nru", len(ws), len(s.ref))
	}
	wordsToBools(s.ref, ws)
	return nil
}

// ---------------------------------------------------------------------------
// SRRIP (static re-reference interval prediction, Jaleel et al. ISCA 2010):
// 2-bit re-reference prediction values; hits promote to 0, fills insert at
// maxRRPV-1, victims are ways at maxRRPV (aging everyone when none is).

const srripMax = 3 // 2-bit RRPV

type srripPolicy struct{}

// NewSRRIP returns a static-RRIP policy, the scan-resistant replacement
// found in recent Intel LLCs.
func NewSRRIP() Policy { return srripPolicy{} }

func (srripPolicy) Name() string { return "srrip" }
func (srripPolicy) NewSetState(ways int) SetState {
	st := &srripState{rrpv: make([]uint8, ways)}
	for i := range st.rrpv {
		st.rrpv[i] = srripMax
	}
	return st
}

type srripState struct{ rrpv []uint8 }

func (s *srripState) Touch(way int) { s.rrpv[way] = 0 }
func (s *srripState) Fill(way int)  { s.rrpv[way] = srripMax - 1 }
func (s *srripState) Victim() int {
	for {
		for w, v := range s.rrpv {
			if v >= srripMax {
				return w
			}
		}
		for w := range s.rrpv {
			s.rrpv[w]++
		}
	}
}
func (s *srripState) Invalidate(way int) { s.rrpv[way] = srripMax }
func (s *srripState) Clone(*rand.Rand) SetState {
	c := &srripState{rrpv: make([]uint8, len(s.rrpv))}
	copy(c.rrpv, s.rrpv)
	return c
}
func (s *srripState) SaveWords() []uint64 {
	ws := make([]uint64, len(s.rrpv))
	for i, v := range s.rrpv {
		ws[i] = uint64(v)
	}
	return ws
}
func (s *srripState) LoadWords(ws []uint64) error {
	if len(ws) != len(s.rrpv) {
		return wordLenError("srrip", len(ws), len(s.rrpv))
	}
	for i, w := range ws {
		if w > srripMax {
			return fmt.Errorf("cache: srrip state: rrpv %d out of range", w)
		}
		s.rrpv[i] = uint8(w)
	}
	return nil
}

// extendedPolicyByName resolves the additional policies; see PolicyByName.
func extendedPolicyByName(name string, rng *rand.Rand) (Policy, error) {
	switch name {
	case "nru":
		if rng == nil {
			return nil, fmt.Errorf("cache: nru policy requires a random source")
		}
		return NewNRU(rng), nil
	case "srrip":
		return NewSRRIP(), nil
	default:
		return nil, fmt.Errorf("cache: unknown replacement policy %q", name)
	}
}
