package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestInsertFillsEmptyWaysFirst(t *testing.T) {
	c := New("t", 2, 4, NewLRU())
	for i := 0; i < 4; i++ {
		ev := c.Insert(0, Tag(i), false)
		if ev.Valid {
			t.Fatalf("insert %d evicted %+v with empty ways left", i, ev)
		}
	}
	if got := c.ValidCount(); got != 4 {
		t.Fatalf("valid=%d, want 4", got)
	}
	if st := c.Stats(); st.Fills != 4 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := New("t", 1, 4, NewLRU())
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	// Touch 0 so 1 becomes LRU.
	if !c.Lookup(0, 0) {
		t.Fatal("tag 0 should hit")
	}
	ev := c.Insert(0, 99, false)
	if !ev.Valid || ev.Tag != 1 {
		t.Fatalf("evicted %+v, want tag 1", ev)
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	c := New("t", 1, 4, NewFIFO())
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	c.Lookup(0, 0) // should not refresh under FIFO
	ev := c.Insert(0, 99, false)
	if !ev.Valid || ev.Tag != 0 {
		t.Fatalf("evicted %+v, want tag 0 (first in)", ev)
	}
}

func TestInsertExistingTagTouchesInsteadOfDuplicating(t *testing.T) {
	c := New("t", 1, 4, NewLRU())
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	c.Insert(0, 0, true) // re-insert: touch + dirty
	if c.ValidCount() != 4 {
		t.Fatalf("valid=%d, want 4", c.ValidCount())
	}
	ev := c.Insert(0, 99, false)
	if ev.Tag != 1 {
		t.Fatalf("evicted %+v, want tag 1 (0 was refreshed)", ev)
	}
	// The dirty bit must have been ORed in.
	line := c.Invalidate(0, 0)
	if !line.Valid || !line.Dirty {
		t.Fatalf("line %+v, want valid dirty", line)
	}
}

func TestInvalidateRemovesAndReportsDirty(t *testing.T) {
	c := New("t", 1, 2, NewLRU())
	c.Insert(0, 7, true)
	l := c.Invalidate(0, 7)
	if !l.Valid || !l.Dirty || l.Tag != 7 {
		t.Fatalf("invalidate returned %+v", l)
	}
	if c.Contains(0, 7) {
		t.Fatal("tag still present after invalidate")
	}
	if l2 := c.Invalidate(0, 7); l2.Valid {
		t.Fatalf("second invalidate returned %+v, want invalid", l2)
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := New("t", 1, 1, NewLRU())
	c.Insert(0, 1, true)
	ev := c.Insert(0, 2, false)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("evicted %+v, want dirty line", ev)
	}
	if st := c.Stats(); st.WritebacksOut != 1 {
		t.Fatalf("writebacks=%d, want 1", st.WritebacksOut)
	}
}

func TestFlushAllReturnsDirtyLines(t *testing.T) {
	c := New("t", 4, 2, NewLRU())
	c.Insert(0, 1, true)
	c.Insert(1, 2, false)
	c.Insert(2, 3, true)
	dirty := c.FlushAll()
	if len(dirty) != 2 {
		t.Fatalf("dirty lines %v, want 2", dirty)
	}
	if c.ValidCount() != 0 {
		t.Fatal("cache not empty after FlushAll")
	}
}

func TestTreePLRUCyclesAllWaysOnConsecutiveMisses(t *testing.T) {
	for _, ways := range []int{2, 4, 8, 16} {
		c := New("t", 1, ways, NewTreePLRU())
		for i := 0; i < ways; i++ {
			c.Insert(0, Tag(i), false)
		}
		seen := map[Tag]bool{}
		for i := 0; i < ways; i++ {
			ev := c.Insert(0, Tag(100+i), false)
			if !ev.Valid {
				t.Fatalf("ways=%d miss %d evicted nothing", ways, i)
			}
			if seen[ev.Tag] {
				t.Fatalf("ways=%d evicted %d twice in one sweep", ways, ev.Tag)
			}
			seen[ev.Tag] = true
		}
		if len(seen) != ways {
			t.Fatalf("ways=%d sweep evicted %d distinct lines", ways, len(seen))
		}
	}
}

func TestTreePLRUVictimAvoidsJustTouched(t *testing.T) {
	c := New("t", 1, 8, NewTreePLRU())
	for i := 0; i < 8; i++ {
		c.Insert(0, Tag(i), false)
	}
	for trial := 0; trial < 100; trial++ {
		tag := Tag(trial % 8)
		c.Lookup(0, tag)
		ev := c.Insert(0, Tag(1000+trial), false)
		if ev.Tag == tag {
			t.Fatalf("tree-plru evicted the just-touched line %d", tag)
		}
		// Restore the evicted original if it was one of 0..7 so the
		// working set stays analyzable.
		c.Invalidate(0, Tag(1000+trial))
		if ev.Valid {
			c.Insert(0, ev.Tag, false)
		}
	}
}

func TestTreePLRURejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 6-way tree-plru")
		}
	}()
	New("t", 1, 6, NewTreePLRU())
}

func TestBitPLRUVictimIsUnreferenced(t *testing.T) {
	c := New("t", 1, 4, NewBitPLRU())
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	// After 4 fills the last fill's bit survives the wrap-reset.
	c.Lookup(0, 1)
	c.Lookup(0, 2)
	ev := c.Insert(0, 99, false)
	if ev.Tag == 1 || ev.Tag == 2 || ev.Tag == 3 {
		t.Fatalf("bit-plru evicted recently used tag %d", ev.Tag)
	}
}

func TestRandomPolicyIsSeededDeterministic(t *testing.T) {
	run := func(seed uint64) []Tag {
		rng := rand.New(rand.NewPCG(seed, 0))
		c := New("t", 1, 8, NewRandom(rng))
		for i := 0; i < 8; i++ {
			c.Insert(0, Tag(i), false)
		}
		var evs []Tag
		for i := 0; i < 32; i++ {
			ev := c.Insert(0, Tag(100+i), false)
			evs = append(evs, ev.Tag)
		}
		return evs
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not reproducible for equal seeds")
		}
	}
}

func TestPolicyByName(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, name := range []string{"lru", "fifo", "tree-plru", "bit-plru", "random"} {
		p, err := PolicyByName(name, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := PolicyByName("mru", nil); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if _, err := PolicyByName("random", nil); err == nil {
		t.Fatal("expected error for random policy without rng")
	}
}

// Property: under any access pattern, a set never holds more lines than its
// associativity, never holds duplicate tags, and Lookup(x) after Insert(x)
// hits as long as fewer than `ways` other inserts intervened (true LRU).
func TestQuickLRUSetInvariants(t *testing.T) {
	const ways = 4
	f := func(ops []uint8) bool {
		c := New("q", 2, ways, NewLRU())
		for _, op := range ops {
			set := int(op) & 1
			tag := Tag(op >> 1)
			if op&0x80 != 0 {
				c.Invalidate(set, tag)
			} else {
				c.Insert(set, tag, op&0x40 != 0)
			}
			for s := 0; s < 2; s++ {
				seen := map[Tag]bool{}
				n := 0
				for _, l := range c.SetContents(s) {
					if !l.Valid {
						continue
					}
					n++
					if seen[l.Tag] {
						return false // duplicate tag
					}
					seen[l.Tag] = true
				}
				if n > ways {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: an insert of a fresh tag into a full LRU set always evicts the
// unique least-recently-used tag.
func TestQuickLRUExactEvictionOrder(t *testing.T) {
	f := func(touches []uint8) bool {
		const ways = 4
		c := New("q", 1, ways, NewLRU())
		order := []Tag{} // recency order, oldest first
		touch := func(tg Tag) {
			for i, x := range order {
				if x == tg {
					order = append(append(order[:i:i], order[i+1:]...), tg)
					return
				}
			}
			order = append(order, tg)
		}
		for i := 0; i < ways; i++ {
			c.Insert(0, Tag(i), false)
			touch(Tag(i))
		}
		for _, raw := range touches {
			tg := Tag(raw % ways)
			c.Lookup(0, tg)
			touch(tg)
		}
		ev := c.Insert(0, 999, false)
		return ev.Valid && ev.Tag == order[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsHitMissCounting(t *testing.T) {
	c := New("t", 1, 2, NewLRU())
	c.Lookup(0, 1) // miss
	c.Insert(0, 1, false)
	c.Lookup(0, 1) // hit
	c.Lookup(0, 2) // miss
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 1 hit 2 misses", st)
	}
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}
