package cache

import (
	"math/rand/v2"
	"testing"
)

func TestNRUNeverEvictsReferenced(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	c := New("t", 1, 4, NewNRU(rng))
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	// Fills set all four ref bits; the wrap cleared all but the last
	// (tag 3). Touch 1: now 1 and 3 are referenced.
	c.Lookup(0, 1)
	for trial := 0; trial < 50; trial++ {
		ev := c.Insert(0, 99, false)
		if ev.Tag == 1 || ev.Tag == 3 {
			t.Fatalf("nru evicted referenced tag %d", ev.Tag)
		}
		c.Invalidate(0, 99)
		c.Insert(0, ev.Tag, false) // restore
		c.Lookup(0, 1)
		c.Lookup(0, 3)
	}
}

func TestNRUWrapsWhenAllReferenced(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	c := New("t", 1, 2, NewNRU(rng))
	c.Insert(0, 1, false)
	c.Insert(0, 2, false)
	c.Lookup(0, 1)
	c.Lookup(0, 2) // all referenced -> wrap, only 2 stays referenced
	ev := c.Insert(0, 3, false)
	if ev.Tag != 1 {
		t.Fatalf("evicted %d, want 1 after wrap", ev.Tag)
	}
}

func TestSRRIPPromotionOnHit(t *testing.T) {
	c := New("t", 1, 4, NewSRRIP())
	for i := 0; i < 4; i++ {
		c.Insert(0, Tag(i), false)
	}
	// Promote 0 and 2 to RRPV 0; fills sit at srripMax-1.
	c.Lookup(0, 0)
	c.Lookup(0, 2)
	ev := c.Insert(0, 99, false)
	if ev.Tag == 0 || ev.Tag == 2 {
		t.Fatalf("srrip evicted promoted tag %d", ev.Tag)
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A hot line with repeated hits must survive a long one-shot scan —
	// the property SRRIP exists for and LRU lacks.
	c := New("t", 1, 4, NewSRRIP())
	hot := Tag(1000)
	c.Insert(0, hot, false)
	for i := 0; i < 5; i++ {
		c.Lookup(0, hot)
	}
	survived := 0
	for i := 0; i < 40; i++ {
		c.Insert(0, Tag(i), false)
		if c.Contains(0, hot) {
			survived++
		}
		c.Lookup(0, hot) // keep it hot
	}
	if survived < 35 {
		t.Fatalf("hot line survived only %d/40 scan fills", survived)
	}
}

func TestExtendedPolicyByName(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, name := range []string{"nru", "srrip"} {
		p, err := PolicyByName(name, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("%q != %q", p.Name(), name)
		}
	}
	if _, err := PolicyByName("nru", nil); err == nil {
		t.Fatal("nru without rng accepted")
	}
	if _, err := PolicyByName("plru", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllPoliciesSatisfyBasicInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, name := range []string{"lru", "fifo", "tree-plru", "bit-plru", "random", "nru", "srrip"} {
		p, err := PolicyByName(name, rng)
		if err != nil {
			t.Fatal(err)
		}
		c := New(name, 2, 8, p)
		for i := 0; i < 200; i++ {
			set := i % 2
			tag := Tag(i % 23)
			if !c.Lookup(set, tag) {
				c.Insert(set, tag, false)
			}
			if n := c.ValidCount(); n > 16 {
				t.Fatalf("%s: %d valid lines in a 16-line cache", name, n)
			}
		}
		// Every set still under capacity and no duplicates.
		for set := 0; set < 2; set++ {
			seen := map[Tag]bool{}
			for _, l := range c.SetContents(set) {
				if !l.Valid {
					continue
				}
				if seen[l.Tag] {
					t.Fatalf("%s: duplicate tag %d", name, l.Tag)
				}
				seen[l.Tag] = true
			}
		}
	}
}
