package cache

import (
	"fmt"
	"math/rand/v2"
)

// Policy constructs per-set replacement state. Implementations must be
// deterministic given the engine's seeded random source.
type Policy interface {
	Name() string
	NewSetState(ways int) SetState
}

// SetState is the replacement bookkeeping for one set.
type SetState interface {
	// Touch records a reference to way (hit).
	Touch(way int)
	// Fill records that way was (re)filled with a new line. Policies that
	// distinguish insertion from reference (FIFO) use this; others treat it
	// as Touch.
	Fill(way int)
	// Victim returns the way to evict. All ways are valid when called.
	Victim() int
	// Invalidate clears state for way after the line is removed.
	Invalidate(way int)
	// Clone returns an independent deep copy for platform forking. Policies
	// that draw randomness (random, nru) bind the copy to rng so the fork
	// consumes its own engine's stream; deterministic policies ignore it.
	Clone(rng *rand.Rand) SetState
	// SaveWords flattens the replacement state into a word vector for
	// serialization. LoadWords restores it into a state freshly built by the
	// same policy with the same associativity; it rejects vectors whose
	// length does not match what SaveWords produces. Random sources are not
	// part of the vector — they are rebound by Clone at fork time.
	SaveWords() []uint64
	LoadWords(ws []uint64) error
}

// wordLenError reports a SaveWords/LoadWords length mismatch.
func wordLenError(policy string, got, want int) error {
	return fmt.Errorf("cache: %s state: %d words, want %d", policy, got, want)
}

// boolsToWords packs one bool per word (0/1); wordsToBools reverses it.
func boolsToWords(bs []bool) []uint64 {
	ws := make([]uint64, len(bs))
	for i, b := range bs {
		if b {
			ws[i] = 1
		}
	}
	return ws
}

func wordsToBools(dst []bool, ws []uint64) {
	for i, w := range ws {
		dst[i] = w != 0
	}
}

// ---------------------------------------------------------------------------
// True LRU

type lruPolicy struct{}

// NewLRU returns a true least-recently-used policy.
func NewLRU() Policy { return lruPolicy{} }

func (lruPolicy) Name() string { return "lru" }
func (lruPolicy) NewSetState(ways int) SetState {
	return &lruState{stamp: make([]uint64, ways)}
}

type lruState struct {
	stamp []uint64
	tick  uint64
}

func (s *lruState) Touch(way int) { s.tick++; s.stamp[way] = s.tick }
func (s *lruState) Fill(way int)  { s.Touch(way) }
func (s *lruState) Victim() int {
	best, bestStamp := 0, s.stamp[0]
	for w := 1; w < len(s.stamp); w++ {
		if s.stamp[w] < bestStamp {
			best, bestStamp = w, s.stamp[w]
		}
	}
	return best
}
func (s *lruState) Invalidate(way int) { s.stamp[way] = 0 }
func (s *lruState) Clone(*rand.Rand) SetState {
	c := &lruState{stamp: make([]uint64, len(s.stamp)), tick: s.tick}
	copy(c.stamp, s.stamp)
	return c
}
func (s *lruState) SaveWords() []uint64 {
	return append([]uint64{s.tick}, s.stamp...)
}
func (s *lruState) LoadWords(ws []uint64) error {
	if len(ws) != 1+len(s.stamp) {
		return wordLenError("lru", len(ws), 1+len(s.stamp))
	}
	s.tick = ws[0]
	copy(s.stamp, ws[1:])
	return nil
}

// ---------------------------------------------------------------------------
// FIFO

type fifoPolicy struct{}

// NewFIFO returns a first-in-first-out policy (insertion order, references
// do not refresh).
func NewFIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return "fifo" }
func (fifoPolicy) NewSetState(ways int) SetState {
	return &fifoState{stamp: make([]uint64, ways)}
}

type fifoState struct {
	stamp []uint64
	tick  uint64
}

func (s *fifoState) Touch(int)    {}
func (s *fifoState) Fill(way int) { s.tick++; s.stamp[way] = s.tick }
func (s *fifoState) Victim() int {
	best, bestStamp := 0, s.stamp[0]
	for w := 1; w < len(s.stamp); w++ {
		if s.stamp[w] < bestStamp {
			best, bestStamp = w, s.stamp[w]
		}
	}
	return best
}
func (s *fifoState) Invalidate(way int) { s.stamp[way] = 0 }
func (s *fifoState) Clone(*rand.Rand) SetState {
	c := &fifoState{stamp: make([]uint64, len(s.stamp)), tick: s.tick}
	copy(c.stamp, s.stamp)
	return c
}
func (s *fifoState) SaveWords() []uint64 {
	return append([]uint64{s.tick}, s.stamp...)
}
func (s *fifoState) LoadWords(ws []uint64) error {
	if len(ws) != 1+len(s.stamp) {
		return wordLenError("fifo", len(ws), 1+len(s.stamp))
	}
	s.tick = ws[0]
	copy(s.stamp, ws[1:])
	return nil
}

// ---------------------------------------------------------------------------
// Tree-PLRU ("approximate LRU", the default assumption for the MEE cache —
// Section 5.3 of the paper). Requires power-of-two associativity.

type treePLRUPolicy struct{}

// NewTreePLRU returns a binary-tree pseudo-LRU policy, the classic
// "approximate LRU" found in real hardware caches. The paper's two-phase
// (forward+backward) eviction in Algorithm 2 exists precisely because a
// single in-order pass over an eviction set does not reliably displace all
// resident lines under this policy.
func NewTreePLRU() Policy { return treePLRUPolicy{} }

func (treePLRUPolicy) Name() string { return "tree-plru" }
func (treePLRUPolicy) NewSetState(ways int) SetState {
	if ways&(ways-1) != 0 {
		panic(fmt.Sprintf("tree-plru requires power-of-two ways, got %d", ways))
	}
	return &treePLRUState{ways: ways, bits: make([]bool, ways-1)}
}

// treePLRUState stores the internal nodes of a complete binary tree over the
// ways. bits[i] == false means "left subtree is older" (victim path goes
// left); Touch flips the bits along the accessed way's path to point away
// from it.
type treePLRUState struct {
	ways int
	bits []bool
}

func (s *treePLRUState) Touch(way int) {
	node := 0
	// Walk from the root; at each level decide left/right from the way's
	// bits (MSB first) and point the node away from the accessed half.
	for span := s.ways / 2; span >= 1; span /= 2 {
		right := way&span != 0
		s.bits[node] = !right // point at the other half next time
		if right {
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
		if span == 1 {
			break
		}
	}
}

func (s *treePLRUState) Fill(way int) { s.Touch(way) }

func (s *treePLRUState) Victim() int {
	node, way := 0, 0
	for span := s.ways / 2; span >= 1; span /= 2 {
		if s.bits[node] {
			way |= span
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
		if span == 1 {
			break
		}
	}
	return way
}

func (s *treePLRUState) Invalidate(int) {}
func (s *treePLRUState) Clone(*rand.Rand) SetState {
	c := &treePLRUState{ways: s.ways, bits: make([]bool, len(s.bits))}
	copy(c.bits, s.bits)
	return c
}
func (s *treePLRUState) SaveWords() []uint64 { return boolsToWords(s.bits) }
func (s *treePLRUState) LoadWords(ws []uint64) error {
	if len(ws) != len(s.bits) {
		return wordLenError("tree-plru", len(ws), len(s.bits))
	}
	wordsToBools(s.bits, ws)
	return nil
}

// ---------------------------------------------------------------------------
// Bit-PLRU (MRU bits)

type bitPLRUPolicy struct{}

// NewBitPLRU returns an MRU-bit pseudo-LRU policy: each reference sets the
// way's MRU bit; when all bits would be set, the others are cleared. The
// victim is the lowest way with a clear bit.
func NewBitPLRU() Policy { return bitPLRUPolicy{} }

func (bitPLRUPolicy) Name() string { return "bit-plru" }
func (bitPLRUPolicy) NewSetState(ways int) SetState {
	return &bitPLRUState{mru: make([]bool, ways)}
}

type bitPLRUState struct{ mru []bool }

func (s *bitPLRUState) Touch(way int) {
	s.mru[way] = true
	for _, b := range s.mru {
		if !b {
			return
		}
	}
	for w := range s.mru {
		s.mru[w] = false
	}
	s.mru[way] = true
}
func (s *bitPLRUState) Fill(way int) { s.Touch(way) }
func (s *bitPLRUState) Victim() int {
	for w, b := range s.mru {
		if !b {
			return w
		}
	}
	return 0
}
func (s *bitPLRUState) Invalidate(way int) { s.mru[way] = false }
func (s *bitPLRUState) Clone(*rand.Rand) SetState {
	c := &bitPLRUState{mru: make([]bool, len(s.mru))}
	copy(c.mru, s.mru)
	return c
}
func (s *bitPLRUState) SaveWords() []uint64 { return boolsToWords(s.mru) }
func (s *bitPLRUState) LoadWords(ws []uint64) error {
	if len(ws) != len(s.mru) {
		return wordLenError("bit-plru", len(ws), len(s.mru))
	}
	wordsToBools(s.mru, ws)
	return nil
}

// ---------------------------------------------------------------------------
// Random

type randomPolicy struct{ rng *rand.Rand }

// NewRandom returns a random-replacement policy drawing from rng (pass the
// engine's seeded source for reproducibility). Random replacement is one of
// the mitigation candidates evaluated in the extension experiments.
func NewRandom(rng *rand.Rand) Policy { return &randomPolicy{rng: rng} }

func (*randomPolicy) Name() string { return "random" }
func (p *randomPolicy) NewSetState(ways int) SetState {
	return &randomState{ways: ways, rng: p.rng}
}

type randomState struct {
	ways int
	rng  *rand.Rand
}

func (s *randomState) Touch(int)      {}
func (s *randomState) Fill(int)       {}
func (s *randomState) Victim() int    { return s.rng.IntN(s.ways) }
func (s *randomState) Invalidate(int) {}
func (s *randomState) Clone(rng *rand.Rand) SetState {
	if rng == nil {
		rng = s.rng // no rebind requested: keep drawing from the original
	}
	return &randomState{ways: s.ways, rng: rng}
}
func (s *randomState) SaveWords() []uint64 { return nil }
func (s *randomState) LoadWords(ws []uint64) error {
	if len(ws) != 0 {
		return wordLenError("random", len(ws), 0)
	}
	return nil
}

// PolicyByName constructs a policy from its name; random and nru need rng
// (may be nil for the others). Recognized: lru, fifo, tree-plru, bit-plru,
// random, nru, srrip.
func PolicyByName(name string, rng *rand.Rand) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "tree-plru":
		return NewTreePLRU(), nil
	case "bit-plru":
		return NewBitPLRU(), nil
	case "random":
		if rng == nil {
			return nil, fmt.Errorf("cache: random policy requires a random source")
		}
		return NewRandom(rng), nil
	default:
		return extendedPolicyByName(name, rng)
	}
}
