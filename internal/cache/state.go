package cache

import (
	"fmt"
	"math/rand/v2"
)

// State is the serializable image of a Cache: geometry, policy name, line
// directory, per-set replacement words, statistics, and per-set eviction
// counters. It contains no pointers into the live cache and no random
// sources; FromState rebuilds an equivalent frozen cache from it.
type State struct {
	Name       string
	Sets, Ways int
	PolicyName string
	Lines      []Line     // dense [set*ways+way]
	SetWords   [][]uint64 // per-set SaveWords vectors
	Stats      Stats
	EvBySet    []uint64
}

// ExportState captures the cache as a State. The image is a deep copy; the
// cache may keep running afterwards.
func (c *Cache) ExportState() *State {
	st := &State{
		Name:       c.name,
		Sets:       c.sets,
		Ways:       c.ways,
		PolicyName: c.policy.Name(),
		Lines:      make([]Line, c.sets*c.ways),
		SetWords:   make([][]uint64, c.sets),
		Stats:      c.stats,
		EvBySet:    make([]uint64, c.sets),
	}
	for s := range c.lines {
		copy(st.Lines[s*c.ways:(s+1)*c.ways], c.lines[s])
		st.SetWords[s] = c.state[s].SaveWords()
	}
	copy(st.EvBySet, c.evBySet)
	return st
}

// FromState rebuilds a cache from a State image. rng rebinds randomized
// policies (random, nru); it may be nil, in which case those policies get a
// private throwaway source — safe for frozen copies that never run, because
// Clone(rng) at fork time rebinds them to the fork's engine stream before
// any victim is drawn. All geometry and vector lengths are validated, so a
// corrupted image returns an error rather than panicking downstream.
func FromState(st *State, rng *rand.Rand) (*Cache, error) {
	if st.Sets <= 0 || st.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry %dx%d", st.Name, st.Sets, st.Ways)
	}
	if len(st.Lines) != st.Sets*st.Ways {
		return nil, fmt.Errorf("cache %s: %d lines, want %d", st.Name, len(st.Lines), st.Sets*st.Ways)
	}
	if len(st.SetWords) != st.Sets {
		return nil, fmt.Errorf("cache %s: %d set-word vectors, want %d", st.Name, len(st.SetWords), st.Sets)
	}
	if len(st.EvBySet) != st.Sets {
		return nil, fmt.Errorf("cache %s: %d eviction counters, want %d", st.Name, len(st.EvBySet), st.Sets)
	}
	if st.PolicyName == "tree-plru" && st.Ways&(st.Ways-1) != 0 {
		return nil, fmt.Errorf("cache %s: tree-plru requires power-of-two ways, got %d", st.Name, st.Ways)
	}
	policy, err := PolicyByName(st.PolicyName, rng)
	if err != nil {
		if rng != nil {
			return nil, fmt.Errorf("cache %s: %w", st.Name, err)
		}
		policy, err = PolicyByName(st.PolicyName, rand.New(rand.NewPCG(0, 0)))
		if err != nil {
			return nil, fmt.Errorf("cache %s: %w", st.Name, err)
		}
	}
	c := &Cache{
		name:    st.Name,
		sets:    st.Sets,
		ways:    st.Ways,
		lines:   make([][]Line, st.Sets),
		state:   make([]SetState, st.Sets),
		policy:  policy,
		stats:   st.Stats,
		evBySet: make([]uint64, st.Sets),
	}
	flat := make([]Line, st.Sets*st.Ways)
	copy(flat, st.Lines)
	for s := range c.lines {
		c.lines[s] = flat[s*st.Ways : (s+1)*st.Ways : (s+1)*st.Ways]
		ss := policy.NewSetState(st.Ways)
		if err := ss.LoadWords(st.SetWords[s]); err != nil {
			return nil, fmt.Errorf("cache %s set %d: %w", st.Name, s, err)
		}
		c.state[s] = ss
	}
	copy(c.evBySet, st.EvBySet)
	return c, nil
}
