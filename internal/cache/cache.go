// Package cache provides a generic set-associative cache model with
// pluggable replacement policies. It is used for the CPU cache hierarchy
// (L1/L2/LLC) and for the MEE cache; callers own the address-to-set mapping,
// so the MEE's odd/even set split for versions and PD_Tag lines lives in the
// mee package, not here.
package cache

import (
	"fmt"
	"math/rand/v2"

	"meecc/internal/obs"
)

// Tag identifies a cache line. By convention it is the full line address
// (physical address >> log2(lineSize)), which keeps tags unique across sets
// and makes test assertions straightforward.
type Tag uint64

// Line is one cache line's bookkeeping. The data payload lives in the
// backing store (DRAM model); caches here track presence and dirtiness only,
// which is all the timing channel needs.
type Line struct {
	Tag   Tag
	Valid bool
	Dirty bool
}

// Stats accumulates cache event counts.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Evictions     uint64
	WritebacksOut uint64 // dirty evictions + dirty invalidations
	Invalidations uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use; the
// simulation engine serializes all actors, so no locking is needed.
type Cache struct {
	name    string
	sets    int
	ways    int
	lines   [][]Line
	state   []SetState
	policy  Policy
	stats   Stats
	evBySet []uint64
}

// New builds a cache with the given geometry and replacement policy.
// sets and ways must be positive; tree-PLRU additionally requires ways to be
// a power of two (enforced by the policy).
func New(name string, sets, ways int, policy Policy) *Cache {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache %s: invalid geometry %dx%d", name, sets, ways))
	}
	c := &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		lines:   make([][]Line, sets),
		state:   make([]SetState, sets),
		policy:  policy,
		evBySet: make([]uint64, sets),
	}
	for s := range c.lines {
		c.lines[s] = make([]Line, ways)
		c.state[s] = policy.NewSetState(ways)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Observe registers the cache's counters with an observer as deferred
// samples under "cache.<prefix>.": nothing is added to the lookup/insert hot
// path — the existing Stats fields are simply read at snapshot time. The
// eviction-by-set distribution is summarized as the hottest set and its
// eviction count, the signal the Prime+Probe channel rides on. Safe with a
// nil observer.
func (c *Cache) Observe(o *obs.Observer, prefix string) {
	if o == nil {
		return
	}
	p := "cache." + prefix + "."
	o.Sample(p+"hits", obs.Semantic, func() uint64 { return c.stats.Hits })
	o.Sample(p+"misses", obs.Semantic, func() uint64 { return c.stats.Misses })
	o.Sample(p+"fills", obs.Semantic, func() uint64 { return c.stats.Fills })
	o.Sample(p+"evictions", obs.Semantic, func() uint64 { return c.stats.Evictions })
	o.Sample(p+"writebacks_out", obs.Semantic, func() uint64 { return c.stats.WritebacksOut })
	o.Sample(p+"invalidations", obs.Semantic, func() uint64 { return c.stats.Invalidations })
	o.Sample(p+"hot_set", obs.Semantic, func() uint64 {
		set, _ := c.MaxSetEvictions()
		return uint64(set)
	})
	o.Sample(p+"hot_set_evictions", obs.Semantic, func() uint64 {
		_, n := c.MaxSetEvictions()
		return n
	})
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics counters, including per-set evictions.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	for i := range c.evBySet {
		c.evBySet[i] = 0
	}
}

// EvictionsBySet returns a copy of the per-set conflict-eviction counters —
// the signal hardware-performance-counter detectors of cache attacks watch
// for (a covert channel hammers one set; benign traffic spreads out).
func (c *Cache) EvictionsBySet() []uint64 {
	return c.EvictionsBySetInto(nil)
}

// EvictionsBySetInto copies the per-set eviction counters into dst, growing
// it only if its capacity is insufficient, and returns the filled slice.
// Periodic samplers (e.g. the detect monitor) pass their previous buffer to
// keep the polling loop allocation-free.
func (c *Cache) EvictionsBySetInto(dst []uint64) []uint64 {
	if cap(dst) < len(c.evBySet) {
		dst = make([]uint64, len(c.evBySet))
	}
	dst = dst[:len(c.evBySet)]
	copy(dst, c.evBySet)
	return dst
}

// MaxSetEvictions returns the hottest set's eviction count and its index.
func (c *Cache) MaxSetEvictions() (set int, count uint64) {
	for s, n := range c.evBySet {
		if n > count {
			set, count = s, n
		}
	}
	return set, count
}

// Lookup probes set for tag. On a hit it updates replacement state and
// returns true. On a miss it returns false and does not modify the cache.
func (c *Cache) Lookup(set int, tag Tag) bool {
	_, hit := c.LookupWay(set, tag)
	return hit
}

// LookupWay is Lookup returning the resident way on a hit, so callers that
// keep per-line side data in dense [set][way] arrays (the MEE node buffers,
// the cpucache plaintext buffers) can index it without a map. way is -1 on a
// miss.
func (c *Cache) LookupWay(set int, tag Tag) (way int, hit bool) {
	ws := c.lines[set]
	for w := range ws {
		if ws[w].Valid && ws[w].Tag == tag {
			c.state[set].Touch(w)
			c.stats.Hits++
			return w, true
		}
	}
	c.stats.Misses++
	return -1, false
}

// Contains probes set for tag without updating replacement state or stats.
func (c *Cache) Contains(set int, tag Tag) bool {
	_, ok := c.WayOf(set, tag)
	return ok
}

// WayOf returns the way holding tag without updating replacement state or
// stats (Contains with the way exposed). way is -1 when absent.
func (c *Cache) WayOf(set int, tag Tag) (way int, ok bool) {
	ws := c.lines[set]
	for w := range ws {
		if ws[w].Valid && ws[w].Tag == tag {
			return w, true
		}
	}
	return -1, false
}

// MarkDirty sets the dirty bit of a resident line. It reports whether the
// line was present.
func (c *Cache) MarkDirty(set int, tag Tag) bool {
	ws := c.lines[set]
	for w := range ws {
		if ws[w].Valid && ws[w].Tag == tag {
			ws[w].Dirty = true
			return true
		}
	}
	return false
}

// Insert fills tag into set, evicting if necessary. It returns the evicted
// line (Valid=false if an empty way was used). The inserted line's dirty bit
// is set from dirty. Inserting a tag that is already resident just touches
// it (and ORs in the dirty bit).
func (c *Cache) Insert(set int, tag Tag, dirty bool) (evicted Line) {
	_, evicted = c.InsertWay(set, tag, dirty)
	return evicted
}

// InsertWay is Insert returning the way the line landed in, so callers with
// dense [set][way] side data can place the line's payload without a map.
func (c *Cache) InsertWay(set int, tag Tag, dirty bool) (way int, evicted Line) {
	ws := c.lines[set]
	// Already present: refresh.
	for w := range ws {
		if ws[w].Valid && ws[w].Tag == tag {
			ws[w].Dirty = ws[w].Dirty || dirty
			c.state[set].Touch(w)
			return w, Line{}
		}
	}
	// Empty way available.
	for w := range ws {
		if !ws[w].Valid {
			ws[w] = Line{Tag: tag, Valid: true, Dirty: dirty}
			c.state[set].Fill(w)
			c.stats.Fills++
			return w, Line{}
		}
	}
	// Evict a victim.
	w := c.state[set].Victim()
	if w < 0 || w >= c.ways {
		panic(fmt.Sprintf("cache %s: policy %s returned victim way %d of %d", c.name, c.policy.Name(), w, c.ways))
	}
	evicted = ws[w]
	c.stats.Evictions++
	c.evBySet[set]++
	if evicted.Dirty {
		c.stats.WritebacksOut++
	}
	ws[w] = Line{Tag: tag, Valid: true, Dirty: dirty}
	c.state[set].Fill(w)
	c.stats.Fills++
	return w, evicted
}

// Invalidate removes tag from set (clflush semantics). It returns the line
// that was removed; Valid=false means the tag was not resident. Dirty
// removals count as writebacks.
func (c *Cache) Invalidate(set int, tag Tag) Line {
	_, l := c.InvalidateWay(set, tag)
	return l
}

// InvalidateWay is Invalidate returning the way the line was removed from
// (-1 when the tag was not resident).
func (c *Cache) InvalidateWay(set int, tag Tag) (way int, removed Line) {
	ws := c.lines[set]
	for w := range ws {
		if ws[w].Valid && ws[w].Tag == tag {
			l := ws[w]
			ws[w] = Line{}
			c.state[set].Invalidate(w)
			c.stats.Invalidations++
			if l.Dirty {
				c.stats.WritebacksOut++
			}
			return w, l
		}
	}
	return -1, Line{}
}

// FlushAll invalidates every line, returning the dirty lines that would be
// written back.
func (c *Cache) FlushAll() []Line {
	var dirty []Line
	for s := range c.lines {
		for w := range c.lines[s] {
			l := c.lines[s][w]
			if l.Valid {
				c.lines[s][w] = Line{}
				c.state[s].Invalidate(w)
				c.stats.Invalidations++
				if l.Dirty {
					dirty = append(dirty, l)
					c.stats.WritebacksOut++
				}
			}
		}
	}
	return dirty
}

// Clone returns an independent deep copy of the cache — lines, replacement
// state, statistics, and per-set eviction counters — for platform forking.
// rng rebinds randomized policies (random, nru) to the fork's engine stream;
// it may be nil for deterministic policies (the clone then shares the
// original's random source, which forking never does).
func (c *Cache) Clone(rng *rand.Rand) *Cache {
	policy := c.policy
	if rng != nil {
		// Rebind rng-bearing policies so future set states draw from the
		// fork's stream. PolicyByName cannot fail here: c.policy.Name() is a
		// registered name and rng is non-nil.
		p, err := PolicyByName(c.policy.Name(), rng)
		if err != nil {
			panic(fmt.Sprintf("cache %s: cloning policy: %v", c.name, err))
		}
		policy = p
	}
	n := &Cache{
		name:    c.name,
		sets:    c.sets,
		ways:    c.ways,
		lines:   make([][]Line, c.sets),
		state:   make([]SetState, c.sets),
		policy:  policy,
		stats:   c.stats,
		evBySet: make([]uint64, c.sets),
	}
	flat := make([]Line, c.sets*c.ways) // one backing array keeps the copy dense
	for s := range c.lines {
		n.lines[s] = flat[s*c.ways : (s+1)*c.ways : (s+1)*c.ways]
		copy(n.lines[s], c.lines[s])
		n.state[s] = c.state[s].Clone(rng)
	}
	copy(n.evBySet, c.evBySet)
	return n
}

// SetContents returns a copy of the lines in a set, for tests and tools.
func (c *Cache) SetContents(set int) []Line {
	out := make([]Line, c.ways)
	copy(out, c.lines[set])
	return out
}

// ValidCount returns the number of valid lines in the whole cache.
func (c *Cache) ValidCount() int {
	n := 0
	for s := range c.lines {
		for _, l := range c.lines[s] {
			if l.Valid {
				n++
			}
		}
	}
	return n
}
