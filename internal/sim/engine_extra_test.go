package sim

import "testing"

func TestSpawnAtDelaysFirstOp(t *testing.T) {
	e := NewEngine(1)
	var first Cycles = -1
	e.SpawnAt("late", 500, func(p *Proc) {
		first = p.Now()
	})
	e.Run(-1)
	e.Close()
	if first != 500 {
		t.Fatalf("first op at %d, want 500", first)
	}
}

func TestSpawnAtNegativeClampsToZero(t *testing.T) {
	e := NewEngine(1)
	var first Cycles = -1
	e.SpawnAt("neg", -10, func(p *Proc) { first = p.Now() })
	e.Run(-1)
	e.Close()
	if first != 0 {
		t.Fatalf("first op at %d, want 0", first)
	}
}

func TestActorsListingAndLive(t *testing.T) {
	e := NewEngine(2)
	e.Spawn("b-actor", func(p *Proc) { p.Advance(5) })
	e.Spawn("a-actor", func(p *Proc) {
		for {
			p.Advance(5)
		}
	})
	names := e.Actors()
	if len(names) != 2 || names[0] != "a-actor" || names[1] != "b-actor" {
		t.Fatalf("actors %v", names)
	}
	e.Run(100)
	if e.Live() != 1 {
		t.Fatalf("live %d, want 1 (only the spinner)", e.Live())
	}
	e.Close()
}

func TestCloseTwiceIsSafe(t *testing.T) {
	e := NewEngine(3)
	e.Spawn("s", func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	e.Run(10)
	e.Close()
	e.Close()
}

func TestSpawnAfterClosePanics(t *testing.T) {
	e := NewEngine(4)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("spawn after close accepted")
		}
	}()
	e.Spawn("late", func(p *Proc) {})
}

func TestRunAfterClosePanics(t *testing.T) {
	e := NewEngine(5)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("run after close accepted")
		}
	}()
	e.Run(-1)
}

func TestAdvanceMinimumOneCycle(t *testing.T) {
	e := NewEngine(6)
	var times []Cycles
	e.Spawn("z", func(p *Proc) {
		for i := 0; i < 3; i++ {
			times = append(times, p.Now())
			p.Advance(0) // must still move time forward
		}
	})
	e.Run(-1)
	e.Close()
	if times[1] != 1 || times[2] != 2 {
		t.Fatalf("zero-advance did not enforce minimum: %v", times)
	}
}

func TestActorAccessors(t *testing.T) {
	e := NewEngine(7)
	a := e.Spawn("worker", func(p *Proc) {
		if p.Name() != "worker" {
			t.Errorf("proc name %q", p.Name())
		}
		p.Advance(42)
	})
	if a.Name() != "worker" {
		t.Fatalf("actor name %q", a.Name())
	}
	e.Run(-1)
	if !a.Done() {
		t.Fatal("actor not done")
	}
	if a.Clock() != 42 {
		t.Fatalf("final clock %d", a.Clock())
	}
	e.Close()
}

func TestSpawnDuringPausedRun(t *testing.T) {
	e := NewEngine(8)
	count := 0
	e.Spawn("first", func(p *Proc) {
		for i := 0; i < 4; i++ {
			count++
			p.Advance(100)
		}
	})
	e.Run(150)
	// A new actor spawned mid-simulation starts at cycle 0 but the engine
	// keeps global order: it catches up before "first" continues.
	var secondFirstOp Cycles = -1
	e.Spawn("second", func(p *Proc) {
		secondFirstOp = p.Now()
		p.Advance(1)
	})
	e.Run(-1)
	e.Close()
	if secondFirstOp != 0 {
		t.Fatalf("late-spawned actor first op at %d", secondFirstOp)
	}
	if count != 4 {
		t.Fatalf("first actor ran %d iterations", count)
	}
}
