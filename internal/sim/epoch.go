package sim

// Epoch execution: a compiled, goroutine-free fast path for phases whose
// actor set is fixed and scripted (the channel's transmission window). Each
// EpochLane is a hand-compiled state machine standing in for one actor body;
// the plan steps lanes inline, one operation at a time, in exactly the
// global (clock, spawn id) order the engine's schedulers would have chosen —
// schedBefore is the shared ordering rule — so every shared-state mutation
// and every rng draw lands at the same point in the stream. No goroutines,
// no channels, no heap: a lane count this small (trojan, spy, noise, stats)
// makes a linear scan per step cheaper than any structure.
//
// The plan deliberately has no spawn, no fault hooks, and no observer: any
// run that needs those is ineligible for compilation and stays on the
// general engine (the caller gates this), which keeps the engine's Semantic
// op counters exact — an epoch run is only entered when no observer exists
// to count.

// EpochLane is one pre-compiled execution lane. Clock is the start cycle of
// the lane's next operation; ID is its spawn id under the general engine
// (ties on equal clocks break by smaller ID, exactly like actor spawn
// order); Step executes exactly one operation — advancing Clock — and
// reports whether the lane still has operations left.
type EpochLane interface {
	Clock() Cycles
	ID() int
	Step() bool
}

// RunEpoch steps lanes in global (clock, id) order until every lane is done
// or the next-due lane's operation would start past limit (limit < 0 means
// no limit), mirroring Engine.Run's truncation rule: an operation executes
// iff its start clock is <= limit. It returns the clock after the last
// executed operation, matching what Engine.Run reports.
func RunEpoch(lanes []EpochLane, limit Cycles) Cycles {
	live := make([]EpochLane, len(lanes))
	copy(live, lanes)
	var now Cycles
	for len(live) > 0 {
		best := 0
		for i := 1; i < len(live); i++ {
			if schedBefore(live[i].Clock(), live[i].ID(), live[best].Clock(), live[best].ID()) {
				best = i
			}
		}
		cur := live[best]
		if limit >= 0 && cur.Clock() > limit {
			break
		}
		more := cur.Step()
		now = cur.Clock()
		if !more {
			live = append(live[:best], live[best+1:]...)
		}
	}
	return now
}
