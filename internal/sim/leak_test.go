package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestCloseReclaimsActorGoroutines guards against goroutine leaks in the
// engine shutdown path: every parked actor goroutine must observe the kill
// sentinel and exit, even when actors are mid-simulation with pending work.
// Experiment batches boot thousands of engines per process, so a single
// leaked goroutine per engine would accumulate into real memory pressure.
func TestCloseReclaimsActorGoroutines(t *testing.T) {
	countGoroutines := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	base := countGoroutines()
	for i := 0; i < 50; i++ {
		e := NewEngine(uint64(i))
		for j := 0; j < 8; j++ {
			e.Spawn(fmt.Sprintf("spinner-%d", j), func(p *Proc) {
				for { // never returns: only Close can reclaim it
					p.Advance(10)
				}
			})
		}
		e.Run(1000) // leave all actors parked mid-run
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// A small cushion absorbs unrelated runtime goroutines (GC workers,
		// test timers) that may come and go.
		if n := countGoroutines(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d at start, %d now", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
