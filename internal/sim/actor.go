package sim

import (
	"math/rand/v2"
	"runtime/debug"

	"meecc/internal/obs"
)

// Actor is one simulated thread of execution with its own cycle clock.
type Actor struct {
	name       string
	id         int
	clock      Cycles
	done       bool
	panicVal   any
	panicStack []byte
	resume     chan struct{}
	engine     *Engine
	proc       *Proc
	heapIdx    int // position in the engine's scheduling heap; -1 if detached
	track      obs.TrackID

	// Run-ahead state, written by whichever goroutine resumes the actor
	// (the engine loop or a peer handing off directly) before signalling
	// resume, and consumed by Proc.yield (the resume channel orders the
	// accesses): the actor keeps executing operations locally while its
	// next operation is still scheduled before (horizonClock, horizonID)
	// and within runLimit. lastStart is the start clock of the last
	// committed operation, which Run reports; batchStart is the clock at
	// resume, for the tracer's batch slices.
	horizonClock Cycles
	horizonID    int
	runLimit     Cycles
	lastStart    Cycles
	batchStart   Cycles
}

// Name returns the actor's diagnostic name.
func (a *Actor) Name() string { return a.name }

// Clock returns the actor's local cycle clock.
func (a *Actor) Clock() Cycles { return a.clock }

// Done reports whether the actor's body has returned (or been killed).
func (a *Actor) Done() bool { return a.done }

// run is the goroutine wrapper around the actor body. The goroutine blocks
// until it is resumed for the first time, executes the body, and reports
// completion — handing control straight to the next-due actor when it can,
// waking the engine loop otherwise. Panics other than the engine's kill
// sentinel are captured — value and actor-side stack — and re-raised on the
// engine side as a *PanicError.
func (a *Actor) run(body func(*Proc)) {
	defer func() {
		e := a.engine
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				a.panicVal = r
				a.panicStack = debug.Stack()
			}
		}
		a.done = true
		if !e.killed {
			e.endBatch(a)
			// A panicking actor must wake the engine loop, which owns
			// re-raising the panic as a *PanicError.
			if a.panicVal == nil && e.handoff(a) {
				return
			}
		}
		e.parkedCh <- a
	}()
	<-a.resume
	if a.engine.killed {
		panic(killSentinel{})
	}
	body(a.proc)
}

// step resumes the actor for one batch of operations and waits for control
// to come back. Used only by Close, with the kill flag already set, so the
// actor unwinds immediately and no direct handoff can occur — the parked
// actor is always a itself.
func (a *Actor) step() {
	a.resume <- struct{}{}
	<-a.engine.parkedCh
}

// Proc is the handle an actor body uses to interact with simulated time.
// All methods must be called only from within that actor's body.
type Proc struct {
	actor *Actor
}

// Now returns the actor's local clock.
func (p *Proc) Now() Cycles { return p.actor.clock }

// Name returns the owning actor's name.
func (p *Proc) Name() string { return p.actor.name }

// Rand returns the engine-wide seeded random source.
func (p *Proc) Rand() *rand.Rand { return p.actor.engine.rng }

// Advance consumes n cycles of simulated time (minimum 1, so that a loop of
// zero-cost operations cannot stall the global clock) and yields to the
// engine. All shared-state mutation the actor performed since its previous
// yield is considered to have happened atomically at the pre-Advance clock.
func (p *Proc) Advance(n Cycles) {
	if n < 1 {
		n = 1
	}
	e := p.actor.engine
	e.cOps.Inc()
	e.cBusy.Add(uint64(n))
	p.actor.clock += n
	p.yield()
}

// SleepUntil advances the actor's clock to t (no-op plus a 1-cycle yield if
// t is in the past) — the busy-loop-until-deadline primitive from the
// paper's Algorithm 2.
func (p *Proc) SleepUntil(t Cycles) {
	d := t - p.actor.clock
	p.Advance(d)
}

// yield ends the current operation. If the actor's next operation is still
// scheduled before every other live actor (the run-ahead horizon) and within
// the current Run limit, the actor continues executing locally — no park, no
// channel handoff. Otherwise its batch is over: it commits the batch
// bookkeeping, hands control straight to the next-due actor when the chain
// may continue (waking the engine loop only at a Run boundary), and blocks
// until resumed. If the engine is tearing down, the actor unwinds via the
// kill sentinel.
func (p *Proc) yield() {
	a := p.actor
	e := a.engine
	if !e.killed {
		c := a.clock
		if (a.runLimit < 0 || c <= a.runLimit) &&
			schedBefore(c, a.id, a.horizonClock, a.horizonID) {
			a.lastStart = c
			return
		}
		e.endBatch(a)
		if !e.handoff(a) {
			e.parkedCh <- a
		}
	} else {
		e.parkedCh <- a
	}
	<-a.resume
	if e.killed {
		panic(killSentinel{})
	}
}

// Resource models a single-ported shared hardware unit using a busy-until
// clock. Acquiring it at time t for dur cycles returns how long the caller
// must stall before service begins; the resource is then reserved until
// service completes. This is how cross-core contention on the MEE and the
// memory controller arises in the simulation.
type Resource struct {
	busyUntil Cycles
}

// Acquire reserves the resource for dur cycles starting no earlier than t
// and returns the stall the caller experiences before service starts.
func (r *Resource) Acquire(t, dur Cycles) (stall Cycles) {
	start := t
	if r.busyUntil > start {
		stall = r.busyUntil - start
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	return stall
}

// BusyUntil returns the cycle at which the resource becomes free.
func (r *Resource) BusyUntil() Cycles { return r.busyUntil }

// ResumeResource reconstructs a Resource from a serialized busy-until clock,
// the inverse of BusyUntil for snapshot codecs.
func ResumeResource(busyUntil Cycles) Resource { return Resource{busyUntil: busyUntil} }
