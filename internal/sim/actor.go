package sim

import (
	"math/rand/v2"
	"runtime/debug"

	"meecc/internal/obs"
)

// Actor is one simulated thread of execution with its own cycle clock.
type Actor struct {
	name       string
	id         int
	clock      Cycles
	done       bool
	panicVal   any
	panicStack []byte
	resume     chan struct{}
	parked     chan struct{}
	engine     *Engine
	proc       *Proc
	heapIdx    int // position in the engine's scheduling heap; -1 if detached
	track      obs.TrackID

	// Run-ahead state, written by the engine before each resume and
	// consumed by Proc.yield (the resume channel orders the accesses):
	// the actor keeps executing operations locally while its next
	// operation is still scheduled before (horizonClock, horizonID) and
	// within runLimit. lastStart is the start clock of the last committed
	// operation, which Run reports.
	horizonClock Cycles
	horizonID    int
	runLimit     Cycles
	lastStart    Cycles
}

// Name returns the actor's diagnostic name.
func (a *Actor) Name() string { return a.name }

// Clock returns the actor's local cycle clock.
func (a *Actor) Clock() Cycles { return a.clock }

// Done reports whether the actor's body has returned (or been killed).
func (a *Actor) Done() bool { return a.done }

// run is the goroutine wrapper around the actor body. The goroutine blocks
// until the engine resumes it for the first time, executes the body, and
// reports completion. Panics other than the engine's kill sentinel are
// captured — value and actor-side stack — and re-raised on the engine side
// as a *PanicError.
func (a *Actor) run(body func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); !isKill {
				a.panicVal = r
				a.panicStack = debug.Stack()
			}
		}
		a.done = true
		a.parked <- struct{}{}
	}()
	<-a.resume
	if a.engine.killed {
		panic(killSentinel{})
	}
	body(a.proc)
}

// step resumes the actor for one batch of operations (one yield-to-park
// stretch — a single operation under the reference scheduler, up to the
// run-ahead horizon otherwise) and waits for it to park again. Called only
// by the engine.
func (a *Actor) step() {
	a.resume <- struct{}{}
	<-a.parked
}

// Proc is the handle an actor body uses to interact with simulated time.
// All methods must be called only from within that actor's body.
type Proc struct {
	actor *Actor
}

// Now returns the actor's local clock.
func (p *Proc) Now() Cycles { return p.actor.clock }

// Name returns the owning actor's name.
func (p *Proc) Name() string { return p.actor.name }

// Rand returns the engine-wide seeded random source.
func (p *Proc) Rand() *rand.Rand { return p.actor.engine.rng }

// Advance consumes n cycles of simulated time (minimum 1, so that a loop of
// zero-cost operations cannot stall the global clock) and yields to the
// engine. All shared-state mutation the actor performed since its previous
// yield is considered to have happened atomically at the pre-Advance clock.
func (p *Proc) Advance(n Cycles) {
	if n < 1 {
		n = 1
	}
	e := p.actor.engine
	e.cOps.Inc()
	e.cBusy.Add(uint64(n))
	p.actor.clock += n
	p.yield()
}

// SleepUntil advances the actor's clock to t (no-op plus a 1-cycle yield if
// t is in the past) — the busy-loop-until-deadline primitive from the
// paper's Algorithm 2.
func (p *Proc) SleepUntil(t Cycles) {
	d := t - p.actor.clock
	p.Advance(d)
}

// yield ends the current operation. If the actor's next operation is still
// scheduled before every other live actor (the engine-provided run-ahead
// horizon) and within the current Run limit, the actor continues executing
// locally — no park, no channel handoff. Otherwise it parks and blocks until
// the engine resumes it. If the engine is tearing down, the actor unwinds
// via the kill sentinel.
func (p *Proc) yield() {
	a := p.actor
	if !a.engine.killed {
		c := a.clock
		if (a.runLimit < 0 || c <= a.runLimit) &&
			schedBefore(c, a.id, a.horizonClock, a.horizonID) {
			a.lastStart = c
			return
		}
	}
	a.parked <- struct{}{}
	<-a.resume
	if a.engine.killed {
		panic(killSentinel{})
	}
}

// Resource models a single-ported shared hardware unit using a busy-until
// clock. Acquiring it at time t for dur cycles returns how long the caller
// must stall before service begins; the resource is then reserved until
// service completes. This is how cross-core contention on the MEE and the
// memory controller arises in the simulation.
type Resource struct {
	busyUntil Cycles
}

// Acquire reserves the resource for dur cycles starting no earlier than t
// and returns the stall the caller experiences before service starts.
func (r *Resource) Acquire(t, dur Cycles) (stall Cycles) {
	start := t
	if r.busyUntil > start {
		stall = r.busyUntil - start
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	return stall
}

// BusyUntil returns the cycle at which the resource becomes free.
func (r *Resource) BusyUntil() Cycles { return r.busyUntil }
