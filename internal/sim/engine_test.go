package sim

import (
	"testing"
)

func TestSingleActorAdvances(t *testing.T) {
	e := NewEngine(1)
	var trace []Cycles
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 5; i++ {
			trace = append(trace, p.Now())
			p.Advance(10)
		}
	})
	end := e.Run(-1)
	if len(trace) != 5 {
		t.Fatalf("got %d iterations, want 5", len(trace))
	}
	for i, c := range trace {
		if c != Cycles(i*10) {
			t.Errorf("iteration %d at cycle %d, want %d", i, c, i*10)
		}
	}
	// The body's return is itself the final operation, at clock 50.
	if end != 50 {
		t.Errorf("final op at %d, want 50", end)
	}
	e.Close()
}

func TestGlobalOrderAcrossActors(t *testing.T) {
	e := NewEngine(1)
	var order []string
	mk := func(name string, step Cycles) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Advance(step)
			}
		}
	}
	e.Spawn("fast", mk("f", 10))
	e.Spawn("slow", mk("s", 25))
	e.Run(-1)
	e.Close()
	// f at 0,10,20; s at 0,25,50 -> merged by time with spawn-order ties:
	// t=0: f, s; t=10: f; t=20: f; t=25: s; t=50: s
	want := []string{"f", "s", "f", "f", "s", "s"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestRunLimitPausesAndResumes(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 10; i++ {
			count++
			p.Advance(100)
		}
	})
	e.Run(250) // ops at 0,100,200 execute; next would be 300
	if count != 3 {
		t.Fatalf("after limited run count=%d, want 3", count)
	}
	e.Run(-1)
	if count != 10 {
		t.Fatalf("after full run count=%d, want 10", count)
	}
	e.Close()
}

func TestCloseKillsInfiniteActor(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	e.Run(1000)
	if e.Live() != 1 {
		t.Fatalf("live=%d, want 1", e.Live())
	}
	e.Close()
	if e.Live() != 0 {
		t.Fatalf("after Close live=%d, want 0", e.Live())
	}
}

func TestActorPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("bad", func(p *Proc) {
		p.Advance(1)
		panic("boom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate out of Run")
		}
		e.Close()
	}()
	e.Run(-1)
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine(1)
	var at Cycles
	e.Spawn("a", func(p *Proc) {
		p.SleepUntil(500)
		at = p.Now()
	})
	e.Run(-1)
	e.Close()
	if at != 500 {
		t.Fatalf("woke at %d, want 500", at)
	}
}

func TestSleepUntilPastIsMinimal(t *testing.T) {
	e := NewEngine(1)
	var at Cycles
	e.Spawn("a", func(p *Proc) {
		p.Advance(100)
		p.SleepUntil(50) // already past: costs the minimum 1 cycle
		at = p.Now()
	})
	e.Run(-1)
	e.Close()
	if at != 101 {
		t.Fatalf("woke at %d, want 101", at)
	}
}

func TestResourceContention(t *testing.T) {
	var r Resource
	if s := r.Acquire(100, 50); s != 0 {
		t.Fatalf("first acquire stall=%d, want 0", s)
	}
	if s := r.Acquire(120, 50); s != 30 {
		t.Fatalf("overlapping acquire stall=%d, want 30", s)
	}
	if s := r.Acquire(500, 10); s != 0 {
		t.Fatalf("late acquire stall=%d, want 0", s)
	}
	if r.BusyUntil() != 510 {
		t.Fatalf("busyUntil=%d, want 510", r.BusyUntil())
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed uint64) []Cycles {
		e := NewEngine(seed)
		var samples []Cycles
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(Gauss(p.Rand(), 250, 15))
				samples = append(samples, p.Now())
			}
		})
		e.Run(-1)
		e.Close()
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestGaussClampsNonNegative(t *testing.T) {
	e := NewEngine(7)
	rng := e.Rand()
	for i := 0; i < 10000; i++ {
		if v := Gauss(rng, 10, 100); v < 0 {
			t.Fatalf("negative latency %d", v)
		}
	}
	e.Close()
}
