package sim

// The engine keeps its live actors in an indexed binary min-heap keyed on
// (clock, spawn id). The key order is exactly the linear scan's pick order:
// smallest clock first, ties broken by earliest spawn. Each actor caches its
// heap position (heapIdx) so the engine can re-sift an actor in O(log n)
// after its clock advances, instead of rescanning every actor per step.

// schedBefore reports whether a is scheduled before b: strictly smaller
// clock, or equal clocks with the earlier spawn id. This is the single
// ordering rule shared by the heap, the linear reference scheduler, and the
// run-ahead horizon check — keeping all three byte-identical.
func schedBefore(aClock Cycles, aID int, bClock Cycles, bID int) bool {
	return aClock < bClock || (aClock == bClock && aID < bID)
}

func (e *Engine) heapLess(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	return schedBefore(a.clock, a.id, b.clock, b.id)
}

func (e *Engine) heapSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].heapIdx = i
	e.heap[j].heapIdx = j
}

// heapPush adds a live actor to the heap.
func (e *Engine) heapPush(a *Actor) {
	a.heapIdx = len(e.heap)
	e.heap = append(e.heap, a)
	e.heapUp(a.heapIdx)
}

// heapFix restores heap order around a after its key (clock) changed.
func (e *Engine) heapFix(a *Actor) {
	i := a.heapIdx
	if i < 0 {
		return
	}
	if !e.heapDown(i) {
		e.heapUp(i)
	}
}

// heapRemove detaches a (typically a finished actor) from the heap.
func (e *Engine) heapRemove(a *Actor) {
	i := a.heapIdx
	if i < 0 {
		return
	}
	last := len(e.heap) - 1
	if i != last {
		e.heapSwap(i, last)
	}
	e.heap = e.heap[:last]
	a.heapIdx = -1
	if i < last {
		if !e.heapDown(i) {
			e.heapUp(i)
		}
	}
}

// heapMin returns the scheduled-first live actor, or nil.
func (e *Engine) heapMin() *Actor {
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// heapSecond returns the actor scheduled immediately after the minimum —
// the run-ahead horizon owner — or nil if fewer than two actors are live.
// In a binary heap the second-smallest element is whichever root child is
// smaller, so this is O(1).
func (e *Engine) heapSecond() *Actor {
	switch len(e.heap) {
	case 0, 1:
		return nil
	case 2:
		return e.heap[1]
	default:
		if e.heapLess(1, 2) {
			return e.heap[1]
		}
		return e.heap[2]
	}
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(i, parent) {
			break
		}
		e.heapSwap(i, parent)
		i = parent
	}
}

// heapDown sifts index i toward the leaves; reports whether it moved.
func (e *Engine) heapDown(i int) bool {
	start := i
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.heapLess(right, left) {
			least = right
		}
		if !e.heapLess(least, i) {
			break
		}
		e.heapSwap(i, least)
		i = least
	}
	return i != start
}
