// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives a set of Actors, each of which models a hardware thread
// (or background process) with its own local cycle clock. Actors are written
// as ordinary imperative Go functions; every simulated operation they perform
// advances their local clock and yields control back to the engine, which
// always resumes the actor with the smallest local clock. Shared state
// (caches, DRAM, the MEE) is therefore mutated in a single globally ordered
// sequence of operations, making every run race-free and bit-for-bit
// reproducible for a given seed.
//
// The engine provides:
//
//   - coroutine-style actors driven in global time order (Engine, Proc),
//   - a seeded random source shared by the whole simulation (Engine.Rand),
//   - busy-until shared Resources for modeling contention (e.g. the MEE is
//     single-ported; concurrent accesses serialize and the latecomer stalls),
//   - a cycle budget (Engine.Run) that cleanly terminates infinite actors
//     such as timer threads and noise generators.
//
// Cycle counts use the Cycles type (an int64); the conversion between cycles
// and wall-clock bandwidth is owned by the platform package, which knows the
// simulated core frequency.
package sim
