package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync/atomic"

	"meecc/internal/obs"
)

// Cycles counts simulated CPU clock cycles. It is signed so that durations
// and differences can be computed without conversion gymnastics; the engine
// never lets simulated time go negative.
type Cycles int64

// maxCycles is the run-ahead horizon when an actor has no live peers.
const maxCycles = Cycles(math.MaxInt64)

// killSentinel is panicked inside an actor goroutine when the engine tears
// the actor down; the actor wrapper recovers it.
type killSentinel struct{}

// PanicError is what Engine.Run re-panics when an actor body panics: it
// carries the original panic value and the stack captured inside the actor
// goroutine at the point of the panic, so callers recovering at the engine
// boundary (e.g. the experiment harness's trial guard) can report the real
// failure instead of a flattened string.
type PanicError struct {
	Actor string // name of the actor whose body panicked
	Value any    // the original panic value
	Stack []byte // stack of the actor goroutine, captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: actor %q panicked: %v", e.Actor, e.Value)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As reach through the engine boundary.
func (e *PanicError) Unwrap() error {
	err, _ := e.Value.(error)
	return err
}

// forceLinear is a test hook: when set, new engines use the reference
// linear-scan scheduler (O(n) pick, no run-ahead batching) instead of the
// heap. Both schedulers execute operations in an identical global order;
// the hook exists so the cross-scheduler determinism tests can prove it.
var forceLinear atomic.Bool

// SetForceLinearSchedulerForTest makes every subsequently created engine
// use the pre-heap reference scheduler. Call with false to restore the
// default. Test hook only — it is process-global.
func SetForceLinearSchedulerForTest(v bool) { forceLinear.Store(v) }

// Engine is a deterministic discrete-event simulator. Actors are resumed one
// at a time in order of their local clocks, so all shared-state mutation is
// serialized and reproducible for a fixed seed.
type Engine struct {
	actors  []*Actor
	heap    []*Actor // live actors, indexed min-heap on (clock, spawn id)
	rng     *rand.Rand
	pcg     *rand.PCG // rng's source, retained so RNGSnapshot can serialize it
	running *Actor // actor currently executing inside Run/Close
	killed  bool
	closed  bool
	linear  bool // reference scheduler: linear scan, single-step resumes

	// parkedCh is how control returns to the engine loop: the actor that
	// ends a handoff chain (no further live actor within the Run limit, a
	// panic, or teardown) sends itself. Exactly one goroutine — the engine
	// or a single actor — executes at any time, so the channel never sees
	// concurrent senders.
	parkedCh chan *Actor

	// Observability (all nil/zero when disabled; see Observe). cOps and
	// cBusy are schedule-invariant; cResumes and cTrunc count scheduler
	// mechanics and are registered as diagnostic.
	cOps     *obs.Counter
	cBusy    *obs.Counter
	cSpawns  *obs.Counter
	cResumes *obs.Counter
	cTrunc   *obs.Counter
	tracer   *obs.Tracer
	nBatch   obs.NameID
	nSpawn   obs.NameID
	lastNow  Cycles // clock of the last committed operation, for sampling
}

// NewEngine returns an engine whose random stream is derived from seed.
// The same seed always produces the same simulation.
func NewEngine(seed uint64) *Engine {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Engine{
		rng:      rand.New(pcg),
		pcg:      pcg,
		linear:   forceLinear.Load(),
		parkedCh: make(chan *Actor),
	}
}

// RNGSnapshot serializes the engine's random-stream state. Because actors
// execute in a deterministic global order, the state after running to a
// quiescent point is itself deterministic; NewEngineResumed continues the
// stream exactly where this engine left off. rand/v2's Rand buffers nothing
// outside its source, so the PCG state is the complete stream state.
func (e *Engine) RNGSnapshot() []byte {
	state, err := e.pcg.MarshalBinary()
	if err != nil {
		// PCG.MarshalBinary cannot fail; keep the invariant loud.
		panic(fmt.Sprintf("sim: PCG marshal: %v", err))
	}
	return state
}

// NewEngineResumed returns a fresh engine (no actors, clock history empty)
// whose random stream continues from a state captured by RNGSnapshot.
// Spawning actors at their pre-capture clocks reproduces the schedule a
// single engine would have executed past the capture point.
func NewEngineResumed(rngState []byte) (*Engine, error) {
	pcg := &rand.PCG{}
	if err := pcg.UnmarshalBinary(rngState); err != nil {
		return nil, fmt.Errorf("sim: resuming RNG state: %w", err)
	}
	return &Engine{
		rng:      rand.New(pcg),
		pcg:      pcg,
		linear:   forceLinear.Load(),
		parkedCh: make(chan *Actor),
	}, nil
}

// Rand exposes the engine's seeded random source. Because actors execute in
// a deterministic order, draws from this source are reproducible as well.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Observe attaches an observer to the engine. Operation and busy-cycle
// counts are schedule-invariant; resume and horizon-truncation counts
// describe how the scheduler batched the same schedule and are diagnostic.
// When the observer carries a tracer, every resume batch is recorded as a
// slice on the owning actor's track. Safe to call with nil.
func (e *Engine) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	e.cOps = o.Counter("sim.ops")
	e.cBusy = o.Counter("sim.busy_cycles")
	e.cSpawns = o.Counter("sim.spawns")
	e.cResumes = o.DiagnosticCounter("sim.resumes")
	e.cTrunc = o.DiagnosticCounter("sim.horizon_truncations")
	o.Sample("sim.clock", obs.Semantic, func() uint64 { return uint64(e.lastNow) })
	o.Sample("sim.actors", obs.Semantic, func() uint64 { return uint64(len(e.actors)) })
	e.tracer = o.Tracer()
	e.nBatch = e.tracer.Name("batch")
	e.nSpawn = e.tracer.Name("spawn")
	for _, a := range e.actors {
		a.track = e.tracer.Track(a.name)
	}
}

// Spawn registers a new actor starting at cycle 0 and returns it. The body
// runs in its own goroutine but only between Proc yield points chosen by the
// engine, never concurrently with another actor.
func (e *Engine) Spawn(name string, body func(*Proc)) *Actor {
	return e.SpawnAt(name, 0, body)
}

// SpawnAt registers an actor whose first operation executes at cycle start.
func (e *Engine) SpawnAt(name string, start Cycles, body func(*Proc)) *Actor {
	if e.closed {
		panic("sim: Spawn on closed engine")
	}
	if start < 0 {
		start = 0
	}
	a := &Actor{
		name:    name,
		id:      len(e.actors),
		clock:   start,
		heapIdx: -1,
		resume:  make(chan struct{}),
		engine:  e,
	}
	a.proc = &Proc{actor: a}
	e.actors = append(e.actors, a)
	e.heapPush(a)
	e.cSpawns.Inc()
	if e.tracer != nil {
		a.track = e.tracer.Track(name)
		e.tracer.Instant(a.track, e.nSpawn, int64(a.clock), int64(a.id))
	}
	// Spawn from inside a running actor body: the new actor may be due
	// before the runner's next operation, so shrink the runner's run-ahead
	// horizon to hand control back in time.
	if r := e.running; r != nil && schedBefore(a.clock, a.id, r.horizonClock, r.horizonID) {
		r.horizonClock, r.horizonID = a.clock, a.id
		e.cTrunc.Inc()
	}
	go a.run(body)
	return a
}

// pickLinear is the reference O(n) scheduler: the live actor with the
// smallest clock, ties broken by spawn order. Kept (behind the
// SetForceLinearSchedulerForTest hook) as the oracle the heap scheduler is
// tested against.
func (e *Engine) pickLinear() *Actor {
	var best *Actor
	for _, a := range e.actors {
		if a.done {
			continue
		}
		if best == nil || a.clock < best.clock {
			best = a
		}
	}
	return best
}

// beginBatch arms a for a resume: run-ahead horizon, Run limit, batch
// bookkeeping. The caller (the engine loop, or a peer actor handing off)
// signals a.resume afterwards. Valid only when a is the scheduled-first
// live actor, so heapSecond is the horizon owner.
func (e *Engine) beginBatch(a *Actor, limit Cycles) {
	if e.linear {
		// Horizon in the past: the actor parks after every operation.
		a.horizonClock, a.horizonID = -1, 0
	} else if h := e.heapSecond(); h != nil {
		a.horizonClock, a.horizonID = h.clock, h.id
	} else {
		a.horizonClock, a.horizonID = maxCycles, int(^uint(0)>>1)
	}
	a.runLimit = limit
	a.lastStart = a.clock
	a.batchStart = a.clock
	e.running = a
	e.cResumes.Inc()
}

// endBatch commits a's batch bookkeeping once its body stops executing
// operations: the tracer slice, the clock sample, and a's heap position.
// Runs on a's own goroutine — safe because execution is serialized.
func (e *Engine) endBatch(a *Actor) {
	e.running = nil
	if e.tracer != nil {
		e.tracer.Slice(a.track, e.nBatch, int64(a.batchStart), int64(a.clock-a.batchStart))
	}
	e.lastNow = a.lastStart
	if a.done {
		e.heapRemove(a)
	} else {
		e.heapFix(a)
	}
}

// handoff transfers control straight from a (whose batch just ended) to the
// next-due actor without waking the engine loop, and reports whether it did.
// It declines — and the caller parks to the engine instead — under the
// reference scheduler, at a Run boundary (no live actor, or the next one is
// past the limit), or when a itself is still scheduled first (its next
// operation merely crossed the Run limit). The next actor, horizon, and
// limit are computed exactly as the engine loop would, so the global
// operation order is unchanged — only the channel round-trip through the
// engine goroutine is elided.
func (e *Engine) handoff(a *Actor) bool {
	if e.linear {
		return false
	}
	next := e.heapMin()
	if next == nil || next == a {
		return false
	}
	if a.runLimit >= 0 && next.clock > a.runLimit {
		return false
	}
	e.beginBatch(next, a.runLimit)
	next.resume <- struct{}{}
	return true
}

// Run advances the simulation until every actor has finished or the next
// runnable actor's clock exceeds limit. A negative limit means "no limit"
// (run until all actors finish). It returns the clock of the last executed
// operation. Run may be called repeatedly with growing limits; actors keep
// their state between calls.
//
// Each resume hands the chosen actor a run-ahead horizon — the schedule
// position of the next other live actor. The actor executes operations
// locally (no handoff at all) for as long as it stays ahead of that horizon
// and within limit; when its batch ends it hands control directly to the
// next-due actor, so the engine goroutine sleeps for whole chains of
// batches and wakes only at Run boundaries. Because every operation is
// committed in exactly the order the single-step scheduler would have
// chosen, the global operation order — and thus every artifact byte — is
// unchanged.
func (e *Engine) Run(limit Cycles) Cycles {
	if e.closed {
		panic("sim: Run on closed engine")
	}
	var now Cycles
	for {
		var a *Actor
		if e.linear {
			a = e.pickLinear()
		} else {
			a = e.heapMin()
		}
		if a == nil {
			break
		}
		if limit >= 0 && a.clock > limit {
			break
		}
		e.beginBatch(a, limit)
		a.resume <- struct{}{}
		// Batch bookkeeping for every actor in the chain — including end —
		// already ran actor-side in endBatch.
		end := <-e.parkedCh
		now = end.lastStart
		if end.panicVal != nil {
			pv, stack := end.panicVal, end.panicStack
			end.panicVal, end.panicStack = nil, nil
			panic(&PanicError{Actor: end.name, Value: pv, Stack: stack})
		}
	}
	return now
}

// Close kills every remaining actor and releases the engine. It is safe to
// call Close on an engine whose actors have all finished.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.killed = true
	for _, a := range e.actors {
		for !a.done {
			a.step()
		}
		e.heapRemove(a)
	}
	e.closed = true
}

// Live reports how many actors have not yet finished.
func (e *Engine) Live() int {
	n := 0
	for _, a := range e.actors {
		if !a.done {
			n++
		}
	}
	return n
}

// Actors returns the names of all actors, sorted, for diagnostics.
func (e *Engine) Actors() []string {
	names := make([]string, 0, len(e.actors))
	for _, a := range e.actors {
		names = append(names, a.name)
	}
	sort.Strings(names)
	return names
}

// Gauss draws a normal sample with the given mean and standard deviation,
// clamped to [mean-4*sigma, mean+4*sigma] and to a minimum of zero, rounded
// to whole cycles. It is the standard latency-jitter helper used by the
// timing models.
func Gauss(rng *rand.Rand, mean, sigma float64) Cycles {
	v := rng.NormFloat64()*sigma + mean
	lo, hi := mean-4*sigma, mean+4*sigma
	v = math.Max(lo, math.Min(hi, v))
	if v < 0 {
		v = 0
	}
	return Cycles(math.Round(v))
}
