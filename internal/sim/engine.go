package sim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Cycles counts simulated CPU clock cycles. It is signed so that durations
// and differences can be computed without conversion gymnastics; the engine
// never lets simulated time go negative.
type Cycles int64

// killSentinel is panicked inside an actor goroutine when the engine tears
// the actor down; the actor wrapper recovers it.
type killSentinel struct{}

// Engine is a deterministic discrete-event simulator. Actors are resumed one
// at a time in order of their local clocks, so all shared-state mutation is
// serialized and reproducible for a fixed seed.
type Engine struct {
	actors []*Actor
	rng    *rand.Rand
	killed bool
	closed bool
}

// NewEngine returns an engine whose random stream is derived from seed.
// The same seed always produces the same simulation.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Rand exposes the engine's seeded random source. Because actors execute in
// a deterministic order, draws from this source are reproducible as well.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Spawn registers a new actor starting at cycle 0 and returns it. The body
// runs in its own goroutine but only between Proc yield points chosen by the
// engine, never concurrently with another actor.
func (e *Engine) Spawn(name string, body func(*Proc)) *Actor {
	return e.SpawnAt(name, 0, body)
}

// SpawnAt registers an actor whose first operation executes at cycle start.
func (e *Engine) SpawnAt(name string, start Cycles, body func(*Proc)) *Actor {
	if e.closed {
		panic("sim: Spawn on closed engine")
	}
	if start < 0 {
		start = 0
	}
	a := &Actor{
		name:   name,
		id:     len(e.actors),
		clock:  start,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		engine: e,
	}
	a.proc = &Proc{actor: a}
	e.actors = append(e.actors, a)
	go a.run(body)
	return a
}

// pick returns the live actor with the smallest clock (ties broken by spawn
// order), or nil if none remain.
func (e *Engine) pick() *Actor {
	var best *Actor
	for _, a := range e.actors {
		if a.done {
			continue
		}
		if best == nil || a.clock < best.clock {
			best = a
		}
	}
	return best
}

// Run advances the simulation until every actor has finished or the next
// runnable actor's clock exceeds limit. A negative limit means "no limit"
// (run until all actors finish). It returns the clock of the last executed
// operation. Run may be called repeatedly with growing limits; actors keep
// their state between calls.
func (e *Engine) Run(limit Cycles) Cycles {
	if e.closed {
		panic("sim: Run on closed engine")
	}
	var now Cycles
	for {
		a := e.pick()
		if a == nil {
			break
		}
		if limit >= 0 && a.clock > limit {
			break
		}
		now = a.clock
		a.step()
		if a.panicVal != nil {
			pv := a.panicVal
			a.panicVal = nil
			panic(fmt.Sprintf("sim: actor %q panicked: %v", a.name, pv))
		}
	}
	return now
}

// Close kills every remaining actor and releases the engine. It is safe to
// call Close on an engine whose actors have all finished.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.killed = true
	for _, a := range e.actors {
		for !a.done {
			a.step()
		}
	}
	e.closed = true
}

// Live reports how many actors have not yet finished.
func (e *Engine) Live() int {
	n := 0
	for _, a := range e.actors {
		if !a.done {
			n++
		}
	}
	return n
}

// Actors returns the names of all actors, sorted, for diagnostics.
func (e *Engine) Actors() []string {
	names := make([]string, 0, len(e.actors))
	for _, a := range e.actors {
		names = append(names, a.name)
	}
	sort.Strings(names)
	return names
}

// Gauss draws a normal sample with the given mean and standard deviation,
// clamped to [mean-4*sigma, mean+4*sigma] and to a minimum of zero, rounded
// to whole cycles. It is the standard latency-jitter helper used by the
// timing models.
func Gauss(rng *rand.Rand, mean, sigma float64) Cycles {
	v := rng.NormFloat64()*sigma + mean
	lo, hi := mean-4*sigma, mean+4*sigma
	v = math.Max(lo, math.Min(hi, v))
	if v < 0 {
		v = 0
	}
	return Cycles(math.Round(v))
}
