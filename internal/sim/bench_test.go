package sim

import "testing"

// BenchmarkActorSwitch measures the engine's op dispatch rate — the whole
// simulation's speed ceiling.
func BenchmarkActorSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	b.ResetTimer()
	e.Run(Cycles(b.N))
	b.StopTimer()
	e.Close()
}

// BenchmarkMultiActorInterleave measures scheduling with several live
// actors, the covert channel's operating regime.
func BenchmarkMultiActorInterleave(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 4; i++ {
		step := Cycles(7 + i)
		e.Spawn("a", func(p *Proc) {
			for {
				p.Advance(step)
			}
		})
	}
	b.ResetTimer()
	e.Run(Cycles(b.N))
	b.StopTimer()
	e.Close()
}

func BenchmarkGauss(b *testing.B) {
	e := NewEngine(1)
	rng := e.Rand()
	for i := 0; i < b.N; i++ {
		Gauss(rng, 250, 10)
	}
	e.Close()
}
