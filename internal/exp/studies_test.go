package exp

import (
	"bytes"
	"testing"
)

// TestChannelStudyDeterministicAcrossWorkers runs the real covert-channel
// study — not a fake runner — at two worker counts and asserts the
// aggregated JSON is byte-identical: the acceptance property behind
// `figures -fig 7 -trials N`.
func TestChannelStudyDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulations in -short mode")
	}
	spec := &Spec{
		Name:     "channel-determinism",
		Study:    "channel",
		BaseSeed: 42,
		Trials:   2,
		Params:   map[string]string{"bits": "16", "pattern": "alternating"},
		Axes:     []Axis{{Name: "window", Values: []string{"15000"}}},
	}
	var artifacts [][]byte
	for _, w := range []int{1, 8} {
		rep, err := RunSpec(spec, Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if n := rep.Failures(); n > 0 {
			t.Fatalf("workers=%d: %d channel trials failed", w, n)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, b)
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		t.Fatalf("channel artifacts differ between workers=1 and workers=8:\n%s\n---\n%s",
			artifacts[0], artifacts[1])
	}
}

func TestChannelStudyMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulation in -short mode")
	}
	rep, err := RunSpec(&Spec{
		Name:     "channel-metrics",
		Study:    "channel",
		BaseSeed: 42,
		Trials:   1,
		Params:   map[string]string{"bits": "16", "pattern": "alternating", "window": "15000"},
	}, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Failures != 0 {
		t.Fatalf("channel trial failed: %+v", rep.Trials)
	}
	for _, metric := range []string{"kbps", "error_rate", "bit_errors", "bits", "eviction_set", "setup_mcyc"} {
		if c.Stat(metric).N != 1 {
			t.Errorf("metric %s missing from channel trial", metric)
		}
	}
	if got := c.Stat("bits").Mean; got != 16 {
		t.Errorf("bits metric %v, want 16", got)
	}
	if e := c.Stat("error_rate").Mean; e < 0 || e > 1 {
		t.Errorf("error_rate %v out of range", e)
	}
	if k := c.Stat("kbps").Mean; k < 20 || k > 40 {
		t.Errorf("kbps %v, want ~33 at the 15000-cycle window", k)
	}
}

func TestStudiesRegistry(t *testing.T) {
	names := Studies()
	want := map[string]bool{"channel": false, "capacity": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("study %q not registered (have %v)", n, names)
		}
	}
}
