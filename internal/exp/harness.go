package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"meecc/internal/obs"
	"meecc/internal/obs/ops"
	"meecc/internal/sim"
	"meecc/internal/trace"
)

// Metrics is one trial's scalar results, keyed by metric name.
type Metrics map[string]float64

// Job identifies one trial of one cell, with its derived seed.
type Job struct {
	Spec  *Spec
	Cell  Cell
	Trial int
	Seed  uint64
}

// Params is the job's flat parameter view (spec constants + axis values).
func (j Job) Params() map[string]string { return j.Spec.ParamMap(j.Cell) }

// Runner executes one trial. It must be safe for concurrent use and must
// depend only on the job (in particular its seed), never on shared mutable
// state — the harness's determinism guarantee is exactly that the runner
// is a pure function of the job. The snapshot return is nil unless the
// spec requested metrics collection (Spec.Metrics); when non-nil it must be
// a Semantic-only snapshot so the byte-identity guarantee extends to it.
type Runner func(Job) (Metrics, *obs.Snapshot, error)

// TrialResult records one finished trial in the artifact.
type TrialResult struct {
	Cell    int     `json:"cell"`
	CellKey string  `json:"cell_key"`
	Trial   int     `json:"trial"`
	Seed    uint64  `json:"seed"`
	Metrics Metrics `json:"metrics,omitempty"`
	// Obs is the trial's metrics snapshot when the spec set Metrics; the
	// omitempty keeps artifacts from unobserved runs byte-identical to
	// pre-observability output.
	Obs *obs.Snapshot `json:"obs,omitempty"`
	Err string        `json:"error,omitempty"`
}

// CellResult aggregates one cell across its trials.
type CellResult struct {
	Cell     Cell   `json:"cell"`
	Key      string `json:"key"`
	Trials   int    `json:"trials"`
	Failures int    `json:"failures"`
	// Stats summarizes each metric over the successful trials. JSON
	// marshalling sorts the keys, keeping artifacts canonical.
	Stats map[string]trace.Stat `json:"stats"`
}

// Stat returns the aggregate for a metric (zero Stat if absent).
func (c *CellResult) Stat(metric string) trace.Stat { return c.Stats[metric] }

// Progress reports fan-out state to a live observer.
type Progress struct {
	Done      int // trials finished
	Total     int // trials overall
	CellsDone int // cells with every trial finished
	Cells     int
	Elapsed   time.Duration
}

// ETA extrapolates the remaining wall time from current throughput.
func (p Progress) ETA() time.Duration {
	if p.Done == 0 || p.Done == p.Total {
		return 0
	}
	return time.Duration(float64(p.Elapsed) / float64(p.Done) * float64(p.Total-p.Done))
}

// Config tunes one harness run.
type Config struct {
	// Workers sizes the pool; <= 0 means GOMAXPROCS.
	Workers int
	// OnProgress, when set, is invoked (serialized) after every finished
	// trial.
	OnProgress func(Progress)
	// Cancel, when set and closed, stops the dispatcher: no new trials
	// start, in-flight trials drain to completion, and the report comes
	// back flagged Partial with the undispatched trials marked skipped.
	Cancel <-chan struct{}
	// Context, when non-nil, stops the dispatcher exactly like Cancel when
	// it ends — the hook long-lived callers (the serve service) use to give
	// runs deadlines and client-initiated cancellation. Run never returns
	// the context's error: a cancelled run is a Partial report, and the
	// caller inspects context.Cause to learn why.
	Context context.Context
	// Ops, when non-nil, receives wall-clock dispatcher telemetry: per-trial
	// queue wait and execution latency, worker busy time, and in-flight
	// gauges. Operational only — nothing recorded here can reach the report
	// or the artifact, which stay byte-identical with Ops on or off.
	Ops *ops.Registry
}

// Report is one complete harness run: every trial result in deterministic
// (cell-major, then trial) order plus per-cell aggregates, with the
// run's non-deterministic envelope (wall time, workers) kept separate
// from the deterministic payload.
type Report struct {
	Spec     *Spec
	Trials   []TrialResult
	Cells    []CellResult
	Workers  int
	WallTime time.Duration
	// Partial is true when the run was cancelled before every trial was
	// dispatched; skipped trials carry Err == SkippedErr.
	Partial bool
}

// SkippedErr marks trials a cancelled run never started.
const SkippedErr = "skipped: run cancelled"

// Cell returns the aggregate whose key matches, or nil.
func (r *Report) Cell(key string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Key == key {
			return &r.Cells[i]
		}
	}
	return nil
}

// Failures counts failed trials across all cells.
func (r *Report) Failures() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Failures
	}
	return n
}

// Run fans the spec's (cell × trial) jobs out over the worker pool and
// aggregates per-cell statistics. Results are byte-identical for a given
// spec at any worker count: seeds derive from (cell, trial), every result
// lands at its precomputed index, and aggregation runs in trial order.
func Run(spec *Spec, runner Runner, cfg Config) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if runner == nil {
		return nil, fmt.Errorf("exp: spec %q: nil runner", spec.Name)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cells := spec.Cells()
	jobs := make([]Job, 0, len(cells)*spec.Trials)
	for _, cell := range cells {
		key := spec.SeedKey(cell)
		for t := 0; t < spec.Trials; t++ {
			jobs = append(jobs, Job{
				Spec:  spec,
				Cell:  cell,
				Trial: t,
				Seed:  TrialSeed(spec.BaseSeed, key, t),
			})
		}
	}

	// Dispatch order. Results land at precomputed indices, so any order
	// yields the same artifact; normally jobs go out cell-major (their
	// storage order). With shared axes, jobs that share a seed live in
	// different cells, so dispatch trial-major instead: the shared-seed
	// jobs of each trial run back to back and a study's warm-state cache
	// only ever needs a handful of live entries.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	if len(spec.SharedAxes) > 0 {
		k := 0
		for t := 0; t < spec.Trials; t++ {
			for ci := range cells {
				order[k] = ci*spec.Trials + t
				k++
			}
		}
	}

	// Wall-clock dispatcher telemetry. All instruments are nil when cfg.Ops
	// is, and every method is nil-safe, so the uninstrumented path pays only
	// nil checks. Worker/in-flight gauges use Add (not Set) so concurrent
	// Runs sharing one registry compose.
	queueWait := cfg.Ops.Histogram("meecc_exp_queue_wait_seconds", "Wall time a dispatched trial waited for a worker.", nil)
	trialSeconds := cfg.Ops.Histogram("meecc_exp_trial_seconds", "Wall time of trial executions in the worker pool.", nil)
	busySeconds := cfg.Ops.Gauge("meecc_exp_worker_busy_seconds", "Cumulative wall time workers spent executing trials.")
	workersGauge := cfg.Ops.Gauge("meecc_exp_workers", "Workers currently serving trial pools.")
	inflight := cfg.Ops.Gauge("meecc_exp_trials_inflight", "Trials executing right now.")
	workersGauge.Add(float64(workers))
	defer workersGauge.Add(-float64(workers))

	start := time.Now()
	results := make([]TrialResult, len(jobs))
	// Each dispatch carries its send timestamp so the receiving worker can
	// record how long the trial sat in the channel waiting for a free slot.
	type dispatchItem struct {
		idx int
		at  time.Time
	}
	idxCh := make(chan dispatchItem)
	var wg sync.WaitGroup

	var mu sync.Mutex // guards done/cellDone and serializes OnProgress
	done := 0
	cellsDone := 0
	cellRemaining := make([]int, len(cells))
	for i := range cellRemaining {
		cellRemaining[i] = spec.Trials
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range idxCh {
				i := item.idx
				job := jobs[i]
				tr := TrialResult{
					Cell:    job.Cell.Index,
					CellKey: job.Cell.Key(),
					Trial:   job.Trial,
					Seed:    job.Seed,
				}
				execStart := time.Now()
				queueWait.Observe(execStart.Sub(item.at).Seconds())
				inflight.Add(1)
				m, snap, err := runTrial(runner, job)
				inflight.Add(-1)
				trialSeconds.ObserveSince(execStart)
				busySeconds.Add(time.Since(execStart).Seconds())
				if err != nil {
					tr.Err = err.Error()
				} else {
					tr.Metrics = m
					tr.Obs = snap
				}
				results[i] = tr

				mu.Lock()
				done++
				cellRemaining[job.Cell.Index]--
				if cellRemaining[job.Cell.Index] == 0 {
					cellsDone++
				}
				if cfg.OnProgress != nil {
					cfg.OnProgress(Progress{
						Done:      done,
						Total:     len(jobs),
						CellsDone: cellsDone,
						Cells:     len(cells),
						Elapsed:   time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
	// Both stop signals feed one select; a nil channel never fires, so the
	// unconfigured cases cost nothing.
	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}
	dispatched := len(order)
dispatch:
	for j, i := range order {
		// Poll the stop signals first: select picks among ready cases at
		// random, so without this a fired cancel could keep losing coin
		// flips against ready workers and dispatch trials anyway.
		select {
		case <-cfg.Cancel:
			dispatched = j
			break dispatch
		case <-ctxDone:
			dispatched = j
			break dispatch
		default:
		}
		select {
		case <-cfg.Cancel:
			dispatched = j
			break dispatch
		case <-ctxDone:
			dispatched = j
			break dispatch
		case idxCh <- dispatchItem{idx: i, at: time.Now()}:
		}
	}
	close(idxCh)
	wg.Wait()

	// Trials the cancel cut off are recorded as skipped, so the aggregates
	// count them as failures instead of silently averaging over fewer
	// samples than the spec asked for.
	for j := dispatched; j < len(order); j++ {
		i := order[j]
		results[i] = TrialResult{
			Cell:    jobs[i].Cell.Index,
			CellKey: jobs[i].Cell.Key(),
			Trial:   jobs[i].Trial,
			Seed:    jobs[i].Seed,
			Err:     SkippedErr,
		}
	}

	report := &Report{
		Spec:     spec,
		Trials:   results,
		Cells:    aggregate(cells, results, spec.Trials),
		Workers:  workers,
		WallTime: time.Since(start),
		Partial:  dispatched < len(jobs),
	}
	return report, nil
}

// runTrial invokes the runner with a panic guard: a panicking trial is one
// failed trial in the artifact, not a crashed batch. Panics that crossed a
// simulation Run boundary arrive as *sim.PanicError carrying the faulting
// actor's name and its original stack; report those instead of this
// goroutine's stack, which would only show the engine's resume plumbing.
func runTrial(runner Runner, job Job) (m Metrics, snap *obs.Snapshot, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if pe := (*sim.PanicError)(nil); errors.As(toError(r), &pe) {
			err = fmt.Errorf("exp: trial panicked in actor %q: %v\n%s", pe.Actor, pe.Value, pe.Stack)
			return
		}
		err = fmt.Errorf("exp: trial panicked: %v\n%s", r, debug.Stack())
	}()
	return runner(job)
}

// toError adapts a recovered value for errors.As without losing non-error
// panic values.
func toError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("%v", r)
}

// aggregate folds the (already cell-major-ordered) trial results into
// per-cell statistics.
func aggregate(cells []Cell, results []TrialResult, trials int) []CellResult {
	out := make([]CellResult, len(cells))
	for ci, cell := range cells {
		cr := CellResult{Cell: cell, Key: cell.Key(), Trials: trials, Stats: map[string]trace.Stat{}}
		samples := map[string][]float64{}
		var names []string
		for t := 0; t < trials; t++ {
			tr := results[ci*trials+t]
			if tr.Err != "" {
				cr.Failures++
				continue
			}
			for name, v := range tr.Metrics {
				if _, ok := samples[name]; !ok {
					names = append(names, name)
				}
				samples[name] = append(samples[name], v)
			}
		}
		for _, name := range names {
			cr.Stats[name] = trace.NewStat(samples[name])
		}
		out[ci] = cr
	}
	return out
}
