package exp

import (
	"bytes"
	"testing"

	"meecc/internal/sim"
)

// TestHeapAndLinearSchedulersProduceIdenticalArtifacts is the engine
// refactor's acceptance oracle: the heap scheduler with actor run-ahead
// batching must replay exactly the op order of the original single-step
// linear scan, so full studies — covert-channel transmissions and chaos
// campaigns with fault injection — render byte-identical artifacts under
// either scheduler.
func TestHeapAndLinearSchedulersProduceIdenticalArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	specs := []*Spec{
		{
			Name:     "sched-channel",
			Study:    "channel",
			BaseSeed: 42,
			Trials:   2,
			Params:   map[string]string{"bits": "16", "pattern": "alternating"},
			Axes:     []Axis{{Name: "window", Values: []string{"10000", "15000"}}},
		},
		{
			Name:     "sched-chaos",
			Study:    "chaos",
			BaseSeed: 7,
			Trials:   1,
			Params:   map[string]string{"payload": "4", "faults": "meeflush"},
			Axes:     []Axis{{Name: "intensity", Values: []string{"0", "6"}}},
		},
	}
	render := func(spec *Spec, linear bool) []byte {
		sim.SetForceLinearSchedulerForTest(linear)
		defer sim.SetForceLinearSchedulerForTest(false)
		rep, err := RunSpec(spec, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if n := rep.Failures(); n > 0 {
			t.Fatalf("%s (linear=%v): %d trials failed", spec.Name, linear, n)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, spec := range specs {
		heap := render(spec, false)
		linear := render(spec, true)
		if !bytes.Equal(heap, linear) {
			t.Errorf("%s: artifacts differ between heap and linear schedulers:\n%s\n---\n%s",
				spec.Name, heap, linear)
		}
	}
}
