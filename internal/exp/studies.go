package exp

import (
	"fmt"
	"sort"

	"meecc/internal/core"
	"meecc/internal/obs"
)

// studies maps Spec.Study names to runner factories. RunnerFor calls the
// factory, so every harness run gets a fresh runner with its own private
// state (the channel study's warm cache). Every runner remains a pure
// function of the job's parameters and seed in the sense the Runner
// contract requires: the warm cache only memoizes warm-up work whose
// forked results are exactly equal to fresh ones, so cache hits and misses
// produce identical trial results.
var studies = map[string]func(warm *core.WarmCache) Runner{
	"channel": func(warm *core.WarmCache) Runner {
		return func(j Job) (Metrics, *obs.Snapshot, error) {
			// Warm sharing only pays off when cells share seeds; without
			// shared axes every trial has a unique seed and caching would
			// just pin dead snapshots.
			var w *core.WarmCache
			if len(j.Spec.SharedAxes) > 0 {
				w = warm
			}
			return core.ChannelTrialWarm(j.Params(), j.Seed, j.Spec.Metrics, w)
		}
	},
	"capacity": func(*core.WarmCache) Runner {
		return func(j Job) (Metrics, *obs.Snapshot, error) {
			return core.CapacityTrial(j.Params(), j.Seed, j.Spec.Metrics)
		}
	},
	// The chaos study compares fault campaigns, and fault injectors attach
	// to the platform before the warm phase ends — outside what a snapshot
	// can carry — so chaos trials always run fresh (see warmRestriction).
	"chaos": func(*core.WarmCache) Runner {
		return func(j Job) (Metrics, *obs.Snapshot, error) {
			return core.ChaosTrial(j.Params(), j.Seed, j.Spec.Metrics)
		}
	},
}

// Studies lists the registered study names.
func Studies() []string {
	names := make([]string, 0, len(studies))
	for name := range studies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunnerFor resolves a spec's study name ("" means "channel") to a fresh
// runner instance. Runner-private caches live and die with the returned
// runner, so memory is bounded per harness run.
func RunnerFor(study string) (Runner, error) {
	return RunnerWithWarmCache(study, core.NewWarmCache(0))
}

// RunnerWithWarmCache is RunnerFor with a caller-owned warm-state cache
// (studies that don't warm-fork ignore it). Long-lived callers — the serve
// service — inject a cache that outlives individual harness runs and may
// carry a snapstore-backed disk tier, so warm state survives across
// submissions and processes. The cache never affects results: warm-forked
// trials are exactly equal to fresh ones.
func RunnerWithWarmCache(study string, warm *core.WarmCache) (Runner, error) {
	if study == "" {
		study = "channel"
	}
	factory, ok := studies[study]
	if !ok {
		return nil, fmt.Errorf("exp: unknown study %q (have: %v)", study, Studies())
	}
	return factory(warm), nil
}

// RunSpec resolves the spec's study and runs it — the one-call entry point
// for `meecc batch` and the figure regenerators.
func RunSpec(spec *Spec, cfg Config) (*Report, error) {
	runner, err := RunnerFor(spec.Study)
	if err != nil {
		return nil, err
	}
	return Run(spec, runner, cfg)
}
