package exp

import (
	"fmt"
	"sort"

	"meecc/internal/core"
	"meecc/internal/obs"
)

// studies maps Spec.Study names to runners. Every runner is a pure
// function of the job's parameters and seed (see Runner's contract).
var studies = map[string]Runner{
	"channel": func(j Job) (Metrics, *obs.Snapshot, error) {
		return core.ChannelTrial(j.Params(), j.Seed, j.Spec.Metrics)
	},
	"capacity": func(j Job) (Metrics, *obs.Snapshot, error) {
		return core.CapacityTrial(j.Params(), j.Seed, j.Spec.Metrics)
	},
	"chaos": func(j Job) (Metrics, *obs.Snapshot, error) {
		return core.ChaosTrial(j.Params(), j.Seed, j.Spec.Metrics)
	},
}

// Studies lists the registered study names.
func Studies() []string {
	names := make([]string, 0, len(studies))
	for name := range studies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunnerFor resolves a spec's study name ("" means "channel").
func RunnerFor(study string) (Runner, error) {
	if study == "" {
		study = "channel"
	}
	r, ok := studies[study]
	if !ok {
		return nil, fmt.Errorf("exp: unknown study %q (have: %v)", study, Studies())
	}
	return r, nil
}

// RunSpec resolves the spec's study and runs it — the one-call entry point
// for `meecc batch` and the figure regenerators.
func RunSpec(spec *Spec, cfg Config) (*Report, error) {
	runner, err := RunnerFor(spec.Study)
	if err != nil {
		return nil, err
	}
	return Run(spec, runner, cfg)
}
