// Package exp is the experiment-orchestration layer: it takes a
// declarative job spec (a named parameter grid with a trial count and a
// base seed), fans every (cell, trial) pair out over a worker pool, derives
// per-trial seeds deterministically so results are byte-identical at any
// worker count, aggregates per-cell statistics, and writes versioned JSON
// artifacts plus a run manifest.
//
// The paper's claims (35 KBps at 1.7% error, Figure 7's knee) are
// statistical; this package is what turns the repo's single-point serial
// studies into many-trial parallel ones with confidence intervals.
package exp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Axis is one dimension of the parameter grid. Values are strings so specs
// stay study-agnostic and JSON-friendly; study runners parse them.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// Spec declares one experiment: the full grid is the cross product of the
// axes, every cell runs Trials independent trials, and every trial's seed
// derives from BaseSeed, the cell key, and the trial index.
type Spec struct {
	Name  string `json:"name"`
	Study string `json:"study"`
	// BaseSeed drives every trial seed; equal specs reproduce bit-for-bit.
	BaseSeed uint64 `json:"base_seed"`
	Trials   int    `json:"trials"`
	// Params are constants applied to every cell; axis values override
	// them on name collision.
	Params map[string]string `json:"params,omitempty"`
	Axes   []Axis            `json:"axes"`
	// Metrics, when true, attaches a fresh observer to every trial and
	// embeds the resulting semantic metrics snapshot in the artifact
	// (TrialResult.Obs). Snapshots contain only semantic instruments, so
	// artifacts stay byte-identical across worker counts and schedulers.
	Metrics bool `json:"metrics,omitempty"`
	// SharedAxes names axes that are excluded from trial-seed derivation:
	// trial t of two cells that differ only in shared axes gets the same
	// seed, so those cells measure the shared axis on the *same* sampled
	// machine instead of on independently re-seeded ones (a paired rather
	// than unpaired comparison). Studies that support warm-state forking
	// (the channel study) additionally reuse one warmed platform across
	// the shared cells of a trial. Empty (the default) keeps the historic
	// per-cell seeds, so existing artifacts are byte-for-byte unchanged.
	SharedAxes []string `json:"shared_axes,omitempty"`
}

// Cell is one point of the grid: the axis assignment at a grid index.
type Cell struct {
	// Index is the cell's position in row-major grid order (first axis
	// slowest).
	Index int `json:"index"`
	// Params holds one value per axis, in axis order.
	Params []Param `json:"params"`
}

// Param is a single name=value assignment.
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Validate rejects specs the harness cannot run deterministically.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("exp: spec has no name")
	}
	if s.Trials < 1 {
		return fmt.Errorf("exp: spec %q: trials must be >= 1, got %d", s.Name, s.Trials)
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return fmt.Errorf("exp: spec %q: axis with empty name", s.Name)
		}
		if len(ax.Values) == 0 {
			return fmt.Errorf("exp: spec %q: axis %q has no values", s.Name, ax.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("exp: spec %q: duplicate axis %q", s.Name, ax.Name)
		}
		seen[ax.Name] = true
		for _, v := range ax.Values {
			if strings.ContainsAny(v, ",=") {
				return fmt.Errorf("exp: spec %q: axis %q value %q contains ',' or '='", s.Name, ax.Name, v)
			}
		}
	}
	sharedSeen := map[string]bool{}
	for _, name := range s.SharedAxes {
		if !seen[name] {
			return fmt.Errorf("exp: spec %q: shared axis %q is not an axis", s.Name, name)
		}
		if sharedSeen[name] {
			return fmt.Errorf("exp: spec %q: duplicate shared axis %q", s.Name, name)
		}
		sharedSeen[name] = true
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("exp: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Cells expands the grid in row-major order (first axis slowest). A spec
// with no axes has exactly one cell.
func (s *Spec) Cells() []Cell {
	total := 1
	for _, ax := range s.Axes {
		total *= len(ax.Values)
	}
	cells := make([]Cell, total)
	for i := 0; i < total; i++ {
		params := make([]Param, len(s.Axes))
		rem := i
		for a := len(s.Axes) - 1; a >= 0; a-- {
			ax := s.Axes[a]
			params[a] = Param{Name: ax.Name, Value: ax.Values[rem%len(ax.Values)]}
			rem /= len(ax.Values)
		}
		cells[i] = Cell{Index: i, Params: params}
	}
	return cells
}

// Key is the cell's canonical identity: axis assignments joined in axis
// order ("window=15000,noise=none"; "-" for the axis-less cell). Trial
// seeds are derived from it, so it is part of the determinism contract.
func (c Cell) Key() string {
	if len(c.Params) == 0 {
		return "-"
	}
	parts := make([]string, len(c.Params))
	for i, p := range c.Params {
		parts[i] = p.Name + "=" + p.Value
	}
	return strings.Join(parts, ",")
}

// SeedKey is the part of a cell's identity that trial seeds derive from:
// the cell key with the spec's shared axes removed. With no SharedAxes it
// is exactly Key(), so seed derivation — and therefore every committed
// artifact — is unchanged for historic specs.
func (s *Spec) SeedKey(c Cell) string {
	if len(s.SharedAxes) == 0 {
		return c.Key()
	}
	shared := make(map[string]bool, len(s.SharedAxes))
	for _, name := range s.SharedAxes {
		shared[name] = true
	}
	parts := make([]string, 0, len(c.Params))
	for _, p := range c.Params {
		if !shared[p.Name] {
			parts = append(parts, p.Name+"="+p.Value)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// Get returns the cell's value for an axis name.
func (c Cell) Get(name string) (string, bool) {
	for _, p := range c.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// ParamMap merges the spec's fixed params with the cell's axis assignment
// (axes win) — the flat view study runners consume.
func (s *Spec) ParamMap(c Cell) map[string]string {
	m := make(map[string]string, len(s.Params)+len(c.Params))
	for k, v := range s.Params {
		m[k] = v
	}
	for _, p := range c.Params {
		m[p.Name] = p.Value
	}
	return m
}
