package exp

import (
	"bytes"
	"testing"

	"meecc/internal/obs"
	"meecc/internal/sim"
)

// metricsSpec is a tiny real channel study with metrics collection on.
func metricsSpec() *Spec {
	return &Spec{
		Name:     "obs-det",
		Study:    "channel",
		BaseSeed: 42,
		Trials:   1,
		Params:   map[string]string{"bits": "8", "pattern": "alternating"},
		Axes:     []Axis{{Name: "window", Values: []string{"15000"}}},
		Metrics:  true,
	}
}

func renderArtifact(t *testing.T, spec *Spec, workers int) []byte {
	t.Helper()
	rep, err := RunSpec(spec, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Failures(); n > 0 {
		t.Fatalf("%d trials failed: %+v", n, rep.Trials)
	}
	b, err := MarshalArtifact(rep.Artifact())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMetricsSnapshotsByteIdenticalAcrossWorkersAndSchedulers is the
// determinism half of the observability contract: the embedded snapshots are
// Semantic-only, so artifact bytes must not depend on worker count OR on
// which scheduler the engine ran (the heap scheduler and the linear oracle
// execute actors in different micro-orders but must observe identical
// simulations).
func TestMetricsSnapshotsByteIdenticalAcrossWorkersAndSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulations in -short mode")
	}
	spec := metricsSpec()
	heap1 := renderArtifact(t, spec, 1)
	heap8 := renderArtifact(t, spec, 8)
	if !bytes.Equal(heap1, heap8) {
		t.Fatalf("metrics artifacts differ between workers=1 and workers=8:\n%s\n---\n%s", heap1, heap8)
	}
	sim.SetForceLinearSchedulerForTest(true)
	defer sim.SetForceLinearSchedulerForTest(false)
	linear := renderArtifact(t, spec, 1)
	if !bytes.Equal(heap1, linear) {
		t.Fatalf("metrics artifacts differ between heap and linear schedulers:\n%s\n---\n%s", heap1, linear)
	}
}

// TestMetricsOffKeepsArtifactFreeOfObs is the zero-overhead half: without
// Spec.Metrics the artifact must not contain an obs block at all — the
// byte-compatibility guarantee for pre-observability artifacts.
func TestMetricsOffKeepsArtifactFreeOfObs(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulation in -short mode")
	}
	spec := metricsSpec()
	spec.Metrics = false
	art := renderArtifact(t, spec, 1)
	if bytes.Contains(art, []byte(`"obs"`)) {
		t.Fatal("metrics-off artifact contains an obs block")
	}
}

// TestArtifactObsBlockSchema pins the observable surface of the embedded
// snapshot: schema version, and the invariant counter names every channel
// trial must produce. Renaming one of these counters is an artifact schema
// change.
func TestArtifactObsBlockSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulation in -short mode")
	}
	rep, err := RunSpec(metricsSpec(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var snap *obs.Snapshot
	for _, tr := range rep.Trials {
		if tr.Obs != nil {
			snap = tr.Obs
		}
	}
	if snap == nil {
		t.Fatal("no trial carried a metrics snapshot")
	}
	if snap.SchemaVersion != obs.SnapshotSchemaVersion {
		t.Fatalf("snapshot schema version %d, want %d", snap.SchemaVersion, obs.SnapshotSchemaVersion)
	}
	invariant := []string{
		"sim.ops", "sim.busy_cycles", "sim.clock",
		"mee.reads", "mee.hits.versions-hit",
		"cache.mee.hits", "cache.llc.fills", "cache.l1.misses",
		"channel.bits_sent", "channel.bits_decoded", "channel.windows",
	}
	for _, name := range invariant {
		if snap.Counters[name] == 0 {
			t.Errorf("invariant counter %q missing or zero in trial snapshot", name)
		}
	}
	if snap.Histograms["mee.read_latency"].Count == 0 {
		t.Error("mee.read_latency histogram missing from trial snapshot")
	}
	// Diagnostic instruments must never reach the artifact.
	for name := range snap.Counters {
		switch name {
		case "sim.resumes", "sim.horizon_truncations":
			t.Errorf("diagnostic counter %q leaked into the artifact snapshot", name)
		}
	}
	// Round trip: the embedded block re-encodes canonically.
	enc := snap.Encode()
	dec, err := obs.DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, dec.Encode()) {
		t.Error("snapshot does not re-encode canonically")
	}
}

// TestChaosMetricsCorrelateArmsWithFaults exercises the chaos study with
// metrics on: the merged snapshot must carry per-arm fault counters next to
// that arm's channel counters, which is what makes a degradation event
// attributable to the faults injected into the same arm.
func TestChaosMetricsCorrelateArmsWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec := &Spec{
		Name:     "chaos-obs",
		Study:    "chaos",
		BaseSeed: 7,
		Trials:   1,
		Params:   map[string]string{"payload": "4", "faults": "meeflush", "intensity": "6"},
		Metrics:  true,
	}
	rep, err := RunSpec(spec, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var snap *obs.Snapshot
	for _, tr := range rep.Trials {
		if tr.Obs != nil {
			snap = tr.Obs
		}
	}
	if snap == nil {
		t.Fatal("chaos trial carried no snapshot")
	}
	for _, arm := range []string{"static.", "adaptive."} {
		if snap.Counters[arm+"fault.applied.meeflush"] == 0 {
			t.Errorf("%sfault.applied.meeflush missing: the arm's faults are not correlated", arm)
		}
	}
	// The static arm runs RunChannel (channel.* counters); the adaptive arm
	// runs the session layer (arq.* counters).
	if snap.Counters["static.channel.bits_sent"] == 0 {
		t.Error("static.channel.bits_sent missing")
	}
	if snap.Counters["adaptive.arq.bits_sent"] == 0 {
		t.Error("adaptive.arq.bits_sent missing")
	}
	// The adaptive arm's session accounting rides along.
	if snap.Counters["adaptive.arq.rounds"] == 0 {
		t.Error("adaptive.arq.rounds missing from merged snapshot")
	}
}
