package exp

import "testing"

func TestSpecHashStableAndSensitive(t *testing.T) {
	spec := gridSpec()
	h1, h2 := spec.Hash(), spec.Hash()
	if h1 != h2 {
		t.Fatal("spec hash is not stable")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h1)
	}
	mut := *spec
	mut.BaseSeed++
	if mut.Hash() == h1 {
		t.Fatal("seed change did not change the spec hash")
	}
	mut = *spec
	mut.Trials++
	if mut.Hash() == h1 {
		t.Fatal("trial-count change did not change the spec hash")
	}
}

func TestCellMemoKeyIgnoresSpecName(t *testing.T) {
	a, b := gridSpec(), gridSpec()
	b.Name = "renamed"
	ca, cb := a.Cells(), b.Cells()
	for i := range ca {
		if a.CellMemoKey(ca[i]) != b.CellMemoKey(cb[i]) {
			t.Fatalf("cell %d memo key depends on the spec name", i)
		}
	}
	// Default study spelling is normalized: "" and "channel" are one study.
	c, d := gridSpec(), gridSpec()
	c.Study, d.Study = "", "channel"
	if c.CellMemoKey(c.Cells()[0]) != d.CellMemoKey(d.Cells()[0]) {
		t.Fatal("default study and explicit channel study key differently")
	}
	// But the grid content matters.
	e := gridSpec()
	e.BaseSeed++
	if e.CellMemoKey(e.Cells()[0]) == a.CellMemoKey(ca[0]) {
		t.Fatal("seed change did not change the memo key")
	}
	// And distinct cells of one spec key differently.
	if a.CellMemoKey(ca[0]) == a.CellMemoKey(ca[1]) {
		t.Fatal("distinct cells share a memo key")
	}
}
