package exp

// Deterministic per-trial seed derivation. The scheduling of the worker
// pool must never influence results, so a trial's seed is a pure function
// of (base seed, cell key, trial index): SplitMix64 over the base XORed
// with an FNV-1a hash of the cell key and a scrambled trial index. Equal
// specs produce equal seed tables at any worker count.

// SplitMix64 is the finalizer of Steele et al.'s SplitMix64 generator — a
// high-quality 64-bit mixing function.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes s with 64-bit FNV-1a.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// TrialSeed derives the simulation seed for one trial of one cell.
func TrialSeed(base uint64, cellKey string, trial int) uint64 {
	return SplitMix64(base ^ fnv64a(cellKey) ^ SplitMix64(uint64(trial)))
}
