package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"meecc/internal/trace"
)

// SchemaVersion identifies the artifact/manifest JSON layout. Bump it on
// any breaking change; consumers should reject versions they don't know.
const SchemaVersion = 1

// Artifact is the deterministic payload of a run: the spec, every
// per-trial result in canonical order, and the per-cell aggregates.
// Marshalling an Artifact for a given spec yields byte-identical JSON at
// any worker count.
type Artifact struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Study         string `json:"study"`
	BaseSeed      uint64 `json:"base_seed"`
	TrialsPerCell int    `json:"trials_per_cell"`
	// Params and Axes echo the spec so an artifact is self-describing.
	Params map[string]string `json:"params,omitempty"`
	Axes   []Axis            `json:"axes"`
	// Partial marks a cancelled run: some trials were never dispatched and
	// carry SkippedErr instead of metrics.
	Partial bool           `json:"partial,omitempty"`
	Cells   []ArtifactCell `json:"cells"`
	Trials  []TrialResult  `json:"trials"`
}

// ArtifactCell is one aggregated grid cell in the artifact.
type ArtifactCell struct {
	Key      string                `json:"key"`
	Params   []Param               `json:"params"`
	Trials   int                   `json:"trials"`
	Failures int                   `json:"failures"`
	Stats    map[string]trace.Stat `json:"stats"`
}

// Manifest is the run's non-deterministic envelope: provenance
// (git revision, creation time) and execution shape (workers, wall time),
// plus a hash binding it to the artifact it describes.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Study         string `json:"study"`
	GitRev        string `json:"git_rev"`
	BaseSeed      uint64 `json:"base_seed"`
	// SpecSHA256 is the spec's content hash (Spec.Hash): the run's
	// deterministic identity, comparable across checkouts and hosts.
	SpecSHA256 string `json:"spec_sha256"`
	Axes          []Axis `json:"axes"`
	Cells         int    `json:"cells"`
	TrialsPerCell int    `json:"trials_per_cell"`
	FailedTrials  int    `json:"failed_trials"`
	Partial       bool   `json:"partial,omitempty"`
	Workers       int    `json:"workers"`
	WallMS        int64  `json:"wall_ms"`
	CreatedAt     string `json:"created_at"`
	// ArtifactSHA256 is the hex digest of the artifact file's bytes.
	ArtifactSHA256 string `json:"artifact_sha256"`
}

// Artifact assembles the deterministic artifact for the report.
func (r *Report) Artifact() *Artifact {
	a := &Artifact{
		SchemaVersion: SchemaVersion,
		Name:          r.Spec.Name,
		Study:         r.Spec.Study,
		BaseSeed:      r.Spec.BaseSeed,
		TrialsPerCell: r.Spec.Trials,
		Params:        r.Spec.Params,
		Axes:          r.Spec.Axes,
		Partial:       r.Partial,
		Trials:        r.Trials,
	}
	if a.Axes == nil {
		a.Axes = []Axis{}
	}
	a.Cells = make([]ArtifactCell, len(r.Cells))
	for i, c := range r.Cells {
		a.Cells[i] = ArtifactCell{
			Key:      c.Key,
			Params:   c.Cell.Params,
			Trials:   c.Trials,
			Failures: c.Failures,
			Stats:    c.Stats,
		}
	}
	return a
}

// MarshalArtifact renders the artifact as canonical indented JSON.
// encoding/json sorts map keys, so the bytes are a pure function of the
// artifact's content.
func MarshalArtifact(a *Artifact) ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalArtifact parses an artifact produced by MarshalArtifact and
// validates its schema version — the read side used by `meecc inspect`.
func UnmarshalArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	if a.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("exp: artifact schema version %d, want %d", a.SchemaVersion, SchemaVersion)
	}
	return &a, nil
}

// GitRev returns the repository's HEAD revision (with a "-dirty" suffix
// when the worktree has changes), or "unknown" outside a git checkout.
func GitRev() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	rev := strings.TrimSpace(string(out))
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(status) > 0 {
		rev += "-dirty"
	}
	return rev
}

// WriteArtifacts writes <name>.json (the deterministic artifact) and
// <name>.manifest.json (the run manifest) under dir, creating it if
// needed. It returns the two paths.
func WriteArtifacts(dir string, r *Report) (artifactPath, manifestPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	art, err := MarshalArtifact(r.Artifact())
	if err != nil {
		return "", "", fmt.Errorf("exp: marshalling artifact: %w", err)
	}
	artifactPath = filepath.Join(dir, r.Spec.Name+".json")
	if err := writeFile(artifactPath, art); err != nil {
		return "", "", err
	}

	sum := sha256.Sum256(art)
	man := &Manifest{
		SchemaVersion:  SchemaVersion,
		Name:           r.Spec.Name,
		Study:          r.Spec.Study,
		GitRev:         GitRev(),
		BaseSeed:       r.Spec.BaseSeed,
		SpecSHA256:     r.Spec.Hash(),
		Axes:           r.Spec.Axes,
		Cells:          len(r.Cells),
		TrialsPerCell:  r.Spec.Trials,
		FailedTrials:   r.Failures(),
		Partial:        r.Partial,
		Workers:        r.Workers,
		WallMS:         r.WallTime.Milliseconds(),
		CreatedAt:      time.Now().UTC().Format(time.RFC3339),
		ArtifactSHA256: hex.EncodeToString(sum[:]),
	}
	if man.Axes == nil {
		man.Axes = []Axis{}
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", "", fmt.Errorf("exp: marshalling manifest: %w", err)
	}
	manifestPath = filepath.Join(dir, r.Spec.Name+".manifest.json")
	if err := writeFile(manifestPath, append(mb, '\n')); err != nil {
		return "", "", err
	}
	return artifactPath, manifestPath, nil
}

// writeFile writes data, propagating Close errors (a short write can
// surface only at Close).
func writeFile(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}
