package exp

import (
	"context"
	"sync"
	"testing"

	"meecc/internal/obs"
)

// TestContextCancelStopsDispatch mirrors the Cancel-channel drain test
// through Config.Context: cancelling the context stops dispatch, in-flight
// trials drain, and the report comes back Partial with the cut-off trials
// skipped — Run itself never returns the context's error.
func TestContextCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	var once sync.Once
	runner := func(j Job) (Metrics, *obs.Snapshot, error) {
		started <- struct{}{}
		once.Do(func() { cancel(context.Canceled) })
		<-release
		return fakeRunner(j)
	}
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(gridSpec(), runner, Config{Workers: 2, Context: ctx})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	<-started
	close(release)
	rep := <-done
	if rep == nil {
		t.Fatal("no report")
	}
	if !rep.Partial {
		t.Fatal("context-cancelled run not flagged partial")
	}
	ran, skipped := 0, 0
	for _, tr := range rep.Trials {
		if tr.Err == SkippedErr {
			skipped++
		} else {
			ran++
		}
	}
	if skipped == 0 {
		t.Fatal("no trials skipped after context cancel")
	}
	if ran > 4 { // 2 workers in flight + at most the handed-off pair
		t.Fatalf("%d trials ran after cancel; dispatch did not stop", ran)
	}
}

// TestContextAlreadyDone: a context that expired before Run starts yields a
// fully skipped Partial report, not an error — the caller learns why from
// context.Cause, keeping cancellation out of the artifact's byte content.
func TestContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(gridSpec(), fakeRunner, Config{Workers: 2, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("report not partial")
	}
	for _, tr := range rep.Trials {
		if tr.Err != SkippedErr {
			t.Fatalf("trial %d/%d ran under a dead context", tr.Cell, tr.Trial)
		}
	}
}

// TestNilContextRunsToCompletion: Config.Context is optional; the zero
// Config behaves exactly as before the field existed.
func TestNilContextRunsToCompletion(t *testing.T) {
	rep, err := Run(gridSpec(), fakeRunner, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("uncancelled run flagged partial")
	}
}
