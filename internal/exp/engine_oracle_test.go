package exp

import (
	"bytes"
	"testing"

	"meecc/internal/core"
)

// TestEngineOracleArtifactsByteIdentical is the harness-level half of the
// epoch-kernel determinism proof: real channel and chaos studies, run once
// through the compiled epoch kernel (the default) and once with every cell
// forced onto the general DES engine, must aggregate to byte-identical
// artifacts — at more than one worker count, so the oracle also covers the
// scheduler's interleaving of epoch-eligible and ineligible cells. (Chaos
// cells with faults configured always take the general engine; the fault-free
// baseline arm is the epoch-eligible part that this test cross-checks.)
func TestEngineOracleArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations in -short mode")
	}
	specs := []*Spec{
		{
			Name:     "oracle-channel",
			Study:    "channel",
			BaseSeed: 42,
			Trials:   2,
			Params:   map[string]string{"bits": "16", "pattern": "alternating"},
			Axes:     []Axis{{Name: "window", Values: []string{"7500", "15000"}}},
		},
		{
			Name:     "oracle-chaos",
			Study:    "chaos",
			BaseSeed: 7,
			Trials:   1,
			Params:   map[string]string{"payload": "4", "faults": "meeflush"},
			Axes:     []Axis{{Name: "intensity", Values: []string{"0", "6"}}},
		},
	}
	render := func(spec *Spec, workers int) []byte {
		rep, err := RunSpec(spec, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if n := rep.Failures(); n > 0 {
			t.Fatalf("%s: %d trials failed", spec.Name, n)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, spec := range specs {
		for _, workers := range []int{1, 4} {
			epoch := render(spec, workers)
			core.SetForceGeneralEngineForTest(true)
			general := render(spec, workers)
			core.SetForceGeneralEngineForTest(false)
			if !bytes.Equal(epoch, general) {
				t.Errorf("%s workers=%d: epoch-kernel artifact differs from general-engine artifact",
					spec.Name, workers)
			}
		}
	}
}
