package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Hash returns the spec's content address: the hex SHA-256 of its canonical
// JSON rendering (fixed field order, sorted map keys). Equal hashes mean the
// spec produces byte-identical artifacts — every axis of the determinism
// contract (study, seeds, grid, trial count, metrics) is part of the JSON.
// It is recorded in run manifests and keys the serve service's run
// memoization.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on one.
		panic(fmt.Sprintf("exp: marshaling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CellMemoKey identifies one cell's complete trial results for memoization:
// two specs whose cells share a key are guaranteed identical TrialResult
// slices for that cell, whatever the specs are named. The key covers
// everything a cell's trials depend on — study, trial count, the seed
// derivation inputs (base seed and seed key), the merged parameter view, and
// the metrics flag.
func (s *Spec) CellMemoKey(c Cell) string {
	h := sha256.New()
	study := s.Study
	if study == "" {
		study = "channel" // RunnerFor's default; "" and "channel" are one study
	}
	fmt.Fprintf(h, "study=%d:%s;", len(study), study)
	fmt.Fprintf(h, "seed=%d;trials=%d;metrics=%t;", s.BaseSeed, s.Trials, s.Metrics)
	sk := s.SeedKey(c)
	fmt.Fprintf(h, "seedkey=%d:%s;", len(sk), sk)
	ck := c.Key()
	fmt.Fprintf(h, "cellkey=%d:%s;", len(ck), ck)
	pm := s.ParamMap(c)
	names := make([]string, 0, len(pm))
	for name := range pm {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "param=%d:%s=%d:%s;", len(name), name, len(pm[name]), pm[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}
