package exp

import (
	"bytes"
	"testing"

	"meecc/internal/core"
	"meecc/internal/obs"
)

func TestSeedKeyStripsSharedAxes(t *testing.T) {
	spec := &Spec{
		Name:   "sk",
		Trials: 1,
		Axes: []Axis{
			{Name: "window", Values: []string{"7500", "15000"}},
			{Name: "noise", Values: []string{"none", "memory"}},
		},
	}
	cells := spec.Cells()

	// No shared axes: SeedKey is the cell key.
	for _, c := range cells {
		if got := spec.SeedKey(c); got != c.Key() {
			t.Errorf("no shared axes: SeedKey %q != Key %q", got, c.Key())
		}
	}

	spec.SharedAxes = []string{"window"}
	if got := spec.SeedKey(cells[0]); got != "noise=none" {
		t.Errorf("SeedKey with window shared = %q, want %q", got, "noise=none")
	}

	spec.SharedAxes = []string{"window", "noise"}
	if got := spec.SeedKey(cells[0]); got != "-" {
		t.Errorf("SeedKey with all axes shared = %q, want %q", got, "-")
	}
}

func TestValidateSharedAxes(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:   "v",
			Trials: 1,
			Axes:   []Axis{{Name: "window", Values: []string{"7500"}}},
		}
	}
	ok := base()
	ok.SharedAxes = []string{"window"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid shared axis rejected: %v", err)
	}
	unknown := base()
	unknown.SharedAxes = []string{"noise"}
	if err := unknown.Validate(); err == nil {
		t.Error("shared axis naming a non-axis accepted")
	}
	dup := base()
	dup.SharedAxes = []string{"window", "window"}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate shared axis accepted")
	}
}

// TestSharedAxesPairSeeds checks the seed contract: trial t of two cells
// that differ only in a shared axis gets one seed (a paired comparison),
// while distinct trials still get distinct seeds.
func TestSharedAxesPairSeeds(t *testing.T) {
	spec := &Spec{
		Name:       "pair",
		Trials:     3,
		BaseSeed:   7,
		Axes:       []Axis{{Name: "window", Values: []string{"7500", "15000", "30000"}}},
		SharedAxes: []string{"window"},
	}
	runner := func(j Job) (Metrics, *obs.Snapshot, error) {
		return Metrics{"seed": float64(j.Seed)}, nil, nil
	}
	rep, err := Run(spec, runner, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[int]map[uint64]bool{}
	for _, tr := range rep.Trials {
		if seeds[tr.Trial] == nil {
			seeds[tr.Trial] = map[uint64]bool{}
		}
		seeds[tr.Trial][tr.Seed] = true
	}
	for trial, set := range seeds {
		if len(set) != 1 {
			t.Errorf("trial %d has %d distinct seeds across shared cells, want 1", trial, len(set))
		}
	}
	if seeds[0] == nil || seeds[1] == nil || len(seeds) != 3 {
		t.Fatalf("expected 3 trial indices, got %d", len(seeds))
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			for s := range seeds[a] {
				if seeds[b][s] {
					t.Errorf("trials %d and %d share seed %d", a, b, s)
				}
			}
		}
	}
}

// TestSharedAxesWarmMatchesFreshAcrossWorkers is the end-to-end guarantee
// for warm-state sharing: a shared-axis channel spec produces byte-identical
// artifacts at any worker count, and those artifacts are exactly what a
// runner that never touches the warm cache produces. The warm fork is an
// optimization, never an observable.
func TestSharedAxesWarmMatchesFreshAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel simulations in -short mode")
	}
	spec := &Spec{
		Name:       "shared-warm",
		Study:      "channel",
		BaseSeed:   42,
		Trials:     2,
		Params:     map[string]string{"bits": "16", "pattern": "alternating"},
		Axes:       []Axis{{Name: "window", Values: []string{"7500", "15000"}}},
		SharedAxes: []string{"window"},
	}
	fresh := func(j Job) (Metrics, *obs.Snapshot, error) {
		return core.ChannelTrial(j.Params(), j.Seed, j.Spec.Metrics)
	}

	var artifacts [][]byte
	run := func(label string, via func() (*Report, error)) {
		rep, err := via()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if n := rep.Failures(); n > 0 {
			t.Fatalf("%s: %d channel trials failed: %+v", label, n, rep.Trials)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		artifacts = append(artifacts, b)
	}
	run("warm workers=1", func() (*Report, error) { return RunSpec(spec, Config{Workers: 1}) })
	run("warm workers=4", func() (*Report, error) { return RunSpec(spec, Config{Workers: 4}) })
	run("fresh workers=2", func() (*Report, error) { return Run(spec, fresh, Config{Workers: 2}) })

	for i := 1; i < len(artifacts); i++ {
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Fatalf("artifact %d differs from warm workers=1 baseline:\n%s\n---\n%s",
				i, artifacts[0], artifacts[i])
		}
	}
}
