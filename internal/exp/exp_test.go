package exp

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"meecc/internal/obs"
	"meecc/internal/sim"
)

// fakeRunner is a pure function of the job — deterministic metrics derived
// from the seed, with a scripted failure for one (cell, trial) pair.
func fakeRunner(j Job) (Metrics, *obs.Snapshot, error) {
	if v, _ := j.Cell.Get("mode"); v == "flaky" && j.Trial == 1 {
		return nil, nil, errors.New("scripted setup failure")
	}
	x := SplitMix64(j.Seed)
	return Metrics{
		"rate": float64(x%10_000) / 100,
		"err":  float64((x>>32)%1000) / 1000,
	}, nil, nil
}

func gridSpec() *Spec {
	return &Spec{
		Name:     "unit",
		Study:    "fake",
		BaseSeed: 42,
		Trials:   5,
		Params:   map[string]string{"bits": "64"},
		Axes: []Axis{
			{Name: "window", Values: []string{"5000", "15000", "30000"}},
			{Name: "mode", Values: []string{"quiet", "flaky"}},
		},
	}
}

func TestCellsCrossProductOrder(t *testing.T) {
	spec := gridSpec()
	cells := spec.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	wantKeys := []string{
		"window=5000,mode=quiet", "window=5000,mode=flaky",
		"window=15000,mode=quiet", "window=15000,mode=flaky",
		"window=30000,mode=quiet", "window=30000,mode=flaky",
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Key() != wantKeys[i] {
			t.Errorf("cell %d key %q, want %q", i, c.Key(), wantKeys[i])
		}
	}
	// The axis-less spec has exactly one cell.
	solo := &Spec{Name: "solo", Trials: 1}
	if cells := solo.Cells(); len(cells) != 1 || cells[0].Key() != "-" {
		t.Errorf("axis-less spec cells = %+v", cells)
	}
}

func TestParamMapMergesAxesOverConstants(t *testing.T) {
	spec := gridSpec()
	spec.Params["mode"] = "overridden-by-axis"
	cell := spec.Cells()[0]
	m := spec.ParamMap(cell)
	if m["bits"] != "64" || m["window"] != "5000" || m["mode"] != "quiet" {
		t.Errorf("param map = %v", m)
	}
}

func TestTrialSeedDerivation(t *testing.T) {
	// Locked-in value: the derivation rule is part of the artifact
	// contract — changing it invalidates every recorded artifact.
	if got := TrialSeed(42, "window=15000", 0); got != TrialSeed(42, "window=15000", 0) {
		t.Fatal("TrialSeed is not a pure function")
	}
	seen := map[uint64]string{}
	for _, key := range []string{"a=1", "a=2", "b=1"} {
		for trial := 0; trial < 100; trial++ {
			s := TrialSeed(7, key, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s/%d and %s", key, trial, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", key, trial)
		}
	}
	if TrialSeed(1, "a=1", 0) == TrialSeed(2, "a=1", 0) {
		t.Error("base seed does not influence trial seed")
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	bad := []*Spec{
		{Trials: 1},            // no name
		{Name: "x", Trials: 0}, // no trials
		{Name: "x", Trials: 1, Axes: []Axis{{Name: "", Values: []string{"1"}}}},
		{Name: "x", Trials: 1, Axes: []Axis{{Name: "a", Values: nil}}},
		{Name: "x", Trials: 1, Axes: []Axis{{Name: "a", Values: []string{"1"}}, {Name: "a", Values: []string{"2"}}}},
		{Name: "x", Trials: 1, Axes: []Axis{{Name: "a", Values: []string{"1,2"}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not have", i)
		}
	}
	if _, err := ParseSpec([]byte(`{"name":"ok","trials":2,"axes":[{"name":"w","values":["1"]}]}`)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("garbage spec accepted")
	}
}

// TestDeterministicAcrossWorkerCounts is the harness's core guarantee:
// the same spec produces byte-identical aggregated JSON at workers=1 and
// workers=8.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := gridSpec()
	var artifacts [][]byte
	for _, w := range []int{1, 8} {
		rep, err := Run(spec, fakeRunner, Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Workers != w {
			t.Errorf("report workers %d, want %d", rep.Workers, w)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, b)
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		t.Fatalf("artifacts differ between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			artifacts[0], artifacts[1])
	}
}

func TestFailuresAreRecordedPerCell(t *testing.T) {
	rep, err := Run(gridSpec(), fakeRunner, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		mode, _ := c.Cell.Get("mode")
		wantFail := 0
		if mode == "flaky" {
			wantFail = 1 // trial 1 fails by script
		}
		if c.Failures != wantFail {
			t.Errorf("cell %s: %d failures, want %d", c.Key, c.Failures, wantFail)
		}
		if n := c.Stat("rate").N; n != c.Trials-wantFail {
			t.Errorf("cell %s: rate aggregated over %d trials, want %d", c.Key, n, c.Trials-wantFail)
		}
	}
	if rep.Failures() != 3 {
		t.Errorf("total failures %d, want 3 (one per flaky cell)", rep.Failures())
	}
	// Failed trials carry the error string in the per-trial record.
	found := false
	for _, tr := range rep.Trials {
		if tr.Err != "" {
			found = true
			if tr.Metrics != nil {
				t.Error("failed trial carries metrics")
			}
		}
	}
	if !found {
		t.Error("no failed trial recorded")
	}
}

func TestProgressReachesTotals(t *testing.T) {
	spec := gridSpec()
	var last Progress
	calls := 0
	_, err := Run(spec, fakeRunner, Config{Workers: 3, OnProgress: func(p Progress) {
		calls++
		last = p
	}})
	if err != nil {
		t.Fatal(err)
	}
	total := 6 * spec.Trials
	if calls != total {
		t.Errorf("progress called %d times, want %d", calls, total)
	}
	if last.Done != total || last.Total != total || last.CellsDone != 6 || last.Cells != 6 {
		t.Errorf("final progress %+v", last)
	}
	if last.ETA() != 0 {
		t.Errorf("final ETA %v, want 0", last.ETA())
	}
}

func TestAggregateStatistics(t *testing.T) {
	spec := &Spec{Name: "agg", Trials: 4}
	vals := map[int]float64{0: 1, 1: 2, 2: 3, 3: 6}
	rep, err := Run(spec, func(j Job) (Metrics, *obs.Snapshot, error) {
		return Metrics{"v": vals[j.Trial]}, nil, nil
	}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Cells[0].Stat("v")
	if s.N != 4 || s.Mean != 3 || s.Min != 1 || s.Max != 6 {
		t.Errorf("stat %+v", s)
	}
	wantSD := math.Sqrt((4 + 1 + 0 + 9) / 3.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("stddev %v, want %v", s.StdDev, wantSD)
	}
	if math.Abs(s.CI95-1.96*wantSD/2) > 1e-12 {
		t.Errorf("ci95 %v, want %v", s.CI95, 1.96*wantSD/2)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(&Spec{}, fakeRunner, Config{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Run(gridSpec(), nil, Config{}); err == nil {
		t.Error("nil runner accepted")
	}
	if _, err := RunnerFor("no-such-study"); err == nil {
		t.Error("unknown study accepted")
	}
	if _, err := RunnerFor(""); err != nil {
		t.Errorf("empty study should default to channel: %v", err)
	}
}

// TestGoldenArtifact locks the artifact and manifest schema. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/exp -run Golden after a
// deliberate, version-bumped schema change.
func TestGoldenArtifact(t *testing.T) {
	spec := &Spec{
		Name:     "golden",
		Study:    "fake",
		BaseSeed: 7,
		Trials:   2,
		Params:   map[string]string{"bits": "32"},
		Axes:     []Axis{{Name: "mode", Values: []string{"quiet", "flaky"}}},
	}
	rep, err := Run(spec, fakeRunner, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalArtifact(rep.Artifact())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_artifact.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("artifact schema drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteArtifactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep, err := Run(gridSpec(), fakeRunner, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	artPath, manPath, err := WriteArtifacts(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	art, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema_version": 1`, `"cells":`, `"trials":`, `"base_seed": 42`} {
		if !strings.Contains(string(art), want) {
			t.Errorf("artifact missing %s", want)
		}
	}
	for _, want := range []string{`"schema_version": 1`, `"git_rev"`, `"workers"`, `"wall_ms"`, `"artifact_sha256"`} {
		if !strings.Contains(string(man), want) {
			t.Errorf("manifest missing %s", want)
		}
	}
}

func TestPanickingTrialIsRecordedNotFatal(t *testing.T) {
	runner := func(j Job) (Metrics, *obs.Snapshot, error) {
		if v, _ := j.Cell.Get("mode"); v == "flaky" && j.Trial == 2 {
			panic("trial blew up")
		}
		return fakeRunner(j)
	}
	rep, err := Run(gridSpec(), runner, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	panicked := 0
	for _, tr := range rep.Trials {
		if strings.Contains(tr.Err, "trial blew up") {
			panicked++
			if !strings.Contains(tr.Err, "runTrial") && !strings.Contains(tr.Err, "goroutine") {
				t.Errorf("panic record carries no stack trace: %q", tr.Err[:80])
			}
		}
	}
	// One flaky-mode cell per window value, trial 2 of each.
	if panicked != 3 {
		t.Fatalf("recorded %d panicked trials, want 3", panicked)
	}
	// The panicking cells also have their scripted trial-1 failure.
	for _, c := range rep.Cells {
		if v, _ := c.Cell.Get("mode"); v == "flaky" && c.Failures != 2 {
			t.Fatalf("cell %s: %d failures, want 2 (scripted + panic)", c.Key, c.Failures)
		}
	}
}

func TestCancelDrainsAndFlagsPartial(t *testing.T) {
	cancel := make(chan struct{})
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	var once sync.Once
	runner := func(j Job) (Metrics, *obs.Snapshot, error) {
		started <- struct{}{}
		once.Do(func() { close(cancel) }) // cancel as soon as the first trial runs
		<-release
		return fakeRunner(j)
	}
	spec := gridSpec()
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(spec, runner, Config{Workers: 2, Cancel: cancel})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	// Wait for the workers to pick up their in-flight trials, then let them
	// drain. With 2 workers at most 2-3 trials ever start (one per worker
	// plus at most one more the dispatcher had already queued).
	<-started
	close(release)
	rep := <-done
	if rep == nil {
		t.Fatal("no report")
	}
	if !rep.Partial {
		t.Fatal("cancelled run not flagged partial")
	}
	ran, skipped := 0, 0
	for _, tr := range rep.Trials {
		switch {
		case tr.Err == SkippedErr:
			skipped++
		case tr.Err == "" && tr.Metrics != nil:
			ran++
		case strings.Contains(tr.Err, "scripted"):
			ran++
		default:
			t.Fatalf("trial %+v neither ran nor skipped", tr)
		}
	}
	if skipped == 0 || ran == 0 {
		t.Fatalf("ran=%d skipped=%d, want both nonzero", ran, skipped)
	}
	if ran+skipped != len(rep.Trials) {
		t.Fatalf("ran+skipped=%d != %d trials", ran+skipped, len(rep.Trials))
	}
	if ran > 4 {
		t.Fatalf("%d trials ran after cancel; drain did not stop dispatch", ran)
	}
	// Skipped trials count as failures so aggregates stay honest.
	if rep.Failures() < skipped {
		t.Fatalf("failures %d < skipped %d", rep.Failures(), skipped)
	}
	// And the artifact carries the flag.
	if !rep.Artifact().Partial {
		t.Fatal("artifact not flagged partial")
	}
}

// TestChaosArtifactByteIdenticalAcrossWorkers is the chaos-study acceptance
// check: identical artifact bytes at any worker count, faults and all.
func TestChaosArtifactByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spec := &Spec{
		Name:     "chaos-det",
		Study:    "chaos",
		BaseSeed: 7,
		Trials:   1,
		Params:   map[string]string{"payload": "4", "faults": "meeflush"},
		Axes:     []Axis{{Name: "intensity", Values: []string{"0", "6"}}},
	}
	render := func(workers int) []byte {
		rep, err := RunSpec(spec, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalArtifact(rep.Artifact())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := render(1), render(4); !bytes.Equal(a, b) {
		t.Fatal("chaos artifacts differ between 1 and 4 workers")
	}
}

// TestActorPanicCarriesActorNameAndStack exercises the typed-panic
// cooperation between the simulation engine and the harness: a panic inside
// a simulated actor crosses Engine.Run as a *sim.PanicError, and runTrial
// must report the actor's name and the actor goroutine's original stack —
// not the worker goroutine's resume plumbing.
func TestActorPanicCarriesActorNameAndStack(t *testing.T) {
	runner := func(j Job) (Metrics, *obs.Snapshot, error) {
		if v, _ := j.Cell.Get("mode"); v == "flaky" {
			eng := sim.NewEngine(j.Seed)
			defer eng.Close()
			eng.Spawn("detonator", func(p *sim.Proc) {
				p.Advance(10)
				panic("actor kaboom")
			})
			eng.Run(-1)
		}
		return fakeRunner(j)
	}
	rep, err := Run(gridSpec(), runner, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tr := range rep.Trials {
		if !strings.Contains(tr.Err, "actor kaboom") {
			continue
		}
		found++
		if !strings.Contains(tr.Err, `actor "detonator"`) {
			t.Errorf("panic record lost the actor name: %q", tr.Err)
		}
		// The stack must be the actor's own, taken at the panic site.
		if !strings.Contains(tr.Err, "exp_test.go") || !strings.Contains(tr.Err, "run.func") && !strings.Contains(tr.Err, "goroutine") {
			t.Errorf("panic record carries no actor stack: %q", tr.Err)
		}
	}
	if found == 0 {
		t.Fatal("no trial recorded the actor panic")
	}
}
