package cpucache

import (
	"testing"

	"meecc/internal/cache"
	"meecc/internal/dram"
	"meecc/internal/obs"
)

// TestWarmAccessAllocFree pins the hierarchy's allocation-free fast path:
// hits at any level must not touch the heap.
func TestWarmAccessAllocFree(t *testing.T) {
	h := New(DefaultConfig(2), cache.NewLRU())
	var line [dram.LineSize]byte
	h.Fill(0, 0x1000, line, false)
	h.Fill(0, 0x2000, line, false)
	allocs := testing.AllocsPerRun(200, func() {
		if lvl, _ := h.Access(0, 0x1000, false); lvl == Miss {
			t.Fatal("expected warm hit")
		}
		h.Access(0, 0x2000, true)
		h.Access(1, 0x1000, false) // cross-core: refill from LLC
	})
	if allocs != 0 {
		t.Fatalf("warm Access allocated %.1f times per run, want 0", allocs)
	}
}

// TestWarmAccessAllocFreeWithMetrics re-pins the hit fast path with live
// instrumentation attached: the hierarchy's metrics are deferred samples plus
// pool counters, so enabling them must not move the allocation needle.
func TestWarmAccessAllocFreeWithMetrics(t *testing.T) {
	h := New(DefaultConfig(2), cache.NewLRU())
	o := obs.NewObserver()
	h.Observe(o)
	var line [dram.LineSize]byte
	h.Fill(0, 0x1000, line, false)
	h.Fill(0, 0x2000, line, false)
	allocs := testing.AllocsPerRun(200, func() {
		if lvl, _ := h.Access(0, 0x1000, false); lvl == Miss {
			t.Fatal("expected warm hit")
		}
		h.Access(0, 0x2000, true)
		h.Access(1, 0x1000, false)
		h.Flush(0x2000)
		h.Fill(0, 0x2000, line, false)
	})
	if allocs != 0 {
		t.Fatalf("instrumented warm Access allocated %.1f times per run, want 0", allocs)
	}
	snap := o.Snapshot()
	if snap.Counters["cache.l1.hits"] == 0 {
		t.Error("aggregated L1 hit sample missing")
	}
	if snap.Counters["cpucache.flushes"] == 0 {
		t.Error("flush counter missing")
	}
}

// TestForkAllocsIndependentOfResidency pins the arena-backed Fork: cloning
// the hierarchy is a fixed set of slab allocations plus one memcpy, so the
// allocation count must not scale with how many lines are resident. A
// per-line clone loop would fail this immediately.
func TestForkAllocsIndependentOfResidency(t *testing.T) {
	forkAllocs := func(lines int) float64 {
		h := New(DefaultConfig(2), cache.NewLRU())
		var line [dram.LineSize]byte
		for i := 0; i < lines; i++ {
			h.Fill(0, dram.Addr(0x10000+i*dram.LineSize), line, i%2 == 0)
		}
		return testing.AllocsPerRun(20, func() { h.Fork(nil) })
	}
	few, many := forkAllocs(2), forkAllocs(512)
	if few != many {
		t.Fatalf("Fork allocations scale with residency: %.1f at 2 lines vs %.1f at 512", few, many)
	}
}

// TestFillFlushSteadyStateAllocFree exercises the miss/evict churn: once the
// lineBuf pool has reached its high-water mark, Fill and Flush recycle
// buffers and reuse the scratch Victim instead of allocating.
func TestFillFlushSteadyStateAllocFree(t *testing.T) {
	h := New(DefaultConfig(1), cache.NewLRU())
	var line [dram.LineSize]byte
	addr := func(i int) dram.Addr { return dram.Addr(0x10000 + i*dram.LineSize) }
	for i := 0; i < 64; i++ { // warm-up grows the pool
		h.Fill(0, addr(i), line, i%2 == 0)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		h.Flush(addr(i % 64))
		h.Fill(0, addr(i%64), line, true)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Fill/Flush churn allocated %.1f times per run, want 0", allocs)
	}
}
