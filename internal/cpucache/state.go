package cpucache

import (
	"fmt"

	"meecc/internal/cache"
	"meecc/internal/dram"
)

// LineBufState is one LLC-resident plaintext line buffer in a serialized
// hierarchy image, addressed by its dense [set*ways+way] slot.
type LineBufState struct {
	Idx   int
	Data  [dram.LineSize]byte
	Dirty bool
}

// State is the serializable image of a Hierarchy: every cache level plus the
// plaintext line buffers. The config is not stored — it comes back from the
// platform-level machine config at decode time.
type State struct {
	L1   []*cache.State
	L2   []*cache.State
	LLC  *cache.State
	Bufs []LineBufState // ascending Idx
}

// ExportState captures the hierarchy as a deep-copied State.
func (h *Hierarchy) ExportState() *State {
	st := &State{LLC: h.llc.ExportState()}
	for _, c := range h.l1 {
		st.L1 = append(st.L1, c.ExportState())
	}
	for _, c := range h.l2 {
		st.L2 = append(st.L2, c.ExportState())
	}
	for i := range h.bufs {
		b := &h.bufs[i]
		if !b.valid {
			continue
		}
		st.Bufs = append(st.Bufs, LineBufState{Idx: i, Data: b.data, Dirty: b.dirty})
	}
	return st
}

// HierarchyFromState rebuilds a frozen hierarchy from a serialized image.
// The result never runs directly — Fork rebinds randomized policies to a
// live engine stream. Geometry mismatches against cfg are errors.
func HierarchyFromState(cfg Config, st *State) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpucache: invalid core count %d", cfg.Cores)
	}
	if len(st.L1) != cfg.Cores || len(st.L2) != cfg.Cores {
		return nil, fmt.Errorf("cpucache: %d/%d private cache states, want %d", len(st.L1), len(st.L2), cfg.Cores)
	}
	if st.LLC == nil {
		return nil, fmt.Errorf("cpucache: missing LLC state")
	}
	if st.LLC.Sets != cfg.LLCSets || st.LLC.Ways != cfg.LLCWays {
		return nil, fmt.Errorf("cpucache: LLC state %dx%d does not match config %dx%d",
			st.LLC.Sets, st.LLC.Ways, cfg.LLCSets, cfg.LLCWays)
	}
	llc, err := cache.FromState(st.LLC, nil)
	if err != nil {
		return nil, fmt.Errorf("cpucache: %w", err)
	}
	h := &Hierarchy{
		cfg:  cfg,
		llc:  llc,
		bufs: make([]lineBuf, cfg.LLCSets*cfg.LLCWays),
	}
	for i := 0; i < cfg.Cores; i++ {
		if st.L1[i] == nil || st.L2[i] == nil {
			return nil, fmt.Errorf("cpucache: missing private cache state for core %d", i)
		}
		if st.L1[i].Sets != cfg.L1Sets || st.L1[i].Ways != cfg.L1Ways ||
			st.L2[i].Sets != cfg.L2Sets || st.L2[i].Ways != cfg.L2Ways {
			return nil, fmt.Errorf("cpucache: core %d private cache geometry mismatch", i)
		}
		l1, err := cache.FromState(st.L1[i], nil)
		if err != nil {
			return nil, fmt.Errorf("cpucache: %w", err)
		}
		l2, err := cache.FromState(st.L2[i], nil)
		if err != nil {
			return nil, fmt.Errorf("cpucache: %w", err)
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	last := -1
	for _, b := range st.Bufs {
		if b.Idx <= last || b.Idx >= len(h.bufs) {
			return nil, fmt.Errorf("cpucache: buffer slot %d out of order or range", b.Idx)
		}
		last = b.Idx
		// The serialized image does not carry private-cache presence, so
		// restore with the conservative all-cores mask.
		h.bufs[b.Idx] = lineBuf{data: b.Data, dirty: b.Dirty, valid: true, cores: h.allCores()}
	}
	return h, nil
}
