// Package cpucache models the on-chip CPU cache hierarchy: per-core L1D and
// L2 plus a shared, inclusive last-level cache. The covert channel needs it
// for two reasons: enclave lines that hit in these caches never reach the
// MEE (challenge 1 in Section 3 of the paper), and clflush — which evicts a
// line from every level but does NOT touch the MEE cache — is what forces
// every probe to take the main-memory path.
//
// Functionally, the hierarchy keeps a plaintext mirror of every resident
// line; protected-region lines are decrypted by the MEE on fill and
// re-encrypted on dirty writeback, so DRAM only ever holds ciphertext for
// the protected region.
package cpucache

import (
	"fmt"
	"math/rand/v2"

	"meecc/internal/cache"
	"meecc/internal/dram"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

// Level identifies where an access hit.
type Level int

const (
	HitL1 Level = iota
	HitL2
	HitLLC
	Miss
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	default:
		return "miss"
	}
}

// Config describes the hierarchy's geometry and latencies (cycles). The
// defaults model the paper's i7-6700K (Skylake): 32 KB 8-way L1D, 256 KB
// 4-way L2, 8 MB 16-way shared inclusive LLC.
type Config struct {
	Cores   int
	L1Sets  int
	L1Ways  int
	L2Sets  int
	L2Ways  int
	LLCSets int
	LLCWays int

	L1Lat    float64
	L2Lat    float64
	LLCLat   float64
	MissLat  float64 // traversal cost charged before the memory system takes over
	FlushLat float64 // clflush cost as observed by the issuing core
}

// DefaultConfig returns the Skylake-like geometry for the given core count.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:  cores,
		L1Sets: 64, L1Ways: 8,
		L2Sets: 1024, L2Ways: 4,
		LLCSets: 8192, LLCWays: 16,
		L1Lat: 4, L2Lat: 14, LLCLat: 42, MissLat: 50, FlushLat: 35,
	}
}

// Victim is a line leaving the hierarchy toward memory. Pointers returned by
// Fill and Flush alias a scratch field inside the Hierarchy and are valid
// only until the next Fill, Flush, or Repage-driven drop; callers must
// consume (or copy) the victim before touching the hierarchy again.
type Victim struct {
	Addr  dram.Addr
	Data  [dram.LineSize]byte
	Dirty bool
}

type lineBuf struct {
	data  [dram.LineSize]byte
	dirty bool
	// valid marks the slot occupied; the slot index is implied by position
	// in the dense [set*ways+way] slab.
	valid bool
	// cores is a conservative mask of cores whose private L1/L2 may still
	// hold the line: a set bit means "maybe present", a clear bit means
	// "definitely absent". It lets flushes and back-invalidations skip the
	// private-cache scans that would find nothing — pure host-side
	// bookkeeping with no effect on simulated state or statistics (a no-op
	// Invalidate touches neither replacement state nor counters).
	cores uint16
}

// Hierarchy is the multi-core cache stack. Not safe for concurrent use; the
// simulation engine serializes all actors.
type Hierarchy struct {
	cfg Config
	l1  []*cache.Cache
	l2  []*cache.Cache
	llc *cache.Cache
	// bufs mirrors plaintext content and dirtiness of every LLC-resident
	// line (inclusive LLC means LLC residency == hierarchy residency). It is
	// one contiguous value slab indexed [set*ways+way] in parallel with the
	// LLC's line storage: the hot-path lookup is an array index, dropping a
	// line is clearing its valid bit, and Fork is a single slab copy.
	bufs []lineBuf
	// freeBufs tracks how deep the pointer-era recycling free list would be,
	// so the linebuf alloc/recycled observability counters keep their exact
	// historical semantics now that slots are slab-resident.
	freeBufs int
	// victim is the scratch Victim that Fill/Flush drops fill.
	victim Victim

	// Observability (nil when disabled): free-list churn and clflush
	// counters; per-level cache statistics surface as deferred samples.
	cBufAlloc   *obs.Counter
	cBufRecycle *obs.Counter
	cFlush      *obs.Counter
}

// countInstall and countDrop keep the linebuf churn counters bit-compatible
// with the pointer-era free list: an install recycles when a drop preceded
// it, and allocates otherwise.
func (h *Hierarchy) countInstall() {
	if h.freeBufs > 0 {
		h.freeBufs--
		h.cBufRecycle.Inc()
		return
	}
	h.cBufAlloc.Inc()
}

func (h *Hierarchy) countDrop() { h.freeBufs++ }

// allCores is the mask with every core's bit set.
func (h *Hierarchy) allCores() uint16 { return uint16(1)<<h.cfg.Cores - 1 }

// New builds the hierarchy; policy applies to all levels (LRU by default in
// the platform).
func New(cfg Config, policy cache.Policy) *Hierarchy {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("cpucache: invalid core count %d", cfg.Cores))
	}
	if cfg.Cores > 16 {
		panic(fmt.Sprintf("cpucache: core count %d exceeds presence-mask width", cfg.Cores))
	}
	h := &Hierarchy{
		cfg:  cfg,
		llc:  cache.New("llc", cfg.LLCSets, cfg.LLCWays, policy),
		bufs: make([]lineBuf, cfg.LLCSets*cfg.LLCWays),
	}
	for c := 0; c < cfg.Cores; c++ {
		h.l1 = append(h.l1, cache.New(fmt.Sprintf("l1d-%d", c), cfg.L1Sets, cfg.L1Ways, policy))
		h.l2 = append(h.l2, cache.New(fmt.Sprintf("l2-%d", c), cfg.L2Sets, cfg.L2Ways, policy))
	}
	return h
}

// Fork returns an independent deep copy of the hierarchy — every cache
// level's lines, replacement state and statistics, plus the plaintext line
// buffers — for platform forking. rng rebinds randomized replacement
// policies to the fork's stream. Observability is not carried over.
func (h *Hierarchy) Fork(rng *rand.Rand) *Hierarchy {
	n := &Hierarchy{
		cfg:  h.cfg,
		llc:  h.llc.Clone(rng),
		bufs: make([]lineBuf, len(h.bufs)),
	}
	for _, c := range h.l1 {
		n.l1 = append(n.l1, c.Clone(rng))
	}
	for _, c := range h.l2 {
		n.l2 = append(n.l2, c.Clone(rng))
	}
	copy(n.bufs, h.bufs) // value slab: one memcpy clones every resident line
	return n
}

// bufIdx maps an LLC location to its slot in the dense buffer array.
func (h *Hierarchy) bufIdx(set, way int) int { return set*h.cfg.LLCWays + way }

// residentBuf returns the buffer of an LLC-resident line without touching
// replacement state or statistics, or nil when absent.
func (h *Hierarchy) residentBuf(addr dram.Addr) *lineBuf {
	set := h.set(h.llc, addr)
	way, ok := h.llc.WayOf(set, h.tag(addr))
	if !ok {
		return nil
	}
	if b := &h.bufs[h.bufIdx(set, way)]; b.valid {
		return b
	}
	return nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Observe attaches an observer: the shared LLC gets the full per-cache
// sample set, the per-core L1/L2 stats are aggregated into summed samples,
// and the hot path gains only nil-checked counters for line-buffer churn and
// clflush. Safe to call with nil.
func (h *Hierarchy) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	h.llc.Observe(o, "llc")
	agg := func(name string, field func(cache.Stats) uint64, caches []*cache.Cache) {
		o.Sample(name, obs.Semantic, func() uint64 {
			var n uint64
			for _, c := range caches {
				n += field(c.Stats())
			}
			return n
		})
	}
	agg("cache.l1.hits", func(s cache.Stats) uint64 { return s.Hits }, h.l1)
	agg("cache.l1.misses", func(s cache.Stats) uint64 { return s.Misses }, h.l1)
	agg("cache.l2.hits", func(s cache.Stats) uint64 { return s.Hits }, h.l2)
	agg("cache.l2.misses", func(s cache.Stats) uint64 { return s.Misses }, h.l2)
	h.cBufAlloc = o.Counter("cpucache.linebuf.alloc")
	h.cBufRecycle = o.Counter("cpucache.linebuf.recycled")
	h.cFlush = o.Counter("cpucache.flushes")
}

// LLC exposes the shared cache for statistics and tests.
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// L1 exposes a core's L1D for tests.
func (h *Hierarchy) L1(core int) *cache.Cache { return h.l1[core] }

func lineAddr(addr dram.Addr) dram.Addr { return addr &^ (dram.LineSize - 1) }

func (h *Hierarchy) set(c *cache.Cache, addr dram.Addr) int {
	return int((uint64(addr) / dram.LineSize) % uint64(c.Sets()))
}

func (h *Hierarchy) tag(addr dram.Addr) cache.Tag {
	return cache.Tag(uint64(addr) / dram.LineSize)
}

// Access looks addr up for core. On any hit it refreshes the line into the
// upper levels, applies the write (marking the line dirty), and returns the
// hit level plus lookup latency. On a miss it returns (Miss, MissLat); the
// caller must fetch the line from the memory system and call Fill.
//
// Writes invalidate the line from every other core's private caches
// (MESI-style write-invalidate), so a reader on another core re-fetches
// from the LLC — the timing that makes the Figure 2(c) hyperthread timer
// cost its ~50 cycles per read.
func (h *Hierarchy) Access(core int, addr dram.Addr, write bool) (Level, sim.Cycles) {
	addr = lineAddr(addr)
	tag := h.tag(addr)
	lvl := Miss
	var lat sim.Cycles
	switch {
	case h.l1[core].Lookup(h.set(h.l1[core], addr), tag):
		h.touchShared(core, addr) // keep L2/LLC recency in sync
		lvl, lat = HitL1, sim.Cycles(h.cfg.L1Lat)
	case h.l2[core].Lookup(h.set(h.l2[core], addr), tag):
		h.l1[core].Insert(h.set(h.l1[core], addr), tag, false)
		h.llc.Lookup(h.set(h.llc, addr), tag)
		lvl, lat = HitL2, sim.Cycles(h.cfg.L2Lat)
	default:
		set := h.set(h.llc, addr)
		way, hit := h.llc.LookupWay(set, tag)
		if !hit {
			return Miss, sim.Cycles(h.cfg.MissLat)
		}
		h.l2[core].Insert(h.set(h.l2[core], addr), tag, false)
		h.l1[core].Insert(h.set(h.l1[core], addr), tag, false)
		h.bufs[h.bufIdx(set, way)].cores |= 1 << uint(core) // now privately resident here too
		lvl, lat = HitLLC, sim.Cycles(h.cfg.LLCLat)
	}
	if write {
		if b := h.residentBuf(addr); b != nil {
			b.dirty = true
			h.invalidateOthers(core, addr, b.cores)
			b.cores = 1 << uint(core) // sole private holder after write-invalidate
		} else {
			h.invalidateOthers(core, addr, h.allCores())
		}
	}
	return lvl, lat
}

// invalidateOthers drops the line from every core's private caches except
// the writer's; the line stays in the shared LLC. mask bounds the cores that
// can hold the line — scans for cores with a clear bit are guaranteed misses
// (no state or stat effect) and are skipped.
func (h *Hierarchy) invalidateOthers(writer int, addr dram.Addr, mask uint16) {
	tag := h.tag(addr)
	for c := 0; c < h.cfg.Cores; c++ {
		if c == writer || mask&(1<<uint(c)) == 0 {
			continue
		}
		h.l1[c].Invalidate(h.set(h.l1[c], addr), tag)
		h.l2[c].Invalidate(h.set(h.l2[c], addr), tag)
	}
}

func (h *Hierarchy) touchShared(core int, addr dram.Addr) {
	tag := h.tag(addr)
	h.l2[core].Lookup(h.set(h.l2[core], addr), tag)
	h.llc.Lookup(h.set(h.llc, addr), tag)
}

// Data returns the plaintext view of a resident line, or nil if the line is
// not cached. The returned slice aliases internal state; writes through it
// must be paired with a write Access so dirtiness is tracked.
func (h *Hierarchy) Data(addr dram.Addr) *[dram.LineSize]byte {
	if b := h.residentBuf(lineAddr(addr)); b != nil {
		return &b.data
	}
	return nil
}

// Fill installs a line fetched from the memory system into all three levels
// for core, returning any LLC victim that must be written back to memory.
// Inclusive-LLC semantics: the victim is back-invalidated from every core's
// private caches.
func (h *Hierarchy) Fill(core int, addr dram.Addr, data [dram.LineSize]byte, dirty bool) *Victim {
	addr = lineAddr(addr)
	tag := h.tag(addr)
	var victim *Victim
	set := h.set(h.llc, addr)
	way, ev := h.llc.InsertWay(set, tag, false)
	idx := h.bufIdx(set, way)
	mask := uint16(1) << uint(core)
	if ev.Valid {
		// The victim's buffer sits in the slot the new line just took; copy
		// it out before overwriting, then back-invalidate the private caches
		// (the LLC entry is already gone — Insert replaced it). The victim's
		// presence mask bounds which cores can still hold it privately.
		evAddr := dram.Addr(uint64(ev.Tag) * dram.LineSize)
		evTag := h.tag(evAddr)
		evb := h.bufs[idx]
		evMask := evb.cores
		if !evb.valid {
			evMask = h.allCores()
		}
		for c := 0; c < h.cfg.Cores; c++ {
			if evMask&(1<<uint(c)) == 0 {
				continue
			}
			h.l1[c].Invalidate(h.set(h.l1[c], evAddr), evTag)
			h.l2[c].Invalidate(h.set(h.l2[c], evAddr), evTag)
		}
		if evb.valid {
			h.victim = Victim{Addr: evAddr, Data: evb.data, Dirty: evb.dirty}
			h.countDrop()
			victim = &h.victim
		}
	} else if b := &h.bufs[idx]; b.valid {
		// Re-filling a still-resident line: other cores may hold it
		// privately, so their mask bits must survive.
		mask |= b.cores
	}
	h.l2[core].Insert(h.set(h.l2[core], addr), tag, false)
	h.l1[core].Insert(h.set(h.l1[core], addr), tag, false)
	h.countInstall()
	h.bufs[idx] = lineBuf{data: data, dirty: dirty, valid: true, cores: mask}
	return victim
}

// dropLine removes a line everywhere and returns it as a Victim (nil if the
// line had no buffer, which cannot happen in a consistent hierarchy). The
// returned pointer aliases the hierarchy's scratch Victim.
func (h *Hierarchy) dropLine(addr dram.Addr) *Victim {
	tag := h.tag(addr)
	set := h.set(h.llc, addr)
	way, _ := h.llc.InvalidateWay(set, tag)
	if way < 0 {
		// Not in the inclusive LLC; sweep the private caches anyway (the
		// historical behavior — a guaranteed no-op in a consistent hierarchy).
		for c := 0; c < h.cfg.Cores; c++ {
			h.l1[c].Invalidate(h.set(h.l1[c], addr), tag)
			h.l2[c].Invalidate(h.set(h.l2[c], addr), tag)
		}
		return nil
	}
	idx := h.bufIdx(set, way)
	b := h.bufs[idx]
	h.bufs[idx] = lineBuf{}
	mask := b.cores
	if !b.valid {
		mask = h.allCores()
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		h.l1[c].Invalidate(h.set(h.l1[c], addr), tag)
		h.l2[c].Invalidate(h.set(h.l2[c], addr), tag)
	}
	if !b.valid {
		return nil
	}
	h.countDrop()
	h.victim = Victim{Addr: addr, Data: b.data, Dirty: b.dirty}
	return &h.victim
}

// Flush implements clflush: the line is invalidated from every level of
// every core. It returns the victim (nil if the line was not cached) and
// the latency charged to the issuing core. The MEE cache is unaffected —
// that asymmetry is the paper's challenge 1.
func (h *Hierarchy) Flush(addr dram.Addr) (*Victim, sim.Cycles) {
	addr = lineAddr(addr)
	h.cFlush.Inc()
	lat := sim.Cycles(h.cfg.FlushLat)
	if h.residentBuf(addr) == nil {
		return nil, lat
	}
	return h.dropLine(addr), lat
}

// Resident reports whether addr's line is anywhere in the hierarchy.
func (h *Hierarchy) Resident(addr dram.Addr) bool {
	return h.residentBuf(lineAddr(addr)) != nil
}
