package cpucache

import (
	"testing"

	"meecc/internal/cache"
	"meecc/internal/dram"
)

func newH() *Hierarchy {
	return New(DefaultConfig(4), cache.NewLRU())
}

func line(val byte) (l [dram.LineSize]byte) {
	for i := range l {
		l[i] = val
	}
	return
}

func TestMissThenFillThenHitsL1(t *testing.T) {
	h := newH()
	lv, _ := h.Access(0, 0x1000, false)
	if lv != Miss {
		t.Fatalf("cold access %v, want miss", lv)
	}
	if v := h.Fill(0, 0x1000, line(7), false); v != nil {
		t.Fatalf("fill produced victim %+v", v)
	}
	lv, lat := h.Access(0, 0x1000, false)
	if lv != HitL1 {
		t.Fatalf("refetch %v, want L1", lv)
	}
	if lat != 4 {
		t.Fatalf("L1 latency %d", lat)
	}
	if d := h.Data(0x1000); d == nil || d[0] != 7 {
		t.Fatal("plaintext mirror wrong")
	}
}

func TestCrossCoreHitsInLLC(t *testing.T) {
	h := newH()
	h.Fill(0, 0x2000, line(1), false)
	lv, lat := h.Access(1, 0x2000, false)
	if lv != HitLLC {
		t.Fatalf("other-core access %v, want LLC", lv)
	}
	if lat != 42 {
		t.Fatalf("LLC latency %d", lat)
	}
	// Now core 1 has it in L1 too.
	if lv, _ := h.Access(1, 0x2000, false); lv != HitL1 {
		t.Fatalf("after promotion got %v", lv)
	}
}

func TestUnalignedAddressesShareLine(t *testing.T) {
	h := newH()
	h.Fill(0, 0x3000, line(9), false)
	if lv, _ := h.Access(0, 0x303F, false); lv != HitL1 {
		t.Fatalf("same-line offset access %v, want L1", lv)
	}
	if lv, _ := h.Access(0, 0x3040, false); lv != Miss {
		t.Fatalf("next-line access %v, want miss", lv)
	}
}

func TestFlushInvalidatesEverywhere(t *testing.T) {
	h := newH()
	h.Fill(0, 0x4000, line(3), false)
	h.Access(1, 0x4000, false) // promote into core 1's privates
	v, lat := h.Flush(0x4000)
	if v == nil || v.Dirty {
		t.Fatalf("flush victim %+v, want clean line", v)
	}
	if lat != 35 {
		t.Fatalf("flush latency %d", lat)
	}
	for core := 0; core < 2; core++ {
		if lv, _ := h.Access(core, 0x4000, false); lv != Miss {
			t.Fatalf("core %d still hits at %v after clflush", core, lv)
		}
	}
	if h.Resident(0x4000) {
		t.Fatal("line still resident after flush")
	}
}

func TestFlushAbsentLineIsNoopVictim(t *testing.T) {
	h := newH()
	v, _ := h.Flush(0x5000)
	if v != nil {
		t.Fatalf("flush of absent line returned %+v", v)
	}
}

func TestWriteMarksDirtyAndFlushReturnsData(t *testing.T) {
	h := newH()
	h.Fill(0, 0x6000, line(0), false)
	h.Access(0, 0x6000, true)
	d := h.Data(0x6000)
	d[5] = 0xEE
	v, _ := h.Flush(0x6000)
	if v == nil || !v.Dirty {
		t.Fatalf("victim %+v, want dirty", v)
	}
	if v.Data[5] != 0xEE {
		t.Fatal("dirty data lost on flush")
	}
}

func TestInclusiveLLCEvictionBackInvalidates(t *testing.T) {
	cfg := DefaultConfig(2)
	// Tiny LLC: 1 set, 2 ways, so the third distinct line evicts.
	cfg.LLCSets, cfg.LLCWays = 1, 2
	h := New(cfg, cache.NewLRU())
	h.Fill(0, 0x0000, line(1), false)
	h.Fill(0, 0x1000, line(2), false)
	v := h.Fill(0, 0x2000, line(3), false)
	if v == nil || v.Addr != 0x0000 {
		t.Fatalf("LLC eviction victim %+v, want line 0x0", v)
	}
	// Back-invalidation: line 0 must be gone from core 0's L1 even though
	// the L1 set had room.
	if lv, _ := h.Access(0, 0x0000, false); lv != Miss {
		t.Fatalf("back-invalidated line still hits at %v", lv)
	}
}

func TestDirtyLLCVictimCarriesData(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LLCSets, cfg.LLCWays = 1, 1
	h := New(cfg, cache.NewLRU())
	h.Fill(0, 0x0000, line(1), false)
	h.Access(0, 0x0000, true)
	h.Data(0x0000)[0] = 0xAA
	v := h.Fill(0, 0x1000, line(2), false)
	if v == nil || !v.Dirty || v.Data[0] != 0xAA {
		t.Fatalf("dirty victim %+v", v)
	}
}

func TestFillWithDirtyFlag(t *testing.T) {
	h := newH()
	h.Fill(0, 0x7000, line(1), true)
	v, _ := h.Flush(0x7000)
	if v == nil || !v.Dirty {
		t.Fatal("dirty fill lost its dirtiness")
	}
}

func TestSeparateLinesSeparateSets(t *testing.T) {
	h := newH()
	// Fill many lines; counts should accumulate without interference.
	for i := 0; i < 100; i++ {
		h.Fill(0, dram.Addr(i*64), line(byte(i)), false)
	}
	for i := 0; i < 100; i++ {
		if lv, _ := h.Access(0, dram.Addr(i*64), false); lv == Miss {
			t.Fatalf("line %d lost", i)
		}
	}
}
