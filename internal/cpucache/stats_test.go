package cpucache

import (
	"testing"

	"meecc/internal/cache"
	"meecc/internal/dram"
)

func TestPerSetEvictionCounting(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LLCSets, cfg.LLCWays = 4, 2
	h := New(cfg, cache.NewLRU())
	// Hammer set 0: addresses stride LLCSets*64 bytes.
	stride := dram.Addr(4 * 64)
	for i := 0; i < 10; i++ {
		h.Fill(0, dram.Addr(i)*stride, [64]byte{}, false)
	}
	llc := h.LLC()
	bySet := llc.EvictionsBySet()
	if bySet[0] != 8 { // 10 fills into 2 ways
		t.Fatalf("set 0 evictions %d, want 8", bySet[0])
	}
	for s := 1; s < 4; s++ {
		if bySet[s] != 0 {
			t.Fatalf("set %d evictions %d, want 0", s, bySet[s])
		}
	}
	set, count := llc.MaxSetEvictions()
	if set != 0 || count != 8 {
		t.Fatalf("hottest set %d/%d", set, count)
	}
	llc.ResetStats()
	if _, count := llc.MaxSetEvictions(); count != 0 {
		t.Fatal("per-set stats survived reset")
	}
}

func TestInvalidateOthersKeepsWriterCopy(t *testing.T) {
	h := New(DefaultConfig(4), cache.NewLRU())
	h.Fill(0, 0x9000, [64]byte{}, false)
	h.Access(1, 0x9000, false) // core 1 promotes a copy
	h.Access(0, 0x9000, true)  // core 0 writes -> invalidates core 1
	if lv, _ := h.Access(0, 0x9000, false); lv != HitL1 {
		t.Fatalf("writer lost its copy (%v)", lv)
	}
	if lv, _ := h.Access(1, 0x9000, false); lv != HitLLC {
		t.Fatalf("reader should re-fetch from LLC, got %v", lv)
	}
}

func TestWriteMissFillsDirty(t *testing.T) {
	h := New(DefaultConfig(5), cache.NewLRU())
	if lv, _ := h.Access(0, 0xA000, true); lv != Miss {
		t.Fatal("expected write miss")
	}
	h.Fill(0, 0xA000, [64]byte{1}, true)
	v, _ := h.Flush(0xA000)
	if v == nil || !v.Dirty {
		t.Fatal("write-allocate fill lost dirtiness")
	}
}
