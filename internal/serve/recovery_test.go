package serve_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/serve"
	"meecc/internal/serve/journal"
	"meecc/internal/snapstore"
)

// walMagicLen is the journal file header ("MEECWAL\x00") the frame stream
// starts after.
const walMagicLen = 8

// synSpec is a fast synthetic grid: 2 cells × 2 trials = 4 trials.
const synSpec = `{
  "name": "syn",
  "study": "synthetic",
  "base_seed": 7,
  "trials": 2,
  "axes": [{"name": "w", "values": ["1", "2"]}]
}`

// syntheticFactory resolves the "synthetic" study to a trivially fast pure
// runner — metrics derive only from the job's seed, upholding the Runner
// contract the journal's exact-replay guarantee rests on.
func syntheticFactory(study string, warm *core.WarmCache) (exp.Runner, error) {
	if study != "synthetic" {
		return nil, fmt.Errorf("unknown study %q", study)
	}
	return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
		return exp.Metrics{"value": float64(j.Seed%1000) / 7}, nil, nil
	}, nil
}

// cutJournal rewrites the journal at path to keep only the KindRun record
// and the first keepTrials trial records, then appends garbage bytes — the
// torn half-record a kill -9 mid-write leaves. It returns how many trial
// records were dropped.
func cutJournal(t *testing.T, path string, keepTrials int) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	end := walMagicLen
	trials, dropped := 0, 0
	rest := data[walMagicLen:]
	for len(rest) > 0 {
		payload, next, err := snapstore.NextFrame(rest)
		if err != nil {
			break
		}
		rec, err := journal.Decode(payload)
		if err != nil {
			break
		}
		keep := true
		if rec.Kind == journal.KindTrial {
			trials++
			if trials > keepTrials {
				keep = false
				dropped++
			}
		} else if rec.Kind != journal.KindRun {
			keep = false // drop End/Checkpoint: the run must look interrupted
		}
		if keep {
			end = len(data) - len(rest) + (len(rest) - len(next))
		}
		rest = next
	}
	torn := append(append([]byte(nil), data[:end]...), 0xDE, 0xAD, 0xBE)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	return dropped
}

// TestCrashRecoveryResumesOnlyUncommittedTrials is the tentpole guarantee:
// a server killed mid-run loses nothing that committed. The journal is cut
// back to the run record plus two of four trials (with a torn tail on top,
// exactly what SIGKILL mid-write leaves), a second server replays it, and
// resubmitting the spec re-executes ONLY the two uncommitted trials while
// producing an artifact byte-identical to the uninterrupted run's.
func TestCrashRecoveryResumesOnlyUncommittedTrials(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.wal")

	srv1, err := serve.New(serve.Config{Workers: 1, JournalPath: jpath, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	info1, events1 := submitAndWait(t, ts1.URL, synSpec)
	if last := events1[len(events1)-1]; last["type"] != "done" {
		t.Fatalf("first run ended with %v", last)
	}
	uninterrupted := fetchArtifact(t, ts1.URL, info1)
	ts1.Close()
	srv1.Close()

	healthy, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	dropped := cutJournal(t, jpath, 2)
	if dropped != 2 {
		t.Fatalf("cut dropped %d trial records, want 2", dropped)
	}

	o := obs.NewObserver()
	srv2, err := serve.New(serve.Config{Workers: 1, JournalPath: jpath, RunnerFactory: syntheticFactory, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// Replay: the run record plus the two committed trials; the run itself,
	// lacking a terminal record, comes back interrupted (resumable).
	st := srv2.Stats()
	if st.JournalReplayed != 3 {
		t.Fatalf("replayed %d records, want 3", st.JournalReplayed)
	}
	if st.RunsResumed != 1 {
		t.Fatalf("RunsResumed = %d, want 1", st.RunsResumed)
	}
	counters := o.SnapshotAll().Counters
	if counters["serve.journal_replayed"] != 3 || counters["serve.runs_resumed"] != 1 {
		t.Fatalf("obs counters disagree: %v", counters)
	}
	if healed, err := os.ReadFile(jpath); err != nil {
		t.Fatal(err)
	} else if len(healed) >= len(healthy) {
		t.Fatalf("torn journal not truncated: %d bytes, healthy was %d", len(healed), len(healthy))
	}
	if st := runState(t, ts2.URL, info1["id"].(string)); st != "interrupted" {
		t.Fatalf("pre-crash run replayed in state %q, want interrupted", st)
	}

	// Resume: resubmit the same spec. Exactly the two uncommitted trials
	// execute; the artifact matches the uninterrupted run byte for byte.
	info2, events2 := submitAndWait(t, ts2.URL, synSpec)
	if last := events2[len(events2)-1]; last["type"] != "done" {
		t.Fatalf("resumed run ended with %v", last)
	}
	resumed := fetchArtifact(t, ts2.URL, info2)
	if !bytes.Equal(resumed, uninterrupted) {
		t.Fatalf("resumed artifact differs from uninterrupted run (%d vs %d bytes)",
			len(resumed), len(uninterrupted))
	}
	st = srv2.Stats()
	if st.TrialsExecuted != 2 {
		t.Fatalf("resume executed %d trials, want exactly the 2 uncommitted", st.TrialsExecuted)
	}
	if st.TrialsMemoized != 2 {
		t.Fatalf("resume memo-replayed %d trials, want 2", st.TrialsMemoized)
	}
}

// TestCleanShutdownReplaysTerminalRuns: a journal closed by an orderly
// Shutdown replays its runs in their terminal states, artifacts included,
// and resubmission is fully memoized.
func TestCleanShutdownReplaysTerminalRuns(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.wal")

	srv1, err := serve.New(serve.Config{Workers: 1, JournalPath: jpath, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	info1, _ := submitAndWait(t, ts1.URL, synSpec)
	art1 := fetchArtifact(t, ts1.URL, info1)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := serve.New(serve.Config{Workers: 1, JournalPath: jpath, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	id := info1["id"].(string)
	if st := runState(t, ts2.URL, id); st != "done" {
		t.Fatalf("replayed run in state %q, want done", st)
	}
	// The artifact survived inside the journal's End record.
	replayed := fetchArtifact(t, ts2.URL, map[string]any{"artifact": "/v1/runs/" + id + "/artifact"})
	if !bytes.Equal(replayed, art1) {
		t.Fatal("artifact replayed from journal differs from the original")
	}

	info2, _ := submitAndWait(t, ts2.URL, synSpec)
	fetchArtifact(t, ts2.URL, info2)
	if st := srv2.Stats(); st.TrialsExecuted != 0 || st.TrialsMemoized != 4 {
		t.Fatalf("resubmit after clean restart: %+v, want 0 executed / 4 memoized", st)
	}
}
