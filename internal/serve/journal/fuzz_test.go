package journal_test

import (
	"reflect"
	"testing"

	"meecc/internal/serve/journal"
	"meecc/internal/snapstore"
)

// FuzzJournalReplay feeds Replay arbitrary bytes — journals come off disk,
// where crashes tear tails and bit rot flips bytes — and checks the recovery
// invariants: Replay never panics, never claims to have consumed more bytes
// than it was given, and every record it does return survives a re-encode /
// re-replay round trip (i.e. recovered records are real records, not
// artifacts of a lucky parse).
func FuzzJournalReplay(f *testing.F) {
	var seedFrames []byte
	for _, rec := range []journal.Record{
		{Kind: journal.KindRun, RunID: "run-1", SpecHash: "hash", Spec: []byte(`{"trials":1}`)},
		{Kind: journal.KindTrial, Key: "k/0", Metrics: map[string]float64{"kbps": 35}},
		{Kind: journal.KindEnd, RunID: "run-1", Outcome: "done", Artifact: []byte("{}")},
		{Kind: journal.KindCheckpoint},
	} {
		seedFrames = snapstore.AppendFrame(seedFrames, journal.Encode(rec))
	}
	f.Add(seedFrames)
	f.Add(seedFrames[:len(seedFrames)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed := journal.Replay(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Re-encoding the recovered records and replaying them must give the
		// records back: recovery is idempotent.
		var again []byte
		for _, rec := range recs {
			again = snapstore.AppendFrame(again, journal.Encode(rec))
		}
		recs2, consumed2 := journal.Replay(again)
		if consumed2 != len(again) {
			t.Fatalf("re-replay consumed %d of %d re-encoded bytes", consumed2, len(again))
		}
		if len(recs) != len(recs2) || (len(recs) > 0 && !reflect.DeepEqual(recs, recs2)) {
			t.Fatalf("re-replay returned %d records, want %d", len(recs2), len(recs))
		}
	})
}
