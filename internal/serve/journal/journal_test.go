package journal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"meecc/internal/serve/journal"
	"meecc/internal/snapstore"
)

// sampleRecords covers every record kind with every field class populated.
func sampleRecords() []journal.Record {
	return []journal.Record{
		{
			Kind:     journal.KindRun,
			RunID:    "abcdef123456-1",
			SpecHash: "deadbeef",
			Spec:     []byte(`{"name":"smoke","trials":2}`),
		},
		{
			Kind:    journal.KindTrial,
			Key:     "cellkey/0",
			Metrics: map[string]float64{"kbps": 35.25, "error_rate": 0.017},
			Obs:     []byte(`{"schema_version":1}`),
		},
		{
			Kind:     journal.KindTrial,
			Key:      "cellkey/1",
			TrialErr: "trial exploded",
		},
		{
			Kind:     journal.KindEnd,
			RunID:    "abcdef123456-1",
			Outcome:  "done",
			Artifact: []byte(`{"schema_version":1,"cells":[]}`),
		},
		{Kind: journal.KindCheckpoint},
	}
}

func TestAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(want[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}

	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", recs, want)
	}

	// Appends after a reopen land after the replayed records.
	extra := journal.Record{Kind: journal.KindTrial, Key: "cellkey/2", Metrics: map[string]float64{"v": 1}}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, append(want, extra)) {
		t.Fatalf("after reopen-append, replay returned %d records, want %d", len(recs), len(want)+1)
	}
}

// TestTornTailSelfHeals is the crash model: a SIGKILL mid-write leaves a
// partial final record. Reopening must replay everything before it, truncate
// the file back to the last record boundary, and accept new appends.
func TestTornTailSelfHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 10} { // tear at several depths into the tail
		torn := append([]byte(nil), data[:len(data)-cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := journal.Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != len(want)-1 || !reflect.DeepEqual(recs, want[:len(want)-1]) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), len(want)-1)
		}
		// Self-healed: the torn bytes are gone and the journal appends cleanly.
		healed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(healed) >= len(torn) {
			t.Fatalf("cut %d: torn tail not truncated (%d >= %d bytes)", cut, len(healed), len(torn))
		}
		if err := j.Append(want[len(want)-1]); err != nil {
			t.Fatalf("cut %d: append after heal: %v", cut, err)
		}
		j.Close()
		_, recs, err = journal.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recs, want) {
			t.Fatalf("cut %d: healed journal replayed %d records, want %d", cut, len(recs), len(want))
		}
	}
}

// TestCorruptTailStopsReplay flips a byte inside the last record: the CRC
// rejects it and replay ends at the previous record.
func TestCorruptTailStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x40 // inside the final record's payload/CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !reflect.DeepEqual(recs, want[:len(want)-1]) {
		t.Fatalf("corrupt tail: replayed %d records, want %d", len(recs), len(want)-1)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("definitely not a journal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := journal.Open(path); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		got, err := journal.Decode(journal.Encode(rec))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round-trip:\n got %+v\nwant %+v", i, got, rec)
		}
	}
	// Trailing garbage inside a valid frame must be rejected, not ignored.
	payload := append(journal.Encode(sampleRecords()[0]), 0xFF)
	if _, err := journal.Decode(payload); err == nil {
		t.Fatal("Decode accepted a payload with trailing bytes")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	for _, p := range payloads {
		buf = snapstore.AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = snapstore.NextFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after all frames", len(rest))
	}
	if _, _, err := snapstore.NextFrame(rest); err == nil {
		t.Fatal("NextFrame on empty input succeeded")
	}
}
