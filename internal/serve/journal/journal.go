// Package journal is the serve service's write-ahead log: an append-only
// file of length-framed, CRC-protected records (snapstore.AppendFrame) that
// makes submitted runs and completed trials durable across process death.
// Every record is written with a single write syscall, so a SIGKILL tears at
// most the final record; Open replays the intact prefix, truncates the torn
// tail away, and hands the caller everything that committed. Replaying the
// journal rebuilds the service's trial memo table exactly — metrics are
// stored as raw float bits and snapshots as their canonical JSON — so a
// resumed run re-executes only the trials that never committed and still
// produces a byte-identical artifact.
package journal

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"meecc/internal/obs/ops"
	"meecc/internal/snapstore"
)

// magic opens every journal file.
const magic = "MEECWAL\x00"

// Version is the record-format version; bump on any layout change.
const Version = 1

// Kind discriminates journal record types.
type Kind uint8

const (
	// KindRun records an admitted spec: the run id, the spec's content hash,
	// and the raw spec JSON (so an interrupted run is resumable by content,
	// not by reference to in-memory state).
	KindRun Kind = iota + 1
	// KindTrial commits one executed trial's result under its memo key.
	KindTrial
	// KindEnd marks a run terminal: done (with the artifact bytes), failed,
	// or cancelled. Runs with no KindEnd record are resumable after replay.
	KindEnd
	// KindCheckpoint marks a clean shutdown: every record before it was
	// written by an orderly drain, none by a crash.
	KindCheckpoint
)

// Record is one journal entry; which fields are meaningful depends on Kind.
type Record struct {
	Kind Kind

	// KindRun / KindEnd
	RunID    string
	SpecHash string
	Spec     []byte

	// KindTrial
	Key      string
	Metrics  map[string]float64
	Obs      []byte // canonical snapshot JSON, empty when the trial had none
	TrialErr string // non-empty iff the trial failed

	// KindEnd
	Outcome  string // "done", "failed", or "cancelled"
	ErrMsg   string
	Artifact []byte // the run's artifact bytes ("done", and partial "cancelled")
}

// Encode renders the record as a wire payload (frame it with
// snapstore.AppendFrame for storage).
func Encode(rec Record) []byte {
	var w snapstore.Writer
	w.U8(Version)
	w.U8(uint8(rec.Kind))
	w.String(rec.RunID)
	w.String(rec.SpecHash)
	w.Blob(rec.Spec)
	w.String(rec.Key)
	names := make([]string, 0, len(rec.Metrics))
	for name := range rec.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, name := range names {
		w.String(name)
		w.U64(math.Float64bits(rec.Metrics[name]))
	}
	w.Blob(rec.Obs)
	w.String(rec.TrialErr)
	w.String(rec.Outcome)
	w.String(rec.ErrMsg)
	w.Blob(rec.Artifact)
	return w.Bytes()
}

// Decode parses a payload produced by Encode. Damaged or version-skewed
// payloads come back as errors, never panics.
func Decode(payload []byte) (Record, error) {
	r := snapstore.NewReader(payload)
	if v := r.U8(); r.Err() == nil && v != Version {
		return Record{}, fmt.Errorf("journal: record version %d, want %d", v, Version)
	}
	rec := Record{Kind: Kind(r.U8())}
	rec.RunID = r.String()
	rec.SpecHash = r.String()
	rec.Spec = cloned(r.Blob())
	rec.Key = r.String()
	if n := int(r.U32()); r.Err() == nil && n > 0 {
		if n > r.Remaining() { // each metric is >= 1 byte on the wire
			return Record{}, fmt.Errorf("journal: metric count %d exceeds payload", n)
		}
		rec.Metrics = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			name := r.String()
			rec.Metrics[name] = math.Float64frombits(r.U64())
		}
	}
	rec.Obs = cloned(r.Blob())
	rec.TrialErr = r.String()
	rec.Outcome = r.String()
	rec.ErrMsg = r.String()
	rec.Artifact = cloned(r.Blob())
	if err := r.Err(); err != nil {
		return Record{}, err
	}
	if rec.Kind < KindRun || rec.Kind > KindCheckpoint {
		return Record{}, fmt.Errorf("journal: unknown record kind %d", rec.Kind)
	}
	if r.Remaining() != 0 {
		return Record{}, fmt.Errorf("journal: %d trailing bytes in record", r.Remaining())
	}
	return rec, nil
}

// cloned copies a reader's aliasing slice so records outlive the replay
// buffer; empty blobs stay nil.
func cloned(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// Replay decodes records from a frame stream (the journal file minus its
// magic), stopping cleanly at the first torn, corrupt, or undecodable frame.
// It returns the intact records and how many bytes they occupy — the offset
// a self-healing reopen truncates to. Replay never fails: damage just ends
// the replay early.
func Replay(data []byte) (recs []Record, consumed int) {
	rest := data
	for len(rest) > 0 {
		payload, next, err := snapstore.NextFrame(rest)
		if err != nil {
			break
		}
		rec, err := Decode(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		consumed = len(data) - len(next)
		rest = next
	}
	return recs, consumed
}

// Journal is an open write-ahead log. Appends are serialized and each lands
// as one write syscall; safe for concurrent use.
type Journal struct {
	path string

	mu sync.Mutex
	f  *os.File

	// healedBytes is how many torn-tail bytes Open truncated away; replayed
	// is how many intact records it handed back. Both are fixed at Open.
	healedBytes int64
	replayed    int

	// Wall-clock telemetry; nil-safe when SetOps was never called.
	appends       *ops.Counter
	appendErrors  *ops.Counter
	appendSeconds *ops.Histogram
	fsyncSeconds  *ops.Histogram
}

// HealedBytes reports how many bytes of torn tail Open truncated away (zero
// for a clean open).
func (j *Journal) HealedBytes() int64 { return j.healedBytes }

// Replayed reports how many intact records Open replayed.
func (j *Journal) Replayed() int { return j.replayed }

// SetOps registers the journal's wall-clock metrics on reg (nil-safe):
// append/fsync latency, append error count, replay/recovery counters fixed at
// Open, and the live file size.
func (j *Journal) SetOps(reg *ops.Registry) {
	j.appends = reg.Counter("meecc_journal_appends_total", "Records appended to the write-ahead journal.")
	j.appendErrors = reg.Counter("meecc_journal_append_errors_total", "Journal appends that failed.")
	j.appendSeconds = reg.Histogram("meecc_journal_append_seconds", "Wall time of journal record appends.", nil)
	j.fsyncSeconds = reg.Histogram("meecc_journal_fsync_seconds", "Wall time of journal fsyncs.", nil)
	reg.Counter("meecc_journal_replayed_records_total", "Intact records replayed at journal open.").Add(uint64(j.replayed))
	if j.healedBytes > 0 {
		reg.Counter("meecc_journal_torn_tail_recoveries_total", "Torn tails truncated at journal open.").Inc()
	} else {
		reg.Counter("meecc_journal_torn_tail_recoveries_total", "Torn tails truncated at journal open.")
	}
	reg.GaugeFunc("meecc_journal_size_bytes", "Current journal file size.", func() float64 {
		info, err := os.Stat(j.path)
		if err != nil {
			return 0
		}
		return float64(info.Size())
	})
}

// Open opens (creating if needed) the journal at path, replays every intact
// record, truncates any torn tail so the file ends on a record boundary, and
// returns the journal positioned for append plus the replayed records.
// A file that is not a journal at all (wrong magic) is an error — that is an
// operator mistake, not corruption to silently destroy.
func Open(path string) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if len(data) >= len(magic) && string(data[:len(magic)]) != magic {
		return nil, nil, fmt.Errorf("journal: %s is not a journal (bad magic)", path)
	}
	if len(data) < len(magic) && string(data) != magic[:len(data)] {
		return nil, nil, fmt.Errorf("journal: %s is not a journal (bad magic)", path)
	}

	var recs []Record
	valid := 0
	if len(data) >= len(magic) {
		var consumed int
		recs, consumed = Replay(data[len(magic):])
		valid = len(magic) + consumed
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f}
	if valid == 0 {
		// Fresh file, or one torn inside the magic itself: restart it.
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(magic), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: initializing %s: %w", path, err)
		}
		valid = len(magic)
	} else if valid < len(data) {
		// Torn tail: drop it so the next append starts on a record boundary.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: healing %s: %w", path, err)
		}
		j.healedBytes = int64(len(data) - valid)
	}
	j.replayed = len(recs)
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return j, recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append encodes and writes one record as a single frame. The write is one
// syscall, so a crash tears at most this record — never an earlier one.
func (j *Journal) Append(rec Record) error {
	frame := snapstore.AppendFrame(nil, Encode(rec))
	start := time.Now()
	defer j.appendSeconds.ObserveSince(start)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.appendErrors.Inc()
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		j.appendErrors.Inc()
		return fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	j.appends.Inc()
	return nil
}

// Sync flushes the journal to stable storage — called at clean-shutdown
// checkpoints; per-record appends rely on the page cache surviving process
// death, which is all a SIGKILL threatens.
func (j *Journal) Sync() error {
	start := time.Now()
	defer j.fsyncSeconds.ObserveSince(start)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close closes the journal file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
