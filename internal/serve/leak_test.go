package serve_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/serve"
)

// TestShutdownReclaimsGoroutines mirrors sim's Engine.Close leak test for
// the service layer: every worker and run goroutine a Server starts must
// exit under Shutdown, even with a run frozen mid-flight when the grace
// period expires. Operators restart this service in place; a goroutine
// leaked per restart cycle would be a slow memory death.
func TestShutdownReclaimsGoroutines(t *testing.T) {
	countGoroutines := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	base := countGoroutines()

	for i := 0; i < 10; i++ {
		started := make(chan struct{}, 1)
		slow := func(study string, warm *core.WarmCache) (exp.Runner, error) {
			return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				time.Sleep(2 * time.Millisecond) // long enough to be mid-run at shutdown
				return exp.Metrics{"v": 1}, nil, nil
			}, nil
		}
		srv, err := serve.New(serve.Config{Workers: 2, MaxConcurrent: 2, RunnerFactory: slow})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		resp := postSpec(t, ts.URL, `{"name":"leak","study":"synthetic","base_seed":1,"trials":500}`)
		resp.Body.Close()
		<-started // the run is executing; shutdown cuts it off mid-flight

		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		ts.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		// A small cushion absorbs unrelated runtime goroutines (GC workers,
		// test timers) that come and go.
		if n := countGoroutines(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Shutdown: %d at start, %d now", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
