package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/serve"
)

// smokeSpec mirrors examples/specs/smoke.json: a small channel grid — two
// windows × two trials — that exercises the full warm + transmit path.
const smokeSpec = `{
  "name": "smoke",
  "study": "channel",
  "base_seed": 42,
  "trials": 2,
  "params": {"bits": "24", "pattern": "alternating"},
  "axes": [{"name": "window", "values": ["10000", "15000"]}]
}`

// submitAndWait posts a spec, follows the NDJSON event stream to the
// terminal event, and returns the run info and the events seen.
func submitAndWait(t *testing.T, base string, spec string) (map[string]any, []map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}

	ev, err := http.Get(base + info["events"].(string))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Body.Close()
	if ct := ev.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(ev.Body)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
		switch e["type"] {
		case "done", "error", "cancelled", "interrupted":
			return info, events
		}
	}
	t.Fatalf("event stream ended without a terminal event (err %v, %d events)", sc.Err(), len(events))
	return nil, nil
}

// runState fetches a run's current state via GET /v1/runs/{id}.
func runState(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	state, _ := info["state"].(string)
	return state
}

func fetchArtifact(t *testing.T, base string, info map[string]any) []byte {
	t.Helper()
	resp, err := http.Get(base + info["artifact"].(string))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: %s: %s", resp.Status, body)
	}
	return body
}

// TestServedArtifactMatchesLocalRun is the service's determinism proof: the
// artifact fetched over HTTP is byte-identical to what a local harness run
// (at a different worker count) produces for the same spec, and
// resubmitting the spec replays every trial from the memo — zero re-executed
// — returning byte-identical output again.
func TestServedArtifactMatchesLocalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	o := obs.NewObserver()
	srv, err := serve.New(serve.Config{Workers: 2, StoreDir: t.TempDir(), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info, events := submitAndWait(t, ts.URL, smokeSpec)
	last := events[len(events)-1]
	if last["type"] != "done" {
		t.Fatalf("run ended with %v", last)
	}
	if len(events) < 3 { // queued + >=1 progress + done
		t.Fatalf("only %d events streamed", len(events))
	}
	served := fetchArtifact(t, ts.URL, info)

	spec, err := exp.ParseSpec([]byte(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if got := info["spec_sha256"].(string); got != spec.Hash() {
		t.Fatalf("run reports spec hash %s, want %s", got, spec.Hash())
	}
	rep, err := exp.RunSpec(spec, exp.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := exp.MarshalArtifact(rep.Artifact())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, local) {
		t.Fatalf("served artifact differs from local run (%d vs %d bytes)", len(served), len(local))
	}

	const totalTrials = 4 // 2 windows × 2 trials
	st := srv.Stats()
	if st.TrialsExecuted != totalTrials || st.TrialsMemoized != 0 {
		t.Fatalf("after first run: %+v, want %d executed, 0 memoized", st, totalTrials)
	}

	// Resubmission: entirely memoized, byte-identical.
	info2, events2 := submitAndWait(t, ts.URL, smokeSpec)
	if last := events2[len(events2)-1]; last["type"] != "done" {
		t.Fatalf("second run ended with %v", last)
	}
	served2 := fetchArtifact(t, ts.URL, info2)
	if !bytes.Equal(served, served2) {
		t.Fatal("resubmitted run returned a different artifact")
	}
	if info2["id"] == info["id"] {
		t.Fatal("resubmission reused the first run's id")
	}
	st = srv.Stats()
	if st.TrialsExecuted != totalTrials {
		t.Fatalf("resubmission re-executed trials: %+v", st)
	}
	if st.TrialsMemoized != totalTrials {
		t.Fatalf("resubmission not fully memoized: %+v", st)
	}
	counters := o.SnapshotAll().Counters
	if counters["serve.trials_executed"] != uint64(totalTrials) ||
		counters["serve.trials_memoized"] != uint64(totalTrials) ||
		counters["serve.runs_submitted"] != 2 {
		t.Fatalf("obs counters disagree: %v", counters)
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: got %s", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(`{"name":"x","trials":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid spec: got %s", resp.Status)
	}

	resp, err = http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"name":"x","study":"no-such-study","trials":1,"axes":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown study: got %s", resp.Status)
	}

	for _, path := range []string{"/v1/runs/nope", "/v1/runs/nope/events", "/v1/runs/nope/artifact"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: got %s", path, resp.Status)
		}
	}
}
