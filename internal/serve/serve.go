// Package serve exposes the experiment harness as a long-lived HTTP
// service: clients POST declarative exp specs, follow progress as a
// resumable NDJSON event stream, and fetch the finished versioned artifact.
// The service preserves the harness's determinism contract end to end — an
// artifact served over HTTP is byte-identical to what `meecc batch` writes
// locally for the same spec, at any worker count — and is built to survive
// operations: completed trials are memoized by cell content hash and
// journaled to a write-ahead log (a kill -9 mid-run loses nothing that
// committed; resubmitting the spec re-executes only the rest), admission is
// bounded (429 + Retry-After under overload), runs carry deadlines and can
// be cancelled, SIGTERM drains in-flight work up to a grace period, and warm
// channel state is spilled to and faulted from a snapstore.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/obs/ops"
	"meecc/internal/serve/journal"
	"meecc/internal/snapstore"
)

// errShutdown is the cancellation cause for runs cut off by Shutdown: they
// stay resumable (no terminal journal record).
var errShutdown = errors.New("serve: server shutting down")

// errClientCancel is the cancellation cause for DELETE /v1/runs/{id}.
var errClientCancel = errors.New("serve: run cancelled by client")

// Config shapes a Server.
type Config struct {
	// Workers sizes each run's trial pool (<= 0 means GOMAXPROCS). Worker
	// count never changes artifacts, only wall time.
	Workers int
	// StoreDir, when non-empty, roots a snapstore for the warm-state disk
	// tier. Empty keeps warm state purely in memory.
	StoreDir string
	// StoreMaxBytes bounds the store (<= 0 means unbounded).
	StoreMaxBytes int64
	// WarmCapacity bounds the in-memory warm-state tier (<= 0 = default).
	WarmCapacity int
	// JournalPath, when non-empty, opens the write-ahead run journal there:
	// admitted specs and completed trials become durable, the memo table is
	// rebuilt on startup, and interrupted runs are resumable. Empty keeps
	// everything in process memory (it dies with the process).
	JournalPath string
	// MaxConcurrent bounds simultaneously executing runs (<= 0 means 2).
	MaxConcurrent int
	// MaxPending bounds the admitted-but-not-started run queue (<= 0 means
	// 16). A full queue rejects submissions with 429 + Retry-After.
	MaxPending int
	// RunTimeout is each run's wall-clock deadline (<= 0 means none). A run
	// that exceeds it stops dispatching trials, drains, and fails; its
	// committed trials stay journaled.
	RunTimeout time.Duration
	// MaxBodyBytes bounds request bodies (<= 0 means 1 MiB).
	MaxBodyBytes int64
	// Obs, when non-nil, receives the service's counters
	// (serve.runs_submitted, serve.trials_executed, serve.trials_memoized,
	// serve.journal_replayed, serve.runs_resumed, serve.rejected_overload,
	// serve.journal_errors, serve.warm_disk_loads, serve.warm_disk_spills).
	Obs *obs.Observer
	// Ops is the wall-clock operational telemetry registry served at GET
	// /metrics. Nil means New creates a private one — telemetry is always on;
	// it is structurally incapable of touching artifacts (see internal/obs/ops).
	Ops *ops.Registry
	// Log, when non-nil, receives the service's structured logs (admissions,
	// run lifecycle, journal/store degradation). Nil discards them.
	Log *ops.Logger
	// SpanCap bounds the wall-clock span ring behind GET /v1/runs/{id}/trace
	// (<= 0 means ops.DefaultSpanCap).
	SpanCap int
	// RunnerFactory, when non-nil, overrides how study names resolve to
	// trial runners (tests inject synthetic studies; nil uses
	// exp.RunnerWithWarmCache). The returned runner must obey the exp.Runner
	// purity contract or every durability guarantee here is void.
	RunnerFactory func(study string, warm *core.WarmCache) (exp.Runner, error)
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	RunsSubmitted    int64
	TrialsExecuted   int64
	TrialsMemoized   int64
	JournalReplayed  int64 // records replayed at startup
	RunsResumed      int64 // non-terminal runs found in the journal
	RejectedOverload int64 // submissions bounced with 429
	JournalErrors    int64 // failed journal appends (durability degraded)
	Warm             core.WarmCacheStats
}

// Server is the HTTP handler. Create with New; safe for concurrent use.
// Call Shutdown (or Close) to drain it — worker goroutines run until then.
type Server struct {
	cfg     Config
	warm    *core.WarmCache
	mux     *http.ServeMux
	journal *journal.Journal

	queue   chan *run     // admitted runs waiting for a slot
	quit    chan struct{} // closed when drain begins: workers stop picking
	done    chan struct{} // closed when shutdown completes: streams end
	workers sync.WaitGroup
	running sync.WaitGroup // runs currently executing

	// Wall-clock operational telemetry (tele.go): the /metrics registry,
	// structured logger, span ring, process start mark, and the hot-path
	// instrument handles resolved once at New.
	ops     *ops.Registry
	log     *ops.Logger
	spans   *ops.SpanRecorder
	started time.Time
	inst    serveInstruments

	// slotMu manages the trial span track pool: concurrent trials render on
	// distinct "slot-N" tracks, and finished trials recycle their slot so the
	// trace stays as narrow as the realized parallelism.
	slotMu   sync.Mutex
	slotFree []int
	slotNext int

	mu       sync.Mutex
	draining bool
	pending  int // runs sitting in queue (reserves channel capacity)
	runs     map[string]*run
	order    []string // insertion order, for listing
	subs     map[string]int
	memo     map[string]memoTrial
	stats    Stats
}

// memoTrial is one completed trial's result, keyed by the cell memo key and
// trial index. Results are deterministic, so replaying a stored value is
// indistinguishable from re-executing the trial.
type memoTrial struct {
	metrics exp.Metrics
	snap    *obs.Snapshot
	err     string
}

// New builds a server, opening the warm-state store and replaying the
// journal when configured, and starts its run workers.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 16
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	warm := core.NewWarmCache(cfg.WarmCapacity)
	var store *snapstore.Store
	if cfg.StoreDir != "" {
		st, err := snapstore.Open(cfg.StoreDir, cfg.StoreMaxBytes)
		if err != nil {
			return nil, err
		}
		store = st
		warm.AttachStore(store)
	}
	if cfg.Ops == nil {
		cfg.Ops = ops.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		warm:    warm,
		queue:   make(chan *run, cfg.MaxPending),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		runs:    map[string]*run{},
		subs:    map[string]int{},
		memo:    map[string]memoTrial{},
		ops:     cfg.Ops,
		log:     cfg.Log,
		spans:   ops.NewSpanRecorder(cfg.SpanCap),
		started: time.Now(),
	}
	s.registerOps()
	warm.SetOps(s.ops)
	if store != nil {
		store.SetOps(s.ops, s.log)
	}
	if cfg.JournalPath != "" {
		jn, recs, err := journal.Open(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jn
		jn.SetOps(s.ops)
		if healed := jn.HealedBytes(); healed > 0 {
			s.log.Warn("journal torn tail truncated", "path", cfg.JournalPath, "bytes", healed)
		}
		s.log.Info("journal replayed", "path", cfg.JournalPath, "records", jn.Replayed())
		s.replay(recs)
	}
	s.mux = http.NewServeMux()
	s.handle("POST /v1/runs", "submit", s.handleSubmit)
	s.handle("GET /v1/runs", "list", s.handleList)
	s.handle("GET /v1/runs/{id}", "status", s.handleStatus)
	s.handle("DELETE /v1/runs/{id}", "cancel", s.handleCancel)
	s.handle("GET /v1/runs/{id}/events", "events", s.handleEvents)
	s.handle("GET /v1/runs/{id}/artifact", "artifact", s.handleArtifact)
	s.handle("GET /v1/runs/{id}/trace", "trace", s.handleTrace)
	s.mux.Handle("GET /metrics", s.ops.Handler())
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /readyz", "readyz", s.handleReadyz)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay rebuilds the memo table and run registry from journal records. Runs
// with no terminal record were interrupted by a crash or drain: they come
// back in StateInterrupted, and because every trial they committed is in the
// memo, resubmitting the same spec re-executes only the remainder.
func (s *Server) replay(recs []journal.Record) {
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindRun:
			spec, err := exp.ParseSpec(rec.Spec)
			if err != nil {
				continue // a study this binary no longer knows; skip the run
			}
			ru := newRun(rec.RunID, spec, rec.SpecHash)
			s.runs[rec.RunID] = ru
			s.order = append(s.order, rec.RunID)
			// Rebuild the per-spec submission counter so new run ids never
			// collide with journaled ones.
			if i := strings.LastIndexByte(rec.RunID, '-'); i >= 0 {
				if n, err := strconv.Atoi(rec.RunID[i+1:]); err == nil && n > s.subs[rec.SpecHash] {
					s.subs[rec.SpecHash] = n
				}
			}
		case journal.KindTrial:
			v := memoTrial{metrics: rec.Metrics, err: rec.TrialErr}
			if len(rec.Obs) > 0 {
				snap, err := obs.DecodeSnapshot(rec.Obs)
				if err != nil {
					continue // snapshot schema skew: re-execute this trial
				}
				v.snap = snap
			}
			s.memo[rec.Key] = v
		case journal.KindEnd:
			ru := s.runs[rec.RunID]
			if ru == nil {
				continue
			}
			switch rec.Outcome {
			case "done":
				ru.restore(StateDone, rec.Artifact, "")
			case "cancelled":
				ru.restore(StateCancelled, rec.Artifact, "")
			default:
				ru.restore(StateFailed, nil, rec.ErrMsg)
			}
		case journal.KindCheckpoint:
			// Clean-shutdown marker; nothing to rebuild.
		}
	}
	for _, id := range s.order {
		ru := s.runs[id]
		if !ru.snapshotState().terminal() {
			ru.interrupted()
			s.stats.RunsResumed++
			s.cfg.Obs.Counter("serve.runs_resumed").Inc()
		}
	}
	s.stats.JournalReplayed = int64(len(recs))
	s.cfg.Obs.Counter("serve.journal_replayed").Add(uint64(len(recs)))
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns the service counters. Counter reads are consistent with the
// runs that have finished; call after a run completes for exact totals.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Warm = s.warm.Stats()
	return st
}

// runnerFor resolves a study name through the configured factory.
func (s *Server) runnerFor(study string) (exp.Runner, error) {
	if s.cfg.RunnerFactory != nil {
		return s.cfg.RunnerFactory(study, s.warm)
	}
	return exp.RunnerWithWarmCache(study, s.warm)
}

// journalAppend writes a record to the journal when one is configured. An
// append failure degrades durability, not service: it is counted and the
// run proceeds in memory.
func (s *Server) journalAppend(rec journal.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.mu.Lock()
		s.stats.JournalErrors++
		s.mu.Unlock()
		s.cfg.Obs.Counter("serve.journal_errors").Inc()
		s.log.Warn("journal append failed; durability degraded", "run", rec.RunID, "err", err.Error())
	}
}

// handleSubmit accepts a spec, assigns a run id derived from the spec's
// content hash and a per-spec submission counter, journals the admission,
// and queues the run. Saturated queues reject with 429 + Retry-After; a
// draining server rejects with 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var raw json.RawMessage
	if err := json.NewDecoder(body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := exp.ParseSpec(raw)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if _, err := s.runnerFor(spec.Study); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// Canonical spec bytes: what the journal replays and the hash covers.
	canonical, err := json.Marshal(spec)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding spec: %v", err)
		return
	}
	hash := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.ops.Counter("meecc_serve_runs_rejected_total", "Run submissions rejected.", "reason", "draining").Inc()
		s.log.Warn("submission rejected: draining", "study", spec.Study, "name", spec.Name)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.pending >= cap(s.queue) {
		s.stats.RejectedOverload++
		s.cfg.Obs.Counter("serve.rejected_overload").Inc()
		pending := s.pending
		s.mu.Unlock()
		s.ops.Counter("meecc_serve_runs_rejected_total", "Run submissions rejected.", "reason", "overload").Inc()
		s.log.Warn("submission rejected: queue full", "study", spec.Study, "name", spec.Name, "pending", pending)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "run queue is full (%d pending)", cap(s.queue))
		return
	}
	s.subs[hash]++
	id := fmt.Sprintf("%s-%d", hash[:12], s.subs[hash])
	ru := newRun(id, spec, hash)
	s.runs[id] = ru
	s.order = append(s.order, id)
	s.pending++
	s.stats.RunsSubmitted++
	s.cfg.Obs.Counter("serve.runs_submitted").Inc()
	queueDepth := s.pending
	s.mu.Unlock()
	s.inst.runsSubmitted.Inc()

	// Write-ahead: the admission is durable before the client hears 202.
	s.journalAppend(journal.Record{Kind: journal.KindRun, RunID: id, SpecHash: hash, Spec: canonical})
	s.queue <- ru // never blocks: pending < cap was checked under s.mu
	s.spans.Record(id, "run", "submit", reqStart, time.Since(reqStart))
	s.log.Info("run admitted", "run", id, "study", spec.Study, "name", spec.Name,
		"trials", spec.Trials, "queue_depth", queueDepth)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(ru.info())
}

// worker executes queued runs until drain begins.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		case ru := <-s.queue:
			s.mu.Lock()
			s.pending--
			s.mu.Unlock()
			s.execute(ru)
		}
	}
}

// execute runs the spec through the harness with the memoizing, journaling
// runner under a per-run cancellable context, emitting progress events and
// capturing the canonical artifact.
func (s *Server) execute(ru *run) {
	s.mu.Lock()
	if s.draining {
		// Shutdown will mark still-pending runs interrupted.
		s.mu.Unlock()
		return
	}
	s.running.Add(1)
	s.mu.Unlock()
	defer s.running.Done()

	base, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	ctx := context.Context(base)
	if s.cfg.RunTimeout > 0 {
		var stop context.CancelFunc
		ctx, stop = context.WithTimeout(base, s.cfg.RunTimeout)
		defer stop()
	}

	if !ru.start(cancel) {
		return // cancelled while queued
	}
	queueWait := time.Since(ru.queuedAt)
	s.inst.queueWait.Observe(queueWait.Seconds())
	s.spans.Record(ru.id, "run", "queued", ru.queuedAt, queueWait)
	s.log.Info("run started", "run", ru.id, "study", ru.spec.Study,
		"queue_wait_ms", queueWait.Milliseconds())
	s.inst.runsActive.Add(1)
	execStart := time.Now()
	defer func() {
		s.inst.runsActive.Add(-1)
		s.inst.runSeconds.ObserveSince(execStart)
		s.spans.Record(ru.id, "run", "execute", execStart, time.Since(execStart))
	}()
	runner, err := s.runnerFor(ru.spec.Study)
	if err != nil {
		s.end(ru, "failed", nil, 0, err)
		return
	}
	rep, err := exp.Run(ru.spec, s.memoize(ru, runner), exp.Config{
		Workers: s.cfg.Workers,
		Context: ctx,
		Ops:     s.ops,
		OnProgress: func(p exp.Progress) {
			ru.emit(Event{
				Type:      "progress",
				Done:      p.Done,
				Total:     p.Total,
				CellsDone: p.CellsDone,
				Cells:     p.Cells,
			})
		},
	})
	if err != nil {
		s.end(ru, "failed", nil, 0, err)
		return
	}
	if rep.Partial {
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errShutdown):
			// No terminal journal record: the run resumes after restart.
			ru.interrupted()
			s.finishedOps(ru, "interrupted", "")
		case errors.Is(cause, context.DeadlineExceeded):
			s.end(ru, "failed", nil, 0, fmt.Errorf("run exceeded its %s deadline", s.cfg.RunTimeout))
		default: // client cancel
			artifact, merr := s.marshalArtifact(ru, rep)
			if merr != nil {
				s.end(ru, "failed", nil, 0, merr)
				return
			}
			s.end(ru, "cancelled", artifact, 0, nil)
		}
		return
	}
	artifact, err := s.marshalArtifact(ru, rep)
	if err != nil {
		s.end(ru, "failed", nil, 0, err)
		return
	}
	s.end(ru, "done", artifact, rep.Failures(), nil)
}

// marshalArtifact renders the report's canonical artifact under a recorded
// "artifact" span.
func (s *Server) marshalArtifact(ru *run, rep *exp.Report) ([]byte, error) {
	start := time.Now()
	artifact, err := exp.MarshalArtifact(rep.Artifact())
	s.spans.Record(ru.id, "run", "artifact", start, time.Since(start))
	return artifact, err
}

// finishedOps records a run's terminal outcome in the wall-clock telemetry:
// the outcome counter and a structured log line with the run's per-run
// execute/memo split.
func (s *Server) finishedOps(ru *run, outcome, errMsg string) {
	s.ops.Counter("meecc_serve_runs_finished_total", "Runs reaching a terminal state.", "outcome", outcome).Inc()
	kv := []any{"run", ru.id, "outcome", outcome,
		"executed", ru.executed.Load(), "memoized", ru.memoized.Load()}
	if errMsg != "" {
		s.log.Error("run finished", append(kv, "err", errMsg)...)
		return
	}
	s.log.Info("run finished", kv...)
}

// end journals the run's terminal state, then applies it in memory — the
// same commit order as trials, so a crash between the two replays as
// terminal rather than losing the outcome.
func (s *Server) end(ru *run, outcome string, artifact []byte, failures int, err error) {
	rec := journal.Record{Kind: journal.KindEnd, RunID: ru.id, Outcome: outcome, Artifact: artifact}
	if err != nil {
		rec.ErrMsg = err.Error()
	}
	s.journalAppend(rec)
	switch outcome {
	case "done":
		ru.finish(artifact, failures, s.Stats())
	case "cancelled":
		ru.cancelled(artifact)
	default:
		ru.fail(err)
	}
	s.finishedOps(ru, outcome, rec.ErrMsg)
}

// memoize wraps a runner with the trial memo: results are replayed by
// (cell memo key, trial) content address instead of re-executed, and every
// freshly executed result is journaled before it is used. The memo key
// covers everything a trial depends on, so a hit is exact; specs that share
// cells (including resubmissions under a different name) share entries, and
// a restart rebuilds the table from the journal.
func (s *Server) memoize(ru *run, runner exp.Runner) exp.Runner {
	return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
		key := fmt.Sprintf("%s/%d", j.Spec.CellMemoKey(j.Cell), j.Trial)
		s.mu.Lock()
		if v, ok := s.memo[key]; ok {
			s.stats.TrialsMemoized++
			s.cfg.Obs.Counter("serve.trials_memoized").Inc()
			s.mu.Unlock()
			s.inst.trialsMemoized.Inc()
			ru.memoized.Add(1)
			s.spans.Record(ru.id, "memo", spanName("memo", j.Cell.Key(), j.Trial), time.Now(), 0)
			if v.err != "" {
				return nil, nil, fmt.Errorf("%s", v.err)
			}
			return v.metrics, v.snap, nil
		}
		s.mu.Unlock()

		// Fresh execution: timed, spanned on a leased slot track (so
		// concurrent trials render as parallel rows in the trace), and
		// journaled before the result is used.
		slot := s.acquireSlot()
		trialStart := time.Now()
		m, snap, err := runner(j)
		trialDur := time.Since(trialStart)
		s.releaseSlot(slot)
		s.inst.trialSeconds.Observe(trialDur.Seconds())
		s.spans.Record(ru.id, fmt.Sprintf("slot-%d", slot), spanName("trial", j.Cell.Key(), j.Trial), trialStart, trialDur)

		v := memoTrial{metrics: m, snap: snap}
		if err != nil {
			v.err = err.Error()
		}
		s.journalAppend(journal.Record{
			Kind:     journal.KindTrial,
			Key:      key,
			Metrics:  m,
			Obs:      snap.Encode(),
			TrialErr: v.err,
		})
		s.mu.Lock()
		s.memo[key] = v
		s.stats.TrialsExecuted++
		s.cfg.Obs.Counter("serve.trials_executed").Inc()
		s.mu.Unlock()
		s.inst.trialsExecuted.Inc()
		ru.executed.Add(1)
		return m, snap, err
	}
}

// Shutdown drains the service: admission stops immediately (submissions get
// 503 + Retry-After), in-flight runs get until ctx's deadline to finish on
// their own, then their dispatchers stop and in-flight trials drain. Every
// committed trial is already journaled, so anything cut off resumes on
// restart; a clean checkpoint is journaled and synced before return.
// Idempotent: later calls wait for the first to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.log.Info("drain started: admission stopped, in-flight runs finishing")
	close(s.quit)

	finished := make(chan struct{})
	go func() {
		s.running.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		// Grace expired: stop dispatching trials; in-flight ones drain.
		s.mu.Lock()
		live := make([]*run, 0, len(s.runs))
		for _, ru := range s.runs {
			live = append(live, ru)
		}
		s.mu.Unlock()
		for _, ru := range live {
			ru.cancelWith(errShutdown)
		}
		<-finished
	}
	s.workers.Wait()

	// Runs that never started (still queued) end their streams here; with no
	// terminal journal record they are resumable after restart.
	s.mu.Lock()
	var interrupted []*run
	for _, id := range s.order {
		if ru := s.runs[id]; !ru.snapshotState().terminal() {
			ru.interrupted()
			interrupted = append(interrupted, ru)
		}
	}
	s.mu.Unlock()
	for _, ru := range interrupted {
		s.finishedOps(ru, "interrupted", "")
	}

	if s.journal != nil {
		s.journalAppend(journal.Record{Kind: journal.KindCheckpoint})
		s.journal.Sync()
		s.journal.Close()
	}
	s.log.Info("shutdown complete", "uptime_seconds", int64(time.Since(s.started).Seconds()))
	close(s.done)
	return nil
}

// Close shuts the server down with no grace period: dispatchers stop at the
// next trial boundary, in-flight trials drain, committed work stays
// journaled.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Shutdown(ctx)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *run {
	s.mu.Lock()
	ru := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if ru == nil {
		httpError(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
	}
	return ru
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]RunInfo, len(s.order))
	for i, id := range s.order {
		infos[i] = s.runs[id].info()
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"runs": infos})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ru.info())
}

// handleCancel stops a run: a queued run dies immediately, a running run's
// dispatcher stops and its in-flight trials drain into a partial artifact.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	if ru.cancelIfQueued() {
		s.journalAppend(journal.Record{Kind: journal.KindEnd, RunID: ru.id, Outcome: "cancelled"})
		s.finishedOps(ru, "cancelled", "")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": ru.id, "state": string(StateCancelled)})
		return
	}
	if st := ru.snapshotState(); st.terminal() {
		httpError(w, http.StatusConflict, "run %s is already %s", ru.id, st)
		return
	}
	ru.cancelWith(errClientCancel)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": ru.id, "state": "cancelling"})
}

// handleEvents streams the run's event history from the requested offset
// (?from=N, default 0) and then follows it live as NDJSON, one event object
// per line, ending with the terminal event. A disconnected client resumes by
// passing the last seq it saw plus one; offsets from a previous server
// incarnation that overrun the rebuilt history replay from the start.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	next := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from offset %q", v)
			return
		}
		next = n
	}
	s.inst.streamsTotal.Inc()
	if next > 0 {
		// A nonzero resume offset means a client reconnected mid-run.
		s.inst.streamResumes.Inc()
	}
	s.inst.streamsActive.Add(1)
	defer s.inst.streamsActive.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, notify, terminal := ru.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(evs) > 0 {
			next = evs[len(evs)-1].Seq + 1
			if flusher != nil {
				flusher.Flush()
			}
		}
		if terminal && next >= ru.eventCount() {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.done:
			// Server shut down mid-stream; the client resumes with ?from=.
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	artifact, state, errMsg := ru.result()
	switch state {
	case StateDone, StateCancelled:
		if artifact == nil {
			httpError(w, http.StatusConflict, "run %s was cancelled before producing an artifact", ru.id)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(artifact)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, "run failed: %s", errMsg)
	default:
		httpError(w, http.StatusConflict, "run %s is still %s", ru.id, state)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
