// Package serve exposes the experiment harness as a long-lived HTTP
// service: clients POST declarative exp specs, follow progress as an NDJSON
// event stream, and fetch the finished versioned artifact. The service
// preserves the harness's determinism contract end to end — an artifact
// served over HTTP is byte-identical to what `meecc batch` writes locally
// for the same spec, at any worker count — and adds two persistence layers
// on top: completed trials are memoized by cell content hash (resubmitting a
// spec re-executes nothing), and warm channel state is spilled to and
// faulted from a snapstore, so calibration work survives across submissions
// and process restarts.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/snapstore"
)

// Config shapes a Server.
type Config struct {
	// Workers sizes each run's trial pool (<= 0 means GOMAXPROCS). Worker
	// count never changes artifacts, only wall time.
	Workers int
	// StoreDir, when non-empty, roots a snapstore for the warm-state disk
	// tier. Empty keeps warm state purely in memory.
	StoreDir string
	// StoreMaxBytes bounds the store (<= 0 means unbounded).
	StoreMaxBytes int64
	// WarmCapacity bounds the in-memory warm-state tier (<= 0 = default).
	WarmCapacity int
	// Obs, when non-nil, receives the service's counters
	// (serve.runs_submitted, serve.trials_executed, serve.trials_memoized,
	// serve.warm_disk_loads, serve.warm_disk_spills).
	Obs *obs.Observer
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	RunsSubmitted  int64
	TrialsExecuted int64
	TrialsMemoized int64
	Warm           core.WarmCacheStats
}

// Server is the HTTP handler. Create with New; safe for concurrent use.
type Server struct {
	cfg  Config
	warm *core.WarmCache
	mux  *http.ServeMux

	mu    sync.Mutex
	runs  map[string]*run
	order []string // insertion order, for listing
	subs  map[string]int
	memo  map[string]memoTrial
	stats Stats
}

// memoTrial is one completed trial's result, keyed by the cell memo key and
// trial index. Results are deterministic, so replaying a stored value is
// indistinguishable from re-executing the trial.
type memoTrial struct {
	metrics exp.Metrics
	snap    *obs.Snapshot
	err     string
}

// New builds a server, opening the warm-state store when configured.
func New(cfg Config) (*Server, error) {
	warm := core.NewWarmCache(cfg.WarmCapacity)
	if cfg.StoreDir != "" {
		store, err := snapstore.Open(cfg.StoreDir, cfg.StoreMaxBytes)
		if err != nil {
			return nil, err
		}
		warm.AttachStore(store)
	}
	s := &Server{
		cfg:  cfg,
		warm: warm,
		runs: map[string]*run{},
		subs: map[string]int{},
		memo: map[string]memoTrial{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/artifact", s.handleArtifact)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns the service counters. Counter reads are consistent with the
// runs that have finished; call after a run completes for exact totals.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Warm = s.warm.Stats()
	return st
}

// handleSubmit accepts a spec, assigns a run id derived from the spec's
// content hash and a per-spec submission counter, and starts the run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var raw json.RawMessage
	if err := json.NewDecoder(body).Decode(&raw); err != nil {
		httpError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := exp.ParseSpec(raw)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if _, err := exp.RunnerFor(spec.Study); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	hash := spec.Hash()

	s.mu.Lock()
	s.subs[hash]++
	id := fmt.Sprintf("%s-%d", hash[:12], s.subs[hash])
	ru := newRun(id, spec, hash)
	s.runs[id] = ru
	s.order = append(s.order, id)
	s.stats.RunsSubmitted++
	s.cfg.Obs.Counter("serve.runs_submitted").Inc()
	s.mu.Unlock()

	go s.execute(ru)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(ru.info())
}

// execute runs the spec through the harness with the memoizing runner,
// emitting progress events and capturing the canonical artifact.
func (s *Server) execute(ru *run) {
	runner, err := exp.RunnerWithWarmCache(ru.spec.Study, s.warm)
	if err != nil {
		ru.fail(err)
		return
	}
	rep, err := exp.Run(ru.spec, s.memoize(runner), exp.Config{
		Workers: s.cfg.Workers,
		OnProgress: func(p exp.Progress) {
			ru.emit(event{
				Type:      "progress",
				Done:      p.Done,
				Total:     p.Total,
				CellsDone: p.CellsDone,
				Cells:     p.Cells,
			})
		},
	})
	if err != nil {
		ru.fail(err)
		return
	}
	artifact, err := exp.MarshalArtifact(rep.Artifact())
	if err != nil {
		ru.fail(err)
		return
	}
	st := s.Stats()
	ru.finish(artifact, rep.Failures(), st)
}

// memoize wraps a runner with the trial memo: results are replayed by
// (cell memo key, trial) content address instead of re-executed. The memo
// key covers everything a trial depends on, so a hit is exact; specs that
// share cells (including resubmissions under a different name) share
// entries.
func (s *Server) memoize(runner exp.Runner) exp.Runner {
	return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
		key := fmt.Sprintf("%s/%d", j.Spec.CellMemoKey(j.Cell), j.Trial)
		s.mu.Lock()
		if v, ok := s.memo[key]; ok {
			s.stats.TrialsMemoized++
			s.cfg.Obs.Counter("serve.trials_memoized").Inc()
			s.mu.Unlock()
			if v.err != "" {
				return nil, nil, fmt.Errorf("%s", v.err)
			}
			return v.metrics, v.snap, nil
		}
		s.mu.Unlock()

		m, snap, err := runner(j)

		v := memoTrial{metrics: m, snap: snap}
		if err != nil {
			v.err = err.Error()
		}
		s.mu.Lock()
		s.memo[key] = v
		s.stats.TrialsExecuted++
		s.cfg.Obs.Counter("serve.trials_executed").Inc()
		s.mu.Unlock()
		return m, snap, err
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *run {
	s.mu.Lock()
	ru := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if ru == nil {
		httpError(w, http.StatusNotFound, "no run %q", r.PathValue("id"))
	}
	return ru
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]runInfo, len(s.order))
	for i, id := range s.order {
		infos[i] = s.runs[id].info()
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"runs": infos})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ru.info())
}

// handleEvents streams the run's event history and then follows it live as
// NDJSON, one event object per line, ending with the terminal done/error
// event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, notify, terminal := ru.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal && next == ru.eventCount() {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	artifact, state, errMsg := ru.result()
	switch state {
	case runDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(artifact)
	case runFailed:
		httpError(w, http.StatusInternalServerError, "run failed: %s", errMsg)
	default:
		httpError(w, http.StatusConflict, "run %s is still %s", ru.id, state)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
