package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"meecc/internal/core"
	"meecc/internal/exp"
	"meecc/internal/obs"
	"meecc/internal/serve"
)

// blockingFactory builds a runner that announces each trial on started and
// then parks until release closes — the tool for freezing a run mid-flight.
func blockingFactory(started chan<- string, release <-chan struct{}) func(string, *core.WarmCache) (exp.Runner, error) {
	return func(study string, warm *core.WarmCache) (exp.Runner, error) {
		return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
			started <- j.Spec.Name
			<-release
			return exp.Metrics{"v": float64(j.Seed % 100)}, nil, nil
		}, nil
	}
}

func oneTrialSpec(name string) string {
	return fmt.Sprintf(`{"name":%q,"study":"synthetic","base_seed":1,"trials":1}`, name)
}

func postSpec(t *testing.T, base, spec string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionControlRejectsWhenSaturated: with one run slot occupied and
// the one-deep pending queue full, the next submission bounces with 429 and
// a Retry-After hint instead of queueing unboundedly.
func TestAdmissionControlRejectsWhenSaturated(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	o := obs.NewObserver()
	srv, err := serve.New(serve.Config{
		Workers:       1,
		MaxConcurrent: 1,
		MaxPending:    1,
		RunnerFactory: blockingFactory(started, release),
		Obs:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release) // unblock before Close drains
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postSpec(t, ts.URL, oneTrialSpec("a"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run a: %s", resp.Status)
	}
	<-started // a holds the only run slot; the queue is empty again

	resp = postSpec(t, ts.URL, oneTrialSpec("b"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("run b: %s", resp.Status)
	}

	resp = postSpec(t, ts.URL, oneTrialSpec("c"))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("run c at saturation: %s: %s", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After hint")
	}
	if st := srv.Stats(); st.RejectedOverload != 1 {
		t.Fatalf("RejectedOverload = %d, want 1", st.RejectedOverload)
	}
	if c := o.SnapshotAll().Counters["serve.rejected_overload"]; c != 1 {
		t.Fatalf("serve.rejected_overload = %d, want 1", c)
	}
}

// TestCancelRunningRunDrainsToPartialArtifact: DELETE on an executing run
// stops its dispatcher; the in-flight trial drains, and the artifact comes
// back flagged partial with the undispatched trials marked skipped.
func TestCancelRunningRunDrainsToPartialArtifact(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	srv, err := serve.New(serve.Config{
		Workers:       1,
		RunnerFactory: blockingFactory(started, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postSpec(t, ts.URL, synSpec) // 4 trials, 1 worker: plenty to cut
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := info["id"].(string)
	<-started // first trial is in flight

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running run: %s", dresp.Status)
	}
	close(release) // let the in-flight trial drain

	ev, err := http.Get(ts.URL + info["events"].(string))
	if err != nil {
		t.Fatal(err)
	}
	var last serve.Event
	dec := json.NewDecoder(ev.Body)
	for {
		if err := dec.Decode(&last); err != nil {
			t.Fatalf("stream ended before terminal event: %v", err)
		}
		if last.Terminal() {
			break
		}
	}
	ev.Body.Close()
	if last.Type != "cancelled" {
		t.Fatalf("terminal event %q, want cancelled", last.Type)
	}

	raw := fetchArtifact(t, ts.URL, info)
	art, err := exp.UnmarshalArtifact(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Partial {
		t.Fatal("cancelled run's artifact not flagged partial")
	}
	skipped := 0
	for _, tr := range art.Trials {
		if tr.Err == exp.SkippedErr {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("cancelled run skipped no trials")
	}

	// Cancelling a terminal run is a conflict, not a second cancellation.
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of terminal run: %s, want 409", dresp.Status)
	}
}

// TestCancelQueuedRunDiesImmediately: a run cancelled before a worker picks
// it up never executes a trial and has no artifact.
func TestCancelQueuedRunDiesImmediately(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	srv, err := serve.New(serve.Config{
		Workers:       1,
		MaxConcurrent: 1,
		MaxPending:    4,
		RunnerFactory: blockingFactory(started, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postSpec(t, ts.URL, oneTrialSpec("blocker"))
	resp.Body.Close()
	<-started // blocker owns the only slot

	resp = postSpec(t, ts.URL, oneTrialSpec("victim"))
	var info map[string]any
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	id := info["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued run: %s, want 200", dresp.Status)
	}
	if st := runState(t, ts.URL, id); st != "cancelled" {
		t.Fatalf("queued run in state %q after cancel", st)
	}
	aresp, err := http.Get(ts.URL + info["artifact"].(string))
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusConflict {
		t.Fatalf("artifact of never-started run: %s, want 409", aresp.Status)
	}
	if st := srv.Stats(); st.TrialsExecuted != 0 {
		t.Fatalf("cancelled-while-queued run executed %d trials", st.TrialsExecuted)
	}
}

// TestRunDeadlineFailsSlowRuns: a run that overruns Config.RunTimeout stops
// dispatching and fails with a deadline error.
func TestRunDeadlineFailsSlowRuns(t *testing.T) {
	slow := func(study string, warm *core.WarmCache) (exp.Runner, error) {
		return func(j exp.Job) (exp.Metrics, *obs.Snapshot, error) {
			time.Sleep(30 * time.Millisecond)
			return exp.Metrics{"v": 1}, nil, nil
		}, nil
	}
	srv, err := serve.New(serve.Config{Workers: 1, RunTimeout: 60 * time.Millisecond, RunnerFactory: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// 1 cell × 20 trials at 30ms each: the 60ms deadline lands mid-run.
	info, events := submitAndWait(t, ts.URL,
		`{"name":"slow","study":"synthetic","base_seed":1,"trials":20}`)
	last := events[len(events)-1]
	if last["type"] != "error" {
		t.Fatalf("slow run ended with %v, want error", last)
	}
	if msg, _ := last["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not mention the deadline", msg)
	}
	if st := runState(t, ts.URL, info["id"].(string)); st != "failed" {
		t.Fatalf("deadline-exceeded run in state %q, want failed", st)
	}
}

// TestEventStreamOffsets: ?from=N skips already-seen history, an overrun
// offset (from a previous server incarnation) replays from the start, and a
// malformed offset is a client error.
func TestEventStreamOffsets(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 1, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info, events := submitAndWait(t, ts.URL, synSpec)
	total := len(events)
	if total < 3 {
		t.Fatalf("only %d events", total)
	}

	streamFrom := func(from string) []serve.Event {
		resp, err := http.Get(ts.URL + info["events"].(string) + "?from=" + from)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("from=%s: %s", from, resp.Status)
		}
		var evs []serve.Event
		dec := json.NewDecoder(resp.Body)
		for {
			var ev serve.Event
			if err := dec.Decode(&ev); err != nil {
				break
			}
			evs = append(evs, ev)
		}
		return evs
	}

	mid := streamFrom("2")
	if len(mid) != total-2 {
		t.Fatalf("from=2 returned %d events, want %d", len(mid), total-2)
	}
	if mid[0].Seq != 2 {
		t.Fatalf("from=2 started at seq %d", mid[0].Seq)
	}
	// Seq numbering is dense: event i in the full replay has seq i.
	full := streamFrom("0")
	for i, ev := range full {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if stale := streamFrom("9999"); len(stale) != total {
		t.Fatalf("stale offset replayed %d events, want all %d", len(stale), total)
	}

	resp, err := http.Get(ts.URL + info["events"].(string) + "?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-1: %s, want 400", resp.Status)
	}
}

// TestSubmitRejectedWhileDraining: once Shutdown begins, new submissions
// get 503 + Retry-After (the restart is coming), never a hang.
func TestSubmitRejectedWhileDraining(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	srv, err := serve.New(serve.Config{Workers: 1, MaxConcurrent: 1, RunnerFactory: blockingFactory(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postSpec(t, ts.URL, oneTrialSpec("a"))
	resp.Body.Close()
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Close() }()
	// Admission flips synchronously at the start of Shutdown; poll until the
	// drain flag is visible, then the run can finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postSpec(t, ts.URL, oneTrialSpec("late"))
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 carried no Retry-After hint")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still admitting: %s", resp.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatal(err)
	}
}
