package serve_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"meecc/internal/serve"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := serve.Backoff{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2, Attempts: 6}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %s, want %s", attempt, got, w)
		}
	}
}

func TestBackoffJitterStaysBounded(t *testing.T) {
	b := serve.Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2, Attempts: 6}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 4; attempt++ {
		center := b.Delay(attempt, nil)
		lo := time.Duration(float64(center) * 0.8)
		hi := time.Duration(float64(center) * 1.2)
		for i := 0; i < 100; i++ {
			d := b.Delay(attempt, rng)
			if d < lo || d > hi {
				t.Fatalf("Delay(%d) = %s outside [%s, %s]", attempt, d, lo, hi)
			}
		}
	}
}

// fastBackoff keeps retry tests quick.
var fastBackoff = serve.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2, Attempts: 6}

// TestSubmitRetriesThroughPushback: 429 responses (admission control) are
// retried, honoring Retry-After, until the server accepts.
func TestSubmitRetriesThroughPushback(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"run queue is full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.RunInfo{ID: "abc-1", Events: "/v1/runs/abc-1/events"})
	}))
	defer ts.Close()

	c := &serve.Client{BaseURL: ts.URL, Backoff: fastBackoff}
	info, err := c.Submit([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "abc-1" {
		t.Fatalf("info.ID = %q", info.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d submits, want 3", n)
	}
}

// TestSubmitDoesNotRetryClientErrors: a 422 means the spec itself is bad;
// retrying would never help.
func TestSubmitDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"trials must be >= 1"}`)
	}))
	defer ts.Close()

	c := &serve.Client{BaseURL: ts.URL, Backoff: fastBackoff}
	if _, err := c.Submit([]byte(`{}`)); err == nil {
		t.Fatal("bad spec accepted")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("client retried a 422: %d submits", n)
	}
}

// TestSubmitRetriesConnectionRefused: a dead server (mid-restart) is a
// retriable condition, and the client gives up only after its budget.
func TestSubmitRetriesConnectionRefused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // address is now refused

	c := &serve.Client{BaseURL: ts.URL, Backoff: serve.Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1, Attempts: 3}}
	start := time.Now()
	if _, err := c.Submit([]byte(`{}`)); err == nil {
		t.Fatal("submit to dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("gave up after %s; no backoff happened", elapsed)
	}
}

// TestFollowResumesSeveredStream: the server drops the event stream without
// a terminal event (restart mid-run); the client reconnects with ?from= and
// the caller sees every event exactly once.
func TestFollowResumesSeveredStream(t *testing.T) {
	var reqs atomic.Int32
	events := []serve.Event{
		{Seq: 0, Type: "queued"},
		{Seq: 1, Type: "started"},
		{Seq: 2, Type: "progress", Done: 1, Total: 2},
		{Seq: 3, Type: "done"},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.Atoi(r.URL.Query().Get("from"))
		enc := json.NewEncoder(w)
		switch reqs.Add(1) {
		case 1:
			if from != 0 {
				t.Errorf("first request from=%d, want 0", from)
			}
			enc.Encode(events[0])
			enc.Encode(events[1])
			// Stream severed here: no terminal event.
		default:
			if from != 2 {
				t.Errorf("resumed request from=%d, want 2", from)
			}
			for _, ev := range events[from:] {
				enc.Encode(ev)
			}
		}
	}))
	defer ts.Close()

	c := &serve.Client{BaseURL: ts.URL, Backoff: fastBackoff}
	var seen []int
	last, err := c.Follow(serve.RunInfo{ID: "x", Events: "/v1/runs/x/events"}, 0, func(ev serve.Event) {
		seen = append(seen, ev.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Type != "done" {
		t.Fatalf("terminal event %q", last.Type)
	}
	if want := []int{0, 1, 2, 3}; len(seen) != len(want) {
		t.Fatalf("saw seqs %v, want %v", seen, want)
	} else {
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("saw seqs %v, want %v", seen, want)
			}
		}
	}
	if n := reqs.Load(); n != 2 {
		t.Fatalf("server saw %d stream requests, want 2", n)
	}
}

// TestClientEndToEnd drives the real server through the client: submit,
// follow to done, fetch — the path `meecc submit` takes.
func TestClientEndToEnd(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 1, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := &serve.Client{BaseURL: ts.URL, Backoff: fastBackoff}
	info, err := c.Submit([]byte(synSpec))
	if err != nil {
		t.Fatal(err)
	}
	last, err := c.Follow(info, 0, func(serve.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if last.Type != "done" {
		t.Fatalf("terminal event %q", last.Type)
	}
	art, err := c.Artifact(info)
	if err != nil {
		t.Fatal(err)
	}
	if len(art) == 0 {
		t.Fatal("empty artifact")
	}
	if err := c.Cancel(info); err == nil {
		t.Fatal("cancel of finished run succeeded")
	}
}
