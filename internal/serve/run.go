package serve

import (
	"sync"

	"meecc/internal/exp"
)

// runState is a run's lifecycle phase.
type runState string

const (
	runRunning runState = "running"
	runDone    runState = "done"
	runFailed  runState = "failed"
)

// event is one NDJSON progress line. The terminal event is type "done"
// (carrying the service's memo counters, the determinism proof a client can
// check) or "error".
type event struct {
	Type      string `json:"type"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	CellsDone int    `json:"cells_done,omitempty"`
	Cells     int    `json:"cells,omitempty"`
	Failures  int    `json:"failures,omitempty"`
	// Cumulative service counters, reported on the done event: how many
	// trials this service has ever executed vs replayed from the memo.
	TrialsExecuted int64  `json:"trials_executed,omitempty"`
	TrialsMemoized int64  `json:"trials_memoized,omitempty"`
	Error          string `json:"error,omitempty"`
}

// runInfo is the submit/status response body.
type runInfo struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Study      string   `json:"study"`
	SpecSHA256 string   `json:"spec_sha256"`
	State      runState `json:"state"`
	Events     string   `json:"events"`
	Artifact   string   `json:"artifact"`
	Error      string   `json:"error,omitempty"`
}

// run is one submitted spec moving through the service.
type run struct {
	id       string
	spec     *exp.Spec
	specHash string

	mu       sync.Mutex
	state    runState
	events   []event
	notify   chan struct{} // closed and replaced on every append
	artifact []byte
	errMsg   string
}

func newRun(id string, spec *exp.Spec, hash string) *run {
	ru := &run{
		id:       id,
		spec:     spec,
		specHash: hash,
		state:    runRunning,
		notify:   make(chan struct{}),
	}
	ru.emit(event{Type: "queued"})
	return ru
}

func (ru *run) info() runInfo {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return runInfo{
		ID:         ru.id,
		Name:       ru.spec.Name,
		Study:      ru.spec.Study,
		SpecSHA256: ru.specHash,
		State:      ru.state,
		Events:     "/v1/runs/" + ru.id + "/events",
		Artifact:   "/v1/runs/" + ru.id + "/artifact",
		Error:      ru.errMsg,
	}
}

// emit appends an event and wakes every streaming client.
func (ru *run) emit(ev event) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.emitLocked(ev)
}

func (ru *run) emitLocked(ev event) {
	ru.events = append(ru.events, ev)
	close(ru.notify)
	ru.notify = make(chan struct{})
}

// finish records the canonical artifact and emits the terminal done event.
func (ru *run) finish(artifact []byte, failures int, st Stats) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.state = runDone
	ru.artifact = artifact
	ru.emitLocked(event{
		Type:           "done",
		Failures:       failures,
		TrialsExecuted: st.TrialsExecuted,
		TrialsMemoized: st.TrialsMemoized,
	})
}

// fail marks the run failed and emits the terminal error event.
func (ru *run) fail(err error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.state = runFailed
	ru.errMsg = err.Error()
	ru.emitLocked(event{Type: "error", Error: ru.errMsg})
}

// eventsFrom returns the events at and after index `from`, the channel that
// closes on the next append, and whether the run has reached a terminal
// state.
func (ru *run) eventsFrom(from int) ([]event, <-chan struct{}, bool) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	var evs []event
	if from < len(ru.events) {
		evs = append(evs, ru.events[from:]...)
	}
	return evs, ru.notify, ru.state != runRunning
}

func (ru *run) eventCount() int {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return len(ru.events)
}

// result returns the terminal artifact and state.
func (ru *run) result() ([]byte, runState, string) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return ru.artifact, ru.state, ru.errMsg
}
