package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"meecc/internal/exp"
)

// State is a run's lifecycle phase.
type State string

const (
	// StateQueued: admitted and journaled, waiting for a run slot.
	StateQueued State = "queued"
	// StateRunning: trials are executing.
	StateRunning State = "running"
	// StateDone: finished; the artifact is available.
	StateDone State = "done"
	// StateFailed: the run errored (bad study, deadline exceeded, ...).
	StateFailed State = "failed"
	// StateCancelled: stopped by DELETE /v1/runs/{id}; a partial artifact
	// (flagged partial, cut-off trials marked skipped) is available.
	StateCancelled State = "cancelled"
	// StateInterrupted: the process died or drained before the run finished.
	// The journal keeps every committed trial, so resubmitting the same spec
	// re-executes only what never committed.
	StateInterrupted State = "interrupted"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s != StateQueued && s != StateRunning
}

// Event is one NDJSON line of a run's event stream. Seq is the event's
// offset in the run's history; a client that reconnects with ?from=<seq+1>
// resumes the stream exactly where it left off. The terminal event is type
// "done" (carrying the service's memo counters, the determinism proof a
// client can check), "error", "cancelled", or "interrupted".
type Event struct {
	Seq       int    `json:"seq"`
	Type      string `json:"type"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	CellsDone int    `json:"cells_done,omitempty"`
	Cells     int    `json:"cells,omitempty"`
	Failures  int    `json:"failures,omitempty"`
	// Cumulative service counters, reported on the done event: how many
	// trials this service has ever executed vs replayed from the memo.
	TrialsExecuted int64 `json:"trials_executed,omitempty"`
	TrialsMemoized int64 `json:"trials_memoized,omitempty"`
	// Per-run execution counts, reported on the done event: how many of THIS
	// run's trials were freshly executed vs replayed from the memo.
	RunExecuted int64  `json:"run_executed,omitempty"`
	RunMemoized int64  `json:"run_memoized,omitempty"`
	Error       string `json:"error,omitempty"`
	// TS is the event's wall-clock timestamp (Unix milliseconds). It is
	// operational metadata on the transport stream only — artifacts carry no
	// wall-clock state, so served artifacts stay byte-identical.
	TS int64 `json:"ts,omitempty"`
}

// Terminal reports whether the event ends its run's stream.
func (e Event) Terminal() bool {
	switch e.Type {
	case "done", "error", "cancelled", "interrupted":
		return true
	}
	return false
}

// RunInfo is the submit/status response body.
type RunInfo struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Study      string `json:"study"`
	SpecSHA256 string `json:"spec_sha256"`
	State      State  `json:"state"`
	Events     string `json:"events"`
	Artifact   string `json:"artifact"`
	Error      string `json:"error,omitempty"`
}

// run is one submitted spec moving through the service.
type run struct {
	id       string
	spec     *exp.Spec
	specHash string

	// Wall-clock lifecycle marks and per-run trial counts — operational
	// telemetry for events, spans, and the submit summary line; never part
	// of the artifact.
	queuedAt  time.Time
	startedAt time.Time
	executed  atomic.Int64
	memoized  atomic.Int64

	mu       sync.Mutex
	state    State
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	artifact []byte
	errMsg   string
	// cancel tears down the run's context (set while executing, and for
	// queued runs so DELETE can reject them before they start).
	cancel context.CancelCauseFunc
}

func newRun(id string, spec *exp.Spec, hash string) *run {
	ru := &run{
		id:       id,
		spec:     spec,
		specHash: hash,
		state:    StateQueued,
		notify:   make(chan struct{}),
		queuedAt: time.Now(),
	}
	ru.emit(Event{Type: "queued"})
	return ru
}

func (ru *run) info() RunInfo {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return RunInfo{
		ID:         ru.id,
		Name:       ru.spec.Name,
		Study:      ru.spec.Study,
		SpecSHA256: ru.specHash,
		State:      ru.state,
		Events:     "/v1/runs/" + ru.id + "/events",
		Artifact:   "/v1/runs/" + ru.id + "/artifact",
		Error:      ru.errMsg,
	}
}

// emit appends an event and wakes every streaming client.
func (ru *run) emit(ev Event) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.emitLocked(ev)
}

func (ru *run) emitLocked(ev Event) {
	ev.Seq = len(ru.events)
	ev.TS = time.Now().UnixMilli()
	ru.events = append(ru.events, ev)
	close(ru.notify)
	ru.notify = make(chan struct{})
}

// start transitions queued → running and installs the cancel hook; it
// returns false if the run is already terminal (cancelled while queued).
func (ru *run) start(cancel context.CancelCauseFunc) bool {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.state.terminal() {
		return false
	}
	ru.state = StateRunning
	ru.cancel = cancel
	ru.startedAt = time.Now()
	ru.emitLocked(Event{Type: "started"})
	return true
}

// cancelWith tears down the run's context with the given cause; a no-op for
// runs that are terminal or have no context yet.
func (ru *run) cancelWith(cause error) {
	ru.mu.Lock()
	cancel := ru.cancel
	ru.mu.Unlock()
	if cancel != nil {
		cancel(cause)
	}
}

// finish records the canonical artifact and emits the terminal done event.
func (ru *run) finish(artifact []byte, failures int, st Stats) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.state = StateDone
	ru.artifact = artifact
	ru.emitLocked(Event{
		Type:           "done",
		Failures:       failures,
		TrialsExecuted: st.TrialsExecuted,
		TrialsMemoized: st.TrialsMemoized,
		RunExecuted:    ru.executed.Load(),
		RunMemoized:    ru.memoized.Load(),
	})
}

// fail marks the run failed and emits the terminal error event.
func (ru *run) fail(err error) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.state = StateFailed
	ru.errMsg = err.Error()
	ru.emitLocked(Event{Type: "error", Error: ru.errMsg})
}

// cancelled marks the run client-cancelled, keeping whatever partial
// artifact the drain produced.
func (ru *run) cancelled(artifact []byte) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.state.terminal() {
		return
	}
	ru.state = StateCancelled
	ru.artifact = artifact
	ru.emitLocked(Event{Type: "cancelled"})
}

// cancelIfQueued atomically cancels a run that has not started executing.
// It returns false once the run is running or terminal, and the caller falls
// back to context cancellation; the check and the transition share the run's
// mutex with start, so the two paths can never both claim the run.
func (ru *run) cancelIfQueued() bool {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.state != StateQueued {
		return false
	}
	ru.state = StateCancelled
	ru.emitLocked(Event{Type: "cancelled"})
	return true
}

// restore applies a terminal state replayed from the journal, re-emitting
// the terminal event so late stream subscribers still see the run end.
func (ru *run) restore(state State, artifact []byte, errMsg string) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	ru.state = state
	ru.artifact = artifact
	ru.errMsg = errMsg
	switch state {
	case StateDone:
		ru.emitLocked(Event{Type: "done"})
	case StateCancelled:
		ru.emitLocked(Event{Type: "cancelled"})
	default:
		ru.emitLocked(Event{Type: "error", Error: errMsg})
	}
}

// interrupted marks the run cut off by shutdown; committed trials stay in
// the journal, so the run is resumable by resubmitting its spec.
func (ru *run) interrupted() {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if ru.state.terminal() {
		return
	}
	ru.state = StateInterrupted
	ru.emitLocked(Event{Type: "interrupted", Error: "server shut down before the run finished; resubmit the spec to resume"})
}

// snapshotState returns the current state.
func (ru *run) snapshotState() State {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return ru.state
}

// eventsFrom returns the events at and after index `from` (clamped to the
// available history — a client resuming against a restarted server may hold
// an offset from a longer, pre-crash history), the channel that closes on
// the next append, and whether the run has reached a terminal state.
func (ru *run) eventsFrom(from int) ([]Event, <-chan struct{}, bool) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	if from > len(ru.events) {
		from = 0 // stale offset from a previous incarnation: replay all
	}
	var evs []Event
	if from < len(ru.events) {
		evs = append(evs, ru.events[from:]...)
	}
	return evs, ru.notify, ru.state.terminal()
}

func (ru *run) eventCount() int {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return len(ru.events)
}

// result returns the terminal artifact and state.
func (ru *run) result() ([]byte, State, string) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return ru.artifact, ru.state, ru.errMsg
}
