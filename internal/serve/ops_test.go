package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"meecc/internal/obs"
	"meecc/internal/obs/ops"
	"meecc/internal/serve"
)

// requiredFamilies is the /metrics contract: these families are present on
// every scrape of every server, whatever components are configured — the
// same list ci.sh asserts through `meecc top -once -require`.
var requiredFamilies = []string{
	"meecc_serve_runs_submitted_total",
	"meecc_serve_runs_rejected_total",
	"meecc_serve_runs_finished_total",
	"meecc_serve_runs_active",
	"meecc_serve_queue_depth",
	"meecc_serve_run_seconds",
	"meecc_serve_queue_wait_seconds",
	"meecc_serve_trials_executed_total",
	"meecc_serve_trials_memoized_total",
	"meecc_serve_trial_seconds",
	"meecc_serve_memo_entries",
	"meecc_serve_event_streams_active",
	"meecc_serve_event_streams_total",
	"meecc_serve_event_stream_resumes_total",
	"meecc_journal_appends_total",
	"meecc_journal_append_errors_total",
	"meecc_journal_size_bytes",
	"meecc_snapstore_puts_total",
	"meecc_snapstore_gets_total",
	"meecc_snapstore_selfheal_deletions_total",
	"meecc_snapstore_bytes",
	"meecc_exp_queue_wait_seconds",
	"meecc_exp_trial_seconds",
	"meecc_http_requests_total",
	"meecc_http_request_seconds",
	"meecc_process_uptime_seconds",
	"meecc_process_goroutines",
	"meecc_process_heap_bytes",
}

// scrape fetches and parses GET /metrics.
func scrape(t *testing.T, base string) *ops.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ops.TextContentType {
		t.Fatalf("content type %q, want %q", ct, ops.TextContentType)
	}
	sc, err := ops.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v", err)
	}
	return sc
}

// getHealth fetches and decodes GET /healthz.
func getHealth(t *testing.T, base string) serve.Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMetricsExpositionCoversEveryLayer runs a synthetic grid to completion
// and asserts (a) every contractual family is present and parseable, and
// (b) the admission/trial/memo counters reflect the run: a resubmitted spec
// shows up entirely in the memoized counter.
func TestMetricsExpositionCoversEveryLayer(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Workers:       2,
		StoreDir:      t.TempDir(),
		JournalPath:   t.TempDir() + "/serve.wal",
		RunnerFactory: syntheticFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Before any run: every family already present (the dashboards-never-
	// special-case contract), all counters zero.
	sc := scrape(t, ts.URL)
	for _, fam := range requiredFamilies {
		if !sc.Has(fam) {
			t.Errorf("family %s missing from pre-run scrape", fam)
		}
	}
	if v := sc.Value("meecc_serve_runs_submitted_total"); v != 0 {
		t.Fatalf("pre-run runs_submitted = %v", v)
	}

	submitAndWait(t, ts.URL, synSpec)
	submitAndWait(t, ts.URL, synSpec) // fully memoized replay

	sc = scrape(t, ts.URL)
	if v := sc.Value("meecc_serve_runs_submitted_total"); v != 2 {
		t.Errorf("runs_submitted = %v, want 2", v)
	}
	if v := sc.Value("meecc_serve_trials_executed_total"); v != 4 {
		t.Errorf("trials_executed = %v, want 4", v)
	}
	if v := sc.Value("meecc_serve_trials_memoized_total"); v != 4 {
		t.Errorf("trials_memoized = %v, want 4", v)
	}
	if v := sc.Value("meecc_serve_trial_seconds_count"); v != 4 {
		t.Errorf("trial_seconds count = %v, want 4", v)
	}
	if v := sc.Value("meecc_journal_appends_total"); v < 5 {
		t.Errorf("journal appends = %v, want >= 5 (2 runs + 4 trials ...)", v)
	}
	// The run outcome counter is labeled; both runs finished done.
	var done float64
	for _, s := range sc.Samples["meecc_serve_runs_finished_total"] {
		if s.Labels["outcome"] == "done" {
			done += s.Value
		}
	}
	if done != 2 {
		t.Errorf("runs_finished{outcome=done} = %v, want 2", done)
	}
	if v := sc.Value("meecc_serve_event_streams_total"); v != 2 {
		t.Errorf("event_streams_total = %v, want 2", v)
	}
}

// TestHealthzDegradedFlags proves /healthz flips to degraded on the two
// survivable failure modes. The test injects through the shared registry —
// the same series journal.SetOps and snapstore.SetOps bump — so it pins the
// wiring (shared counter handles) rather than re-testing the components.
func TestHealthzDegradedFlags(t *testing.T) {
	reg := ops.NewRegistry()
	srv, err := serve.New(serve.Config{Workers: 1, RunnerFactory: syntheticFactory, Ops: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if h := getHealth(t, ts.URL); h.Status != "ok" || len(h.Degraded) != 0 {
		t.Fatalf("fresh server health = %+v, want ok", h)
	}

	reg.Counter("meecc_journal_append_errors_total", "").Inc()
	h := getHealth(t, ts.URL)
	if h.Status != "degraded" || len(h.Degraded) != 1 || h.Degraded[0] != "journal_append_errors" {
		t.Fatalf("health after journal error = %+v, want degraded [journal_append_errors]", h)
	}

	reg.Counter("meecc_snapstore_selfheal_deletions_total", "").Inc()
	h = getHealth(t, ts.URL)
	if h.Status != "degraded" || len(h.Degraded) != 2 {
		t.Fatalf("health after self-heal = %+v, want both degraded flags", h)
	}
}

// TestReadyzFlipsWhileDraining: ready before shutdown, 503 after.
func TestReadyzFlipsWhileDraining(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 1, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh /readyz = %s, want 200", resp.Status)
	}

	srv.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %s (%s), want 503", resp.Status, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("draining /readyz body %q, want draining reason", body)
	}
}

// TestRunTraceEndpoint exports a finished run's wall-clock spans and checks
// they pass the same Chrome-trace validation the sim-clock traces use, with
// one slice per lifecycle phase and trial.
func TestRunTraceEndpoint(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 2, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info, _ := submitAndWait(t, ts.URL, synSpec)
	resp, err := http.Get(ts.URL + "/v1/runs/" + info["id"].(string) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s: %s", resp.Status, data)
	}
	sum, err := obs.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	// submit + queued + execute + artifact + 4 trials = 8 slices.
	if sum.Slices != 8 {
		t.Errorf("trace has %d slices, want 8", sum.Slices)
	}

	// Unknown runs 404.
	resp404, err := http.Get(ts.URL + "/v1/runs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp404.Body)
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown run = %s, want 404", resp404.Status)
	}
}

// TestEventStreamCarriesWallClockMarks: every event is TS-stamped and the
// terminal done event reports the per-run executed/memoized split — what
// `meecc submit` turns into its summary line.
func TestEventStreamCarriesWallClockMarks(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 1, RunnerFactory: syntheticFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, events := submitAndWait(t, ts.URL, synSpec)
	for i, ev := range events {
		if tsv, _ := ev["ts"].(float64); tsv <= 0 {
			t.Errorf("event %d (%v) has no wall-clock ts", i, ev["type"])
		}
	}
	last := events[len(events)-1]
	if last["type"] != "done" {
		t.Fatalf("terminal event %v", last)
	}
	if v, _ := last["run_executed"].(float64); v != 4 {
		t.Errorf("done.run_executed = %v, want 4", last["run_executed"])
	}
	if _, ok := last["run_memoized"]; ok {
		// zero is omitted by omitempty; present means nonzero, which would
		// be wrong for a fresh single-run server.
		t.Errorf("done.run_memoized present on fresh run: %v", last["run_memoized"])
	}
}

// BenchmarkInstrumentedSubmit pushes a synthetic run through the fully
// instrumented submit → dispatch → execute → done path over real HTTP —
// the end-to-end cost of a served run with telemetry always-on.
func BenchmarkInstrumentedSubmit(b *testing.B) {
	srv, err := serve.New(serve.Config{Workers: 2, RunnerFactory: syntheticFactory})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats the memo: every trial executes.
		spec := fmt.Sprintf(`{"name":"bench","study":"synthetic","base_seed":%d,"trials":2,
			"axes":[{"name":"w","values":["1","2"]}]}`, i+1)
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			b.Fatal(err)
		}
		var info map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		ev, err := http.Get(ts.URL + info["events"].(string))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, ev.Body) // the stream ends at the terminal event
		ev.Body.Close()
	}
}
