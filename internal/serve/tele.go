package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"meecc/internal/obs/ops"
)

// serveInstruments holds the hot-path instrument handles, resolved once at
// New so request and trial paths never touch the registry's lookup mutex.
type serveInstruments struct {
	runsSubmitted  *ops.Counter
	runsActive     *ops.Gauge
	runSeconds     *ops.Histogram
	queueWait      *ops.Histogram
	trialsExecuted *ops.Counter
	trialsMemoized *ops.Counter
	trialSeconds   *ops.Histogram
	streamsActive  *ops.Gauge
	streamsTotal   *ops.Counter
	streamResumes  *ops.Counter
	journalErrors  *ops.Counter // shared handle with journal.SetOps
	storeSelfHeals *ops.Counter // shared handle with snapstore.SetOps
}

// registerOps creates every metric family the service exposes, whether or
// not the component behind it is configured — the /metrics contract is that
// the admission, queue, trial, memo, journal, and store families are always
// present, so dashboards and the CI scrape never special-case deployment
// shape. Components that ARE configured (journal, snapstore, warm cache,
// exp dispatcher) fetch these same handles through the shared registry.
func (s *Server) registerOps() {
	reg := s.ops

	// Admission and run lifecycle.
	s.inst.runsSubmitted = reg.Counter("meecc_serve_runs_submitted_total", "Runs admitted by POST /v1/runs.")
	for _, reason := range []string{"overload", "draining"} {
		reg.Counter("meecc_serve_runs_rejected_total", "Run submissions rejected.", "reason", reason)
	}
	for _, outcome := range []string{"done", "failed", "cancelled", "interrupted"} {
		reg.Counter("meecc_serve_runs_finished_total", "Runs reaching a terminal state.", "outcome", outcome)
	}
	s.inst.runsActive = reg.Gauge("meecc_serve_runs_active", "Runs executing right now.")
	reg.GaugeFunc("meecc_serve_queue_depth", "Admitted runs waiting for a run slot.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.pending)
	})
	s.inst.runSeconds = reg.Histogram("meecc_serve_run_seconds", "Wall time from run start to terminal state.", nil)
	s.inst.queueWait = reg.Histogram("meecc_serve_queue_wait_seconds", "Wall time runs spent queued before starting.", nil)

	// Trials and the memo table.
	s.inst.trialsExecuted = reg.Counter("meecc_serve_trials_executed_total", "Trials freshly executed by the service.")
	s.inst.trialsMemoized = reg.Counter("meecc_serve_trials_memoized_total", "Trials replayed from the memo table.")
	s.inst.trialSeconds = reg.Histogram("meecc_serve_trial_seconds", "Wall time of freshly executed trials.", nil)
	reg.GaugeFunc("meecc_serve_memo_entries", "Trial results held in the memo table.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.memo))
	})

	// Event-stream fan-out.
	s.inst.streamsActive = reg.Gauge("meecc_serve_event_streams_active", "NDJSON event streams currently connected.")
	s.inst.streamsTotal = reg.Counter("meecc_serve_event_streams_total", "NDJSON event streams ever opened.")
	s.inst.streamResumes = reg.Counter("meecc_serve_event_stream_resumes_total", "Event streams opened with a nonzero ?from= resume offset.")

	// Journal and snapstore families exist even with neither configured;
	// journal.SetOps / snapstore.SetOps fetch these same series when the
	// component is live. The two error counters also drive /healthz.
	reg.Counter("meecc_journal_appends_total", "Records appended to the write-ahead journal.")
	s.inst.journalErrors = reg.Counter("meecc_journal_append_errors_total", "Journal appends that failed.")
	reg.Histogram("meecc_journal_append_seconds", "Wall time of journal record appends.", nil)
	reg.Histogram("meecc_journal_fsync_seconds", "Wall time of journal fsyncs.", nil)
	reg.Counter("meecc_journal_replayed_records_total", "Intact records replayed at journal open.")
	reg.Counter("meecc_journal_torn_tail_recoveries_total", "Torn tails truncated at journal open.")
	reg.Gauge("meecc_journal_size_bytes", "Current journal file size.")
	reg.Counter("meecc_snapstore_puts_total", "Blobs written to the snapshot store.")
	reg.Counter("meecc_snapstore_put_bytes_total", "Bytes written to the snapshot store.")
	reg.Counter("meecc_snapstore_gets_total", "Blob loads attempted from the snapshot store.")
	reg.Counter("meecc_snapstore_get_misses_total", "Blob loads that found no stored blob.")
	s.inst.storeSelfHeals = reg.Counter("meecc_snapstore_selfheal_deletions_total", "Corrupt blobs deleted by Get self-healing.")
	reg.Counter("meecc_snapstore_evictions_total", "Blobs evicted to stay under the size bound.")
	reg.Counter("meecc_snapstore_eviction_bytes_total", "Bytes reclaimed by LRU eviction.")
	reg.Histogram("meecc_snapstore_put_seconds", "Wall time of snapshot store writes.", nil)
	reg.Histogram("meecc_snapstore_get_seconds", "Wall time of snapshot store loads.", nil)
	reg.Gauge("meecc_snapstore_bytes", "Total bytes currently stored.")
	reg.Gauge("meecc_snapstore_blobs", "Blobs currently stored.")

	// Dispatcher families (exp.Run fetches the same handles per run).
	reg.Histogram("meecc_exp_queue_wait_seconds", "Wall time a dispatched trial waited for a worker.", nil)
	reg.Histogram("meecc_exp_trial_seconds", "Wall time of trial executions in the worker pool.", nil)
	reg.Gauge("meecc_exp_worker_busy_seconds", "Cumulative wall time workers spent executing trials.")
	reg.Gauge("meecc_exp_workers", "Workers currently serving trial pools.")
	reg.Gauge("meecc_exp_trials_inflight", "Trials executing right now.")

	// Process vitals.
	reg.GaugeFunc("meecc_process_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	reg.GaugeFunc("meecc_process_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("meecc_process_heap_bytes", "Heap bytes in use.", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
}

// statusWriter captures the response code for per-request metrics while
// forwarding Flush — the NDJSON event stream depends on flushing through.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers a route with request counting and latency recording under
// an explicit handler name (Go 1.22's mux does not expose the matched
// pattern to the handler, so each registration names itself).
func (s *Server) handle(pattern, name string, h http.HandlerFunc) {
	seconds := s.ops.Histogram("meecc_http_request_seconds", "Wall time of HTTP requests.", nil, "handler", name)
	// Pre-create the common-case series so the family is present on the very
	// first scrape, before any request completes.
	s.ops.Counter("meecc_http_requests_total", "HTTP requests served.", "handler", name, "code", "200")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		seconds.ObserveSince(start)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.ops.Counter("meecc_http_requests_total", "HTTP requests served.",
			"handler", name, "code", strconv.Itoa(sw.code)).Inc()
	})
}

// acquireSlot leases the lowest free trial span track.
func (s *Server) acquireSlot() int {
	s.slotMu.Lock()
	defer s.slotMu.Unlock()
	if n := len(s.slotFree); n > 0 {
		id := s.slotFree[n-1]
		s.slotFree = s.slotFree[:n-1]
		return id
	}
	s.slotNext++
	return s.slotNext - 1
}

func (s *Server) releaseSlot(id int) {
	s.slotMu.Lock()
	s.slotFree = append(s.slotFree, id)
	s.slotMu.Unlock()
}

// Health is the GET /healthz response body.
type Health struct {
	Status        string   `json:"status"` // "ok" or "degraded"
	Degraded      []string `json:"degraded,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

// handleHealthz reports liveness plus a degraded flag: the service keeps
// serving through journal append failures (durability degraded) and store
// blob corruption (self-healed), but operators need to see both.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", UptimeSeconds: time.Since(s.started).Seconds()}
	if s.inst.journalErrors.Value() > 0 {
		h.Degraded = append(h.Degraded, "journal_append_errors")
	}
	if s.inst.storeSelfHeals.Value() > 0 {
		h.Degraded = append(h.Degraded, "snapstore_selfheal_deletions")
	}
	if len(h.Degraded) > 0 {
		h.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleReadyz reports readiness to accept submissions: 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true})
}

// handleTrace exports the run's wall-clock lifecycle spans (queue, execute,
// per-trial slots, artifact) as Chrome trace-event JSON — load it in
// Perfetto, or validate it with `meecc inspect`, exactly like the sim-clock
// traces from -trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(w, r)
	if ru == nil {
		return
	}
	spans := s.spans.Spans(ru.id)
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "no spans recorded for run %s (ring may have wrapped)", ru.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := ops.WriteChromeTrace(w, spans); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding trace: %v", err)
	}
}

// spanName labels one trial span: "trial cellkey/3" or "memo cellkey/3".
func spanName(kind, cellKey string, trial int) string {
	return fmt.Sprintf("%s %s/%d", kind, cellKey, trial)
}
