package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"meecc/internal/obs/ops"
)

// Backoff is an exponential-backoff-with-jitter retry policy. The zero
// value is unusable; start from DefaultBackoff. Delay is deterministic given
// the rng, so tests can pin a seed and assert exact schedules.
type Backoff struct {
	Base     time.Duration // first delay
	Max      time.Duration // delay ceiling (before jitter)
	Factor   float64       // multiplier per attempt
	Jitter   float64       // ± fraction of the delay, e.g. 0.2 for ±20%
	Attempts int           // total tries, including the first
}

// DefaultBackoff suits a client talking to a local or same-rack service:
// ~200ms..5s over 10 tries, ±20% jitter to spread reconnect stampedes.
var DefaultBackoff = Backoff{
	Base:     200 * time.Millisecond,
	Max:      5 * time.Second,
	Factor:   2,
	Jitter:   0.2,
	Attempts: 10,
}

// Delay returns the wait before retry number attempt (0-based: the delay
// after the first failure is Delay(0, ...)). A nil rng disables jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if rng != nil && b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Client talks to a serve.Server, absorbing the operational failure modes a
// robust submitter has to survive: connection refusal while the server
// restarts (retried with exponential backoff), 429/503 admission pushback
// (retried after the server's Retry-After hint), and event streams severed
// mid-run (reconnected with ?from= so no event is lost or duplicated).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Backoff is the retry policy; the zero value means DefaultBackoff.
	Backoff Backoff
	// Rng jitters retry delays; nil disables jitter (tests want exact
	// schedules, real submitters should pass a seeded rand.Rand).
	Rng *rand.Rand
	// Logf, when non-nil, receives one line per retry (attempt, cause, wait).
	Logf func(format string, args ...any)
	// Ops, when non-nil, receives wall-clock retry/backoff telemetry
	// (meecc_client_retries_total{op=...}, meecc_client_backoff_seconds).
	Ops *ops.Registry
}

// retried records one retry of op and the backoff wait preceding it.
func (c *Client) retried(op string, wait time.Duration) {
	c.Ops.Counter("meecc_client_retries_total", "Client request retries.", "op", op).Inc()
	c.Ops.Gauge("meecc_client_backoff_seconds", "Cumulative wall time the client slept in retry backoff.").Add(wait.Seconds())
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) backoff() Backoff {
	if c.Backoff.Attempts > 0 {
		return c.Backoff
	}
	return DefaultBackoff
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// retryAfter parses the server's Retry-After hint (seconds form only),
// returning 0 when absent or malformed.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retriable reports whether the submit attempt may be retried: transport
// errors (server down or restarting) and explicit pushback (429, 503) are;
// anything the server judged about the request itself (4xx) is not.
func retriable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable
}

// Submit posts the spec and returns the accepted run, retrying through
// restarts and admission pushback per the backoff policy. The server
// derives the run id from the spec's content hash, so a retried submit that
// actually landed twice just costs a duplicate run whose trials are all
// memo hits — never divergent results.
func (c *Client) Submit(spec []byte) (RunInfo, error) {
	pol := c.backoff()
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			wait := pol.Delay(attempt-1, c.Rng)
			if ra := retryAfterErr(lastErr); ra > wait {
				wait = ra
			}
			c.logf("submit retry %d/%d in %s: %v", attempt, pol.Attempts-1, wait.Round(time.Millisecond), lastErr)
			c.retried("submit", wait)
			time.Sleep(wait)
		}
		resp, err := c.http().Post(c.BaseURL+"/v1/runs", "application/json", bytes.NewReader(spec))
		if err != nil {
			lastErr = err
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode == http.StatusAccepted {
			var info RunInfo
			if err := json.Unmarshal(body, &info); err != nil {
				return RunInfo{}, fmt.Errorf("serve: decoding submit response: %w", err)
			}
			return info, nil
		}
		herr := &httpStatusError{status: resp.StatusCode, retryAfter: retryAfter(resp), body: string(bytes.TrimSpace(body))}
		if !retriable(resp, nil) {
			return RunInfo{}, herr
		}
		lastErr = herr
	}
	return RunInfo{}, fmt.Errorf("serve: submit failed after %d attempts: %w", pol.Attempts, lastErr)
}

// httpStatusError is a non-2xx submit response.
type httpStatusError struct {
	status     int
	retryAfter time.Duration
	body       string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.status, e.body)
}

// retryAfterErr extracts the server's Retry-After hint from a submit error.
func retryAfterErr(err error) time.Duration {
	var he *httpStatusError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

// Follow streams the run's events from the given offset, invoking fn for
// each, until the terminal event arrives. A severed stream (server restart,
// network blip) reconnects with ?from=<next> under the backoff policy, so
// fn sees every event exactly once. It returns the terminal event.
func (c *Client) Follow(info RunInfo, from int, fn func(Event)) (Event, error) {
	pol := c.backoff()
	next := from
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			wait := pol.Delay(attempt-1, c.Rng)
			c.logf("event stream retry %d/%d in %s: %v", attempt, pol.Attempts-1, wait.Round(time.Millisecond), lastErr)
			c.retried("follow", wait)
			time.Sleep(wait)
		}
		resp, err := c.http().Get(c.BaseURL + info.Events + "?from=" + strconv.Itoa(next))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return Event{}, fmt.Errorf("serve: event stream returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		dec := json.NewDecoder(resp.Body)
		progressed := false
		for {
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				resp.Body.Close()
				// The server ended the stream without a terminal event
				// (shutdown mid-run) or the connection dropped: resume.
				lastErr = fmt.Errorf("event stream ended at seq %d: %w", next, err)
				break
			}
			if ev.Seq < next {
				continue // replay overlap after a stale-offset reset
			}
			next = ev.Seq + 1
			fn(ev)
			progressed = true
			if ev.Terminal() {
				resp.Body.Close()
				return ev, nil
			}
		}
		if progressed {
			attempt = 0 // forward progress resets the retry budget
		}
	}
	return Event{}, fmt.Errorf("serve: event stream failed after %d attempts: %w", pol.Attempts, lastErr)
}

// Artifact fetches the run's artifact bytes, retrying transport errors.
func (c *Client) Artifact(info RunInfo) ([]byte, error) {
	pol := c.backoff()
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			wait := pol.Delay(attempt-1, c.Rng)
			c.logf("artifact retry %d/%d in %s: %v", attempt, pol.Attempts-1, wait.Round(time.Millisecond), lastErr)
			c.retried("artifact", wait)
			time.Sleep(wait)
		}
		resp, err := c.http().Get(c.BaseURL + info.Artifact)
		if err != nil {
			lastErr = err
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: artifact returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		return body, nil
	}
	return nil, fmt.Errorf("serve: artifact fetch failed after %d attempts: %w", pol.Attempts, lastErr)
}

// Cancel asks the server to stop the run.
func (c *Client) Cancel(info RunInfo) error {
	req, err := http.NewRequest(http.MethodDelete, c.BaseURL+"/v1/runs/"+info.ID, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("serve: cancel returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}
