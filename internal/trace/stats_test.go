package trace

import (
	"math"
	"testing"
)

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{1, 2, 3, 6})
	if s.N != 4 || s.Mean != 3 || s.Min != 1 || s.Max != 6 {
		t.Errorf("stat %+v", s)
	}
	wantSD := math.Sqrt((4 + 1 + 0 + 9) / 3.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("stddev %v, want %v", s.StdDev, wantSD)
	}
	wantCI := 1.96 * wantSD / 2
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Errorf("ci95 %v, want %v", s.CI95, wantCI)
	}
	if s.CILo() != s.Mean-s.CI95 || s.CIHi() != s.Mean+s.CI95 {
		t.Errorf("CI bounds [%v, %v]", s.CILo(), s.CIHi())
	}
}

func TestNewStatDegenerateSamples(t *testing.T) {
	if s := NewStat(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty stat %+v", s)
	}
	s := NewStat([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.StdDev != 0 || s.CI95 != 0 || s.Min != 5 || s.Max != 5 {
		t.Errorf("singleton stat %+v", s)
	}
}

func TestStatHeaderMatchesColumns(t *testing.T) {
	h := StatHeader("err")
	want := []string{"err_mean", "err_stddev", "err_ci95", "err_min", "err_max"}
	if len(h) != len(want) {
		t.Fatalf("header %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("header[%d] = %q, want %q", i, h[i], want[i])
		}
	}
	s := NewStat([]float64{1, 2})
	cols := s.Columns()
	if len(cols) != len(h) {
		t.Fatalf("Columns returns %d values for %d headers", len(cols), len(h))
	}
	if cols[0] != s.Mean || cols[1] != s.StdDev || cols[2] != s.CI95 || cols[3] != s.Min || cols[4] != s.Max {
		t.Errorf("columns %v for stat %+v", cols, s)
	}
}
