// Package trace provides the small data-wrangling layer the experiment
// harness uses to reproduce the paper's figures: histograms, labeled series,
// CSV emission, and ASCII rendering for terminal output.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket-width histogram over float64 samples.
type Histogram struct {
	Width  float64
	counts map[int]int
	n      int
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		panic("trace: histogram bucket width must be positive")
	}
	return &Histogram{Width: width, counts: make(map[int]int)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	b := int(v / h.Width)
	if v < 0 {
		b--
	}
	h.counts[b]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// N returns the sample count.
func (h *Histogram) N() int { return h.n }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the extreme samples seen.
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Bucket is one histogram bar.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		out = append(out, Bucket{
			Lo:    float64(k) * h.Width,
			Hi:    float64(k+1) * h.Width,
			Count: h.counts[k],
		})
	}
	return out
}

// Percentile returns the p-th percentile (0..100) using bucket midpoints.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int(p / 100 * float64(h.n))
	seen := 0
	for _, b := range h.Buckets() {
		seen += b.Count
		if seen > target {
			return (b.Lo + b.Hi) / 2
		}
	}
	return h.max
}

// Render draws the histogram as ASCII bars of at most barWidth characters.
func (h *Histogram) Render(w io.Writer, barWidth int) {
	bks := h.Buckets()
	peak := 0
	for _, b := range bks {
		if b.Count > peak {
			peak = b.Count
		}
	}
	for _, b := range bks {
		bar := 0
		if peak > 0 {
			bar = b.Count * barWidth / peak
		}
		fmt.Fprintf(w, "%10.0f-%-8.0f |%-*s %d\n", b.Lo, b.Hi, barWidth, strings.Repeat("#", bar), b.Count)
	}
}

// Series is one labeled (x, y) data series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// WriteCSV emits a header row and numeric rows.
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	records := make([][]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%g", v)
		}
		records[i] = parts
	}
	return WriteCSVRecords(w, header, records)
}

// WriteCSVRecords writes pre-formatted cells, for tables whose leading
// columns are categorical (e.g. noise environment names) rather than numeric.
func WriteCSVRecords(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SeriesCSV writes aligned series (sharing X) as CSV columns.
func SeriesCSV(w io.Writer, xName string, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{xName}
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := make([][]float64, len(series[0].X))
	for i := range rows {
		row := []float64{series[0].X[i]}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, 0)
			}
		}
		rows[i] = row
	}
	return WriteCSV(w, header, rows)
}

// Table accumulates aligned text rows for terminal reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// Sparkline renders ys as a compact unicode sparkline (for probe-time
// traces like Figures 6 and 8).
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(marks)-1))
		}
		b.WriteRune(marks[idx])
	}
	return b.String()
}
