package trace

import "math"

// Stat summarizes one scalar metric over a sample of independent trials:
// the aggregate every cell of a paper table should carry instead of a
// single-point estimate.
type Stat struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// CI95 is the half-width of the 95% confidence interval on the mean
	// under the normal approximation (1.96·sd/√n); 0 when n < 2.
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// NewStat computes the summary of samples. Sample order does not matter
// mathematically, but the two-pass computation is exact enough that equal
// multisets produce bit-identical results — a property the experiment
// harness's determinism guarantee rests on, since it always aggregates in
// trial order.
func NewStat(samples []float64) Stat {
	s := Stat{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N-1))
	s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	return s
}

// CILo and CIHi bound the 95% confidence interval on the mean.
func (s Stat) CILo() float64 { return s.Mean - s.CI95 }
func (s Stat) CIHi() float64 { return s.Mean + s.CI95 }

// StatHeader names the CSV columns Columns emits for a metric, in order.
func StatHeader(metric string) []string {
	return []string{
		metric + "_mean",
		metric + "_stddev",
		metric + "_ci95",
		metric + "_min",
		metric + "_max",
	}
}

// Columns returns the values matching StatHeader, for WriteCSV rows.
func (s Stat) Columns() []float64 {
	return []float64{s.Mean, s.StdDev, s.CI95, s.Min, s.Max}
}
