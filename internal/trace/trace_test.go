package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []float64{1, 2, 11, 12, 13, 25} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("n=%d", h.N())
	}
	bks := h.Buckets()
	if len(bks) != 3 {
		t.Fatalf("buckets %v", bks)
	}
	if bks[0].Count != 2 || bks[1].Count != 3 || bks[2].Count != 1 {
		t.Fatalf("bucket counts %v", bks)
	}
	if h.Min() != 1 || h.Max() != 25 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 10 || m > 11 {
		t.Fatalf("mean %v", m)
	}
}

func TestHistogramNegativeValuesBucketCorrectly(t *testing.T) {
	h := NewHistogram(10)
	h.Add(-5)
	b := h.Buckets()[0]
	if b.Lo != -10 || b.Hi != 0 {
		t.Fatalf("negative bucket [%v,%v)", b.Lo, b.Hi)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50=%v", p)
	}
	if p := h.Percentile(99); p < 95 {
		t.Fatalf("p99=%v", p)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 50; i++ {
		h.Add(480)
	}
	for i := 0; i < 10; i++ {
		h.Add(750)
	}
	var buf bytes.Buffer
	h.Render(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "#") || strings.Count(out, "\n") != 2 {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"x", "y"}, [][]float64{{1, 2}, {3, 4.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n3,4.5\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestSeriesCSV(t *testing.T) {
	a := &Series{Name: "bitrate"}
	b := &Series{Name: "error"}
	a.Add(5000, 100)
	a.Add(15000, 33)
	b.Add(5000, 0.4)
	b.Add(15000, 0.017)
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, "window", a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "window,bitrate,error" || len(lines) != 3 {
		t.Fatalf("csv:\n%s", buf.String())
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("versions-hit", 480.0)
	tb.Row("l0", 750.0)
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header %q", lines[0])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 3, 0})
	if len([]rune(s)) != 6 {
		t.Fatalf("sparkline %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline %q", flat)
	}
}
