// Package snapstore serializes platform snapshots into a versioned binary
// wire format and keeps them in a content-addressed on-disk store with
// atomic writes, size-bounded LRU eviction, and corruption detection. It is
// the persistence substrate under core's warm-state cache and the serve
// experiment service: warm calibration state survives the process, so a
// repeated study boots from disk instead of re-running Algorithm 1.
package snapstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt tags any decode failure caused by damaged bytes — truncation,
// bit flips, or a checksum mismatch. Callers treat it as "re-derive the
// state", never as fatal.
var ErrCorrupt = errors.New("snapstore: corrupt blob")

const (
	// magic opens every sealed blob.
	magic = "MEECSNP\x00"
	// Version is the wire-format version; bump on any layout change.
	Version = 1
	// maxStringLen bounds decoded string/name lengths so a corrupted length
	// prefix cannot drive a giant allocation before the checksum would have
	// caught it.
	maxStringLen = 1 << 16
	// minSealedLen is the size of the smallest possible sealed blob: magic,
	// version, empty kind, empty payload, checksum trailer.
	minSealedLen = len(magic) + 4 + 4 + 8 + sha256.Size
)

// Writer builds a wire payload. All integers are little-endian fixed-width;
// variable-size fields carry an explicit length prefix. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the accumulated payload size.
func (w *Writer) Len() int { return len(w.buf) }

func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }

// Raw appends bytes with no length prefix; the reader must know the size.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.Raw(b)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// U64s appends a length-prefixed slice of words.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// I64s appends a length-prefixed slice of signed words.
func (w *Writer) I64s(vs []int64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// Reader consumes a wire payload with sticky-error semantics: the first
// failed read latches the error, every later read returns a zero value, and
// Err surfaces what went wrong. Every length prefix is validated against
// the remaining payload before any allocation, so corrupted or truncated
// input produces ErrCorrupt — never a panic or an outsized allocation.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the latched decode error, nil if all reads succeeded so far.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many unread payload bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), r.off)
	}
}

// take returns the next n payload bytes, or nil after latching ErrCorrupt
// when fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("need %d bytes, %d remain", n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) Bool() bool { return r.U8() != 0 }

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads a u64 and rejects values that do not fit a non-negative int.
func (r *Reader) Int() int {
	v := r.U64()
	if r.err == nil && v > uint64(int(^uint(0)>>1)) {
		r.fail("value %d overflows int", v)
	}
	return int(v)
}

// Raw reads exactly n bytes (no length prefix). The returned slice aliases
// the payload.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Blob reads a length-prefixed byte string; the result aliases the payload.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

func (r *Reader) String() string {
	n := int(r.U32())
	if r.err == nil && n > maxStringLen {
		r.fail("string length %d exceeds limit", n)
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Count reads a length prefix for elemSize-byte elements, bounding it by the
// remaining payload so a corrupted count cannot drive allocation.
func (r *Reader) Count(elemSize int) int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n*elemSize > r.Remaining() {
		r.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

// U64s reads a length-prefixed slice of words.
func (r *Reader) U64s() []uint64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// I64s reads a length-prefixed slice of signed words.
func (r *Reader) I64s() []int64 {
	n := r.Count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// Seal frames a payload for storage: magic, format version, a kind label
// distinguishing blob families (platform snapshots vs. warm channel state),
// the length-prefixed payload, and a SHA-256 trailer over everything before
// it. Unseal rejects any blob whose trailer does not match.
func Seal(kind string, payload []byte) []byte {
	var w Writer
	w.buf = make([]byte, 0, len(magic)+4+4+len(kind)+8+len(payload)+sha256.Size)
	w.Raw([]byte(magic))
	w.U32(Version)
	w.String(kind)
	w.Blob(payload)
	sum := sha256.Sum256(w.buf)
	w.Raw(sum[:])
	return w.buf
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on every
// platform the simulator targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the per-frame framing cost: u32 length + u32 CRC-32C.
const frameOverhead = 8

// AppendFrame appends one length-framed, CRC-protected record to dst and
// returns the extended slice. The layout is u32 payload length, payload
// bytes, u32 CRC-32C of the payload — small enough to write in a single
// syscall, so an append-only log built from frames tears at most its final
// record on a crash. Decode with NextFrame.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// NextFrame splits the first frame off data, returning its payload (aliasing
// data) and the remaining bytes. Truncated framing, a length that overruns
// the buffer, and a CRC mismatch all come back as ErrCorrupt: for an
// append-only log that is the signal to stop replaying — everything before
// this frame is intact, everything from it on is a torn tail.
func NextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < frameOverhead {
		return nil, nil, fmt.Errorf("%w: %d bytes is too short for a frame", ErrCorrupt, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data)-frameOverhead < n {
		return nil, nil, fmt.Errorf("%w: frame claims %d payload bytes, %d remain", ErrCorrupt, n, len(data)-frameOverhead)
	}
	payload = data[4 : 4+n]
	want := binary.LittleEndian.Uint32(data[4+n:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return payload, data[frameOverhead+n:], nil
}

// Unseal validates a sealed blob's framing and checksum and returns its
// payload (aliasing blob). Kind mismatches, version mismatches, truncation,
// and bit flips all come back as errors; checksum and length damage wraps
// ErrCorrupt.
func Unseal(kind string, blob []byte) ([]byte, error) {
	if len(blob) < minSealedLen {
		return nil, fmt.Errorf("%w: %d bytes is too short to be a sealed blob", ErrCorrupt, len(blob))
	}
	body, trailer := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	sum := sha256.Sum256(body)
	if [sha256.Size]byte(trailer) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := NewReader(body)
	if string(r.Raw(len(magic))) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.U32(); v != Version {
		return nil, fmt.Errorf("snapstore: unsupported format version %d (want %d)", v, Version)
	}
	if k := r.String(); k != kind {
		return nil, fmt.Errorf("snapstore: blob kind %q, want %q", k, kind)
	}
	payload := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Remaining())
	}
	return payload, nil
}
