package snapstore_test

import (
	"reflect"
	"testing"

	"meecc/internal/snapstore"
)

// FuzzSnapshotCodec feeds mutated snapshot blobs to the decoder. The
// invariants: decoding never panics, damaged bytes come back as errors (the
// checksum trailer catches silent corruption), and anything that does decode
// is self-consistent — re-encoding it reproduces the same state, so a
// "successful" decode can never be a silently wrong machine.
func FuzzSnapshotCodec(f *testing.F) {
	snap, _, _ := buildSnapshot(f, 5)
	blob, err := snapstore.EncodeSnapshot(snap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Add([]byte("MEECSNP\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := snapstore.DecodeSnapshot(data)
		if err != nil {
			return // rejected, as damaged input should be
		}
		blob2, err := snapstore.EncodeSnapshot(dec)
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		dec2, err := snapstore.DecodeSnapshot(blob2)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(dec.ExportState(), dec2.ExportState()) {
			t.Fatal("decode/encode/decode is not a fixed point")
		}
	})
}
