package snapstore_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"meecc/internal/snapstore"
)

func TestStorePutGetRoundTrip(t *testing.T) {
	s, err := snapstore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blob := snapstore.Seal(snapstore.KindWarm, []byte("payload"))
	key := snapstore.Key("cfg", "seed=1", "recipe")
	if err := s.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("stored blob differs")
	}
	if _, err := s.Get(snapstore.Key("other")); !errors.Is(err, snapstore.ErrNotFound) {
		t.Fatalf("missing key: got %v, want ErrNotFound", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, snapstore.ErrNotFound) {
		t.Fatalf("deleted key: got %v, want ErrNotFound", err)
	}
}

func TestStoreKeyDelimiting(t *testing.T) {
	if snapstore.Key("ab", "c") == snapstore.Key("a", "bc") {
		t.Fatal("part boundaries must be keyed")
	}
	if snapstore.Key("a") != snapstore.Key("a") {
		t.Fatal("key derivation must be stable")
	}
}

func TestStoreRejectsMalformedKey(t *testing.T) {
	s, err := snapstore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("../escape", []byte("x")); err == nil {
		t.Fatal("path-traversal key accepted")
	}
	if _, err := s.Get("zz"); err == nil || errors.Is(err, snapstore.ErrNotFound) {
		t.Fatal("short key must be rejected as malformed, not missing")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Bound: room for roughly two of the three blobs.
	blob := snapstore.Seal(snapstore.KindWarm, bytes.Repeat([]byte("x"), 400))
	s, err := snapstore.Open(dir, int64(2*len(blob)+10))
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := snapstore.Key("1"), snapstore.Key("2"), snapstore.Key("3")
	if err := s.Put(k1, blob); err != nil {
		t.Fatal(err)
	}
	// Make k1 clearly oldest even on coarse-mtime filesystems.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, k1+".snap"), old, old)
	if err := s.Put(k2, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k3, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k1); !errors.Is(err, snapstore.ErrNotFound) {
		t.Fatalf("oldest blob should have been evicted, got %v", err)
	}
	for _, k := range []string{k2, k3} {
		if _, err := s.Get(k); err != nil {
			t.Fatalf("recent blob %s evicted: %v", k, err)
		}
	}
}

func TestStoreCorruptionDetectedOnLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := snapstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := snapstore.Key("torn")
	if err := s.Put(key, []byte("torn")); err != nil { // far below any valid seal
		t.Fatal(err)
	}
	if _, err := s.Get(key); !errors.Is(err, snapstore.ErrCorrupt) {
		t.Fatalf("torn blob: got %v, want ErrCorrupt", err)
	}
	// The store self-heals: the torn file is gone.
	if _, err := s.Get(key); !errors.Is(err, snapstore.ErrNotFound) {
		t.Fatalf("torn blob should have been dropped, got %v", err)
	}
	// Full-length blobs with flipped bits are caught by Unseal.
	blob := snapstore.Seal(snapstore.KindWarm, []byte("payload"))
	blob[len(blob)/2] ^= 1
	if err := s.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapstore.Unseal(snapstore.KindWarm, got); !errors.Is(err, snapstore.ErrCorrupt) {
		t.Fatalf("bit-flipped blob: got %v, want ErrCorrupt", err)
	}
}
