package snapstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"meecc/internal/obs/ops"
)

// ErrNotFound reports a key with no blob in the store.
var ErrNotFound = errors.New("snapstore: not found")

// blobExt suffixes every stored blob file.
const blobExt = ".snap"

// Key derives a content-address from identity parts (machine config, seed,
// warm-up recipe, ...): the hex SHA-256 of the length-delimited parts.
// Length delimiting keeps distinct part vectors from colliding by
// concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a content-addressed blob store rooted at one directory: one file
// per key, written atomically (temp file + rename), evicted
// least-recently-used by file modification time when the configured size
// bound is exceeded, and checksum-verified on every load. Safe for
// concurrent use within a process; cross-process coordination is by the
// atomicity of rename alone, which is all the append-mostly workload needs.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded
	mu       sync.Mutex

	// Wall-clock telemetry; all nil-safe, so an uninstrumented store pays
	// only nil checks.
	log           *ops.Logger
	puts          *ops.Counter
	putBytes      *ops.Counter
	gets          *ops.Counter
	getMisses     *ops.Counter
	selfHeals     *ops.Counter
	evictions     *ops.Counter
	evictionBytes *ops.Counter
	putSeconds    *ops.Histogram
	getSeconds    *ops.Histogram
}

// Open creates (if needed) and opens a store rooted at dir. maxBytes bounds
// the total size of stored blobs; zero or negative disables eviction.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetOps registers the store's wall-clock metrics on reg and its structured
// logs on log. Either may be nil. Operational only: nothing recorded here
// flows into artifacts.
func (s *Store) SetOps(reg *ops.Registry, log *ops.Logger) {
	s.log = log
	s.puts = reg.Counter("meecc_snapstore_puts_total", "Blobs written to the snapshot store.")
	s.putBytes = reg.Counter("meecc_snapstore_put_bytes_total", "Bytes written to the snapshot store.")
	s.gets = reg.Counter("meecc_snapstore_gets_total", "Blob loads attempted from the snapshot store.")
	s.getMisses = reg.Counter("meecc_snapstore_get_misses_total", "Blob loads that found no stored blob.")
	s.selfHeals = reg.Counter("meecc_snapstore_selfheal_deletions_total", "Corrupt blobs deleted by Get self-healing.")
	s.evictions = reg.Counter("meecc_snapstore_evictions_total", "Blobs evicted to stay under the size bound.")
	s.evictionBytes = reg.Counter("meecc_snapstore_eviction_bytes_total", "Bytes reclaimed by LRU eviction.")
	s.putSeconds = reg.Histogram("meecc_snapstore_put_seconds", "Wall time of snapshot store writes.", nil)
	s.getSeconds = reg.Histogram("meecc_snapstore_get_seconds", "Wall time of snapshot store loads.", nil)
	reg.GaugeFunc("meecc_snapstore_bytes", "Total bytes currently stored.", func() float64 { return float64(s.Bytes()) })
	reg.GaugeFunc("meecc_snapstore_blobs", "Blobs currently stored.", func() float64 { return float64(s.Len()) })
}

func (s *Store) path(key string) (string, error) {
	if len(key) != 2*sha256.Size {
		return "", fmt.Errorf("snapstore: malformed key %q", key)
	}
	if _, err := hex.DecodeString(key); err != nil {
		return "", fmt.Errorf("snapstore: malformed key %q", key)
	}
	return filepath.Join(s.dir, key+blobExt), nil
}

// Put stores blob under key, atomically: the bytes land in a temp file that
// is renamed into place, so readers never observe a partial blob. After the
// write, the store evicts least-recently-used blobs until back under the
// size bound (the just-written blob is exempt from its own eviction round).
func (s *Store) Put(key string, blob []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	start := time.Now()
	defer s.putSeconds.ObserveSince(start)
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapstore: writing %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapstore: %w", err)
	}
	s.puts.Inc()
	s.putBytes.Add(uint64(len(blob)))
	s.evictLocked(key)
	return nil
}

// Get loads the blob stored under key and freshens its LRU position. A
// missing blob returns ErrNotFound. Framing and checksum verification are
// the caller's (Unseal's) job — the store returns raw bytes — but a blob
// too short to even carry a seal is deleted and reported as ErrCorrupt
// right here.
func (s *Store) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	defer s.getSeconds.ObserveSince(start)
	s.gets.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		s.getMisses.Inc()
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	if len(blob) < minSealedLen {
		// Too short to carry a seal: a torn or truncated file. Self-heal by
		// dropping it so the next Put can repopulate the slot.
		os.Remove(p)
		s.selfHeals.Inc()
		s.log.Warn("snapstore self-heal: deleted corrupt blob", "key", key, "bytes", len(blob))
		return nil, fmt.Errorf("%w: stored blob %s is %d bytes", ErrCorrupt, key, len(blob))
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now) // LRU freshness; best-effort
	return blob, nil
}

// Delete removes the blob under key; deleting an absent key is not an error.
func (s *Store) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("snapstore: %w", err)
	}
	return nil
}

// Len reports how many blobs the store currently holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for range s.entriesLocked() {
		n++
	}
	return n
}

// Bytes reports the total stored blob size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, e := range s.entriesLocked() {
		total += e.size
	}
	return total
}

type storeEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// entriesLocked lists the store's blob files. Callers hold s.mu.
func (s *Store) entriesLocked() []storeEntry {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []storeEntry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), blobExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, storeEntry{
			path:  filepath.Join(s.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
	}
	return out
}

// evictLocked drops oldest-first until the store is within its size bound.
// keep (the key just written) is never evicted by its own Put — if one blob
// alone exceeds the bound, the store holds just that blob rather than
// thrashing. Callers hold s.mu.
func (s *Store) evictLocked(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	entries := s.entriesLocked()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	keepPath := filepath.Join(s.dir, keep+blobExt)
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if e.path == keepPath {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.evictions.Inc()
			s.evictionBytes.Add(uint64(e.size))
		}
	}
}
