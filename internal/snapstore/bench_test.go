package snapstore_test

import (
	"testing"

	"meecc/internal/snapstore"
)

func BenchmarkSnapshotEncode(b *testing.B) {
	snap, _, _ := buildSnapshot(b, 9)
	blob, err := snapstore.EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapstore.EncodeSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob))/1024, "blobKB")
}

func BenchmarkSnapshotDecode(b *testing.B) {
	snap, _, _ := buildSnapshot(b, 9)
	blob, err := snapstore.EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapstore.DecodeSnapshot(blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob))/1024, "blobKB")
}
