package snapstore_test

import (
	"bytes"
	"reflect"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
	"meecc/internal/snapstore"
)

// buildSnapshot boots a platform, warms it through an enclave thread (MEE
// cache fills, integrity-tree materialization, CPU cache state, COW pages),
// and snapshots at quiescence, returning the snapshot plus the thread state
// and clock needed to resume work on a fork.
func buildSnapshot(tb testing.TB, seed uint64) (*platform.Snapshot, platform.ThreadState, sim.Cycles) {
	tb.Helper()
	p := platform.New(platform.DefaultConfig(seed))
	pr := p.NewProcess("victim")
	e, err := pr.CreateEnclave(64)
	if err != nil {
		tb.Fatal(err)
	}
	var st platform.ThreadState
	var end sim.Cycles
	p.SpawnThread("warm", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		for i := 0; i < 512; i++ {
			va := e.Base + enclave.VAddr((i*64)%int(e.Size()))
			if i%3 == 0 {
				th.WriteU64(va, uint64(i))
			} else {
				th.Access(va)
			}
		}
		st = th.State()
		end = th.Now()
	})
	p.Run(-1)
	return p.Snapshot(), st, end
}

// traceFork resumes the warmed thread on a fork of snap and records the full
// timing/level/MEE-hit stream of a deterministic probe pattern.
func traceFork(tb testing.TB, snap *platform.Snapshot, st platform.ThreadState, start sim.Cycles) []platform.AccessResult {
	tb.Helper()
	plat := snap.Fork()
	pr := plat.Procs()[0]
	e := pr.Enclave()
	var out []platform.AccessResult
	plat.ResumeThread("probe", pr, start, st, func(th *platform.Thread) {
		for i := 0; i < 768; i++ {
			va := e.Base + enclave.VAddr((i*64*7)%int(e.Size()))
			if i%5 == 0 {
				th.Flush(va)
			}
			out = append(out, th.Access(va))
		}
	})
	plat.Run(-1)
	return out
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	snap, _, _ := buildSnapshot(t, 7)
	blob, err := snapstore.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := snapstore.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	// The full exported state must survive the round trip bit-for-bit.
	want, got := snap.ExportState(), dec.ExportState()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decoded snapshot state differs from original")
	}
	// And the codec itself must be deterministic: encoding the decoded
	// snapshot reproduces the original blob byte-for-byte.
	blob2, err := snapstore.EncodeSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("re-encoding a decoded snapshot changed the blob (%d vs %d bytes)", len(blob), len(blob2))
	}
}

// TestDecodedForkMatchesInMemoryFork is the determinism proof for the wire
// format: a fork of decode(encode(snapshot)) produces exactly the timing
// stream a fork of the in-memory snapshot does.
func TestDecodedForkMatchesInMemoryFork(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		snap, st, end := buildSnapshot(t, seed)
		blob, err := snapstore.EncodeSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := snapstore.DecodeSnapshot(blob)
		if err != nil {
			t.Fatal(err)
		}
		mem := traceFork(t, snap, st, end)
		disk := traceFork(t, dec, st, end)
		if !reflect.DeepEqual(mem, disk) {
			t.Fatalf("seed %d: decoded fork diverged from in-memory fork", seed)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	snap, _, _ := buildSnapshot(t, 11)
	blob, err := snapstore.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at assorted depths.
	for _, n := range []int{0, 1, 7, 8, 55, len(blob) / 2, len(blob) - 1} {
		if _, err := snapstore.DecodeSnapshot(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Bit flips across the blob, including the framing and the trailer.
	for _, pos := range []int{0, 9, 20, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
		dam := append([]byte(nil), blob...)
		dam[pos] ^= 0x40
		if _, err := snapstore.DecodeSnapshot(dam); err == nil {
			t.Fatalf("bit flip at %d decoded without error", pos)
		}
	}
	// Wrong kind: a warm-state seal must not decode as a snapshot.
	payload, err := snapstore.Unseal(snapstore.KindSnapshot, blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapstore.DecodeSnapshot(snapstore.Seal(snapstore.KindWarm, payload)); err == nil {
		t.Fatal("wrong-kind blob decoded without error")
	}
}
