package snapstore

import (
	"encoding/json"
	"fmt"

	"meecc/internal/cache"
	"meecc/internal/cpucache"
	"meecc/internal/dram"
	"meecc/internal/enclave"
	"meecc/internal/itree"
	"meecc/internal/mee"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// Blob kind labels; Seal/Unseal reject a blob presented as the wrong kind.
const (
	KindSnapshot = "platform-snapshot"
	KindWarm     = "warm-channel-state"
)

// EncodeSnapshot serializes a platform snapshot into a sealed, versioned,
// checksummed blob. The machine Config travels as canonical JSON (it is
// small, extensible, and hashable); the bulky component state — DRAM pages,
// cache directories, replacement words, MEE node buffers — uses the packed
// binary layout below it.
func EncodeSnapshot(s *platform.Snapshot) ([]byte, error) {
	var w Writer
	if err := AppendSnapshot(&w, s); err != nil {
		return nil, err
	}
	return Seal(KindSnapshot, w.Bytes()), nil
}

// DecodeSnapshot reverses EncodeSnapshot, validating framing, checksum, and
// every structural invariant before handing back a forkable snapshot.
func DecodeSnapshot(blob []byte) (*platform.Snapshot, error) {
	payload, err := Unseal(KindSnapshot, blob)
	if err != nil {
		return nil, err
	}
	r := NewReader(payload)
	s, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.Remaining())
	}
	return s, nil
}

// AppendSnapshot writes a snapshot's full payload into w, so callers
// embedding a snapshot inside a larger blob (core's warm channel state) can
// compose it with their own fields.
func AppendSnapshot(w *Writer, s *platform.Snapshot) error {
	st := s.ExportState()
	cfgJSON, err := json.Marshal(st.Cfg)
	if err != nil {
		return fmt.Errorf("snapstore: marshaling config: %w", err)
	}
	w.Blob(cfgJSON)
	w.String(st.MEEPolicy)
	w.Raw(st.Master[:])
	w.Blob(st.RNGState)
	writeDRAM(w, st.Mem)
	writeMEE(w, st.MEE)
	writeCPU(w, st.Caches)
	writeEPC(w, st.EPC)
	w.U64s(st.GenUsed)
	w.U64(uint64(st.PRMBase))
	w.U64(uint64(len(st.Procs)))
	for _, p := range st.Procs {
		writeProc(w, p)
	}
	w.I64(int64(st.NextEID))
	w.I64(int64(st.NextPID))
	return nil
}

// ReadSnapshot decodes a snapshot payload from r (the inverse of
// AppendSnapshot), rebuilding a forkable platform snapshot.
func ReadSnapshot(r *Reader) (*platform.Snapshot, error) {
	st := &platform.SnapshotState{}
	cfgJSON := r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(cfgJSON, &st.Cfg); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrCorrupt, err)
	}
	st.MEEPolicy = r.String()
	copy(st.Master[:], r.Raw(16))
	st.RNGState = append([]byte(nil), r.Blob()...)
	st.Mem = readDRAM(r, st.Cfg.DRAM)
	st.MEE = readMEE(r)
	st.Caches = readCPU(r)
	st.EPC = readEPC(r)
	st.GenUsed = r.U64s()
	st.PRMBase = dram.Addr(r.U64())
	nProcs := r.Count(1)
	for i := 0; i < nProcs && r.Err() == nil; i++ {
		st.Procs = append(st.Procs, readProc(r))
	}
	st.NextEID = int(r.I64())
	st.NextPID = int(r.I64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	s, err := platform.SnapshotFromState(st)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// DRAM

func writeDRAM(w *Writer, st *dram.SnapshotState) {
	w.I64(int64(st.Allocated))
	w.I64s(st.OpenRow)
	w.U64(uint64(len(st.BanksBusy)))
	for _, b := range st.BanksBusy {
		w.I64(int64(b))
	}
	w.I64s(st.RefreshedAt)
	w.U64(st.Stats.Reads)
	w.U64(st.Stats.Writes)
	w.U64(st.Stats.RowHits)
	w.U64(st.Stats.RowMisses)
	w.U64(st.Stats.Refreshes)
	w.I64(int64(st.Stats.StallCyc))
	w.U64(uint64(len(st.Pages)))
	for _, p := range st.Pages {
		w.U64(p.Index)
		w.Raw(p.Data)
	}
}

func readDRAM(r *Reader, cfg dram.Config) *dram.SnapshotState {
	st := &dram.SnapshotState{Cfg: cfg}
	st.Allocated = int(r.I64())
	st.OpenRow = r.I64s()
	nb := r.Count(8)
	st.BanksBusy = make([]sim.Cycles, nb)
	for i := range st.BanksBusy {
		st.BanksBusy[i] = sim.Cycles(r.I64())
	}
	st.RefreshedAt = r.I64s()
	st.Stats.Reads = r.U64()
	st.Stats.Writes = r.U64()
	st.Stats.RowHits = r.U64()
	st.Stats.RowMisses = r.U64()
	st.Stats.Refreshes = r.U64()
	st.Stats.StallCyc = sim.Cycles(r.I64())
	nPages := r.Count(8 + dram.PageBytes)
	st.Pages = make([]dram.PageImage, 0, nPages)
	for i := 0; i < nPages && r.Err() == nil; i++ {
		idx := r.U64()
		data := r.Raw(dram.PageBytes)
		st.Pages = append(st.Pages, dram.PageImage{Index: idx, Data: data})
	}
	return st
}

// ---------------------------------------------------------------------------
// Generic cache level

func writeCache(w *Writer, st *cache.State) {
	w.String(st.Name)
	w.U32(uint32(st.Sets))
	w.U32(uint32(st.Ways))
	w.String(st.PolicyName)
	w.U64(uint64(len(st.Lines)))
	for _, l := range st.Lines {
		w.U64(uint64(l.Tag))
		w.Bool(l.Valid)
		w.Bool(l.Dirty)
	}
	for _, ws := range st.SetWords {
		w.U64s(ws)
	}
	w.U64(st.Stats.Hits)
	w.U64(st.Stats.Misses)
	w.U64(st.Stats.Fills)
	w.U64(st.Stats.Evictions)
	w.U64(st.Stats.WritebacksOut)
	w.U64(st.Stats.Invalidations)
	w.U64s(st.EvBySet)
}

func readCache(r *Reader) *cache.State {
	st := &cache.State{}
	st.Name = r.String()
	st.Sets = int(r.U32())
	st.Ways = int(r.U32())
	st.PolicyName = r.String()
	nLines := r.Count(10)
	st.Lines = make([]cache.Line, nLines)
	for i := range st.Lines {
		st.Lines[i] = cache.Line{Tag: cache.Tag(r.U64()), Valid: r.Bool(), Dirty: r.Bool()}
	}
	// Each set's word vector costs at least its 8-byte length prefix, so
	// bound the outer allocation by the remaining payload.
	if st.Sets < 0 || st.Sets*8 > r.Remaining() {
		r.fail("cache %s: set count %d exceeds payload", st.Name, st.Sets)
		return st
	}
	st.SetWords = make([][]uint64, st.Sets)
	for s := range st.SetWords {
		st.SetWords[s] = r.U64s()
	}
	st.Stats.Hits = r.U64()
	st.Stats.Misses = r.U64()
	st.Stats.Fills = r.U64()
	st.Stats.Evictions = r.U64()
	st.Stats.WritebacksOut = r.U64()
	st.Stats.Invalidations = r.U64()
	st.EvBySet = r.U64s()
	return st
}

// ---------------------------------------------------------------------------
// MEE engine

func writeMEE(w *Writer, st *mee.State) {
	writeCache(w, st.Cache)
	w.U64(uint64(len(st.Bufs)))
	for _, b := range st.Bufs {
		w.U32(uint32(b.Idx))
		w.U64(uint64(b.Addr))
		w.U8(uint8(b.Kind))
		for _, c := range b.Counter.Counters {
			w.U64(c)
		}
		w.U64(b.Counter.MAC)
		for _, t := range b.Tags.Tags {
			w.U64(t)
		}
		w.Bool(b.Dirty)
	}
	w.U64s(st.Root)
	w.U64s(st.Initialized)
	w.I64(int64(st.PortBusy))
	w.U64(st.Stats.Reads)
	w.U64(st.Stats.Writes)
	for _, h := range st.Stats.HitsAt {
		w.U64(h)
	}
	w.U64(st.Stats.Writebacks)
	w.U64(st.Stats.Violations)
	w.I64(int64(st.Stats.StallCyc))
}

const meeBufWire = 4 + 8 + 1 + (itree.CountersPerLine+1)*8 + itree.CountersPerLine*8 + 1

func readMEE(r *Reader) *mee.State {
	st := &mee.State{Cache: readCache(r)}
	nBufs := r.Count(meeBufWire)
	st.Bufs = make([]mee.BufState, 0, nBufs)
	for i := 0; i < nBufs && r.Err() == nil; i++ {
		b := mee.BufState{
			Idx:  int(r.U32()),
			Addr: dram.Addr(r.U64()),
			Kind: itree.NodeKind(r.U8()),
		}
		for j := range b.Counter.Counters {
			b.Counter.Counters[j] = r.U64()
		}
		b.Counter.MAC = r.U64()
		for j := range b.Tags.Tags {
			b.Tags.Tags[j] = r.U64()
		}
		b.Dirty = r.Bool()
		st.Bufs = append(st.Bufs, b)
	}
	st.Root = r.U64s()
	st.Initialized = r.U64s()
	st.PortBusy = sim.Cycles(r.I64())
	st.Stats.Reads = r.U64()
	st.Stats.Writes = r.U64()
	for i := range st.Stats.HitsAt {
		st.Stats.HitsAt[i] = r.U64()
	}
	st.Stats.Writebacks = r.U64()
	st.Stats.Violations = r.U64()
	st.Stats.StallCyc = sim.Cycles(r.I64())
	return st
}

// ---------------------------------------------------------------------------
// CPU cache hierarchy

func writeCPU(w *Writer, st *cpucache.State) {
	w.U64(uint64(len(st.L1)))
	for _, c := range st.L1 {
		writeCache(w, c)
	}
	w.U64(uint64(len(st.L2)))
	for _, c := range st.L2 {
		writeCache(w, c)
	}
	writeCache(w, st.LLC)
	w.U64(uint64(len(st.Bufs)))
	for _, b := range st.Bufs {
		w.U32(uint32(b.Idx))
		w.Raw(b.Data[:])
		w.Bool(b.Dirty)
	}
}

func readCPU(r *Reader) *cpucache.State {
	st := &cpucache.State{}
	n1 := r.Count(1)
	for i := 0; i < n1 && r.Err() == nil; i++ {
		st.L1 = append(st.L1, readCache(r))
	}
	n2 := r.Count(1)
	for i := 0; i < n2 && r.Err() == nil; i++ {
		st.L2 = append(st.L2, readCache(r))
	}
	st.LLC = readCache(r)
	nBufs := r.Count(4 + dram.LineSize + 1)
	st.Bufs = make([]cpucache.LineBufState, 0, nBufs)
	for i := 0; i < nBufs && r.Err() == nil; i++ {
		b := cpucache.LineBufState{Idx: int(r.U32())}
		copy(b.Data[:], r.Raw(dram.LineSize))
		b.Dirty = r.Bool()
		st.Bufs = append(st.Bufs, b)
	}
	return st
}

// ---------------------------------------------------------------------------
// EPC allocator and processes

func writeEPC(w *Writer, st *enclave.EPCState) {
	w.U64(uint64(len(st.Frames)))
	for _, f := range st.Frames {
		w.U64(uint64(f))
	}
	w.I64(int64(st.Next))
	w.U64(uint64(len(st.Owners)))
	for _, o := range st.Owners {
		w.U64(uint64(o.Frame))
		w.I64(int64(o.EID))
	}
}

func readEPC(r *Reader) *enclave.EPCState {
	st := &enclave.EPCState{}
	nf := r.Count(8)
	st.Frames = make([]dram.Addr, nf)
	for i := range st.Frames {
		st.Frames[i] = dram.Addr(r.U64())
	}
	st.Next = int(r.I64())
	no := r.Count(16)
	st.Owners = make([]enclave.OwnerEntry, 0, no)
	for i := 0; i < no && r.Err() == nil; i++ {
		st.Owners = append(st.Owners, enclave.OwnerEntry{
			Frame: dram.Addr(r.U64()),
			EID:   int(r.I64()),
		})
	}
	return st
}

func writeProc(w *Writer, p platform.ProcState) {
	w.String(p.Name)
	w.I64(int64(p.PID))
	w.U64(uint64(len(p.PT)))
	for _, e := range p.PT {
		w.U64(uint64(e.VA))
		w.U64(uint64(e.PA))
	}
	w.U64(uint64(p.HeapNext))
	w.U64(uint64(p.EnclNext))
	w.Bool(p.Encl != nil)
	if p.Encl != nil {
		w.I64(int64(p.Encl.ID))
		w.U64(uint64(p.Encl.Base))
		w.I64(int64(p.Encl.Pages))
	}
}

func readProc(r *Reader) platform.ProcState {
	p := platform.ProcState{}
	p.Name = r.String()
	p.PID = int(r.I64())
	nPT := r.Count(16)
	p.PT = make([]enclave.PTE, 0, nPT)
	for i := 0; i < nPT && r.Err() == nil; i++ {
		p.PT = append(p.PT, enclave.PTE{VA: enclave.VAddr(r.U64()), PA: dram.Addr(r.U64())})
	}
	p.HeapNext = enclave.VAddr(r.U64())
	p.EnclNext = enclave.VAddr(r.U64())
	if r.Bool() {
		p.Encl = &enclave.Enclave{
			ID:    int(r.I64()),
			Base:  enclave.VAddr(r.U64()),
			Pages: int(r.I64()),
		}
	}
	return p
}
