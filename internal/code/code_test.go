package code

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestHammingRoundTripClean(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 1}
	enc := HammingEncode(bits)
	if len(enc) != len(bits)/4*7 {
		t.Fatalf("encoded length %d", len(enc))
	}
	dec, corrections, err := HammingDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if corrections != 0 {
		t.Fatalf("clean stream needed %d corrections", corrections)
	}
	if !bytes.Equal(dec, bits) {
		t.Fatalf("roundtrip %v -> %v", bits, dec)
	}
}

func TestHammingCorrectsEverySingleBitFlip(t *testing.T) {
	for val := byte(0); val < 16; val++ {
		bits := []byte{val & 1, (val >> 1) & 1, (val >> 2) & 1, (val >> 3) & 1}
		enc := HammingEncode(bits)
		for pos := range enc {
			flipped := make([]byte, len(enc))
			copy(flipped, enc)
			flipped[pos] ^= 1
			dec, corrections, err := HammingDecode(flipped)
			if err != nil {
				t.Fatal(err)
			}
			if corrections != 1 {
				t.Fatalf("val %d pos %d: %d corrections", val, pos, corrections)
			}
			if !bytes.Equal(dec, bits) {
				t.Fatalf("val %d pos %d: not corrected (%v)", val, pos, dec)
			}
		}
	}
}

func TestHammingEncodeRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HammingEncode([]byte{1, 0, 1})
}

func TestHammingDecodeRejectsBadLength(t *testing.T) {
	if _, _, err := HammingDecode(make([]byte, 13)); err == nil {
		t.Fatal("expected error for non-multiple-of-7 stream")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 21, 64, 100} {
			bits := make([]byte, n)
			for i := range bits {
				bits[i] = byte(i % 2)
			}
			got := Deinterleave(Interleave(bits, depth), depth)
			if !bytes.Equal(got, bits) {
				t.Fatalf("depth %d n %d roundtrip failed", depth, n)
			}
		}
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `depth` consecutive errors in the interleaved stream must
	// land in `depth` different positions at least 7 apart after
	// deinterleaving (so each Hamming block sees at most one).
	const n, depth = 70, 7
	burstStart := 21
	positions := []int{}
	marked := make([]byte, n)
	for i := 0; i < depth; i++ {
		marked[burstStart+i] = 1
	}
	restored := Deinterleave(marked, depth)
	for i, b := range restored {
		if b == 1 {
			positions = append(positions, i)
		}
	}
	if len(positions) != depth {
		t.Fatalf("burst positions %v", positions)
	}
	for i := 1; i < len(positions); i++ {
		if positions[i]-positions[i-1] < 7 {
			t.Fatalf("burst errors %d and %d land within one code block", positions[i-1], positions[i])
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x, want 0x29B1", got)
	}
}

func TestCodecRoundTripClean(t *testing.T) {
	c := Codec{InterleaveDepth: 7}
	payload := []byte("the MEE cache leaks")
	bits, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != c.EncodedBits(len(payload)) {
		t.Fatalf("encoded %d bits, EncodedBits says %d", len(bits), c.EncodedBits(len(payload)))
	}
	got, st, err := c.Decode(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip %q -> %q", payload, got)
	}
	if st.Corrections != 0 || !st.CRCOK {
		t.Fatalf("stats %+v", st)
	}
}

func TestCodecCorrectsScatteredErrors(t *testing.T) {
	c := Codec{InterleaveDepth: 7}
	payload := []byte("counter tree versions line")
	bits, _ := c.Encode(payload)
	// Build an error pattern with exactly one flipped bit per (randomly
	// chosen) Hamming block in code space, then map it through the
	// interleaver onto the channel stream.
	rng := rand.New(rand.NewPCG(1, 2))
	errVec := make([]byte, len(bits))
	flips := 0
	for block := 0; block*7 < len(errVec); block += 2 {
		errVec[block*7+rng.IntN(7)] = 1
		flips++
	}
	chanErr := Interleave(errVec, c.InterleaveDepth)
	for i := range bits {
		bits[i] ^= chanErr[i]
	}
	got, st, err := c.Decode(bits)
	if err != nil {
		t.Fatalf("decode with %d scattered flips: %v", flips, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if st.Corrections == 0 {
		t.Fatal("no corrections recorded")
	}
}

func TestCodecCorrectsBurst(t *testing.T) {
	c := Codec{InterleaveDepth: 8}
	payload := []byte("burst")
	bits, _ := c.Encode(payload)
	// A burst of 8 consecutive channel errors.
	for i := 20; i < 28; i++ {
		bits[i] ^= 1
	}
	got, _, err := c.Decode(bits)
	if err != nil {
		t.Fatalf("burst decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by burst")
	}
}

func TestCodecDetectsOverload(t *testing.T) {
	c := Codec{}
	payload := []byte("x")
	bits, _ := c.Encode(payload)
	// Two flips in one 7-bit block exceed Hamming's capacity; CRC must
	// catch the miscorrection.
	bits[0] ^= 1
	bits[1] ^= 1
	if _, st, err := c.Decode(bits); err == nil || st.CRCOK {
		t.Fatal("double error per block not detected")
	}
}

func TestCodecRejectsOversizedPayload(t *testing.T) {
	c := Codec{}
	if _, err := c.Encode(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestCodecRejectsMalformedStreams(t *testing.T) {
	c := Codec{}
	if _, _, err := c.Decode(make([]byte, 6)); err == nil {
		t.Fatal("short stream accepted")
	}
	// Valid Hamming length but too few frame bytes.
	if _, _, err := c.Decode(make([]byte, 14)); err == nil {
		t.Fatal("tiny frame accepted")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	c := Codec{InterleaveDepth: 7}
	f := func(payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		bits, err := c.Encode(payload)
		if err != nil {
			return false
		}
		got, st, err := c.Decode(bits)
		return err == nil && st.CRCOK && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single bit flip anywhere in the encoded stream is
// transparently corrected.
func TestQuickSingleFlipAlwaysCorrected(t *testing.T) {
	c := Codec{InterleaveDepth: 4}
	f := func(payload []byte, flipPos uint16) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 64 {
			payload = payload[:64]
		}
		bits, err := c.Encode(payload)
		if err != nil {
			return false
		}
		bits[int(flipPos)%len(bits)] ^= 1
		got, _, err := c.Decode(bits)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
