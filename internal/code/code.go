// Package code provides the error handling the paper leaves as future work
// ("without any error handling"): a Hamming(7,4) forward-error-correcting
// code, a block interleaver against burst errors, and CRC-16 framing, so a
// payload can cross the raw ~2%-error covert channel intact.
//
// The encoding pipeline is
//
//	payload -> frame (len + payload + CRC-16) -> Hamming(7,4) -> interleave
//
// and decoding reverses it, correcting any single bit error per 7-bit code
// block and verifying the frame checksum.
package code

import (
	"encoding/binary"
	"fmt"
)

// hamming(7,4): data bits d1..d4 at positions 3,5,6,7; parity bits p1,p2,p4
// at positions 1,2,4 (1-indexed). Syndrome = index of the flipped bit.

// encodeNibble produces the 7-bit codeword for a 4-bit value.
func encodeNibble(d byte) [7]byte {
	d1, d2, d3, d4 := d&1, (d>>1)&1, (d>>2)&1, (d>>3)&1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p4 := d2 ^ d3 ^ d4
	return [7]byte{p1, p2, d1, p4, d2, d3, d4}
}

// decodeNibble corrects up to one flipped bit and returns the 4-bit value
// plus whether a correction was applied.
func decodeNibble(cw [7]byte) (d byte, corrected bool) {
	s1 := cw[0] ^ cw[2] ^ cw[4] ^ cw[6]
	s2 := cw[1] ^ cw[2] ^ cw[5] ^ cw[6]
	s4 := cw[3] ^ cw[4] ^ cw[5] ^ cw[6]
	syndrome := int(s1) | int(s2)<<1 | int(s4)<<2
	if syndrome != 0 {
		cw[syndrome-1] ^= 1
		corrected = true
	}
	return cw[2] | cw[4]<<1 | cw[5]<<2 | cw[6]<<3, corrected
}

// HammingEncode expands bits (values 0/1, length a multiple of 4 — pad with
// zeros beforehand) into 7/4 as many code bits.
func HammingEncode(bits []byte) []byte {
	if len(bits)%4 != 0 {
		panic(fmt.Sprintf("code: HammingEncode needs a multiple of 4 bits, got %d", len(bits)))
	}
	out := make([]byte, 0, len(bits)/4*7)
	for i := 0; i < len(bits); i += 4 {
		d := bits[i] | bits[i+1]<<1 | bits[i+2]<<2 | bits[i+3]<<3
		cw := encodeNibble(d)
		out = append(out, cw[:]...)
	}
	return out
}

// HammingDecode reverses HammingEncode, correcting single-bit errors per
// block; it returns the data bits and how many blocks needed correction.
func HammingDecode(bits []byte) (data []byte, corrections int, err error) {
	if len(bits)%7 != 0 {
		return nil, 0, fmt.Errorf("code: Hamming stream length %d not a multiple of 7", len(bits))
	}
	data = make([]byte, 0, len(bits)/7*4)
	for i := 0; i < len(bits); i += 7 {
		var cw [7]byte
		copy(cw[:], bits[i:i+7])
		d, corrected := decodeNibble(cw)
		if corrected {
			corrections++
		}
		data = append(data, d&1, (d>>1)&1, (d>>2)&1, (d>>3)&1)
	}
	return data, corrections, nil
}

// Interleave reorders bits so that a burst of up to `depth` consecutive
// channel errors lands in distinct code blocks. The length need not divide
// depth; the mapping is the usual row/column transpose of a depth-row
// matrix filled row-major.
func Interleave(bits []byte, depth int) []byte {
	if depth <= 1 {
		out := make([]byte, len(bits))
		copy(out, bits)
		return out
	}
	n := len(bits)
	if depth > n {
		// Rows beyond the stream are empty; the transpose degenerates to
		// the identity, so clamping keeps the loop bounded by the input.
		depth = n
	}
	out := make([]byte, 0, n)
	for col := 0; col < depth; col++ {
		for i := col; i < n; i += depth {
			out = append(out, bits[i])
		}
	}
	return out
}

// Deinterleave inverts Interleave for the same depth and length.
func Deinterleave(bits []byte, depth int) []byte {
	if depth <= 1 {
		out := make([]byte, len(bits))
		copy(out, bits)
		return out
	}
	n := len(bits)
	if depth > n {
		depth = n
	}
	out := make([]byte, n)
	k := 0
	for col := 0; col < depth; col++ {
		for i := col; i < n; i += depth {
			out[i] = bits[k]
			k++
		}
	}
	return out
}

// CRC16 computes CRC-16/CCITT-FALSE over data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Codec bundles the framing parameters.
type Codec struct {
	// InterleaveDepth spreads bursts across code blocks (0/1 = off).
	InterleaveDepth int
}

// MaxPayload is the largest frame payload (length is a single byte).
const MaxPayload = 255

// bitsFromBytes expands bytes LSB-first.
func bitsFromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, (b>>i)&1)
		}
	}
	return out
}

// bytesFromBits packs bits LSB-first (length must be a multiple of 8).
func bytesFromBits(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		for j := 0; j < 8; j++ {
			out[i] |= (bits[i*8+j] & 1) << j
		}
	}
	return out
}

// Encode frames payload (length byte + payload + CRC-16), Hamming-encodes,
// and interleaves. The result is the bit sequence to hand to the channel.
func (c Codec) Encode(payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("code: payload %d exceeds %d bytes", len(payload), MaxPayload)
	}
	frame := make([]byte, 0, len(payload)+3)
	frame = append(frame, byte(len(payload)))
	frame = append(frame, payload...)
	var crc [2]byte
	binary.LittleEndian.PutUint16(crc[:], CRC16(frame))
	frame = append(frame, crc[:]...)
	bits := bitsFromBytes(frame) // multiple of 8, hence of 4
	return Interleave(HammingEncode(bits), c.InterleaveDepth), nil
}

// DecodeStats reports what Decode had to do.
type DecodeStats struct {
	// Corrections is the number of Hamming blocks with a corrected bit.
	Corrections int
	// CRCOK reports whether the frame checksum verified.
	CRCOK bool
}

// Decode reverses Encode. It returns the payload, correction statistics,
// and an error if the stream is malformed or the CRC fails (more channel
// errors than the code could absorb).
func (c Codec) Decode(bits []byte) ([]byte, DecodeStats, error) {
	var st DecodeStats
	data, corrections, err := HammingDecode(Deinterleave(bits, c.InterleaveDepth))
	if err != nil {
		return nil, st, err
	}
	st.Corrections = corrections
	if len(data)%8 != 0 {
		return nil, st, fmt.Errorf("code: decoded bit count %d not byte aligned", len(data))
	}
	frame := bytesFromBits(data)
	if len(frame) < 3 {
		return nil, st, fmt.Errorf("code: frame too short (%d bytes)", len(frame))
	}
	n := int(frame[0])
	if len(frame) < n+3 {
		return nil, st, fmt.Errorf("code: frame truncated (len byte %d, have %d)", n, len(frame)-3)
	}
	body := frame[:n+1]
	wantCRC := binary.LittleEndian.Uint16(frame[n+1 : n+3])
	st.CRCOK = CRC16(body) == wantCRC
	if !st.CRCOK {
		return nil, st, fmt.Errorf("code: CRC mismatch (channel errors exceeded code capacity)")
	}
	return body[1 : n+1], st, nil
}

// EncodedBits returns how many channel bits Encode produces for a payload
// of n bytes.
func (c Codec) EncodedBits(n int) int {
	return (n + 3) * 8 / 4 * 7
}
