package code

import (
	"bytes"
	"testing"
)

// FuzzDecodeNeverPanics feeds arbitrary bit streams to the decoder: it must
// return clean errors (or valid frames), never panic, on any input — the
// covert channel delivers attacker-observed, noise-corrupted data.
func FuzzDecodeNeverPanics(f *testing.F) {
	c := Codec{InterleaveDepth: 8}
	seedBits, _ := c.Encode([]byte("seed"))
	f.Add(seedBits)
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Add(make([]byte, 77))
	// A truncated transmission: the spy loses the channel mid-frame and
	// hands the decoder a stream cut at an arbitrary (here odd) offset.
	f.Add(seedBits[:len(seedBits)-1])
	f.Add(seedBits[:len(seedBits)/2+1])
	// A zero-length frame is legal (len byte 0 + CRC): its encoding must
	// decode, and corruptions of it must fail cleanly.
	emptyBits, _ := c.Encode(nil)
	f.Add(emptyBits)
	f.Add(emptyBits[:len(emptyBits)-3])
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Normalize to bits: the channel only ever produces 0/1.
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		payload, st, err := c.Decode(bits)
		if err == nil && !st.CRCOK {
			t.Fatal("nil error with failed CRC")
		}
		if err == nil && len(payload) > MaxPayload {
			t.Fatalf("oversized payload %d decoded", len(payload))
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks the end-to-end invariant for arbitrary
// payloads.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 255))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		c := Codec{InterleaveDepth: 7}
		bits, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := c.Decode(bits)
		if err != nil || !st.CRCOK {
			t.Fatalf("clean roundtrip failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch")
		}
	})
}

// FuzzDecodeTruncatedStream cuts a valid encoded stream at an arbitrary
// offset before decoding — the spy losing the channel mid-frame. Whatever
// the cut (including odd lengths that break the Hamming block structure),
// the decoder must fail cleanly or produce a CRC-verified frame; it must
// never panic and never hand back an unverified payload.
func FuzzDecodeTruncatedStream(f *testing.F) {
	f.Add([]byte("truncate me"), uint16(0), uint8(8))
	f.Add([]byte{}, uint16(3), uint8(1))
	f.Add([]byte("x"), uint16(13), uint8(0))
	f.Fuzz(func(t *testing.T, payload []byte, cut uint16, depth uint8) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		c := Codec{InterleaveDepth: int(depth)}
		bits, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		n := int(cut) % (len(bits) + 1)
		got, st, err := c.Decode(bits[:n])
		if err == nil && !st.CRCOK {
			t.Fatal("nil error with failed CRC on truncated stream")
		}
		if err == nil && n < len(bits) && !bytes.Equal(got, payload) {
			// A shorter prefix may still decode (interleaving can leave a
			// smaller intact frame); it must then be internally consistent.
			if len(got) > MaxPayload {
				t.Fatalf("truncated stream decoded to %d bytes", len(got))
			}
		}
	})
}

// FuzzInterleaveRoundTrip checks that Deinterleave inverts Interleave for
// arbitrary streams and depths — including the edge cases the channel layer
// can produce: a zero-length frame, depth exceeding the frame length, and
// non-positive depths (interleaving off).
func FuzzInterleaveRoundTrip(f *testing.F) {
	f.Add([]byte{}, 4)
	f.Add([]byte{1, 0, 1}, 8) // depth > frame length
	f.Add([]byte{1}, 0)
	f.Add(bytes.Repeat([]byte{1, 0}, 40), -3)
	f.Fuzz(func(t *testing.T, raw []byte, depth int) {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		inter := Interleave(bits, depth)
		if len(inter) != len(bits) {
			t.Fatalf("interleave changed length %d -> %d (depth %d)", len(bits), len(inter), depth)
		}
		got := Deinterleave(inter, depth)
		if !bytes.Equal(got, bits) {
			t.Fatalf("roundtrip failed at depth %d, len %d", depth, len(bits))
		}
	})
}
