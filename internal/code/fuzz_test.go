package code

import (
	"bytes"
	"testing"
)

// FuzzDecodeNeverPanics feeds arbitrary bit streams to the decoder: it must
// return clean errors (or valid frames), never panic, on any input — the
// covert channel delivers attacker-observed, noise-corrupted data.
func FuzzDecodeNeverPanics(f *testing.F) {
	c := Codec{InterleaveDepth: 8}
	seedBits, _ := c.Encode([]byte("seed"))
	f.Add(seedBits)
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Add(make([]byte, 77))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Normalize to bits: the channel only ever produces 0/1.
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		payload, st, err := c.Decode(bits)
		if err == nil && !st.CRCOK {
			t.Fatal("nil error with failed CRC")
		}
		if err == nil && len(payload) > MaxPayload {
			t.Fatalf("oversized payload %d decoded", len(payload))
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks the end-to-end invariant for arbitrary
// payloads.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 255))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		c := Codec{InterleaveDepth: 7}
		bits, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := c.Decode(bits)
		if err != nil || !st.CRCOK {
			t.Fatalf("clean roundtrip failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch")
		}
	})
}
