package mee

import (
	"fmt"

	"meecc/internal/cache"
	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/sim"
)

// BufState is one resident node buffer in a serialized engine image,
// addressed by its dense [set*ways+way] slot.
type BufState struct {
	Idx     int
	Addr    dram.Addr
	Kind    itree.NodeKind
	Counter itree.CounterLine
	Tags    itree.TagLine
	Dirty   bool
}

// State is the serializable image of an Engine, excluding what the platform
// reconstructs around it: config, geometry, crypto, and the DRAM binding.
type State struct {
	Cache       *cache.State
	Bufs        []BufState // ascending Idx
	Root        []uint64
	Initialized []uint64
	PortBusy    sim.Cycles
	Stats       Stats
}

// CryptoMaster returns the master key the engine's crypto was derived from,
// for snapshot serialization.
func (e *Engine) CryptoMaster() [16]byte { return e.crypt.Master() }

// ExportState captures the engine as a deep-copied State.
func (e *Engine) ExportState() *State {
	st := &State{
		Cache:       e.cache.ExportState(),
		Root:        make([]uint64, len(e.root)),
		Initialized: make([]uint64, len(e.initialized)),
		PortBusy:    e.port.BusyUntil(),
		Stats:       e.stats,
	}
	copy(st.Root, e.root)
	copy(st.Initialized, e.initialized)
	for i := range e.bufs {
		nb := &e.bufs[i]
		if !nb.valid {
			continue
		}
		st.Bufs = append(st.Bufs, BufState{
			Idx:     i,
			Addr:    nb.addr,
			Kind:    nb.kind,
			Counter: nb.counter,
			Tags:    nb.tags,
			Dirty:   nb.dirty,
		})
	}
	return st
}

// EngineFromState rebuilds a frozen engine from a serialized image. cfg,
// geom, and crypt come from the platform-level decode (they are derived from
// the machine config and master key, not stored per-engine); the result has
// no DRAM binding and never runs — Fork rebinds it to a live memory and RNG.
// Geometry mismatches between cfg and the image are reported as errors.
func EngineFromState(cfg Config, geom itree.Geometry, crypt *itree.Crypto, st *State) (*Engine, error) {
	if st.Cache == nil {
		return nil, fmt.Errorf("mee: missing cache state")
	}
	if st.Cache.Sets != cfg.CacheSets || st.Cache.Ways != cfg.CacheWays {
		return nil, fmt.Errorf("mee: cache state %dx%d does not match config %dx%d",
			st.Cache.Sets, st.Cache.Ways, cfg.CacheSets, cfg.CacheWays)
	}
	c, err := cache.FromState(st.Cache, nil)
	if err != nil {
		return nil, fmt.Errorf("mee: %w", err)
	}
	if len(st.Root) != geom.RootCounters {
		return nil, fmt.Errorf("mee: %d root counters, want %d", len(st.Root), geom.RootCounters)
	}
	if want := int((geom.PRMSize/itree.LineSize + 63) / 64); len(st.Initialized) != want {
		return nil, fmt.Errorf("mee: init bitmap %d words, want %d", len(st.Initialized), want)
	}
	e := &Engine{
		cfg:         cfg,
		geom:        geom,
		crypt:       crypt,
		cache:       c,
		bufs:        make([]nodeBuf, cfg.CacheSets*cfg.CacheWays),
		root:        make([]uint64, len(st.Root)),
		initialized: make([]uint64, len(st.Initialized)),
		port:        sim.ResumeResource(st.PortBusy),
		stats:       st.Stats,
	}
	copy(e.root, st.Root)
	copy(e.initialized, st.Initialized)
	last := -1
	for _, b := range st.Bufs {
		if b.Idx <= last || b.Idx >= len(e.bufs) {
			return nil, fmt.Errorf("mee: buffer slot %d out of order or range", b.Idx)
		}
		last = b.Idx
		e.bufs[b.Idx] = nodeBuf{
			addr:    b.Addr,
			kind:    b.Kind,
			counter: b.Counter,
			tags:    b.Tags,
			dirty:   b.Dirty,
			valid:   true,
		}
		e.nBufs++
	}
	return e, nil
}
