package mee

import (
	"math/rand/v2"
	"strings"
	"testing"

	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

func benchEngine(b *testing.B) (*Engine, *rand.Rand) {
	b.Helper()
	rng := rand.New(rand.NewPCG(11, 22))
	mem := dram.New(dram.DefaultConfig())
	geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		b.Fatal(err)
	}
	return New(DefaultConfig(rng), geom, itree.NewCrypto([16]byte{1}), mem), rng
}

// BenchmarkReadVersionsHit is the hot path of the whole simulation: a
// protected read whose versions line is cached.
func BenchmarkReadVersionsHit(b *testing.B) {
	e, rng := benchEngine(b)
	addr := e.Geometry().DataBase
	now := sim.Cycles(0)
	if _, _, _, err := e.ReadData(now, rng, addr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10000
		if _, _, _, err := e.ReadData(now, rng, addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadObserved is the warm read with a live observer attached: it
// both measures the instrumentation overhead against BenchmarkReadVersionsHit
// and reports the MEE cache hit rate as a custom metric. benchjson stores
// meeHits/op alongside the standard units, so the hit rate rides through
// ./ci.sh bench baselines like any other value.
func BenchmarkReadObserved(b *testing.B) {
	e, rng := benchEngine(b)
	o := obs.NewObserver()
	e.Observe(o)
	addr := e.Geometry().DataBase
	now := sim.Cycles(0)
	if _, _, _, err := e.ReadData(now, rng, addr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10000
		if _, _, _, err := e.ReadData(now, rng, addr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var hits uint64
	for name, v := range o.Snapshot().Counters {
		if strings.HasPrefix(name, "mee.hits.") {
			hits += v
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "meeHits/op")
}

// BenchmarkReadColdWalk measures the full root walk (every level fetched
// and verified with real AES MACs).
func BenchmarkReadColdWalk(b *testing.B) {
	e, rng := benchEngine(b)
	now := sim.Cycles(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10000
		addr := e.Geometry().DataBase + dram.Addr((i%300)*(256<<10))
		if _, _, _, err := e.ReadData(now, rng, addr); err != nil {
			b.Fatal(err)
		}
		if i%300 == 299 {
			b.StopTimer()
			e.FlushCache(now, rng)
			b.StartTimer()
		}
	}
}

// BenchmarkWriteData measures the protected write path (version bump,
// re-encrypt, re-MAC).
func BenchmarkWriteData(b *testing.B) {
	e, rng := benchEngine(b)
	var line [64]byte
	now := sim.Cycles(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10000
		addr := e.Geometry().DataBase + dram.Addr((i%64)*512)
		if _, _, err := e.WriteData(now, rng, addr, line); err != nil {
			b.Fatal(err)
		}
	}
}
