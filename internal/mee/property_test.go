package mee

import (
	"math/rand/v2"
	"testing"

	"meecc/internal/dram"
)

// Property: under an arbitrary interleaving of reads, writes, and cache
// flushes, every read returns the most recent write to that line
// (read-your-writes through encryption, caching, and writebacks).
func TestPropertyReadYourWrites(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewPCG(123, 456))
	shadow := map[dram.Addr]byte{}
	const lines = 64
	addrOf := func(i int) dram.Addr {
		// Spread across blocks and pages so sets/levels churn.
		return f.dataAddr(uint64(i) * 512 * 3)
	}
	for op := 0; op < 1500; op++ {
		i := rng.IntN(lines)
		addr := addrOf(i)
		switch rng.IntN(5) {
		case 0, 1: // write
			v := byte(rng.Uint64())
			f.write(t, addr, v)
			shadow[addr] = v
		case 2: // flush the MEE cache entirely
			if op%97 == 0 {
				f.now += 100000
				f.eng.FlushCache(f.now, f.rng)
			}
		default: // read and verify
			got, _, _ := f.read(t, addr)
			want, written := shadow[addr]
			if !written {
				continue
			}
			if got[0] != want {
				t.Fatalf("op %d: line %d read %#x, want %#x", op, i, got[0], want)
			}
		}
	}
}

// Property: latency never violates the mode ordering — a versions hit is
// always faster than the same-moment root walk would be, and every access
// falls within sane bounds.
func TestPropertyLatencyBounds(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewPCG(7, 8))
	for op := 0; op < 800; op++ {
		addr := f.dataAddr(uint64(rng.IntN(1<<20)) &^ 63)
		f.now += 50000
		_, lat, hit, err := f.eng.ReadData(f.now, f.rng, addr)
		if err != nil {
			t.Fatal(err)
		}
		lo := []int64{380, 620, 860, 1100, 1340}[hit]
		hi := []int64{620, 900, 1180, 1460, 1900}[hit]
		if int64(lat) < lo || int64(lat) > hi {
			t.Fatalf("op %d: %v latency %d outside [%d,%d]", op, hit, lat, lo, hi)
		}
	}
}

// Property: the MEE cache never exceeds its capacity and never holds the
// same line twice, under arbitrary access patterns.
func TestPropertyCacheCapacityInvariant(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewPCG(9, 10))
	for op := 0; op < 600; op++ {
		addr := f.dataAddr(uint64(rng.IntN(4<<20)) &^ 511)
		f.now += 50000
		if _, _, _, err := f.eng.ReadData(f.now, f.rng, addr); err != nil {
			t.Fatal(err)
		}
		if n := f.eng.Cache().ValidCount(); n > 128*8 {
			t.Fatalf("MEE cache holds %d lines", n)
		}
	}
	// Spot-check a few sets for duplicates.
	for set := 0; set < 16; set++ {
		seen := map[uint64]bool{}
		for _, l := range f.eng.Cache().SetContents(set) {
			if !l.Valid {
				continue
			}
			if seen[uint64(l.Tag)] {
				t.Fatalf("set %d holds tag %d twice", set, l.Tag)
			}
			seen[uint64(l.Tag)] = true
		}
	}
}

// Property: walks are deterministic given identical engine state — two
// engines fed the same operation sequence report identical latencies.
func TestPropertyDeterministicWalks(t *testing.T) {
	run := func() []int64 {
		f := newFixture(t)
		var lats []int64
		opRng := rand.New(rand.NewPCG(33, 44))
		for i := 0; i < 200; i++ {
			f.now += 40000
			addr := f.dataAddr(uint64(opRng.IntN(1<<20)) &^ 63)
			_, lat, _, err := f.eng.ReadData(f.now, f.rng, addr)
			if err != nil {
				t.Fatal(err)
			}
			lats = append(lats, int64(lat))
		}
		return lats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}
