package mee

import (
	"errors"
	"math/rand/v2"
	"testing"

	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/sim"
)

type fixture struct {
	eng *Engine
	mem *dram.DRAM
	rng *rand.Rand
	now sim.Cycles
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 22))
	mem := dram.New(dram.DefaultConfig())
	geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	crypt := itree.NewCrypto([16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1})
	return &fixture{
		eng: New(DefaultConfig(rng), geom, crypt, mem),
		mem: mem,
		rng: rng,
	}
}

// read performs a read far enough in the future to avoid port/bank carryover.
func (f *fixture) read(t *testing.T, addr dram.Addr) ([64]byte, sim.Cycles, HitLevel) {
	t.Helper()
	f.now += 100000
	data, lat, hit, err := f.eng.ReadData(f.now, f.rng, addr)
	if err != nil {
		t.Fatalf("ReadData(%#x): %v", addr, err)
	}
	return data, lat, hit
}

func (f *fixture) write(t *testing.T, addr dram.Addr, val byte) {
	t.Helper()
	f.now += 100000
	var line [64]byte
	for i := range line {
		line[i] = val
	}
	if _, _, err := f.eng.WriteData(f.now, f.rng, addr, line); err != nil {
		t.Fatalf("WriteData(%#x): %v", addr, err)
	}
}

func (f *fixture) dataAddr(off uint64) dram.Addr {
	return f.eng.Geometry().DataBase + dram.Addr(off)
}

func TestColdReadWalksToRoot(t *testing.T) {
	f := newFixture(t)
	_, lat, hit := f.read(t, f.dataAddr(0))
	if hit != HitRoot {
		t.Fatalf("cold read hit %v, want root access", hit)
	}
	if lat < 1300 || lat > 1900 {
		t.Fatalf("cold read latency %d, want ~1560", lat)
	}
}

func TestRepeatedReadHitsVersions(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(0)
	f.read(t, a)
	_, lat, hit := f.read(t, a)
	if hit != HitVersions {
		t.Fatalf("second read hit %v, want versions", hit)
	}
	if lat < 420 || lat > 560 {
		t.Fatalf("versions-hit latency %d, want ~480", lat)
	}
}

func TestSame512BBlockSharesVersionsLine(t *testing.T) {
	f := newFixture(t)
	f.read(t, f.dataAddr(0))
	// Different line, same 512 B block -> same versions line -> versions hit.
	_, _, hit := f.read(t, f.dataAddr(64))
	if hit != HitVersions {
		t.Fatalf("same-block read hit %v, want versions", hit)
	}
}

func TestNeighboringBlockHitsL0(t *testing.T) {
	f := newFixture(t)
	f.read(t, f.dataAddr(0))
	// Next 512 B block: fresh versions line but same L0 line.
	_, lat, hit := f.read(t, f.dataAddr(512))
	if hit != HitL0 {
		t.Fatalf("neighboring block hit %v, want L0", hit)
	}
	if lat < 650 || lat > 880 {
		t.Fatalf("L0-hit latency %d, want ~750", lat)
	}
}

func TestStrideLaddersUpTheTree(t *testing.T) {
	f := newFixture(t)
	f.read(t, f.dataAddr(0))
	// 4 KB away: same L1, different L0.
	_, latL1, hit := f.read(t, f.dataAddr(4096))
	if hit != HitL1 {
		t.Fatalf("4KB-away read hit %v, want L1", hit)
	}
	// 32 KB away: same L2, different L1.
	_, latL2, hit := f.read(t, f.dataAddr(32<<10))
	if hit != HitL2 {
		t.Fatalf("32KB-away read hit %v, want L2", hit)
	}
	// 256 KB away: different L2 -> root.
	_, latRoot, hit := f.read(t, f.dataAddr(256<<10))
	if hit != HitRoot {
		t.Fatalf("256KB-away read hit %v, want root", hit)
	}
	if !(latL1 < latL2 && latL2 < latRoot) {
		t.Fatalf("latency not monotone in depth: L1=%d L2=%d root=%d", latL1, latL2, latRoot)
	}
}

func TestLatencyLevelSeparation(t *testing.T) {
	// Figure 5's modes must be separated by roughly one DRAM access (~270).
	f := newFixture(t)
	means := map[HitLevel][]sim.Cycles{}
	for trial := 0; trial < 40; trial++ {
		base := uint64(trial) * (1 << 20) // 1 MB apart: cold regions
		f.read(t, f.dataAddr(base))       // root walk warms the chain
		_, lv, h := f.read(t, f.dataAddr(base))
		if h == HitVersions {
			means[HitVersions] = append(means[HitVersions], lv)
		}
		_, l0, h0 := f.read(t, f.dataAddr(base+512))
		if h0 == HitL0 {
			means[HitL0] = append(means[HitL0], l0)
		}
	}
	avg := func(xs []sim.Cycles) float64 {
		var s sim.Cycles
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	if len(means[HitVersions]) == 0 || len(means[HitL0]) == 0 {
		t.Fatal("missing samples")
	}
	vh, l0h := avg(means[HitVersions]), avg(means[HitL0])
	gap := l0h - vh
	if gap < 220 || gap > 340 {
		t.Fatalf("versions-hit %.0f vs L0-hit %.0f: gap %.0f, want ~270", vh, l0h, gap)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(4096 * 3)
	f.write(t, a, 0xAB)
	got, _, _ := f.read(t, a)
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
}

func TestWriteBumpsVersionCiphertextChanges(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(0)
	f.write(t, a, 0x11)
	ct1 := f.mem.ReadLine(a)
	f.write(t, a, 0x11) // same plaintext, new version
	ct2 := f.mem.ReadLine(a)
	if ct1 == ct2 {
		t.Fatal("rewriting identical plaintext produced identical ciphertext (version not bumped)")
	}
	got, _, _ := f.read(t, a)
	if got[0] != 0x11 {
		t.Fatal("roundtrip after double write failed")
	}
}

func TestFlushCacheWritebackThenVerifies(t *testing.T) {
	f := newFixture(t)
	// Dirty a bunch of versions/tag lines across several L0 regions.
	for i := uint64(0); i < 32; i++ {
		f.write(t, f.dataAddr(i*512), byte(i))
	}
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	if f.eng.Cache().ValidCount() != 0 {
		t.Fatal("MEE cache not empty after FlushCache")
	}
	// Every line must re-verify from DRAM (full chain walk) and decrypt.
	for i := uint64(0); i < 32; i++ {
		got, _, hit := f.read(t, f.dataAddr(i*512))
		if got[0] != byte(i) {
			t.Fatalf("line %d read %#x, want %#x", i, got[0], byte(i))
		}
		if i == 0 && hit != HitRoot {
			t.Fatalf("first read after flush hit %v, want root", hit)
		}
	}
}

func TestTamperCiphertextDetected(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(512 * 5)
	f.write(t, a, 0x42)
	raw := f.mem.ReadLine(a)
	raw[7] ^= 0x01
	f.mem.WriteLine(a, raw)
	f.now += 100000
	_, _, _, err := f.eng.ReadData(f.now, f.rng, a)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered ciphertext read returned %v, want IntegrityError", err)
	}
	if f.eng.Stats().Violations == 0 {
		t.Fatal("violation not counted")
	}
}

func TestTamperVersionLineDetected(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(512 * 9)
	f.write(t, a, 0x77)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	vaddr := f.eng.Geometry().VersionLineAddr(a)
	raw := f.mem.ReadLine(vaddr)
	raw[0] ^= 0x80
	f.mem.WriteLine(vaddr, raw)
	f.now += 100000
	_, _, _, err := f.eng.ReadData(f.now, f.rng, a)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered versions line read returned %v, want IntegrityError", err)
	}
}

func TestReplayedVersionLineDetected(t *testing.T) {
	f := newFixture(t)
	a := f.dataAddr(512 * 13)
	f.write(t, a, 0x01)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	vaddr := f.eng.Geometry().VersionLineAddr(a)
	old := f.mem.ReadLine(vaddr) // snapshot: version=1, MAC valid for parent counter now
	// Advance state: write again, flush (parent counter increments).
	f.write(t, a, 0x02)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	// Replay the old versions line.
	f.mem.WriteLine(vaddr, old)
	f.now += 100000
	_, _, _, err := f.eng.ReadData(f.now, f.rng, a)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replayed versions line returned %v, want IntegrityError (freshness)", err)
	}
}

func TestCacheSetPlacementOddEven(t *testing.T) {
	f := newFixture(t)
	g := f.eng.Geometry()
	for i := uint64(0); i < 200; i++ {
		va := g.VersBase + dram.Addr(i*64)
		if s := f.eng.CacheSetFor(va); s%2 != 1 {
			t.Fatalf("versions line %d in even set %d", i, s)
		}
		ta := g.TagBase + dram.Addr(i*64)
		if s := f.eng.CacheSetFor(ta); s%2 != 0 {
			t.Fatalf("tag line %d in odd set %d", i, s)
		}
	}
	// Counter levels stay out of the versions (odd) sets so that Algorithm 1
	// discovers exactly 8 ways, as on the paper's hardware.
	for l := 0; l < itree.Levels; l++ {
		if s := f.eng.CacheSetFor(g.LevelBase[l]); s%2 != 0 {
			t.Fatalf("level %d line in odd set %d", l, s)
		}
	}
}

func TestVersionsConflictEviction(t *testing.T) {
	// 9 data addresses whose versions lines map to the same odd set
	// (version-line indices 64 apart => data addresses 32 KB apart)
	// overflow the 8 ways: at least one re-access misses.
	f := newFixture(t)
	const strideData = 64 * 512 // 64 versions lines apart = same set
	for i := uint64(0); i <= 8; i++ {
		f.read(t, f.dataAddr(i*strideData))
	}
	misses := 0
	for i := uint64(0); i <= 8; i++ {
		if _, _, hit := f.read(t, f.dataAddr(i*strideData)); hit != HitVersions {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("no versions line evicted from a 9-line conflict in an 8-way set")
	}
}

func TestEightWaySetMostlySurvives(t *testing.T) {
	// Exactly 8 distinct versions lines fit in one set; only occasional
	// interference from L0/L1/L2 lines sharing the odd sets (§4.1) may
	// displace a line or two.
	f := newFixture(t)
	const strideData = 64 * 512
	// Start at block 208 (offset 208*512): for this base the covering
	// L0/L1/L2 lines of all eight accesses map to different odd sets than
	// the versions lines do, so the only lines in the target set are the
	// eight versions lines themselves.
	const base = 208 * 512
	for i := uint64(0); i < 8; i++ {
		f.read(t, f.dataAddr(base+i*strideData))
	}
	hits := 0
	for i := uint64(0); i < 8; i++ {
		if _, _, hit := f.read(t, f.dataAddr(base+i*strideData)); hit == HitVersions {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("only %d of 8 versions lines survived a non-overflowing set", hits)
	}
}

func TestMEEPortContention(t *testing.T) {
	f := newFixture(t)
	a, b := f.dataAddr(0), f.dataAddr(1<<20)
	f.read(t, a)
	f.read(t, b)
	// Two concurrent accesses at the same instant: the second stalls.
	f.now += 100000
	_, lat1, _, err := f.eng.ReadData(f.now, f.rng, a)
	if err != nil {
		t.Fatal(err)
	}
	_, lat2, _, err := f.eng.ReadData(f.now, f.rng, b)
	if err != nil {
		t.Fatal(err)
	}
	if lat2 <= lat1 {
		t.Fatalf("concurrent access lat %d not delayed past first %d", lat2, lat1)
	}
	if f.eng.Stats().StallCyc == 0 {
		t.Fatal("no port stall recorded")
	}
}

func TestStatsHitAccounting(t *testing.T) {
	f := newFixture(t)
	f.read(t, f.dataAddr(0))
	f.read(t, f.dataAddr(0))
	st := f.eng.Stats()
	if st.Reads != 2 {
		t.Fatalf("reads=%d", st.Reads)
	}
	if st.HitsAt[HitRoot] != 1 || st.HitsAt[HitVersions] != 1 {
		t.Fatalf("hit histogram %v", st.HitsAt)
	}
}
