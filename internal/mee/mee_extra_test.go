package mee

import (
	"strings"
	"testing"

	"meecc/internal/dram"
	"meecc/internal/itree"
)

func TestHitLevelStrings(t *testing.T) {
	cases := map[HitLevel]string{
		HitVersions:  "versions-hit",
		HitL0:        "level0-hit",
		HitL1:        "level1-hit",
		HitL2:        "level2-hit",
		HitRoot:      "root-access",
		HitLevel(42): "HitLevel(42)",
	}
	for h, want := range cases {
		if got := h.String(); got != want {
			t.Errorf("%d: %q != %q", int(h), got, want)
		}
	}
}

func TestIntegrityErrorMessage(t *testing.T) {
	e := &IntegrityError{Addr: 0x1234, Kind: itree.KindVersion, What: "embedded MAC mismatch"}
	msg := e.Error()
	for _, frag := range []string{"0x1234", "version", "MAC"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
}

func TestOddSetCountRejected(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig(f.rng)
	cfg.CacheSets = 127
	defer func() {
		if recover() == nil {
			t.Fatal("odd set count accepted")
		}
	}()
	New(cfg, *f.eng.Geometry(), itree.NewCrypto([16]byte{1}), f.mem)
}

func TestRandomEvictInjectionDegradesHitRate(t *testing.T) {
	measure := func(prob float64) uint64 {
		rngFix := newFixture(t)
		cfg := DefaultConfig(rngFix.rng)
		cfg.RandomEvictProb = prob
		eng := New(cfg, *rngFix.eng.Geometry(), itree.NewCrypto([16]byte{2}), dram.New(dram.DefaultConfig()))
		now := rngFix.now
		addr := eng.Geometry().DataBase
		// Re-access the same line repeatedly; without injection every
		// access after the first is a versions hit.
		for i := 0; i < 300; i++ {
			now += 100000
			if _, _, _, err := eng.ReadData(now, rngFix.rng, addr); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Stats().HitsAt[HitVersions]
	}
	clean := measure(0)
	noisy := measure(0.5)
	if clean < 295 {
		t.Fatalf("clean hit count %d", clean)
	}
	if noisy >= clean {
		t.Fatalf("random eviction injection had no effect: %d vs %d", noisy, clean)
	}
}

func TestFlushCacheIdempotent(t *testing.T) {
	f := newFixture(t)
	f.write(t, f.dataAddr(0), 0x5A)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng) // second flush: nothing dirty, no panic
	got, _, _ := f.read(t, f.dataAddr(0))
	if got[0] != 0x5A {
		t.Fatal("data lost across double flush")
	}
}

func TestResetStatsClearsEverything(t *testing.T) {
	f := newFixture(t)
	f.read(t, f.dataAddr(0))
	if f.eng.Stats().Reads == 0 {
		t.Fatal("no reads recorded")
	}
	f.eng.ResetStats()
	st := f.eng.Stats()
	if st.Reads != 0 || st.HitsAt[HitRoot] != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if cs := f.eng.Cache().Stats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("cache stats not reset: %+v", cs)
	}
}

func TestWritesToDistinctLinesShareVersionLine(t *testing.T) {
	// Eight 64 B lines in one 512 B block use distinct counters of the
	// same versions line; each line's data must round-trip independently.
	f := newFixture(t)
	base := f.dataAddr(512 * 20)
	for i := 0; i < 8; i++ {
		f.write(t, base+dram.Addr(i*64), byte(0x10+i))
	}
	for i := 0; i < 8; i++ {
		got, _, _ := f.read(t, base+dram.Addr(i*64))
		if got[0] != byte(0x10+i) {
			t.Fatalf("line %d read %#x", i, got[0])
		}
	}
}

func TestTagTamperOnOneLineDoesNotAffectSiblings(t *testing.T) {
	f := newFixture(t)
	base := f.dataAddr(512 * 30)
	f.write(t, base, 0x01)
	f.write(t, base+64, 0x02)
	f.now += 100000
	f.eng.FlushCache(f.now, f.rng)
	// Corrupt only line 0's ciphertext.
	raw := f.mem.ReadLine(base)
	raw[0] ^= 0xFF
	f.mem.WriteLine(base, raw)
	// Sibling line still verifies.
	got, _, _ := f.read(t, base+64)
	if got[0] != 0x02 {
		t.Fatal("sibling line corrupted")
	}
	// The tampered line is caught.
	f.now += 100000
	if _, _, _, err := f.eng.ReadData(f.now, f.rng, base); err == nil {
		t.Fatal("tamper on line 0 not detected")
	}
}
