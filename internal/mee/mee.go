// Package mee models the Memory Encryption Engine: the hardware unit inside
// the memory controller that encrypts/decrypts protected-region traffic and
// verifies its integrity and freshness against the counter tree, caching
// recently verified tree lines in the MEE cache.
//
// The properties the covert channel exploits are implemented faithfully:
//
//   - the MEE cache is shared by all cores (it sits in the memory
//     controller, not in any core);
//   - every protected data access checks the covering versions line first,
//     and the tree walk stops at the first MEE-cache hit (Section 2.2 of the
//     paper), so access latency reveals the deepest cached level;
//   - versions lines occupy odd cache sets and PD_Tag/L0..L2 lines even sets
//     (Section 4.1);
//   - clflush does not touch the MEE cache — there is deliberately no flush
//     on the public access path;
//   - the engine is single-ported, so concurrent walks from different cores
//     serialize and contend.
package mee

import (
	"fmt"
	"math/rand/v2"

	"meecc/internal/cache"
	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

// HitLevel reports the deepest integrity-tree level that hit in the MEE
// cache during a walk — the quantity Figure 5 of the paper histograms.
type HitLevel int

const (
	// HitVersions: the versions line itself was cached; fastest path.
	HitVersions HitLevel = iota
	// HitL0..HitL2: the walk fetched lower levels from DRAM and first hit
	// the cache at this level.
	HitL0
	HitL1
	HitL2
	// HitRoot: nothing was cached; the walk went all the way to the on-die
	// root counters.
	HitRoot
)

func (h HitLevel) String() string {
	switch h {
	case HitVersions:
		return "versions-hit"
	case HitL0:
		return "level0-hit"
	case HitL1:
		return "level1-hit"
	case HitL2:
		return "level2-hit"
	case HitRoot:
		return "root-access"
	default:
		return fmt.Sprintf("HitLevel(%d)", int(h))
	}
}

// IntegrityError reports a failed MAC verification — either real tampering
// (a test flipping DRAM bits) or a replay.
type IntegrityError struct {
	Addr dram.Addr
	Kind itree.NodeKind
	What string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("mee: integrity violation on %s line %#x: %s", e.Kind, e.Addr, e.What)
}

// Config sets the MEE cache organization and the timing model. The defaults
// reproduce the organization the paper reverse-engineers and its published
// latencies.
type Config struct {
	// CacheSets/CacheWays: 128 sets (64 odd for versions, 64 even for
	// tags/levels) of 8 ways — the organization §4 reverse-engineers.
	CacheSets int
	CacheWays int
	// Policy is the replacement policy. The paper assumes "approximate
	// LRU"; we default to true LRU because it reproduces the paper's
	// phenomenology exactly — in the 9-line/8-way musical chairs of
	// Algorithm 2, a single forward pass evicts the spy's monitor line only
	// ~half the time (the eviction cascade can close on an already-visited
	// line), while the forward+backward two-phase pass makes the monitor
	// the oldest line by the backward miss and evicts it deterministically.
	// That is precisely the failure mode §5.3's two-phase design exists to
	// fix. Tree-PLRU is available for ablations; being only path-wise
	// recency-aware, it can lock into cycles that never evict the monitor.
	Policy cache.Policy

	// PipelineBase is the mean cost (cycles) of the MEE pipeline itself —
	// decryption, MAC checks, queueing inside the unit — added to every
	// protected access on top of the DRAM fetches.
	PipelineBase float64
	// LevelCheck is the extra verification cost per tree level fetched.
	LevelCheck float64
	// WriteExtra is added to protected writes (counter update, re-MAC).
	WriteExtra float64
	// PortOccupancy is how long one access occupies the engine's request
	// port. The MEE pipelines DRAM fetches of concurrent walks (those
	// contend at the banks instead), so only the crypto/check stage
	// serializes.
	PortOccupancy float64
	// JitterSigma is gaussian jitter on the pipeline cost.
	JitterSigma float64

	// RandomEvictProb, when positive, evicts one random MEE-cache line per
	// protected access with this probability — a noise-injection mitigation
	// evaluated in the extension experiments (§5.5 discussion).
	RandomEvictProb float64
}

// DefaultConfig returns the reverse-engineered organization (64 KB, 8-way,
// 128 sets — Section 4) with timing calibrated to Figure 5: ~480 cycles for
// a versions hit, ~+270 per additional tree level fetched.
func DefaultConfig(rng *rand.Rand) Config {
	_ = rng // accepted for symmetry with policies that need randomness
	return Config{
		CacheSets:     128,
		CacheWays:     8,
		Policy:        cache.NewLRU(),
		PipelineBase:  230,
		LevelCheck:    20,
		WriteExtra:    60,
		PortOccupancy: 120,
		JitterSigma:   8,
	}
}

// Stats counts MEE events.
type Stats struct {
	Reads      uint64
	Writes     uint64
	HitsAt     [5]uint64 // indexed by HitLevel
	Writebacks uint64
	Violations uint64
	StallCyc   sim.Cycles
}

// Engine is the MEE instance for one memory controller.
type Engine struct {
	cfg   Config
	geom  itree.Geometry
	crypt *itree.Crypto
	mem   *dram.DRAM
	cache *cache.Cache

	// bufs mirrors the current content of every tree line resident in the
	// MEE cache (DRAM may be stale for dirty lines). It is one contiguous
	// value slab indexed [set*ways+way] in parallel with the cache's line
	// storage: the per-walk lookup is an array index, dropping a line is
	// clearing its valid bit, and Fork is a single slab copy.
	bufs  []nodeBuf
	nBufs int // resident count, for maybeRandomEvict's capacity/empty checks
	// freeBufs tracks how deep the pointer-era recycling free list would be,
	// so the nodebuf alloc/recycled observability counters keep their exact
	// historical semantics now that slots are slab-resident.
	freeBufs int
	// dataMemo and nodeMemo cache the most recent crypto result per line:
	// DataMAC/DecryptLine are pure functions of (address, version,
	// ciphertext) and NodeMAC of (address, parent counter, counters), so a
	// matching entry replays the result without re-running AES. The memos
	// are host-side caches only — they never affect simulated timing or
	// state, are excluded from snapshots, and are dropped on Fork (each
	// fork rebuilds its own; sharing would race across goroutines). Tamper
	// detection is unaffected: a tampered line differs in the memo key and
	// recomputes.
	dataMemo map[dram.Addr]*dataMemoEntry
	nodeMemo map[dram.Addr]nodeMemoEntry
	// root holds the on-die SRAM root counters — always trusted, always
	// current.
	root []uint64
	// initialized tracks tree lines whose DRAM image has been materialized
	// with valid MACs (lazy boot-time initialization): one bit per PRM line.
	initialized []uint64

	port  sim.Resource
	stats Stats

	// Observability (nil when disabled): free-list churn counters, the
	// requester-latency histogram, and the hit-level counter track. Stats
	// fields are surfaced as deferred samples instead (see Observe).
	cBufAlloc   *obs.Counter
	cBufRecycle *obs.Counter
	hReadLat    *obs.Histogram
	tr          *obs.Tracer
	nHitLevel   obs.NameID
}

// nodeBuf is the decoded content of a cached tree line. addr is the line's
// DRAM address, kept here so resident lines can be enumerated from the
// dense buffer array alone (random eviction, cache flush). valid marks the
// slot occupied; the slot index is implied by position in the slab.
type nodeBuf struct {
	addr    dram.Addr
	kind    itree.NodeKind
	counter itree.CounterLine // for version/level lines
	tags    itree.TagLine     // for tag lines
	dirty   bool
	valid   bool
}

// dataMemoEntry is the memoized crypto result for one data line: the
// PD_Tag and plaintext of the given (version, ciphertext) pair.
type dataMemoEntry struct {
	version uint64
	ct      [itree.LineSize]byte
	mac     uint64
	plain   [itree.LineSize]byte
}

// nodeMemoEntry is the memoized embedded MAC of one counter line under the
// given parent counter and counter values.
type nodeMemoEntry struct {
	pc       uint64
	counters [itree.CountersPerLine]uint64
	mac      uint64
}

// nodeMAC computes (or replays) the embedded MAC of a counter line. Both
// verification and MAC production go through here, so a line written back
// and later reloaded verifies from the memo.
func (e *Engine) nodeMAC(addr dram.Addr, pc uint64, counters [itree.CountersPerLine]uint64) uint64 {
	if m, ok := e.nodeMemo[addr]; ok && m.pc == pc && m.counters == counters {
		return m.mac
	}
	mac := e.crypt.NodeMAC(addr, pc, counters)
	if e.nodeMemo == nil {
		e.nodeMemo = make(map[dram.Addr]nodeMemoEntry)
	}
	e.nodeMemo[addr] = nodeMemoEntry{pc: pc, counters: counters, mac: mac}
	return mac
}

// putDataMemo records the crypto result for a data line, reusing the
// existing entry's storage when present.
func (e *Engine) putDataMemo(addr dram.Addr, version uint64, ct [itree.LineSize]byte, mac uint64, plain [itree.LineSize]byte) {
	m := e.dataMemo[addr]
	if m == nil {
		if e.dataMemo == nil {
			e.dataMemo = make(map[dram.Addr]*dataMemoEntry)
		}
		m = &dataMemoEntry{}
		e.dataMemo[addr] = m
	}
	*m = dataMemoEntry{version: version, ct: ct, mac: mac, plain: plain}
}

// countInstall and countDrop keep the nodebuf churn counters bit-compatible
// with the pointer-era free list: an install recycles when a drop preceded
// it, and allocates otherwise.
func (e *Engine) countInstall() {
	if e.freeBufs > 0 {
		e.freeBufs--
		e.cBufRecycle.Inc()
		return
	}
	e.cBufAlloc.Inc()
}

func (e *Engine) countDrop() { e.freeBufs++ }

// New builds an MEE over the given geometry, crypto, and DRAM.
func New(cfg Config, geom itree.Geometry, crypt *itree.Crypto, mem *dram.DRAM) *Engine {
	if cfg.CacheSets%2 != 0 {
		panic("mee: cache sets must be even (odd/even split)")
	}
	return &Engine{
		cfg:         cfg,
		geom:        geom,
		crypt:       crypt,
		mem:         mem,
		cache:       cache.New("mee", cfg.CacheSets, cfg.CacheWays, cfg.Policy),
		bufs:        make([]nodeBuf, cfg.CacheSets*cfg.CacheWays),
		root:        make([]uint64, geom.RootCounters),
		initialized: make([]uint64, (geom.PRMSize/itree.LineSize+63)/64),
	}
}

// bufIdx maps a cache location to its slot in the dense buffer array.
func (e *Engine) bufIdx(set, way int) int { return set*e.cfg.CacheWays + way }

// initBit maps a PRM line address to its word and mask in the initialized
// bitset.
func (e *Engine) initBit(addr dram.Addr) (word int, mask uint64) {
	line := uint64(addr-e.geom.PRMBase) / itree.LineSize
	return int(line / 64), 1 << (line % 64)
}

// Fork returns an independent deep copy of the engine for platform forking:
// cache contents and replacement state, resident node buffers, root
// counters, init bitmap, port, and statistics all carry over. The copy gets
// its own crypto scratch (same keys); mem rebinds it to the fork's DRAM
// view; rng rebinds randomized replacement policies and must be the forked
// engine's stream (nil keeps the source policy's stream — only valid for
// frozen intermediate copies that never run). Observability is not carried
// over — attach via Observe if needed.
func (e *Engine) Fork(mem *dram.DRAM, rng *rand.Rand) *Engine {
	n := &Engine{
		cfg:         e.cfg,
		geom:        e.geom,
		crypt:       e.crypt.Clone(),
		mem:         mem,
		cache:       e.cache.Clone(rng),
		bufs:        make([]nodeBuf, len(e.bufs)),
		nBufs:       e.nBufs,
		root:        make([]uint64, len(e.root)),
		initialized: make([]uint64, len(e.initialized)),
		port:        e.port,
		stats:       e.stats,
	}
	copy(n.bufs, e.bufs) // value slab: one memcpy clones every resident line
	copy(n.root, e.root)
	copy(n.initialized, e.initialized)
	return n
}

// Cache exposes the MEE cache for statistics and white-box tests.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Observe attaches an observer. The accumulated Stats (reads, writes,
// per-level hits, writebacks, violations, stall cycles) become deferred
// samples evaluated at snapshot time, so the walk hot path gains only the
// nil-checked free-list counters and one histogram observation per access.
// With a tracer attached, every data access also emits a sample on the
// "mee.hit_level" counter track — the per-access signal Figure 5 histograms.
// Safe to call with nil.
func (e *Engine) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	o.Sample("mee.reads", obs.Semantic, func() uint64 { return e.stats.Reads })
	o.Sample("mee.writes", obs.Semantic, func() uint64 { return e.stats.Writes })
	o.Sample("mee.writebacks", obs.Semantic, func() uint64 { return e.stats.Writebacks })
	o.Sample("mee.violations", obs.Semantic, func() uint64 { return e.stats.Violations })
	o.Sample("mee.stall_cycles", obs.Semantic, func() uint64 { return uint64(e.stats.StallCyc) })
	for h := HitVersions; h <= HitRoot; h++ {
		h := h
		o.Sample("mee.hits."+h.String(), obs.Semantic, func() uint64 { return e.stats.HitsAt[h] })
	}
	e.cBufAlloc = o.Counter("mee.nodebuf.alloc")
	e.cBufRecycle = o.Counter("mee.nodebuf.recycled")
	e.hReadLat = o.Histogram("mee.read_latency")
	e.cache.Observe(o, "mee")
	e.tr = o.Tracer()
	e.nHitLevel = e.tr.Name("mee.hit_level")
}

// Geometry returns the integrity-tree geometry.
func (e *Engine) Geometry() *itree.Geometry { return &e.geom }

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the statistics.
func (e *Engine) ResetStats() { e.stats = Stats{}; e.cache.ResetStats() }

// CacheSetFor reports the MEE cache set a tree line maps to. Versions lines
// live in odd sets; PD_Tag lines and the L0..L2 counter lines live in even
// sets (§4.1 of the paper reverse-engineers the versions/PD_Tag split; the
// upper levels' placement is not published). Keeping the upper levels out of
// the versions sets is required for Algorithm 1 to discover exactly 8 ways,
// as the paper does: if L0 lines shared versions sets, every candidate pass
// would carry one extra odd-set fill and cap index sets at 7. The residual
// "versions data eviction caused by other levels" the paper mentions shows
// up in our model through PD_Tag pressure and PLRU dynamics instead.
func (e *Engine) CacheSetFor(addr dram.Addr) int {
	lineIdx := uint64(addr) / itree.LineSize
	half := uint64(e.cfg.CacheSets / 2)
	if e.geom.Classify(addr) == itree.KindVersion {
		return int(2*(lineIdx%half)) + 1
	}
	return int(2 * (lineIdx % half))
}

func (e *Engine) cacheTag(addr dram.Addr) cache.Tag {
	return cache.Tag(uint64(addr) / itree.LineSize)
}

// walker accumulates latency for one protected access. In postedMode (used
// for writebacks and background flushes) DRAM traffic occupies banks but
// adds no requester latency, and hit-level accounting is suppressed.
type walker struct {
	e          *Engine
	rng        *rand.Rand
	now        sim.Cycles // start time of the access
	lat        sim.Cycles // accumulated serial latency
	hit        HitLevel   // deepest level that hit (set once, by the first hit)
	set        bool
	postedMode bool
}

func (w *walker) dram(addr dram.Addr, write bool) {
	if w.postedMode {
		w.posted(addr, write)
		return
	}
	w.lat += w.e.mem.Access(w.now+w.lat, w.rng, addr, write)
}

// posted performs a DRAM access that occupies the bank but does not delay
// the requester (posted writes / background writebacks).
func (w *walker) posted(addr dram.Addr, write bool) {
	_ = w.e.mem.Access(w.now+w.lat, w.rng, addr, write)
}

func (w *walker) markHit(h HitLevel) {
	if w.postedMode || w.set {
		return
	}
	w.hit = h
	w.set = true
}

// ReadData performs a protected-region read of the 64-byte line containing
// addr, starting at cycle now. It returns the decrypted line, the total
// latency the requesting core observes (including MEE port contention), and
// the hit level for instrumentation.
func (e *Engine) ReadData(now sim.Cycles, rng *rand.Rand, addr dram.Addr) ([itree.LineSize]byte, sim.Cycles, HitLevel, error) {
	addr &^= itree.LineSize - 1
	if !e.geom.ContainsData(addr) {
		panic(fmt.Sprintf("mee: ReadData at %#x outside protected region", addr))
	}
	e.stats.Reads++
	w := &walker{e: e, rng: rng, now: now}
	e.maybeRandomEvict(w)

	// Data ciphertext fetch from DRAM (the MEE never caches data lines).
	w.dram(addr, false)
	ct := e.mem.ReadLine(addr)

	// Versions walk: stops at the first MEE-cache hit.
	vline, err := e.loadVersions(w, addr)
	if err != nil {
		return [itree.LineSize]byte{}, w.lat, w.hit, err
	}
	slot := e.geom.VersionSlot(addr)
	version := vline.counter.Counters[slot]

	// PD_Tag check. The tag fetch overlaps the data fetch in the real
	// pipeline, so it adds no serial latency, but it does occupy a DRAM
	// bank on a miss and consumes even-set cache capacity.
	tline, err := e.loadTags(w, addr)
	if err != nil {
		return [itree.LineSize]byte{}, w.lat, w.hit, err
	}
	m := e.dataMemo[addr]
	memoHit := m != nil && m.version == version && m.ct == ct
	var want uint64
	if memoHit {
		want = m.mac
	} else {
		want = e.crypt.DataMAC(addr, version, ct)
	}
	if tline.tags.Tags[slot] != want {
		e.stats.Violations++
		return [itree.LineSize]byte{}, w.lat, w.hit, &IntegrityError{Addr: addr, Kind: itree.KindData, What: "PD_Tag mismatch"}
	}
	var plain [itree.LineSize]byte
	if memoHit {
		plain = m.plain
	} else {
		plain = e.crypt.DecryptLine(addr, version, ct)
		e.putDataMemo(addr, version, ct, want, plain)
	}

	// MEE pipeline cost and port serialization (crypto stage only; DRAM
	// fetches of concurrent walks overlap and contend at the banks).
	w.lat += sim.Gauss(rng, e.cfg.PipelineBase, e.cfg.JitterSigma)
	stall := e.port.Acquire(now, e.portOccupancy())
	e.stats.StallCyc += stall
	e.stats.HitsAt[w.hit]++
	e.hReadLat.Observe(int64(stall + w.lat))
	if e.tr != nil {
		e.tr.Count(e.nHitLevel, int64(now), int64(w.hit))
	}
	return plain, stall + w.lat, w.hit, nil
}

// portOccupancy bounds how long one request holds the MEE port.
func (e *Engine) portOccupancy() sim.Cycles {
	if e.cfg.PortOccupancy <= 0 {
		return 1
	}
	return sim.Cycles(e.cfg.PortOccupancy)
}

// WriteData performs a protected-region write of the full line at addr:
// version increment, re-encryption, PD_Tag recompute. The new ciphertext
// write to DRAM is posted.
func (e *Engine) WriteData(now sim.Cycles, rng *rand.Rand, addr dram.Addr, plain [itree.LineSize]byte) (sim.Cycles, HitLevel, error) {
	addr &^= itree.LineSize - 1
	if !e.geom.ContainsData(addr) {
		panic(fmt.Sprintf("mee: WriteData at %#x outside protected region", addr))
	}
	e.stats.Writes++
	w := &walker{e: e, rng: rng, now: now}
	e.maybeRandomEvict(w)

	vline, err := e.loadVersions(w, addr)
	if err != nil {
		return w.lat, w.hit, err
	}
	slot := e.geom.VersionSlot(addr)
	if vline.counter.Counters[slot] >= itree.CounterMax {
		return w.lat, w.hit, fmt.Errorf("mee: version counter overflow at %#x (re-key required)", addr)
	}
	vline.counter.Counters[slot]++
	vline.dirty = true
	version := vline.counter.Counters[slot]

	ct := e.crypt.EncryptLine(addr, version, plain)
	e.mem.WriteLine(addr, ct)
	w.posted(addr, true)

	tline, err := e.loadTags(w, addr)
	if err != nil {
		return w.lat, w.hit, err
	}
	mac := e.crypt.DataMAC(addr, version, ct)
	tline.tags.Tags[slot] = mac
	tline.dirty = true
	e.putDataMemo(addr, version, ct, mac, plain)

	w.lat += sim.Gauss(rng, e.cfg.PipelineBase+e.cfg.WriteExtra, e.cfg.JitterSigma)
	stall := e.port.Acquire(now, e.portOccupancy())
	e.stats.StallCyc += stall
	e.stats.HitsAt[w.hit]++
	if e.tr != nil {
		e.tr.Count(e.nHitLevel, int64(now), int64(w.hit))
	}
	return stall + w.lat, w.hit, nil
}
