package mee

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/sim"
)

// loadVersions returns the (cached or freshly verified) versions line
// covering dataAddr. On a cache hit the walk terminates here — the line was
// verified when it was brought in, which is the property the whole covert
// channel rests on. On a miss the line is fetched from DRAM and verified
// against its covering L0 counter, recursing up the tree.
func (e *Engine) loadVersions(w *walker, dataAddr dram.Addr) (*nodeBuf, error) {
	vaddr := e.geom.VersionLineAddr(dataAddr)
	set := e.CacheSetFor(vaddr)
	if way, hit := e.cache.LookupWay(set, e.cacheTag(vaddr)); hit {
		w.markHit(HitVersions)
		return &e.bufs[e.bufIdx(set, way)], nil
	}
	// Miss: fetch the line from DRAM.
	w.dram(vaddr, false)
	e.ensureInit(vaddr)
	cl := itree.DecodeCounterLine(e.mem.ReadLine(vaddr))

	// Obtain the covering L0 counter (may recurse further up).
	vi := e.geom.VersionLineIndex(dataAddr)
	l0, slot := e.geom.ParentOfVersion(vi)
	pc, err := e.loadLevelCounter(w, 0, l0, slot)
	if err != nil {
		return nil, err
	}
	if cl.MAC != e.nodeMAC(vaddr, pc, cl.Counters) {
		e.stats.Violations++
		return nil, &IntegrityError{Addr: vaddr, Kind: itree.KindVersion, What: "embedded MAC mismatch"}
	}
	w.check()
	return e.install(w, vaddr, set, nodeBuf{kind: itree.KindVersion, counter: cl}), nil
}

// loadLevelCounter returns the current value of counter `slot` in the
// level-`level` line with index idx, fetching and verifying the line if it
// is not in the MEE cache. It records the walk's terminal hit level.
func (e *Engine) loadLevelCounter(w *walker, level int, idx uint64, slot int) (uint64, error) {
	addr := e.geom.LevelLineAddr(level, idx)
	set := e.CacheSetFor(addr)
	if way, hit := e.cache.LookupWay(set, e.cacheTag(addr)); hit {
		w.markHit(HitL0 + HitLevel(level))
		return e.bufs[e.bufIdx(set, way)].counter.Counters[slot], nil
	}
	w.dram(addr, false)
	e.ensureInit(addr)
	cl := itree.DecodeCounterLine(e.mem.ReadLine(addr))

	pIdx, pSlot, isRoot := e.geom.ParentOfLevel(level, idx)
	var pc uint64
	if isRoot {
		w.markHit(HitRoot)
		pc = e.root[pIdx]
	} else {
		var err error
		pc, err = e.loadLevelCounter(w, level+1, pIdx, pSlot)
		if err != nil {
			return 0, err
		}
	}
	if cl.MAC != e.nodeMAC(addr, pc, cl.Counters) {
		e.stats.Violations++
		return 0, &IntegrityError{Addr: addr, Kind: itree.NodeKind(int(itree.KindLevel0) + level), What: "embedded MAC mismatch"}
	}
	w.check()
	e.install(w, addr, set, nodeBuf{kind: itree.NodeKind(int(itree.KindLevel0) + level), counter: cl})
	return cl.Counters[slot], nil
}

// loadTags returns the PD_Tag line covering dataAddr. Tag fetches overlap
// the data fetch in the real pipeline, so a miss occupies a DRAM bank but
// adds no serial latency and does not define the walk's hit level.
func (e *Engine) loadTags(w *walker, dataAddr dram.Addr) (*nodeBuf, error) {
	taddr := e.geom.TagLineAddr(dataAddr)
	set := e.CacheSetFor(taddr)
	if way, hit := e.cache.LookupWay(set, e.cacheTag(taddr)); hit {
		return &e.bufs[e.bufIdx(set, way)], nil
	}
	w.posted(taddr, false)
	e.ensureInit(taddr)
	nb := nodeBuf{kind: itree.KindTag, tags: itree.DecodeTagLine(e.mem.ReadLine(taddr))}
	return e.install(w, taddr, set, nb), nil
}

// check charges the per-level verification cost to the requester.
func (w *walker) check() {
	if w.postedMode {
		return
	}
	w.lat += sim.Cycles(w.e.cfg.LevelCheck)
}

// install fills a verified line into the MEE cache, handling the eviction
// (and possible dirty writeback) of the displaced line, and returns the
// slot's buffer. The new line is written into its slot before the victim's
// writeback runs: the writeback may recurse into further loads that read or
// evict other slots and must see a consistent slab.
func (e *Engine) install(w *walker, addr dram.Addr, set int, nb nodeBuf) *nodeBuf {
	e.countInstall()
	way, evicted := e.cache.InsertWay(set, e.cacheTag(addr), nb.dirty)
	idx := e.bufIdx(set, way)
	ev := e.bufs[idx] // victim's buffer lives in the slot we fill; copy it out
	nb.addr, nb.valid = addr, true
	e.bufs[idx] = nb
	e.nBufs++
	if evicted.Valid {
		e.nBufs--
		if ev.valid {
			if ev.dirty {
				evAddr := dram.Addr(uint64(evicted.Tag) * itree.LineSize)
				e.writeback(w, evAddr, &ev)
			}
			e.countDrop()
		}
	}
	return &e.bufs[idx]
}

// writeback flushes a dirty tree line to DRAM. Version and level lines must
// first increment their covering counter (freshness) and re-MAC; tag lines
// are self-authenticating and are written out as-is. All DRAM traffic here
// is posted: it occupies banks but does not delay the requester.
func (e *Engine) writeback(w *walker, addr dram.Addr, nb *nodeBuf) {
	e.stats.Writebacks++
	switch nb.kind {
	case itree.KindTag:
		raw := nb.tags.Encode()
		e.mem.WriteLine(addr, raw)
		w.posted(addr, true)
		return
	case itree.KindVersion:
		vi := uint64(addr-e.geom.VersBase) / itree.LineSize
		l0, slot := e.geom.ParentOfVersion(vi)
		pc := e.bumpLevelCounter(w, 0, l0, slot)
		nb.counter.MAC = e.nodeMAC(addr, pc, nb.counter.Counters)
	case itree.KindLevel0, itree.KindLevel1, itree.KindLevel2:
		level := int(nb.kind - itree.KindLevel0)
		idx := uint64(addr-e.geom.LevelBase[level]) / itree.LineSize
		pIdx, pSlot, isRoot := e.geom.ParentOfLevel(level, idx)
		var pc uint64
		if isRoot {
			e.root[pIdx]++
			pc = e.root[pIdx]
		} else {
			pc = e.bumpLevelCounter(w, level+1, pIdx, pSlot)
		}
		nb.counter.MAC = e.nodeMAC(addr, pc, nb.counter.Counters)
	default:
		panic(fmt.Sprintf("mee: writeback of unexpected node kind %v", nb.kind))
	}
	raw := nb.counter.Encode()
	e.mem.WriteLine(addr, raw)
	w.posted(addr, true)
}

// bumpLevelCounter loads (posted) the covering counter line, increments the
// child's slot, marks it dirty, and returns the new counter value.
func (e *Engine) bumpLevelCounter(w *walker, level int, idx uint64, slot int) uint64 {
	prevPosted := w.postedMode
	w.postedMode = true
	pc, err := e.loadLevelCounter(w, level, idx, slot)
	w.postedMode = prevPosted
	if err != nil {
		// A writeback that trips an integrity violation means the tree
		// itself is corrupt; surface loudly (tamper tests never write).
		panic(fmt.Sprintf("mee: integrity violation during writeback: %v", err))
	}
	if pc >= itree.CounterMax {
		panic(fmt.Sprintf("mee: level %d counter overflow (re-key required)", level))
	}
	addr := e.geom.LevelLineAddr(level, idx)
	set := e.CacheSetFor(addr)
	way, ok := e.cache.WayOf(set, e.cacheTag(addr))
	if !ok {
		panic(fmt.Sprintf("mee: counter line %#x vanished during writeback", addr))
	}
	nb := &e.bufs[e.bufIdx(set, way)]
	nb.counter.Counters[slot] = pc + 1
	nb.dirty = true
	e.cache.MarkDirty(set, e.cacheTag(addr))
	return pc + 1
}

// residentBuf returns the node buffer currently holding addr, or nil when
// the line is not resident. It does not touch replacement state or stats.
func (e *Engine) residentBuf(addr dram.Addr) *nodeBuf {
	set := e.CacheSetFor(addr)
	way, ok := e.cache.WayOf(set, e.cacheTag(addr))
	if !ok {
		return nil
	}
	if nb := &e.bufs[e.bufIdx(set, way)]; nb.valid {
		return nb
	}
	return nil
}

// maybeRandomEvict implements the noise-injection mitigation: with
// probability RandomEvictProb, one randomly chosen resident tree line is
// evicted (written back if dirty) before the access proceeds.
func (e *Engine) maybeRandomEvict(w *walker) {
	p := e.cfg.RandomEvictProb
	if p <= 0 || e.nBufs == 0 || w.rng.Float64() >= p {
		return
	}
	// Enumerate residents in ascending address order so the victim draw is
	// independent of storage layout (the map this replaced was sorted too).
	addrs := make([]dram.Addr, 0, e.nBufs)
	for i := range e.bufs {
		if e.bufs[i].valid {
			addrs = append(addrs, e.bufs[i].addr)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	victim := addrs[w.rng.IntN(len(addrs))]
	set := e.CacheSetFor(victim)
	way, _ := e.cache.InvalidateWay(set, e.cacheTag(victim))
	idx := e.bufIdx(set, way)
	nb := e.bufs[idx] // copy out before clearing; the writeback may recurse
	e.bufs[idx] = nodeBuf{}
	e.nBufs--
	if nb.dirty {
		prev := w.postedMode
		w.postedMode = true
		e.writeback(w, victim, &nb)
		w.postedMode = prev
	}
	e.countDrop()
}

// ensureInit materializes the boot-time image of a tree line in DRAM:
// all-zero counters with a valid MAC (covering counters are provably zero
// before a line's first writeback), or for tag lines the MACs of the
// all-zero ciphertext at version zero.
func (e *Engine) ensureInit(addr dram.Addr) {
	word, mask := e.initBit(addr)
	if e.initialized[word]&mask != 0 {
		return
	}
	e.initialized[word] |= mask
	kind := e.geom.Classify(addr)
	switch kind {
	case itree.KindVersion, itree.KindLevel0, itree.KindLevel1, itree.KindLevel2:
		var cl itree.CounterLine
		cl.MAC = e.nodeMAC(addr, 0, cl.Counters)
		raw := cl.Encode()
		e.mem.WriteLine(addr, raw)
	case itree.KindTag:
		var tl itree.TagLine
		vi := uint64(addr-e.geom.TagBase) / itree.LineSize
		var zero [itree.LineSize]byte
		for i := 0; i < itree.CountersPerLine; i++ {
			dataAddr := e.geom.DataBase + dram.Addr(vi*itree.DataPerVersionLine+uint64(i)*itree.LineSize)
			tl.Tags[i] = e.crypt.DataMAC(dataAddr, 0, zero)
		}
		raw := tl.Encode()
		e.mem.WriteLine(addr, raw)
	default:
		panic(fmt.Sprintf("mee: ensureInit on non-tree address %#x (%v)", addr, kind))
	}
}

// FlushCache writes back every dirty line and empties the MEE cache —
// a simulation-only helper used to start experiments from a cold MEE state
// (no architectural equivalent exists; clflush cannot reach the MEE cache,
// per §3 of the paper).
func (e *Engine) FlushCache(now sim.Cycles, rng *rand.Rand) {
	w := &walker{e: e, rng: rng, now: now, postedMode: true}
	// Writing back a dirty version/level line dirties its parent, so sweep
	// in ascending address order (parents live above children in the PRM)
	// until nothing dirty remains.
	for {
		addrs := make([]dram.Addr, 0, e.nBufs)
		for i := range e.bufs {
			if e.bufs[i].valid && e.bufs[i].dirty {
				addrs = append(addrs, e.bufs[i].addr)
			}
		}
		if len(addrs) == 0 {
			break
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, addr := range addrs {
			nb := e.residentBuf(addr)
			if nb == nil || !nb.dirty {
				continue // already handled by a cascaded eviction
			}
			e.writeback(w, addr, nb)
			nb.dirty = false
		}
	}
	e.cache.FlushAll()
	for i := range e.bufs {
		if e.bufs[i].valid {
			e.countDrop()
			e.bufs[i] = nodeBuf{}
		}
	}
	e.nBufs = 0
}
