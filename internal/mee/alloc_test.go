package mee

import (
	"math/rand/v2"
	"testing"

	"meecc/internal/dram"
	"meecc/internal/itree"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

// TestWarmReadDataAllocFree pins the zero-allocation property of the hot
// probe path: once a data line's versions and tag lines are MEE-cache
// resident, ReadData must not touch the heap. The covert-channel benchmarks
// execute this path millions of times per simulated transmission.
func TestWarmReadDataAllocFree(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 22))
	mem := dram.New(dram.DefaultConfig())
	geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(DefaultConfig(rng), geom, itree.NewCrypto([16]byte{1, 2, 3}), mem)
	addr := geom.DataBase
	var now sim.Cycles

	read := func() {
		now += 100000
		if _, _, _, err := eng.ReadData(now, rng, addr); err != nil {
			t.Fatalf("ReadData: %v", err)
		}
	}
	read() // cold: walks and fills the MEE cache
	read() // warm sanity

	if allocs := testing.AllocsPerRun(200, read); allocs != 0 {
		t.Fatalf("warm ReadData allocated %.1f times per op, want 0", allocs)
	}
}

// TestWarmReadDataAllocFreeWithMetrics re-pins the warm-path property with
// live instrumentation: counters increment and the latency histogram observes
// on every read, and none of it may allocate. (The tracer is exercised by the
// obs package's own alloc tests; attaching one here would also pass, but the
// metrics registry is the part every -metrics run enables.)
func TestWarmReadDataAllocFreeWithMetrics(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	mem := dram.New(dram.DefaultConfig())
	geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(DefaultConfig(rng), geom, itree.NewCrypto([16]byte{7, 8, 9}), mem)
	o := obs.NewObserver().WithTracer(1 << 10)
	eng.Observe(o)
	addr := geom.DataBase
	var now sim.Cycles

	read := func() {
		now += 100000
		if _, _, _, err := eng.ReadData(now, rng, addr); err != nil {
			t.Fatalf("ReadData: %v", err)
		}
	}
	read()
	read()
	if allocs := testing.AllocsPerRun(200, read); allocs != 0 {
		t.Fatalf("instrumented warm ReadData allocated %.1f times per op, want 0", allocs)
	}
	snap := o.Snapshot()
	if snap.Counters["mee.reads"] == 0 {
		t.Error("mee.reads sample missing from snapshot")
	}
	if snap.Histograms["mee.read_latency"].Count == 0 {
		t.Error("read-latency histogram never observed")
	}
}

// TestForkAllocsIndependentOfResidency pins the arena-backed Fork: cloning
// the engine is a fixed set of slab allocations plus memcpys, so the
// allocation count must not scale with how many node lines are resident.
func TestForkAllocsIndependentOfResidency(t *testing.T) {
	forkAllocs := func(lines int) float64 {
		rng := rand.New(rand.NewPCG(77, 88))
		mem := dram.New(dram.DefaultConfig())
		geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(DefaultConfig(rng), geom, itree.NewCrypto([16]byte{9, 9, 9}), mem)
		var now sim.Cycles
		for i := 0; i < lines; i++ {
			now += 100000
			addr := geom.DataBase + dram.Addr(uint64(i)*itree.DataPerVersionLine)
			if _, _, _, err := eng.ReadData(now, rng, addr); err != nil {
				t.Fatalf("ReadData: %v", err)
			}
		}
		return testing.AllocsPerRun(20, func() { eng.Fork(nil, nil) })
	}
	few, many := forkAllocs(2), forkAllocs(256)
	if few != many {
		t.Fatalf("Fork allocations scale with residency: %.1f at 2 lines vs %.1f at 256", few, many)
	}
}

// TestSteadyStateReadDataAllocFree exercises the miss path over a working
// set larger than the MEE cache: after a warm-up pass that grows the nodeBuf
// pool to its high-water mark, continued conflict misses (evict + refill)
// must recycle buffers instead of allocating.
func TestSteadyStateReadDataAllocFree(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 44))
	mem := dram.New(dram.DefaultConfig())
	geom, err := itree.NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(DefaultConfig(rng), geom, itree.NewCrypto([16]byte{4, 5, 6}), mem)
	var now sim.Cycles

	// Stride by the data span of one versions line so every read lands on a
	// distinct versions line, forcing steady MEE-cache conflict churn.
	const lines = 4096
	read := func(i int) {
		now += 100000
		addr := geom.DataBase + dram.Addr(uint64(i)*itree.DataPerVersionLine)
		if _, _, _, err := eng.ReadData(now, rng, addr); err != nil {
			t.Fatalf("ReadData: %v", err)
		}
	}
	for i := 0; i < lines; i++ { // warm-up: pool reaches high-water mark
		read(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		read(i % lines)
		i++
	})
	// ensureInit's one-time per-line bookkeeping is done after warm-up, so
	// the steady state must be fully recycled.
	if allocs != 0 {
		t.Fatalf("steady-state ReadData allocated %.1f times per op, want 0", allocs)
	}
}
