// Package dram models main memory: a sparse byte-addressable backing store
// plus a bank/row-buffer timing model with seeded jitter. The memory
// controller's queueing behaviour is represented by per-bank busy-until
// resources, so concurrent actors experience realistic contention.
package dram

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"meecc/internal/sim"
)

// Addr is a physical byte address.
type Addr uint64

// LineSize is the cache-line granularity used throughout the simulator.
const LineSize = 64

// pageBytes is the allocation granularity of the sparse backing store.
const pageBytes = 4096

// chunkPages pages form one directory chunk (2 MB of address space). The
// backing store is a two-level structure — a dense chunk directory over
// lazily materialized chunks of page pointers — so the per-access page
// lookup is two array indexes instead of a map probe, and snapshots can
// share untouched chunks between forks copy-on-write.
const (
	chunkPages = 512
	chunkBytes = chunkPages * pageBytes
)

// generation tags implement copy-on-write ownership: a view may write a
// chunk or page in place only when its tag matches the view's own
// generation; anything older is shared with a snapshot and must be cloned
// first. Tags only gate cloning — they never influence simulated behaviour —
// so the process-global atomic does not perturb determinism.
var generations atomic.Uint64

func nextGeneration() uint64 { return generations.Add(1) }

type page struct {
	gen  uint64
	data [pageBytes]byte
}

type chunk struct {
	gen   uint64
	pages [chunkPages]*page
}

func (c *chunk) clone(gen uint64) *chunk {
	n := &chunk{gen: gen}
	n.pages = c.pages
	return n
}

// Config describes DRAM geometry and timing. All latencies are in CPU
// cycles as seen from the core (they fold in the on-chip traversal after an
// LLC miss, which is why they are larger than raw DRAM timings).
type Config struct {
	Size        uint64  // total physical bytes
	Banks       int     // number of independent banks
	RowBytes    uint64  // row-buffer size per bank
	RowHitLat   float64 // mean cycles for an open-row access
	RowMissLat  float64 // mean cycles for a row conflict/closed-row access
	JitterSigma float64 // gaussian latency jitter (cycles)
	WriteExtra  float64 // additional mean cycles for writes

	// ClosedPage selects a closed-page controller policy: rows are
	// precharged after every access, so every access pays the activation
	// (RowMissLat) but never a conflict. Open-page (default) keeps rows
	// open and wins under spatial locality.
	ClosedPage bool
	// RefreshInterval, when positive, stalls a bank for RefreshPenalty
	// cycles once per interval (per bank, staggered) — the periodic
	// all-bank refresh of real DRAM and a natural source of rare latency
	// outliers. Zero disables refresh modeling.
	RefreshInterval float64
	RefreshPenalty  float64
}

// DefaultConfig mirrors the paper's testbed scale: 32 GB of DRAM behind a
// Skylake-class memory controller, calibrated so an independent cache-line
// read costs ~250 cycles end to end.
func DefaultConfig() Config {
	return Config{
		Size:        32 << 30,
		Banks:       16,
		RowBytes:    8192,
		RowHitLat:   215,
		RowMissLat:  265,
		JitterSigma: 10,
		WriteExtra:  10,
	}
}

// Stats counts DRAM events.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	Refreshes uint64
	StallCyc  sim.Cycles
}

// DRAM is the main-memory model. Not safe for concurrent use (the simulation
// engine serializes actors).
type DRAM struct {
	cfg         Config
	dir         []*chunk // two-level page directory, chunk per 2 MB
	gen         uint64   // COW ownership generation of this view
	allocated   int      // pages materialized by this view and its ancestry
	openRow     []int64  // per-bank open row, -1 = closed
	banks       []sim.Resource
	refreshedAt []int64 // per-bank refresh epoch counter
	stats       Stats
}

// New builds a DRAM from cfg, validating geometry.
func New(cfg Config) *DRAM {
	if cfg.Size == 0 || cfg.Banks <= 0 || cfg.RowBytes == 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	d := &DRAM{
		cfg:         cfg,
		dir:         make([]*chunk, (cfg.Size+chunkBytes-1)/chunkBytes),
		gen:         nextGeneration(),
		openRow:     make([]int64, cfg.Banks),
		banks:       make([]sim.Resource, cfg.Banks),
		refreshedAt: make([]int64, cfg.Banks),
	}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

// Snapshot freezes the current memory image and timing state. The receiver
// stays usable: it is flipped to a fresh generation so later writes clone
// shared pages instead of mutating the frozen image. Snapshots are
// immutable and safe to Fork from multiple goroutines.
type Snapshot struct {
	cfg         Config
	dir         []*chunk
	allocated   int
	openRow     []int64
	banks       []sim.Resource
	refreshedAt []int64
	stats       Stats
}

// Snapshot captures the DRAM for later forking; see Snapshot's doc.
func (d *DRAM) Snapshot() *Snapshot {
	s := &Snapshot{
		cfg:         d.cfg,
		dir:         make([]*chunk, len(d.dir)),
		allocated:   d.allocated,
		openRow:     make([]int64, len(d.openRow)),
		banks:       make([]sim.Resource, len(d.banks)),
		refreshedAt: make([]int64, len(d.refreshedAt)),
		stats:       d.stats,
	}
	copy(s.dir, d.dir)
	copy(s.openRow, d.openRow)
	copy(s.banks, d.banks)
	copy(s.refreshedAt, d.refreshedAt)
	// Everything reachable from s.dir is now shared: move the parent to a
	// new generation so it copy-on-writes against the frozen image too.
	d.gen = nextGeneration()
	return s
}

// Fork builds an independent DRAM view over the snapshot. Untouched pages
// are shared with the snapshot; the first write to a page clones it. Forks
// of one snapshot may be created and run concurrently (each fork itself is
// still single-threaded, like DRAM).
func (s *Snapshot) Fork() *DRAM {
	d := &DRAM{
		cfg:         s.cfg,
		dir:         make([]*chunk, len(s.dir)),
		gen:         nextGeneration(),
		allocated:   s.allocated,
		openRow:     make([]int64, len(s.openRow)),
		banks:       make([]sim.Resource, len(s.banks)),
		refreshedAt: make([]int64, len(s.refreshedAt)),
		stats:       s.stats,
	}
	copy(d.dir, s.dir)
	copy(d.openRow, s.openRow)
	copy(d.banks, s.banks)
	copy(d.refreshedAt, s.refreshedAt)
	return d
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// Size returns the total physical capacity in bytes.
func (d *DRAM) Size() uint64 { return d.cfg.Size }

// bankAndRow maps an address onto its bank and row (row interleaving across
// banks at row granularity).
func (d *DRAM) bankAndRow(addr Addr) (bank int, row int64) {
	rowIdx := uint64(addr) / d.cfg.RowBytes
	return int(rowIdx % uint64(d.cfg.Banks)), int64(rowIdx / uint64(d.cfg.Banks))
}

// Access performs the timing side of one line-granularity access beginning
// at cycle now, updating bank/row state, and returns the total latency the
// requester observes (queueing stall + service time + jitter).
func (d *DRAM) Access(now sim.Cycles, rng *rand.Rand, addr Addr, write bool) sim.Cycles {
	if uint64(addr) >= d.cfg.Size {
		panic(fmt.Sprintf("dram: access at %#x beyond capacity %#x", addr, d.cfg.Size))
	}
	bank, row := d.bankAndRow(addr)
	var mean float64
	switch {
	case d.cfg.ClosedPage:
		mean = d.cfg.RowMissLat
		d.stats.RowMisses++
	case d.openRow[bank] == row:
		mean = d.cfg.RowHitLat
		d.stats.RowHits++
	default:
		mean = d.cfg.RowMissLat
		d.openRow[bank] = row
		d.stats.RowMisses++
	}
	if write {
		mean += d.cfg.WriteExtra
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	service := sim.Gauss(rng, mean, d.cfg.JitterSigma)
	// Periodic refresh: once per interval the bank is unavailable for the
	// refresh penalty before servicing (banks staggered by index).
	if d.cfg.RefreshInterval > 0 {
		epoch := (int64(now) + int64(float64(bank)/float64(d.cfg.Banks)*d.cfg.RefreshInterval)) /
			int64(d.cfg.RefreshInterval)
		if epoch > d.refreshedAt[bank] {
			d.refreshedAt[bank] = epoch
			service += sim.Cycles(d.cfg.RefreshPenalty)
			d.stats.Refreshes++
		}
	}
	stall := d.banks[bank].Acquire(now, service)
	d.stats.StallCyc += stall
	return stall + service
}

// pageFor returns the backing page containing addr, materializing it on
// demand (reads of untouched memory allocate a zero page, matching the
// original sparse store so footprint accounting is unchanged). With write
// set, the returned page is private to this view: pages shared with a
// snapshot are cloned first.
func (d *DRAM) pageFor(addr Addr, write bool) (*page, uint64) {
	base := addr &^ (pageBytes - 1)
	ci := uint64(base) / chunkBytes
	pi := (uint64(base) % chunkBytes) / pageBytes
	ch := d.dir[ci]
	if ch == nil {
		ch = &chunk{gen: d.gen}
		d.dir[ci] = ch
	}
	p := ch.pages[pi]
	if p == nil {
		if ch.gen != d.gen {
			ch = ch.clone(d.gen)
			d.dir[ci] = ch
		}
		p = &page{gen: d.gen}
		ch.pages[pi] = p
		d.allocated++
		return p, uint64(addr - base)
	}
	if write && p.gen != d.gen {
		if ch.gen != d.gen {
			ch = ch.clone(d.gen)
			d.dir[ci] = ch
		}
		np := &page{gen: d.gen, data: p.data}
		ch.pages[pi] = np
		p = np
	}
	return p, uint64(addr - base)
}

// ReadBytes copies len(buf) bytes starting at addr into buf. Unwritten
// memory reads as zero.
func (d *DRAM) ReadBytes(addr Addr, buf []byte) {
	if uint64(addr)+uint64(len(buf)) > d.cfg.Size {
		panic(fmt.Sprintf("dram: read [%#x,+%d) beyond capacity", addr, len(buf)))
	}
	for n := 0; n < len(buf); {
		p, off := d.pageFor(addr+Addr(n), false)
		c := copy(buf[n:], p.data[off:])
		n += c
	}
}

// WriteBytes stores data at addr.
func (d *DRAM) WriteBytes(addr Addr, data []byte) {
	if uint64(addr)+uint64(len(data)) > d.cfg.Size {
		panic(fmt.Sprintf("dram: write [%#x,+%d) beyond capacity", addr, len(data)))
	}
	for n := 0; n < len(data); {
		p, off := d.pageFor(addr+Addr(n), true)
		c := copy(p.data[off:], data[n:])
		n += c
	}
}

// ReadLine reads the 64-byte line containing addr (aligned down).
func (d *DRAM) ReadLine(addr Addr) [LineSize]byte {
	var line [LineSize]byte
	d.ReadBytes(addr&^(LineSize-1), line[:])
	return line
}

// WriteLine stores a 64-byte line at the line containing addr (aligned down).
func (d *DRAM) WriteLine(addr Addr, line [LineSize]byte) {
	d.WriteBytes(addr&^(LineSize-1), line[:])
}

// AllocatedPages reports how many 4 KB backing pages have been materialized
// (diagnostics; the store is sparse so 32 GB costs nothing up front). A
// forked view counts pages inherited from its snapshot plus its own.
func (d *DRAM) AllocatedPages() int { return d.allocated }
