package dram

import (
	"math/rand/v2"
	"testing"

	"meecc/internal/sim"
)

func BenchmarkAccessTiming(b *testing.B) {
	d := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(1, 2))
	now := sim.Cycles(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 1000
		d.Access(now, rng, Addr((i%100000)*64), false)
	}
}

func BenchmarkLineReadWrite(b *testing.B) {
	d := New(DefaultConfig())
	var line [LineSize]byte
	b.SetBytes(LineSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := Addr((i % 4096) * 64)
		d.WriteLine(addr, line)
		line = d.ReadLine(addr)
	}
}
