package dram

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"meecc/internal/sim"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestReadBackWrittenBytes(t *testing.T) {
	d := New(DefaultConfig())
	data := []byte("integrity tree versions line")
	d.WriteBytes(0x1234, data)
	got := make([]byte, len(data))
	d.ReadBytes(0x1234, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestUnwrittenMemoryReadsZero(t *testing.T) {
	d := New(DefaultConfig())
	buf := make([]byte, 128)
	d.ReadBytes(0xdeadbe00, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	d := New(DefaultConfig())
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := Addr(pageBytes - 100)
	d.WriteBytes(addr, data)
	got := make([]byte, len(data))
	d.ReadBytes(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestLineRoundTripAligned(t *testing.T) {
	d := New(DefaultConfig())
	var line [LineSize]byte
	for i := range line {
		line[i] = byte(i)
	}
	d.WriteLine(0x1000+17, line) // unaligned addr aligns down
	got := d.ReadLine(0x1000)
	if got != line {
		t.Fatal("line roundtrip mismatch")
	}
}

func TestAccessLatencyRowHitVsMiss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	d := New(cfg)
	rng := testRNG()
	first := d.Access(0, rng, 0x0, false)
	if first != sim.Cycles(cfg.RowMissLat) {
		t.Fatalf("first access %d, want row miss %v", first, cfg.RowMissLat)
	}
	// Wait past bank busy, same row: hit.
	second := d.Access(first+1000, rng, 64, false)
	if second != sim.Cycles(cfg.RowHitLat) {
		t.Fatalf("same-row access %d, want row hit %v", second, cfg.RowHitLat)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBankContentionStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	d := New(cfg)
	rng := testRNG()
	l1 := d.Access(0, rng, 0, false)
	// Second access to the same bank at the same time must stall behind the
	// first.
	l2 := d.Access(0, rng, 64, false)
	if l2 <= l1 {
		t.Fatalf("contended access %d not slower than %d", l2, l1)
	}
	if d.Stats().StallCyc == 0 {
		t.Fatal("no stall recorded under contention")
	}
}

func TestDifferentBanksDoNotContend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	d := New(cfg)
	rng := testRNG()
	d.Access(0, rng, 0, false)
	// Next row index maps to the next bank.
	l2 := d.Access(0, rng, Addr(cfg.RowBytes), false)
	if l2 != sim.Cycles(cfg.RowMissLat) {
		t.Fatalf("different-bank access %d, want %v", l2, cfg.RowMissLat)
	}
}

func TestMeanLatencyNearCalibrationTarget(t *testing.T) {
	d := New(DefaultConfig())
	rng := testRNG()
	var total sim.Cycles
	const n = 4000
	now := sim.Cycles(0)
	for i := 0; i < n; i++ {
		// Far-apart addresses and times: independent accesses.
		addr := Addr(uint64(rng.Uint32()) * 64 % d.Size())
		lat := d.Access(now, rng, addr, false)
		total += lat
		now += lat + 1000
	}
	mean := float64(total) / n
	if mean < 230 || mean > 280 {
		t.Fatalf("mean independent read latency %.1f, want ~250 (230..280)", mean)
	}
}

func TestAccessBeyondCapacityPanics(t *testing.T) {
	d := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	d.Access(0, testRNG(), Addr(d.Size()), false)
}

// Property: any write followed by a read of the same range returns the data,
// regardless of alignment and length.
func TestQuickByteStoreRoundTrip(t *testing.T) {
	d := New(DefaultConfig())
	f := func(addr32 uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 9000 {
			data = data[:9000]
		}
		addr := Addr(addr32)
		d.WriteBytes(addr, data)
		got := make([]byte, len(data))
		d.ReadBytes(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAllocation(t *testing.T) {
	d := New(DefaultConfig())
	d.WriteBytes(0, []byte{1})
	d.WriteBytes(1<<30, []byte{2})
	if got := d.AllocatedPages(); got != 2 {
		t.Fatalf("allocated pages %d, want 2", got)
	}
}
