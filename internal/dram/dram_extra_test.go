package dram

import (
	"testing"

	"meecc/internal/sim"
)

func TestClosedPagePolicyFlatLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClosedPage = true
	cfg.JitterSigma = 0
	d := New(cfg)
	rng := testRNG()
	now := sim.Cycles(0)
	for i := 0; i < 10; i++ {
		lat := d.Access(now, rng, Addr(i*64), false) // same row repeatedly
		if lat != sim.Cycles(cfg.RowMissLat) {
			t.Fatalf("access %d latency %d, want flat %v", i, lat, cfg.RowMissLat)
		}
		now += 10000
	}
	if d.Stats().RowHits != 0 {
		t.Fatal("closed-page policy recorded row hits")
	}
}

func TestRefreshStallsOncePerInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JitterSigma = 0
	cfg.RefreshInterval = 31200
	cfg.RefreshPenalty = 1400
	d := New(cfg)
	rng := testRNG()
	// Access the same open row repeatedly across several intervals.
	var slowAccesses, total int
	now := sim.Cycles(0)
	d.Access(now, rng, 0, false) // open the row
	for i := 0; i < 100; i++ {
		now += 3000
		lat := d.Access(now, rng, 64, false)
		total++
		if lat > sim.Cycles(cfg.RowHitLat) {
			slowAccesses++
		}
	}
	// 100 accesses over 300k cycles span ~9 refresh intervals.
	if slowAccesses < 5 || slowAccesses > 15 {
		t.Fatalf("%d/%d refresh-delayed accesses, want ~9", slowAccesses, total)
	}
	if d.Stats().Refreshes == 0 {
		t.Fatal("no refreshes counted")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := New(DefaultConfig())
	rng := testRNG()
	now := sim.Cycles(0)
	for i := 0; i < 200; i++ {
		now += 5000
		d.Access(now, rng, Addr(i*64), false)
	}
	if d.Stats().Refreshes != 0 {
		t.Fatal("refreshes counted with modeling disabled")
	}
}
