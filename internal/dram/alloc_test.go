package dram

import (
	"math/rand/v2"
	"testing"

	"meecc/internal/sim"
)

// TestSteadyStateAccessZeroAlloc pins the dense chunk directory: once a
// page is materialized, timed accesses and line reads/writes allocate
// nothing — the map[Addr] structures this replaced allocated on growth and
// hashed on every touch.
func TestSteadyStateAccessZeroAlloc(t *testing.T) {
	d := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(1, 2))
	var now sim.Cycles
	addrs := []Addr{0, 4096, 64 * 4096, 512 * 4096}
	for _, a := range addrs {
		d.WriteLine(a, [LineSize]byte{1})
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		a := addrs[i%len(addrs)]
		now += d.Access(now, rng, a, i%2 == 0)
		d.WriteLine(a, [LineSize]byte{byte(i)})
		_ = d.ReadLine(a)
		i++
	}); allocs != 0 {
		t.Fatalf("steady-state access allocates %v per run, want 0", allocs)
	}
}

// TestForkSteadyStateZeroAlloc extends the pin across the COW boundary: a
// forked DRAM pays one page copy on first write to a shared page, after
// which its hot path is allocation-free again.
func TestForkSteadyStateZeroAlloc(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 16; i++ {
		d.WriteLine(Addr(i*4096), [LineSize]byte{byte(i)})
	}
	f := d.Snapshot().Fork()

	// Reads of parent-owned pages never copy and never allocate.
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			_ = f.ReadLine(Addr(i * 4096))
		}
	}); allocs != 0 {
		t.Fatalf("fork reads allocate %v per run, want 0", allocs)
	}

	// First write COWs the page; repeat writes are then allocation-free.
	for i := 0; i < 16; i++ {
		f.WriteLine(Addr(i*4096), [LineSize]byte{0xff})
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			f.WriteLine(Addr(i*4096), [LineSize]byte{0xaa})
		}
	}); allocs != 0 {
		t.Fatalf("post-COW writes allocate %v per run, want 0", allocs)
	}
}
