package dram

import (
	"fmt"

	"meecc/internal/sim"
)

// PageBytes is the backing-store page granularity, exported for snapshot
// serializers.
const PageBytes = pageBytes

// PageImage is one materialized backing page in a serialized memory image.
type PageImage struct {
	Index uint64 // page index: base address / PageBytes
	Data  []byte // PageBytes long; may alias frozen snapshot memory
}

// SnapshotState is the serializable image of a memory Snapshot: config,
// timing state, and the materialized pages in ascending address order.
type SnapshotState struct {
	Cfg         Config
	Allocated   int
	OpenRow     []int64
	BanksBusy   []sim.Cycles
	RefreshedAt []int64
	Stats       Stats
	Pages       []PageImage
}

// ExportState flattens the snapshot for serialization. Page data aliases the
// snapshot's frozen pages (they are immutable under copy-on-write), so the
// export itself copies no page bytes; callers must treat Data as read-only.
func (s *Snapshot) ExportState() *SnapshotState {
	st := &SnapshotState{
		Cfg:         s.cfg,
		Allocated:   s.allocated,
		OpenRow:     make([]int64, len(s.openRow)),
		BanksBusy:   make([]sim.Cycles, len(s.banks)),
		RefreshedAt: make([]int64, len(s.refreshedAt)),
		Stats:       s.stats,
	}
	copy(st.OpenRow, s.openRow)
	copy(st.RefreshedAt, s.refreshedAt)
	for i := range s.banks {
		st.BanksBusy[i] = s.banks[i].BusyUntil()
	}
	for ci, ch := range s.dir {
		if ch == nil {
			continue
		}
		for pi, p := range ch.pages {
			if p == nil {
				continue
			}
			idx := uint64(ci)*chunkPages + uint64(pi)
			st.Pages = append(st.Pages, PageImage{Index: idx, Data: p.data[:]})
		}
	}
	return st
}

// SnapshotFromState rebuilds an immutable Snapshot from a serialized image.
// All geometry is validated and pages must arrive in strictly ascending
// index order with exactly PageBytes of data each, so a corrupted image
// returns an error rather than producing a silently wrong memory.
func SnapshotFromState(st *SnapshotState) (*Snapshot, error) {
	if st.Cfg.Size == 0 || st.Cfg.Banks <= 0 || st.Cfg.RowBytes == 0 {
		return nil, fmt.Errorf("dram: invalid config %+v", st.Cfg)
	}
	if len(st.OpenRow) != st.Cfg.Banks || len(st.BanksBusy) != st.Cfg.Banks ||
		len(st.RefreshedAt) != st.Cfg.Banks {
		return nil, fmt.Errorf("dram: bank state lengths %d/%d/%d, want %d",
			len(st.OpenRow), len(st.BanksBusy), len(st.RefreshedAt), st.Cfg.Banks)
	}
	nPages := (st.Cfg.Size + pageBytes - 1) / pageBytes
	gen := nextGeneration()
	s := &Snapshot{
		cfg:         st.Cfg,
		dir:         make([]*chunk, (st.Cfg.Size+chunkBytes-1)/chunkBytes),
		allocated:   st.Allocated,
		openRow:     make([]int64, st.Cfg.Banks),
		banks:       make([]sim.Resource, st.Cfg.Banks),
		refreshedAt: make([]int64, st.Cfg.Banks),
		stats:       st.Stats,
	}
	copy(s.openRow, st.OpenRow)
	copy(s.refreshedAt, st.RefreshedAt)
	for i, b := range st.BanksBusy {
		s.banks[i] = sim.ResumeResource(b)
	}
	last := int64(-1)
	for _, pg := range st.Pages {
		if pg.Index >= nPages {
			return nil, fmt.Errorf("dram: page index %d beyond capacity (%d pages)", pg.Index, nPages)
		}
		if int64(pg.Index) <= last {
			return nil, fmt.Errorf("dram: page index %d out of order", pg.Index)
		}
		last = int64(pg.Index)
		if len(pg.Data) != pageBytes {
			return nil, fmt.Errorf("dram: page %d has %d bytes, want %d", pg.Index, len(pg.Data), pageBytes)
		}
		ci := pg.Index / chunkPages
		pi := pg.Index % chunkPages
		ch := s.dir[ci]
		if ch == nil {
			ch = &chunk{gen: gen}
			s.dir[ci] = ch
		}
		p := &page{gen: gen}
		copy(p.data[:], pg.Data)
		ch.pages[pi] = p
	}
	return s, nil
}
