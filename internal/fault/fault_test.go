package fault

import (
	"reflect"
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

func testConfig(seed uint64, kinds ...Kind) Config {
	return Config{
		Seed:      seed,
		Kinds:     kinds,
		Intensity: 1,
		Start:     0,
		End:       20_000_000,
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	cfg := testConfig(7, AllKinds()...)
	a, b := NewPlan(cfg), NewPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different plans")
	}
	cfg.Seed = 8
	c := NewPlan(cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestNewPlanPureOfPlatformRNG(t *testing.T) {
	// Building a plan must not consume platform randomness: two platforms
	// booted with the same seed stay in lockstep whether or not a plan is
	// built in between.
	p1 := platform.New(platform.DefaultConfig(3))
	defer p1.Close()
	p2 := platform.New(platform.DefaultConfig(3))
	defer p2.Close()
	_ = NewPlan(testConfig(99, AllKinds()...))
	if p1.Engine().Rand().Uint64() != p2.Engine().Rand().Uint64() {
		t.Fatal("NewPlan perturbed the platform RNG stream")
	}
}

func TestPlanEventsSortedAndWindowed(t *testing.T) {
	p := NewPlan(testConfig(11, AllKinds()...))
	if len(p.Events) == 0 {
		t.Fatal("no events at intensity 1 over 20M cycles")
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].At < p.Events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
	slack := p.Config.withDefaults().ReturnAfter // migration bounces may return just past End
	for _, ev := range p.Events {
		if ev.At < p.Config.Start || ev.At >= p.Config.End+slack {
			t.Fatalf("event at %d outside window [%d,%d)+%d", ev.At, p.Config.Start, p.Config.End, slack)
		}
	}
	if len(p.Storm) == 0 {
		t.Fatal("no storm windows")
	}
	for _, w := range p.Storm {
		if w.End <= w.Start || w.Start < p.Config.Start || w.End > p.Config.End {
			t.Fatalf("bad storm window %+v", w)
		}
	}
}

func TestIntensityScalesEventCount(t *testing.T) {
	lo := NewPlan(Config{Seed: 5, Kinds: []Kind{Migration, Paging, MEEFlush}, Intensity: 0.5, End: 50_000_000})
	hi := NewPlan(Config{Seed: 5, Kinds: []Kind{Migration, Paging, MEEFlush}, Intensity: 4, End: 50_000_000})
	if len(hi.Events) <= len(lo.Events) {
		t.Fatalf("intensity 4 produced %d events, intensity 0.5 produced %d", len(hi.Events), len(lo.Events))
	}
}

func TestZeroIntensityOrWindowYieldsEmptyPlan(t *testing.T) {
	if p := NewPlan(Config{Seed: 1, Kinds: AllKinds()}); len(p.Events) != 0 || len(p.Storm) != 0 {
		t.Fatal("zero intensity produced events")
	}
	if p := NewPlan(Config{Seed: 1, Kinds: AllKinds(), Intensity: 1}); len(p.Events) != 0 {
		t.Fatal("empty window produced events")
	}
}

func TestParseKinds(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("cosmic-ray"); err == nil {
		t.Error("unknown kind accepted")
	}
	all, err := ParseKinds("all")
	if err != nil || len(all) != int(numKinds) {
		t.Errorf("ParseKinds(all) = %v, %v", all, err)
	}
	none, err := ParseKinds("none")
	if err != nil || len(none) != 0 {
		t.Errorf("ParseKinds(none) = %v, %v", none, err)
	}
	two, err := ParseKinds("migration, storm")
	if err != nil || !reflect.DeepEqual(two, []Kind{Migration, Storm}) {
		t.Errorf("ParseKinds(migration, storm) = %v, %v", two, err)
	}
	if _, err := ParseKinds("migration,flood"); err == nil {
		t.Error("bad list accepted")
	}
}

// bootSession boots a platform with trojan and spy enclave processes plus
// idle endpoint threads that spin until `until`, and returns the armed
// targets.
func bootSession(t *testing.T, seed uint64, until sim.Cycles) (*platform.Platform, Targets) {
	t.Helper()
	plat := platform.New(platform.DefaultConfig(seed))
	mk := func(name string, core int) (*platform.Process, *platform.Thread, []enclave.VAddr) {
		pr := plat.NewProcess(name)
		if _, err := pr.CreateEnclave(8); err != nil {
			t.Fatal(err)
		}
		base := pr.Enclave().Base
		pages := make([]enclave.VAddr, 8)
		for i := range pages {
			pages[i] = base + enclave.VAddr(i*enclave.PageBytes)
		}
		th := plat.SpawnThread(name, pr, core, func(th *platform.Thread) {
			th.EnterEnclave()
			for th.Now() < until {
				th.Access(base)
				th.SpinUntil(th.Now() + 5000)
			}
			th.ExitEnclave()
		})
		return pr, th, pages
	}
	tpr, tth, tpages := mk("trojan", 0)
	spr, sth, spages := mk("spy", 2)
	return plat, Targets{
		Trojan: tth, Spy: sth,
		TrojanProc: tpr, SpyProc: spr,
		TrojanPages: tpages, SpyPages: spages,
		TrojanHome: 0, SpyHome: 2,
		StormCore: 1,
	}
}

func TestAttachAppliesAllKinds(t *testing.T) {
	const until = 10_000_000
	plat, tg := bootSession(t, 21, until)
	defer plat.Close()
	cfg := testConfig(21, AllKinds()...)
	cfg.End = until
	cfg.Intensity = 4
	in := NewPlan(cfg).Attach(plat, tg)
	plat.Run(-1)

	counts := in.Counts()
	for _, k := range AllKinds() {
		if counts[k] == 0 {
			t.Errorf("no %s events applied (log: %v)", k, in.Log())
		}
	}
	// Migration bounces always come in out/home pairs, so both endpoints end
	// on their pinned cores.
	if got := tg.Trojan.Core(); got != tg.TrojanHome {
		t.Errorf("trojan finished on core %d, want %d", got, tg.TrojanHome)
	}
	if got := tg.Spy.Core(); got != tg.SpyHome {
		t.Errorf("spy finished on core %d, want %d", got, tg.SpyHome)
	}
}

func TestPagingEventMovesFrame(t *testing.T) {
	const until = 30_000_000
	plat, tg := bootSession(t, 22, until)
	defer plat.Close()
	type key struct {
		proc *platform.Process
		va   enclave.VAddr
	}
	before := make(map[key]uint64)
	for _, va := range tg.TrojanPages {
		pa, _ := tg.TrojanProc.Translate(va)
		before[key{tg.TrojanProc, va}] = uint64(pa)
	}
	for _, va := range tg.SpyPages {
		pa, _ := tg.SpyProc.Translate(va)
		before[key{tg.SpyProc, va}] = uint64(pa)
	}
	cfg := testConfig(22, Paging)
	cfg.End = until
	cfg.Intensity = 8
	in := NewPlan(cfg).Attach(plat, tg)
	plat.Run(-1)
	if in.Counts()[Paging] == 0 {
		t.Fatal("no paging events applied")
	}
	moved := 0
	for k, old := range before {
		pa, ok := k.proc.Translate(k.va)
		if !ok {
			t.Fatalf("page %#x unmapped after repage", k.va)
		}
		if uint64(pa) != old {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("paging events applied but no frame moved")
	}
}

func TestAttachSkipsMissingTargets(t *testing.T) {
	plat := platform.New(platform.DefaultConfig(23))
	defer plat.Close()
	cfg := testConfig(23, Migration, Timer, Paging)
	cfg.End = 5_000_000
	cfg.Intensity = 2
	in := NewPlan(cfg).Attach(plat, Targets{}) // no threads, no pages
	plat.Run(-1)
	if len(in.Log()) == 0 {
		t.Fatal("expected skip records")
	}
	for _, i := range in.Log() {
		if i.Note == "" || i.Note[0] != '!' {
			t.Fatalf("event applied with no targets: %v", i)
		}
	}
	for k, n := range in.Counts() {
		if n != 0 {
			t.Fatalf("Counts()[%s] = %d with everything skipped", k, n)
		}
	}
}

func TestAttachedRunDeterministic(t *testing.T) {
	run := func() []Injected {
		const until = 8_000_000
		plat, tg := bootSession(t, 31, until)
		defer plat.Close()
		cfg := testConfig(31, AllKinds()...)
		cfg.End = until
		cfg.Intensity = 3
		in := NewPlan(cfg).Attach(plat, tg)
		plat.Run(-1)
		return in.Log()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different injection logs")
	}
}
