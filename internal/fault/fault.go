// Package fault is the deterministic chaos layer for the simulated testbed:
// it generates reproducible fault schedules (core migration, timer drift and
// jitter, EPC paging, MEE-cache power flushes, bursty co-tenant noise) and
// composes them onto a booted platform as injector actors.
//
// The paper evaluates its channel "without any error handling" on a quiet,
// pinned machine (§5.4); real SGX attacks die from exactly the events modeled
// here — CacheZoom-style AEX preemption, scheduler migration off the pinned
// core, EPC paging that silently moves a page to a new physical frame (and so
// a new MEE cache set), and co-tenant enclaves churning the MEE cache. The
// chaos layer makes those conditions available on demand, and — critically —
// on a leash: a Plan is a pure function of its Config (the schedule comes
// from a private PCG stream seeded by Config.Seed, never the platform RNG),
// so the exp harness's byte-identical-artifact guarantee survives fault
// injection at any worker count.
package fault

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"meecc/internal/sim"
)

// Kind labels one family of injected faults.
type Kind int

const (
	// Migration bounces an endpoint thread off its pinned core (scheduler
	// preemption + migration): the thread pays an AEX-sized stall, runs on a
	// foreign core with cold private caches for a while, then bounces back.
	Migration Kind = iota
	// Timer perturbs an endpoint's hyperthread timer: per-reading uniform
	// jitter plus a cumulative random-walk drift, modeling a helper thread
	// that falls behind when the sibling hyperthread is descheduled.
	Timer
	// Paging forces an EPC paging round trip (EWB + ELDU) on one of the
	// endpoint's candidate pages. The page returns in a different physical
	// frame, so its versions line maps to a different MEE cache set — the
	// previously discovered eviction set is silently stale afterwards.
	Paging
	// MEEFlush drops the entire MEE cache (suspend/resume or an MEE key
	// rotation): every primed line is gone at once.
	MEEFlush
	// Storm runs a co-tenant enclave streaming protected memory at 4 KB
	// stride in on/off bursts with a configurable duty cycle — the Figure
	// 8(d) environment, but bursty instead of constant.
	Storm
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Migration:
		return "migration"
	case Timer:
		return "timer"
	case Paging:
		return "paging"
	case MEEFlush:
		return "meeflush"
	case Storm:
		return "storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a spec string to a Kind.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// ParseKinds parses a comma-separated kind list; "all" (or "") selects every
// kind, "none" selects none.
func ParseKinds(s string) ([]Kind, error) {
	switch s {
	case "", "all":
		return AllKinds(), nil
	case "none":
		return nil, nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		k, err := ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// AllKinds returns every fault kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Target selects which endpoint an event hits.
type Target int

const (
	// TargetTrojan hits the sending endpoint.
	TargetTrojan Target = iota
	// TargetSpy hits the receiving endpoint.
	TargetSpy
	// TargetMachine hits machine-wide state (MEE flush).
	TargetMachine
)

func (t Target) String() string {
	switch t {
	case TargetTrojan:
		return "trojan"
	case TargetSpy:
		return "spy"
	case TargetMachine:
		return "machine"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Config describes a fault campaign over one simulated session. Zero-valued
// knobs take the documented defaults; Intensity scales event rates (mean
// gaps divide by it) and the jitter amplitude, so one dial sweeps a campaign
// from benign to hostile. Intensity 0 disables everything.
type Config struct {
	// Seed derives the schedule. Plans with equal Config are identical.
	Seed uint64
	// Kinds lists the enabled fault families (duplicates are ignored).
	Kinds []Kind
	// Intensity scales the campaign; 1.0 is the nominal hostile load.
	Intensity float64
	// Start and End bound the window (in simulated cycles) faults land in.
	Start, End sim.Cycles

	// MigrationGap is the mean gap between migration bounces (default 2M
	// cycles at intensity 1); MigrationStall the AEX+scheduler cost charged
	// on each bounce (default 30k); ReturnAfter how long the thread stays
	// displaced on the foreign core (default 150k).
	MigrationGap   sim.Cycles
	MigrationStall sim.Cycles
	ReturnAfter    sim.Cycles

	// DriftGap is the mean gap between drift steps (default 1.5M); DriftStep
	// the maximum per-step skew in cycles (default 40, signed uniform);
	// JitterAmp the ± bound of per-reading timer noise applied for the whole
	// window (default 2500 cycles, scaled by Intensity).
	DriftGap  sim.Cycles
	DriftStep float64
	JitterAmp float64

	// PagingGap is the mean gap between EPC paging events (default 4M);
	// PagingStall the page-fault cost charged to the owning thread
	// (default 60k).
	PagingGap   sim.Cycles
	PagingStall sim.Cycles

	// FlushGap is the mean gap between MEE cache flushes (default 3M).
	FlushGap sim.Cycles

	// StormPeriod and StormDuty shape the noise bursts: each period starts
	// with duty*period cycles of 4 KB-stride MEE traffic (duty is scaled by
	// Intensity and capped at 0.95). Defaults: 1M cycles, 0.5.
	StormPeriod sim.Cycles
	StormDuty   float64
}

// withDefaults fills zero knobs.
func (c Config) withDefaults() Config {
	def := func(v *sim.Cycles, d sim.Cycles) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.MigrationGap, 2_000_000)
	def(&c.MigrationStall, 30_000)
	def(&c.ReturnAfter, 150_000)
	def(&c.DriftGap, 1_500_000)
	def(&c.PagingGap, 4_000_000)
	def(&c.PagingStall, 60_000)
	def(&c.FlushGap, 3_000_000)
	def(&c.StormPeriod, 1_000_000)
	if c.DriftStep == 0 {
		c.DriftStep = 40
	}
	if c.JitterAmp == 0 {
		c.JitterAmp = 2500
	}
	if c.StormDuty == 0 {
		c.StormDuty = 0.5
	}
	return c
}

// Event is one scheduled fault. Selector fields (Pick) are uniform [0,1)
// draws resolved against live state (core list, page list) at apply time, so
// the plan stays pure while the application adapts to the session layout.
type Event struct {
	At     sim.Cycles
	Kind   Kind
	Target Target
	// Stall is the preemption cost charged to the target (Migration, Paging).
	Stall sim.Cycles
	// Home marks the return half of a migration bounce.
	Home bool
	// Drift is the signed timer skew applied by a Timer event.
	Drift sim.Cycles
	// Jitter, when positive, sets the target's per-reading timer noise bound.
	Jitter float64
	// Pick selects the destination core (Migration) or victim page (Paging).
	Pick float64
}

// Window is one on-burst of the noise storm.
type Window struct {
	Start, End sim.Cycles
}

// Plan is a fully materialized fault schedule: events sorted by time plus
// the storm's on-windows. It is a pure function of its Config.
type Plan struct {
	Config Config
	Events []Event
	Storm  []Window
}

// NewPlan derives the schedule for cfg. The generator stream is private to
// the plan (PCG seeded from cfg.Seed), so building a plan never perturbs the
// platform RNG and equal configs yield byte-identical plans.
func NewPlan(cfg Config) *Plan {
	cfg = cfg.withDefaults()
	p := &Plan{Config: cfg}
	if cfg.Intensity <= 0 || cfg.End <= cfg.Start {
		return p
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb))
	seen := make(map[Kind]bool)
	for _, k := range cfg.Kinds {
		if seen[k] {
			continue
		}
		seen[k] = true
		switch k {
		case Migration:
			p.genMigration(rng)
		case Timer:
			p.genTimer(rng)
		case Paging:
			p.genPaging(rng)
		case MEEFlush:
			p.genFlush(rng)
		case Storm:
			p.genStorm()
		}
	}
	sort.SliceStable(p.Events, func(i, j int) bool {
		return p.Events[i].At < p.Events[j].At
	})
	return p
}

// arrivals walks exponential inter-arrival times with the given mean gap
// (divided by Intensity) across the window, invoking f at each point.
func (p *Plan) arrivals(rng *rand.Rand, meanGap sim.Cycles, f func(at sim.Cycles)) {
	cfg := p.Config
	mean := float64(meanGap) / cfg.Intensity
	t := cfg.Start
	for {
		gap := sim.Cycles(rng.ExpFloat64()*mean) + 1
		t += gap
		if t >= cfg.End {
			return
		}
		f(t)
	}
}

// endpoint draws trojan or spy with equal probability.
func endpoint(rng *rand.Rand) Target {
	if rng.Uint64()&1 == 0 {
		return TargetTrojan
	}
	return TargetSpy
}

func (p *Plan) genMigration(rng *rand.Rand) {
	cfg := p.Config
	p.arrivals(rng, cfg.MigrationGap, func(at sim.Cycles) {
		tgt := endpoint(rng)
		pick := rng.Float64()
		p.Events = append(p.Events,
			Event{At: at, Kind: Migration, Target: tgt, Stall: cfg.MigrationStall, Pick: pick},
			Event{At: at + cfg.ReturnAfter, Kind: Migration, Target: tgt, Home: true, Stall: cfg.MigrationStall / 2},
		)
	})
}

func (p *Plan) genTimer(rng *rand.Rand) {
	cfg := p.Config
	amp := cfg.JitterAmp * cfg.Intensity
	// Jitter switches on for both endpoints at window start...
	p.Events = append(p.Events,
		Event{At: cfg.Start, Kind: Timer, Target: TargetTrojan, Jitter: amp},
		Event{At: cfg.Start, Kind: Timer, Target: TargetSpy, Jitter: amp},
	)
	// ...and drift accumulates as a signed random walk, independently per
	// endpoint so the two clocks diverge (a shared skew would cancel out).
	p.arrivals(rng, cfg.DriftGap, func(at sim.Cycles) {
		d := sim.Cycles((rng.Float64()*2 - 1) * cfg.DriftStep * cfg.Intensity)
		p.Events = append(p.Events, Event{At: at, Kind: Timer, Target: endpoint(rng), Drift: d})
	})
}

func (p *Plan) genPaging(rng *rand.Rand) {
	cfg := p.Config
	p.arrivals(rng, cfg.PagingGap, func(at sim.Cycles) {
		p.Events = append(p.Events, Event{
			At: at, Kind: Paging, Target: endpoint(rng),
			Stall: cfg.PagingStall, Pick: rng.Float64(),
		})
	})
}

func (p *Plan) genFlush(rng *rand.Rand) {
	p.arrivals(rng, p.Config.FlushGap, func(at sim.Cycles) {
		p.Events = append(p.Events, Event{At: at, Kind: MEEFlush, Target: TargetMachine})
	})
}

func (p *Plan) genStorm() {
	cfg := p.Config
	duty := cfg.StormDuty * cfg.Intensity
	if duty > 0.95 {
		duty = 0.95
	}
	on := sim.Cycles(float64(cfg.StormPeriod) * duty)
	if on <= 0 {
		return
	}
	for t := cfg.Start; t < cfg.End; t += cfg.StormPeriod {
		end := t + on
		if end > cfg.End {
			end = cfg.End
		}
		p.Storm = append(p.Storm, Window{Start: t, End: end})
	}
}
