package fault

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/obs"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// Targets binds a plan's abstract events to concrete session state. Nil
// threads and empty page lists cause the matching events to be skipped (and
// logged as skipped), so a plan can be armed before both endpoints exist.
type Targets struct {
	// Trojan and Spy are the endpoint threads events are charged to.
	Trojan, Spy *platform.Thread
	// TrojanProc and SpyProc own the enclaves whose pages Paging events hit.
	TrojanProc, SpyProc *platform.Process
	// TrojanPages and SpyPages are the candidate pages (the eviction-set
	// pool) a Paging event may relocate.
	TrojanPages, SpyPages []enclave.VAddr
	// TrojanLive and SpyLive, when set, supply the endpoint's *current*
	// working set (eviction set, monitor page) at event-application time;
	// a non-empty result takes precedence over the static page lists. This
	// models the worst case — memory pressure paging out exactly the pages
	// carrying the channel — while keeping the plan itself pure: the closure
	// reads actor state, and the engine serializes that read with the
	// owning actor's writes.
	TrojanLive, SpyLive func() []enclave.VAddr
	// TrojanHome and SpyHome are the pinned cores migration bounces return
	// to.
	TrojanHome, SpyHome int
	// Cores is the number of cores on the machine (migration destinations).
	Cores int
	// StormCore is where the noise-storm enclave runs.
	StormCore int
}

func (tg Targets) thread(t Target) *platform.Thread {
	if t == TargetTrojan {
		return tg.Trojan
	}
	return tg.Spy
}

// Injected is one applied (or skipped) fault, for reports and tests.
type Injected struct {
	At     sim.Cycles
	Kind   Kind
	Target Target
	Note   string
}

func (i Injected) String() string {
	return fmt.Sprintf("%d %s/%s %s", i.At, i.Kind, i.Target, i.Note)
}

// Injector is an armed plan. Its log fills in as the simulation runs; read
// it only when the engine is idle (after Run returns).
type Injector struct {
	plan *Plan
	tg   Targets
	log  []Injected

	// Observability (nil when disabled): per-kind applied/skipped counters
	// and instants on a dedicated "faults" timeline track, so a degradation
	// event in the channel metrics can be lined up with the exact fault that
	// caused it.
	o       *obs.Observer
	tr      *obs.Tracer
	faultTk obs.TrackID
}

// Log returns the applied-fault log in application order.
func (in *Injector) Log() []Injected { return in.log }

// Counts returns how many events of each kind were applied (not skipped).
func (in *Injector) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, i := range in.log {
		if i.Note != "" && i.Note[0] == '!' {
			continue
		}
		out[i.Kind]++
	}
	return out
}

func (in *Injector) record(at sim.Cycles, k Kind, t Target, format string, args ...any) {
	note := fmt.Sprintf(format, args...)
	in.log = append(in.log, Injected{At: at, Kind: k, Target: t, Note: note})
	if in.o == nil {
		return
	}
	if len(note) > 0 && note[0] == '!' {
		in.o.Counter("fault.skipped").Inc()
		return
	}
	in.o.Counter("fault.applied." + k.String()).Inc()
	if in.tr != nil {
		in.tr.Instant(in.faultTk, in.tr.Name("fault."+k.String()), int64(at), int64(k))
	}
}

// Attach arms the plan on a booted platform: one injector actor walks the
// event schedule, and a co-tenant enclave actor runs the storm windows. Both
// actors terminate after their last event, so an attached plan never keeps
// the engine alive past the configured window.
func (p *Plan) Attach(plat *platform.Platform, tg Targets) *Injector {
	if tg.Cores == 0 {
		tg.Cores = plat.Config().Cores
	}
	in := &Injector{plan: p, tg: tg}
	if o := plat.Obs(); o != nil {
		in.o = o
		if in.tr = o.Tracer(); in.tr != nil {
			in.faultTk = in.tr.Track("faults")
		}
	}
	if len(p.Events) > 0 {
		events := p.Events
		plat.Engine().SpawnAt("fault-injector", events[0].At, func(sp *sim.Proc) {
			for _, ev := range events {
				sp.SleepUntil(ev.At)
				in.apply(sp, plat, ev)
			}
		})
	}
	if len(p.Storm) > 0 {
		in.spawnStorm(plat)
	}
	return in
}

// apply executes one event against live state. Skips (missing thread, empty
// page list, Repage failure) are logged with a leading "!" note rather than
// panicking — a chaos layer must not be able to crash the experiment.
func (in *Injector) apply(sp *sim.Proc, plat *platform.Platform, ev Event) {
	now := sp.Now()
	tg := in.tg
	switch ev.Kind {
	case Migration:
		th := tg.thread(ev.Target)
		if th == nil {
			in.record(now, ev.Kind, ev.Target, "!no thread")
			return
		}
		var dest int
		if ev.Home {
			dest = tg.TrojanHome
			if ev.Target == TargetSpy {
				dest = tg.SpyHome
			}
		} else {
			dest = pickOther(th.Core(), tg.Cores, ev.Pick)
		}
		from := th.Core()
		th.SetCore(dest)
		th.Preempt(ev.Stall)
		in.record(now, ev.Kind, ev.Target, "core %d->%d stall %d", from, dest, ev.Stall)

	case Timer:
		th := tg.thread(ev.Target)
		if th == nil {
			in.record(now, ev.Kind, ev.Target, "!no thread")
			return
		}
		if ev.Jitter > 0 {
			th.SetTimerJitter(ev.Jitter)
			in.record(now, ev.Kind, ev.Target, "jitter %.0f", ev.Jitter)
		}
		if ev.Drift != 0 {
			th.AddTimerDrift(ev.Drift)
			in.record(now, ev.Kind, ev.Target, "drift %+d", ev.Drift)
		}

	case Paging:
		th := tg.thread(ev.Target)
		proc, pages, live := tg.TrojanProc, tg.TrojanPages, tg.TrojanLive
		if ev.Target == TargetSpy {
			proc, pages, live = tg.SpyProc, tg.SpyPages, tg.SpyLive
		}
		if live != nil {
			if cur := live(); len(cur) > 0 {
				pages = cur
			}
		}
		if proc == nil || len(pages) == 0 {
			in.record(now, ev.Kind, ev.Target, "!no pages")
			return
		}
		va := pages[pickIndex(len(pages), ev.Pick)]
		if err := plat.Repage(proc, va, now); err != nil {
			in.record(now, ev.Kind, ev.Target, "!repage: %v", err)
			return
		}
		if th != nil {
			th.Preempt(ev.Stall)
		}
		in.record(now, ev.Kind, ev.Target, "repage va %#x stall %d", va, ev.Stall)

	case MEEFlush:
		plat.MEE().FlushCache(now, plat.Engine().Rand())
		in.record(now, ev.Kind, ev.Target, "mee cache flushed")

	default:
		in.record(now, ev.Kind, ev.Target, "!unknown kind")
	}
}

// pickOther maps a [0,1) draw to a core other than cur.
func pickOther(cur, cores int, pick float64) int {
	if cores <= 1 {
		return cur
	}
	d := pickIndex(cores-1, pick)
	if d >= cur {
		d++
	}
	return d
}

// pickIndex maps a [0,1) draw to an index in [0,n).
func pickIndex(n int, pick float64) int {
	i := int(pick * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// stormPages is one storm thread's working set (2 MB of protected memory —
// enough to stream distinct versions lines, small next to the EPC).
const stormPages = 512

// maxStormThreads caps the storm's thread fan-out.
const maxStormThreads = 8

// spawnStorm starts the bursty co-tenants: enclave threads streaming
// protected memory at 4 KB stride (the Figure 8(d) worst case, churning
// versions and L0 lines) during each on-window, idle between bursts.
//
// Intensity scales the number of streaming threads: a single co-tenant can
// only insert a handful of versions lines per bit window (bounded by MEE
// walk latency), which the channel shrugs off — exactly the paper's Figure 8
// result. Several co-tenants multiply the insertion rate into every MEE
// cache set and saturate the single-ported MEE, which is what actually
// breaks the channel.
func (in *Injector) spawnStorm(plat *platform.Platform) {
	threads := int(in.plan.Config.Intensity + 0.5)
	if threads < 1 {
		threads = 1
	}
	if threads > maxStormThreads {
		threads = maxStormThreads
	}
	pr := plat.NewProcess("fault-storm")
	if _, err := pr.CreateEnclave(threads * stormPages); err != nil {
		in.record(0, Storm, TargetMachine, "!storm enclave: %v", err)
		return
	}
	base := pr.Enclave().Base
	wins := in.plan.Storm
	for ti := 0; ti < threads; ti++ {
		tbase := base + enclave.VAddr(ti*stormPages*enclave.PageBytes)
		name := fmt.Sprintf("fault-storm-%d", ti)
		plat.SpawnThreadAt(name, pr, in.tg.StormCore, wins[0].Start, func(th *platform.Thread) {
			th.EnterEnclave()
			off := 0
			for _, w := range wins {
				th.SpinUntil(w.Start)
				for th.Now() < w.End {
					va := tbase + enclave.VAddr(off%(stormPages*enclave.PageBytes))
					th.Access(va)
					th.Flush(va)
					off += enclave.PageBytes
				}
			}
			th.ExitEnclave()
		})
	}
	in.record(wins[0].Start, Storm, TargetMachine, "storm armed: %d threads, %d bursts", threads, len(wins))
}
