package itree

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"meecc/internal/dram"
)

// Crypto holds the MEE's per-boot keys and implements the confidentiality
// and integrity primitives: AES-128 counter-mode encryption of data lines
// keyed by (address, version), CBC-MAC-based PD_Tags over ciphertext, and
// embedded MACs over counter lines keyed by the covering counter. CBC-MAC is
// secure here because every MAC'd message has the same fixed length.
//
// The scratch fields keep every block operation allocation-free: slices of
// a method-local array passed through the cipher.Block interface escape to
// the heap, which at millions of MACs per simulated transmission dominated
// the allocator. Methods are therefore not safe for concurrent use — fine
// here, because a Crypto belongs to one platform and the simulation engine
// serializes all actors.
type Crypto struct {
	master [16]byte     // retained for snapshot serialization
	enc    cipher.Block // data encryption key
	mac    cipher.Block // MAC key (independent)

	ctrBlock [16]byte // AES-CTR input scratch
	ctrKS    [16]byte // AES-CTR keystream scratch
	macAcc   [16]byte // CBC-MAC accumulator scratch
	macBody  [64]byte // NodeMAC serialized-counters scratch
}

// NewCrypto derives the engine's working keys from a 16-byte master key
// (a fresh random key per simulated boot).
func NewCrypto(master [16]byte) *Crypto {
	encKey := deriveKey(master, 0x01)
	macKey := deriveKey(master, 0x02)
	eb, err := aes.NewCipher(encKey[:])
	if err != nil {
		panic(err)
	}
	mb, err := aes.NewCipher(macKey[:])
	if err != nil {
		panic(err)
	}
	return &Crypto{master: master, enc: eb, mac: mb}
}

// Master returns the 16-byte master key the working keys were derived from.
// Serialized snapshots carry the master rather than the derived keys, so a
// decoded Crypto goes through the same NewCrypto derivation path.
func (c *Crypto) Master() [16]byte { return c.master }

// Clone returns a Crypto with the same keys but its own scratch buffers.
// The cipher.Block values are stateless and safely shared; the scratch is
// what makes a Crypto single-threaded, so forked platforms running on other
// goroutines each need their own.
func (c *Crypto) Clone() *Crypto {
	return &Crypto{master: c.master, enc: c.enc, mac: c.mac}
}

func deriveKey(master [16]byte, label byte) [16]byte {
	b, err := aes.NewCipher(master[:])
	if err != nil {
		panic(err)
	}
	var in, out [16]byte
	in[0] = label
	b.Encrypt(out[:], in[:])
	return out
}

// xcryptLine applies the AES-CTR keystream derived from (addr, version) to a
// 64-byte line; encryption and decryption are the same operation.
func (c *Crypto) xcryptLine(addr dram.Addr, version uint64, in [LineSize]byte) [LineSize]byte {
	var out [LineSize]byte
	block, ks := c.ctrBlock[:], c.ctrKS[:]
	for i := 0; i < LineSize/16; i++ {
		binary.LittleEndian.PutUint64(block[0:], uint64(addr))
		binary.LittleEndian.PutUint64(block[8:], version<<8|uint64(i))
		c.enc.Encrypt(ks, block)
		for j := 0; j < 16; j++ {
			out[i*16+j] = in[i*16+j] ^ ks[j]
		}
	}
	return out
}

// EncryptLine encrypts a plaintext data line under its address and version.
func (c *Crypto) EncryptLine(addr dram.Addr, version uint64, plain [LineSize]byte) [LineSize]byte {
	return c.xcryptLine(addr, version, plain)
}

// DecryptLine decrypts a ciphertext data line under its address and version.
func (c *Crypto) DecryptLine(addr dram.Addr, version uint64, ct [LineSize]byte) [LineSize]byte {
	return c.xcryptLine(addr, version, ct)
}

// cbcMAC computes a truncated CBC-MAC over header || body under the MAC key.
func (c *Crypto) cbcMAC(h0, h1 uint64, body []byte) uint64 {
	acc := c.macAcc[:]
	binary.LittleEndian.PutUint64(acc[0:], h0)
	binary.LittleEndian.PutUint64(acc[8:], h1)
	c.mac.Encrypt(acc, acc)
	for off := 0; off < len(body); off += 16 {
		for j := 0; j < 16; j++ {
			acc[j] ^= body[off+j]
		}
		c.mac.Encrypt(acc, acc)
	}
	return binary.LittleEndian.Uint64(acc[:8])
}

// DataMAC computes the PD_Tag for a data line: a MAC binding the line's
// address, its current version, and its ciphertext.
func (c *Crypto) DataMAC(addr dram.Addr, version uint64, ct [LineSize]byte) uint64 {
	return c.cbcMAC(uint64(addr)|1<<63, version, ct[:])
}

// NodeMAC computes the embedded MAC of a counter line (versions or L0..L2):
// it binds the line's DRAM address, the value of the covering counter one
// level up, and the line's eight counters. A stale or tampered line fails
// verification because the covering counter has moved on.
func (c *Crypto) NodeMAC(addr dram.Addr, parentCounter uint64, counters [CountersPerLine]uint64) uint64 {
	body := c.macBody[:]
	for i, v := range counters {
		binary.LittleEndian.PutUint64(body[i*8:], v)
	}
	return c.cbcMAC(uint64(addr), parentCounter, body)
}
