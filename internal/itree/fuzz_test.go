package itree

import "testing"

// FuzzCounterLineDecode: arbitrary 64-byte lines (e.g. tampered DRAM) must
// decode without panicking and re-encode losslessly once counters are
// masked to 56 bits.
func FuzzCounterLineDecode(f *testing.F) {
	f.Add(make([]byte, LineSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var line [LineSize]byte
		copy(line[:], raw)
		cl := DecodeCounterLine(line)
		for i, c := range cl.Counters {
			if c > CounterMax {
				t.Fatalf("counter %d decoded beyond 56 bits: %#x", i, c)
			}
		}
		if DecodeCounterLine(cl.Encode()) != cl {
			t.Fatal("re-encode not lossless")
		}
	})
}
