package itree

import "testing"

func BenchmarkEncryptLine(b *testing.B) {
	c := NewCrypto([16]byte{1})
	var line [LineSize]byte
	b.SetBytes(LineSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line = c.EncryptLine(0x1000, uint64(i), line)
	}
}

func BenchmarkDataMAC(b *testing.B) {
	c := NewCrypto([16]byte{1})
	var ct [LineSize]byte
	b.SetBytes(LineSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.DataMAC(0x1000, uint64(i), ct)
	}
}

func BenchmarkNodeMAC(b *testing.B) {
	c := NewCrypto([16]byte{1})
	var counters [CountersPerLine]uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counters[0] = uint64(i)
		_ = c.NodeMAC(0x2000, 7, counters)
	}
}

func BenchmarkCounterLineCodec(b *testing.B) {
	var cl CounterLine
	for i := range cl.Counters {
		cl.Counters[i] = uint64(i) * 999
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl = DecodeCounterLine(cl.Encode())
	}
}
