package itree

import (
	"testing"
	"testing/quick"

	"meecc/internal/dram"
)

func mustGeom(t *testing.T) Geometry {
	t.Helper()
	g, err := NewGeometry(0, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeometrySizes(t *testing.T) {
	g := mustGeom(t)
	nVers := uint64(96<<20) / DataPerVersionLine
	if nVers != 196608 {
		t.Fatalf("versions lines %d, want 196608", nVers)
	}
	if g.LevelLines[0] != nVers/8 || g.LevelLines[1] != nVers/64 || g.LevelLines[2] != nVers/512 {
		t.Fatalf("level lines %v", g.LevelLines)
	}
	if g.RootCounters != int(nVers/512) {
		t.Fatalf("root counters %d, want %d", g.RootCounters, nVers/512)
	}
	// 96 MB data + ~25.7 MB metadata must fit in the 128 MB PRM.
	if g.TreeBytes() >= 32<<20 {
		t.Fatalf("tree bytes %d unexpectedly large", g.TreeBytes())
	}
}

func TestGeometryRejectsBadSizes(t *testing.T) {
	if _, err := NewGeometry(0, 128<<20, 0); err == nil {
		t.Fatal("zero data size accepted")
	}
	if _, err := NewGeometry(0, 128<<20, (3<<20)+4096); err == nil {
		t.Fatal("non-multiple of L2 coverage accepted")
	}
	if _, err := NewGeometry(0, 4<<20, 96<<20); err == nil {
		t.Fatal("PRM smaller than data accepted")
	}
	if _, err := NewGeometry(7, 128<<20, 96<<20); err == nil {
		t.Fatal("unaligned PRM base accepted")
	}
}

func TestRegionsAreDisjointAndClassified(t *testing.T) {
	g := mustGeom(t)
	cases := []struct {
		addr dram.Addr
		want NodeKind
	}{
		{g.DataBase, KindData},
		{g.DataBase + dram.Addr(g.DataSize) - 1, KindData},
		{g.VersBase, KindVersion},
		{g.TagBase, KindTag},
		{g.LevelBase[0], KindLevel0},
		{g.LevelBase[1], KindLevel1},
		{g.LevelBase[2], KindLevel2},
		{g.LevelBase[2] + dram.Addr(g.LevelLines[2]*LineSize), KindOutside},
	}
	for _, c := range cases {
		if got := g.Classify(c.addr); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestVersionAndTagMapping(t *testing.T) {
	g := mustGeom(t)
	// Data lines within one 512 B block share a versions line and differ in slot.
	base := g.DataBase + 512*7
	for i := 0; i < 8; i++ {
		a := base + dram.Addr(i*64)
		if g.VersionLineAddr(a) != g.VersionLineAddr(base) {
			t.Fatalf("line %d left its versions line", i)
		}
		if g.VersionSlot(a) != i {
			t.Fatalf("slot for line %d = %d", i, g.VersionSlot(a))
		}
		if g.TagSlot(a) != i {
			t.Fatalf("tag slot for line %d = %d", i, g.TagSlot(a))
		}
	}
	// The next 512 B block advances the versions line by exactly one line.
	if g.VersionLineAddr(base+512) != g.VersionLineAddr(base)+LineSize {
		t.Fatal("adjacent block does not use adjacent versions line")
	}
	if g.TagLineAddr(base+512) != g.TagLineAddr(base)+LineSize {
		t.Fatal("adjacent block does not use adjacent tag line")
	}
}

func TestParentChainReachesRoot(t *testing.T) {
	g := mustGeom(t)
	addr := g.DataBase + dram.Addr(g.DataSize) - 64 // last data line
	vi := g.VersionLineIndex(addr)
	l0, s0 := g.ParentOfVersion(vi)
	if s0 != int(vi%8) {
		t.Fatalf("version parent slot %d", s0)
	}
	idx := l0
	for level := 0; level < Levels; level++ {
		parent, slot, root := g.ParentOfLevel(level, idx)
		if level == Levels-1 {
			if !root {
				t.Fatal("L2 parent should be root")
			}
			if parent >= uint64(g.RootCounters) {
				t.Fatalf("root index %d out of range %d", parent, g.RootCounters)
			}
		} else {
			if root {
				t.Fatalf("level %d should not hit root", level)
			}
			if slot != int(idx%8) || parent != idx/8 {
				t.Fatalf("level %d parent mapping wrong", level)
			}
			if parent >= g.LevelLines[level+1] {
				t.Fatalf("level %d parent %d out of range", level, parent)
			}
		}
		idx = parent
	}
}

func TestCounterLineCodecRoundTrip(t *testing.T) {
	cl := CounterLine{MAC: 0xdeadbeefcafef00d}
	for i := range cl.Counters {
		cl.Counters[i] = uint64(i+1) * 0x0123456789a % CounterMax
	}
	got := DecodeCounterLine(cl.Encode())
	if got != cl {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, cl)
	}
}

func TestCounterLineOverflowPanics(t *testing.T) {
	cl := CounterLine{}
	cl.Counters[3] = CounterMax + 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on 56-bit overflow")
		}
	}()
	cl.Encode()
}

func TestTagLineCodecRoundTrip(t *testing.T) {
	tl := TagLine{}
	for i := range tl.Tags {
		tl.Tags[i] = uint64(i) * 0xfeedface12345678
	}
	got := DecodeTagLine(tl.Encode())
	if got != tl {
		t.Fatal("tag line roundtrip mismatch")
	}
}

func TestQuickCounterLineCodec(t *testing.T) {
	f := func(vals [8]uint64, mac uint64) bool {
		var cl CounterLine
		for i, v := range vals {
			cl.Counters[i] = v & CounterMax
		}
		cl.MAC = mac
		return DecodeCounterLine(cl.Encode()) == cl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testCrypto() *Crypto {
	return NewCrypto([16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := testCrypto()
	var plain [LineSize]byte
	for i := range plain {
		plain[i] = byte(i * 3)
	}
	ct := c.EncryptLine(0x1000, 42, plain)
	if ct == plain {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := c.DecryptLine(0x1000, 42, ct); got != plain {
		t.Fatal("decrypt failed")
	}
}

func TestCiphertextDependsOnAddressAndVersion(t *testing.T) {
	c := testCrypto()
	var plain [LineSize]byte
	a := c.EncryptLine(0x1000, 1, plain)
	b := c.EncryptLine(0x1040, 1, plain)
	d := c.EncryptLine(0x1000, 2, plain)
	if a == b {
		t.Fatal("ciphertext identical across addresses")
	}
	if a == d {
		t.Fatal("ciphertext identical across versions (no freshness)")
	}
}

func TestWrongVersionDecryptsGarbage(t *testing.T) {
	c := testCrypto()
	var plain [LineSize]byte
	copy(plain[:], "secret enclave contents")
	ct := c.EncryptLine(0x2000, 7, plain)
	if got := c.DecryptLine(0x2000, 8, ct); got == plain {
		t.Fatal("replayed ciphertext decrypted cleanly under wrong version")
	}
}

func TestDataMACDetectsTamper(t *testing.T) {
	c := testCrypto()
	var ct [LineSize]byte
	copy(ct[:], "ciphertext bits")
	tag := c.DataMAC(0x3000, 5, ct)
	if tag == c.DataMAC(0x3040, 5, ct) {
		t.Fatal("MAC ignores address")
	}
	if tag == c.DataMAC(0x3000, 6, ct) {
		t.Fatal("MAC ignores version")
	}
	ct[13] ^= 1
	if tag == c.DataMAC(0x3000, 5, ct) {
		t.Fatal("MAC ignores ciphertext change")
	}
}

func TestNodeMACDetectsCounterTamperAndReplay(t *testing.T) {
	c := testCrypto()
	var counters [CountersPerLine]uint64
	for i := range counters {
		counters[i] = uint64(i) * 1111
	}
	mac := c.NodeMAC(0x4000, 99, counters)
	if mac == c.NodeMAC(0x4000, 100, counters) {
		t.Fatal("node MAC ignores parent counter (replay possible)")
	}
	counters[2]++
	if mac == c.NodeMAC(0x4000, 99, counters) {
		t.Fatal("node MAC ignores counter change")
	}
}

func TestDifferentMasterKeysDiffer(t *testing.T) {
	a := NewCrypto([16]byte{1})
	b := NewCrypto([16]byte{2})
	var plain [LineSize]byte
	if a.EncryptLine(0, 0, plain) == b.EncryptLine(0, 0, plain) {
		t.Fatal("different master keys produce identical keystreams")
	}
}
