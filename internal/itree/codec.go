package itree

import (
	"encoding/binary"
	"fmt"
)

// CounterLine is the decoded form of a versions line or an L0/L1/L2 counter
// line: eight 56-bit counters plus a 64-bit embedded MAC keyed (indirectly)
// by the covering counter one level up. The encoded wire format is exactly
// one 64 B cache line: 8 × 7-byte little-endian counters followed by the
// 8-byte MAC.
type CounterLine struct {
	Counters [CountersPerLine]uint64
	MAC      uint64
}

// Encode serializes the line into its 64-byte DRAM representation. Counters
// must fit in 56 bits.
func (cl *CounterLine) Encode() [LineSize]byte {
	var out [LineSize]byte
	for i, c := range cl.Counters {
		if c > CounterMax {
			panic(fmt.Sprintf("itree: counter %d overflows 56 bits: %#x", i, c))
		}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], c)
		copy(out[i*7:(i+1)*7], tmp[:7])
	}
	binary.LittleEndian.PutUint64(out[56:], cl.MAC)
	return out
}

// DecodeCounterLine parses a 64-byte line into counters and embedded MAC.
func DecodeCounterLine(raw [LineSize]byte) CounterLine {
	var cl CounterLine
	for i := 0; i < CountersPerLine; i++ {
		var tmp [8]byte
		copy(tmp[:7], raw[i*7:(i+1)*7])
		cl.Counters[i] = binary.LittleEndian.Uint64(tmp[:])
	}
	cl.MAC = binary.LittleEndian.Uint64(raw[56:])
	return cl
}

// TagLine is the decoded form of a PD_Tag line: eight 64-bit MAC tags, one
// per protected data line in the covered 512 B block.
type TagLine struct {
	Tags [CountersPerLine]uint64
}

// Encode serializes the tag line into its 64-byte DRAM representation.
func (tl *TagLine) Encode() [LineSize]byte {
	var out [LineSize]byte
	for i, t := range tl.Tags {
		binary.LittleEndian.PutUint64(out[i*8:], t)
	}
	return out
}

// DecodeTagLine parses a 64-byte line into eight PD_Tags.
func DecodeTagLine(raw [LineSize]byte) TagLine {
	var tl TagLine
	for i := 0; i < CountersPerLine; i++ {
		tl.Tags[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return tl
}
