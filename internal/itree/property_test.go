package itree

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"meecc/internal/dram"
)

// Property: for every protected data address, the full covering chain
// (version line → L0 → L1 → L2 → root) is well-formed: each link lands in
// the right region, slots stay in range, and the root index is valid.
func TestQuickCoveringChainWellFormed(t *testing.T) {
	g, err := NewGeometry(1<<30, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32) bool {
		addr := g.DataBase + dram.Addr(uint64(off)%g.DataSize)
		vaddr := g.VersionLineAddr(addr)
		if g.Classify(vaddr) != KindVersion {
			return false
		}
		if s := g.VersionSlot(addr); s < 0 || s >= CountersPerLine {
			return false
		}
		if g.Classify(g.TagLineAddr(addr)) != KindTag {
			return false
		}
		vi := g.VersionLineIndex(addr)
		idx, slot := g.ParentOfVersion(vi)
		if slot < 0 || slot >= CountersPerLine {
			return false
		}
		for level := 0; level < Levels; level++ {
			laddr := g.LevelLineAddr(level, idx)
			if g.Classify(laddr) != NodeKind(int(KindLevel0)+level) {
				return false
			}
			parent, pSlot, root := g.ParentOfLevel(level, idx)
			if level == Levels-1 {
				if !root || parent >= uint64(g.RootCounters) {
					return false
				}
			} else {
				if root || pSlot < 0 || pSlot >= CountersPerLine || parent >= g.LevelLines[level+1] {
					return false
				}
			}
			idx = parent
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: addresses within the same 512 B block share all covering
// metadata; addresses in different blocks never share a versions line.
func TestQuickBlockGranularity(t *testing.T) {
	g, err := NewGeometry(0, 128<<20, 96<<20)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a32, b32 uint32) bool {
		a := g.DataBase + dram.Addr(uint64(a32)%g.DataSize)
		b := g.DataBase + dram.Addr(uint64(b32)%g.DataSize)
		sameBlock := uint64(a)/512 == uint64(b)/512
		sameVers := g.VersionLineAddr(a) == g.VersionLineAddr(b)
		if sameBlock != sameVers {
			return false
		}
		// Tag lines mirror versions lines one-to-one.
		return sameVers == (g.TagLineAddr(a) == g.TagLineAddr(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: encryption is invertible and tweaked by every input: two
// random (addr, version) pairs never produce the same keystream block
// unless the pair is identical.
func TestQuickEncryptionTweaks(t *testing.T) {
	c := NewCrypto([16]byte{42})
	var zero [LineSize]byte
	f := func(a1, a2 uint32, v1, v2 uint16) bool {
		ct1 := c.EncryptLine(dram.Addr(a1)&^63, uint64(v1), zero)
		ct2 := c.EncryptLine(dram.Addr(a2)&^63, uint64(v2), zero)
		same := dram.Addr(a1)&^63 == dram.Addr(a2)&^63 && v1 == v2
		return same == (ct1 == ct2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the MAC of a random counter line changes whenever any input
// changes (address, parent counter, or any counter value).
func TestQuickNodeMACSensitivity(t *testing.T) {
	c := NewCrypto([16]byte{43})
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 200; trial++ {
		var counters [CountersPerLine]uint64
		for i := range counters {
			counters[i] = rng.Uint64() & CounterMax
		}
		addr := dram.Addr(rng.Uint64() &^ 63)
		parent := rng.Uint64() & CounterMax
		base := c.NodeMAC(addr, parent, counters)
		if c.NodeMAC(addr^64, parent, counters) == base {
			t.Fatal("MAC insensitive to address")
		}
		if c.NodeMAC(addr, parent^1, counters) == base {
			t.Fatal("MAC insensitive to parent counter")
		}
		i := rng.IntN(CountersPerLine)
		counters[i] ^= 1
		if c.NodeMAC(addr, parent, counters) == base {
			t.Fatal("MAC insensitive to counter change")
		}
	}
}
