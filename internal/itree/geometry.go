// Package itree implements the SGX-style memory integrity tree that the MEE
// (Memory Encryption Engine) maintains over the protected data region: a
// counter tree whose leaves are "versions" lines (8 × 56-bit write counters
// per 64 B line, one counter per protected data line), whose intermediate
// levels L0..L2 are 8-ary counter lines with embedded MACs, and whose root
// counters live in trusted on-die SRAM. Protected data lines are encrypted
// with AES counter mode keyed by (address, version) and authenticated with a
// PD_Tag MAC stored in companion tag lines.
//
// The package provides geometry (address mapping between data lines and
// their covering tree nodes), node codecs, and the cryptography; the walk
// ordering, caching, and timing live in the mee package.
package itree

import (
	"fmt"

	"meecc/internal/dram"
)

// Tree shape constants (Gueron, "A Memory Encryption Engine Suitable for
// General Purpose Processors", 2016; and Section 4.1 of the paper).
const (
	LineSize = 64 // every tree node and data line is one cache line
	// CountersPerLine is the tree arity: 8 × 56-bit counters fit in a line
	// alongside a 64-bit embedded MAC.
	CountersPerLine = 8
	// DataPerVersionLine: one versions line covers 8 data lines = 512 B.
	DataPerVersionLine = CountersPerLine * LineSize
	// CounterBits is the width of each version/level counter.
	CounterBits = 56
	// CounterMax is the largest representable counter value; overflow in a
	// real MEE forces re-keying, which we surface as an error.
	CounterMax = uint64(1)<<CounterBits - 1
	// Levels is the number of intermediate counter levels (L0, L1, L2)
	// between the versions lines and the SRAM root.
	Levels = 3
)

// Geometry lays out the protected data region and its integrity tree inside
// the PRM (processor-reserved memory / "MEE region") and maps addresses
// between them. All regions are line-aligned and disjoint.
type Geometry struct {
	PRMBase  dram.Addr // base of the MEE region
	PRMSize  uint64    // size of the MEE region (the paper's is 128 MB)
	DataBase dram.Addr // protected data region (enclave pages)
	DataSize uint64
	VersBase dram.Addr // versions lines, one per 512 B of data
	TagBase  dram.Addr // PD_Tag lines, one per 512 B of data
	// LevelBase[l] is the base of counter level l (L0..L2).
	LevelBase [Levels]dram.Addr
	// LevelLines[l] is the number of lines in counter level l.
	LevelLines [Levels]uint64
	// RootCounters is the number of on-die root counters (one per L2 line).
	RootCounters int
}

// NewGeometry computes the region layout for a protected data region of
// dataSize bytes placed at the start of a PRM at prmBase. dataSize must be a
// positive multiple of the L2 coverage (256 KB = 8*8*8*512 B) so that every
// level is fully populated; the default platform uses 96 MB inside a 128 MB
// PRM, matching the paper's testbed.
func NewGeometry(prmBase dram.Addr, prmSize, dataSize uint64) (Geometry, error) {
	const l2Coverage = DataPerVersionLine * CountersPerLine * CountersPerLine * CountersPerLine // 256 KB
	if dataSize == 0 || dataSize%l2Coverage != 0 {
		return Geometry{}, fmt.Errorf("itree: data size %d must be a positive multiple of %d", dataSize, l2Coverage)
	}
	if prmBase%LineSize != 0 {
		return Geometry{}, fmt.Errorf("itree: PRM base %#x not line aligned", prmBase)
	}
	g := Geometry{PRMBase: prmBase, PRMSize: prmSize, DataBase: prmBase, DataSize: dataSize}
	nVers := dataSize / DataPerVersionLine
	g.VersBase = g.DataBase + dram.Addr(dataSize)
	g.TagBase = g.VersBase + dram.Addr(nVers*LineSize)
	next := g.TagBase + dram.Addr(nVers*LineSize)
	lines := nVers
	for l := 0; l < Levels; l++ {
		lines /= CountersPerLine
		g.LevelBase[l] = next
		g.LevelLines[l] = lines
		next += dram.Addr(lines * LineSize)
	}
	g.RootCounters = int(g.LevelLines[Levels-1])
	used := uint64(next - prmBase)
	if prmSize < used {
		return Geometry{}, fmt.Errorf("itree: PRM size %d too small for data %d + tree %d", prmSize, dataSize, used-dataSize)
	}
	return g, nil
}

// ContainsData reports whether addr falls inside the protected data region.
func (g *Geometry) ContainsData(addr dram.Addr) bool {
	return addr >= g.DataBase && uint64(addr-g.DataBase) < g.DataSize
}

// TreeBytes returns the DRAM footprint of the integrity metadata (versions,
// tags, and counter levels), excluding the SRAM root.
func (g *Geometry) TreeBytes() uint64 {
	nVers := g.DataSize / DataPerVersionLine
	total := 2 * nVers * LineSize // versions + tags
	for _, n := range g.LevelLines {
		total += n * LineSize
	}
	return total
}

// dataLineIndex returns the index of the 64 B data line containing addr.
func (g *Geometry) dataLineIndex(addr dram.Addr) uint64 {
	if !g.ContainsData(addr) {
		panic(fmt.Sprintf("itree: %#x outside protected data region", addr))
	}
	return uint64(addr-g.DataBase) / LineSize
}

// VersionLineIndex returns the index of the versions line covering addr.
func (g *Geometry) VersionLineIndex(addr dram.Addr) uint64 {
	return g.dataLineIndex(addr) / CountersPerLine
}

// VersionLineAddr returns the DRAM address of the versions line covering the
// protected data address addr.
func (g *Geometry) VersionLineAddr(addr dram.Addr) dram.Addr {
	return g.VersBase + dram.Addr(g.VersionLineIndex(addr)*LineSize)
}

// VersionSlot returns which of the 8 counters in the covering versions line
// belongs to the data line at addr.
func (g *Geometry) VersionSlot(addr dram.Addr) int {
	return int(g.dataLineIndex(addr) % CountersPerLine)
}

// TagLineAddr returns the DRAM address of the PD_Tag line covering addr.
func (g *Geometry) TagLineAddr(addr dram.Addr) dram.Addr {
	return g.TagBase + dram.Addr(g.VersionLineIndex(addr)*LineSize)
}

// TagSlot returns which of the 8 MAC tags in the covering tag line belongs
// to the data line at addr; it equals VersionSlot by construction.
func (g *Geometry) TagSlot(addr dram.Addr) int { return g.VersionSlot(addr) }

// LevelLineAddr returns the DRAM address of the level-l counter line with
// the given index.
func (g *Geometry) LevelLineAddr(level int, index uint64) dram.Addr {
	if level < 0 || level >= Levels {
		panic(fmt.Sprintf("itree: bad level %d", level))
	}
	if index >= g.LevelLines[level] {
		panic(fmt.Sprintf("itree: level %d index %d out of range %d", level, index, g.LevelLines[level]))
	}
	return g.LevelBase[level] + dram.Addr(index*LineSize)
}

// ParentOfVersion returns the L0 line index and counter slot covering the
// versions line with index vi.
func (g *Geometry) ParentOfVersion(vi uint64) (l0Index uint64, slot int) {
	return vi / CountersPerLine, int(vi % CountersPerLine)
}

// ParentOfLevel returns, for the level-l line with the given index, the
// covering line index and slot at level l+1. For l == Levels-1 (L2) the
// covering counter is root counter number index, indicated by root == true.
func (g *Geometry) ParentOfLevel(level int, index uint64) (parentIndex uint64, slot int, root bool) {
	if level == Levels-1 {
		return index, 0, true
	}
	return index / CountersPerLine, int(index % CountersPerLine), false
}

// NodeKind classifies a PRM address for diagnostics and for the MEE cache's
// odd/even set placement.
type NodeKind int

const (
	KindData NodeKind = iota
	KindVersion
	KindTag
	KindLevel0
	KindLevel1
	KindLevel2
	KindOutside
)

func (k NodeKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindVersion:
		return "version"
	case KindTag:
		return "pd_tag"
	case KindLevel0:
		return "level0"
	case KindLevel1:
		return "level1"
	case KindLevel2:
		return "level2"
	default:
		return "outside"
	}
}

// Classify reports which region an address belongs to.
func (g *Geometry) Classify(addr dram.Addr) NodeKind {
	nVers := g.DataSize / DataPerVersionLine
	switch {
	case g.ContainsData(addr):
		return KindData
	case addr >= g.VersBase && addr < g.VersBase+dram.Addr(nVers*LineSize):
		return KindVersion
	case addr >= g.TagBase && addr < g.TagBase+dram.Addr(nVers*LineSize):
		return KindTag
	}
	for l := 0; l < Levels; l++ {
		if addr >= g.LevelBase[l] && addr < g.LevelBase[l]+dram.Addr(g.LevelLines[l]*LineSize) {
			return NodeKind(int(KindLevel0) + l)
		}
	}
	return KindOutside
}
