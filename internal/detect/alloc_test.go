package detect

import (
	"testing"

	"meecc/internal/cache"
	"meecc/internal/obs"
)

// sampleAllocs measures Sample() under sustained alarm-triggering eviction
// churn: every window concentrates evictions in one set, so both the window
// bookkeeping and the alarm branch execute.
func sampleAllocs(t *testing.T, o *obs.Observer) float64 {
	t.Helper()
	c := cache.New("llc", 64, 2, cache.NewLRU())
	m := NewMonitor(Config{MinEvictions: 4, HotShare: 0.3}, c)
	m.Observe(o)
	var tag cache.Tag
	churn := func() {
		for i := 0; i < 8; i++ {
			c.Insert(5, tag, false) // one hot set: conflict evictions pile up
			tag++
		}
	}
	churn()
	if !m.Sample() {
		t.Fatal("churn did not trigger the alarm path")
	}
	return testing.AllocsPerRun(100, func() {
		churn()
		m.Sample()
	})
}

// TestSampleAllocFreeWithMetrics pins the monitor's zero-allocation property
// with instrumentation disabled (Observe(nil)) and enabled: the alarm counter
// is a nil-checked plain increment and the totals surface as deferred
// samples, so neither state may allocate. (detect_test.go covers the
// never-observed monitor.)
func TestSampleAllocFreeWithMetrics(t *testing.T) {
	if n := sampleAllocs(t, nil); n != 0 {
		t.Errorf("disabled: Sample allocated %.1f times per run, want 0", n)
	}
	o := obs.NewObserver()
	if n := sampleAllocs(t, o); n != 0 {
		t.Errorf("enabled: Sample allocated %.1f times per run, want 0", n)
	}
	snap := o.Snapshot()
	if snap.Counters["detect.alarm_events"] == 0 || snap.Counters["detect.windows"] == 0 {
		t.Errorf("detect metrics missing from snapshot: %v", snap.Counters)
	}
}
