package detect

import (
	"testing"

	"meecc/internal/cache"
)

func newLLC() *cache.Cache { return cache.New("llc", 64, 4, cache.NewLRU()) }

func TestMonitorAlarmsOnConcentration(t *testing.T) {
	c := newLLC()
	cfg := Config{MinEvictions: 16, HotShare: 0.5}
	m := NewMonitor(cfg, c)
	// Hammer set 3: stride = sets*64 so every address maps to set 3.
	for i := 0; i < 40; i++ {
		c.Insert(3, cache.Tag(i*64+3), false)
	}
	if !m.Sample() {
		t.Fatal("no alarm on single-set hammering")
	}
	if m.HotSet != 3 {
		t.Fatalf("hot set %d, want 3", m.HotSet)
	}
	if m.PeakShare < 0.9 {
		t.Fatalf("peak share %.2f", m.PeakShare)
	}
}

func TestMonitorQuietOnSpreadTraffic(t *testing.T) {
	c := newLLC()
	m := NewMonitor(Config{MinEvictions: 16, HotShare: 0.5}, c)
	// Fill every set beyond capacity uniformly.
	for round := 0; round < 8; round++ {
		for s := 0; s < 64; s++ {
			c.Insert(s, cache.Tag(round*10000+s), false)
		}
	}
	if m.Sample() {
		t.Fatal("alarm on uniform traffic")
	}
}

func TestMonitorIgnoresIdleWindows(t *testing.T) {
	c := newLLC()
	m := NewMonitor(Config{MinEvictions: 16, HotShare: 0.5}, c)
	// A couple of evictions in one set, but below MinEvictions.
	for i := 0; i < 6; i++ {
		c.Insert(0, cache.Tag(i), false)
	}
	if m.Sample() {
		t.Fatal("alarm on idle window")
	}
	if m.Windows != 1 {
		t.Fatalf("windows %d", m.Windows)
	}
}

func TestMonitorWindowsAreDeltas(t *testing.T) {
	c := newLLC()
	m := NewMonitor(Config{MinEvictions: 16, HotShare: 0.5}, c)
	for i := 0; i < 40; i++ {
		c.Insert(3, cache.Tag(i*64+3), false)
	}
	m.Sample() // consumes the burst
	// Nothing new: second window must be quiet even though cumulative
	// counters are high.
	if m.Sample() {
		t.Fatal("alarm repeated without new evictions")
	}
	if got := m.AlarmRate(); got != 0.5 {
		t.Fatalf("alarm rate %.2f, want 0.5", got)
	}
}

// TestSampleAllocFree pins the monitor's steady-state zero-allocation
// property: after the first window establishes the snapshot pair, Sample
// swaps buffers instead of allocating, so a high-frequency monitor actor
// adds no GC pressure to the simulation.
func TestSampleAllocFree(t *testing.T) {
	c := newLLC()
	m := NewMonitor(DefaultConfig(), c)
	m.Sample() // first window allocates the second snapshot buffer
	var tag cache.Tag
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			c.Insert(int(tag)%c.Sets(), tag, false)
			tag++
		}
		m.Sample()
	})
	if allocs != 0 {
		t.Fatalf("Sample allocated %.1f times per window, want 0", allocs)
	}
}
