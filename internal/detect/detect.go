// Package detect implements a hardware-performance-counter attack monitor
// in the spirit of the LLC-attack defenses the paper cites (CacheShield,
// ReplayConfusion — §5.5): it samples per-set LLC conflict evictions over
// sliding windows and raises an alarm when one set's eviction rate
// dominates, the signature of conflict-set attacks like Prime+Probe.
//
// Its purpose in this repository is to make the paper's stealth claim
// operational: the detector reliably flags the LLC covert channel and sees
// nothing when the MEE-cache channel runs, because the MEE cache has no
// architectural counters to sample.
package detect

import (
	"meecc/internal/cache"
	"meecc/internal/obs"
)

// Config tunes the monitor.
type Config struct {
	// MinEvictions is the minimum evictions per window before the monitor
	// considers concentration at all (avoids alarming on idle noise).
	MinEvictions uint64
	// HotShare is the alarm threshold on the hottest set's share of all
	// conflict evictions within a window.
	HotShare float64
}

// DefaultConfig returns thresholds suitable for the simulated machine: a
// benign mix never concentrates more than a few percent of its conflict
// evictions in one of 8192 LLC sets.
func DefaultConfig() Config {
	return Config{MinEvictions: 32, HotShare: 0.3}
}

// Monitor samples a cache's per-set eviction counters over windows.
type Monitor struct {
	cfg    Config
	target *cache.Cache
	// prev and cur are the sliding pair of counter snapshots; Sample swaps
	// them instead of allocating, so a high-frequency monitor actor adds no
	// GC pressure to the simulation.
	prev []uint64
	cur  []uint64
	// Alarms counts windows that crossed the threshold.
	Alarms int
	// Windows counts observations.
	Windows int
	// PeakShare is the highest single-window concentration seen.
	PeakShare float64
	// HotSet is the set that triggered the latest alarm.
	HotSet int

	// cAlarm (nil when disabled) counts alarms on the sample hot path; the
	// window/alarm totals surface as deferred samples via Observe.
	cAlarm *obs.Counter
}

// NewMonitor attaches a monitor to a cache (typically the shared LLC).
func NewMonitor(cfg Config, target *cache.Cache) *Monitor {
	return &Monitor{
		cfg:    cfg,
		target: target,
		prev:   target.EvictionsBySet(),
	}
}

// Observe attaches an observer: window and alarm totals become deferred
// samples, peak concentration is exported in parts per million (snapshots
// carry integers only), and the Sample hot path gains one nil-checked alarm
// counter. Safe to call with nil.
func (m *Monitor) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	o.Sample("detect.windows", obs.Semantic, func() uint64 { return uint64(m.Windows) })
	o.Sample("detect.alarms", obs.Semantic, func() uint64 { return uint64(m.Alarms) })
	o.Sample("detect.peak_share_ppm", obs.Semantic, func() uint64 { return uint64(m.PeakShare * 1e6) })
	m.cAlarm = o.Counter("detect.alarm_events")
}

// Sample closes the current observation window: it diffs the per-set
// eviction counters against the previous sample and evaluates the alarm
// condition. Call it periodically (e.g. every 100k cycles via a platform
// actor).
func (m *Monitor) Sample() (alarmed bool) {
	cur := m.target.EvictionsBySetInto(m.cur)
	var total, hottest uint64
	hotSet := -1
	for s := range cur {
		d := cur[s] - m.prev[s]
		total += d
		if d > hottest {
			hottest, hotSet = d, s
		}
	}
	m.prev, m.cur = cur, m.prev
	m.Windows++
	if total < m.cfg.MinEvictions {
		return false
	}
	share := float64(hottest) / float64(total)
	if share > m.PeakShare {
		m.PeakShare = share
	}
	if share >= m.cfg.HotShare {
		m.Alarms++
		m.HotSet = hotSet
		m.cAlarm.Inc()
		return true
	}
	return false
}

// AlarmRate is the fraction of windows that alarmed.
func (m *Monitor) AlarmRate() float64 {
	if m.Windows == 0 {
		return 0
	}
	return float64(m.Alarms) / float64(m.Windows)
}
