package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 {
		t.Error("nil histogram has observations")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry handed out instruments")
	}
	r.Sample("x", Semantic, func() uint64 { return 1 })
	if r.Snapshot() != nil || r.SnapshotAll() != nil {
		t.Error("nil registry produced a snapshot")
	}
	var o *Observer
	if o.Counter("x") != nil || o.DiagnosticCounter("x") != nil ||
		o.Histogram("x") != nil || o.Tracer() != nil ||
		o.Snapshot() != nil || o.SnapshotAll() != nil {
		t.Error("nil observer is not fully inert")
	}
	o.Sample("x", Semantic, func() uint64 { return 1 })
	if o.WithTracer(16) != nil {
		t.Error("WithTracer on nil observer returned non-nil")
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("mee.reads")
	b := r.Counter("mee.reads")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("shared counter value %d, want 3", a.Value())
	}
}

func TestSnapshotClassFiltering(t *testing.T) {
	r := NewRegistry()
	r.Counter("sem").Add(5)
	r.DiagnosticCounter("diag").Add(9)
	r.Counter("zero") // untouched: must be omitted
	r.Sample("sample.sem", Semantic, func() uint64 { return 11 })
	r.Sample("sample.diag", Diagnostic, func() uint64 { return 13 })

	s := r.Snapshot()
	if s.Counters["sem"] != 5 || s.Counters["sample.sem"] != 11 {
		t.Errorf("semantic snapshot %v", s.Counters)
	}
	for _, name := range []string{"diag", "sample.diag", "zero"} {
		if _, ok := s.Counters[name]; ok {
			t.Errorf("%s leaked into the semantic snapshot", name)
		}
	}
	all := r.SnapshotAll()
	if all.Counters["diag"] != 9 || all.Counters["sample.diag"] != 13 {
		t.Errorf("full snapshot %v", all.Counters)
	}
}

func TestSampleRefoldsOnReRegistration(t *testing.T) {
	r := NewRegistry()
	v := uint64(10)
	r.Sample("g", Semantic, func() uint64 { return v })
	v = 25
	// A second component takes over the name: the old fn's final value (25)
	// folds into the baseline and the new fn accumulates on top.
	w := uint64(0)
	r.Sample("g", Semantic, func() uint64 { return w })
	w = 5
	if got := r.Snapshot().Counters["g"]; got != 30 {
		t.Fatalf("refolded sample = %d, want 30", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 7 || s.Min != -5 || s.Max != 100 || s.Sum != 105 {
		t.Fatalf("summary %+v", s)
	}
	want := map[int64]uint64{ // lo -> count
		0:  2, // 0 and -5
		1:  1, // 1
		2:  2, // 2, 3
		4:  1, // 4
		64: 1, // 100
	}
	for _, b := range s.Buckets {
		if want[b.Lo] != b.Count {
			t.Errorf("bucket [%d,%d] count %d, want %d", b.Lo, b.Hi, b.Count, want[b.Lo])
		}
		delete(want, b.Lo)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets %v", want)
	}
}

func TestSnapshotEncodeCanonicalAndDecodes(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name).Add(uint64(len(name)))
		}
		r.Histogram("h").Observe(9)
		return r.Snapshot().Encode()
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	if !bytes.Equal(a, b) {
		t.Fatalf("registration order changed encoding:\n%s\n---\n%s", a, b)
	}
	dec, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Counters["alpha"] != 5 || dec.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost data: %+v", dec)
	}
	if _, err := DecodeSnapshot([]byte(`{"schema_version": 999}`)); err == nil {
		t.Error("wrong schema version accepted")
	}
	if _, err := DecodeSnapshot([]byte(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
	var nilSnap *Snapshot
	if nilSnap.Encode() != nil {
		t.Error("nil snapshot encoded to bytes")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(3)
	h.Observe(2)
	prev := r.Snapshot()
	c.Add(4)
	h.Observe(2)
	h.Observe(100)
	d := r.Snapshot().Diff(prev)
	if d.Counters["c"] != 4 {
		t.Errorf("counter delta %d, want 4", d.Counters["c"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 102 {
		t.Errorf("histogram delta %+v", dh)
	}
	var lo2, lo64 uint64
	for _, b := range dh.Buckets {
		switch b.Lo {
		case 2:
			lo2 = b.Count
		case 64:
			lo64 = b.Count
		}
	}
	if lo2 != 1 || lo64 != 1 {
		t.Errorf("delta buckets %+v", dh.Buckets)
	}
	// Diff against nil passes everything through.
	full := r.Snapshot().Diff(nil)
	if full.Counters["c"] != 7 {
		t.Errorf("diff vs nil = %v", full.Counters)
	}
	// Unchanged counters are dropped.
	same := r.Snapshot().Diff(r.Snapshot())
	if len(same.Counters) != 0 || len(same.Histograms) != 0 {
		t.Errorf("self-diff not empty: %+v", same)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("bits").Add(10)
	b := NewRegistry()
	b.Counter("bits").Add(20)
	b.Histogram("lat").Observe(4)
	s := NewSnapshot()
	s.Merge("static.", a.Snapshot())
	s.Merge("adaptive.", b.Snapshot())
	if s.Counters["static.bits"] != 10 || s.Counters["adaptive.bits"] != 20 {
		t.Errorf("merged counters %v", s.Counters)
	}
	if s.Histograms["adaptive.lat"].Count != 1 {
		t.Errorf("merged histograms %v", s.Histograms)
	}
	s.Merge("x.", nil) // must not panic
}

func TestSnapshotRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.busy_cycles").Add(50)
	r.Counter("sim.clock").Add(200)
	r.Counter("mee.reads").Add(7)
	r.Histogram("mee.read_latency").Observe(33)
	var buf bytes.Buffer
	r.Snapshot().Render(&buf)
	out := buf.String()
	for _, want := range []string{"mee.reads", "sim.utilization", "25.0%", "mee.read_latency", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	NewSnapshot().Render(&empty)
	if !strings.Contains(empty.String(), "no metrics") {
		t.Errorf("empty render = %q", empty.String())
	}
}
