// Package obs is the simulator's observability layer: a metrics registry of
// plain-struct counters and histograms, and a sim-clock timeline tracer with
// Chrome trace-event (Perfetto) export.
//
// The registry is built for a single-threaded discrete-event simulation. The
// sim engine serializes all actor execution, so instruments are plain uint64
// fields — no atomics, no mutexes, no interface dispatch on the hot path.
// Every instrument method is nil-receiver safe: code instruments itself
// unconditionally, and when observability is disabled (the default) the
// instrument pointers are nil and each call is a predictable nil-check that
// the zero-alloc hot paths pinned by the AllocsPerRun tests can absorb.
//
// Instruments come in two classes:
//
//   - Semantic: schedule-invariant facts of the simulation (cache hits, bits
//     decoded, stall cycles). These are byte-identical across worker counts
//     and across the heap and linear schedulers, and are what Snapshot()
//     returns — the form embedded in experiment artifacts.
//   - Diagnostic: facts about how the engine executed the schedule (actor
//     resumes, run-ahead batch truncations). These legitimately differ
//     between schedulers and are only included by SnapshotAll(), the form
//     used for single-run -metrics reports.
package obs

import "math/bits"

// Class partitions instruments by determinism contract; see the package
// comment.
type Class uint8

const (
	// Semantic instruments are schedule-invariant and appear in Snapshot().
	Semantic Class = iota
	// Diagnostic instruments depend on scheduler internals and appear only
	// in SnapshotAll().
	Diagnostic
)

// Counter is a monotonically increasing event count. The zero value is not
// useful; obtain counters from a Registry. A nil *Counter is a no-op, which
// is how disabled instrumentation stays near-free.
type Counter struct {
	name  string
	class Class
	v     uint64
}

// Inc adds one to the counter. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n to the counter. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// histBuckets is 1 (values <= 0) + one bucket per possible bit length of a
// positive int64 value.
const histBuckets = 1 + 64

// Histogram accumulates a distribution of int64 values in power-of-two
// buckets: bucket 0 holds values <= 0, bucket b (b >= 1) holds values with
// bit length b, i.e. [2^(b-1), 2^b - 1]. Fixed-size arrays keep Observe
// allocation-free; a nil *Histogram is a no-op.
type Histogram struct {
	name     string
	class    Class
	n        uint64
	sum      int64
	min, max int64
	counts   [histBuckets]uint64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.counts[b]++
}

// Count returns the number of observed values (0 for a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// sample is a deferred gauge: fn is evaluated only at snapshot time, so
// existing Stats structs can be surfaced with zero hot-path cost. When the
// same name is re-registered (a later platform in the same process reusing
// one observer — chaos arms, retries), the old fn's final value is folded
// into base so sequential runs accumulate instead of vanishing.
type sample struct {
	name  string
	class Class
	base  uint64
	fn    func() uint64
}

func (s *sample) value() uint64 { return s.base + s.fn() }

// Registry owns the instruments for one observed run. It is not safe for
// concurrent use — the sim engine serializes all actor execution, and each
// experiment trial builds its own registry. A nil *Registry hands out nil
// instruments, so callers never need their own enable checks.
type Registry struct {
	counters   []*Counter
	counterIdx map[string]int
	hists      []*Histogram
	histIdx    map[string]int
	samples    []*sample
	sampleIdx  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counterIdx: make(map[string]int),
		histIdx:    make(map[string]int),
		sampleIdx:  make(map[string]int),
	}
}

// Counter returns the semantic counter with the given name, creating it on
// first use. Repeated calls with one name return the same counter, so
// sequential platforms sharing a registry accumulate into it. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	return r.counter(name, Semantic)
}

// DiagnosticCounter is Counter for scheduler-dependent event counts; the
// result is excluded from Snapshot() (see Class).
func (r *Registry) DiagnosticCounter(name string) *Counter {
	return r.counter(name, Diagnostic)
}

func (r *Registry) counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	if i, ok := r.counterIdx[name]; ok {
		return r.counters[i]
	}
	c := &Counter{name: name, class: class}
	r.counterIdx[name] = len(r.counters)
	r.counters = append(r.counters, c)
	return c
}

// Histogram returns the semantic histogram with the given name, creating it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if i, ok := r.histIdx[name]; ok {
		return r.hists[i]
	}
	h := &Histogram{name: name, class: Semantic}
	r.histIdx[name] = len(r.hists)
	r.hists = append(r.hists, h)
	return h
}

// Sample registers a deferred gauge evaluated at snapshot time. If name is
// already registered, the previous fn's current value is folded into a
// baseline first, so a fresh component replacing an old one (new platform,
// same registry) reports the sum of both. No-op on a nil registry.
func (r *Registry) Sample(name string, class Class, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	if i, ok := r.sampleIdx[name]; ok {
		s := r.samples[i]
		s.base = s.value()
		s.fn = fn
		return
	}
	r.sampleIdx[name] = len(r.samples)
	r.samples = append(r.samples, &sample{name: name, class: class, fn: fn})
}

// Snapshot captures the current value of every Semantic instrument. The
// result is byte-identical (via Snapshot.Encode) across worker counts and
// schedulers, and is the form embedded in exp artifacts. Returns nil on a
// nil registry.
func (r *Registry) Snapshot() *Snapshot { return r.snapshot(false) }

// SnapshotAll captures every instrument including Diagnostic ones. Use for
// single-run reports where scheduler internals are interesting.
func (r *Registry) SnapshotAll() *Snapshot { return r.snapshot(true) }

func (r *Registry) snapshot(diagnostics bool) *Snapshot {
	if r == nil {
		return nil
	}
	s := NewSnapshot()
	for _, c := range r.counters {
		if c.v == 0 || (c.class == Diagnostic && !diagnostics) {
			continue
		}
		s.Counters[c.name] = c.v
	}
	for _, sm := range r.samples {
		if sm.class == Diagnostic && !diagnostics {
			continue
		}
		if v := sm.value(); v != 0 {
			s.Counters[sm.name] = v
		}
	}
	for _, h := range r.hists {
		if h.n == 0 || (h.class == Diagnostic && !diagnostics) {
			continue
		}
		hs := HistogramSnapshot{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max}
		for b, n := range h.counts {
			if n == 0 {
				continue
			}
			lo, hi := int64(0), int64(0)
			if b > 0 {
				lo = int64(1) << (b - 1)
				hi = lo<<1 - 1
			}
			hs.Buckets = append(hs.Buckets, HistBucket{Lo: lo, Hi: hi, Count: n})
		}
		s.Histograms[h.name] = hs
	}
	return s
}

// Observer bundles a metrics registry with an optional timeline tracer; it
// is the single handle threaded through platform/core configuration. All
// methods are safe on a nil receiver — a nil *Observer IS the disabled
// state.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
}

// NewObserver returns an observer with a fresh registry and no tracer.
func NewObserver() *Observer { return &Observer{Reg: NewRegistry()} }

// WithTracer attaches a preallocated ring-buffer tracer (see NewTracer) and
// returns the observer for chaining.
func (o *Observer) WithTracer(capacity int) *Observer {
	if o != nil {
		o.Trace = NewTracer(capacity)
	}
	return o
}

// Counter returns a semantic counter (nil when disabled).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// DiagnosticCounter returns a diagnostic counter (nil when disabled).
func (o *Observer) DiagnosticCounter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.DiagnosticCounter(name)
}

// Histogram returns a semantic histogram (nil when disabled).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name)
}

// Sample registers a deferred gauge (no-op when disabled).
func (o *Observer) Sample(name string, class Class, fn func() uint64) {
	if o == nil {
		return
	}
	o.Reg.Sample(name, class, fn)
}

// Tracer returns the attached tracer, or nil.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Snapshot returns the semantic snapshot of the registry (nil when
// disabled).
func (o *Observer) Snapshot() *Snapshot {
	if o == nil {
		return nil
	}
	return o.Reg.Snapshot()
}

// SnapshotAll returns the full snapshot including diagnostics (nil when
// disabled).
func (o *Observer) SnapshotAll() *Snapshot {
	if o == nil {
		return nil
	}
	return o.Reg.SnapshotAll()
}
