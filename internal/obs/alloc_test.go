package obs

import "testing"

// The hot-path contract: emission into live instruments never allocates, in
// both the enabled and disabled (nil) states. Setup paths (Name, Track,
// registry lookups) are allowed to allocate.

func TestEmissionAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	tr := NewTracer(8)
	name := tr.Name("e")
	track := tr.Track("t")

	cases := map[string]func(){
		"counter.inc":      func() { c.Inc() },
		"counter.add":      func() { c.Add(3) },
		"histogram":        func() { h.Observe(1234) },
		"tracer.slice":     func() { tr.Slice(track, name, 1, 2) },
		"tracer.instant":   func() { tr.Instant(track, name, 1, 2) },
		"tracer.count":     func() { tr.Count(name, 1, 2) },
		"nil.counter":      func() { (*Counter)(nil).Inc() },
		"nil.histogram":    func() { (*Histogram)(nil).Observe(1) },
		"nil.tracer.slice": func() { (*Tracer)(nil).Slice(0, 0, 1, 2) },
	}
	for label, fn := range cases {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", label, n)
		}
	}
	// The ring keeps absorbing emissions allocation-free after wrapping.
	if n := testing.AllocsPerRun(200, func() { tr.Instant(track, name, 9, 9) }); n != 0 {
		t.Errorf("wrapped ring: %v allocs/op, want 0", n)
	}
}

func TestSnapshotOfEmptyRegistryIsStable(t *testing.T) {
	a := NewRegistry().Snapshot().Encode()
	b := NewRegistry().Snapshot().Encode()
	if string(a) != string(b) {
		t.Fatalf("empty snapshots differ:\n%s\n---\n%s", a, b)
	}
}
