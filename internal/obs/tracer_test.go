package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	n := tr.Name("e")
	k := tr.Track("a")
	for i := int64(0); i < 6; i++ {
		tr.Instant(k, n, i, i)
	}
	if tr.Len() != 4 {
		t.Fatalf("len %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", tr.Dropped())
	}
	// The surviving window is the most recent: timestamps 2..5.
	for i := 0; i < tr.Len(); i++ {
		if got := tr.at(i).ts; got != int64(i+2) {
			t.Errorf("event %d ts %d, want %d", i, got, i+2)
		}
	}
}

func TestTracerInterningAndNilSafety(t *testing.T) {
	var nilT *Tracer
	if nilT.Name("x") != 0 || nilT.Track("x") != 0 {
		t.Error("nil tracer interned")
	}
	nilT.Slice(0, 0, 1, 2)
	nilT.Instant(0, 0, 1, 2)
	nilT.Count(0, 1, 2)
	nilT.SetCyclesPerMicrosecond(1)
	if nilT.Len() != 0 || nilT.Dropped() != 0 {
		t.Error("nil tracer recorded")
	}
	if err := nilT.WriteChromeJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer exported")
	}
	if err := nilT.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer exported CSV")
	}

	tr := NewTracer(8)
	if a, b := tr.Name("same"), tr.Name("same"); a != b {
		t.Error("name interning not stable")
	}
	if a, b := tr.Track("same"), tr.Track("same"); a != b {
		t.Error("track interning not stable")
	}
}

// buildTrace assembles a small trace covering every event kind.
func buildTrace() *Tracer {
	tr := NewTracer(64)
	tr.SetCyclesPerMicrosecond(4000) // 4 GHz
	spy := tr.Track("spy")
	victim := tr.Track("victim")
	batch := tr.Name("batch")
	probe := tr.Name("probe")
	hits := tr.Name("mee.hit_level")
	tr.Slice(spy, batch, 0, 4000)
	tr.Slice(victim, batch, 4000, 8000)
	tr.Instant(spy, probe, 12000, 42)
	tr.Count(hits, 12000, 3)
	return tr
}

// TestChromeJSONGoldenSchema pins the trace-event layout: phases, pid/tid
// assignment, metadata tracks, and microsecond scaling. This is the schema
// Perfetto consumes; changes here are breaking.
func TestChromeJSONGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", got.DisplayTimeUnit)
	}
	// metadata: process_name + 2 tracks x (thread_name + thread_sort_index),
	// then 4 payload events.
	if len(got.TraceEvents) != 1+2*2+4 {
		t.Fatalf("%d events, want 9", len(got.TraceEvents))
	}
	byPhase := map[string][]map[string]any{}
	for _, ev := range got.TraceEvents {
		ph := ev["ph"].(string)
		byPhase[ph] = append(byPhase[ph], ev)
		if int(ev["pid"].(float64)) != tracePid {
			t.Errorf("event %v has pid %v", ev["name"], ev["pid"])
		}
	}
	if len(byPhase["M"]) != 5 || len(byPhase["X"]) != 2 || len(byPhase["i"]) != 1 || len(byPhase["C"]) != 1 {
		t.Fatalf("phase histogram M=%d X=%d i=%d C=%d",
			len(byPhase["M"]), len(byPhase["X"]), len(byPhase["i"]), len(byPhase["C"]))
	}
	// Slices: 4000 cycles at 4 GHz = 1 us.
	sl := byPhase["X"][0]
	if sl["ts"].(float64) != 0 || *jsonNum(sl, "dur") != 1 {
		t.Errorf("slice scaling: ts=%v dur=%v", sl["ts"], sl["dur"])
	}
	if int(sl["tid"].(float64)) != 1 { // first interned track
		t.Errorf("slice tid %v, want 1", sl["tid"])
	}
	// Instant carries scope and args.value.
	in := byPhase["i"][0]
	if in["s"].(string) != "t" {
		t.Errorf("instant scope %v", in["s"])
	}
	if v := in["args"].(map[string]any)["value"].(float64); v != 42 {
		t.Errorf("instant arg %v", v)
	}
	// Counter has args.value and no tid.
	c := byPhase["C"][0]
	if c["name"].(string) != "mee.hit_level" {
		t.Errorf("counter name %v", c["name"])
	}
	if _, hasTid := c["tid"]; hasTid {
		t.Error("counter event carries a tid")
	}
	if v := c["args"].(map[string]any)["value"].(float64); v != 3 {
		t.Errorf("counter value %v", v)
	}
}

func jsonNum(ev map[string]any, key string) *float64 {
	if v, ok := ev[key].(float64); ok {
		return &v
	}
	return nil
}

func TestValidateChromeTraceAcceptsExport(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Slices != 2 || sum.Instants != 1 {
		t.Errorf("summary %+v", sum)
	}
	if len(sum.Tracks) != 2 || sum.Tracks[0] != "spy" || sum.Tracks[1] != "victim" {
		t.Errorf("tracks %v", sum.Tracks)
	}
	if len(sum.Counters) != 1 || sum.Counters[0] != "mee.hit_level" {
		t.Errorf("counters %v", sum.Counters)
	}
	if sum.LastUs != 3 { // last event at 12000 cycles / 4000 = 3 us
		t.Errorf("lastUs %v, want 3", sum.LastUs)
	}
	var rep bytes.Buffer
	sum.Render(&rep)
	for _, want := range []string{"spy, victim", "mee.hit_level", "3.0 us"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("summary render missing %q:\n%s", want, rep.String())
		}
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not JSON":       `nope`,
		"empty events":   `{"traceEvents":[]}`,
		"unknown phase":  `{"traceEvents":[{"name":"thread_name","ph":"M","args":{"name":"a"}},{"name":"x","ph":"Z"}]}`,
		"slice sans dur": `{"traceEvents":[{"name":"thread_name","ph":"M","args":{"name":"a"}},{"name":"x","ph":"X","ts":1,"tid":1}]}`,
		"no tracks":      `{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`,
		"counter no val": `{"traceEvents":[{"name":"thread_name","ph":"M","args":{"name":"a"}},{"name":"x","ph":"C","ts":1,"args":{}}]}`,
	}
	for label, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "ts_cycles,kind,track,name,value" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1+4 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	if lines[1] != "0,slice,spy,batch,4000" {
		t.Errorf("first row %q", lines[1])
	}
	if lines[4] != "12000,counter,,mee.hit_level,3" {
		t.Errorf("counter row %q", lines[4])
	}
}
