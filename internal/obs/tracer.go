package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefaultTraceCap is the default ring capacity: 1<<18 events at 32 bytes
// each is an 8 MiB fixed budget, enough for roughly 250k scheduler batches —
// several fig6b transmissions — before the ring starts overwriting.
const DefaultTraceCap = 1 << 18

// NameID is an interned event-name handle; intern once at setup with
// Tracer.Name, then emit by ID so the hot path never touches strings.
type NameID int32

// TrackID is an interned timeline-track handle (one track per actor, plus
// synthetic tracks such as "faults" and "channel").
type TrackID int32

// event kinds stored in the ring.
const (
	evSlice uint8 = iota // duration event: ts..ts+dur on a track
	evInstant
	evCounter // process-wide counter sample; track unused
)

// event is one fixed-size ring entry. For slices arg is the duration in
// cycles; for counters it is the sampled value; for instants it is a free
// argument (latency, fault intensity, ...).
type event struct {
	ts    int64
	arg   int64
	name  NameID
	track TrackID
	kind  uint8
}

// Tracer records sim-clock-stamped events into a preallocated ring buffer.
// When the ring is full the oldest events are overwritten, so a trace always
// holds the most recent window of activity and recording never allocates.
// Emission methods are nil-receiver safe; Name/Track may allocate and are
// meant for setup, not the hot path.
type Tracer struct {
	events  []event
	head, n int
	dropped uint64

	names    []string
	nameIdx  map[string]NameID
	tracks   []string
	trackIdx map[string]TrackID

	cyclesPerUs float64
}

// NewTracer returns a tracer with a preallocated ring of the given capacity
// (DefaultTraceCap when capacity <= 0). Timestamps export as microseconds
// assuming 4 GHz until SetCyclesPerMicrosecond overrides it.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{
		events:      make([]event, capacity),
		nameIdx:     make(map[string]NameID),
		trackIdx:    make(map[string]TrackID),
		cyclesPerUs: 4000,
	}
}

// SetCyclesPerMicrosecond sets the cycle-to-wall-time scale used on export
// (FreqGHz * 1000). No-op on a nil tracer or non-positive scale.
func (t *Tracer) SetCyclesPerMicrosecond(c float64) {
	if t != nil && c > 0 {
		t.cyclesPerUs = c
	}
}

// Name interns an event name and returns its ID (0 on a nil tracer).
func (t *Tracer) Name(s string) NameID {
	if t == nil {
		return 0
	}
	if id, ok := t.nameIdx[s]; ok {
		return id
	}
	id := NameID(len(t.names))
	t.names = append(t.names, s)
	t.nameIdx[s] = id
	return id
}

// Track interns a timeline track (rendered as one Perfetto thread) and
// returns its ID (0 on a nil tracer).
func (t *Tracer) Track(s string) TrackID {
	if t == nil {
		return 0
	}
	if id, ok := t.trackIdx[s]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, s)
	t.trackIdx[s] = id
	return id
}

func (t *Tracer) push(e event) {
	if len(t.events) == 0 {
		return
	}
	if t.n < len(t.events) {
		t.events[(t.head+t.n)%len(t.events)] = e
		t.n++
		return
	}
	t.events[t.head] = e
	t.head = (t.head + 1) % len(t.events)
	t.dropped++
}

// Slice records a duration event [start, start+dur] on a track. Safe on a
// nil receiver; never allocates.
func (t *Tracer) Slice(track TrackID, name NameID, start, dur int64) {
	if t == nil {
		return
	}
	t.push(event{ts: start, arg: dur, name: name, track: track, kind: evSlice})
}

// Instant records a point event with one free argument. Safe on a nil
// receiver; never allocates.
func (t *Tracer) Instant(track TrackID, name NameID, ts, arg int64) {
	if t == nil {
		return
	}
	t.push(event{ts: ts, arg: arg, name: name, track: track, kind: evInstant})
}

// Count records a process-wide counter sample (rendered as a Perfetto
// counter track). Safe on a nil receiver; never allocates.
func (t *Tracer) Count(name NameID, ts, value int64) {
	if t == nil {
		return
	}
	t.push(event{ts: ts, arg: value, name: name, kind: evCounter})
}

// Len returns the number of buffered events (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// at returns the i-th buffered event in recording order.
func (t *Tracer) at(i int) event { return t.events[(t.head+i)%len(t.events)] }

// ts converts a cycle stamp to trace microseconds.
func (t *Tracer) us(cycles int64) float64 { return float64(cycles) / t.cyclesPerUs }

// chromeEvent is one entry of the Chrome trace-event JSON array; fields
// follow the trace-event format spec (ph X = complete slice, i = instant,
// C = counter, M = metadata).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid,omitempty"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object Perfetto loads.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const tracePid = 1

// WriteChromeJSON exports the buffered events as Chrome trace-event JSON
// loadable in Perfetto or chrome://tracing: one thread track per interned
// track (named via thread_name metadata), plus counter tracks for Count
// events. Timestamps are microseconds of simulated wall time.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "meecc-sim"},
	})
	for id, name := range t.tracks {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: id + 1,
				Args: map[string]any{"name": name},
			},
			chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: tracePid, Tid: id + 1,
				Args: map[string]any{"sort_index": id},
			})
	}
	for i := 0; i < t.n; i++ {
		e := t.at(i)
		name := t.names[e.name]
		switch e.kind {
		case evSlice:
			dur := t.us(e.arg)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Pid: tracePid, Tid: int(e.track) + 1,
				Ts: t.us(e.ts), Dur: &dur,
			})
		case evInstant:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "i", Pid: tracePid, Tid: int(e.track) + 1,
				Ts: t.us(e.ts), Scope: "t",
				Args: map[string]any{"value": e.arg},
			})
		case evCounter:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "C", Pid: tracePid,
				Ts:   t.us(e.ts),
				Args: map[string]any{"value": e.arg},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteCSV exports the buffered events as a compact CSV with cycle-accurate
// timestamps: ts_cycles,kind,track,name,value (value = duration for slices,
// sampled value for counters, free argument for instants).
func (t *Tracer) WriteCSV(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "ts_cycles,kind,track,name,value")
	kinds := [...]string{evSlice: "slice", evInstant: "instant", evCounter: "counter"}
	for i := 0; i < t.n; i++ {
		e := t.at(i)
		track := ""
		if e.kind != evCounter {
			track = t.tracks[e.track]
		}
		fmt.Fprintf(bw, "%d,%s,%s,%s,%d\n", e.ts, kinds[e.kind], track, t.names[e.name], e.arg)
	}
	return bw.Flush()
}

// TraceSummary describes a parsed Chrome trace for inspect-style reports.
type TraceSummary struct {
	Events   int
	Slices   int
	Instants int
	Tracks   []string // thread tracks, by thread_name metadata
	Counters []string // counter tracks, by name
	LastUs   float64  // timestamp of the latest event, microseconds
}

// ValidateChromeTrace checks that data is well-formed Chrome trace-event
// JSON as produced by WriteChromeJSON: a non-empty traceEvents array whose
// events carry a known phase, names, timestamps where required, and at least
// one named thread track. It returns a summary for rendering.
func ValidateChromeTrace(data []byte) (*TraceSummary, error) {
	var raw struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("trace JSON: %w", err)
	}
	if len(raw.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace JSON: empty traceEvents array")
	}
	sum := &TraceSummary{Events: len(raw.TraceEvents)}
	counters := map[string]bool{}
	str := func(ev map[string]json.RawMessage, key string) (string, error) {
		var s string
		r, ok := ev[key]
		if !ok {
			return "", fmt.Errorf("missing %q", key)
		}
		if err := json.Unmarshal(r, &s); err != nil {
			return "", fmt.Errorf("field %q: %w", key, err)
		}
		return s, nil
	}
	num := func(ev map[string]json.RawMessage, key string) (float64, error) {
		var f float64
		r, ok := ev[key]
		if !ok {
			return 0, fmt.Errorf("missing %q", key)
		}
		if err := json.Unmarshal(r, &f); err != nil {
			return 0, fmt.Errorf("field %q: %w", key, err)
		}
		return f, nil
	}
	for i, ev := range raw.TraceEvents {
		name, err := str(ev, "name")
		if err != nil {
			return nil, fmt.Errorf("event %d: %v", i, err)
		}
		ph, err := str(ev, "ph")
		if err != nil {
			return nil, fmt.Errorf("event %d (%s): %v", i, name, err)
		}
		switch ph {
		case "M":
			if name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				if err := json.Unmarshal(ev["args"], &args); err != nil || args.Name == "" {
					return nil, fmt.Errorf("event %d: thread_name metadata without args.name", i)
				}
				sum.Tracks = append(sum.Tracks, args.Name)
			}
		case "X":
			ts, err := num(ev, "ts")
			if err != nil {
				return nil, fmt.Errorf("event %d (%s): %v", i, name, err)
			}
			dur, err := num(ev, "dur")
			if err != nil || dur < 0 {
				return nil, fmt.Errorf("event %d (%s): slice needs dur >= 0", i, name)
			}
			if _, err := num(ev, "tid"); err != nil {
				return nil, fmt.Errorf("event %d (%s): slice needs tid", i, name)
			}
			sum.Slices++
			if end := ts + dur; end > sum.LastUs {
				sum.LastUs = end
			}
		case "i":
			ts, err := num(ev, "ts")
			if err != nil {
				return nil, fmt.Errorf("event %d (%s): %v", i, name, err)
			}
			sum.Instants++
			if ts > sum.LastUs {
				sum.LastUs = ts
			}
		case "C":
			ts, err := num(ev, "ts")
			if err != nil {
				return nil, fmt.Errorf("event %d (%s): %v", i, name, err)
			}
			var args struct {
				Value *float64 `json:"value"`
			}
			if err := json.Unmarshal(ev["args"], &args); err != nil || args.Value == nil {
				return nil, fmt.Errorf("event %d (%s): counter needs args.value", i, name)
			}
			counters[name] = true
			if ts > sum.LastUs {
				sum.LastUs = ts
			}
		default:
			return nil, fmt.Errorf("event %d (%s): unknown phase %q", i, name, ph)
		}
	}
	if len(sum.Tracks) == 0 {
		return nil, fmt.Errorf("trace JSON: no thread_name metadata (no actor tracks)")
	}
	for name := range counters {
		sum.Counters = append(sum.Counters, name)
	}
	sort.Strings(sum.Counters)
	return sum, nil
}

// Render writes the summary as a short text report.
func (s *TraceSummary) Render(w io.Writer) {
	fmt.Fprintf(w, "events:   %d (%d slices, %d instants)\n", s.Events, s.Slices, s.Instants)
	fmt.Fprintf(w, "span:     %.1f us simulated\n", s.LastUs)
	fmt.Fprintf(w, "tracks:   %s\n", strings.Join(s.Tracks, ", "))
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "counters: %s\n", strings.Join(s.Counters, ", "))
	}
}
