package ops

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a sample name (which for histograms
// carries the _bucket/_sum/_count suffix), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed exposition. It is the shared consumer-side half of
// the format: `meecc top` renders dashboards from it and the CI smoke
// asserts required families through it, so the encoder and every consumer
// agree on one grammar.
type Scrape struct {
	// Types maps family name → TYPE (counter, gauge, histogram).
	Types map[string]string
	// Samples maps sample name → every series parsed under that name.
	Samples map[string][]Sample
}

// ParseText parses a Prometheus text-format exposition. Unknown comment
// lines are skipped; malformed sample lines are errors (a scrape that cannot
// be trusted should fail loudly, not render a half-dashboard).
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: map[string]string{}, Samples: map[string][]Sample{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				sc.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("ops: exposition line %d: %w", lineNo, err)
		}
		sc.Samples[sample.Name] = append(sc.Samples[sample.Name], sample)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ops: reading exposition: %w", err)
	}
	return sc, nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample %q has no name", line)
	}
	// A timestamp may trail the value; take the first field as the value.
	if fields := strings.Fields(rest); len(fields) > 0 {
		rest = fields[0]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseValue parses a sample value, accepting the format's +Inf/-Inf/NaN
// spellings.
func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses `k="v",k2="v2"` into dst, unescaping values.
func parseLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return fmt.Errorf("label %q value unterminated", key)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
			} else {
				val.WriteByte(c)
			}
			i++
		}
		dst[key] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(rest)
	}
	return nil
}

// Has reports whether the scrape contains the family: either a TYPE line or
// at least one sample under the name (histograms match their base name).
func (sc *Scrape) Has(family string) bool {
	if _, ok := sc.Types[family]; ok {
		return true
	}
	if _, ok := sc.Samples[family]; ok {
		return true
	}
	_, ok := sc.Samples[family+"_count"]
	return ok
}

// Value sums every series of the sample name (counters and gauges; pass
// name_count/name_sum for histogram aggregates). Missing names return 0.
func (sc *Scrape) Value(name string) float64 {
	var total float64
	for _, s := range sc.Samples[name] {
		total += s.Value
	}
	return total
}

// Families returns every family name seen, sorted.
func (sc *Scrape) Families() []string {
	seen := map[string]bool{}
	for name := range sc.Types {
		seen[name] = true
	}
	for name := range sc.Samples {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		seen[base] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the histogram family
// from its cumulative buckets, merging every label set, with the standard
// linear interpolation inside the winning bucket. It returns 0 when the
// histogram is absent or empty, and the highest finite bound when the
// quantile lands in the +Inf bucket.
func (sc *Scrape) Quantile(family string, q float64) float64 {
	type bucket struct {
		le  float64
		cum float64
	}
	byLE := map[float64]float64{}
	for _, s := range sc.Samples[family+"_bucket"] {
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += s.Value
	}
	if len(byLE) == 0 {
		return 0
	}
	buckets := make([]bucket, 0, len(byLE))
	for le, cum := range byLE {
		buckets = append(buckets, bucket{le, cum})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	target := q * total
	for i, b := range buckets {
		if b.cum < target {
			continue
		}
		if math.IsInf(b.le, 1) {
			if i == 0 {
				return 0
			}
			return buckets[i-1].le
		}
		lo, prevCum := 0.0, 0.0
		if i > 0 {
			lo = buckets[i-1].le
			prevCum = buckets[i-1].cum
		}
		inBucket := b.cum - prevCum
		if inBucket <= 0 {
			return b.le
		}
		return lo + (b.le-lo)*(target-prevCum)/inBucket
	}
	return buckets[len(buckets)-1].le
}
