// Package ops is the wall-clock operational telemetry layer for the serve
// service and the machinery under it. It is deliberately distinct from its
// parent package obs: obs measures *sim-clock* behavior inside one trial and
// feeds deterministic artifacts, while ops measures *wall-clock* behavior of
// the process serving those trials — request latencies, queue depths, journal
// health — and feeds operators. Nothing in this package may ever flow into an
// experiment artifact; the byte-identity tests run with ops fully enabled to
// prove the separation holds.
//
// The registry hands out lock-free instruments (atomic counters, gauges, and
// fixed-bucket histograms — increments are wait-free and allocation-free,
// pinned by AllocsPerRun tests) and exposes them in the Prometheus text
// format, so any scraper, `curl`, or the bundled `meecc top` dashboard can
// read a live server. Instruments are nil-receiver safe like their obs
// counterparts: a nil *Registry hands out nil instruments and every method on
// them is a no-op, so instrumented code needs no enable checks.
package ops

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Instrument types, for the TYPE exposition line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing count. Inc/Add are wait-free and
// allocation-free; a nil *Counter is a no-op.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down (queue depth, busy
// seconds). Set is a plain atomic store; Add is a CAS loop. Both are
// allocation-free; a nil *Gauge is a no-op.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (negative to subtract). Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DurationBuckets is the default histogram layout for wall-clock latencies:
// 10µs up to 60s, roughly 1-2.5-5 per decade. Prometheus convention: each
// value is an inclusive upper bound in seconds; +Inf is implicit.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the default layout for byte sizes: 64 B up to 1 GiB in
// powers of four.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864, 268435456, 1073741824,
}

// Histogram accumulates a distribution into fixed cumulative-export buckets.
// Observe is wait-free per bucket (one atomic add for the bucket, the count,
// and a CAS for the float sum) and allocation-free. A nil *Histogram is a
// no-op.
type Histogram struct {
	labels  string
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bounds are few (≤ ~21): linear scan beats binary search in practice
	// and keeps the code branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. Safe on a nil
// receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// series is one labeled instance of a family.
type series struct {
	labels string // rendered `k="v",k2="v2"` form, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // gauge funcs, evaluated at scrape
}

// family is one exposition family: a name, HELP/TYPE metadata, and its
// labeled series.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          []*series
	byLabels        map[string]*series
}

// Registry owns a process's operational instruments and renders them in
// Prometheus text format. Instrument registration takes a mutex; the
// instruments themselves are lock-free. All methods are safe for concurrent
// use and safe on a nil receiver (which hands out nil no-op instruments).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels turns ("k","v","k2","v2") pairs into `k="v",k2="v2"`.
// Odd-length or empty input renders as unlabeled. Values are escaped per the
// exposition format.
func renderLabels(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the (family, series) slot, enforcing one type per
// name. The instrument is created (and fn installed or replaced) under the
// family mutex, so registration can race freely with concurrent scrapes. A
// type conflict is a programming error and panics loudly — it would otherwise
// emit an exposition no parser accepts.
func (r *Registry) lookup(name, help, typ, labels string, bounds []float64, fn func() float64) *series {
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.typ != typ {
		panic(fmt.Sprintf("ops: metric %q registered as %s and %s", name, f.typ, typ))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.byLabels[labels]
	if !ok {
		s = &series{labels: labels}
		switch typ {
		case typeCounter:
			s.c = &Counter{labels: labels}
		case typeGauge:
			s.g = &Gauge{labels: labels}
		case typeHistogram:
			s.h = &Histogram{labels: labels, bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
		}
		f.byLabels[labels] = s
		f.series = append(f.series, s)
	}
	if fn != nil {
		s.fn = fn
	}
	return s
}

// Counter returns the counter with the given name and label pairs, creating
// it on first use. Repeated calls return the same counter. Nil registries
// return nil (no-op) counters.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, renderLabels(labelPairs), nil, nil).c
}

// Gauge returns the gauge with the given name and label pairs, creating it
// on first use. Nil registries return nil (no-op) gauges.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, renderLabels(labelPairs), nil, nil).g
}

// GaugeFunc registers a gauge evaluated at scrape time — the hook for
// surfacing existing stats (store bytes, journal size, goroutine counts)
// with zero steady-state cost. Re-registering a name+labels replaces the
// function, so a component restarted within one process reports its new
// state. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil || fn == nil {
		return
	}
	r.lookup(name, help, typeGauge, renderLabels(labelPairs), nil, fn)
}

// Histogram returns the histogram with the given name, bucket upper bounds
// (nil means DurationBuckets), and label pairs, creating it on first use.
// Nil registries return nil (no-op) histograms.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.lookup(name, help, typeHistogram, renderLabels(labelPairs), bounds, nil).h
}

// snapshotFamilies returns the families sorted by name with their series
// sorted by label string — the deterministic order WriteText renders.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
