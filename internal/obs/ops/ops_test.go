package ops

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text-format output for a registry with
// one of each instrument kind: families sorted by name, HELP/TYPE once per
// family, series sorted by label string, histograms with cumulative buckets
// plus _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", "handler", "submit", "code", "202").Add(3)
	r.Counter("test_requests_total", "Requests served.", "handler", "events", "code", "200").Inc()
	r.Gauge("test_queue_depth", "Runs waiting for a slot.").Set(2)
	r.GaugeFunc("test_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	h := r.Histogram("test_trial_seconds", "Trial wall time.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(42)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_queue_depth Runs waiting for a slot.
# TYPE test_queue_depth gauge
test_queue_depth 2
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{handler="events",code="200"} 1
test_requests_total{handler="submit",code="202"} 3
# HELP test_trial_seconds Trial wall time.
# TYPE test_trial_seconds histogram
test_trial_seconds_bucket{le="0.1"} 1
test_trial_seconds_bucket{le="1"} 3
test_trial_seconds_bucket{le="10"} 3
test_trial_seconds_bucket{le="+Inf"} 4
test_trial_seconds_sum 43.05
test_trial_seconds_count 4
# HELP test_uptime_seconds Seconds since start.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12.5
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseRoundTrip feeds WriteText output back through ParseText: every
// family must come back with its type, values, and labels intact — the
// contract `meecc top` and the CI scrape assertion rely on.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_runs_total", "Runs.", "outcome", "done").Add(7)
	r.Counter("rt_runs_total", "Runs.", "outcome", "failed").Add(2)
	r.Gauge("rt_active", "Active runs.").Set(1.5)
	h := r.Histogram("rt_latency_seconds", "Latency.", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.003)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for family, typ := range map[string]string{
		"rt_runs_total":      "counter",
		"rt_active":          "gauge",
		"rt_latency_seconds": "histogram",
	} {
		if !sc.Has(family) {
			t.Errorf("family %s missing from scrape", family)
		}
		if got := sc.Types[family]; got != typ {
			t.Errorf("family %s type %q, want %q", family, got, typ)
		}
	}
	if got := sc.Value("rt_runs_total"); got != 9 {
		t.Errorf("rt_runs_total sums to %v, want 9", got)
	}
	if got := sc.Value("rt_active"); got != 1.5 {
		t.Errorf("rt_active %v, want 1.5", got)
	}
	if got := sc.Value("rt_latency_seconds_count"); got != 100 {
		t.Errorf("histogram count %v, want 100", got)
	}
	var done Sample
	for _, s := range sc.Samples["rt_runs_total"] {
		if s.Labels["outcome"] == "done" {
			done = s
		}
	}
	if done.Value != 7 {
		t.Errorf("outcome=done sample %v, want 7", done.Value)
	}
}

// TestParseRejectsGarbage: sample lines that are not samples must fail, not
// silently render as zeroes.
func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		`unterminated{le="0.1 3` + "\n",
		"name not-a-number\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
	// Comments and blank lines are fine.
	sc, err := ParseText(strings.NewReader("# arbitrary comment\n\nok_total 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Value("ok_total") != 3 {
		t.Error("valid sample lost")
	}
}

// TestQuantile checks the bucket-interpolation estimate on a known
// distribution, including the +Inf clamp and label merging.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4})
	// 100 observations uniform in (0,1]: p50 ≈ 0.5 by interpolation.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	sc, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Quantile("q_seconds", 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := sc.Quantile("q_seconds", 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("p100 = %v, want 1 (bucket upper bound)", got)
	}
	if got := sc.Quantile("absent_seconds", 0.5); got != 0 {
		t.Errorf("absent histogram quantile = %v, want 0", got)
	}

	// Observations past the last bound land in +Inf; the quantile clamps to
	// the highest finite bound instead of reporting infinity.
	h2 := r.Histogram("q2_seconds", "", []float64{1, 2})
	h2.Observe(100)
	buf.Reset()
	r.WriteText(&buf)
	sc, err = ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Quantile("q2_seconds", 0.99); got != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want 2", got)
	}
}

// TestScrapeWhileUpdating hammers every instrument from writer goroutines
// while scraping concurrently — under -race this is the proof the lock-free
// instruments and the exposition path can overlap safely.
func TestScrapeWhileUpdating(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_ops_total", "")
	g := r.Gauge("race_depth", "")
	h := r.Histogram("race_seconds", "", nil)
	r.GaugeFunc("race_fn", "", func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%10) / 100)
				// Registration races with scrapes too.
				r.Counter("race_dynamic_total", "", "w", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Error(err)
		}
		if _, err := ParseText(&buf); err != nil {
			t.Errorf("scrape %d unparseable: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	r.WriteText(&buf)
	sc, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Value("race_ops_total") != float64(c.Value()) {
		t.Error("final scrape lost counter increments")
	}
	if got := sc.Value("race_seconds_count"); got != float64(h.Count()) {
		t.Errorf("histogram count %v, want %v", got, h.Count())
	}
}

// TestNilRegistrySafety: a nil registry and its nil instruments must be
// complete no-ops, the disabled-telemetry mode every instrumented package
// relies on.
func TestNilRegistrySafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "").Inc()
	r.Counter("x_total", "").Add(5)
	r.Gauge("x", "").Set(1)
	r.Gauge("x", "").Add(1)
	r.Histogram("x_seconds", "", nil).Observe(1)
	r.GaugeFunc("x_fn", "", func() float64 { return 1 })
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(3)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
}

// TestTypeConflictPanics: registering one name as two types is a programming
// error that must fail fast, not emit a malformed exposition.
func TestTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("conflict_total", "")
	r.Gauge("conflict_total", "")
}
