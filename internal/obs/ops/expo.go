package ops

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package writes and parses.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every instrument in the Prometheus text exposition
// format: families sorted by name, each with one HELP and TYPE line, series
// sorted by label string. Gauge funcs are evaluated here, at scrape time.
// Safe on a nil registry (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		// Snapshot the series AND their fn pointers under the family lock:
		// GaugeFunc may replace fn concurrently, and the fns themselves are
		// evaluated outside the lock (they may take other mutexes).
		type renderSeries struct {
			s  *series
			fn func() float64
		}
		f.mu.Lock()
		series := make([]renderSeries, len(f.series))
		for i, s := range f.series {
			series[i] = renderSeries{s: s, fn: s.fn}
		}
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].s.labels < series[j].s.labels })

		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')

		for _, rs := range series {
			s := rs.s
			switch {
			case s.h != nil:
				writeHistogram(bw, f.name, s)
			case rs.fn != nil:
				writeSample(bw, f.name, s.labels, formatFloat(rs.fn()))
			case s.c != nil:
				writeSample(bw, f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
			case s.g != nil:
				writeSample(bw, f.name, s.labels, formatFloat(s.g.Value()))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative `_bucket{le=...}`, `_sum`, and
// `_count` series of one histogram.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	h := s.h
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(bw, name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bound)+`"`), strconv.FormatUint(cum, 10))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(bw, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
	writeSample(bw, name+"_sum", s.labels, formatFloat(h.Sum()))
	writeSample(bw, name+"_count", s.labels, strconv.FormatUint(h.count.Load(), 10))
}

// joinLabels merges a series' base labels with an extra `le=...` label.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// formatFloat renders a float compactly ("0.25", "1e+06") the way the
// exposition format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics. Safe on a nil registry (serves an empty exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		r.WriteText(w)
	})
}
