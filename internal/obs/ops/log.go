package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("ops: unknown log level %q (want debug, info, warn, or error)", s)
}

// Format selects the log line encoding.
type Format int8

const (
	// FormatText emits logfmt-style `ts=... level=... msg=... k=v` lines.
	FormatText Format = iota
	// FormatJSON emits one JSON object per line.
	FormatJSON
)

// ParseFormat parses "text" or "json".
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "logfmt":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("ops: unknown log format %q (want text or json)", s)
}

// Logger is a leveled structured logger: every line is a message plus
// key=value fields, as logfmt text or JSON. With carries per-run/request
// context fields to child loggers. Writes are serialized through one mutex
// shared by the whole With tree; a nil *Logger discards everything, which is
// how disabled logging stays free of call-site checks.
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	min  Level
	form Format
	base []any // alternating key, value context fields

	// now is the wall clock, overridable by tests for golden output.
	now func() time.Time
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level, form Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, form: form, now: time.Now}
}

// With returns a child logger whose lines carry the given key/value pairs
// (alternating key, value — keys must be strings) ahead of per-line fields.
// Safe on a nil receiver.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]any(nil), l.base...), kv...)
	return &child
}

// Debug logs at debug level. Safe on a nil receiver.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level. Safe on a nil receiver.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level. Safe on a nil receiver.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level. Safe on a nil receiver.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.min {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var line []byte
	if l.form == FormatJSON {
		line = l.jsonLine(ts, level, msg, kv)
	} else {
		line = l.textLine(ts, level, msg, kv)
	}
	l.mu.Lock()
	l.w.Write(line)
	l.mu.Unlock()
}

// textLine renders one logfmt line.
func (l *Logger) textLine(ts string, level Level, msg string, kv []any) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts)
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	writeTextFields := func(kv []any) {
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprint(kv[i]))
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(fmt.Sprint(kv[i+1])))
		}
	}
	writeTextFields(l.base)
	writeTextFields(kv)
	b.WriteByte('\n')
	return []byte(b.String())
}

// jsonLine renders one JSON object line. Field order is fixed (ts, level,
// msg, then context and per-line fields in argument order).
func (l *Logger) jsonLine(ts string, level Level, msg string, kv []any) []byte {
	var b strings.Builder
	b.WriteString(`{"ts":`)
	b.WriteString(strconv.Quote(ts))
	b.WriteString(`,"level":`)
	b.WriteString(strconv.Quote(level.String()))
	b.WriteString(`,"msg":`)
	b.WriteString(strconv.Quote(msg))
	writeJSONFields := func(kv []any) {
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(fmt.Sprint(kv[i])))
			b.WriteByte(':')
			b.Write(jsonValue(kv[i+1]))
		}
	}
	writeJSONFields(l.base)
	writeJSONFields(kv)
	b.WriteString("}\n")
	return []byte(b.String())
}

// jsonValue encodes a field value, falling back to its string form for
// anything json.Marshal rejects.
func jsonValue(v any) []byte {
	if data, err := json.Marshal(v); err == nil {
		return data
	}
	data, _ := json.Marshal(fmt.Sprint(v))
	return data
}

// quoteIfNeeded quotes a logfmt value containing spaces, quotes, or '='.
func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
