package ops

import (
	"io"
	"testing"
	"time"
)

// BenchmarkMetricsExposition measures a full WriteText scrape of a registry
// sized like a live meecc serve: a few dozen families, labeled series, and
// several histograms — the cost a Prometheus poller imposes per scrape.
func BenchmarkMetricsExposition(b *testing.B) {
	r := NewRegistry()
	for _, name := range []string{
		"meecc_serve_runs_submitted_total", "meecc_serve_trials_executed_total",
		"meecc_serve_trials_memoized_total", "meecc_journal_appends_total",
		"meecc_snapstore_puts_total", "meecc_snapstore_gets_total",
	} {
		r.Counter(name, "bench counter").Add(12345)
	}
	for _, code := range []string{"200", "202", "404", "429"} {
		r.Counter("meecc_http_requests_total", "bench", "handler", "submit", "code", code).Add(99)
	}
	r.Gauge("meecc_serve_queue_depth", "bench").Set(3)
	r.Gauge("meecc_serve_runs_active", "bench").Set(2)
	r.GaugeFunc("meecc_process_uptime_seconds", "bench", func() float64 { return 1234.5 })
	for _, name := range []string{
		"meecc_serve_run_seconds", "meecc_serve_queue_wait_seconds",
		"meecc_serve_trial_seconds", "meecc_journal_append_seconds",
		"meecc_snapstore_put_seconds", "meecc_http_request_seconds",
	} {
		h := r.Histogram(name, "bench histogram", nil)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%200) / 1000)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterInc pins the hot-path update cost alongside the zero-alloc
// test.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve covers the per-trial latency recording path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}
