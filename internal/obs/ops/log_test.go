package ops

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins the logger's timestamp so output is golden-comparable.
func fixedClock() time.Time {
	return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
}

func newTestLogger(buf *bytes.Buffer, min Level, form Format) *Logger {
	l := NewLogger(buf, min, form)
	l.now = fixedClock
	return l
}

func TestLoggerTextGolden(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LevelDebug, FormatText)
	l.Info("run admitted", "run", "r-0001", "queue_depth", 3)
	l.Warn("journal append failed", "err", "disk full: no space")
	l.With("run", "r-0002").Error("run failed", "trials", 12)

	want := `ts=2026-08-07T12:00:00Z level=info msg="run admitted" run=r-0001 queue_depth=3
ts=2026-08-07T12:00:00Z level=warn msg="journal append failed" err="disk full: no space"
ts=2026-08-07T12:00:00Z level=error msg="run failed" run=r-0002 trials=12
`
	if got := buf.String(); got != want {
		t.Errorf("text log mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLoggerJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LevelInfo, FormatJSON)
	l.With("run", "r-0003").Info("artifact ready", "bytes", 4096, "memo_hit", true)

	want := `{"ts":"2026-08-07T12:00:00Z","level":"info","msg":"artifact ready","run":"r-0003","bytes":4096,"memo_hit":true}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("json log mismatch:\n got %s want %s", got, want)
	}
	// Every JSON line must actually be valid JSON.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if m["run"] != "r-0003" || m["memo_hit"] != true {
		t.Errorf("decoded fields wrong: %v", m)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LevelWarn, FormatText)
	l.Debug("dropped")
	l.Info("dropped")
	l.Warn("kept")
	l.Error("kept")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("got %d lines, want 2:\n%s", got, buf.String())
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Error("below-threshold lines were written")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if child := l.With("run", "r"); child != nil {
		t.Error("nil logger's With returned non-nil")
	}
}

func TestLoggerConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	l := newTestLogger(&buf, LevelInfo, FormatText)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := l.With("worker", w)
			for i := 0; i < 100; i++ {
				child.Info("tick", "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	// No interleaving: every line is whole.
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn log line: %q", line)
		}
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Errorf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) did not fail")
	}
}
