package ops

import (
	"bytes"
	"testing"
	"time"

	"meecc/internal/obs"
)

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(4)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		r.Record("run-1", "run", "step", base.Add(time.Duration(i)*time.Second), time.Second)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 (ring cap)", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	spans := r.Spans("run-1")
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	// Oldest surviving span is i=2.
	if !spans[0].Start.Equal(base.Add(2 * time.Second)) {
		t.Errorf("ring kept wrong spans: first start %v", spans[0].Start)
	}
}

func TestSpanRecorderFilterByRun(t *testing.T) {
	r := NewSpanRecorder(16)
	base := time.Now()
	r.Record("a", "run", "queue", base, time.Millisecond)
	r.Record("b", "run", "queue", base, time.Millisecond)
	r.Record("a", "slot-0", "trial", base, time.Millisecond)
	if got := len(r.Spans("a")); got != 2 {
		t.Errorf("Spans(a) = %d, want 2", got)
	}
	if got := len(r.Spans("")); got != 3 {
		t.Errorf("Spans(\"\") = %d, want 3", got)
	}
	var nilRec *SpanRecorder
	nilRec.Record("x", "t", "n", base, 0)
	if nilRec.Spans("") != nil || nilRec.Len() != 0 || nilRec.Dropped() != 0 {
		t.Error("nil recorder not a no-op")
	}
}

// TestChromeTraceValidates exports a realistic run lifecycle and checks it
// with the same structural validator the sim-clock traces use — the
// acceptance bar from PR 4 reused for wall-clock traces.
func TestChromeTraceValidates(t *testing.T) {
	r := NewSpanRecorder(64)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	r.Record("run-7", "run", "queue", base, 30*time.Millisecond)
	r.Record("run-7", "run", "execute", base.Add(30*time.Millisecond), 400*time.Millisecond)
	r.Record("run-7", "slot-0", "trial cellA/0", base.Add(35*time.Millisecond), 120*time.Millisecond)
	r.Record("run-7", "slot-1", "trial cellA/1", base.Add(36*time.Millisecond), 90*time.Millisecond)
	r.Record("run-7", "slot-0", "memo cellA/2", base.Add(160*time.Millisecond), time.Millisecond)
	r.Record("run-7", "run", "artifact", base.Add(430*time.Millisecond), 5*time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Spans("run-7")); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails ValidateChromeTrace: %v\n%s", err, buf.String())
	}
	if sum.Slices != 6 {
		t.Errorf("trace summary has %d slices, want 6", sum.Slices)
	}
}

func TestChromeTraceEmptyErrors(t *testing.T) {
	if err := WriteChromeTrace(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty span list exported without error")
	}
}
