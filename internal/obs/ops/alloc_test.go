package ops

import "testing"

// The hot-path pins: instrument updates sit on serve's per-request and
// per-trial paths, so they must not allocate. AllocsPerRun fails the build of
// any change that adds an allocation to Inc/Set/Add/Observe.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_ops_total", "")
	g := r.Gauge("alloc_depth", "")
	h := r.Histogram("alloc_seconds", "", nil)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

// Re-fetching an already-registered instrument is the steady-state path for
// labeled counters at call sites that cannot cache the handle; it may not be
// zero-alloc (label rendering), but the unlabeled fast path should be cheap.
func TestLookupIsStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("stable_total", "", "k", "v")
	b := r.Counter("stable_total", "", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
}
