package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one wall-clock interval of a run's lifecycle: submit→admit→queue→
// dispatch→per-trial execute/memo-replay→artifact. Run groups the spans of
// one service run; Track is the timeline row the span renders on (the run
// row, or a trial slot).
type Span struct {
	Run   string
	Track string
	Name  string
	Start time.Time
	Dur   time.Duration
}

// SpanRecorder keeps the most recent spans in a fixed ring, mirroring the
// sim-clock tracer's shape: recording is cheap and bounded, old spans are
// overwritten, and the buffer exports as Chrome trace-event JSON that passes
// the same ValidateChromeTrace structural check as PR 4's sim traces. A nil
// *SpanRecorder is a no-op.
type SpanRecorder struct {
	mu      sync.Mutex
	spans   []Span
	head, n int
	dropped uint64
}

// DefaultSpanCap bounds the default ring: 16k spans covers thousands of
// runs' lifecycles before overwriting.
const DefaultSpanCap = 1 << 14

// NewSpanRecorder returns a recorder with a ring of the given capacity
// (DefaultSpanCap when capacity <= 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRecorder{spans: make([]Span, capacity)}
}

// Record appends one span. Safe on a nil receiver and for concurrent use.
func (r *SpanRecorder) Record(run, track, name string, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	sp := Span{Run: run, Track: track, Name: name, Start: start, Dur: dur}
	r.mu.Lock()
	if r.n < len(r.spans) {
		r.spans[(r.head+r.n)%len(r.spans)] = sp
		r.n++
	} else {
		r.spans[r.head] = sp
		r.head = (r.head + 1) % len(r.spans)
		r.dropped++
	}
	r.mu.Unlock()
}

// Spans returns the buffered spans for one run in recording order (run == ""
// returns everything). Nil recorders return nil.
func (r *SpanRecorder) Spans(run string) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for i := 0; i < r.n; i++ {
		sp := r.spans[(r.head+i)%len(r.spans)]
		if run == "" || sp.Run == run {
			out = append(out, sp)
		}
	}
	return out
}

// Len returns the number of buffered spans (0 on a nil recorder).
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many spans were overwritten after the ring filled.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// spanChromeEvent mirrors the trace-event JSON shape obs.WriteChromeJSON
// emits, so ops traces load in Perfetto and validate with
// obs.ValidateChromeTrace exactly like sim-clock traces do.
type spanChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON: one thread per
// distinct Track (in order of first appearance), timestamps in microseconds
// relative to the earliest span. An empty span list is an error — an empty
// trace is useless and ValidateChromeTrace rejects it anyway.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("ops: no spans to export")
	}
	epoch := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(epoch) {
			epoch = sp.Start
		}
	}
	const pid = 1
	events := []spanChromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "meecc-serve"},
	}}
	tids := map[string]int{}
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; ok {
			continue
		}
		tid := len(tids) + 1
		tids[sp.Track] = tid
		events = append(events,
			spanChromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": sp.Track},
			},
			spanChromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"sort_index": tid - 1},
			})
	}
	for _, sp := range spans {
		dur := float64(sp.Dur.Microseconds())
		if dur < 0 {
			dur = 0
		}
		args := map[string]any{}
		if sp.Run != "" {
			args["run"] = sp.Run
		}
		events = append(events, spanChromeEvent{
			Name: sp.Name, Ph: "X", Pid: pid, Tid: tids[sp.Track],
			Ts:  float64(sp.Start.Sub(epoch).Microseconds()),
			Dur: &dur, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
