package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SnapshotSchemaVersion identifies the snapshot JSON layout. Bump on any
// incompatible change; golden-schema tests pin the current version.
const SnapshotSchemaVersion = 1

// HistBucket is one populated power-of-two bucket: values in [Lo, Hi].
type HistBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serialized state of one histogram. Only populated
// buckets are listed, in ascending order.
type HistogramSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time capture of a registry. Encoding is canonical:
// encoding/json sorts map keys, so two snapshots with equal contents encode
// to identical bytes regardless of registration order, worker count, or
// scheduler. Zero-valued instruments are omitted, which keeps artifacts
// from runs that never touched a subsystem small and stable.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`

	// canon caches the canonical indented encoding, set the first time the
	// snapshot is encoded (or adopted from the wire by DecodeSnapshot).
	// Re-encoding a committed snapshot — memo replay, artifact assembly —
	// then splices bytes instead of re-sorting and re-marshalling the maps.
	// Mutators must clear it.
	canon []byte
}

// NewSnapshot returns an empty snapshot at the current schema version.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Counters:      make(map[string]uint64),
		Histograms:    make(map[string]HistogramSnapshot),
	}
}

// snapshotFields strips Snapshot's methods so the encoder below can fall
// back to the plain struct encoding without recursing into MarshalJSON.
type snapshotFields Snapshot

// MarshalJSON embeds the snapshot in enclosing documents (artifacts). With
// the canonical bytes cached it compacts them instead of re-marshalling the
// maps; the output is byte-identical either way (encoding/json sorts map
// keys and escapes identically in both forms).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	if s.canon == nil {
		return json.Marshal((*snapshotFields)(s))
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, s.canon); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode renders the snapshot as canonical indented JSON with a trailing
// newline, caching the bytes on the snapshot so later encodes are a slice
// return. Returns nil for a nil snapshot.
func (s *Snapshot) Encode() []byte {
	if s == nil {
		return nil
	}
	if s.canon == nil {
		data, err := json.MarshalIndent((*snapshotFields)(s), "", "  ")
		if err != nil {
			// Snapshot contains only maps of scalars; Marshal cannot fail.
			panic(err)
		}
		s.canon = append(data, '\n')
	}
	return s.canon
}

// DecodeSnapshot parses a snapshot produced by Encode and validates its
// schema version. The input is adopted as the decoded snapshot's cached
// canonical form — Encode's output is the only wire format, so replaying a
// committed snapshot (journal recovery, memo hits) does no JSON work.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if s.SchemaVersion != SnapshotSchemaVersion {
		return nil, fmt.Errorf("snapshot schema version %d, want %d", s.SchemaVersion, SnapshotSchemaVersion)
	}
	s.canon = append([]byte(nil), data...)
	return &s, nil
}

// Diff returns s minus prev as a new snapshot: counter-wise subtraction,
// histogram count/sum/bucket subtraction (Min/Max are taken from s — a
// histogram cannot un-observe). Names absent from prev pass through; names
// whose delta is zero are dropped. prev may be nil.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	d := NewSnapshot()
	for name, v := range s.Counters {
		var p uint64
		if prev != nil {
			p = prev.Counters[name]
		}
		if v > p {
			d.Counters[name] = v - p
		}
	}
	for name, h := range s.Histograms {
		var p HistogramSnapshot
		if prev != nil {
			p = prev.Histograms[name]
		}
		if h.Count <= p.Count {
			continue
		}
		prevAt := make(map[int64]uint64, len(p.Buckets))
		for _, b := range p.Buckets {
			prevAt[b.Lo] = b.Count
		}
		dh := HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		for _, b := range h.Buckets {
			if n := b.Count - prevAt[b.Lo]; n > 0 {
				dh.Buckets = append(dh.Buckets, HistBucket{Lo: b.Lo, Hi: b.Hi, Count: n})
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Merge copies every instrument of other into s under prefix+name,
// overwriting on collision. Used to combine per-arm snapshots (chaos static
// vs. adaptive) into one artifact block. No-op when s or other is nil.
func (s *Snapshot) Merge(prefix string, other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	s.canon = nil // contents change; drop the cached encoding
	for name, v := range other.Counters {
		s.Counters[prefix+name] = v
	}
	for name, h := range other.Histograms {
		s.Histograms[prefix+name] = h
	}
}

// Render writes a human-readable text report: counters sorted by name, then
// histograms with count/mean/min/max and a bucket breakdown. When the sim
// utilization inputs are present (sim.busy_cycles and sim.clock) a derived
// utilization line is included.
func (s *Snapshot) Render(w io.Writer) {
	if s == nil {
		fmt.Fprintln(w, "(no metrics collected)")
		return
	}
	if len(s.Counters) == 0 && len(s.Histograms) == 0 {
		fmt.Fprintln(w, "(no metrics collected)")
		return
	}
	names := make([]string, 0, len(s.Counters))
	width := 0
	for name := range s.Counters {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-*s %12d\n", width, name, s.Counters[name])
	}
	if busy, ok := s.Counters["sim.busy_cycles"]; ok {
		if clock := s.Counters["sim.clock"]; clock > 0 {
			fmt.Fprintf(w, "%-*s %11.1f%%\n", width, "sim.utilization",
				100*float64(busy)/float64(clock))
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		mean := float64(h.Sum) / float64(h.Count)
		fmt.Fprintf(w, "\n%s: count=%d mean=%.1f min=%d max=%d\n", name, h.Count, mean, h.Min, h.Max)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "  [%8d, %8d] %10d\n", b.Lo, b.Hi, b.Count)
		}
	}
}
