package core

import "meecc/internal/sim"

// runChannelRetrying runs the channel, retrying setup failures (monitor
// discovery or Algorithm 1 can fail on an unlucky seed) under fresh
// conditions — what a real attacker does by simply starting over.
func runChannelRetrying(opts Options, window sim.Cycles, bits []byte) (*ChannelResult, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		seed := opts.Seed + uint64(attempt)*2654435761
		cfg := DefaultChannelConfig(seed)
		cfg.Options = opts
		cfg.Options.Seed = seed
		cfg.Window = window
		cfg.Bits = bits
		res, err := RunChannel(cfg)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// StealthRow compares one attack's detector-visible footprint.
type StealthRow struct {
	Attack             string
	Bits               int
	ErrorRate          float64
	LLCEvictionsPerBit float64
	// LLCHottestShare is the concentration of LLC conflict evictions in a
	// single set — the signature LLC-attack detectors (CacheShield,
	// ReplayConfusion et al., paper §5.5) key on.
	LLCHottestShare float64
	MEEReadsPerBit  float64
}

// StealthStudy quantifies the paper's stealth argument (§1, §5.5): the MEE
// channel's conflict pattern lives in the MEE cache, which no performance
// counter exposes, while a classic LLC Prime+Probe channel concentrates
// its evictions on one LLC set. Both channels transmit the same payload;
// the table reports their transmission-phase footprints.
func StealthStudy(opts Options, window sim.Cycles, nbits int) ([]StealthRow, error) {
	bits := RandomBits(opts.Seed, nbits)

	meeRes, err := runChannelRetrying(opts, window, bits)
	if err != nil {
		return nil, err
	}

	llcCfg := DefaultChannelConfig(opts.Seed + 1)
	llcCfg.Options = opts
	llcCfg.Options.Seed = opts.Seed + 1
	llcCfg.Bits = bits
	llcRes, err := RunLLCChannel(llcCfg)
	if err != nil {
		return nil, err
	}

	n := float64(nbits)
	return []StealthRow{
		{
			Attack:             "mee-cache-channel",
			Bits:               nbits,
			ErrorRate:          meeRes.ErrorRate,
			LLCEvictionsPerBit: float64(meeRes.Footprint.LLCEvictions) / n,
			LLCHottestShare:    meeRes.Footprint.LLCHottestShare,
			MEEReadsPerBit:     float64(meeRes.Footprint.MEEReads) / n,
		},
		{
			Attack:             "llc-prime-probe",
			Bits:               nbits,
			ErrorRate:          llcRes.ErrorRate,
			LLCEvictionsPerBit: float64(llcRes.Footprint.LLCEvictions) / n,
			LLCHottestShare:    llcRes.Footprint.LLCHottestShare,
			MEEReadsPerBit:     float64(llcRes.Footprint.MEEReads) / n,
		},
	}, nil
}
