package core

import (
	"testing"
)

func TestBuildChannelConfigParsesParams(t *testing.T) {
	cfg, err := BuildChannelConfig(map[string]string{
		"window":     "20000",
		"bits":       "48",
		"pattern":    "100",
		"noise":      "mee4k",
		"policy":     "bit-plru",
		"epc":        "fragmented",
		"repetition": "3",
		"twophase":   "false",
		"probephase": "0.5",
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Window != 20000 || len(cfg.Bits) != 48 || cfg.Noise != NoiseMEE4K ||
		cfg.Options.MEEPolicy != "bit-plru" || cfg.Repetition != 3 ||
		cfg.TwoPhaseEviction || cfg.ProbePhase != 0.5 || cfg.Options.Seed != 99 {
		t.Errorf("config %+v", cfg)
	}
	for i, b := range cfg.Bits {
		if want := []byte{1, 0, 0}[i%3]; b != want {
			t.Fatalf("bit %d = %d, want %d (pattern '100')", i, b, want)
		}
	}
}

func TestBuildChannelConfigPatterns(t *testing.T) {
	alt, err := BuildChannelConfig(map[string]string{"pattern": "alternating", "bits": "6"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range alt.Bits {
		if b != byte(i%2) {
			t.Fatalf("alternating bit %d = %d", i, b)
		}
	}
	// Random payloads are a pure function of the seed.
	r1, _ := BuildChannelConfig(map[string]string{"bits": "64"}, 5)
	r2, _ := BuildChannelConfig(map[string]string{"bits": "64"}, 5)
	r3, _ := BuildChannelConfig(map[string]string{"bits": "64"}, 6)
	same, diff := true, false
	for i := range r1.Bits {
		same = same && r1.Bits[i] == r2.Bits[i]
		diff = diff || r1.Bits[i] != r3.Bits[i]
	}
	if !same {
		t.Error("equal seeds produced different random payloads")
	}
	if !diff {
		t.Error("different seeds produced identical random payloads")
	}
}

func TestBuildChannelConfigRejectsBadParams(t *testing.T) {
	bad := []map[string]string{
		{"window": "abc"},
		{"bits": "0"},
		{"pattern": "012"},
		{"noise": "hurricane"},
		{"epc": "nope"},
		{"no-such-param": "1"},
	}
	for _, params := range bad {
		if _, err := BuildChannelConfig(params, 1); err == nil {
			t.Errorf("params %v accepted", params)
		}
	}
}

func TestParseNoiseKind(t *testing.T) {
	cases := map[string]NoiseKind{
		"":       NoiseNone,
		"none":   NoiseNone,
		"memory": NoiseMemory,
		"mee512": NoiseMEE512,
		"mee4k":  NoiseMEE4K,
	}
	for s, want := range cases {
		got, err := ParseNoiseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseNoiseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseNoiseKind("loud"); err == nil {
		t.Error("unknown noise kind accepted")
	}
}

func TestCapacityTrialMetrics(t *testing.T) {
	m, _, err := CapacityTrial(map[string]string{"samples": "10"}, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if m["capacity_kb"] != 64 {
		t.Errorf("capacity %v KB, want 64", m["capacity_kb"])
	}
	if p, ok := m["p_evict_64"]; !ok || p < 0.995 {
		t.Errorf("p_evict_64 = %v, want 1.0", p)
	}
	if _, _, err := CapacityTrial(map[string]string{"samples": "0"}, 1, false); err == nil {
		t.Error("samples=0 accepted")
	}
	if _, _, err := CapacityTrial(map[string]string{"bogus": "1"}, 1, false); err == nil {
		t.Error("unknown capacity param accepted")
	}
}
