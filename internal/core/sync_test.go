package core

import (
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

func TestInBandChannelSynchronizes(t *testing.T) {
	cfg := DefaultChannelConfig(61)
	cfg.Bits = RandomBits(61, 64)
	res, err := RunInBandChannel(cfg)
	if err != nil {
		t.Fatalf("%v (events=%d attempt=%d)", err, res.Events, res.Attempt)
	}
	if !res.SyncFound {
		t.Fatal("sync word not found")
	}
	if res.ErrorRate > 0.1 {
		t.Fatalf("in-band error rate %.3f", res.ErrorRate)
	}
	t.Logf("in-band sync: locked on attempt %d, %d bit errors, %.1f KBps effective",
		res.Attempt, res.BitErrors, res.KBps)
}

func TestInBandChannelAcrossSeeds(t *testing.T) {
	// The trojan's start offset varies by seed; synchronization must not
	// depend on any particular phase.
	ok := 0
	for seed := uint64(62); seed < 67; seed++ {
		cfg := DefaultChannelConfig(seed)
		cfg.Bits = RandomBits(seed, 32)
		res, err := RunInBandChannel(cfg)
		if err != nil {
			t.Logf("seed %d: %v (events=%d)", seed, err, res.Events)
			continue
		}
		if res.SyncFound && res.ErrorRate <= 0.15 {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("in-band sync succeeded for only %d/5 seeds", ok)
	}
}

// buildFrame assembles preamble + sync word + payload the way the trojan
// transmits it.
func buildFrame(payload []byte) []byte {
	frame := make([]byte, 0, preambleBits+len(syncWord)+len(payload))
	for i := 0; i < preambleBits; i++ {
		frame = append(frame, byte((i+1)%2))
	}
	frame = append(frame, syncWord...)
	return append(frame, payload...)
}

func TestFindFrameLocatesPayload(t *testing.T) {
	payload := []byte{1, 0, 0, 1, 1, 0, 1, 0}
	decoded := buildFrame(payload)
	got, ok := findFrame(decoded, len(payload))
	if !ok {
		t.Fatal("sync word not found in a clean frame")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload %v != %v", got, payload)
		}
	}
	// A phase shift prepends garbage windows; the scan still locks.
	shifted := append([]byte{0, 0, 1}, decoded...)
	if _, ok := findFrame(shifted, len(payload)); !ok {
		t.Fatal("sync word not found after a stream shift")
	}
}

func TestFindFrameRejectsCorruptedSync(t *testing.T) {
	payload := []byte{1, 0, 0, 1, 1, 0, 1, 0}
	// Flip one sync-word bit per variant: every attempt's decode is
	// corrupted, so the whole sweep must come back empty — the sync word is
	// exactly what repetition cannot vote away, since each attempt scans a
	// different phase's decode independently.
	for flip := 0; flip < len(syncWord); flip++ {
		decoded := buildFrame(payload)
		decoded[preambleBits+flip] ^= 1
		if _, ok := findFrame(decoded, len(payload)); ok {
			t.Fatalf("corrupted sync bit %d still matched", flip)
		}
	}
}

func TestFindFrameRejectsTruncatedPayload(t *testing.T) {
	payload := []byte{1, 0, 0, 1, 1, 0, 1, 0}
	decoded := buildFrame(payload)
	// Drop the final payload bit: the sync word is present but the payload
	// cannot fit, so the frame must be rejected rather than read past the
	// stream's end.
	if _, ok := findFrame(decoded[:len(decoded)-1], len(payload)); ok {
		t.Fatal("matched a frame whose payload runs off the stream")
	}
	if _, ok := findFrame(nil, len(payload)); ok {
		t.Fatal("matched an empty stream")
	}
}

func TestAwaitTransmissionZeroEvents(t *testing.T) {
	// A monitor page nobody evicts: acquisition must poll to its deadline
	// and report no lock — the "transmission never started" path. Ambient
	// spikes are disabled: over a poll this long (~10x the protocol's real
	// acquisition deadline) the 5% spike rate would eventually fake the two
	// in-band events, which is exactly why the protocol keeps its deadline
	// short; here the subject is the silent-channel path itself.
	opts := DefaultOptions(99)
	opts.SpikeProb = 0
	plat := opts.boot()
	defer plat.Close()
	pr := plat.NewProcess("idle-spy")
	if _, err := pr.CreateEnclave(calPages + 1); err != nil {
		t.Fatal(err)
	}
	base := pr.Enclave().Base
	var lockAt sim.Cycles
	events := -1
	plat.SpawnThread("idle-spy", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, 0))
		monitor := base + enclave.VAddr(calPages*enclave.PageBytes)
		lockAt, events = awaitTransmission(th, monitor, threshold, 15_000, th.Now()+2_000_000)
	})
	plat.Run(-1)
	if lockAt != 0 {
		t.Fatalf("locked at %d on a silent channel", lockAt)
	}
	if events != 0 {
		t.Fatalf("saw %d events on a silent channel", events)
	}
}

func TestInBandReportsAcquisitionFailure(t *testing.T) {
	// Reproduce the sweep-level contract on the full protocol: when every
	// phase attempt decodes garbage the run must fail with SyncFound false
	// and a non-nil error, never a silently wrong payload. An absurdly
	// narrow window (well under one eviction pass) guarantees corruption.
	cfg := DefaultChannelConfig(61)
	cfg.Bits = RandomBits(61, 32)
	cfg.Window = 1200
	res, err := RunInBandChannel(cfg)
	if err == nil && res.ErrorRate == 0 {
		t.Fatal("1200-cycle windows decoded perfectly — failure path untestable")
	}
	if err != nil && res.SyncFound && res.BitErrors == 0 {
		t.Fatalf("error %v with SyncFound and no bit errors", err)
	}
	t.Logf("narrow window: err=%v syncFound=%v events=%d", err, res.SyncFound, res.Events)
}
