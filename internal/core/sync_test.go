package core

import "testing"

func TestInBandChannelSynchronizes(t *testing.T) {
	cfg := DefaultChannelConfig(61)
	cfg.Bits = RandomBits(61, 64)
	res, err := RunInBandChannel(cfg)
	if err != nil {
		t.Fatalf("%v (events=%d attempt=%d)", err, res.Events, res.Attempt)
	}
	if !res.SyncFound {
		t.Fatal("sync word not found")
	}
	if res.ErrorRate > 0.1 {
		t.Fatalf("in-band error rate %.3f", res.ErrorRate)
	}
	t.Logf("in-band sync: locked on attempt %d, %d bit errors, %.1f KBps effective",
		res.Attempt, res.BitErrors, res.KBps)
}

func TestInBandChannelAcrossSeeds(t *testing.T) {
	// The trojan's start offset varies by seed; synchronization must not
	// depend on any particular phase.
	ok := 0
	for seed := uint64(62); seed < 67; seed++ {
		cfg := DefaultChannelConfig(seed)
		cfg.Bits = RandomBits(seed, 32)
		res, err := RunInBandChannel(cfg)
		if err != nil {
			t.Logf("seed %d: %v (events=%d)", seed, err, res.Events)
			continue
		}
		if res.SyncFound && res.ErrorRate <= 0.15 {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("in-band sync succeeded for only %d/5 seeds", ok)
	}
}
