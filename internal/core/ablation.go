package core

import (
	"fmt"

	"meecc/internal/cache"
	"meecc/internal/enclave"
	"meecc/internal/platform"
)

// EvictionStudyResult reports how reliably the trojan's eviction procedure
// displaces a monitor line from the shared MEE cache set — the mechanism
// underneath Algorithm 2, isolated from the rest of the protocol. This is
// the quantitative backing for §5.3's design choice of a two-phase
// (forward+backward) eviction pass under approximate-LRU replacement.
type EvictionStudyResult struct {
	Policy    string
	TwoPhase  bool
	Windows   int
	Successes int
}

// SuccessRate is the fraction of windows whose eviction displaced the
// monitor line.
func (r EvictionStudyResult) SuccessRate() float64 {
	if r.Windows == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Windows)
}

// EvictionStudy measures per-window eviction success for a given MEE
// replacement policy and phase count. A single enclave builds an eviction
// set with Algorithm 1, uses the discovered test address as the monitor,
// and then replays the channel's steady-state set dynamics: touch monitor
// (the spy's probe), run the eviction pass, and check (via the harness's
// ground truth) whether the monitor's versions line left the MEE cache.
func EvictionStudy(opts Options, policy string, twoPhase bool, windows int) (*EvictionStudyResult, error) {
	opts.MEEPolicy = policy
	plat := opts.boot()
	defer plat.Close()

	pr := plat.NewProcess("evstudy")
	if _, err := pr.CreateEnclave(8 + 96); err != nil {
		return nil, err
	}
	base := pr.Enclave().Base

	res := &EvictionStudyResult{Policy: policy, TwoPhase: twoPhase, Windows: windows}
	var runErr error
	plat.SpawnThread("evstudy", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, 8, 0))
		cands := pageAddrs(base+enclave.VAddr(8*enclave.PageBytes), 96, 0)
		a1, err := FindEvictionSet(th, cands, threshold)
		if err != nil {
			runErr = err
			return
		}
		if len(a1.EvictionSet) < 2 {
			runErr = fmt.Errorf("core: eviction set too small (%d)", len(a1.EvictionSet))
			return
		}
		monitor := a1.Test
		evSet := a1.EvictionSet

		// Ground-truth monitor residency via the harness.
		pa, _ := pr.Translate(monitor)
		meeEng := plat.MEE()
		vline := meeEng.Geometry().VersionLineAddr(pa)
		set := meeEng.CacheSetFor(vline)
		vtag := cache.Tag(uint64(vline) / 64)

		for w := 0; w < windows; w++ {
			// Spy side: touch (and, if missing, re-prime) the monitor.
			th.Access(monitor)
			th.Flush(monitor)
			th.Spin(2000)
			// Trojan side: the eviction pass(es).
			for i := 0; i < len(evSet); i++ {
				th.Access(evSet[i])
				th.Flush(evSet[i])
			}
			th.Mfence()
			if twoPhase {
				for i := len(evSet) - 1; i >= 0; i-- {
					th.Access(evSet[i])
					th.Flush(evSet[i])
				}
				th.Mfence()
			}
			if !meeEng.Cache().Contains(set, vtag) {
				res.Successes++
			}
			th.Spin(3000)
		}
	})
	plat.Run(-1)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
