package core

import (
	"testing"

	"meecc/internal/sim"
)

func TestApplyDefaultsResolvesCoreCollisions(t *testing.T) {
	cases := []struct {
		name               string
		trojan, spy, noise int
		wantSpy, wantNoise int
	}{
		{"defaults intact", 0, 2, 1, 2, 1},
		{"spy on trojan core", 1, 1, 2, 3, 2},
		{"noise on trojan core", 0, 2, 0, 2, 1},
		{"noise on spy core", 0, 2, 2, 2, 1},
		{"all on one core", 0, 0, 0, 2, 1},
		{"zero value config", 0, 0, 0, 2, 1},
	}
	for _, tc := range cases {
		cfg := ChannelConfig{TrojanCore: tc.trojan, SpyCore: tc.spy, NoiseCore: tc.noise}
		cfg.applyDefaults()
		if cfg.SpyCore != tc.wantSpy || cfg.NoiseCore != tc.wantNoise {
			t.Errorf("%s: spy=%d noise=%d, want spy=%d noise=%d",
				tc.name, cfg.SpyCore, cfg.NoiseCore, tc.wantSpy, tc.wantNoise)
		}
		if cfg.SpyCore == cfg.TrojanCore || cfg.NoiseCore == cfg.TrojanCore || cfg.NoiseCore == cfg.SpyCore {
			t.Errorf("%s: cores collide after applyDefaults: trojan=%d spy=%d noise=%d",
				tc.name, cfg.TrojanCore, cfg.SpyCore, cfg.NoiseCore)
		}
		// Normalization must be deterministic: applying twice is a no-op.
		again := cfg
		again.applyDefaults()
		if again.SpyCore != cfg.SpyCore || again.NoiseCore != cfg.NoiseCore {
			t.Errorf("%s: applyDefaults is not idempotent", tc.name)
		}
	}
}

func TestChannelTransmitsAlternatingBits(t *testing.T) {
	cfg := DefaultChannelConfig(42)
	cfg.Bits = AlternatingBits(30)
	res, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictionSetSize != 8 {
		t.Errorf("eviction set size %d, want 8", res.EvictionSetSize)
	}
	if res.ErrorRate > 0.1 {
		t.Errorf("error rate %.3f too high: sent %v recv %v", res.ErrorRate, res.Sent, res.Received)
	}
	if res.KBps < 30 || res.KBps > 37 {
		t.Errorf("bit rate %.1f KBps, want ~33 (paper: ~35)", res.KBps)
	}
}

func TestChannelRandomPayload(t *testing.T) {
	cfg := DefaultChannelConfig(1001)
	cfg.Bits = RandomBits(77, 128)
	res, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.08 {
		t.Errorf("error rate %.3f for random payload", res.ErrorRate)
	}
}

func TestChannelProbeTimesSeparateHitAndMiss(t *testing.T) {
	cfg := DefaultChannelConfig(7)
	cfg.Bits = AlternatingBits(40)
	res, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6(b): '0' probes ~480 cycles (versions hit), '1' probes ~750
	// (versions miss). Compare window means on correctly decoded bits.
	var hitSum, missSum sim.Cycles
	var hits, misses int
	for i, b := range res.Sent {
		if res.Received[i] != b {
			continue
		}
		if b == 0 {
			hitSum += res.ProbeTimes[i]
			hits++
		} else {
			missSum += res.ProbeTimes[i]
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatal("no correctly decoded samples")
	}
	hitMean := float64(hitSum) / float64(hits)
	missMean := float64(missSum) / float64(misses)
	if hitMean < 400 || hitMean > 600 {
		t.Errorf("'0' probe mean %.0f, want ~480", hitMean)
	}
	if missMean < 680 || missMean > 950 {
		t.Errorf("'1' probe mean %.0f, want ~750", missMean)
	}
	if missMean-hitMean < 200 {
		t.Errorf("hit/miss separation %.0f too small", missMean-hitMean)
	}
}

func TestChannelDeterministicForSeed(t *testing.T) {
	run := func() *ChannelResult {
		cfg := DefaultChannelConfig(555)
		cfg.Bits = RandomBits(555, 64)
		res, err := RunChannel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.ProbeTimes {
		if a.ProbeTimes[i] != b.ProbeTimes[i] {
			t.Fatalf("probe %d differs across identical runs: %d vs %d", i, a.ProbeTimes[i], b.ProbeTimes[i])
		}
	}
	if a.BitErrors != b.BitErrors {
		t.Fatalf("bit errors differ: %d vs %d", a.BitErrors, b.BitErrors)
	}
}

func TestChannelErrorKneeBelowEvictionLatency(t *testing.T) {
	// §5.4: sending a '1' takes ~9000 cycles, so windows below that are
	// unreliable. Compare 7500 vs 15000.
	small := DefaultChannelConfig(21)
	small.Window = 7500
	small.Bits = RandomBits(21, 128)
	resSmall, err := RunChannel(small)
	if err != nil {
		t.Fatal(err)
	}
	big := DefaultChannelConfig(21)
	big.Window = 15000
	big.Bits = RandomBits(21, 128)
	resBig, err := RunChannel(big)
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.ErrorRate < 0.15 {
		t.Errorf("7500-cycle window error %.3f, expected the paper's knee (>15%%)", resSmall.ErrorRate)
	}
	if resBig.ErrorRate > 0.08 {
		t.Errorf("15000-cycle window error %.3f, expected <8%%", resBig.ErrorRate)
	}
}

func TestEvictionPhaseStudy(t *testing.T) {
	// §5.3's two-phase eviction is a hedge against approximate-LRU
	// replacement. Under true LRU the eviction cascade is deterministic
	// and even a single pass suffices; under tree-PLRU, per-seed dynamics
	// can lock the monitor in place, and the second pass never hurts.
	for _, twoPhase := range []bool{false, true} {
		res, err := EvictionStudy(DefaultOptions(41), "lru", twoPhase, 40)
		if err != nil {
			t.Fatalf("lru twoPhase=%v: %v", twoPhase, err)
		}
		if res.SuccessRate() < 0.95 {
			t.Errorf("lru twoPhase=%v success %.2f, want ~1.0", twoPhase, res.SuccessRate())
		}
	}
	// Across seeds, two-phase eviction under tree-PLRU must do at least as
	// well as a single pass in aggregate.
	var one, two int
	const windows = 40
	for seed := uint64(50); seed < 56; seed++ {
		r1, err := EvictionStudy(DefaultOptions(seed), "tree-plru", false, windows)
		if err != nil {
			continue // Algorithm 1 itself can fail under PLRU; that's data
		}
		r2, err := EvictionStudy(DefaultOptions(seed), "tree-plru", true, windows)
		if err != nil {
			continue
		}
		one += r1.Successes
		two += r2.Successes
	}
	if one == 0 && two == 0 {
		t.Skip("tree-plru setup failed for all seeds")
	}
	if two < one {
		t.Errorf("tree-plru: two-phase %d successes < single-pass %d", two, one)
	}
}

func TestChannelRejectsBadBits(t *testing.T) {
	cfg := DefaultChannelConfig(1)
	cfg.Bits = []byte{0, 1, 2}
	if _, err := RunChannel(cfg); err == nil {
		t.Fatal("expected error for non-binary bits")
	}
}

func TestRandomReplacementDefeatsSetupGracefully(t *testing.T) {
	cfg := DefaultChannelConfig(3)
	cfg.Options.MEEPolicy = "random"
	cfg.Bits = AlternatingBits(16)
	if _, err := RunChannel(cfg); err == nil {
		t.Log("channel survived random replacement (possible but unlikely)")
	}
	// The important property: no panic, a clean error or degraded result.
}

func TestBitPatternHelpers(t *testing.T) {
	alt := AlternatingBits(5)
	want := []byte{0, 1, 0, 1, 0}
	for i := range want {
		if alt[i] != want[i] {
			t.Fatalf("AlternatingBits %v", alt)
		}
	}
	pat := PatternBits("100", 7)
	wantPat := []byte{1, 0, 0, 1, 0, 0, 1}
	for i := range wantPat {
		if pat[i] != wantPat[i] {
			t.Fatalf("PatternBits %v", pat)
		}
	}
	a, b := RandomBits(9, 64), RandomBits(9, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomBits not deterministic")
		}
		if a[i] > 1 {
			t.Fatal("RandomBits produced non-bit")
		}
	}
	c := RandomBits(10, 64)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical bits")
	}
}
