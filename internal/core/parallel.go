package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// ParallelResult reports a multi-lane channel run: k trojan threads on
// distinct cores each drive their own eviction set (distinct agreed 512 B
// indexes, hence distinct MEE sets), and the single spy probes k monitor
// addresses per window — k bits per window.
type ParallelResult struct {
	Lanes      int
	Sent       []byte // interleaved lane-major per window
	Received   []byte
	BitErrors  int
	ErrorRate  float64
	KBps       float64 // aggregate
	LaneErrors []int
	// EvictionSetSizes per lane (diagnostics; 8 when Algorithm 1 is clean).
	EvictionSetSizes []int
	// ProbeTimes per transmitted bit (lane-major, like Sent/Received).
	ProbeTimes []sim.Cycles
}

// RunParallelChannel is the multi-lane extension of Algorithm 2 (future
// work beyond the paper): `lanes` trojan threads transmit concurrently.
// Bits are consumed lane-major per window: window i carries bits
// [i*lanes, (i+1)*lanes). Practical lane counts are 1–2 on the paper's
// 4-core part (the spy and noise need cores too).
func RunParallelChannel(cfg ChannelConfig, lanes int) (*ParallelResult, error) {
	cfg.applyDefaults()
	if lanes < 1 || lanes > 2 {
		return nil, fmt.Errorf("core: lanes must be 1 or 2 on a 4-core part, got %d", lanes)
	}
	if len(cfg.Bits)%lanes != 0 {
		return nil, fmt.Errorf("core: bit count %d not a multiple of lanes %d", len(cfg.Bits), lanes)
	}
	plat := cfg.boot()
	defer plat.Close()

	windows := len(cfg.Bits) / lanes
	tCalEnd := cfg.CalBudget * sim.Cycles(lanes) // staggered calibrations
	tSetupEnd := tCalEnd + cfg.SetupBudget
	tSearchEnd := tSetupEnd + cfg.SearchBudget*sim.Cycles(lanes)
	t0 := tSearchEnd
	tEnd := t0 + sim.Cycles(windows)*cfg.Window

	const calPages = 8
	const trojanCandidates = 96
	const spyCandidates = 24

	spyProc := plat.NewProcess("pspy")
	// One disjoint calibration pool per lane: reusing blocks across the
	// lane calibrations would turn the second lane's miss samples into MEE
	// cache hits and collapse its threshold onto the hit mode.
	if _, err := spyProc.CreateEnclave(calPages*lanes + spyCandidates); err != nil {
		return nil, err
	}

	res := &ParallelResult{Lanes: lanes, Sent: cfg.Bits, LaneErrors: make([]int, lanes), EvictionSetSizes: make([]int, lanes)}
	errs := make([]error, lanes+1)

	trojanCores := []int{0, 1}
	for lane := 0; lane < lanes; lane++ {
		lane := lane
		pr := plat.NewProcess(fmt.Sprintf("ptrojan%d", lane))
		if _, err := pr.CreateEnclave(calPages + trojanCandidates); err != nil {
			return nil, err
		}
		plat.SpawnThread(fmt.Sprintf("ptrojan%d", lane), pr, trojanCores[lane], func(th *platform.Thread) {
			th.EnterEnclave()
			base := pr.Enclave().Base
			index := cfg.Index512 + lane // distinct agreed index per lane
			th.SpinUntil(cfg.CalBudget * sim.Cycles(lane))
			threshold := calibrateThreshold(th, pageAddrs(base, calPages, index))
			th.SpinUntil(tCalEnd)

			cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), trojanCandidates, index)
			a1, err := FindEvictionSet(th, cands, threshold)
			if err != nil {
				errs[lane] = fmt.Errorf("lane %d: %w", lane, err)
				return
			}
			evSet := a1.EvictionSet
			res.EvictionSetSizes[lane] = len(evSet)
			evict := func() {
				for i := 0; i < len(evSet); i++ {
					th.Access(evSet[i])
					th.Flush(evSet[i])
				}
				th.Mfence()
				for i := len(evSet) - 1; i >= 0; i-- {
					th.Access(evSet[i])
					th.Flush(evSet[i])
				}
				th.Mfence()
			}
			th.SpinUntil(tSetupEnd)
			// Burst only inside this lane's search slot so the spy can
			// attribute evictions to lanes.
			laneSlotStart := tSetupEnd + cfg.SearchBudget*sim.Cycles(lane)
			laneSlotEnd := laneSlotStart + cfg.SearchBudget
			th.SpinUntil(laneSlotStart)
			for th.Now() < laneSlotEnd-20_000 {
				evict()
				th.Spin(1000)
			}
			for w := 0; w < windows; w++ {
				waitUntilTimer(th, t0+sim.Cycles(w)*cfg.Window)
				if cfg.Bits[w*lanes+lane] == 1 {
					evict()
				}
			}
		})
	}

	plat.SpawnThread("pspy", spyProc, 2, func(th *platform.Thread) {
		th.EnterEnclave()
		base := spyProc.Enclave().Base
		thresholds := make([]sim.Cycles, lanes)
		monitors := make([]enclave.VAddr, lanes)

		// Calibrate per lane index (one threshold suffices, but measure
		// against each index's pages to stay faithful).
		th.SpinUntil(tCalEnd / 2)
		for lane := 0; lane < lanes; lane++ {
			pool := base + enclave.VAddr(lane*calPages*enclave.PageBytes)
			thresholds[lane] = calibrateThreshold(th, pageAddrs(pool, calPages, cfg.Index512+lane))
		}
		th.SpinUntil(tSetupEnd)

		// Monitor discovery, one lane slot at a time.
		const samples = 8
		for lane := 0; lane < lanes; lane++ {
			th.SpinUntil(tSetupEnd + cfg.SearchBudget*sim.Cycles(lane))
			cands := pageAddrs(base+enclave.VAddr(lanes*calPages*enclave.PageBytes), spyCandidates, cfg.Index512+lane)
			best, bestScore := enclave.VAddr(0), -1
			for _, cand := range cands {
				score := 0
				for s := 0; s < samples; s++ {
					th.Access(cand)
					th.Flush(cand)
					th.SpinUntil(th.Now() + 40_000)
					if timedAccess(th, cand) > thresholds[lane] {
						score++
					}
					th.Flush(cand)
				}
				if score > bestScore {
					bestScore, best = score, cand
				}
			}
			if bestScore < samples*6/10 {
				errs[lanes] = fmt.Errorf("core: lane %d monitor discovery failed (%d/%d)", lane, bestScore, samples)
				return
			}
			monitors[lane] = best
		}

		waitUntilTimer(th, t0-5000)
		for _, m := range monitors {
			th.Access(m)
			th.Flush(m)
		}
		res.Received = make([]byte, len(cfg.Bits))
		res.ProbeTimes = make([]sim.Cycles, len(cfg.Bits))
		// Concurrent evictions contend in the memory system and finish
		// later than a single trojan's; probe later in the window than the
		// single-lane default.
		phase := cfg.ProbePhase
		if phase < 0.75 {
			phase = 0.75
		}
		probeOffset := sim.Cycles(float64(cfg.Window) * phase)
		for w := 0; w < windows; w++ {
			waitUntilTimer(th, t0+sim.Cycles(w)*cfg.Window+probeOffset)
			for lane := 0; lane < lanes; lane++ {
				t := timedAccess(th, monitors[lane])
				th.Flush(monitors[lane])
				res.ProbeTimes[w*lanes+lane] = t
				if t > thresholds[lane] {
					res.Received[w*lanes+lane] = 1
				}
			}
		}
	})

	if err := spawnNoise(plat, cfg.Noise, 3, t0); err != nil {
		return nil, err
	}
	plat.Run(tEnd + cfg.Window)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	if res.Received == nil {
		return res, fmt.Errorf("core: parallel spy never completed")
	}
	for i := range res.Sent {
		if res.Received[i] != res.Sent[i] {
			res.BitErrors++
			res.LaneErrors[i%lanes]++
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(res.Sent))
	res.KBps = plat.WindowKBps(cfg.Window) * float64(lanes)
	return res, nil
}
