package core

import "meecc/internal/sim"

// MitigationResult reports how the channel fares against one MEE-cache
// hardening variant — the quantitative extension of the §5.5 discussion.
type MitigationResult struct {
	Name string
	// ErrorRate of the channel under this variant (1.0 if setup failed —
	// a failed setup means the mitigation already defeated the attack).
	ErrorRate float64
	// SetupFailed reports that Algorithm 1 or monitor discovery broke.
	SetupFailed bool
	// Detail is the failure message when SetupFailed.
	Detail string
}

// Defeated reports whether the variant pushed the channel past the
// usefulness threshold (>25% raw error or broken setup).
func (m MitigationResult) Defeated() bool {
	return m.SetupFailed || m.ErrorRate > 0.25
}

// MitigationStudy runs the channel against a set of MEE-cache variants:
//
//   - baseline: LRU, the reverse-engineered organization;
//   - tree-plru: path-based "approximate LRU" — shows how sensitive the
//     two-phase eviction is to the replacement policy's recency fidelity;
//   - random-replacement: the §5.5 candidate of replacement-policy
//     randomization (SHARP-style);
//   - noise-5pct / noise-20pct: random-eviction injection per access;
//   - half-ways: a 4-way MEE cache (capacity/way reduction, a stand-in for
//     way partitioning, which the paper notes cannot be applied directly
//     because the integrity tree itself is shared).
func MitigationStudy(opts Options, window sim.Cycles, nbits int) []MitigationResult {
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"baseline", func(o *Options) {}},
		{"tree-plru", func(o *Options) { o.MEEPolicy = "tree-plru" }},
		{"random-replacement", func(o *Options) { o.MEEPolicy = "random" }},
		{"noise-5pct", func(o *Options) { o.RandomEvictProb = 0.05 }},
		{"noise-20pct", func(o *Options) { o.RandomEvictProb = 0.20 }},
		{"half-ways", func(o *Options) { o.MEEWays = 4 }},
	}
	out := make([]MitigationResult, 0, len(variants))
	for i, v := range variants {
		o := opts
		o.Seed = opts.Seed + uint64(i)*15485863
		v.mod(&o)
		cfg := DefaultChannelConfig(o.Seed)
		cfg.Options = o
		cfg.Window = window
		cfg.Bits = RandomBits(o.Seed, nbits)
		res, err := RunChannel(cfg)
		mr := MitigationResult{Name: v.name}
		if err != nil {
			mr.SetupFailed = true
			mr.ErrorRate = 1
			mr.Detail = err.Error()
		} else {
			mr.ErrorRate = res.ErrorRate
		}
		out = append(out, mr)
	}
	return out
}
