package core

import (
	"testing"

	"meecc/internal/sim"
)

func TestMultiSeedSweepStatistics(t *testing.T) {
	stats := MultiSeedSweep(DefaultOptions(1), []sim.Cycles{7500, 15000}, 96, 3)
	if len(stats) != 2 {
		t.Fatalf("stats %d", len(stats))
	}
	knee, sweet := stats[0], stats[1]
	if knee.Seeds != 3 || sweet.Seeds != 3 {
		t.Fatalf("seed counts %d/%d", knee.Seeds, sweet.Seeds)
	}
	if knee.MeanError < 2*sweet.MeanError {
		t.Errorf("no knee across seeds: 7500 mean %.3f vs 15000 mean %.3f",
			knee.MeanError, sweet.MeanError)
	}
	if sweet.MinError > sweet.MaxError {
		t.Errorf("min %.3f > max %.3f", sweet.MinError, sweet.MaxError)
	}
	if sweet.KBps < 30 || sweet.KBps > 37 {
		t.Errorf("15000 KBps %.1f", sweet.KBps)
	}
	t.Logf("err@7500 %.3f [%.3f,%.3f]; err@15000 %.3f [%.3f,%.3f]",
		knee.MeanError, knee.MinError, knee.MaxError,
		sweet.MeanError, sweet.MinError, sweet.MaxError)
}
