package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/itree"
	"meecc/internal/platform"
)

// CapacityPoint is one point of Figure 4: the probability (over trials)
// that a victim's versions line is evicted after accessing a candidate
// address set of the given size.
type CapacityPoint struct {
	Candidates  int
	Probability float64
}

// CapacityResult is the output of the §4.1 capacity experiment.
type CapacityResult struct {
	Points []CapacityPoint
	// CapacityBytes is the inferred MEE cache capacity: the smallest
	// candidate count with eviction probability 1.0, times the 1 KB of
	// versions+PD_Tag metadata each 4 KB page pins (16 × 64 B).
	CapacityBytes int
}

// MeasureCapacity runs the §4.1 experiment: for each candidate-set size,
// repeatedly pick a fresh victim, load its versions line, access the whole
// candidate set (4 KB stride), and test whether the victim was evicted.
func MeasureCapacity(opts Options, sizes []int, trials int) (*CapacityResult, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 16, 32, 64}
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	plat := opts.boot()
	defer plat.Close()

	pr := plat.NewProcess("reveng")
	// Pool: fresh pages per trial (victim + maxN candidates), plus a
	// calibration pool.
	perTrial := maxN + 1
	calPages := 8
	need := calPages + trials*perTrial
	if _, err := pr.CreateEnclave(need); err != nil {
		return nil, err
	}
	base := pr.Enclave().Base

	res := &CapacityResult{}
	plat.SpawnThread("reveng", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, 0))
		pool := base + enclave.VAddr(calPages*enclave.PageBytes)

		for _, n := range sizes {
			evictions := 0
			for trial := 0; trial < trials; trial++ {
				// Disjoint region per trial; the MEE cache is drained
				// between trials so that residue from earlier sizes cannot
				// turn candidate fills into hits (the paper achieves the
				// same cold state by thrashing on real hardware).
				plat.MEE().FlushCache(th.Now(), plat.Engine().Rand())
				region := pool + enclave.VAddr(trial*perTrial*enclave.PageBytes)
				victim := region
				cands := pageAddrs(region+enclave.PageBytes, n, 0)
				if EvictionTest(th, cands, victim) > threshold {
					evictions++
				}
			}
			res.Points = append(res.Points, CapacityPoint{
				Candidates:  n,
				Probability: float64(evictions) / float64(trials),
			})
		}
	})
	plat.Run(-1)

	// Infer capacity: the smallest size reaching probability 1.0.
	for _, p := range res.Points {
		if p.Probability >= 0.995 {
			res.CapacityBytes = p.Candidates * 16 * 64
			break
		}
	}
	return res, nil
}

// Organization is the reverse-engineered MEE cache configuration (§4's
// summary result: 64 KB, 8-way, 128 sets).
type Organization struct {
	CapacityBytes int
	Ways          int
	Sets          int
	LineBytes     int
}

func (o Organization) String() string {
	return fmt.Sprintf("%d KB, %d-way set-associative, %d sets of %d B lines",
		o.CapacityBytes/1024, o.Ways, o.Sets, o.LineBytes)
}

// ReverseEngineer runs the full §4 procedure: the capacity experiment, then
// Algorithm 1 for the associativity, and derives the set count. This is the
// cmd/revenge entry point.
func ReverseEngineer(opts Options, trials int) (*Organization, *CapacityResult, *Algorithm1Result, error) {
	capRes, err := MeasureCapacity(opts, nil, trials)
	if err != nil {
		return nil, nil, nil, err
	}
	if capRes.CapacityBytes == 0 {
		return nil, capRes, nil, fmt.Errorf("core: capacity experiment never reached eviction probability 1.0")
	}

	// Associativity on a fresh platform (cold MEE state).
	plat := opts.boot()
	defer plat.Close()
	pr := plat.NewProcess("reveng")
	const candidates = 96
	const calPages = 8
	if _, err := pr.CreateEnclave(calPages + candidates); err != nil {
		return nil, capRes, nil, err
	}
	base := pr.Enclave().Base
	var a1 *Algorithm1Result
	var a1Err error
	plat.SpawnThread("reveng", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, 0))
		cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), candidates, 0)
		a1, a1Err = FindEvictionSet(th, cands, threshold)
	})
	plat.Run(-1)
	if a1Err != nil {
		return nil, capRes, nil, a1Err
	}

	org := &Organization{
		CapacityBytes: capRes.CapacityBytes,
		Ways:          a1.Associativity(),
		LineBytes:     itree.LineSize,
	}
	org.Sets = org.CapacityBytes / org.LineBytes / org.Ways
	return org, capRes, a1, nil
}
