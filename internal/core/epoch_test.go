package core

import (
	"reflect"
	"testing"

	"meecc/internal/fault"
	"meecc/internal/obs"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// runBothEngines runs cfg once on the epoch kernel and once pinned to the
// general DES engine, returning both results.
func runBothEngines(t *testing.T, cfg ChannelConfig) (epoch, general *ChannelResult, epochErr, generalErr error) {
	t.Helper()
	epoch, epochErr = RunChannel(cfg)
	SetForceGeneralEngineForTest(true)
	defer SetForceGeneralEngineForTest(false)
	general, generalErr = RunChannel(cfg)
	return
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestEpochMatchesGeneralEngine is the cross-engine oracle: for every
// epoch-eligible configuration shape, the compiled kernel must produce a
// result (and error) identical to the general DES engine's — probe times,
// decoded bits, footprint counters, everything.
func TestEpochMatchesGeneralEngine(t *testing.T) {
	cases := map[string]func(*ChannelConfig){
		"default":      func(*ChannelConfig) {},
		"noise-memory": func(c *ChannelConfig) { c.Noise = NoiseMemory },
		"noise-mee512": func(c *ChannelConfig) { c.Noise = NoiseMEE512 },
		"noise-mee4k":  func(c *ChannelConfig) { c.Noise = NoiseMEE4K },
		"repetition":   func(c *ChannelConfig) { c.Bits = AlternatingBits(4); c.Repetition = 3 },
		"one-phase":    func(c *ChannelConfig) { c.TwoPhaseEviction = false },
		"wide-window":  func(c *ChannelConfig) { c.Window = 30000 },
		// A 1-cycle search budget forces the spy to overrun: discovery is
		// still in flight at the run limit, so both engines must truncate it
		// at exactly the same operation and fail the same way.
		"spy-overrun": func(c *ChannelConfig) { c.SearchBudget = 1 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultChannelConfig(42)
			cfg.Bits = AlternatingBits(8)
			mutate(&cfg)
			epoch, general, epochErr, generalErr := runBothEngines(t, cfg)
			if errString(epochErr) != errString(generalErr) {
				t.Fatalf("error mismatch: epoch=%v general=%v", epochErr, generalErr)
			}
			if !reflect.DeepEqual(epoch, general) {
				t.Fatalf("result mismatch:\nepoch:   %+v\ngeneral: %+v", epoch, general)
			}
		})
	}
}

// TestEpochForkMatchesGeneralEngine pins the warm-fork transmit path: a
// forked transmission on the epoch kernel must match both the forked and
// the fresh transmission on the general engine.
func TestEpochForkMatchesGeneralEngine(t *testing.T) {
	cfg := DefaultChannelConfig(7)
	cfg.Bits = RandomBits(7, 12)
	ws, err := WarmChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochFork, err := ws.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	SetForceGeneralEngineForTest(true)
	defer SetForceGeneralEngineForTest(false)
	wsGen, err := WarmChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	generalFork, err := wsGen.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	generalFresh, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochFork, generalFork) {
		t.Fatalf("fork mismatch:\nepoch:   %+v\ngeneral: %+v", epochFork, generalFork)
	}
	if !reflect.DeepEqual(epochFork, generalFresh) {
		t.Fatalf("fork vs fresh mismatch:\nfork:  %+v\nfresh: %+v", epochFork, generalFresh)
	}
}

// TestEpochMatchesLinearOracle stacks the two determinism proofs: the epoch
// kernel must agree with the general engine running under the forced linear
// (single-step) scheduler, the repo's ground-truth op ordering.
func TestEpochMatchesLinearOracle(t *testing.T) {
	cfg := DefaultChannelConfig(11)
	cfg.Bits = AlternatingBits(6)
	cfg.Noise = NoiseMEE512
	epoch, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetForceGeneralEngineForTest(true)
	sim.SetForceLinearSchedulerForTest(true)
	defer func() {
		SetForceGeneralEngineForTest(false)
		sim.SetForceLinearSchedulerForTest(false)
	}()
	linear, err := RunChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epoch, linear) {
		t.Fatalf("epoch kernel diverges from linear oracle:\nepoch:  %+v\nlinear: %+v", epoch, linear)
	}
}

// TestEpochIneligibleConfigs pins the fallback gate: faults, observers, and
// study callbacks must keep the session on the general engine.
func TestEpochIneligibleConfigs(t *testing.T) {
	mk := func(mutate func(*ChannelConfig)) *channelSession {
		cfg := DefaultChannelConfig(1)
		mutate(&cfg)
		s, err := prepareChannel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s := mk(func(*ChannelConfig) {}); !s.epochEligible() {
		t.Error("plain config should be epoch-eligible")
	}
	if s := mk(func(c *ChannelConfig) { c.Fault = &fault.Config{Seed: 1} }); s.epochEligible() {
		t.Error("fault config must not be epoch-eligible")
	}
	if s := mk(func(c *ChannelConfig) {
		c.onPlatform = func(*platform.Platform, sim.Cycles, sim.Cycles) {}
	}); s.epochEligible() {
		t.Error("onPlatform config must not be epoch-eligible")
	}
	if s := mk(func(c *ChannelConfig) { c.Obs = obs.NewObserver() }); s.epochEligible() {
		t.Error("observed config must not be epoch-eligible")
	}
	SetForceGeneralEngineForTest(true)
	defer SetForceGeneralEngineForTest(false)
	if s := mk(func(*ChannelConfig) {}); s.epochEligible() {
		t.Error("forced-general hook must disable the epoch kernel")
	}
}

// waitLoopReference simulates waitUntilTimer poll by poll: starting at
// clock c, each poll costs `cost` cycles and reads the timer quantized to
// `res`; it returns the total advance until the first reading >= deadline.
func waitLoopReference(c, deadline, res, cost sim.Cycles) sim.Cycles {
	total := sim.Cycles(0)
	for {
		total += cost
		now := c + total - cost // clock at which this poll reads
		if now/res*res >= deadline {
			return total
		}
		if total > 1<<40 {
			panic("waitLoopReference diverged")
		}
	}
}

// FuzzEpochFallback fuzzes the two places the epoch kernel deviates from a
// literal op-for-op replay: the waitUntilTimer analytic collapse (must match
// the poll loop exactly for any clock/deadline) and the eligibility gate
// (any fault schedule must force the general engine).
func FuzzEpochFallback(f *testing.F) {
	f.Add(uint64(76_000_000), uint64(76_010_000), uint64(0))
	f.Add(uint64(0), uint64(1), uint64(3))
	f.Add(uint64(100), uint64(100), uint64(7))
	f.Add(uint64(35), uint64(34), uint64(12))
	f.Fuzz(func(t *testing.T, clock, deadline, faultSeed uint64) {
		const res, cost = sim.Cycles(35), sim.Cycles(50)
		c := sim.Cycles(clock % (1 << 40))
		d := sim.Cycles(deadline % (1 << 40))
		got := waitTimerCost(c, d, res, cost)
		want := waitLoopReference(c, d, res, cost)
		if got != want {
			t.Fatalf("waitTimerCost(%d, %d) = %d, want %d", c, d, got, want)
		}

		cfg := DefaultChannelConfig(1)
		cfg.Fault = &fault.Config{Seed: faultSeed}
		s, err := prepareChannel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.epochEligible() {
			t.Fatal("config with fault schedule must never compile to the epoch kernel")
		}
	})
}
