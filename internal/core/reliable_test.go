package core

import (
	"bytes"
	"math"
	"testing"

	"meecc/internal/code"
	"meecc/internal/fault"
)

func TestReliableTransferCleanPayload(t *testing.T) {
	cfg := DefaultChannelConfig(404)
	payload := []byte("AES-128 session key: 00112233445566778899aabbccddeeff")
	res, err := RunReliable(cfg, payload)
	if err != nil {
		t.Fatalf("reliable transfer failed: %v (raw errors %d)", err, res.Channel.BitErrors)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload corrupted: %q", res.Payload)
	}
	if !res.Stats.CRCOK {
		t.Fatal("CRC not verified")
	}
	// The raw channel has a ~2% error floor, so over ~900 channel bits
	// some corrections are expected — that is the point of the layer.
	t.Logf("raw bit errors %d, FEC corrections %d, goodput %.1f KBps",
		res.Channel.BitErrors, res.Stats.Corrections, res.GoodputKBps)
	if res.GoodputKBps <= 0 || res.GoodputKBps >= res.Channel.KBps {
		t.Fatalf("goodput %.1f vs raw %.1f: coding overhead not accounted", res.GoodputKBps, res.Channel.KBps)
	}
}

func TestReliableTransferSurvivesMEENoise(t *testing.T) {
	cfg := DefaultChannelConfig(405)
	cfg.Noise = NoiseMEE512
	payload := []byte("noisy but intact")
	res, err := RunReliable(cfg, payload)
	if err != nil {
		// Under heavy noise the frame can exceed the code's capacity; a
		// clean error (not silent corruption) is acceptable behavior.
		t.Logf("transfer failed cleanly under noise: %v", err)
		return
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("silent corruption under noise")
	}
}

func TestReliableRejectsOversizedPayload(t *testing.T) {
	cfg := DefaultChannelConfig(406)
	if _, err := RunReliable(cfg, make([]byte, 300)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReliableRetransmitsOnlyFailedChunks(t *testing.T) {
	// meeflush at intensity 12 corrupts some bit windows but not most, so
	// typically a subset of chunks fails the first pass — the ARQ must resend
	// only those.
	cfg := DefaultChannelConfig(407)
	cfg.Fault = &fault.Config{Seed: 3, Kinds: []fault.Kind{fault.MEEFlush}, Intensity: 6}
	payload := []byte("0123456789abcdef0123456789abcdef") // 4 chunks
	res, err := RunReliable(cfg, payload)
	if err != nil {
		t.Fatalf("expected delivery at this calibrated intensity, got: %v (attempts %d)", err, res.Attempts)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload corrupted: %q", res.Payload)
	}
	if res.Chunks != 4 || res.ChunksDelivered != 4 {
		t.Fatalf("chunks %d/%d", res.ChunksDelivered, res.Chunks)
	}
	if res.Attempts < 2 {
		t.Fatal("fault campaign caused no retransmission — scenario lost its teeth")
	}
	if res.RetransmittedChunks >= res.Chunks*(res.Attempts-1) {
		t.Fatalf("retransmitted %d chunks over %d retries — whole-frame ARQ, not selective",
			res.RetransmittedChunks, res.Attempts-1)
	}
	t.Logf("attempts=%d retransmitted=%d goodput=%.2f", res.Attempts, res.RetransmittedChunks, res.GoodputKBps)
}

func TestReliableGoodputFoldsAllAttempts(t *testing.T) {
	// On a clean link 1 attempt suffices; goodput must equal the single-shot
	// coding-overhead rate exactly, and any retransmission can only lower it.
	cfg := DefaultChannelConfig(404)
	payload := []byte("0123456789abcdef") // 2 chunks
	res, err := RunReliable(cfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	codec := code.Codec{InterleaveDepth: 8}
	perChunk := codec.EncodedBits(8)
	minBits := 2 * perChunk
	singleShot := res.Channel.KBps * float64(len(payload)*8) / float64(minBits)
	if res.Attempts == 1 {
		if math.Abs(res.GoodputKBps-singleShot) > 1e-9 {
			t.Fatalf("goodput %.4f != single-shot %.4f", res.GoodputKBps, singleShot)
		}
	} else if res.GoodputKBps >= singleShot {
		t.Fatalf("goodput %.4f with %d attempts not below single-shot %.4f",
			res.GoodputKBps, res.Attempts, singleShot)
	}
}
