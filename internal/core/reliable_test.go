package core

import (
	"bytes"
	"testing"
)

func TestReliableTransferCleanPayload(t *testing.T) {
	cfg := DefaultChannelConfig(404)
	payload := []byte("AES-128 session key: 00112233445566778899aabbccddeeff")
	res, err := RunReliable(cfg, payload)
	if err != nil {
		t.Fatalf("reliable transfer failed: %v (raw errors %d)", err, res.Channel.BitErrors)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload corrupted: %q", res.Payload)
	}
	if !res.Stats.CRCOK {
		t.Fatal("CRC not verified")
	}
	// The raw channel has a ~2% error floor, so over ~900 channel bits
	// some corrections are expected — that is the point of the layer.
	t.Logf("raw bit errors %d, FEC corrections %d, goodput %.1f KBps",
		res.Channel.BitErrors, res.Stats.Corrections, res.GoodputKBps)
	if res.GoodputKBps <= 0 || res.GoodputKBps >= res.Channel.KBps {
		t.Fatalf("goodput %.1f vs raw %.1f: coding overhead not accounted", res.GoodputKBps, res.Channel.KBps)
	}
}

func TestReliableTransferSurvivesMEENoise(t *testing.T) {
	cfg := DefaultChannelConfig(405)
	cfg.Noise = NoiseMEE512
	payload := []byte("noisy but intact")
	res, err := RunReliable(cfg, payload)
	if err != nil {
		// Under heavy noise the frame can exceed the code's capacity; a
		// clean error (not silent corruption) is acceptable behavior.
		t.Logf("transfer failed cleanly under noise: %v", err)
		return
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("silent corruption under noise")
	}
}

func TestReliableRejectsOversizedPayload(t *testing.T) {
	cfg := DefaultChannelConfig(406)
	if _, err := RunReliable(cfg, make([]byte, 300)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
