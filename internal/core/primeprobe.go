package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// PrimeProbeResult reports the §5.2 baseline experiment (Figure 6a): the
// classic Prime+Probe roles applied to the MEE cache, which the paper shows
// cannot sustain communication because probing the whole 8-way set costs
// eight main-memory accesses (>3500 cycles) against a ~300-cycle signal.
type PrimeProbeResult struct {
	Sent       []byte
	Received   []byte
	ProbeTimes []sim.Cycles // per-window total probe latency (the Fig. 6a trace)
	Threshold  sim.Cycles
	BitErrors  int
	ErrorRate  float64
}

// RunPrimeProbe executes the baseline: the spy owns the eviction set and
// probes all of it every window; the trojan signals '1' by touching a single
// conflicting address. Setup mirrors RunChannel with the roles reversed.
func RunPrimeProbe(cfg ChannelConfig) (*PrimeProbeResult, error) {
	cfg.applyDefaults()
	plat := cfg.boot()
	defer plat.Close()

	tCalEnd := cfg.CalBudget
	tSetupEnd := tCalEnd + cfg.SetupBudget
	tSearchEnd := tSetupEnd + cfg.SearchBudget
	t0 := tSearchEnd
	tEnd := t0 + sim.Cycles(len(cfg.Bits))*cfg.Window

	spyProc := plat.NewProcess("pp-spy")
	trojanProc := plat.NewProcess("pp-trojan")
	const calPages = 8
	const spyCandidates = 96
	const trojanCandidates = 24
	if _, err := spyProc.CreateEnclave(calPages + spyCandidates); err != nil {
		return nil, err
	}
	if _, err := trojanProc.CreateEnclave(calPages + trojanCandidates); err != nil {
		return nil, err
	}

	res := &PrimeProbeResult{Sent: cfg.Bits}
	var spyErr, trojanErr error
	var evSet []enclave.VAddr

	// Spy: builds and owns the eviction set; probes all ways per window.
	plat.SpawnThread("pp-spy", spyProc, cfg.SpyCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := spyProc.Enclave().Base
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		th.SpinUntil(tCalEnd)

		cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), spyCandidates, cfg.Index512)
		a1, err := FindEvictionSet(th, cands, threshold)
		if err != nil {
			spyErr = err
			return
		}
		evSet = a1.EvictionSet
		if th.Now() > tSetupEnd {
			spyErr = fmt.Errorf("core: prime+probe spy setup overran (%d > %d)", th.Now(), tSetupEnd)
			return
		}
		th.SpinUntil(tSetupEnd)

		// Search phase: keep the set primed so the trojan can find a
		// conflicting address.
		for th.Now() < tSearchEnd-20_000 {
			prime(th, evSet)
			th.Spin(500)
		}

		// Baseline for the probe-total threshold: all-hit probes.
		var baseSum sim.Cycles
		const baseSamples = 10
		for s := 0; s < baseSamples; s++ {
			baseSum += probeAll(th, evSet)
		}
		// One evicted way costs roughly one extra DRAM access (~270);
		// split the difference.
		res.Threshold = baseSum/baseSamples + 135

		res.Received = make([]byte, len(cfg.Bits))
		res.ProbeTimes = make([]sim.Cycles, len(cfg.Bits))
		probeOffset := sim.Cycles(float64(cfg.Window) * cfg.ProbePhase)
		for i := range cfg.Bits {
			waitUntilTimer(th, t0+sim.Cycles(i)*cfg.Window+probeOffset)
			t := probeAll(th, evSet)
			res.ProbeTimes[i] = t
			if t > res.Threshold {
				res.Received[i] = 1
			}
		}
	})

	// Trojan: finds one address conflicting with the spy's set, then sends
	// bits by touching it.
	plat.SpawnThread("pp-trojan", trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := trojanProc.Enclave().Base
		th.SpinUntil(tCalEnd / 2) // staggered against the spy's calibration
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		th.SpinUntil(tSetupEnd)

		cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), trojanCandidates, cfg.Index512)
		const samples = 6
		bestScore, conflict := -1, enclave.VAddr(0)
		for _, cand := range cands {
			score := 0
			for s := 0; s < samples; s++ {
				th.Access(cand)
				th.Flush(cand)
				th.SpinUntil(th.Now() + 30_000)
				if timedAccess(th, cand) > threshold {
					score++
				}
				th.Flush(cand)
			}
			if score > bestScore {
				bestScore, conflict = score, cand
			}
		}
		if bestScore < samples-2 {
			trojanErr = fmt.Errorf("core: prime+probe trojan found no conflicting address (best %d/%d)", bestScore, samples)
			return
		}
		if th.Now() > t0 {
			trojanErr = fmt.Errorf("core: prime+probe trojan search overran (%d > %d)", th.Now(), t0)
			return
		}

		for i, bit := range cfg.Bits {
			waitUntilTimer(th, t0+sim.Cycles(i)*cfg.Window)
			if bit == 1 {
				th.Access(conflict)
				th.Flush(conflict)
			}
		}
	})

	plat.Run(tEnd + cfg.Window)
	if spyErr != nil {
		return res, spyErr
	}
	if trojanErr != nil {
		return res, trojanErr
	}
	if res.Received == nil {
		return res, fmt.Errorf("core: prime+probe spy never completed")
	}
	for i := range cfg.Bits {
		if res.Received[i] != cfg.Bits[i] {
			res.BitErrors++
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(cfg.Bits))
	return res, nil
}

// probeAll measures the total time to access (and flush) every way of the
// eviction set — the paper's point is that this total exceeds 3500 cycles,
// drowning the ~300-cycle single-way signal.
func probeAll(th *platform.Thread, set []enclave.VAddr) sim.Cycles {
	t1 := th.TimerNow()
	for _, a := range set {
		th.Access(a)
	}
	t2 := th.TimerNow()
	for _, a := range set {
		th.Flush(a)
	}
	return t2 - t1 - enclave.TimerReadCycles
}
