package core

import (
	"fmt"
	"strconv"

	"meecc/internal/enclave"
	"meecc/internal/fault"
	"meecc/internal/obs"
	"meecc/internal/sim"
)

// This file is the declarative entry point the experiment harness
// (internal/exp) drives: each study is a pure function of a flat
// string-parameter map and a seed, so trials are re-entrant and can fan
// out across goroutines with no shared state.

// ParseNoiseKind maps a spec string to a NoiseKind.
func ParseNoiseKind(s string) (NoiseKind, error) {
	switch s {
	case "", "none":
		return NoiseNone, nil
	case "memory":
		return NoiseMemory, nil
	case "mee512":
		return NoiseMEE512, nil
	case "mee4k":
		return NoiseMEE4K, nil
	default:
		return NoiseNone, fmt.Errorf("core: unknown noise kind %q", s)
	}
}

// parseEPCMode maps a spec string to an enclave allocation mode.
func parseEPCMode(s string) (enclave.AllocMode, error) {
	switch s {
	case "", "sequential", "contiguous":
		return enclave.AllocSequential, nil
	case "chunked", "fragmented":
		return enclave.AllocChunked, nil
	case "shuffled":
		return enclave.AllocShuffled, nil
	default:
		return enclave.AllocSequential, fmt.Errorf("core: unknown epc mode %q", s)
	}
}

// BuildChannelConfig constructs a ChannelConfig from declarative string
// parameters — the cell format of the experiment harness. Recognized
// parameters (all optional):
//
//	window      per-bit timing window in cycles
//	bits        payload length in bits
//	pattern     "random" (seeded per trial), "alternating", or a 0/1
//	            string repeated to length ("100" is Figure 8's sequence)
//	noise       none | memory | mee512 | mee4k
//	policy      MEE replacement policy override
//	epc         sequential | chunked | shuffled
//	repetition  repetition-coding factor
//	twophase    "true"/"false": forward+backward eviction
//	probephase  spy probe point as a window fraction (0..1)
//	faults      fault kinds to inject: "all", "none", or a comma list
//	            (migration,timer,paging,meeflush,storm)
//	intensity   fault campaign intensity (default 1 when faults are set)
//	faultseed   pins the fault schedule seed (default: derived from the
//	            trial seed, so seed replicates see different schedules)
func BuildChannelConfig(params map[string]string, seed uint64) (ChannelConfig, error) {
	cfg := DefaultChannelConfig(seed)
	nbits := len(cfg.Bits)
	pattern := "random"
	var faultKinds []fault.Kind
	faultIntensity := 1.0
	faultSeed := seed ^ 0x9e3779b97f4a7c15
	haveFaults := false
	for name, val := range params {
		var err error
		switch name {
		case "window":
			var w int64
			w, err = strconv.ParseInt(val, 10, 64)
			cfg.Window = sim.Cycles(w)
		case "bits":
			nbits, err = strconv.Atoi(val)
		case "pattern":
			pattern = val
		case "noise":
			cfg.Noise, err = ParseNoiseKind(val)
		case "policy":
			cfg.Options.MEEPolicy = val
		case "epc":
			cfg.Options.EPCMode, err = parseEPCMode(val)
		case "repetition":
			cfg.Repetition, err = strconv.Atoi(val)
		case "twophase":
			cfg.TwoPhaseEviction, err = strconv.ParseBool(val)
		case "probephase":
			cfg.ProbePhase, err = strconv.ParseFloat(val, 64)
		case "faults":
			faultKinds, err = fault.ParseKinds(val)
			haveFaults = true
		case "intensity":
			faultIntensity, err = strconv.ParseFloat(val, 64)
			haveFaults = true
		case "faultseed":
			faultSeed, err = strconv.ParseUint(val, 10, 64)
		default:
			return cfg, fmt.Errorf("core: unknown channel parameter %q", name)
		}
		if err != nil {
			return cfg, fmt.Errorf("core: channel parameter %s=%q: %v", name, val, err)
		}
	}
	if nbits < 1 {
		return cfg, fmt.Errorf("core: channel parameter bits must be >= 1, got %d", nbits)
	}
	if haveFaults && faultIntensity > 0 {
		if faultKinds == nil && params["faults"] == "" {
			faultKinds = fault.AllKinds()
		}
		if len(faultKinds) > 0 {
			cfg.Fault = &fault.Config{Seed: faultSeed, Kinds: faultKinds, Intensity: faultIntensity}
		}
	}
	switch pattern {
	case "random":
		cfg.Bits = RandomBits(seed, nbits)
	case "alternating":
		cfg.Bits = AlternatingBits(nbits)
	default:
		for _, ch := range pattern {
			if ch != '0' && ch != '1' {
				return cfg, fmt.Errorf("core: channel pattern %q is not random, alternating, or a 0/1 string", pattern)
			}
		}
		cfg.Bits = PatternBits(pattern, nbits)
	}
	return cfg, nil
}

// ChannelTrial runs one covert-channel trial from declarative parameters
// at the given seed and returns its scalar metrics — the harness's
// "channel" study. A run whose setup fails returns an error (the harness
// records it as a cell failure).
func ChannelTrial(params map[string]string, seed uint64, withMetrics bool) (map[string]float64, *obs.Snapshot, error) {
	return ChannelTrialWarm(params, seed, withMetrics, nil)
}

// ChannelTrialWarm is ChannelTrial with an optional warm-state cache: when
// warm is non-nil and the config qualifies for warm forking (no noise, no
// faults, no observer — see warmRestriction), the trial forks a cached
// warmed platform instead of warming its own. The result is exactly the
// one a fresh run produces, so callers may mix cached and uncached trials
// freely; configs the warm path cannot carry silently fall back to
// RunChannel.
func ChannelTrialWarm(params map[string]string, seed uint64, withMetrics bool, warm *WarmCache) (map[string]float64, *obs.Snapshot, error) {
	cfg, err := BuildChannelConfig(params, seed)
	if err != nil {
		return nil, nil, err
	}
	var o *obs.Observer
	if withMetrics {
		o = obs.NewObserver()
		cfg.Obs = o
	}
	var res *ChannelResult
	if warm != nil && warmRestriction(cfg) == nil {
		ws, werr := warm.Warm(cfg)
		if werr != nil {
			return nil, nil, werr
		}
		res, err = ws.Run(cfg)
	} else {
		res, err = RunChannel(cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	return map[string]float64{
		"kbps":         res.KBps,
		"error_rate":   res.ErrorRate,
		"bit_errors":   float64(res.BitErrors),
		"bits":         float64(len(res.Sent)),
		"eviction_set": float64(res.EvictionSetSize),
		"setup_mcyc":   float64(res.SetupCycles) / 1e6,
	}, o.Snapshot(), nil
}

// CapacityTrial runs one §4.1 capacity experiment (Figure 4) from
// declarative parameters — the harness's "capacity" study. Parameters:
//
//	epc      sequential | chunked | shuffled
//	samples  eviction tests per candidate-set size
//
// Metrics: p_evict_<n> per candidate count n, plus capacity_kb.
func CapacityTrial(params map[string]string, seed uint64, withMetrics bool) (map[string]float64, *obs.Snapshot, error) {
	opts := DefaultOptions(seed)
	samples := 25
	for name, val := range params {
		var err error
		switch name {
		case "epc":
			opts.EPCMode, err = parseEPCMode(val)
		case "samples":
			samples, err = strconv.Atoi(val)
		default:
			return nil, nil, fmt.Errorf("core: unknown capacity parameter %q", name)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: capacity parameter %s=%q: %v", name, val, err)
		}
	}
	if samples < 1 {
		return nil, nil, fmt.Errorf("core: capacity parameter samples must be >= 1, got %d", samples)
	}
	var o *obs.Observer
	if withMetrics {
		o = obs.NewObserver()
		opts.Obs = o
	}
	res, err := MeasureCapacity(opts, nil, samples)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]float64{"capacity_kb": float64(res.CapacityBytes) / 1024}
	for _, p := range res.Points {
		out[fmt.Sprintf("p_evict_%d", p.Candidates)] = p.Probability
	}
	return out, o.Snapshot(), nil
}
