package core

import "testing"

func TestParallelChannelSingleLaneMatchesBaseline(t *testing.T) {
	cfg := DefaultChannelConfig(71)
	cfg.Bits = RandomBits(71, 64)
	res, err := RunParallelChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.1 {
		t.Fatalf("single-lane error %.3f", res.ErrorRate)
	}
	if res.KBps < 30 || res.KBps > 37 {
		t.Fatalf("single-lane rate %.1f", res.KBps)
	}
}

func TestParallelChannelTwoLanesDoubleRate(t *testing.T) {
	cfg := DefaultChannelConfig(72)
	cfg.Bits = RandomBits(72, 128)
	res, err := RunParallelChannel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.KBps < 60 || res.KBps > 70 {
		t.Fatalf("two-lane rate %.1f KBps, want ~66", res.KBps)
	}
	if res.ErrorRate > 0.12 {
		t.Fatalf("two-lane error %.3f (lane errors %v, evsets %v)", res.ErrorRate, res.LaneErrors, res.EvictionSetSizes)
	}
	t.Logf("two lanes: %.1f KBps at %.2f%% error (lane errors %v)",
		res.KBps, 100*res.ErrorRate, res.LaneErrors)
}

func TestParallelChannelValidation(t *testing.T) {
	cfg := DefaultChannelConfig(73)
	cfg.Bits = RandomBits(73, 63) // not a multiple of 2
	if _, err := RunParallelChannel(cfg, 2); err == nil {
		t.Fatal("odd bit count accepted for 2 lanes")
	}
	cfg.Bits = RandomBits(73, 64)
	if _, err := RunParallelChannel(cfg, 3); err == nil {
		t.Fatal("3 lanes accepted on a 4-core part")
	}
}
