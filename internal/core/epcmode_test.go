package core

import (
	"testing"

	"meecc/internal/enclave"
)

// The paper's clean indexing assumes near-contiguous EPC pages. With a
// fragmented (chunked) EPC the 4 KB-stride arithmetic still holds within
// each contiguous run, so the attack should keep working.
func TestChannelUnderChunkedEPC(t *testing.T) {
	ok := 0
	for seed := uint64(200); seed < 203; seed++ {
		cfg := DefaultChannelConfig(seed)
		cfg.Options.EPCMode = enclave.AllocChunked
		cfg.Bits = RandomBits(seed, 64)
		res, err := RunChannel(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			continue
		}
		if res.ErrorRate <= 0.15 {
			ok++
		}
	}
	if ok < 2 {
		t.Fatalf("channel worked for only %d/3 chunked-EPC seeds", ok)
	}
}

// Under a fully shuffled EPC the candidate arithmetic collapses: versions
// lines land in effectively random sets, so Algorithm 1 should fail (or
// find nothing useful) rather than silently succeed.
func TestChannelUnderShuffledEPCFailsCleanly(t *testing.T) {
	cfg := DefaultChannelConfig(210)
	cfg.Options.EPCMode = enclave.AllocShuffled
	cfg.Bits = RandomBits(210, 32)
	res, err := RunChannel(cfg)
	if err != nil {
		return // clean failure is the expected outcome
	}
	// If it somehow succeeded, the result must at least be coherent.
	if res.EvictionSetSize == 0 {
		t.Fatal("success reported with empty eviction set")
	}
	t.Logf("channel survived shuffled EPC (eviction set %d, err %.2f)", res.EvictionSetSize, res.ErrorRate)
}
