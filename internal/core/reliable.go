package core

import (
	"bytes"
	"fmt"

	"meecc/internal/code"
)

// ReliableResult reports a framed, forward-error-corrected transfer over
// the covert channel — the error handling the paper defers.
type ReliableResult struct {
	// Channel is the underlying raw run (the last attempt's).
	Channel *ChannelResult
	// Payload is the decoded frame payload (nil if any chunk's CRC failed).
	Payload []byte
	// Stats aggregates FEC corrections across chunks and attempts; CRCOK is
	// true only when every chunk arrived checksum-intact.
	Stats code.DecodeStats
	// GoodputKBps is payload bytes per second over every channel bit spent,
	// across all attempts (pilot-free: this layer has no pilots).
	GoodputKBps float64
	// Attempts is how many transmissions were needed (ARQ on CRC failure).
	Attempts int
	// Chunks and ChunksDelivered count the ARQ units; RetransmittedChunks is
	// how many chunk transmissions were repeats.
	Chunks, ChunksDelivered, RetransmittedChunks int
}

// reliableAttempts is the ARQ retry budget: if the FEC cannot repair a
// chunk (CRC failure), the trojan retransmits that chunk under fresh
// channel conditions, as a real sender would.
const reliableAttempts = 3

// reliableChunkBytes is the ARQ unit: each chunk is its own
// len+payload+CRC-16 frame, so one burst of errors costs one small
// retransmission instead of the whole payload.
const reliableChunkBytes = 8

// RunReliable transmits payload over the channel with Hamming(7,4) FEC,
// 8-deep interleaving, and per-chunk CRC-16 framing. Chunks whose checksum
// fails are retransmitted — only those chunks — up to two more times.
// cfg.Bits is ignored; use cfg.Repetition on top for extremely noisy
// environments.
func RunReliable(cfg ChannelConfig, payload []byte) (*ReliableResult, error) {
	if len(payload) > code.MaxPayload {
		return nil, fmt.Errorf("core: payload %d exceeds %d bytes", len(payload), code.MaxPayload)
	}
	codec := code.Codec{InterleaveDepth: 8}
	var chunks [][]byte
	for off := 0; off < len(payload); off += reliableChunkBytes {
		end := off + reliableChunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		chunks = append(chunks, payload[off:end])
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("core: reliable transfer of empty payload")
	}
	encoded := make([][]byte, len(chunks))
	for i, ch := range chunks {
		bits, err := codec.Encode(ch)
		if err != nil {
			return nil, err
		}
		encoded[i] = bits
	}

	out := &ReliableResult{Chunks: len(chunks)}
	got := make([][]byte, len(chunks))
	pending := make([]int, len(chunks))
	for i := range pending {
		pending[i] = i
	}
	totalBits := 0
	var lastErr error
	for attempt := 0; attempt < reliableAttempts && len(pending) > 0; attempt++ {
		var bits []byte
		for _, ci := range pending {
			bits = append(bits, encoded[ci]...)
		}
		attemptCfg := cfg
		attemptCfg.Options.Seed = cfg.Options.Seed + uint64(attempt)*0x9E3779B9
		attemptCfg.Bits = bits
		ch, err := RunChannel(attemptCfg)
		if err != nil {
			return nil, err
		}
		out.Channel = ch
		out.Attempts = attempt + 1
		totalBits += len(bits)
		if attempt > 0 {
			out.RetransmittedChunks += len(pending)
		}

		var still []int
		off := 0
		for _, ci := range pending {
			n := len(encoded[ci])
			decoded, st, err := codec.Decode(ch.Received[off : off+n])
			off += n
			out.Stats.Corrections += st.Corrections
			if err != nil || len(decoded) != len(chunks[ci]) {
				still = append(still, ci)
				lastErr = fmt.Errorf("core: reliable transfer: chunk %d failed after %d corrections", ci, st.Corrections)
				continue
			}
			got[ci] = decoded
			out.ChunksDelivered++
		}
		pending = still
	}

	// Goodput folds every channel bit spent — original frames and
	// retransmissions alike — into the denominator.
	if out.Channel != nil && totalBits > 0 {
		out.GoodputKBps = out.Channel.KBps * float64(len(payload)*8) / float64(totalBits)
	}
	if len(pending) > 0 {
		return out, fmt.Errorf("core: reliable transfer failed: %d/%d chunks undelivered after %d attempts (%v)",
			len(pending), len(chunks), reliableAttempts, lastErr)
	}
	assembled := make([]byte, 0, len(payload))
	for _, g := range got {
		assembled = append(assembled, g...)
	}
	out.Stats.CRCOK = true
	out.Payload = assembled
	if !bytes.Equal(assembled, payload) {
		// CRC passed but content differs — a 2^-16 event worth surfacing.
		out.Payload = nil
		out.Stats.CRCOK = false
		return out, fmt.Errorf("core: reliable transfer CRC collision")
	}
	return out, nil
}
