package core

import (
	"bytes"
	"fmt"

	"meecc/internal/code"
)

// ReliableResult reports a framed, forward-error-corrected transfer over
// the covert channel — the error handling the paper defers.
type ReliableResult struct {
	// Channel is the underlying raw run.
	Channel *ChannelResult
	// Payload is the decoded frame payload (nil if the CRC failed).
	Payload []byte
	// Stats reports FEC corrections and checksum status.
	Stats code.DecodeStats
	// GoodputKBps is payload bytes per second after coding overhead (and
	// after retransmissions).
	GoodputKBps float64
	// Attempts is how many transmissions were needed (ARQ on CRC failure).
	Attempts int
}

// reliableAttempts is the ARQ retry budget: if the FEC cannot repair a
// frame (CRC failure), the trojan retransmits under fresh channel
// conditions, as a real sender would.
const reliableAttempts = 3

// RunReliable transmits payload over the channel with Hamming(7,4) FEC,
// 8-deep interleaving, and CRC-16 framing, retransmitting up to two times
// if the checksum fails. cfg.Bits is ignored; use cfg.Repetition on top
// for extremely noisy environments.
func RunReliable(cfg ChannelConfig, payload []byte) (*ReliableResult, error) {
	codec := code.Codec{InterleaveDepth: 8}
	bits, err := codec.Encode(payload)
	if err != nil {
		return nil, err
	}
	var out *ReliableResult
	var lastErr error
	for attempt := 0; attempt < reliableAttempts; attempt++ {
		attemptCfg := cfg
		attemptCfg.Options.Seed = cfg.Options.Seed + uint64(attempt)*0x9E3779B9
		attemptCfg.Bits = bits
		ch, err := RunChannel(attemptCfg)
		if err != nil {
			return nil, err
		}
		out = &ReliableResult{Channel: ch, Attempts: attempt + 1}
		decoded, st, err := codec.Decode(ch.Received)
		out.Stats = st
		if err != nil {
			lastErr = fmt.Errorf("core: reliable transfer failed after %d corrections: %w", st.Corrections, err)
			continue
		}
		out.Payload = decoded
		// Goodput: payload bits over channel bits across all attempts.
		out.GoodputKBps = ch.KBps * float64(len(payload)*8) / float64(len(bits)) / float64(attempt+1)
		if !bytes.Equal(decoded, payload) {
			// CRC passed but content differs — a 2^-16 event worth surfacing.
			return out, fmt.Errorf("core: reliable transfer CRC collision")
		}
		return out, nil
	}
	return out, lastErr
}
