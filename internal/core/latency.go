package core

import (
	"meecc/internal/enclave"
	"meecc/internal/mee"
	"meecc/internal/platform"
	"meecc/internal/trace"
)

// LatencyResult is the Figure 5 dataset: the distribution of protected-
// region main-memory access latencies, bucketed by the integrity-tree level
// that hit in the MEE cache, plus the per-stride mode mixes.
type LatencyResult struct {
	// ByLevel histograms the measured latency of every sample that
	// terminated at a given tree level.
	ByLevel map[mee.HitLevel]*trace.Histogram
	// ByStride counts, for each access stride, how many samples terminated
	// at each level — the paper's observation that 64 B/512 B strides give
	// versions/L0 hits while 4 KB+ strides climb the tree.
	ByStride map[int]*[5]int
	// Strides in measurement order.
	Strides []int
}

// MeanLatency returns the mean measured latency for a hit level (0 if no
// samples).
func (r *LatencyResult) MeanLatency(h mee.HitLevel) float64 {
	if hst := r.ByLevel[h]; hst != nil {
		return hst.Mean()
	}
	return 0
}

// CharacterizeLatency reproduces §5.1: a single enclave thread sweeps its
// protected buffer at strides of 64 B, 512 B, 4 KB, 32 KB and 256 KB,
// flushing each line from the CPU caches so every access takes the
// main-memory path, and times each access with the hyperthread timer. The
// ground-truth hit level for each sample comes from the harness.
func CharacterizeLatency(opts Options, samplesPerStride int) (*LatencyResult, error) {
	strides := []int{64, 512, 4096, 32 << 10, 256 << 10}
	plat := opts.boot()
	defer plat.Close()

	pr := plat.NewProcess("latency")
	// Buffer: large enough that 256 KB stride gets samplesPerStride
	// distinct addresses, capped by the EPC.
	bufBytes := samplesPerStride * (256 << 10)
	if max := 64 << 20; bufBytes > max {
		bufBytes = max
	}
	pages := bufBytes / enclave.PageBytes
	if _, err := pr.CreateEnclave(pages); err != nil {
		return nil, err
	}
	base := pr.Enclave().Base

	res := &LatencyResult{
		ByLevel:  make(map[mee.HitLevel]*trace.Histogram),
		ByStride: make(map[int]*[5]int),
		Strides:  strides,
	}
	for h := mee.HitVersions; h <= mee.HitRoot; h++ {
		res.ByLevel[h] = trace.NewHistogram(25)
	}

	plat.SpawnThread("latency", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		for _, stride := range strides {
			counts := &[5]int{}
			res.ByStride[stride] = counts
			va := base
			end := base + enclave.VAddr(bufBytes)
			for s := 0; s < samplesPerStride; s++ {
				t1 := th.TimerNow()
				ar := th.Access(va)
				t2 := th.TimerNow()
				th.Flush(va)
				if ar.WentToMEE {
					measured := float64(t2 - t1 - enclave.TimerReadCycles)
					res.ByLevel[ar.MEEHit].Add(measured)
					counts[ar.MEEHit]++
				}
				va += enclave.VAddr(stride)
				if va >= end {
					va = base + enclave.VAddr(int(va-end)%stride)
				}
			}
		}
	})
	plat.Run(-1)
	return res, nil
}
