package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// In-band synchronization: the base protocol assumes trojan and spy agree
// on the transmission start out of band. This extension drops that
// assumption for the data phase. The trojan starts at a time of its own
// choosing and repeats a framed transmission (alternating preamble, sync
// word, payload) three times; the spy detects activity from eviction
// events, then tries one probe phase per repetition — sweeping the window
// in thirds — until the frame decodes. Phase sweeping is necessary because
// a probe landing inside the trojan's ~9600-cycle eviction pass re-primes
// the monitor mid-pass and corrupts pattern-dependent decoding; one of
// three phases a third of a window apart is always clear of the pass.

// syncWord is the frame delimiter ('11100010'): it contains runs the
// alternating preamble cannot produce.
var syncWord = []byte{1, 1, 1, 0, 0, 0, 1, 0}

// preambleBits is the number of alternating bits ('10' repeated) prepended.
const preambleBits = 24

// frameRepeats is how many times the trojan sends the frame.
const frameRepeats = 3

// InBandResult reports a transfer with in-band synchronization.
type InBandResult struct {
	Sent     []byte
	Received []byte
	// Attempt is the phase-sweep attempt (0-2) that locked.
	Attempt int
	// SyncFound reports whether the sync word was located.
	SyncFound bool
	// Events is the number of acquisition eviction events observed.
	Events    int
	BitErrors int
	ErrorRate float64
	// KBps is the effective payload rate including framing and repetition
	// overhead.
	KBps float64
}

// findFrame scans one attempt's decoded window stream for the sync word
// followed by a complete payload, returning the payload bits. A corrupted
// sync word, or a sync word too close to the stream's end for the payload
// to fit, yields ok == false — the attempt failed and the sweep moves to
// the next probe phase.
func findFrame(decoded []byte, payloadLen int) (payload []byte, ok bool) {
	for i := 0; i+payloadLen+len(syncWord) <= len(decoded); i++ {
		match := true
		for j, b := range syncWord {
			if decoded[i+j] != b {
				match = false
				break
			}
		}
		if match {
			return decoded[i+len(syncWord) : i+len(syncWord)+payloadLen], true
		}
	}
	return nil, false
}

// awaitTransmission polls the monitor slowly until two eviction-latency
// events appear (one spike can fake a single event), returning the lock
// time and the events seen. A deadline pass without lock returns time 0 —
// the spy observed no transmission. Slow polling matters: re-priming the
// monitor mid-pass would suppress the very evictions being watched for.
func awaitTransmission(th *platform.Thread, monitor enclave.VAddr, threshold, window, deadline sim.Cycles) (sim.Cycles, int) {
	th.Access(monitor)
	th.Flush(monitor)
	events := 0
	for th.TimerNow() < deadline {
		t := timedAccess(th, monitor)
		th.Flush(monitor)
		if t > threshold && t < threshold+400 {
			events++
			if events >= 2 {
				return th.TimerNow(), events
			}
		}
		th.Spin(2 * window / 3)
	}
	return 0, events
}

// RunInBandChannel is RunChannel without an agreed transmission start: the
// trojan begins at a start time of its own choosing (derived from its
// seed) and the spy synchronizes from the signal itself.
func RunInBandChannel(cfg ChannelConfig) (*InBandResult, error) {
	cfg.applyDefaults()
	for _, b := range cfg.Bits {
		if b > 1 {
			return nil, fmt.Errorf("core: bits must be 0/1, got %d", b)
		}
	}
	plat := cfg.boot()
	defer plat.Close()

	tCalEnd := cfg.CalBudget
	tSetupEnd := tCalEnd + cfg.SetupBudget
	tSearchEnd := tSetupEnd + cfg.SearchBudget
	// The trojan picks its own start; the spy knows only "after the
	// search phase, eventually".
	trojanStart := tSearchEnd + sim.Cycles(150_000+int64(cfg.Options.Seed%7)*33_000)

	frame := make([]byte, 0, preambleBits+len(syncWord)+len(cfg.Bits))
	for i := 0; i < preambleBits; i++ {
		frame = append(frame, byte((i+1)%2)) // 1,0,1,0,...
	}
	frame = append(frame, syncWord...)
	frame = append(frame, cfg.Bits...)
	totalWindows := frameRepeats*len(frame) + 12
	tEnd := trojanStart + sim.Cycles(totalWindows+4)*cfg.Window

	trojanProc := plat.NewProcess("ib-trojan")
	spyProc := plat.NewProcess("ib-spy")
	const calPages = 8
	const trojanCandidates = 96
	const spyCandidates = 24
	if _, err := trojanProc.CreateEnclave(calPages + trojanCandidates); err != nil {
		return nil, err
	}
	if _, err := spyProc.CreateEnclave(calPages + spyCandidates); err != nil {
		return nil, err
	}

	res := &InBandResult{Sent: cfg.Bits}
	var trojanErr, spyErr error

	plat.SpawnThread("ib-trojan", trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := trojanProc.Enclave().Base
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		th.SpinUntil(tCalEnd)
		cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), trojanCandidates, cfg.Index512)
		a1, err := FindEvictionSet(th, cands, threshold)
		if err != nil {
			trojanErr = err
			return
		}
		evSet := a1.EvictionSet
		evict := func() {
			for i := 0; i < len(evSet); i++ {
				th.Access(evSet[i])
				th.Flush(evSet[i])
			}
			th.Mfence()
			for i := len(evSet) - 1; i >= 0; i-- {
				th.Access(evSet[i])
				th.Flush(evSet[i])
			}
			th.Mfence()
		}
		th.SpinUntil(tSetupEnd)
		for th.Now() < tSearchEnd-20_000 {
			evict()
			th.Spin(1000)
		}
		// Transmit the frame three times back to back.
		for w := 0; w < frameRepeats*len(frame); w++ {
			waitUntilTimer(th, trojanStart+sim.Cycles(w)*cfg.Window)
			if frame[w%len(frame)] == 1 {
				evict()
			}
		}
	})

	plat.SpawnThread("ib-spy", spyProc, cfg.SpyCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := spyProc.Enclave().Base
		th.SpinUntil(tCalEnd / 2)
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		th.SpinUntil(tSetupEnd)

		cands := pageAddrs(base+enclave.VAddr(calPages*enclave.PageBytes), spyCandidates, cfg.Index512)
		const samples = 10
		bestScore, monitor := -1, enclave.VAddr(0)
		for _, cand := range cands {
			score := 0
			for s := 0; s < samples; s++ {
				th.Access(cand)
				th.Flush(cand)
				th.SpinUntil(th.Now() + 40_000)
				if timedAccess(th, cand) > threshold {
					score++
				}
				th.Flush(cand)
			}
			if score > bestScore {
				bestScore, monitor = score, cand
			}
		}
		if bestScore < samples*6/10 {
			spyErr = fmt.Errorf("core: in-band monitor discovery failed (%d/%d)", bestScore, samples)
			return
		}

		// Acquisition: from the (agreed) end of the setup schedule, poll
		// slowly until evictions start appearing — transmission has begun.
		// Slow polling matters: re-priming the monitor mid-pass would
		// suppress the very evictions being watched for.
		waitUntilTimer(th, tSearchEnd)
		acqDeadline := trojanStart + sim.Cycles(preambleBits/2)*cfg.Window
		firstEvent, events := awaitTransmission(th, monitor, threshold, cfg.Window, acqDeadline)
		if firstEvent == 0 {
			spyErr = fmt.Errorf("core: in-band acquisition saw no transmission")
			return
		}
		res.Events = events

		// Phase sweep: one attempt per frame repetition, probing a third
		// of a window later each time. Decode a frame's worth of windows
		// and look for the sync word with the payload fully inside.
		for attempt := 0; attempt < frameRepeats; attempt++ {
			off := sim.Cycles(attempt) * cfg.Window / 3
			start := firstEvent + sim.Cycles(attempt*len(frame))*cfg.Window
			decoded := make([]byte, 0, len(frame))
			for k := 0; k < len(frame); k++ {
				waitUntilTimer(th, start+sim.Cycles(k)*cfg.Window+off)
				t := timedAccess(th, monitor)
				th.Flush(monitor)
				if t > threshold {
					decoded = append(decoded, 1)
				} else {
					decoded = append(decoded, 0)
				}
			}
			if payload, ok := findFrame(decoded, len(cfg.Bits)); ok {
				res.SyncFound = true
				res.Attempt = attempt
				res.Received = payload
				break
			}
		}
		if !res.SyncFound {
			spyErr = fmt.Errorf("core: sync word not found in %d phase attempts", frameRepeats)
		}
	})

	plat.Run(tEnd + 4_000_000)
	if trojanErr != nil {
		return res, trojanErr
	}
	if spyErr != nil {
		return res, spyErr
	}
	for i := range res.Sent {
		if res.Received[i] != res.Sent[i] {
			res.BitErrors++
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(res.Sent))
	// Effective rate includes the framing and repetition cost.
	res.KBps = plat.WindowKBps(cfg.Window) * float64(len(cfg.Bits)) /
		float64((res.Attempt+1)*len(frame))
	return res, nil
}
