package core

import (
	"encoding/json"
	"fmt"
	"math"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
	"meecc/internal/snapstore"
)

// Encode serializes the warm state — the warm-phase config it was produced
// under, both actors' resume points, the derived channel parameters, and the
// full platform snapshot — into a sealed snapstore blob. Decode of the blob
// yields a state whose Run produces results DeepEqual to this one's.
func (ws *ChannelWarmState) Encode() ([]byte, error) {
	// The warm config is nil in every field warmRestriction forbids
	// (Obs, Fault, onPlatform) and carries no payload (Bits cleared by
	// WarmChannel), so canonical JSON captures it exactly.
	cfgJSON, err := json.Marshal(ws.warmCfg)
	if err != nil {
		return nil, fmt.Errorf("core: encoding warm config: %w", err)
	}
	var w snapstore.Writer
	w.Blob(cfgJSON)
	writeThreadState(&w, ws.trojanSt)
	writeThreadState(&w, ws.spySt)
	w.I64(int64(ws.trojanClock))
	w.I64(int64(ws.spyClock))
	w.U64(uint64(len(ws.evSet)))
	for _, va := range ws.evSet {
		w.U64(uint64(va))
	}
	w.U64(uint64(ws.monitor))
	w.I64(int64(ws.spyThreshold))
	w.I64(int64(ws.evictionSetSize))
	w.I64(int64(ws.monitorScore))
	w.I64(int64(ws.setupCycles))
	if err := snapstore.AppendSnapshot(&w, ws.snap); err != nil {
		return nil, err
	}
	return snapstore.Seal(snapstore.KindWarm, w.Bytes()), nil
}

// DecodeWarmState reverses Encode. Damaged blobs error (never panic); the
// seal's checksum catches corruption before any field is interpreted.
func DecodeWarmState(blob []byte) (*ChannelWarmState, error) {
	payload, err := snapstore.Unseal(snapstore.KindWarm, blob)
	if err != nil {
		return nil, err
	}
	r := snapstore.NewReader(payload)
	cfgJSON := r.Blob()
	ws := &ChannelWarmState{}
	ws.trojanSt = readThreadState(r)
	ws.spySt = readThreadState(r)
	ws.trojanClock = sim.Cycles(r.I64())
	ws.spyClock = sim.Cycles(r.I64())
	n := r.Count(8)
	ws.evSet = make([]enclave.VAddr, n)
	for i := range ws.evSet {
		ws.evSet[i] = enclave.VAddr(r.U64())
	}
	ws.monitor = enclave.VAddr(r.U64())
	ws.spyThreshold = sim.Cycles(r.I64())
	ws.evictionSetSize = int(r.I64())
	ws.monitorScore = int(r.I64())
	ws.setupCycles = sim.Cycles(r.I64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(cfgJSON, &ws.warmCfg); err != nil {
		return nil, fmt.Errorf("%w: warm config: %v", snapstore.ErrCorrupt, err)
	}
	snap, err := snapstore.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", snapstore.ErrCorrupt, r.Remaining())
	}
	ws.snap = snap
	return ws, nil
}

func writeThreadState(w *snapstore.Writer, st platform.ThreadState) {
	w.I64(int64(st.Core))
	w.Bool(st.EnclaveMode)
	w.I64(int64(st.PendingStall))
	w.I64(int64(st.TimerDrift))
	w.U64(math.Float64bits(st.TimerJitter))
}

func readThreadState(r *snapstore.Reader) platform.ThreadState {
	return platform.ThreadState{
		Core:         int(r.I64()),
		EnclaveMode:  r.Bool(),
		PendingStall: sim.Cycles(r.I64()),
		TimerDrift:   sim.Cycles(r.I64()),
		TimerJitter:  math.Float64frombits(r.U64()),
	}
}
