package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// EvictionTest is the primitive from Algorithm 1 (lines 1–11): load the
// victim's versions line into the MEE cache (flushing the data from the CPU
// caches), access every address of the set the same way, then measure how
// long re-accessing the victim takes. If the set's versions data displaced
// the victim's, the measured time shows a versions miss.
func EvictionTest(th *platform.Thread, set []enclave.VAddr, victim enclave.VAddr) sim.Cycles {
	th.Access(victim)
	th.Flush(victim)
	th.Mfence()
	for _, a := range set {
		th.Access(a)
		th.Flush(a)
	}
	th.Mfence()
	t := timedAccess(th, victim)
	th.Flush(victim)
	return t
}

// evictedBy majority-votes reps EvictionTests against the threshold. The
// repetition absorbs tree-PLRU nondeterminism and ambient noise; the paper's
// algorithm runs on identical measurements.
func evictedBy(th *platform.Thread, set []enclave.VAddr, victim enclave.VAddr, threshold sim.Cycles, reps int) bool {
	miss := 0
	for i := 0; i < reps; i++ {
		if EvictionTest(th, set, victim) > threshold {
			miss++
		}
	}
	return miss*2 > reps
}

// Algorithm1Result is the output of eviction-address-set discovery.
type Algorithm1Result struct {
	// IndexSet is the set of candidate addresses whose versions data loads
	// without being evicted by the others (Algorithm 1 lines 13–17).
	IndexSet []enclave.VAddr
	// Test is the probe address used to isolate the eviction set.
	Test enclave.VAddr
	// EvictionSet is the final set of addresses whose versions data share
	// one MEE cache set; its size is the cache associativity.
	EvictionSet []enclave.VAddr
}

// Associativity returns the reverse-engineered number of MEE cache ways.
func (r *Algorithm1Result) Associativity() int { return len(r.EvictionSet) }

// FindEvictionSet implements Algorithm 1 of the paper. candidates must be
// virtual addresses with 4 KB stride inside the protected data region (the
// candidate address set); threshold separates versions hits from misses
// (see calibrateThreshold). It returns the discovered eviction address set.
//
// The candidate set must be large enough to contain a full eviction set —
// the paper uses at least 64 addresses.
func FindEvictionSet(th *platform.Thread, candidates []enclave.VAddr, threshold sim.Cycles) (*Algorithm1Result, error) {
	const reps = 5
	res := &Algorithm1Result{}

	// Lines 13–17: keep candidates whose versions data still hits after
	// accessing everything collected so far.
	for _, cand := range candidates {
		if !evictedBy(th, res.IndexSet, cand, threshold, reps) {
			res.IndexSet = append(res.IndexSet, cand)
		}
	}

	inIndex := make(map[enclave.VAddr]bool, len(res.IndexSet))
	for _, a := range res.IndexSet {
		inIndex[a] = true
	}

	// Lines 18–23: find a test address (outside the index set) that the
	// index set reliably evicts.
	found := false
	for _, cand := range candidates {
		if inIndex[cand] {
			continue
		}
		prime(th, res.IndexSet)
		th.Mfence()
		if evictedBy(th, res.IndexSet, cand, threshold, reps) {
			res.Test = cand
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: no test address found — candidate set of %d too small to overflow a set", len(candidates))
	}

	// Lines 24–32: remove index-set members one at a time; if the test
	// address survives, the removed member shares its set.
	for _, target := range res.IndexSet {
		reduced := make([]enclave.VAddr, 0, len(res.IndexSet)-1)
		for _, a := range res.IndexSet {
			if a != target {
				reduced = append(reduced, a)
			}
		}
		prime(th, res.IndexSet)
		th.Mfence()
		if !evictedBy(th, reduced, res.Test, threshold, reps) {
			res.EvictionSet = append(res.EvictionSet, target)
		}
	}
	if len(res.EvictionSet) == 0 {
		return nil, fmt.Errorf("core: eviction set extraction failed (index set %d)", len(res.IndexSet))
	}
	return res, nil
}
