package core

import (
	"meecc/internal/enclave"
	"meecc/internal/platform"
)

// OverheadRow characterizes the cost of SGX memory protection for one
// working-set size: the mean latency of enclave (MEE-protected) versus
// ordinary reads over the same access pattern. This substrate-validation
// experiment reproduces the well-known SGX result that protected accesses
// cost a small multiple of ordinary ones, with the multiple growing once
// the working set exceeds what the MEE cache covers.
type OverheadRow struct {
	WorkingSetBytes int
	PlainCycles     float64
	EnclaveCycles   float64
}

// Slowdown is the enclave/plain latency ratio.
func (r OverheadRow) Slowdown() float64 {
	if r.PlainCycles == 0 {
		return 0
	}
	return r.EnclaveCycles / r.PlainCycles
}

// MeasureOverhead sweeps working sets (bytes; must be multiples of 4 KB)
// and measures mean uncached read latency inside and outside an enclave.
// Accesses stride 512 B (one versions line each) and are flushed, so every
// read takes the memory path — isolating the MEE's contribution.
func MeasureOverhead(opts Options, workingSets []int, samples int) ([]OverheadRow, error) {
	if len(workingSets) == 0 {
		workingSets = []int{32 << 10, 256 << 10, 2 << 20, 16 << 20}
	}
	plat := opts.boot()
	defer plat.Close()

	maxWS := 0
	for _, ws := range workingSets {
		if ws > maxWS {
			maxWS = ws
		}
	}
	pr := plat.NewProcess("overhead")
	if _, err := pr.CreateEnclave(maxWS / enclave.PageBytes); err != nil {
		return nil, err
	}
	plainBuf := pr.AllocGeneral(maxWS / enclave.PageBytes)
	enclBuf := pr.Enclave().Base

	rows := make([]OverheadRow, len(workingSets))
	plat.SpawnThread("overhead", pr, 0, func(th *platform.Thread) {
		// Warm the working set with one pass, then measure a second pass:
		// small sets keep their versions lines MEE-cached between passes,
		// large sets have thrashed them out and walk deeper.
		measure := func(base enclave.VAddr, ws int) float64 {
			stride := 512
			if ws/stride > samples {
				stride = (ws/samples + 511) &^ 511
			}
			n := ws / stride
			for i := 0; i < n; i++ {
				th.Access(base + enclave.VAddr(i*stride))
				th.Flush(base + enclave.VAddr(i*stride))
			}
			var total int64
			for i := 0; i < n; i++ {
				va := base + enclave.VAddr(i*stride)
				r := th.Access(va)
				th.Flush(va)
				total += int64(r.Lat)
			}
			return float64(total) / float64(n)
		}
		for i, ws := range workingSets {
			rows[i].WorkingSetBytes = ws
			rows[i].PlainCycles = measure(plainBuf, ws)
		}
		th.EnterEnclave()
		for i, ws := range workingSets {
			rows[i].EnclaveCycles = measure(enclBuf, ws)
		}
	})
	plat.Run(-1)
	return rows, nil
}
