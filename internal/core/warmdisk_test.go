package core

import (
	"reflect"
	"sync"
	"testing"

	"meecc/internal/sim"
	"meecc/internal/snapstore"
)

// TestWarmStateDiskRoundTrip is the warm-tier determinism proof: a warm
// state decoded from its sealed blob runs transmissions DeepEqual to the
// in-memory original's, for several transmit configs off one warm phase.
func TestWarmStateDiskRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	base := DefaultChannelConfig(4)
	ws, err := WarmChannel(base)
	if err != nil {
		t.Fatalf("WarmChannel: %v", err)
	}
	blob, err := ws.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := DecodeWarmState(blob)
	if err != nil {
		t.Fatalf("DecodeWarmState: %v", err)
	}
	for _, tc := range []struct {
		window sim.Cycles
		bits   []byte
	}{
		{15000, AlternatingBits(16)},
		{7500, PatternBits("110", 16)},
	} {
		cfg := base
		cfg.Window = tc.window
		cfg.Bits = tc.bits
		mem, memErr := ws.Run(cfg)
		disk, diskErr := dec.Run(cfg)
		if (memErr == nil) != (diskErr == nil) {
			t.Fatalf("window %d: mem err %v, disk err %v", tc.window, memErr, diskErr)
		}
		if !reflect.DeepEqual(mem, disk) {
			t.Errorf("window %d: decoded warm state diverged from in-memory state", tc.window)
		}
	}
	// Damage is rejected, not misdecoded.
	blob[len(blob)/2] ^= 1
	if _, err := DecodeWarmState(blob); err == nil {
		t.Fatal("bit-flipped warm blob decoded without error")
	}
	// Incompatible configs are still rejected after the round trip.
	cfg := base
	cfg.Options.Seed++
	if _, err := dec.Run(cfg); err == nil {
		t.Fatal("decoded warm state accepted an incompatible config")
	}
}

// TestWarmCacheSpillSingleflight pins the spill/re-warm race: while an
// evicted entry's disk spill is still in flight, a miss on the same key must
// adopt the in-flight entry — not recompute the warm phase (the entry is
// gone from the memory tier and not yet in the disk tier).
func TestWarmCacheSpillSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	store, err := snapstore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewWarmCache(1)
	c.AttachStore(store)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.testSpillDelay = func() {
		// Only the first spill (A's) parks; later spills pass through.
		first := false
		once.Do(func() { first = true; close(entered) })
		if first {
			<-release
		}
	}

	cfgA, cfgB := DefaultChannelConfig(5), DefaultChannelConfig(6)
	cfgA.Bits = AlternatingBits(4)
	cfgB.Bits = AlternatingBits(4)

	wsA, err := c.Warm(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Evicts A; its spill parks in testSpillDelay before touching the
		// store, then B's own warm phase runs.
		_, err := c.Warm(cfgB)
		done <- err
	}()
	<-entered

	// A is in neither tier right now. Without the in-flight index this
	// recomputes the warm phase; with it, Warm hands back the same entry.
	wsA2, err := c.Warm(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if wsA2 != wsA {
		t.Error("re-warm during in-flight spill did not adopt the evicted entry")
	}
	if st := c.Stats(); st.Computes != 1 || st.DiskLoads != 0 {
		t.Errorf("during spill: %+v, want 1 compute and 0 disk loads", st)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Computes != 2 || st.DiskLoads != 0 {
		t.Errorf("after release: %+v, want 2 computes and 0 disk loads", st)
	}
}

// TestWarmCacheDiskTier exercises the spill/fault-in path: with capacity 1
// and a store attached, warming a second key evicts the first to disk, and
// re-warming the first is served from disk — no recompute — with results
// equal to the originals.
func TestWarmCacheDiskTier(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	store, err := snapstore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewWarmCache(1)
	c.AttachStore(store)

	cfgA, cfgB := DefaultChannelConfig(5), DefaultChannelConfig(6)
	cfgA.Bits = AlternatingBits(8)
	cfgB.Bits = AlternatingBits(8)

	wsA, err := c.Warm(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	refA, err := wsA.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Warm(cfgB); err != nil { // evicts A, spilling it
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskSpills != 1 {
		t.Fatalf("after eviction: %+v, want 1 spill", st)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d blobs, want 1", store.Len())
	}

	wsA2, err := c.Warm(cfgA) // evicts B, faults A back from disk
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Computes != 2 || st.DiskLoads != 1 {
		t.Fatalf("after fault-in: %+v, want 2 computes and 1 disk load", st)
	}
	gotA, err := wsA2.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refA, gotA) {
		t.Fatal("disk-tier warm state diverged from original")
	}
}
