package core

import (
	"fmt"
	"sort"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// ActivityResult reports the side-channel-direction experiment: a spy
// inferring *when* a victim enclave is in a memory-intensive phase purely
// from the latency of the spy's own protected accesses. The victim's MEE
// traffic contends in the memory system and pollutes the shared MEE cache,
// so the spy's probe latencies rise during the victim's active phases —
// coarse-grained activity inference, the first step toward a full MEE-cache
// side channel (future work the paper's threat model hints at).
type ActivityResult struct {
	// Truth[i] is whether the victim was memory-active during epoch i.
	Truth []bool
	// Inferred[i] is the spy's classification of epoch i.
	Inferred []bool
	// Correct counts matching epochs.
	Correct int
	// Accuracy = Correct / len(Truth).
	Accuracy float64
	// QuietMean and ActiveMean are the spy's mean probe latencies per
	// class (diagnostics).
	QuietMean, ActiveMean float64
}

// debugActivity enables diagnostic printing in tests.
var debugActivity = false

// InferActivity runs the experiment: the victim alternates compute phases
// (no memory traffic) and memory phases (protected-region streaming) of
// epochLen cycles; the spy samples its own enclave's probe latency and
// classifies each epoch against an adaptive threshold.
func InferActivity(opts Options, epochs int, epochLen sim.Cycles) (*ActivityResult, error) {
	if epochs < 4 {
		return nil, fmt.Errorf("core: need at least 4 epochs")
	}
	plat := opts.boot()
	defer plat.Close()

	victimProc := plat.NewProcess("victim")
	spyProc := plat.NewProcess("act-spy")
	const victimPages = 512
	if _, err := victimProc.CreateEnclave(victimPages); err != nil {
		return nil, err
	}
	if _, err := spyProc.CreateEnclave(8); err != nil {
		return nil, err
	}

	res := &ActivityResult{Truth: make([]bool, epochs)}
	// The victim's phase schedule derives from its own seed — the spy does
	// not know it.
	rng := plat.Engine().Rand()
	for i := range res.Truth {
		res.Truth[i] = rng.Float64() < 0.5
	}

	t0 := sim.Cycles(200_000)
	plat.SpawnThread("victim", victimProc, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		base := victimProc.Enclave().Base
		va := base
		for i := 0; i < epochs; i++ {
			end := t0 + sim.Cycles(i+1)*epochLen
			if !res.Truth[i] {
				th.SpinUntil(end) // compute phase: no memory traffic
				continue
			}
			for th.Now() < end { // memory phase: stream protected data
				th.Access(va)
				th.Flush(va)
				// 4 KB stride keeps the victim's integrity-tree walks deep
				// (fresh versions and L0 lines every access), the paper's
				// heavy-MEE-traffic pattern.
				va += enclave.PageBytes
				if va >= base+enclave.VAddr(victimPages*enclave.PageBytes) {
					va = base + (va-base)%enclave.PageBytes + 512
					if (va-base)%enclave.PageBytes == 0 {
						va = base
					}
				}
			}
		}
	})

	epochMeans := make([]float64, epochs)
	plat.SpawnThread("act-spy", spyProc, 2, func(th *platform.Thread) {
		th.EnterEnclave()
		probe := spyProc.Enclave().Base
		th.Access(probe)
		th.Flush(probe)
		for i := 0; i < epochs; i++ {
			end := t0 + sim.Cycles(i+1)*epochLen
			var sum, n int64
			for th.Now() < end-2000 {
				sum += int64(timedAccess(th, probe))
				th.Flush(probe)
				n++
				th.Spin(2000)
			}
			if n > 0 {
				epochMeans[i] = float64(sum) / float64(n)
			}
			th.SpinUntil(end)
		}
	})

	plat.Run(t0 + sim.Cycles(epochs+1)*epochLen)

	// Classify each epoch against the quiet baseline: the minimum epoch
	// mean is the spy's uncontended versions-hit latency (quiet epochs
	// cluster within a few cycles of it), and any epoch more than a fixed
	// contention margin above it is called active. Assumes at least one
	// quiet epoch in the observation span.
	sorted := append([]float64(nil), epochMeans...)
	sort.Float64s(sorted)
	const contentionMargin = 45
	threshold := sorted[0] + contentionMargin
	res.Inferred = make([]bool, epochs)
	var quietSum, activeSum float64
	var quietN, activeN int
	for i, m := range epochMeans {
		res.Inferred[i] = m > threshold
		if res.Inferred[i] == res.Truth[i] {
			res.Correct++
		}
		if res.Truth[i] {
			activeSum += m
			activeN++
		} else {
			quietSum += m
			quietN++
		}
	}
	if quietN > 0 {
		res.QuietMean = quietSum / float64(quietN)
	}
	if activeN > 0 {
		res.ActiveMean = activeSum / float64(activeN)
	}
	res.Accuracy = float64(res.Correct) / float64(epochs)
	if debugActivity {
		for i, m := range epochMeans {
			fmt.Printf("epoch %2d truth=%5v mean=%.0f\n", i, res.Truth[i], m)
		}
	}
	return res, nil
}
