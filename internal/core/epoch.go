package core

import (
	"os"
	"sync/atomic"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// This file is the channel's epoch execution path: once both sides are past
// the setup budget, the remaining work — the trojan's search burst, the
// spy's monitor discovery, the Algorithm 2 transmission, and any background
// noise workload — is a fully scripted op sequence over a fixed set of
// threads. The session compiles that sequence into sim.EpochLane state
// machines that execute inline (no goroutines, no channel handoffs) against
// the exact same Thread model code as the general engine: each lane owns a
// laneCursor implementing platform.Timeline, so every Access/Flush/TimerNow
// runs the same code, draws the same rng values, and commits in the same
// global (clock, spawn id) order. The only transformation beyond scheduling
// is the waitUntilTimer collapse: a poll loop whose reads are effect-free
// (no rng with jitter disabled, no shared state) is advanced analytically
// in one step to the clock the final poll would have reached.
//
// Eligibility is conservative: any spawn the kernel cannot script (fault
// injection), any observer (the engine's Semantic op counters must keep
// counting), or any study callback keeps the session on the general DES
// engine. The cross-engine oracle test asserts byte-identical artifacts.

// forceGeneral pins every channel session to the general DES engine. Test
// hook plus the MEECC_FORCE_GENERAL_ENGINE environment variable (used by
// ci.sh to exercise the fallback path under the race detector).
var forceGeneral atomic.Bool

func init() {
	if os.Getenv("MEECC_FORCE_GENERAL_ENGINE") != "" {
		forceGeneral.Store(true)
	}
}

// SetForceGeneralEngineForTest makes every subsequent channel run use the
// general DES engine even when it is epoch-eligible. Call with false to
// restore the default. Test hook only — it is process-global.
func SetForceGeneralEngineForTest(v bool) { forceGeneral.Store(v) }

// epochEligible reports whether the session's post-setup phases can be
// compiled onto the epoch kernel. Fault campaigns spawn injector actors and
// perturb timers mid-flight; observers need the engine's per-op Semantic
// counters; onPlatform callbacks may attach anything. All of those fall
// back to the general engine.
func (s *channelSession) epochEligible() bool {
	return s.cfg.Fault == nil && s.cfg.onPlatform == nil && s.cfg.Obs == nil &&
		!forceGeneral.Load()
}

// cleanThreadState reports whether a captured thread state is free of the
// perturbations (pending stall, timer drift/jitter) the kernel does not
// model. With fault injection excluded by epochEligible these are always
// zero; the check is defense in depth.
func cleanThreadState(st platform.ThreadState) bool {
	return st.PendingStall == 0 && st.TimerDrift == 0 && st.TimerJitter == 0
}

// laneCursor is the epoch kernel's Timeline: Advance just moves a number
// (with the engine's minimum-one-cycle rule), and the (clock, id) pair is
// the lane's scheduling key.
type laneCursor struct {
	clock sim.Cycles
	id    int
}

func (c *laneCursor) Now() sim.Cycles { return c.clock }

func (c *laneCursor) Advance(n sim.Cycles) {
	if n < 1 {
		n = 1
	}
	c.clock += n
}

func (c *laneCursor) SleepUntil(t sim.Cycles) { c.Advance(t - c.clock) }

// Clock and ID make any lane embedding the cursor a sim.EpochLane (with its
// own Step).
func (c *laneCursor) Clock() sim.Cycles { return c.clock }
func (c *laneCursor) ID() int           { return c.id }

// waitTimerCost is the analytic collapse of waitUntilTimer: the total time
// the poll loop spends until the first timer read at or past deadline.
// Poll k reads the quantized timer at clock c+(k-1)*cost, so the loop exits
// on the first poll at or past d, the first multiple of the resolution that
// reaches deadline. The polls have no side effects (no rng without jitter,
// no shared state), so replacing them with one Advance of the same total is
// invisible to every other lane.
func waitTimerCost(c, deadline, res, cost sim.Cycles) sim.Cycles {
	d := (deadline + res - 1) / res * res
	if c >= d {
		return cost
	}
	k := 1 + (d-c+cost-1)/cost
	return k * cost
}

// evictSeq steps channelSession.evict one operation at a time: Access+Flush
// forward over the set, Mfence, and with two-phase eviction the same
// backward plus a final Mfence. pos==0 means the sequence is at an
// iteration boundary (not mid-eviction).
type evictSeq struct {
	th  *platform.Thread
	set []enclave.VAddr
	two bool
	pos int
}

func (e *evictSeq) reset() { e.pos = 0 }

// step executes the next operation and reports whether the sequence is done.
func (e *evictSeq) step() bool {
	n := len(e.set)
	p := e.pos
	e.pos++
	fwd := 2 * n
	switch {
	case p < fwd:
		a := e.set[p/2]
		if p%2 == 0 {
			e.th.Access(a)
		} else {
			e.th.Flush(a)
		}
		return false
	case p == fwd:
		e.th.Mfence()
		return !e.two
	}
	p -= fwd + 1
	if p < fwd {
		a := e.set[n-1-p/2]
		if p%2 == 0 {
			e.th.Access(a)
		} else {
			e.th.Flush(a)
		}
		return false
	}
	e.th.Mfence()
	return true
}

// Trojan lane states.
const (
	tjBurst = iota // search-phase burst loop (eviction sweeps + spins)
	tjBurstSpin
	tjWait // transmit: wait for the next window
	tjEvict
)

// trojanLane is the sender compiled for the kernel: the search burst (when
// starting fresh) followed by trojanTransmit.
type trojanLane struct {
	laneCursor
	th    *platform.Thread
	s     *channelSession
	ev    evictSeq
	state int
	bit   int

	timerRes, timerCost sim.Cycles
}

func newTrojanLane(id int, clock sim.Cycles, plat *platform.Platform, s *channelSession, st platform.ThreadState, burst bool) *trojanLane {
	l := &trojanLane{laneCursor: laneCursor{clock: clock, id: id}, s: s}
	l.th = plat.DetachThread(s.trojanProc, st, &l.laneCursor)
	l.ev = evictSeq{th: l.th, set: s.evSet, two: s.cfg.TwoPhaseEviction}
	cfg := plat.Config()
	l.timerRes, l.timerCost = sim.Cycles(cfg.TimerResolution), sim.Cycles(cfg.TimerReadCost)
	if !burst {
		l.state = tjWait
	}
	return l
}

func (l *trojanLane) Step() bool {
	s := l.s
	for {
		switch l.state {
		case tjBurst:
			// The continue condition is checked at iteration boundaries
			// only — a sweep that started keeps going even if the clock
			// crosses the cutoff mid-sweep, exactly like trojanBurst.
			if l.ev.pos == 0 && l.th.Now() >= s.t0-20_000 {
				l.state = tjWait
				continue
			}
			if l.ev.step() {
				l.ev.reset()
				l.state = tjBurstSpin
			}
			return true
		case tjBurstSpin:
			l.th.Spin(1000)
			l.state = tjBurst
			return true
		case tjWait:
			if l.bit >= len(s.cfg.Bits) {
				return false
			}
			deadline := s.t0 + sim.Cycles(l.bit)*s.cfg.Window
			l.laneCursor.Advance(waitTimerCost(l.clock, deadline, l.timerRes, l.timerCost))
			if s.cfg.Bits[l.bit] == 1 {
				l.ev.reset()
				l.state = tjEvict
			} else {
				l.bit++
			}
			return true
		default: // tjEvict
			if l.ev.step() {
				l.bit++
				l.state = tjWait
			}
			return true
		}
	}
}

// Spy lane states.
const (
	spDsAccess = iota // discovery: prime the candidate
	spDsFlush1
	spDsSpin
	spDsT1
	spDsAccess2
	spDsT2
	spDsFlush2
	spWait0 // transmit: wait for t0-5000, prime the monitor
	spPrime
	spPrimeFlush
	spWait // per-window probe
	spT1
	spAccess
	spT2
	spFlush
)

// spyLane is the receiver compiled for the kernel: monitor discovery (when
// starting fresh) followed by spyTransmit.
type spyLane struct {
	laneCursor
	th    *platform.Thread
	s     *channelSession
	state int

	// Discovery cursors (spyDiscover's loop variables).
	cand, sample, score int
	bestScore           int
	bestMon             enclave.VAddr

	// Transmit cursors.
	t1, probe sim.Cycles
	bit       int

	timerRes, timerCost sim.Cycles
}

func newSpyLane(id int, clock sim.Cycles, plat *platform.Platform, s *channelSession, st platform.ThreadState, discover bool) *spyLane {
	l := &spyLane{laneCursor: laneCursor{clock: clock, id: id}, s: s, bestScore: -1}
	l.th = plat.DetachThread(s.spyProc, st, &l.laneCursor)
	cfg := plat.Config()
	l.timerRes, l.timerCost = sim.Cycles(cfg.TimerResolution), sim.Cycles(cfg.TimerReadCost)
	if !discover {
		l.state = spWait0
	}
	return l
}

func (l *spyLane) Step() bool {
	s := l.s
	switch l.state {
	case spDsAccess:
		l.th.Access(s.spyCands[l.cand])
		l.state = spDsFlush1
	case spDsFlush1:
		l.th.Flush(s.spyCands[l.cand])
		l.state = spDsSpin
	case spDsSpin:
		l.th.SpinUntil(l.th.Now() + 40_000) // several burst periods
		l.state = spDsT1
	case spDsT1:
		l.t1 = l.th.TimerNow()
		l.state = spDsAccess2
	case spDsAccess2:
		l.th.Access(s.spyCands[l.cand])
		l.state = spDsT2
	case spDsT2:
		t2 := l.th.TimerNow()
		if t2-l.t1-sim.Cycles(enclave.TimerReadCycles) > s.spyThreshold {
			l.score++
		}
		l.state = spDsFlush2
	case spDsFlush2:
		l.th.Flush(s.spyCands[l.cand])
		l.sample++
		l.state = spDsAccess
		if l.sample == spySamples {
			if l.score > l.bestScore {
				l.bestScore, l.bestMon = l.score, s.spyCands[l.cand]
			}
			l.sample, l.score = 0, 0
			l.cand++
			if l.cand == len(s.spyCands) {
				if !s.finishDiscovery(l.th.Now(), l.bestScore, l.bestMon) {
					return false
				}
				l.state = spWait0
			}
		}
	case spWait0:
		l.laneCursor.Advance(waitTimerCost(l.clock, s.t0-5000, l.timerRes, l.timerCost))
		l.state = spPrime
	case spPrime:
		l.th.Access(s.monitor)
		l.state = spPrimeFlush
	case spPrimeFlush:
		l.th.Flush(s.monitor)
		s.res.Received = make([]byte, len(s.cfg.Bits))
		s.res.ProbeTimes = make([]sim.Cycles, len(s.cfg.Bits))
		l.state = spWait
	case spWait:
		if l.bit >= len(s.cfg.Bits) {
			return false
		}
		probeOffset := sim.Cycles(float64(s.cfg.Window) * s.cfg.ProbePhase)
		deadline := s.t0 + sim.Cycles(l.bit)*s.cfg.Window + probeOffset
		l.laneCursor.Advance(waitTimerCost(l.clock, deadline, l.timerRes, l.timerCost))
		l.state = spT1
	case spT1:
		l.t1 = l.th.TimerNow()
		l.state = spAccess
	case spAccess:
		l.th.Access(s.monitor)
		l.state = spT2
	case spT2:
		t2 := l.th.TimerNow()
		l.probe = t2 - l.t1 - sim.Cycles(enclave.TimerReadCycles)
		l.state = spFlush
	default: // spFlush
		l.th.Flush(s.monitor)
		s.res.ProbeTimes[l.bit] = l.probe
		if l.probe > s.spyThreshold {
			s.res.Received[l.bit] = 1
		}
		l.bit++
		l.state = spWait
	}
	return true
}

// noiseLane is a background workload compiled for the kernel: the same walk
// as the noiseSetup.spawn actor bodies, one operation per step, forever
// (the kernel's run limit truncates it exactly like Engine.Run truncates
// the actor).
type noiseLane struct {
	laneCursor
	th      *platform.Thread
	n       *noiseSetup
	off     int
	entered bool
	phase   int // enclave walk: 0 access, 1 flush, 2 spin
}

// lane compiles the prepared workload as an epoch lane starting at `start`.
func (n *noiseSetup) lane(id int, start sim.Cycles, plat *platform.Platform) *noiseLane {
	l := &noiseLane{laneCursor: laneCursor{clock: start, id: id}, n: n}
	l.th = plat.DetachThread(n.pr, platform.ThreadState{Core: n.core}, &l.laneCursor)
	return l
}

func (l *noiseLane) Step() bool {
	n := l.n
	if !n.enclave {
		l.th.Access(n.base + enclave.VAddr(l.off))
		l.off += n.stride
		if l.off >= n.pages*enclave.PageBytes {
			l.off = 0
		}
		return true
	}
	if !l.entered {
		l.th.EnterEnclave()
		l.entered = true
		return true
	}
	va := n.base + enclave.VAddr(l.off)
	switch l.phase {
	case 0:
		l.th.Access(va)
		l.phase = 1
	case 1:
		l.th.Flush(va)
		l.phase = 2
	default:
		l.th.Spin(500)
		l.phase = 0
		l.off += n.stride
		if l.off >= n.pages*enclave.PageBytes {
			l.off = 0
		}
	}
	return true
}

// statsLane is spawnStatsReset as a lane: one effect at t0-1 resetting the
// detector-visible statistics, no simulated time consumed (the actor body
// never advances either).
type statsLane struct {
	laneCursor
	plat *platform.Platform
}

func (l *statsLane) Step() bool {
	l.plat.Caches().LLC().ResetStats()
	l.plat.MEE().ResetStats()
	return false
}

// runEpoch executes a fresh channel session with the warm setup on the
// general engine and everything after the setup budget on the epoch kernel.
// The split point is the end of the setup budget: both sides end their
// setup with SpinUntil(tSetupEnd), a quiescent instant strictly before the
// first op of the burst, the discovery, the noise workload (t0), and the
// stats reset (t0-1), so capturing thread state there and re-driving the
// continuations as lanes preserves the global op order exactly.
func (s *channelSession) runEpoch() (*ChannelResult, error) {
	cfg := s.cfg
	plat := cfg.boot()
	defer plat.Close()
	if err := s.createProcs(plat); err != nil {
		return nil, err
	}

	var (
		trojanSt, spySt     platform.ThreadState
		trojanClk, spyClk   sim.Cycles
		trojanOK            bool
	)
	// Same spawn order as RunChannel's general path (trojan id 0, spy id 1),
	// so the setup phase is bit-for-bit the general run's prefix.
	plat.SpawnThread("trojan", s.trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		if s.trojanSetup(th) {
			trojanSt, trojanClk, trojanOK = th.State(), th.Now(), true
		}
	})
	plat.SpawnThread("spy", s.spyProc, cfg.SpyCore, func(th *platform.Thread) {
		s.spySetup(th)
		spySt, spyClk = th.State(), th.Now()
	})
	// Noise preparation draws from the platform rng; doing it here keeps the
	// draws at the same stream position as the general path's spawnNoise.
	noise, err := prepareNoise(plat, cfg.Noise, cfg.NoiseCore)
	if err != nil {
		return nil, err
	}
	plat.Run(-1)

	if (trojanOK && !cleanThreadState(trojanSt)) || !cleanThreadState(spySt) {
		// Defensive fallback: nothing epoch-eligible can perturb a thread
		// during setup, but if something did, finish on the general engine.
		// Continuation actors keep the relative spawn order (trojan, spy,
		// noise, stats-reset), so clock ties break identically.
		if trojanOK {
			plat.ResumeThread("trojan", s.trojanProc, trojanClk, trojanSt, func(th *platform.Thread) {
				s.trojanBurst(th)
				s.trojanTransmit(th)
			})
		}
		plat.ResumeThread("spy", s.spyProc, spyClk, spySt, func(th *platform.Thread) {
			if s.spyDiscover(th) {
				s.spyTransmit(th)
			}
		})
		if noise != nil {
			noise.spawn(plat, s.t0)
		}
		s.spawnStatsReset(plat)
		plat.Run(s.tEnd + cfg.Window)
		return s.finish(plat, nil)
	}

	// Lane ids mirror the general path's spawn ids: trojan 0, spy 1, then
	// noise, then stats-reset. A dead trojan simply has no lane — its ops
	// vanish from the global order either way.
	lanes := make([]sim.EpochLane, 0, 4)
	if trojanOK {
		lanes = append(lanes, newTrojanLane(0, trojanClk, plat, s, trojanSt, true))
	}
	lanes = append(lanes, newSpyLane(1, spyClk, plat, s, spySt, true))
	nextID := 2
	if noise != nil {
		lanes = append(lanes, noise.lane(2, s.t0, plat))
		nextID = 3
	}
	lanes = append(lanes, &statsLane{laneCursor: laneCursor{clock: s.t0 - 1, id: nextID}, plat: plat})
	sim.RunEpoch(lanes, s.tEnd+cfg.Window)
	return s.finish(plat, nil)
}

// runEpochFork executes a warm-forked transmission entirely on the epoch
// kernel: no actors are ever spawned on the forked platform — the resumed
// trojan and spy threads and the stats reset run as lanes with the same
// (clock, id) keys ResumeThread and spawnStatsReset would have given them.
func (ws *ChannelWarmState) runEpochFork(s *channelSession, plat *platform.Platform) (*ChannelResult, error) {
	lanes := []sim.EpochLane{
		newTrojanLane(0, ws.trojanClock, plat, s, ws.trojanSt, false),
		newSpyLane(1, ws.spyClock, plat, s, ws.spySt, false),
		&statsLane{laneCursor: laneCursor{clock: s.t0 - 1, id: 2}, plat: plat},
	}
	sim.RunEpoch(lanes, s.tEnd+s.cfg.Window)
	return s.finish(plat, nil)
}
