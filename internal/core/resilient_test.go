package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"meecc/internal/fault"
	"meecc/internal/sim"
)

// ---------------------------------------------------------------------------
// Controller ladder unit tests: the spy-side state machine is pure, so the
// whole reaction ladder is exercised here without booting a platform.

func testController(t *testing.T, chunks int) *controller {
	t.Helper()
	cfg := DefaultResilientConfig(1)
	cfg.applyDefaults()
	sizes := make([]int, chunks)
	for i := range sizes {
		sizes[i] = cfg.ChunkBytes
	}
	return newController(&cfg, sizes)
}

// obsFor builds a clean observation for a plan: every scheduled chunk decoded.
func obsFor(p roundPlan) roundObs {
	obs := roundObs{plan: p, end: p.start + 1_000_000, at: p.start + 1_000_000, decoded: map[int][]byte{}}
	for _, ci := range p.chunks {
		obs.decoded[ci] = make([]byte, 8)
	}
	return obs
}

func TestControllerCleanRunFinishes(t *testing.T) {
	c := testController(t, 4)
	p := c.first(100)
	rounds := 0
	for !p.done && !p.abort {
		if rounds++; rounds > 10 {
			t.Fatalf("clean link did not finish in %d rounds", rounds)
		}
		p = c.next(obsFor(p))
	}
	if p.abort {
		t.Fatalf("clean link aborted: %s", p.reason)
	}
	// 4 chunks at 2 per round = 2 data rounds, no adaptations.
	if c.rounds != 2 || len(c.report.Actions) != 0 {
		t.Fatalf("rounds=%d actions=%v, want 2 rounds and no actions", c.rounds, c.report.Actions)
	}
}

func TestControllerRetransmitsFailedChunks(t *testing.T) {
	c := testController(t, 2)
	p := c.first(0)
	if !reflect.DeepEqual(p.chunks, []int{0, 1}) {
		t.Fatalf("first plan chunks = %v", p.chunks)
	}
	obs := obsFor(p)
	obs.decoded = map[int][]byte{1: make([]byte, 8)} // chunk 0 failed
	obs.failed = []int{0}
	p = c.next(obs)
	if !reflect.DeepEqual(p.chunks, []int{0}) {
		t.Fatalf("retransmit plan chunks = %v, want [0]", p.chunks)
	}
	if c.report.Retransmits != 1 || c.report.Count(ActRetransmit) != 1 {
		t.Fatalf("retransmits=%d actions=%v", c.report.Retransmits, c.report.Actions)
	}
	p = c.next(obsFor(p))
	if !p.done {
		t.Fatalf("expected done after last chunk, got %+v", p)
	}
}

func TestControllerDropoutTriggersResyncThenAborts(t *testing.T) {
	c := testController(t, 1)
	p := c.first(0)
	for i := 0; i < c.cfg.MaxResyncs; i++ {
		obs := obsFor(p)
		obs.decoded = map[int][]byte{}
		obs.failed = append([]int{}, p.chunks...)
		obs.dropout = 0.8
		p = c.next(obs)
		if !p.resync {
			t.Fatalf("resync %d: dropout 0.8 produced plan %+v", i, p)
		}
		// The resync succeeds; the next data round sees dropout again.
		obs = roundObs{plan: p, end: p.start + 1, at: p.start + 1, resyncOK: true, decoded: map[int][]byte{}}
		p = c.next(obs)
		if p.resync || p.abort {
			t.Fatalf("after successful resync got plan %+v", p)
		}
	}
	obs := obsFor(p)
	obs.decoded = map[int][]byte{}
	obs.failed = append([]int{}, p.chunks...)
	obs.dropout = 0.9
	p = c.next(obs)
	if !p.abort || !strings.Contains(p.reason, "stale") {
		t.Fatalf("after %d resyncs expected stale abort, got %+v", c.cfg.MaxResyncs, p)
	}
	if c.report.Resyncs != c.cfg.MaxResyncs {
		t.Fatalf("Resyncs=%d, want %d", c.report.Resyncs, c.cfg.MaxResyncs)
	}
}

func TestControllerFailedResyncRetriesThenAborts(t *testing.T) {
	c := testController(t, 1)
	p := c.first(0)
	obs := obsFor(p)
	obs.decoded = map[int][]byte{}
	obs.failed = append([]int{}, p.chunks...)
	obs.dropout = 1.0
	p = c.next(obs)
	if !p.resync {
		t.Fatalf("want resync, got %+v", p)
	}
	for i := 1; i < c.cfg.MaxResyncs; i++ {
		p = c.next(roundObs{plan: p, end: p.start + 1, at: p.start + 1, decoded: map[int][]byte{}}) // resyncOK=false
		if !p.resync {
			t.Fatalf("failed resync %d should retry, got %+v", i, p)
		}
	}
	p = c.next(roundObs{plan: p, end: p.start + 1, at: p.start + 1, decoded: map[int][]byte{}})
	if !p.abort || !strings.Contains(p.reason, "re-acquisition") {
		t.Fatalf("want re-acquisition abort, got %+v", p)
	}
}

func TestControllerPilotBERRecalibratesThenDegrades(t *testing.T) {
	c := testController(t, 1)
	p := c.first(0)
	bad := func(p roundPlan) roundObs {
		obs := obsFor(p)
		obs.decoded = map[int][]byte{}
		obs.failed = append([]int{}, p.chunks...)
		obs.pilotErr = 0.4
		return obs
	}
	p = c.next(bad(p))
	if !p.recal || c.report.Count(ActRecalibrate) != 1 {
		t.Fatalf("first bad pilot should recalibrate, got %+v (%v)", p, c.report.Actions)
	}
	// Recal didn't help: the ladder widens the window 15k -> 30k -> 60k...
	baseW := c.cfg.Window
	for want := baseW * 2; want <= c.cfg.MaxWindow; want *= 2 {
		p = c.next(bad(p))
		if p.window != want {
			t.Fatalf("want window %d, got %+v", want, p)
		}
		p = c.next(bad(p)) // recal round interleaves at each new operating point
		if !p.recal {
			t.Fatalf("expected recal after widen, got %+v", p)
		}
	}
	// ...then raises repetition 1 -> 3 -> 5, then aborts.
	for _, wantRep := range []int{3, 5} {
		p = c.next(bad(p))
		if p.rep != wantRep {
			t.Fatalf("want repetition %d, got %+v", wantRep, p)
		}
		p = c.next(bad(p))
		if !p.recal {
			t.Fatalf("expected recal after repetition raise, got %+v", p)
		}
	}
	p = c.next(bad(p))
	if !p.abort || !strings.Contains(p.reason, "maximum degradation") {
		t.Fatalf("want max-degradation abort, got %+v", p)
	}
	if c.report.Count(ActWidenWindow) != 2 || c.report.Count(ActRepetition) != 2 {
		t.Fatalf("actions: %v", c.report.Actions)
	}
}

func TestControllerChunkAttemptsExhaustDegrades(t *testing.T) {
	c := testController(t, 1)
	p := c.first(0)
	for i := 0; i < c.cfg.MaxChunkAttempts; i++ {
		obs := obsFor(p)
		obs.decoded = map[int][]byte{}
		obs.failed = []int{0} // healthy pilot, chunk keeps dying
		p = c.next(obs)
		if p.abort {
			t.Fatalf("aborted early at attempt %d: %+v", i, p)
		}
	}
	if c.report.Count(ActWidenWindow) != 1 {
		t.Fatalf("attempt budget exhausted without degradation: %v", c.report.Actions)
	}
	if c.attempts[0] != 0 {
		t.Fatalf("attempts not reset after degradation: %v", c.attempts)
	}
}

func TestControllerBackoffGrowsAndResets(t *testing.T) {
	c := testController(t, 1)
	p := c.first(0)
	ends := []sim.Cycles{}
	gap0 := c.cfg.Backoff0
	for i := 0; i < 3; i++ {
		obs := obsFor(p)
		obs.decoded = map[int][]byte{}
		obs.failed = []int{0}
		obs.end = p.start + 1_000_000
		obs.at = obs.end
		p = c.next(obs)
		ends = append(ends, p.start-obs.end)
	}
	if ends[0] != gap0 || ends[1] != gap0*2 || ends[2] != gap0*4 {
		t.Fatalf("backoff gaps = %v, want %d,%d,%d", ends, gap0, gap0*2, gap0*4)
	}
	if c.report.Count(ActBackoff) != 3 {
		t.Fatalf("actions: %v", c.report.Actions)
	}
}

func TestControllerMaxRoundsAborts(t *testing.T) {
	c := testController(t, 1)
	c.cfg.MaxRounds = 3
	p := c.first(0)
	for i := 0; i < 3; i++ {
		obs := obsFor(p)
		obs.decoded = map[int][]byte{}
		obs.failed = []int{0}
		p = c.next(obs)
	}
	if !p.abort || !strings.Contains(p.reason, "round budget") {
		t.Fatalf("want round-budget abort, got %+v", p)
	}
}

// ---------------------------------------------------------------------------
// End-to-end session tests.

func TestResilientCleanLinkDelivers(t *testing.T) {
	payload := []byte("MEE covert channel: resilient transfer")
	res, err := RunResilient(DefaultResilientConfig(42), payload)
	if err != nil {
		t.Fatalf("RunResilient: %v (report: %+v)", err, res.Report)
	}
	if !res.Delivered || !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload mismatch: delivered=%v got %q", res.Delivered, res.Payload)
	}
	if res.ChunksDelivered != res.Chunks {
		t.Fatalf("chunks %d/%d", res.ChunksDelivered, res.Chunks)
	}
	if res.GoodputKBps <= 0 {
		t.Fatalf("goodput %v", res.GoodputKBps)
	}
	if res.Report.FinalWindow != DefaultChannelConfig(42).Window {
		t.Fatalf("clean link degraded to window %d", res.Report.FinalWindow)
	}
	// Goodput folds in the whole session (pilots, control gaps, any
	// retransmits), so it must sit below the raw window rate.
	if raw := 4e9 / (8 * float64(DefaultChannelConfig(42).Window)) / 1000; res.GoodputKBps >= raw {
		t.Fatalf("goodput %.3f KBps not below raw channel rate %.3f", res.GoodputKBps, raw)
	}
}

func TestResilientRejectsBadPayload(t *testing.T) {
	if _, err := RunResilient(DefaultResilientConfig(1), nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := RunResilient(DefaultResilientConfig(1), make([]byte, 300)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// faultAcceptance holds the calibrated per-kind intensities at which the
// *static* channel is past 10% BER (measured by TestStaticChannelBreaksUnderFaults).
var faultAcceptance = []struct {
	kind      fault.Kind
	intensity float64
}{
	{fault.Migration, 8},
	{fault.Timer, 4},
	{fault.Paging, 8},
	{fault.MEEFlush, 24},
	{fault.Storm, 6},
}

func faultCfg(kind fault.Kind, intensity float64) *fault.Config {
	return &fault.Config{Seed: 7, Kinds: []fault.Kind{kind}, Intensity: intensity}
}

// TestStaticChannelBreaksUnderFaults pins the calibration the acceptance test
// below relies on: at these intensities the raw channel is genuinely broken.
func TestStaticChannelBreaksUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, c := range faultAcceptance {
		cfg := DefaultChannelConfig(42)
		cfg.Bits = AlternatingBits(96)
		cfg.Fault = faultCfg(c.kind, c.intensity)
		res, err := RunChannel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if res.ErrorRate <= 0.10 {
			t.Errorf("%s intensity %v: static BER %.3f, want > 0.10 (recalibrate faultAcceptance)",
				c.kind, c.intensity, res.ErrorRate)
		}
		if len(res.Faults) == 0 {
			t.Errorf("%s: no faults recorded", c.kind)
		}
	}
}

// TestResilientNeverSilentlyCorrupts is the headline acceptance criterion:
// under every fault kind at an intensity where the static channel is past 10%
// BER, the session layer either delivers the payload intact or returns an
// explicit degradation error. What it may never do is return wrong bytes.
func TestResilientNeverSilentlyCorrupts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	payload := []byte("resilience probe")
	delivered := 0
	for _, c := range faultAcceptance {
		cfg := DefaultResilientConfig(42)
		cfg.Fault = faultCfg(c.kind, c.intensity)
		res, err := RunResilient(cfg, payload)
		if err != nil {
			if res.Delivered || res.Payload != nil {
				t.Errorf("%s: error %v but result still claims delivery", c.kind, err)
			}
			if res.Report.Count(ActAbort) == 0 {
				t.Errorf("%s: error %v without an abort action in the report", c.kind, err)
			}
			t.Logf("%s I=%v: explicit degradation: %v (%d rounds, %d actions)",
				c.kind, c.intensity, err, res.Report.Rounds, len(res.Report.Actions))
			continue
		}
		if !res.Delivered || !bytes.Equal(res.Payload, payload) {
			t.Errorf("%s: nil error but payload %q, want %q", c.kind, res.Payload, payload)
			continue
		}
		delivered++
		t.Logf("%s I=%v: delivered through %d rounds (%d retransmits, %d recals, %d resyncs)",
			c.kind, c.intensity, res.Report.Rounds, res.Report.Retransmits,
			res.Report.Recals, res.Report.Resyncs)
	}
	// The ladder must rescue at least one kind outright — otherwise the
	// adaptive layer is indistinguishable from a bare abort.
	if delivered == 0 {
		t.Error("no fault kind was survived at its acceptance intensity")
	}
}

// TestResilientAdaptiveBeatsStaticUnderFlush pins one concrete adaptive win:
// at meeflush intensity 12 the static channel runs past 20% BER while the
// session layer still delivers the payload intact via chunk ARQ.
func TestResilientAdaptiveBeatsStaticUnderFlush(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fc := faultCfg(fault.MEEFlush, 12)
	ccfg := DefaultChannelConfig(42)
	ccfg.Bits = AlternatingBits(96)
	ccfg.Fault = fc
	ch, err := RunChannel(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ErrorRate <= 0.10 {
		t.Fatalf("static BER %.3f, scenario not hostile enough", ch.ErrorRate)
	}
	payload := []byte("resilience probe")
	rcfg := DefaultResilientConfig(42)
	rcfg.Fault = fc
	res, err := RunResilient(rcfg, payload)
	if err != nil {
		t.Fatalf("adaptive session failed where it should deliver: %v (report %+v)", err, res.Report)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatalf("payload %q", res.Payload)
	}
	if res.Report.Retransmits == 0 {
		t.Error("delivered under meeflush without a single retransmit — fault had no effect")
	}
}

func TestResilientDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	run := func() (*ResilientResult, error) {
		cfg := DefaultResilientConfig(42)
		cfg.Fault = faultCfg(fault.Migration, 8)
		return RunResilient(cfg, []byte("determinism probe"))
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatalf("reports differ:\n%+v\n%+v", a.Report, b.Report)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatal("fault logs differ")
	}
	if a.BitsSent != b.BitsSent || a.GoodputKBps != b.GoodputKBps {
		t.Fatalf("metrics differ: %d/%.4f vs %d/%.4f", a.BitsSent, a.GoodputKBps, b.BitsSent, b.GoodputKBps)
	}
}
