package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// NoiseKind selects one of the §5.4 background environments (Figure 8).
type NoiseKind int

const (
	// NoiseNone: quiet machine (Figure 8a).
	NoiseNone NoiseKind = iota
	// NoiseMemory: a neighbor stressing ordinary memory and caches hard —
	// the stress-ng analogue (Figure 8b). The MEE is not involved, so the
	// paper (and this model) expect minimal impact.
	NoiseMemory
	// NoiseMEE512: a neighbor enclave streaming through its own protected
	// memory at 512 B stride, constantly loading fresh versions lines into
	// the MEE cache (Figure 8c).
	NoiseMEE512
	// NoiseMEE4K: the same at 4 KB stride, churning versions and L0 lines
	// (Figure 8d).
	NoiseMEE4K
)

func (k NoiseKind) String() string {
	switch k {
	case NoiseNone:
		return "none"
	case NoiseMemory:
		return "memory-stress"
	case NoiseMEE512:
		return "mee-stride-512B"
	case NoiseMEE4K:
		return "mee-stride-4KB"
	default:
		return fmt.Sprintf("NoiseKind(%d)", int(k))
	}
}

// spawnNoise starts the background actor for kind on the given core,
// beginning at cycle `from`. The actor runs until the engine is closed.
func spawnNoise(plat *platform.Platform, kind NoiseKind, core int, from sim.Cycles) error {
	switch kind {
	case NoiseNone:
		return nil
	case NoiseMemory:
		pr := plat.NewProcess("noise-mem")
		const pages = 2048 // 8 MB working set: thrashes the LLC
		buf := pr.AllocGeneral(pages)
		plat.SpawnThreadAt("noise-mem", pr, core, from, func(th *platform.Thread) {
			for {
				for off := 0; off < pages*enclave.PageBytes; off += 64 {
					th.Access(buf + enclave.VAddr(off))
				}
			}
		})
		return nil
	case NoiseMEE512, NoiseMEE4K:
		stride := 512
		if kind == NoiseMEE4K {
			stride = enclave.PageBytes
		}
		pr := plat.NewProcess("noise-mee")
		const pages = 1024 // 4 MB of protected memory
		if _, err := pr.CreateEnclave(pages); err != nil {
			return err
		}
		base := pr.Enclave().Base
		plat.SpawnThreadAt("noise-mee", pr, core, from, func(th *platform.Thread) {
			th.EnterEnclave()
			for {
				for off := 0; off < pages*enclave.PageBytes; off += stride {
					va := base + enclave.VAddr(off)
					th.Access(va)
					th.Flush(va)
					// A real workload computes between touches; back-to-back
					// streaming would model a pathological worst case.
					th.Spin(500)
				}
			}
		})
		return nil
	default:
		return fmt.Errorf("core: unknown noise kind %d", kind)
	}
}
