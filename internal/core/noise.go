package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// NoiseKind selects one of the §5.4 background environments (Figure 8).
type NoiseKind int

const (
	// NoiseNone: quiet machine (Figure 8a).
	NoiseNone NoiseKind = iota
	// NoiseMemory: a neighbor stressing ordinary memory and caches hard —
	// the stress-ng analogue (Figure 8b). The MEE is not involved, so the
	// paper (and this model) expect minimal impact.
	NoiseMemory
	// NoiseMEE512: a neighbor enclave streaming through its own protected
	// memory at 512 B stride, constantly loading fresh versions lines into
	// the MEE cache (Figure 8c).
	NoiseMEE512
	// NoiseMEE4K: the same at 4 KB stride, churning versions and L0 lines
	// (Figure 8d).
	NoiseMEE4K
)

func (k NoiseKind) String() string {
	switch k {
	case NoiseNone:
		return "none"
	case NoiseMemory:
		return "memory-stress"
	case NoiseMEE512:
		return "mee-stride-512B"
	case NoiseMEE4K:
		return "mee-stride-4KB"
	default:
		return fmt.Sprintf("NoiseKind(%d)", int(k))
	}
}

// noiseSetup is the host-side preparation of a background environment: the
// process, its buffer or enclave, and the walk parameters. Preparation is
// split from actor spawning so the epoch kernel can run the same workload
// as a compiled lane — the setup's rng draws (general-frame allocation)
// land at the same point in the platform's random stream either way.
type noiseSetup struct {
	kind    NoiseKind
	pr      *platform.Process
	core    int
	base    enclave.VAddr // start of the walked region
	stride  int           // bytes between touches
	pages   int           // region size in pages
	enclave bool          // walk runs in enclave mode with Flush+Spin
}

// prepareNoise builds the noise workload's process and memory for kind.
// It returns nil for NoiseNone.
func prepareNoise(plat *platform.Platform, kind NoiseKind, core int) (*noiseSetup, error) {
	switch kind {
	case NoiseNone:
		return nil, nil
	case NoiseMemory:
		pr := plat.NewProcess("noise-mem")
		const pages = 2048 // 8 MB working set: thrashes the LLC
		buf := pr.AllocGeneral(pages)
		return &noiseSetup{kind: kind, pr: pr, core: core, base: buf, stride: 64, pages: pages}, nil
	case NoiseMEE512, NoiseMEE4K:
		stride := 512
		if kind == NoiseMEE4K {
			stride = enclave.PageBytes
		}
		pr := plat.NewProcess("noise-mee")
		const pages = 1024 // 4 MB of protected memory
		if _, err := pr.CreateEnclave(pages); err != nil {
			return nil, err
		}
		return &noiseSetup{kind: kind, pr: pr, core: core, base: pr.Enclave().Base, stride: stride, pages: pages, enclave: true}, nil
	default:
		return nil, fmt.Errorf("core: unknown noise kind %d", kind)
	}
}

// spawn starts the background actor, beginning at cycle `from`. The actor
// runs until the engine is closed.
func (n *noiseSetup) spawn(plat *platform.Platform, from sim.Cycles) {
	if n.enclave {
		plat.SpawnThreadAt("noise-mee", n.pr, n.core, from, func(th *platform.Thread) {
			th.EnterEnclave()
			for {
				for off := 0; off < n.pages*enclave.PageBytes; off += n.stride {
					va := n.base + enclave.VAddr(off)
					th.Access(va)
					th.Flush(va)
					// A real workload computes between touches; back-to-back
					// streaming would model a pathological worst case.
					th.Spin(500)
				}
			}
		})
		return
	}
	plat.SpawnThreadAt("noise-mem", n.pr, n.core, from, func(th *platform.Thread) {
		for {
			for off := 0; off < n.pages*enclave.PageBytes; off += n.stride {
				th.Access(n.base + enclave.VAddr(off))
			}
		}
	})
}

// spawnNoise prepares and starts the background actor for kind on the given
// core, beginning at cycle `from`.
func spawnNoise(plat *platform.Platform, kind NoiseKind, core int, from sim.Cycles) error {
	n, err := prepareNoise(plat, kind, core)
	if err != nil || n == nil {
		return err
	}
	n.spawn(plat, from)
	return nil
}
