package core

import (
	"meecc/internal/sim"
)

// SweepPoint is one Figure 7 point: the bit rate and error rate achieved at
// a given timing-window size.
type SweepPoint struct {
	Window    sim.Cycles
	KBps      float64
	ErrorRate float64
	BitErrors int
	Bits      int
	Err       error // non-nil if the run failed outright at this window
}

// PaperWindows are the window sizes of Figure 7.
func PaperWindows() []sim.Cycles {
	return []sim.Cycles{5000, 7500, 10000, 15000, 20000, 25000, 30000}
}

// WindowSweep reproduces Figure 7: run the channel at each window size with
// a seeded random payload of nbits and report bit rate vs error rate. The
// calibration/setup/search phases are window-independent, so the sweep runs
// them once (WarmChannel) and forks the warm platform per window — the same
// machine, eviction set, and monitor carry the channel at every window,
// exactly as one physical testbed would. Payloads still vary per window.
func WindowSweep(opts Options, windows []sim.Cycles, nbits int) []SweepPoint {
	if len(windows) == 0 {
		windows = PaperWindows()
	}
	base := DefaultChannelConfig(opts.Seed)
	base.Options = opts
	ws, warmErr := WarmChannel(base)
	out := make([]SweepPoint, 0, len(windows))
	for i, w := range windows {
		pt := SweepPoint{Window: w, Bits: nbits}
		if warmErr != nil {
			pt.Err = warmErr
			out = append(out, pt)
			continue
		}
		cfg := base
		cfg.Window = w
		cfg.Bits = RandomBits(opts.Seed+uint64(i)*7919, nbits)
		res, err := ws.Run(cfg)
		pt.Err = err
		if err == nil {
			pt.KBps = res.KBps
			pt.ErrorRate = res.ErrorRate
			pt.BitErrors = res.BitErrors
		}
		out = append(out, pt)
	}
	return out
}

// SweepStats aggregates one window size across independent seeds.
type SweepStats struct {
	Window    sim.Cycles
	KBps      float64
	MeanError float64
	MinError  float64
	MaxError  float64
	Seeds     int
	Failures  int // runs whose setup failed outright
}

// MultiSeedSweep runs WindowSweep over `seeds` independent seeds and
// aggregates per-window error statistics — the error bars for Figure 7.
func MultiSeedSweep(opts Options, windows []sim.Cycles, nbits, seeds int) []SweepStats {
	if len(windows) == 0 {
		windows = PaperWindows()
	}
	stats := make([]SweepStats, len(windows))
	for i, w := range windows {
		stats[i] = SweepStats{Window: w, MinError: 1}
	}
	for s := 0; s < seeds; s++ {
		o := opts
		o.Seed = opts.Seed + uint64(s)*6700417
		pts := WindowSweep(o, windows, nbits)
		for i, p := range pts {
			st := &stats[i]
			st.Seeds++
			if p.Err != nil {
				st.Failures++
				continue
			}
			st.KBps = p.KBps
			st.MeanError += p.ErrorRate
			if p.ErrorRate < st.MinError {
				st.MinError = p.ErrorRate
			}
			if p.ErrorRate > st.MaxError {
				st.MaxError = p.ErrorRate
			}
		}
	}
	for i := range stats {
		if n := stats[i].Seeds - stats[i].Failures; n > 0 {
			stats[i].MeanError /= float64(n)
		}
		if stats[i].MinError > stats[i].MaxError {
			stats[i].MinError = stats[i].MaxError
		}
	}
	return stats
}

// NoiseRun is one Figure 8 panel: the channel under a background
// environment.
type NoiseRun struct {
	Kind   NoiseKind
	Result *ChannelResult
	Err    error
}

// NoiseStudy reproduces Figure 8: the trojan sends the '100100...' sequence
// of nbits under each noise environment at the given window.
func NoiseStudy(opts Options, window sim.Cycles, nbits int) []NoiseRun {
	kinds := []NoiseKind{NoiseNone, NoiseMemory, NoiseMEE512, NoiseMEE4K}
	out := make([]NoiseRun, 0, len(kinds))
	for i, k := range kinds {
		cfg := DefaultChannelConfig(opts.Seed + uint64(i)*104729)
		cfg.Options = opts
		cfg.Options.Seed = opts.Seed + uint64(i)*104729
		cfg.Window = window
		cfg.Bits = PatternBits("100", nbits)
		cfg.Noise = k
		res, err := RunChannel(cfg)
		out = append(out, NoiseRun{Kind: k, Result: res, Err: err})
	}
	return out
}
