package core

import "testing"

func TestMeasureOverheadShape(t *testing.T) {
	rows, err := MeasureOverhead(DefaultOptions(29), nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// Ordinary uncached reads cost roughly one DRAM access.
		if r.PlainCycles < 250 || r.PlainCycles > 420 {
			t.Errorf("ws %d: plain %.0f cycles", r.WorkingSetBytes, r.PlainCycles)
		}
		// Protected reads always pay the MEE pipeline on top.
		if r.Slowdown() < 1.3 {
			t.Errorf("ws %d: slowdown %.2f, protected reads should cost more", r.WorkingSetBytes, r.Slowdown())
		}
	}
	// The slowdown grows once the working set's versions lines overflow
	// the MEE cache (tree walks get deeper).
	small, large := rows[0], rows[len(rows)-1]
	if large.Slowdown() <= small.Slowdown() {
		t.Errorf("slowdown not increasing with working set: %.2f (32KB) vs %.2f (16MB)",
			small.Slowdown(), large.Slowdown())
	}
	t.Logf("overhead: 32KB %.2fx, 16MB %.2fx", small.Slowdown(), large.Slowdown())
}
