package core

import (
	"reflect"
	"testing"

	"meecc/internal/sim"
)

// TestWarmForkMatchesFreshRun is the core warm-forking guarantee: a
// transmission resumed from a forked warm snapshot produces the exact
// ChannelResult — probe latencies, decoded bits, thresholds, footprint —
// that a fresh end-to-end RunChannel produces for the same config. One warm
// state serves several windows and payloads.
func TestWarmForkMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	base := DefaultChannelConfig(1)
	ws, err := WarmChannel(base)
	if err != nil {
		t.Fatalf("WarmChannel: %v", err)
	}
	for _, tc := range []struct {
		window sim.Cycles
		bits   []byte
	}{
		{15000, AlternatingBits(24)},
		{15000, PatternBits("100", 24)},
		{7500, AlternatingBits(24)},
	} {
		cfg := base
		cfg.Window = tc.window
		cfg.Bits = tc.bits

		fresh, freshErr := RunChannel(cfg)
		warm, warmErr := ws.Run(cfg)
		if (freshErr == nil) != (warmErr == nil) {
			t.Fatalf("window %d: fresh err %v, warm err %v", tc.window, freshErr, warmErr)
		}
		if !reflect.DeepEqual(fresh, warm) {
			t.Errorf("window %d: warm-forked result differs from fresh run\nfresh: %+v\nwarm:  %+v",
				tc.window, fresh, warm)
		}
	}
}

// TestWarmForkRepetitionDecoding checks the repetition layer (a pure
// transmit-phase feature) through the warm path.
func TestWarmForkRepetitionDecoding(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	cfg := DefaultChannelConfig(2)
	cfg.Bits = AlternatingBits(10)
	cfg.Repetition = 3
	ws, err := WarmChannel(cfg)
	if err != nil {
		t.Fatalf("WarmChannel: %v", err)
	}
	fresh, freshErr := RunChannel(cfg)
	warm, warmErr := ws.Run(cfg)
	if freshErr != nil || warmErr != nil {
		t.Fatalf("fresh err %v, warm err %v", freshErr, warmErr)
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Errorf("repetition run diverged\nfresh: %+v\nwarm:  %+v", fresh, warm)
	}
	if len(warm.Received) != 10 {
		t.Errorf("decoded %d logical bits, want 10", len(warm.Received))
	}
}

// TestWarmRunRejectsIncompatibleConfigs pins the guard rails: configs that
// would have changed the warm phase, or that need platform attachments the
// fork cannot carry, are rejected with a clear error.
func TestWarmRunRejectsIncompatibleConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("full channel runs in -short mode")
	}
	base := DefaultChannelConfig(3)
	ws, err := WarmChannel(base)
	if err != nil {
		t.Fatalf("WarmChannel: %v", err)
	}
	for name, mutate := range map[string]func(*ChannelConfig){
		"seed":      func(c *ChannelConfig) { c.Options.Seed++ },
		"index512":  func(c *ChannelConfig) { c.Index512 = 3 },
		"two-phase": func(c *ChannelConfig) { c.TwoPhaseEviction = false },
		"cores":     func(c *ChannelConfig) { c.SpyCore = 3 },
		"budget":    func(c *ChannelConfig) { c.SetupBudget = 61_000_000 },
		"noise":     func(c *ChannelConfig) { c.Noise = NoiseMemory },
	} {
		cfg := base
		cfg.Bits = AlternatingBits(4)
		mutate(&cfg)
		if _, err := ws.Run(cfg); err == nil {
			t.Errorf("%s: incompatible config accepted", name)
		}
	}
}
