package core

import "testing"

func TestDetectionStudyOperationalizesStealth(t *testing.T) {
	rows, err := DetectionStudy(DefaultOptions(91), 15000, 96)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DetectionRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	llc := byName["llc-prime-probe"]
	mee := byName["mee-cache-channel"]
	benign := byName["benign-memory-stress"]
	if llc.AlarmRate < 0.5 {
		t.Errorf("detector missed the LLC channel (alarm rate %.2f)", llc.AlarmRate)
	}
	if mee.AlarmRate > 0.05 {
		t.Errorf("detector flagged the MEE channel (alarm rate %.2f, peak %.2f)", mee.AlarmRate, mee.PeakShare)
	}
	if benign.AlarmRate > 0.05 {
		t.Errorf("detector false-alarmed on benign traffic (%.2f)", benign.AlarmRate)
	}
	t.Logf("alarm rates: llc=%.2f mee=%.2f benign=%.2f (peaks %.2f/%.2f/%.2f)",
		llc.AlarmRate, mee.AlarmRate, benign.AlarmRate,
		llc.PeakShare, mee.PeakShare, benign.PeakShare)
}
