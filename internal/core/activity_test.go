package core

import "testing"

func TestInferActivityAccuracy(t *testing.T) {
	res, err := InferActivity(DefaultOptions(37), 24, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("activity inference accuracy %.2f (quiet %.0f vs active %.0f)",
			res.Accuracy, res.QuietMean, res.ActiveMean)
	}
	if res.ActiveMean <= res.QuietMean {
		t.Fatalf("no contention signal: quiet %.0f vs active %.0f", res.QuietMean, res.ActiveMean)
	}
	t.Logf("activity inference: %.0f%% accuracy (quiet %.0f cyc, active %.0f cyc)",
		100*res.Accuracy, res.QuietMean, res.ActiveMean)
}

func TestInferActivityValidation(t *testing.T) {
	if _, err := InferActivity(DefaultOptions(38), 2, 100_000); err == nil {
		t.Fatal("too few epochs accepted")
	}
}
