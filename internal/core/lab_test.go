package core

import (
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

func TestPageAddrsLayout(t *testing.T) {
	addrs := pageAddrs(0x8000_0000, 4, 3)
	if len(addrs) != 4 {
		t.Fatalf("len %d", len(addrs))
	}
	for i, a := range addrs {
		want := enclave.VAddr(0x8000_0000 + i*4096 + 3*512)
		if a != want {
			t.Fatalf("addr %d = %#x, want %#x", i, a, want)
		}
	}
}

func TestOptionsPlatformConfig(t *testing.T) {
	o := DefaultOptions(5)
	o.MEESets = 64
	o.MEEWays = 4
	o.MEEPolicy = "srrip"
	o.RandomEvictProb = 0.1
	o.SpikeProb = 0.5
	o.SpikeMax = 999
	cfg := o.platformConfig()
	if cfg.MEE.CacheSets != 64 || cfg.MEE.CacheWays != 4 {
		t.Fatalf("geometry override lost: %d/%d", cfg.MEE.CacheSets, cfg.MEE.CacheWays)
	}
	if cfg.MEEPolicyName != "srrip" {
		t.Fatalf("policy %q", cfg.MEEPolicyName)
	}
	if cfg.MEE.RandomEvictProb != 0.1 {
		t.Fatal("random-evict override lost")
	}
	if cfg.SpikeProb != 0.5 || cfg.SpikeMax != 999 {
		t.Fatal("spike override lost")
	}
	// Negative SpikeProb keeps the platform default.
	o2 := DefaultOptions(5)
	if got := o2.platformConfig().SpikeProb; got != platform.DefaultConfig(5).SpikeProb {
		t.Fatalf("default spike prob %v", got)
	}
}

func TestWaitUntilTimerOvershootBounded(t *testing.T) {
	plat := DefaultOptions(6).boot()
	defer plat.Close()
	pr := plat.NewProcess("w")
	var woke sim.Cycles
	plat.SpawnThread("w", pr, 0, func(th *platform.Thread) {
		waitUntilTimer(th, 100_000)
		woke = th.Now()
	})
	plat.Run(-1)
	if woke < 100_000 || woke > 100_000+200 {
		t.Fatalf("woke at %d, want 100000..100200", woke)
	}
}

func TestTimedAccessApproximatesLatency(t *testing.T) {
	opts := DefaultOptions(7)
	opts.SpikeProb = 0
	plat := opts.boot()
	defer plat.Close()
	pr := plat.NewProcess("m")
	if _, err := pr.CreateEnclave(2); err != nil {
		t.Fatal(err)
	}
	plat.SpawnThread("m", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		va := pr.Enclave().Base
		th.Access(va)
		th.Flush(va)
		for i := 0; i < 20; i++ {
			m := timedAccess(th, va)
			th.Flush(va)
			// Versions hit ~480, quantization ±35 plus read costs.
			if m < 380 || m > 650 {
				t.Fatalf("measured %d for a versions hit", m)
			}
		}
	})
	plat.Run(-1)
}

func TestSpawnNoiseUnknownKind(t *testing.T) {
	plat := DefaultOptions(8).boot()
	defer plat.Close()
	if err := spawnNoise(plat, NoiseKind(99), 1, 0); err == nil {
		t.Fatal("unknown noise kind accepted")
	}
}

func TestNoiseKindStrings(t *testing.T) {
	cases := map[NoiseKind]string{
		NoiseNone:     "none",
		NoiseMemory:   "memory-stress",
		NoiseMEE512:   "mee-stride-512B",
		NoiseMEE4K:    "mee-stride-4KB",
		NoiseKind(42): "NoiseKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d: %q != %q", int(k), got, want)
		}
	}
}

func TestFindEvictionSetTooFewCandidates(t *testing.T) {
	plat := DefaultOptions(9).boot()
	defer plat.Close()
	pr := plat.NewProcess("few")
	if _, err := pr.CreateEnclave(8 + 16); err != nil {
		t.Fatal(err)
	}
	base := pr.Enclave().Base
	var gotErr error
	plat.SpawnThread("few", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, 8, 0))
		// 16 candidates cannot overflow any 8-way set.
		cands := pageAddrs(base+enclave.VAddr(8*enclave.PageBytes), 16, 0)
		_, gotErr = FindEvictionSet(th, cands, threshold)
	})
	plat.Run(-1)
	if gotErr == nil {
		t.Fatal("eviction set found from 16 candidates")
	}
}

func TestMeasureCapacityCustomSizes(t *testing.T) {
	res, err := MeasureCapacity(DefaultOptions(10), []int{8, 64}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points %d", len(res.Points))
	}
	if res.Points[1].Probability < 0.99 {
		t.Fatalf("64-candidate probability %.2f", res.Points[1].Probability)
	}
}

func TestEvictionStudyRejectsUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy accepted")
		}
	}()
	_, _ = EvictionStudy(DefaultOptions(11), "made-up", true, 5)
}

func TestMitigationResultDefeated(t *testing.T) {
	if (MitigationResult{ErrorRate: 0.1}).Defeated() {
		t.Fatal("10% error counted as defeat")
	}
	if !(MitigationResult{ErrorRate: 0.3}).Defeated() {
		t.Fatal("30% error not counted as defeat")
	}
	if !(MitigationResult{SetupFailed: true}).Defeated() {
		t.Fatal("setup failure not counted as defeat")
	}
}

func TestChannelConfigDefaults(t *testing.T) {
	var c ChannelConfig
	c.TrojanCore = 2
	c.SpyCore = 2 // collision: must be moved
	c.applyDefaults()
	if c.Window != 15000 {
		t.Fatalf("window %d", c.Window)
	}
	if c.ProbePhase != 0.65 {
		t.Fatalf("phase %v", c.ProbePhase)
	}
	if c.SpyCore == c.TrojanCore {
		t.Fatal("core collision not resolved")
	}
	if c.CalBudget <= 0 || c.SetupBudget <= 0 || c.SearchBudget <= 0 {
		t.Fatal("budgets not defaulted")
	}
}
