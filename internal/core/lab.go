package core

import (
	"meecc/internal/enclave"
	"meecc/internal/obs"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// Options selects the machine an experiment runs on. The zero value (plus a
// seed) is the paper's testbed; the other fields exist for ablations.
type Options struct {
	// Seed drives every random choice in the run; equal seeds reproduce
	// runs bit-for-bit.
	Seed uint64
	// EPCMode controls physical contiguity of enclave pages
	// (sequential / chunked / shuffled).
	EPCMode enclave.AllocMode
	// MEEPolicy overrides the MEE cache replacement policy by name
	// ("tree-plru" if empty; "lru", "bit-plru", "fifo", "random").
	MEEPolicy string
	// RandomEvictProb enables the MEE noise-injection mitigation.
	RandomEvictProb float64
	// SpikeProb/SpikeMax override ambient interference when non-negative
	// (pass -1 to keep platform defaults).
	SpikeProb float64
	SpikeMax  float64
	// MEESets/MEEWays override the MEE cache geometry when positive
	// (organization ablations).
	MEESets int
	MEEWays int
	// Obs, when non-nil, collects metrics (and timeline events if a tracer
	// is attached) from every platform the experiment boots. Nil disables
	// all instrumentation.
	Obs *obs.Observer
}

// platformConfig expands Options into a full machine configuration.
func (o Options) platformConfig() platform.Config {
	cfg := platform.DefaultConfig(o.Seed)
	cfg.EPCMode = o.EPCMode
	cfg.MEEPolicyName = o.MEEPolicy
	cfg.MEE.RandomEvictProb = o.RandomEvictProb
	if o.SpikeProb >= 0 {
		cfg.SpikeProb = o.SpikeProb
	}
	if o.SpikeMax > 0 {
		cfg.SpikeMax = o.SpikeMax
	}
	if o.MEESets > 0 {
		cfg.MEE.CacheSets = o.MEESets
	}
	if o.MEEWays > 0 {
		cfg.MEE.CacheWays = o.MEEWays
	}
	cfg.Obs = o.Obs
	return cfg
}

// DefaultOptions returns the paper-testbed options for a seed.
func DefaultOptions(seed uint64) Options {
	return Options{Seed: seed, SpikeProb: -1}
}

// boot builds the platform for these options.
func (o Options) boot() *platform.Platform {
	return platform.New(o.platformConfig())
}

// ---------------------------------------------------------------------------
// In-enclave measurement primitives (Section 3, Figure 2(c)).

// timedAccess measures one access to va using the hyperthread timer: read
// timer, access, read timer, subtract the known read overhead. The result is
// the access latency up to the timer's quantization — exactly what enclave
// code can observe on SGX1.
func timedAccess(th *platform.Thread, va enclave.VAddr) sim.Cycles {
	t1 := th.TimerNow()
	th.Access(va)
	t2 := th.TimerNow()
	return t2 - t1 - sim.Cycles(enclave.TimerReadCycles)
}

// waitUntilTimer busy-polls the hyperthread timer until it reaches deadline,
// the way Algorithm 2's "busy loop for remaining time" is implemented when
// rdtsc is unavailable. Each poll costs one timer read.
func waitUntilTimer(th *platform.Thread, deadline sim.Cycles) {
	for th.TimerNow() < deadline {
	}
}

// pageAddrs returns the virtual addresses of `pages` consecutive enclave
// pages starting at base, each offset by `index512` 512-byte units — the
// "same index in consecutive versions data region" agreement from §5.3.
func pageAddrs(base enclave.VAddr, pages, index512 int) []enclave.VAddr {
	out := make([]enclave.VAddr, pages)
	for i := range out {
		out[i] = base + enclave.VAddr(i*enclave.PageBytes+index512*512)
	}
	return out
}

// prime accesses and flushes every address: versions lines loaded into the
// MEE cache, data lines kept out of the CPU caches.
func prime(th *platform.Thread, set []enclave.VAddr) {
	for _, a := range set {
		th.Access(a)
		th.Flush(a)
	}
}

// calibrateThreshold derives the hit/miss decision threshold the way real
// attack code does: sample versions-hit latency (repeated flushed access to
// one line) and versions-miss latency (first touch of fresh 512 B blocks,
// which hit at L0), then take the midpoint of the two means.
//
// The pool must be fresh pages not used by the experiment proper.
func calibrateThreshold(th *platform.Thread, pool []enclave.VAddr) sim.Cycles {
	const samples = 40
	probe := pool[0]
	th.Access(probe)
	th.Flush(probe)
	var hitSum sim.Cycles
	for i := 0; i < samples; i++ {
		hitSum += timedAccess(th, probe)
		th.Flush(probe)
	}
	var missSum sim.Cycles
	n := 0
	for _, page := range pool[1:] {
		// Touch the page's first block to warm its L0 line, then measure
		// the first touch of the remaining blocks: versions miss, L0 hit.
		th.Access(page)
		th.Flush(page)
		for b := 1; b < 8 && n < samples; b++ {
			missSum += timedAccess(th, page+enclave.VAddr(b*512))
			th.Flush(page + enclave.VAddr(b*512))
			n++
		}
		if n >= samples {
			break
		}
	}
	hit := hitSum / samples
	miss := missSum / sim.Cycles(n)
	return (hit + miss) / 2
}
