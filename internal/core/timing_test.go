package core

import "testing"

func TestTimingStudyReproducesSection3(t *testing.T) {
	results, err := TimingStudy(DefaultOptions(23), 40)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TimingMechanismResult{}
	for _, r := range results {
		byName[r.Mechanism] = r
	}

	if byName["rdtsc"].AvailableInEnclave {
		t.Error("rdtsc must be unavailable in SGX1 enclave mode")
	}

	oc := byName["ocall-rdtsc"]
	// Each reading pays one OCALL round trip on both sides; the net
	// overhead of a measurement is ~one mean OCALL (t1's staleness and
	// t2's lead cancel to roughly a full call), i.e. in the paper's
	// 8000–15000 band.
	if oc.MeanOverhead < 7000 || oc.MeanOverhead > 16000 {
		t.Errorf("OCALL overhead %.0f outside the paper's 8000-15000 band", oc.MeanOverhead)
	}
	if oc.Usable() {
		t.Error("OCALL-based timing must not resolve a 300-cycle signal")
	}

	ht := byName["hyperthread-timer"]
	if ht.MeanOverhead < 20 || ht.MeanOverhead > 120 {
		t.Errorf("hyperthread-timer overhead %.0f, paper: ~50 cycles", ht.MeanOverhead)
	}
	if !ht.Usable() {
		t.Errorf("hyperthread timer must be usable (sd=%.0f)", ht.StdDev)
	}

	// The explicit timer-thread actor must behave like the analytic model:
	// tens of cycles of overhead, resolution well under the signal.
	actor := byName["hyperthread-timer-actor"]
	if actor.Samples == 0 {
		t.Fatal("timer-thread actor took no samples")
	}
	if actor.MeanOverhead < 10 || actor.MeanOverhead > 200 {
		t.Errorf("timer-thread actor overhead %.0f cycles", actor.MeanOverhead)
	}
	if !actor.Usable() {
		t.Errorf("timer-thread actor unusable (sd=%.0f)", actor.StdDev)
	}
}
