package core

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"strconv"

	"meecc/internal/code"
	"meecc/internal/obs"
)

// ChaosTrial runs one chaos-study cell: the same payload is pushed through
// the channel twice under an identical fault campaign — once as a static
// single-shot framed transfer (encode, transmit, decode, no reaction), once
// through the adaptive session layer (RunResilient) — so every cell directly
// compares what the error-handling buys. Parameters (beyond the channel
// parameters BuildChannelConfig accepts):
//
//	payload  payload length in bytes (default 16; seeded content)
//
// The faults/intensity/faultseed parameters select the campaign; with none
// of them set the trial measures the fault-free baseline.
//
// Chaos trials always boot fresh platforms, never warm forks: fault
// injectors attach to the platform and arm themselves during the warm
// phase, which is exactly the state a platform snapshot cannot carry (see
// warmRestriction). The harness therefore shares seeds but not warm state
// when a chaos spec uses SharedAxes.
//
// Metrics: static_ber, static_delivered, static_goodput_kbps,
// adaptive_delivered, adaptive_goodput_kbps, adaptive_rounds, retransmits,
// recals, resyncs, bits_sent, faults_applied.
//
// With withMetrics set, each arm runs under its own observer and the two
// snapshots are merged under "static." / "adaptive." prefixes, so the fault
// counters (fault.applied.*) of an arm sit next to that same arm's
// degradation and error counters — a degradation event in the adaptive arm
// correlates directly with the faults injected into that arm, instead of the
// per-trial component state being discarded.
func ChaosTrial(params map[string]string, seed uint64, withMetrics bool) (map[string]float64, *obs.Snapshot, error) {
	payloadBytes := 16
	chanParams := make(map[string]string, len(params))
	for name, val := range params {
		if name == "payload" {
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > code.MaxPayload {
				return nil, nil, fmt.Errorf("core: chaos parameter payload=%q: want 1..%d", val, code.MaxPayload)
			}
			payloadBytes = n
			continue
		}
		chanParams[name] = val
	}
	// "bits" and "pattern" make no sense here: the payload defines the bits.
	for _, bad := range []string{"bits", "pattern"} {
		if _, ok := chanParams[bad]; ok {
			return nil, nil, fmt.Errorf("core: chaos study does not accept the %q parameter", bad)
		}
	}
	base, err := BuildChannelConfig(chanParams, seed)
	if err != nil {
		return nil, nil, err
	}
	var oStatic, oAdaptive *obs.Observer
	if withMetrics {
		oStatic = obs.NewObserver()
		oAdaptive = obs.NewObserver()
	}

	payload := make([]byte, payloadBytes)
	prng := rand.New(rand.NewPCG(seed, seed^0x5851f42d4c957f2d))
	for i := range payload {
		payload[i] = byte(prng.Uint64())
	}

	// Static arm: one framed shot, decode or die.
	codec := code.Codec{InterleaveDepth: 8}
	encoded, err := codec.Encode(payload)
	if err != nil {
		return nil, nil, err
	}
	staticCfg := base
	staticCfg.Bits = encoded
	staticCfg.Obs = oStatic
	ch, err := RunChannel(staticCfg)
	if err != nil {
		return nil, nil, err
	}
	staticDelivered := 0.0
	staticGoodput := 0.0
	if pl, _, err := codec.Decode(ch.Received); err == nil && bytes.Equal(pl, payload) {
		staticDelivered = 1
		// Same accounting as the adaptive arm: payload bytes over channel time.
		staticGoodput = ch.KBps * float64(len(payload)) / float64(len(encoded)) * 8
	}

	// Adaptive arm: the resilient session under the identical campaign.
	rcfg := ResilientConfig{ChannelConfig: base}
	rcfg.Obs = oAdaptive
	res, rerr := RunResilient(rcfg, payload)
	adaptiveDelivered := 0.0
	if rerr == nil && res.Delivered {
		adaptiveDelivered = 1
	} else if res == nil {
		return nil, nil, rerr // config-level failure, not a link outcome
	}

	var snap *obs.Snapshot
	if withMetrics {
		snap = obs.NewSnapshot()
		snap.Merge("static.", oStatic.Snapshot())
		snap.Merge("adaptive.", oAdaptive.Snapshot())
	}

	return map[string]float64{
		"static_ber":            ch.ErrorRate,
		"static_delivered":      staticDelivered,
		"static_goodput_kbps":   staticGoodput,
		"adaptive_delivered":    adaptiveDelivered,
		"adaptive_goodput_kbps": res.GoodputKBps,
		"adaptive_rounds":       float64(res.Report.Rounds),
		"retransmits":           float64(res.Report.Retransmits),
		"recals":                float64(res.Report.Recals),
		"resyncs":               float64(res.Report.Resyncs),
		"bits_sent":             float64(res.BitsSent),
		"faults_applied":        float64(len(ch.Faults) + len(res.Faults)),
	}, snap, nil
}
