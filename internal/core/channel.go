package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/fault"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// ChannelConfig parameterizes one covert-channel run (Algorithm 2).
type ChannelConfig struct {
	Options

	// Window is Tsync, the per-bit timing window in cycles (the paper
	// sweeps 5000..30000; 15000 is its sweet spot).
	Window sim.Cycles
	// Bits is the bit sequence the trojan transmits (values 0/1).
	Bits []byte
	// Index512 is the agreed index: which 512-byte unit within a 4 KB page
	// both sides use (§5.3 — "any arbitrary index can be used").
	Index512 int
	// ProbePhase is the fraction of the window at which the spy probes;
	// late enough that the trojan's ~9000-cycle eviction has finished.
	ProbePhase float64
	// TwoPhaseEviction selects the paper's forward+backward eviction; false
	// degrades to a single forward pass (the ablation of §5.3's design
	// choice under approximate-LRU replacement).
	TwoPhaseEviction bool
	// Repetition transmits each payload bit this many consecutive windows
	// and majority-decodes on the spy side — a simple reliability layer on
	// top of the paper's raw channel ("without any error handling").
	// 0 or 1 means raw.
	Repetition int
	// Noise starts a background environment at transmission start.
	Noise NoiseKind
	// Fault, when non-nil, arms a deterministic chaos campaign on the run
	// (see internal/fault). The schedule derives from Fault.Seed alone;
	// Start/End default to the transmission interval when both are zero.
	Fault *fault.Config

	// Core placement (defaults: trojan 0, spy 2, noise 1 — distinct
	// physical cores, as in the paper's threat model).
	TrojanCore, SpyCore, NoiseCore int

	// Setup schedule (cycle budgets; defaults applied by RunChannel).
	CalBudget    sim.Cycles // both sides calibrate thresholds
	SetupBudget  sim.Cycles // trojan runs Algorithm 1
	SearchBudget sim.Cycles // spy locates its monitor address

	// onPlatform, when set (by in-package studies), is invoked after the
	// attack actors are spawned with the platform and the transmission
	// interval — e.g. to attach a detector.
	onPlatform func(plat *platform.Platform, t0, tEnd sim.Cycles)
}

// DefaultChannelConfig returns the paper's operating point: 15000-cycle
// window, alternating bits, two-phase eviction.
func DefaultChannelConfig(seed uint64) ChannelConfig {
	return ChannelConfig{
		Options:          DefaultOptions(seed),
		Window:           15000,
		Bits:             AlternatingBits(30),
		ProbePhase:       0.65,
		TwoPhaseEviction: true,
		TrojanCore:       0,
		SpyCore:          2,
		NoiseCore:        1,
	}
}

func (c *ChannelConfig) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 15000
	}
	if c.ProbePhase <= 0 || c.ProbePhase >= 1 {
		c.ProbePhase = 0.65
	}
	// Normalize core placement: the threat model puts trojan, spy, and
	// noise on three distinct physical cores. Resolve collisions
	// deterministically — spy hops two cores away, then noise takes the
	// lowest core distinct from both.
	if c.SpyCore == c.TrojanCore {
		c.SpyCore = (c.TrojanCore + 2) % 4
	}
	if c.NoiseCore == c.TrojanCore || c.NoiseCore == c.SpyCore {
		for core := 0; core < 4; core++ {
			if core != c.TrojanCore && core != c.SpyCore {
				c.NoiseCore = core
				break
			}
		}
	}
	if c.CalBudget <= 0 {
		c.CalBudget = 2_000_000
	}
	if c.SetupBudget <= 0 {
		c.SetupBudget = 60_000_000
	}
	if c.SearchBudget <= 0 {
		c.SearchBudget = 14_000_000
	}
}

// ChannelResult reports one covert-channel run.
type ChannelResult struct {
	Sent     []byte
	Received []byte
	// ProbeTimes are the spy's measured per-window probe latencies — the
	// traces plotted in Figures 6(b) and 8.
	ProbeTimes []sim.Cycles
	// ErrorBits marks windows decoded incorrectly.
	ErrorBits []int

	SpyThreshold    sim.Cycles
	EvictionSetSize int
	MonitorScore    int
	BitErrors       int
	ErrorRate       float64
	KBps            float64
	SetupCycles     sim.Cycles
	// Footprint is what a hardware-counter detector would see during the
	// transmission phase (setup excluded) — see the stealth study.
	Footprint *AttackFootprint
	// Faults is the applied-fault log when a chaos campaign was armed.
	Faults []fault.Injected
}

// AlternatingBits returns '0101...' of length n (Figure 6's sequence).
func AlternatingBits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i % 2)
	}
	return out
}

// PatternBits repeats the given pattern string of '0'/'1' to n bits
// (Figure 8 uses "100" repeated to 128 bits).
func PatternBits(pattern string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)] - '0'
	}
	return out
}

// RandomBits returns n seeded random bits (used by the Figure 7 sweep).
func RandomBits(seed uint64, n int) []byte {
	s := seed*0x9e3779b97f4a7c15 + 1
	out := make([]byte, n)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s >> 63)
	}
	return out
}

// Enclave layout shared by RunChannel and RunResilient: a calibration pool
// plus the candidate pages Algorithm 1 (trojan) and monitor discovery (spy)
// work over.
const (
	calPages         = 8
	trojanCandidates = 96
	spyCandidates    = 24
)

// RunChannel executes one full covert-channel session: threshold
// calibration on both sides, trojan eviction-set construction (Algorithm 1),
// spy monitor-address discovery, then the Algorithm 2 transmission of
// cfg.Bits. It returns the decoded sequence and channel statistics.
func RunChannel(cfg ChannelConfig) (*ChannelResult, error) {
	cfg.applyDefaults()
	for _, b := range cfg.Bits {
		if b > 1 {
			return nil, fmt.Errorf("core: bits must be 0/1, got %d", b)
		}
	}
	logical := cfg.Bits
	rep := cfg.Repetition
	if rep < 1 {
		rep = 1
	}
	if rep > 1 {
		expanded := make([]byte, 0, len(logical)*rep)
		for _, b := range logical {
			for r := 0; r < rep; r++ {
				expanded = append(expanded, b)
			}
		}
		cfg.Bits = expanded
	}
	plat := cfg.boot()
	defer plat.Close()

	// Agreed schedule (both sides know these offsets out of band).
	tCalEnd := cfg.CalBudget
	tSetupEnd := tCalEnd + cfg.SetupBudget
	tSearchEnd := tSetupEnd + cfg.SearchBudget
	t0 := tSearchEnd
	tEnd := t0 + sim.Cycles(len(cfg.Bits))*cfg.Window

	trojanProc := plat.NewProcess("trojan")
	spyProc := plat.NewProcess("spy")
	if _, err := trojanProc.CreateEnclave(calPages + trojanCandidates); err != nil {
		return nil, err
	}
	if _, err := spyProc.CreateEnclave(calPages + spyCandidates); err != nil {
		return nil, err
	}

	res := &ChannelResult{Sent: cfg.Bits}
	var trojanErr, spyErr error

	trojanCands := pageAddrs(trojanProc.Enclave().Base+enclave.VAddr(calPages*enclave.PageBytes), trojanCandidates, cfg.Index512)
	spyCands := pageAddrs(spyProc.Enclave().Base+enclave.VAddr(calPages*enclave.PageBytes), spyCandidates, cfg.Index512)
	// Live working sets, filled in by the actors once discovered; fault
	// injection reads them (engine-serialized) to aim paging events at the
	// pages that actually carry the channel.
	var liveEvictionSet, liveMonitor []enclave.VAddr

	// ------------------------------------------------------------------
	// Trojan (Algorithm 2, sender side).
	trojanTh := plat.SpawnThread("trojan", trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := trojanProc.Enclave().Base
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		th.SpinUntil(tCalEnd)

		cands := trojanCands
		a1, err := FindEvictionSet(th, cands, threshold)
		if err != nil {
			trojanErr = err
			return
		}
		evSet := a1.EvictionSet
		liveEvictionSet = evSet
		res.EvictionSetSize = len(evSet)
		res.SetupCycles = th.Now()
		if th.Now() > tSetupEnd {
			trojanErr = fmt.Errorf("core: trojan setup overran its budget (%d > %d)", th.Now(), tSetupEnd)
			return
		}

		evict := func() {
			for i := 0; i < len(evSet); i++ { // forward phase
				th.Access(evSet[i])
				th.Flush(evSet[i])
			}
			th.Mfence()
			if cfg.TwoPhaseEviction {
				for i := len(evSet) - 1; i >= 0; i-- { // backward phase
					th.Access(evSet[i])
					th.Flush(evSet[i])
				}
				th.Mfence()
			}
		}

		// Search phase: burst continuously so the spy can find which of
		// its addresses conflicts with the eviction set.
		th.SpinUntil(tSetupEnd)
		for th.Now() < tSearchEnd-20_000 {
			evict()
			th.Spin(1000)
		}

		// Transmission (Algorithm 2, trojan's operation).
		for i, bit := range cfg.Bits {
			waitUntilTimer(th, t0+sim.Cycles(i)*cfg.Window)
			if bit == 1 {
				evict()
			}
			// '0': busy loop until the next window (the waitUntilTimer at
			// the top of the loop).
		}
	})

	// ------------------------------------------------------------------
	// Spy (Algorithm 2, receiver side).
	spyTh := plat.SpawnThread("spy", spyProc, cfg.SpyCore, func(th *platform.Thread) {
		th.EnterEnclave()
		base := spyProc.Enclave().Base
		// Calibrate in the second half of the calibration phase, staggered
		// against the trojan so the two measurement loops don't contend.
		th.SpinUntil(tCalEnd / 2)
		threshold := calibrateThreshold(th, pageAddrs(base, calPages, cfg.Index512))
		res.SpyThreshold = threshold
		th.SpinUntil(tSetupEnd)

		// Monitor discovery: sample each candidate while the trojan
		// bursts; the address the bursts keep evicting is the monitor.
		cands := spyCands
		const samples = 10
		bestScore, monitor := -1, enclave.VAddr(0)
		for _, cand := range cands {
			score := 0
			for s := 0; s < samples; s++ {
				th.Access(cand)
				th.Flush(cand)
				th.SpinUntil(th.Now() + 40_000) // several burst periods
				if timedAccess(th, cand) > threshold {
					score++
				}
				th.Flush(cand)
			}
			if score > bestScore {
				bestScore, monitor = score, cand
			}
		}
		res.MonitorScore = bestScore
		if bestScore < samples*6/10 {
			spyErr = fmt.Errorf("core: monitor discovery failed (best score %d/%d)", bestScore, samples)
			return
		}
		if th.Now() > t0 {
			spyErr = fmt.Errorf("core: spy search overran its budget (%d > %d)", th.Now(), t0)
			return
		}
		liveMonitor = []enclave.VAddr{monitor}

		// Prime just before transmission starts (after the trojan's last
		// search-phase burst), then decode each window (Algorithm 2, spy's
		// operation). The probe itself re-primes after a miss.
		waitUntilTimer(th, t0-5000)
		th.Access(monitor)
		th.Flush(monitor)
		res.Received = make([]byte, len(cfg.Bits))
		res.ProbeTimes = make([]sim.Cycles, len(cfg.Bits))
		probeOffset := sim.Cycles(float64(cfg.Window) * cfg.ProbePhase)
		for i := range cfg.Bits {
			waitUntilTimer(th, t0+sim.Cycles(i)*cfg.Window+probeOffset)
			t := timedAccess(th, monitor)
			th.Flush(monitor)
			res.ProbeTimes[i] = t
			if t > threshold {
				res.Received[i] = 1
			}
		}
	})

	if err := spawnNoise(plat, cfg.Noise, cfg.NoiseCore, t0); err != nil {
		return nil, err
	}
	var injector *fault.Injector
	if cfg.Fault != nil {
		fc := *cfg.Fault
		if fc.Start == 0 && fc.End == 0 {
			fc.Start, fc.End = t0, tEnd
		}
		injector = fault.NewPlan(fc).Attach(plat, fault.Targets{
			Trojan: trojanTh, Spy: spyTh,
			TrojanProc: trojanProc, SpyProc: spyProc,
			TrojanPages: trojanCands, SpyPages: spyCands,
			TrojanLive: func() []enclave.VAddr { return liveEvictionSet },
			SpyLive:    func() []enclave.VAddr { return liveMonitor },
			TrojanHome: cfg.TrojanCore, SpyHome: cfg.SpyCore,
			StormCore: cfg.NoiseCore,
		})
	}
	// Snapshot detector-visible statistics over the transmission phase.
	plat.Engine().SpawnAt("stats-reset", t0-1, func(p *sim.Proc) {
		plat.Caches().LLC().ResetStats()
		plat.MEE().ResetStats()
	})
	if cfg.onPlatform != nil {
		cfg.onPlatform(plat, t0, tEnd)
	}

	plat.Run(tEnd + cfg.Window)
	res.Footprint = captureFootprint(plat)
	if injector != nil {
		res.Faults = injector.Log()
	}
	if trojanErr != nil {
		return res, trojanErr
	}
	if spyErr != nil {
		return res, spyErr
	}
	if res.Received == nil {
		return res, fmt.Errorf("core: spy never completed transmission")
	}

	if rep > 1 {
		// Majority-decode each repetition group back to logical bits.
		decoded := make([]byte, len(logical))
		for i := range logical {
			ones := 0
			for r := 0; r < rep; r++ {
				ones += int(res.Received[i*rep+r])
			}
			if ones*2 > rep {
				decoded[i] = 1
			}
		}
		res.Sent = logical
		res.Received = decoded
	}
	for i := range res.Sent {
		if res.Received[i] != res.Sent[i] {
			res.BitErrors++
			res.ErrorBits = append(res.ErrorBits, i)
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(res.Sent))
	res.KBps = plat.WindowKBps(cfg.Window) / float64(rep)
	if o := cfg.Obs; o != nil {
		o.Counter("channel.windows").Add(uint64(len(res.ProbeTimes)))
		o.Counter("channel.bits_sent").Add(uint64(len(res.Sent)))
		o.Counter("channel.bits_decoded").Add(uint64(len(res.Received)))
		o.Counter("channel.bit_errors").Add(uint64(res.BitErrors))
		for _, pos := range res.ErrorBits {
			o.Histogram("channel.error_position").Observe(int64(pos))
		}
		if tr := o.Tracer(); tr != nil {
			// Reconstruct the transmission timeline: per-window probe
			// latencies as instants on a "channel" track, and the cumulative
			// bit-error count as a counter track aligned to logical bits.
			track := tr.Track("channel")
			nProbe := tr.Name("channel.probe")
			nErrs := tr.Name("channel.errors")
			probeOffset := sim.Cycles(float64(cfg.Window) * cfg.ProbePhase)
			for i, pt := range res.ProbeTimes {
				tr.Instant(track, nProbe, int64(t0+sim.Cycles(i)*cfg.Window+probeOffset), int64(pt))
			}
			errSoFar, ei := 0, 0
			for i := range res.Sent {
				if ei < len(res.ErrorBits) && res.ErrorBits[ei] == i {
					errSoFar++
					ei++
				}
				tr.Count(nErrs, int64(t0+sim.Cycles((i+1)*rep)*cfg.Window), int64(errSoFar))
			}
		}
	}
	return res, nil
}
